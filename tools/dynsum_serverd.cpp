//===----------------------------------------------------------------------===//
///
/// \file
/// dynsum_serverd — the multi-tenant socket analysis server.
///
/// Hosts N independent analysis tenants — each with its own program,
/// AnalysisService, summary store and warm-restart snapshot — behind
/// one loopback TCP port speaking the newline-delimited serve protocol
/// (the REPL grammar plus "tenant <name>"/"tenants" binding verbs; see
/// src/server/Serverd.h for the framing).
///
/// Usage:
///   dynsum_serverd --tenant=<name>=<program file>...  (repeatable)
///                  [--port=N]            (0/default = ephemeral)
///                  [--port-file=path]    (write the bound port here)
///                  [--snapshot-dir=dir]  (per-tenant <dir>/<name>.dsum
///                                         saved on drain, warm-attached
///                                         on the next start)
///                  [--threads=N] [--commit-threads=N]
///                  [--keep-generations=N] [--store-stripes=N]
///                  [--presummarize] [--budget=N]
///                  [--max-connections=N]
///                  [--max-active-batches=N] [--resume-active-batches=N]
///                  [--max-commit-backlog=N]
///
/// The server drains gracefully on SIGTERM/SIGINT: it stops accepting,
/// unblocks and joins every live session, and snapshots every tenant's
/// summary store to --snapshot-dir — a restart over the same directory
/// answers its first batches warm.
///
/// Example:
///   dynsum_serverd --tenant=alpha=a.ir --tenant=beta=b.mj
///                  --snapshot-dir=/tmp/snap --port-file=/tmp/port &
///   printf 'tenant alpha\nquery Main.main.s1\nquit\n' | nc 127.0.0.1 $(cat /tmp/port)
///
//===----------------------------------------------------------------------===//

#include "ir/Validator.h"
#include "server/CommandInterpreter.h"
#include "server/Serverd.h"
#include "support/CommandLine.h"
#include "support/OStream.h"
#include "support/Shutdown.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <poll.h>

using namespace dynsum;

namespace {

int usage() {
  errs() << "usage: dynsum_serverd --tenant=<name>=<file>... [--port=N] "
            "[--port-file=path]\n"
            "                      [--snapshot-dir=dir] [--threads=N] "
            "[--commit-threads=N]\n"
            "                      [--keep-generations=N] "
            "[--store-stripes=N] [--presummarize]\n"
            "                      [--budget=N] [--max-connections=N]\n"
            "                      [--max-active-batches=N] "
            "[--resume-active-batches=N]\n"
            "                      [--max-commit-backlog=N]\n";
  return 2;
}

unsigned asUnsigned(int64_t V) { return V < 0 ? 0u : unsigned(V); }

int runServerd(int argc, char **argv) {
  CommandLine Args(argc, argv);
  std::vector<std::string> TenantSpecs = Args.getAll("tenant");
  if (TenantSpecs.empty())
    return usage();

  server::ServerOptions SO;
  SO.Port = uint16_t(asUnsigned(Args.getInt("port", 0)));
  SO.MaxConnections = asUnsigned(Args.getInt("max-connections", 64));
  SO.QueryThreads = asUnsigned(Args.getInt("threads", 2));
  SO.CommitThreads = asUnsigned(Args.getInt("commit-threads", 1));
  SO.KeepGenerations = asUnsigned(Args.getInt("keep-generations", 0));
  SO.StoreStripes = asUnsigned(Args.getInt("store-stripes", 0));
  SO.Presummarize = Args.has("presummarize");
  SO.SnapshotDir = Args.getString("snapshot-dir", "");
  SO.Analysis.BudgetPerQuery = uint64_t(Args.getInt("budget", 75000));
  SO.Overload.MaxActiveBatches =
      asUnsigned(Args.getInt("max-active-batches", 0));
  SO.Overload.ResumeActiveBatches =
      asUnsigned(Args.getInt("resume-active-batches", 0));
  SO.Overload.MaxCommitBacklog =
      asUnsigned(Args.getInt("max-commit-backlog", 0));

  server::AnalysisServer Server(SO);
  for (const std::string &Spec : TenantSpecs) {
    size_t Eq = Spec.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Spec.size()) {
      errs() << "error: --tenant wants <name>=<file>, got '" << Spec
             << "'\n";
      return usage();
    }
    std::string Name = Spec.substr(0, Eq);
    std::string Path = Spec.substr(Eq + 1);
    std::string LoadError;
    std::unique_ptr<ir::Program> Prog =
        server::loadProgramFile(Path, LoadError);
    if (!Prog) {
      errs() << "error: tenant " << Name << ": " << LoadError << '\n';
      return 1;
    }
    std::vector<std::string> Problems = ir::validate(*Prog);
    if (!Problems.empty()) {
      errs() << "error: tenant " << Name << ": invalid program: "
             << Problems.front() << '\n';
      return 1;
    }
    if (!Server.addTenant(Name, std::move(Prog))) {
      errs() << "error: duplicate or bad tenant name '" << Name << "'\n";
      return 1;
    }
  }

  // Arm the drain path BEFORE opening the listen socket: a SIGTERM that
  // lands during startup must already find the graceful handler.
  if (!support::installShutdownHandlers())
    errs() << "warning: cannot install signal handlers; "
              "Ctrl-C will not snapshot\n";

  std::string Error;
  if (!Server.start(Error)) {
    errs() << "error: " << Error << '\n';
    return 1;
  }
  std::string PortFile = Args.getString("port-file", "");
  if (!PortFile.empty()) {
    if (std::FILE *F = std::fopen(PortFile.c_str(), "w")) {
      std::fprintf(F, "%u\n", unsigned(Server.port()));
      std::fclose(F);
    } else {
      errs() << "error: cannot write " << PortFile << '\n';
      return 1;
    }
  }
  outs() << "dynsum_serverd: " << uint64_t(TenantSpecs.size())
         << " tenants listening on 127.0.0.1:" << unsigned(Server.port())
         << '\n';
  outs().flush();

  // Park until a shutdown signal: the self-pipe readable (or EINTR on
  // the poll itself) means SIGTERM/SIGINT arrived.
  while (!support::shutdownRequested()) {
    pollfd Fd = {support::shutdownWakeFd(), POLLIN, 0};
    if (::poll(&Fd, 1, -1) < 0 && errno != EINTR)
      break;
  }
  int Sig = support::shutdownSignal();
  outs() << "dynsum_serverd: "
         << (Sig == SIGTERM ? "SIGTERM" : Sig == SIGINT ? "SIGINT" : "stop")
         << ": draining " << uint64_t(TenantSpecs.size()) << " tenants\n";
  outs().flush();
  Server.stop(); // joins sessions, then snapshots every tenant
  outs() << "dynsum_serverd: drained ("
         << Server.acceptedConnections() << " connections served, "
         << Server.shedConnections() << " shed)\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  // Same containment contract as dynsum_tool: report and exit nonzero,
  // never abort on an unhandled exception.
  try {
    return runServerd(argc, argv);
  } catch (const std::exception &E) {
    errs() << "fatal: " << E.what() << '\n';
    return 1;
  } catch (...) {
    errs() << "fatal: unknown error\n";
    return 1;
  }
}
