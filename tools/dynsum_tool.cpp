//===----------------------------------------------------------------------===//
///
/// \file
/// dynsum — the command-line driver for the whole library.
///
/// Loads a program from a MiniJava source file (.mj/.minijava/.java) or
/// a textual-IR file (anything else), builds the PAG, and either runs a
/// client over it or answers individual points-to queries.
///
/// Usage:
///   dynsum <file> [--analysis=dynsum|refine|norefine|andersen]
///                 [--resolver=cha|rta|andersen]
///                 [--client=safecast|nullderef|factorym|devirt|all]
///                 [--query=Class.method.var]...  (repeatable flag, or
///                                                 free.method.var for
///                                                 ownerless methods)
///                 [--budget=N] [--max-queries=N] [--threads=N]
///                 [--commit-threads=N] [--keep-generations=N]
///                 [--stats] [--dump-ir] [--dump-pag]
///                 [--serve] [--save-summaries=path] [--load-summaries=path]
///                 [--snapshot=path] [--warm-from-disk=path]
///                 [--store-stripes=N] [--presummarize]
///
/// --threads routes queries and clients through the parallel batch
/// engine (dynsum only; 0 = one worker per hardware thread); summary
/// save/load then goes through the engine's shared store.
///
/// --serve starts an interactive AnalysisService session on stdin: a
/// line-oriented edit/query loop over the loaded program ("help" lists
/// the commands).  Queries run through the parallel engine against the
/// current generation; edits buffer until "commit" publishes the next
/// one ("commit --async" queues it on the background committer instead
/// of blocking the REPL; --commit-threads=N shards the commit pipeline
/// itself).  --keep-generations=N retains superseded snapshots: the
/// "generations" command lists them with their structural-sharing cost
/// and "rollback <gen>" republishes one in O(1).  "save"/"load" persist
/// warm summaries across serve sessions.
///
/// --snapshot=path is the warm-restart loop in one flag: the service
/// saves its summary store there on shutdown and, on the next start,
/// attaches the same file as the store's memory-mapped read-only disk
/// tier — first queries answer from disk hits instead of recomputing.
/// --presummarize (serve only) turns on the post-commit warmer: after
/// each published commit a background pass re-summarizes the
/// recently-queried variables (PresummarizeScope::Hot), so the first
/// batch after an edit hits the store instead of computing.
///
/// --warm-from-disk=path warms from a different file than the shutdown
/// snapshot; --store-stripes=N sets the hot tier's lock-stripe count.
///
/// Examples:
///   dynsum prog.mj --client=all
///   dynsum prog.ir --analysis=refine --client=nullderef --budget=10000
///   dynsum prog.mj --query=Main.main.result --stats
///   dynsum prog.mj --client=all --threads=8
///   dynsum prog.ir --serve --threads=4 --commit-threads=8
///
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "analysis/SummaryIO.h"
#include "clients/Client.h"
#include "engine/QueryScheduler.h"
#include "frontend/Frontend.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Validator.h"
#include "pag/GraphViz.h"
#include "pag/PAGBuilder.h"
#include "pag/Rta.h"
#include "service/AnalysisService.h"
#include "support/CommandLine.h"
#include "support/OStream.h"
#include "support/PrettyTable.h"
#include "support/StringExtras.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace dynsum;

namespace {

/// Reads a whole file; empty optional-style flag via Ok.
bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Chunk[65536];
  size_t N = 0;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Out.append(Chunk, N);
  std::fclose(F);
  return true;
}

/// Loads \p Path as MiniJava or textual IR by extension.
std::unique_ptr<ir::Program> loadProgram(const std::string &Path) {
  std::string Source;
  if (!readFile(Path, Source)) {
    errs() << "error: cannot read '" << Path << "'\n";
    return nullptr;
  }
  if (endsWith(Path, ".mj") || endsWith(Path, ".minijava") ||
      endsWith(Path, ".java")) {
    frontend::CompileResult R = frontend::compileMiniJava(Source);
    if (!R.ok()) {
      errs() << Path << ": compilation failed\n" << R.Diags.str() << '\n';
      return nullptr;
    }
    return std::move(R.Prog);
  }
  ir::ParseResult R = ir::parseProgram(Source);
  if (!R.ok()) {
    errs() << Path << ": " << R.Error << '\n';
    return nullptr;
  }
  return std::move(R.Prog);
}

/// Resolves "Class.method" or "method" (free methods) to a MethodId.
ir::MethodId resolveMethod(const ir::Program &P, const std::string &Spec) {
  size_t Dot = Spec.find('.');
  if (Dot == std::string::npos)
    return P.findFreeMethod(P.names().lookup(Spec));
  ir::TypeId Cls = P.findClass(P.names().lookup(Spec.substr(0, Dot)));
  if (Cls == ir::kNone)
    return ir::kNone;
  return P.findMethod(Cls, P.names().lookup(Spec.substr(Dot + 1)));
}

/// Resolves "Class.method.var" / "method.var" to a VarId.
ir::VarId resolveVar(const ir::Program &P, const std::string &Spec) {
  size_t LastDot = Spec.rfind('.');
  if (LastDot == std::string::npos)
    return ir::kNone;
  ir::MethodId M = resolveMethod(P, Spec.substr(0, LastDot));
  if (M == ir::kNone)
    return ir::kNone;
  Symbol N = P.names().lookup(Spec.substr(LastDot + 1));
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Owner == M && V.Name == N)
      return V.Id;
  return ir::kNone;
}

/// Resolves "Class.method.var" / "method.var" to a PAG variable node,
/// reporting what part failed to resolve.
bool findQueryNode(const ir::Program &P, const pag::PAG &G,
                   const std::string &Spec, pag::NodeId &Node) {
  ir::VarId V = resolveVar(P, Spec);
  if (V == ir::kNone) {
    errs() << "error: cannot resolve '" << Spec
           << "' (expected Class.method.var or method.var)\n";
    return false;
  }
  Node = G.nodeOfVar(V);
  return true;
}

/// Creates the selected analysis; \p OutDynSum is set when it is a
/// DynSumAnalysis so the summary save/load flags can reach it without
/// RTTI.
std::unique_ptr<analysis::DemandAnalysis>
makeAnalysis(const std::string &Name, const pag::PAG &G,
             const analysis::AnalysisOptions &Opts,
             analysis::DynSumAnalysis *&OutDynSum) {
  OutDynSum = nullptr;
  if (Name == "dynsum") {
    auto A = std::make_unique<analysis::DynSumAnalysis>(G, Opts);
    OutDynSum = A.get();
    return A;
  }
  if (Name == "refine")
    return std::make_unique<analysis::RefinePtsAnalysis>(G, Opts);
  if (Name == "norefine")
    return std::make_unique<analysis::RefinePtsAnalysis>(G, Opts,
                                                         /*Refinement=*/false);
  return nullptr;
}

int usage() {
  errs() << "usage: dynsum <file.{mj,ir}> [--analysis=dynsum|refine|"
            "norefine] [--resolver=cha|rta|andersen]\n"
            "              [--client=safecast|nullderef|factorym|devirt|all]"
            " [--query=Class.method.var]\n"
            "              [--budget=N] [--max-queries=N] [--threads=N]"
            " [--commit-threads=N] [--stats] [--dump-pag] [--serve]\n"
            "              [--save-summaries=path] [--load-summaries=path]\n"
            "              [--snapshot=path] [--warm-from-disk=path]"
            " [--store-stripes=N]\n";
  return 2;
}

//===----------------------------------------------------------------------===//
// --serve: an interactive AnalysisService session on stdin
//===----------------------------------------------------------------------===//

std::vector<std::string> splitWords(const char *Line) {
  std::vector<std::string> Words;
  std::string Cur;
  for (const char *C = Line; *C; ++C) {
    if (std::isspace(static_cast<unsigned char>(*C))) {
      if (!Cur.empty()) {
        Words.push_back(std::move(Cur));
        Cur.clear();
      }
    } else {
      Cur.push_back(*C);
    }
  }
  if (!Cur.empty())
    Words.push_back(std::move(Cur));
  return Words;
}

void serveHelp() {
  outs() << "commands:\n"
            "  query <m.var>...        batched points-to queries (current "
            "generation)\n"
            "  alloc <method> <var> <Class>   buffer: var = new Class "
            "(creates var if new)\n"
            "  assign <method> <dst> <src>    buffer: dst = src\n"
            "  touch <method>          mark a method edited\n"
            "  commit [--scratch] [--async]   publish buffered edits as the "
            "next generation\n"
            "                          (--scratch force-re-lowers every "
            "method: A/B check\n"
            "                          against the delta build; --async "
            "queues the commit on\n"
            "                          the background committer and returns "
            "immediately;\n"
            "                          requests racing an in-flight commit "
            "coalesce)\n"
            "  wait                    block until queued async commits are "
            "published\n"
            "  generations             list retained snapshots (number, "
            "vars, retained bytes)\n"
            "  rollback <generation>   republish a retained snapshot (O(1); "
            "later edits\n"
            "                          become pending again)\n"
            "  save <path> | load <path>      persist / warm-start "
            "summaries\n"
            "  deadline <ms>           per-query wall-clock deadline for "
            "later queries\n"
            "                          (0 turns it off; overrun queries "
            "report (timeout)\n"
            "                          with the sound partial answer "
            "gathered so far)\n"
            "  stats                   generation, store size, counters, "
            "commit times,\n"
            "                          failure counters (timeouts, shed "
            "work, retries...)\n"
            "  quit\n"
            "method spec: Class.method or method (free); var spec appends "
            ".var\n"
            "(--commit-threads=N shards the commit pipeline; 0 = one worker "
            "per hardware thread;\n"
            " --keep-generations=N retains N superseded snapshots for "
            "generations/rollback;\n"
            " --snapshot=path saves the store on quit and warms the next "
            "start from the same\n"
            " file via the mapped disk tier; --store-stripes=N sets hot-tier "
            "lock striping;\n"
            " --presummarize re-summarizes recently-queried variables "
            "after each commit)\n";
}

int runServe(std::unique_ptr<ir::Program> Prog,
             const analysis::AnalysisOptions &AO, unsigned Threads,
             unsigned CommitThreads, unsigned KeepGenerations,
             const std::string &Snapshot, const std::string &WarmPath,
             unsigned StoreStripes, bool Presummarize) {
  service::ServiceOptions SO;
  SO.Engine.NumThreads = Threads;
  SO.Engine.Analysis = AO;
  SO.Commit = CommitThreads;
  SO.KeepGenerations = KeepGenerations;
  SO.StoreStripes = StoreStripes;
  SO.Presummarize = Presummarize;
  // --snapshot=path is the warm-restart loop in one flag: save the
  // store there on shutdown AND attach the same file as the disk tier
  // on startup.  --warm-from-disk overrides just the startup side.
  SO.SnapshotOnShutdownPath = Snapshot;
  SO.WarmFromDiskPath = WarmPath.empty() ? Snapshot : WarmPath;
  service::AnalysisService S(std::move(Prog), SO);
  outs() << "dynsum serve: " << uint64_t(S.program().methods().size())
         << " methods, " << uint64_t(S.program().variables().size())
         << " variables; \"help\" lists commands\n";
  if (!SO.WarmFromDiskPath.empty()) {
    if (S.stats().DiskTierAttached)
      outs() << "warm tier: " << SO.WarmFromDiskPath
             << " attached (hot misses probe the mapped snapshot)\n";
    else
      outs() << "warm tier: " << SO.WarmFromDiskPath
             << " not attached (missing/stale snapshot); starting cold\n";
  }

  char Line[4096];
  double DeadlineMs = 0; // 0 = unlimited
  for (;;) {
    outs() << "dynsum> ";
    outs().flush();
    if (!std::fgets(Line, sizeof(Line), stdin))
      break;
    std::vector<std::string> W = splitWords(Line);
    if (W.empty())
      continue;
    const std::string &Cmd = W[0];

    if (Cmd == "quit" || Cmd == "exit")
      break;
    if (Cmd == "help") {
      serveHelp();
      continue;
    }
    if (Cmd == "query" && W.size() > 1) {
      std::vector<ir::VarId> Vars;
      bool Ok = true;
      for (size_t I = 1; I < W.size(); ++I) {
        ir::VarId V = resolveVar(S.program(), W[I]);
        if (V == ir::kNone) {
          errs() << "error: no variable '" << W[I] << "'\n";
          Ok = false;
          break;
        }
        Vars.push_back(V);
      }
      if (!Ok)
        continue;
      service::ServiceBatchResult R =
          DeadlineMs > 0
              ? S.queryVars(Vars, support::Deadline::in(DeadlineMs / 1e3))
              : S.queryVars(Vars);
      for (size_t I = 0; I < Vars.size(); ++I) {
        const engine::QueryOutcome &O = R.Outcomes[I];
        outs() << "pts(" << W[I + 1] << ") = {";
        for (size_t A = 0; A < O.AllocSites.size(); ++A)
          outs() << (A ? ", " : "")
                 << S.program().describeAlloc(O.AllocSites[A]);
        outs() << "}";
        if (O.Status != analysis::QueryStatus::Ok)
          outs() << " (" << analysis::toString(O.Status) << ")";
        else if (O.BudgetExceeded)
          outs() << " (budget exceeded)";
        outs() << "  [" << O.Steps << " steps]\n";
      }
      outs() << "[generation " << R.Generation << ": "
             << R.Stats.SharedHits << " shared hits, "
             << R.Stats.SummariesComputed << " computed]\n";
      continue;
    }
    if (Cmd == "alloc" && W.size() == 4) {
      ir::MethodId M = resolveMethod(S.program(), W[1]);
      ir::TypeId T = S.program().findClass(S.program().names().lookup(W[3]));
      if (M == ir::kNone || T == ir::kNone) {
        errs() << "error: unknown method or class\n";
        continue;
      }
      S.editProgram([&](ir::Program &P) {
        ir::VarId Dst = resolveVar(P, W[1] + "." + W[2]);
        if (Dst == ir::kNone)
          Dst = P.createLocal(P.name(W[2]), M, T);
        ir::Statement New;
        New.Kind = ir::StmtKind::Alloc;
        New.Dst = Dst;
        New.Type = T;
        New.Alloc = P.createAllocSite(T, M, P.name(W[2] + "@serve"));
        P.addStatement(M, std::move(New));
        return std::vector<ir::MethodId>{M};
      });
      outs() << "buffered: " << W[2] << " = new " << W[3] << " in " << W[1]
             << '\n';
      continue;
    }
    if (Cmd == "assign" && W.size() == 4) {
      ir::VarId Dst = resolveVar(S.program(), W[1] + "." + W[2]);
      ir::VarId Src = resolveVar(S.program(), W[1] + "." + W[3]);
      ir::MethodId M = resolveMethod(S.program(), W[1]);
      if (Dst == ir::kNone || Src == ir::kNone) {
        errs() << "error: unknown variable\n";
        continue;
      }
      ir::Statement St;
      St.Kind = ir::StmtKind::Assign;
      St.Dst = Dst;
      St.Src = Src;
      S.addStatement(M, std::move(St));
      outs() << "buffered: " << W[2] << " = " << W[3] << " in " << W[1]
             << '\n';
      continue;
    }
    if (Cmd == "touch" && W.size() == 2) {
      ir::MethodId M = resolveMethod(S.program(), W[1]);
      if (M == ir::kNone) {
        errs() << "error: no method '" << W[1] << "'\n";
        continue;
      }
      S.markDirty(M);
      continue;
    }
    if (Cmd == "commit" && W.size() <= 3) {
      service::CommitMode Mode = service::CommitMode::Delta;
      bool Async = false;
      bool Bad = false;
      for (size_t I = 1; I < W.size(); ++I) {
        if (W[I] == "--scratch") {
          Mode = service::CommitMode::Scratch;
        } else if (W[I] == "--async") {
          Async = true;
        } else {
          errs() << "error: bad commit flag '" << W[I]
                 << "' (only --scratch / --async)\n";
          Bad = true;
          break;
        }
      }
      if (Bad)
        continue;
      service::CommitRequest Req;
      Req.Mode = Mode;
      Req.Background = Async;
      service::CommitTicket Ticket = S.submitCommit(Req);
      if (Async) {
        outs() << "queued async commit"
               << (Mode == service::CommitMode::Scratch ? " (scratch)" : "")
               << "; \"wait\" blocks until published, \"stats\" shows "
                  "progress\n";
        continue;
      }
      incremental::CommitStats CS = Ticket.wait();
      if (CS.Outcome != incremental::CommitOutcome::Committed &&
          CS.Outcome != incremental::CommitOutcome::NoOp) {
        errs() << "error: commit " << incremental::toString(CS.Outcome)
               << (CS.Error.empty() ? "" : ": " + CS.Error)
               << " (edits stay buffered; generation unchanged)\n";
        continue;
      }
      outs() << "generation " << S.generation() << ": dropped "
             << CS.SummariesDropped << "/" << CS.SummariesBefore
             << " store summaries, " << CS.MethodsInvalidated
             << " methods invalidated, " << CS.MethodsRelowered
             << " re-lowered"
             << (Mode == service::CommitMode::Scratch ? " (scratch)" : "")
             << " in ";
      outs().writeFixed(CS.Seconds * 1e3, 2);
      outs() << " ms (clone ";
      outs().writeFixed(CS.CloneSeconds * 1e3, 2);
      outs() << ", shape ";
      outs().writeFixed(CS.ShapeSeconds * 1e3, 2);
      outs() << ", lower ";
      outs().writeFixed(CS.LowerSeconds * 1e3, 2);
      outs() << ", apply ";
      outs().writeFixed(CS.ApplySeconds * 1e3, 2);
      outs() << ", repack ";
      outs().writeFixed(CS.RepackSeconds * 1e3, 2);
      outs() << ")\n";
      continue;
    }
    if (Cmd == "wait" && W.size() == 1) {
      S.waitForCommits();
      S.waitForWarm(); // immediate unless --presummarize
      outs() << "generation " << S.generation() << " (async queue drained)\n";
      continue;
    }
    if (Cmd == "generations" && W.size() == 1) {
      for (const service::GenerationInfo &G : S.generations()) {
        outs() << "  generation " << G.Number << ": " << uint64_t(G.NumVars)
               << " vars, " << G.RetainedBytes << " / " << G.TotalBytes
               << " bytes exclusive" << (G.IsCurrent ? " (current)" : "")
               << '\n';
      }
      continue;
    }
    if (Cmd == "rollback" && W.size() == 2) {
      uint64_t Gen = uint64_t(std::atoll(W[1].c_str()));
      if (S.rollback(Gen))
        outs() << "rolled back to snapshot " << Gen << "; now serving "
               << "generation " << S.generation()
               << " (edits after its capture are pending again)\n";
      else
        errs() << "error: generation " << Gen
               << " is not retained (see \"generations\")\n";
      continue;
    }
    if (Cmd == "deadline" && W.size() == 2) {
      char *End = nullptr;
      double Ms = std::strtod(W[1].c_str(), &End);
      if (End == W[1].c_str() || *End != '\0' || Ms < 0) {
        errs() << "error: deadline wants a millisecond count, got '" << W[1]
               << "'\n";
        continue;
      }
      DeadlineMs = Ms;
      if (Ms > 0) {
        outs() << "queries now carry a ";
        outs().writeFixed(Ms, 1);
        outs() << " ms deadline\n";
      } else {
        outs() << "query deadline off\n";
      }
      continue;
    }
    if ((Cmd == "save" || Cmd == "load") && W.size() == 2) {
      bool Ok = Cmd == "save" ? S.saveSummaries(W[1]) : S.loadSummaries(W[1]);
      if (Ok)
        outs() << Cmd << ": " << uint64_t(S.stats().StoreSize)
               << " summaries (" << W[1] << ")\n";
      else
        errs() << "error: cannot " << Cmd << " " << W[1] << '\n';
      continue;
    }
    if (Cmd == "stats") {
      service::ServiceStats SS = S.stats();
      outs() << "generation " << SS.Generation << ", store "
             << uint64_t(SS.StoreSize) << " summaries, " << SS.Commits
             << " commits, " << SS.Batches << " batches, " << SS.Queries
             << " queries, " << SS.SharedSummariesDropped
             << " summaries dropped\n";
      if (SS.AsyncCommitsRequested > 0 || SS.CommitInFlight)
        outs() << "async: " << SS.AsyncCommitsRequested << " requested, "
               << SS.AsyncCommitsCoalesced << " coalesced, "
               << (SS.CommitInFlight ? "commit in flight\n"
                                     : "queue idle\n");
      if (SS.RetainedGenerations > 0 || SS.Rollbacks > 0)
        outs() << "history: " << SS.RetainedGenerations
               << " retained generations, " << SS.Rollbacks << " rollbacks\n";
      if (SS.TimedOutQueries || SS.CancelledQueries || SS.ShedQueries ||
          SS.CommitFailures || SS.CommitValidationRejects ||
          SS.CommitRetries || SS.CommitsQuarantined || SS.CommitsShed ||
          SS.Quarantined || SS.Shedding) {
        outs() << "failures: " << SS.TimedOutQueries << " query timeouts, "
               << SS.CancelledQueries << " cancelled, " << SS.ShedQueries
               << " shed (" << SS.ShedBatches << " batches); commits: "
               << SS.CommitValidationRejects << " validation-rejected, "
               << SS.CommitFailures << " build-failed, " << SS.CommitRetries
               << " retries, " << SS.CommitsQuarantined << " quarantined, "
               << SS.CommitsShed << " shed"
               << (SS.Quarantined ? "; QUARANTINED" : "")
               << (SS.Shedding ? "; SHEDDING" : "") << '\n';
      }
      outs() << "store: " << SS.Store.Hits << "/" << SS.Store.Fetches
             << " fetches hit (" << SS.Store.StaleFetches << " stale), "
             << SS.Store.Publishes << " published ("
             << SS.Store.StalePublishes << " stale), " << SS.Store.Invalidated
             << " invalidated, " << SS.Store.LockContended
             << " contended locks, " << uint64_t(SS.StoreStripes.size())
             << " stripes\n";
      if (SS.DiskTierAttached || SS.Store.DiskProbes > 0)
        outs() << "disk tier: "
               << (SS.DiskTierAttached ? "attached" : "detached") << ", "
               << SS.Store.DiskHits << "/" << SS.Store.DiskProbes
               << " probes hit, " << SS.Store.Promoted << " promoted, "
               << SS.Store.DiskStale << " stale, " << SS.Store.DiskCorrupt
               << " corrupt records\n";
      if (SS.WarmRuns > 0)
        outs() << "presummarize: " << SS.WarmRuns << " warm passes, "
               << SS.WarmQueries << " vars warmed, "
               << SS.WarmSummariesComputed << " summaries computed\n";
      if (SS.Commits > 0) {
        outs() << "last commit ";
        outs().writeFixed(SS.LastCommitSeconds * 1e3, 2);
        outs() << " ms (" << SS.LastCommitRelowered
               << " methods re-lowered), mean ";
        outs().writeFixed(SS.TotalCommitSeconds * 1e3 / double(SS.Commits),
                          2);
        outs() << " ms over " << SS.Commits << " commits\n";
      }
      continue;
    }
    errs() << "error: bad command (try \"help\")\n";
  }
  return 0;
}

} // namespace

namespace {
int runTool(int argc, char **argv);
} // namespace

int main(int argc, char **argv) {
  // Last-resort containment: whatever a malformed input or an internal
  // failure throws, the tool reports it and exits nonzero — it never
  // aborts with an unhandled exception.
  try {
    return runTool(argc, argv);
  } catch (const std::exception &E) {
    errs() << "fatal: " << E.what() << '\n';
    return 1;
  } catch (...) {
    errs() << "fatal: unknown error\n";
    return 1;
  }
}

namespace {
int runTool(int argc, char **argv) {
  CommandLine Args(argc, argv);
  if (Args.positional().empty())
    return usage();

  std::unique_ptr<ir::Program> Prog = loadProgram(Args.positional().front());
  if (!Prog)
    return 1;
  std::vector<std::string> Problems = ir::validate(*Prog);
  if (!Problems.empty()) {
    errs() << "error: invalid program: " << Problems.front() << '\n';
    return 1;
  }

  // Interactive service session: the AnalysisService builds and rebuilds
  // its own PAG per generation, so it takes over right here.
  if (Args.has("serve")) {
    analysis::AnalysisOptions ServeOpts;
    ServeOpts.BudgetPerQuery = uint64_t(Args.getInt("budget", 75000));
    int64_t ServeThreads = Args.getInt("threads", 4);
    int64_t CommitThreads = Args.getInt("commit-threads", 1);
    int64_t KeepGenerations = Args.getInt("keep-generations", 0);
    int64_t StoreStripes = Args.getInt("store-stripes", 0);
    return runServe(std::move(Prog), ServeOpts,
                    ServeThreads < 0 ? 0u : unsigned(ServeThreads),
                    CommitThreads < 0 ? 0u : unsigned(CommitThreads),
                    KeepGenerations < 0 ? 0u : unsigned(KeepGenerations),
                    Args.getString("snapshot", ""),
                    Args.getString("warm-from-disk", ""),
                    StoreStripes < 0 ? 0u : unsigned(StoreStripes),
                    Args.has("presummarize"));
  }

  // Dispatch resolver.
  std::string ResolverName = Args.getString("resolver", "cha");
  std::unique_ptr<pag::RtaTargetResolver> Rta;
  pag::BuiltPAG Built;
  if (ResolverName == "cha") {
    Built = pag::buildPAG(*Prog);
  } else if (ResolverName == "rta") {
    Rta = std::make_unique<pag::RtaTargetResolver>(*Prog);
    Built = pag::buildPAG(*Prog, Rta.get());
  } else if (ResolverName == "andersen") {
    pag::BuiltPAG Cha = pag::buildPAG(*Prog);
    analysis::AndersenAnalysis Andersen(*Cha.Graph);
    Andersen.solve();
    analysis::AndersenTargetResolver Refined(Andersen, *Cha.Graph);
    Built = pag::buildPAG(*Prog, &Refined);
  } else {
    errs() << "error: unknown resolver '" << ResolverName << "'\n";
    return usage();
  }

  if (Args.has("stats")) {
    pag::PAGStats Stats = Built.Graph->stats();
    outs() << "methods " << Stats.NumMethods << ", objects "
           << Stats.NumObjects << ", locals " << Stats.NumLocals
           << ", globals " << Stats.NumGlobals << ", edges "
           << Stats.totalEdges() << " (locality ";
    outs().writeFixed(Stats.locality() * 100.0, 1);
    outs() << "%)\n";
  }
  if (Args.has("dump-ir")) {
    ir::printProgram(*Prog, outs());
    return 0;
  }
  if (Args.has("dump-pag")) {
    pag::writeGraphViz(*Built.Graph, outs());
    return 0;
  }

  analysis::AnalysisOptions Opts;
  Opts.BudgetPerQuery = uint64_t(Args.getInt("budget", 75000));
  std::string AnalysisName = Args.getString("analysis", "dynsum");
  analysis::DynSumAnalysis *AsDynSum = nullptr;
  std::unique_ptr<analysis::DemandAnalysis> Analysis =
      makeAnalysis(AnalysisName, *Built.Graph, Opts, AsDynSum);
  if (!Analysis) {
    errs() << "error: unknown analysis '" << AnalysisName << "'\n";
    return usage();
  }

  // The parallel batch engine: shards queries across worker threads
  // with a shared summary store (dynsum only).
  std::unique_ptr<engine::QueryScheduler> Scheduler;
  if (Args.has("threads")) {
    if (!AsDynSum) {
      errs() << "error: --threads requires --analysis=dynsum\n";
      return 1;
    }
    int64_t Threads = Args.getInt("threads", 0);
    if (Threads < 0) {
      errs() << "error: --threads must be >= 0 (0 = auto)\n";
      return usage();
    }
    engine::EngineOptions EO;
    EO.NumThreads = unsigned(Threads);
    EO.Analysis = Opts;
    Scheduler = std::make_unique<engine::QueryScheduler>(*Built.Graph, EO);
  }

  std::string LoadPath = Args.getString("load-summaries", "");
  if (!LoadPath.empty()) {
    if (!AsDynSum) {
      errs() << "error: --load-summaries requires --analysis=dynsum\n";
      return 1;
    }
    bool Loaded = Scheduler ? Scheduler->loadSummaries(LoadPath)
                            : analysis::loadSummariesFile(*AsDynSum, LoadPath);
    if (Loaded)
      outs() << "loaded "
             << uint64_t(Scheduler ? Scheduler->store().size()
                                   : AsDynSum->cacheSize())
             << " summaries from " << LoadPath << '\n';
    else
      outs() << "note: could not load summaries from " << LoadPath
             << " (missing or different program); starting cold\n";
  }

  int Exit = 0;

  // Individual queries: resolve the specs, then answer them either as
  // one engine batch or one at a time.
  std::vector<std::string> QuerySpecs = Args.getAll("query");
  std::vector<std::pair<std::string, pag::NodeId>> QueryNodes;
  for (const std::string &Value : QuerySpecs) {
    pag::NodeId Node = 0;
    if (!findQueryNode(*Prog, *Built.Graph, Value, Node)) {
      Exit = 1;
      continue;
    }
    QueryNodes.emplace_back(Value, Node);
  }
  auto PrintAnswer = [&](const std::string &Value,
                         const std::vector<ir::AllocId> &Sites,
                         bool BudgetExceeded, uint64_t Steps) {
    outs() << "pts(" << Value << ") = {";
    bool First = true;
    for (ir::AllocId A : Sites) {
      if (!First)
        outs() << ", ";
      First = false;
      outs() << Prog->describeAlloc(A);
    }
    outs() << "}" << (BudgetExceeded ? " (budget exceeded: partial)" : "")
           << "  [" << Steps << " steps]\n";
  };
  if (Scheduler && !QueryNodes.empty()) {
    engine::QueryBatch Batch;
    for (const auto &[Value, Node] : QueryNodes)
      Batch.add(Node);
    engine::BatchResult R = Scheduler->run(Batch);
    for (size_t I = 0; I < QueryNodes.size(); ++I)
      PrintAnswer(QueryNodes[I].first, R.Outcomes[I].AllocSites,
                  R.Outcomes[I].BudgetExceeded, R.Outcomes[I].Steps);
  } else {
    for (const auto &[Value, Node] : QueryNodes) {
      analysis::QueryResult R = Analysis->query(Node);
      PrintAnswer(Value, R.allocSites(), R.BudgetExceeded, R.Steps);
    }
  }

  // Clients.
  std::string ClientName = Args.getString("client", "");
  if (!ClientName.empty()) {
    size_t MaxQueries = size_t(Args.getInt("max-queries", 0));
    std::vector<std::unique_ptr<clients::Client>> Selected;
    for (auto &C : clients::makeAllClients()) {
      std::string Lower = C->name();
      for (char &Ch : Lower)
        Ch = char(std::tolower(static_cast<unsigned char>(Ch)));
      if (ClientName == "all" || ClientName == Lower)
        Selected.push_back(std::move(C));
    }
    if (Selected.empty()) {
      errs() << "error: unknown client '" << ClientName << "'\n";
      return usage();
    }
    PrettyTable T;
    T.row()
        .cell("client")
        .cell("queries")
        .cell("proven")
        .cell("refuted")
        .cell("unknown")
        .cell("steps")
        .cell("seconds");
    for (const auto &C : Selected) {
      std::vector<clients::ClientQuery> Qs =
          C->makeQueries(*Built.Graph, MaxQueries);
      clients::ClientReport Rep =
          Scheduler ? runClientBatched(*C, *Scheduler, Qs)
                    : runClient(*C, *Analysis, Qs);
      T.row()
          .cell(Rep.ClientName)
          .cell(Rep.NumQueries)
          .cell(Rep.Proven)
          .cell(Rep.Refuted)
          .cell(Rep.Unknown)
          .cell(Rep.TotalSteps)
          .cell(Rep.Seconds, 3);
    }
    T.print(outs());
  }

  std::string SavePath = Args.getString("save-summaries", "");
  if (!SavePath.empty()) {
    if (!AsDynSum) {
      errs() << "error: --save-summaries requires --analysis=dynsum\n";
      return 1;
    }
    bool Saved = Scheduler ? Scheduler->saveSummaries(SavePath)
                           : analysis::saveSummariesFile(*AsDynSum, SavePath);
    if (Saved)
      outs() << "saved "
             << uint64_t(Scheduler ? Scheduler->store().size()
                                   : AsDynSum->cacheSize())
             << " summaries to " << SavePath << '\n';
    else {
      errs() << "error: cannot write " << SavePath << '\n';
      Exit = 1;
    }
  }

  return Exit;
}
} // namespace
