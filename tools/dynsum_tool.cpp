//===----------------------------------------------------------------------===//
///
/// \file
/// dynsum — the command-line driver for the whole library.
///
/// Loads a program from a MiniJava source file (.mj/.minijava/.java) or
/// a textual-IR file (anything else), builds the PAG, and either runs a
/// client over it or answers individual points-to queries.
///
/// Usage:
///   dynsum <file> [--analysis=dynsum|refine|norefine|andersen]
///                 [--resolver=cha|rta|andersen]
///                 [--client=safecast|nullderef|factorym|devirt|all]
///                 [--query=Class.method.var]...  (repeatable flag, or
///                                                 free.method.var for
///                                                 ownerless methods)
///                 [--budget=N] [--max-queries=N] [--threads=N]
///                 [--commit-threads=N] [--keep-generations=N]
///                 [--stats] [--dump-ir] [--dump-pag]
///                 [--serve] [--save-summaries=path] [--load-summaries=path]
///                 [--snapshot=path] [--warm-from-disk=path]
///                 [--store-stripes=N] [--presummarize]
///
/// --threads routes queries and clients through the parallel batch
/// engine (dynsum only; 0 = one worker per hardware thread); summary
/// save/load then goes through the engine's shared store.
///
/// --serve starts an interactive AnalysisService session on stdin: a
/// line-oriented edit/query loop over the loaded program ("help" lists
/// the commands).  Queries run through the parallel engine against the
/// current generation; edits buffer until "commit" publishes the next
/// one ("commit --async" queues it on the background committer instead
/// of blocking the REPL; --commit-threads=N shards the commit pipeline
/// itself).  --keep-generations=N retains superseded snapshots: the
/// "generations" command lists them with their structural-sharing cost
/// and "rollback <gen>" republishes one in O(1).  "save"/"load" persist
/// warm summaries across serve sessions.
///
/// --snapshot=path is the warm-restart loop in one flag: the service
/// saves its summary store there on shutdown and, on the next start,
/// attaches the same file as the store's memory-mapped read-only disk
/// tier — first queries answer from disk hits instead of recomputing.
/// --presummarize (serve only) turns on the post-commit warmer: after
/// each published commit a background pass re-summarizes the
/// recently-queried variables (PresummarizeScope::Hot), so the first
/// batch after an edit hits the store instead of computing.
///
/// --warm-from-disk=path warms from a different file than the shutdown
/// snapshot; --store-stripes=N sets the hot tier's lock-stripe count.
///
/// Examples:
///   dynsum prog.mj --client=all
///   dynsum prog.ir --analysis=refine --client=nullderef --budget=10000
///   dynsum prog.mj --query=Main.main.result --stats
///   dynsum prog.mj --client=all --threads=8
///   dynsum prog.ir --serve --threads=4 --commit-threads=8
///
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "analysis/SummaryIO.h"
#include "clients/Client.h"
#include "engine/QueryScheduler.h"
#include "frontend/Frontend.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Validator.h"
#include "pag/GraphViz.h"
#include "pag/PAGBuilder.h"
#include "pag/Rta.h"
#include "server/CommandInterpreter.h"
#include "service/AnalysisService.h"
#include "support/CommandLine.h"
#include "support/OStream.h"
#include "support/PrettyTable.h"
#include "support/Shutdown.h"
#include "support/StringExtras.h"

#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace dynsum;

namespace {

/// Loads \p Path as MiniJava or textual IR by extension (shared with
/// dynsum_serverd through server::loadProgramFile).
std::unique_ptr<ir::Program> loadProgram(const std::string &Path) {
  std::string Error;
  std::unique_ptr<ir::Program> Prog = server::loadProgramFile(Path, Error);
  if (!Prog)
    errs() << "error: " << Error << '\n';
  return Prog;
}

/// Resolves "Class.method.var" / "method.var" to a PAG variable node,
/// reporting what part failed to resolve.
bool findQueryNode(const ir::Program &P, const pag::PAG &G,
                   const std::string &Spec, pag::NodeId &Node) {
  ir::VarId V = server::resolveVarSpec(P, Spec);
  if (V == ir::kNone) {
    errs() << "error: cannot resolve '" << Spec
           << "' (expected Class.method.var or method.var)\n";
    return false;
  }
  Node = G.nodeOfVar(V);
  return true;
}

/// Creates the selected analysis; \p OutDynSum is set when it is a
/// DynSumAnalysis so the summary save/load flags can reach it without
/// RTTI.
std::unique_ptr<analysis::DemandAnalysis>
makeAnalysis(const std::string &Name, const pag::PAG &G,
             const analysis::AnalysisOptions &Opts,
             analysis::DynSumAnalysis *&OutDynSum) {
  OutDynSum = nullptr;
  if (Name == "dynsum") {
    auto A = std::make_unique<analysis::DynSumAnalysis>(G, Opts);
    OutDynSum = A.get();
    return A;
  }
  if (Name == "refine")
    return std::make_unique<analysis::RefinePtsAnalysis>(G, Opts);
  if (Name == "norefine")
    return std::make_unique<analysis::RefinePtsAnalysis>(G, Opts,
                                                         /*Refinement=*/false);
  return nullptr;
}

int usage() {
  errs() << "usage: dynsum <file.{mj,ir}> [--analysis=dynsum|refine|"
            "norefine] [--resolver=cha|rta|andersen]\n"
            "              [--client=safecast|nullderef|factorym|devirt|all]"
            " [--query=Class.method.var]\n"
            "              [--budget=N] [--max-queries=N] [--threads=N]"
            " [--commit-threads=N] [--stats] [--dump-pag] [--serve]\n"
            "              [--save-summaries=path] [--load-summaries=path]\n"
            "              [--snapshot=path] [--warm-from-disk=path]"
            " [--store-stripes=N]\n";
  return 2;
}

//===----------------------------------------------------------------------===//
// --serve: an interactive AnalysisService session on stdin
//===----------------------------------------------------------------------===//

int runServe(std::unique_ptr<ir::Program> Prog,
             const analysis::AnalysisOptions &AO, unsigned Threads,
             unsigned CommitThreads, unsigned KeepGenerations,
             const std::string &Snapshot, const std::string &WarmPath,
             unsigned StoreStripes, bool Presummarize) {
  service::ServiceOptions SO;
  SO.Engine.NumThreads = Threads;
  SO.Engine.Analysis = AO;
  SO.Commit = CommitThreads;
  SO.KeepGenerations = KeepGenerations;
  SO.StoreStripes = StoreStripes;
  SO.Presummarize = Presummarize;
  // --snapshot=path is the warm-restart loop in one flag: save the
  // store there on shutdown AND attach the same file as the disk tier
  // on startup.  --warm-from-disk overrides just the startup side.
  SO.SnapshotOnShutdownPath = Snapshot;
  SO.WarmFromDiskPath = WarmPath.empty() ? Snapshot : WarmPath;
  service::AnalysisService S(std::move(Prog), SO);
  outs() << "dynsum serve: " << uint64_t(S.program().methods().size())
         << " methods, " << uint64_t(S.program().variables().size())
         << " variables; \"help\" lists commands\n";
  if (!SO.WarmFromDiskPath.empty()) {
    if (S.stats().DiskTierAttached)
      outs() << "warm tier: " << SO.WarmFromDiskPath
             << " attached (hot misses probe the mapped snapshot)\n";
    else
      outs() << "warm tier: " << SO.WarmFromDiskPath
             << " not attached (missing/stale snapshot); starting cold\n";
  }

  support::installShutdownHandlers();
  server::CommandInterpreter Interp(S);
  std::string Line;
  for (;;) {
    if (support::shutdownRequested()) {
      // A SIGINT/SIGTERM mid-session drains like "quit": the normal
      // return below unwinds ~AnalysisService, which saves --snapshot.
      outs() << '\n'
             << (support::shutdownSignal() == SIGTERM ? "SIGTERM" : "SIGINT")
             << ": shutting down"
             << (Snapshot.empty() ? "" : " (snapshot saves)") << '\n';
      break;
    }
    outs() << "dynsum> ";
    outs().flush();
    server::LineStatus LS =
        server::readCommandLine(stdin, Line, server::kMaxReplLineBytes);
    if (LS == server::LineStatus::Interrupted)
      continue; // the loop head re-checks the shutdown flag
    if (LS == server::LineStatus::Eof)
      break;
    if (LS == server::LineStatus::Overflow) {
      // One command, one error: the overlong line is drained whole, so
      // its tail can no longer execute as a second command.
      errs() << "error: line exceeds " << uint64_t(server::kMaxReplLineBytes)
             << " bytes (ignored)\n";
      continue;
    }
    if (Interp.execute(Line, outs(), errs()) == server::CommandStatus::Quit)
      break;
  }
  return 0;
}

} // namespace

namespace {
int runTool(int argc, char **argv);
} // namespace

int main(int argc, char **argv) {
  // Last-resort containment: whatever a malformed input or an internal
  // failure throws, the tool reports it and exits nonzero — it never
  // aborts with an unhandled exception.
  try {
    return runTool(argc, argv);
  } catch (const std::exception &E) {
    errs() << "fatal: " << E.what() << '\n';
    return 1;
  } catch (...) {
    errs() << "fatal: unknown error\n";
    return 1;
  }
}

namespace {
int runTool(int argc, char **argv) {
  CommandLine Args(argc, argv);
  if (Args.positional().empty())
    return usage();

  std::unique_ptr<ir::Program> Prog = loadProgram(Args.positional().front());
  if (!Prog)
    return 1;
  std::vector<std::string> Problems = ir::validate(*Prog);
  if (!Problems.empty()) {
    errs() << "error: invalid program: " << Problems.front() << '\n';
    return 1;
  }

  // Interactive service session: the AnalysisService builds and rebuilds
  // its own PAG per generation, so it takes over right here.
  if (Args.has("serve")) {
    analysis::AnalysisOptions ServeOpts;
    ServeOpts.BudgetPerQuery = uint64_t(Args.getInt("budget", 75000));
    int64_t ServeThreads = Args.getInt("threads", 4);
    int64_t CommitThreads = Args.getInt("commit-threads", 1);
    int64_t KeepGenerations = Args.getInt("keep-generations", 0);
    int64_t StoreStripes = Args.getInt("store-stripes", 0);
    return runServe(std::move(Prog), ServeOpts,
                    ServeThreads < 0 ? 0u : unsigned(ServeThreads),
                    CommitThreads < 0 ? 0u : unsigned(CommitThreads),
                    KeepGenerations < 0 ? 0u : unsigned(KeepGenerations),
                    Args.getString("snapshot", ""),
                    Args.getString("warm-from-disk", ""),
                    StoreStripes < 0 ? 0u : unsigned(StoreStripes),
                    Args.has("presummarize"));
  }

  // Dispatch resolver.
  std::string ResolverName = Args.getString("resolver", "cha");
  std::unique_ptr<pag::RtaTargetResolver> Rta;
  pag::BuiltPAG Built;
  if (ResolverName == "cha") {
    Built = pag::buildPAG(*Prog);
  } else if (ResolverName == "rta") {
    Rta = std::make_unique<pag::RtaTargetResolver>(*Prog);
    Built = pag::buildPAG(*Prog, Rta.get());
  } else if (ResolverName == "andersen") {
    pag::BuiltPAG Cha = pag::buildPAG(*Prog);
    analysis::AndersenAnalysis Andersen(*Cha.Graph);
    Andersen.solve();
    analysis::AndersenTargetResolver Refined(Andersen, *Cha.Graph);
    Built = pag::buildPAG(*Prog, &Refined);
  } else {
    errs() << "error: unknown resolver '" << ResolverName << "'\n";
    return usage();
  }

  if (Args.has("stats")) {
    pag::PAGStats Stats = Built.Graph->stats();
    outs() << "methods " << Stats.NumMethods << ", objects "
           << Stats.NumObjects << ", locals " << Stats.NumLocals
           << ", globals " << Stats.NumGlobals << ", edges "
           << Stats.totalEdges() << " (locality ";
    outs().writeFixed(Stats.locality() * 100.0, 1);
    outs() << "%)\n";
  }
  if (Args.has("dump-ir")) {
    ir::printProgram(*Prog, outs());
    return 0;
  }
  if (Args.has("dump-pag")) {
    pag::writeGraphViz(*Built.Graph, outs());
    return 0;
  }

  analysis::AnalysisOptions Opts;
  Opts.BudgetPerQuery = uint64_t(Args.getInt("budget", 75000));
  std::string AnalysisName = Args.getString("analysis", "dynsum");
  analysis::DynSumAnalysis *AsDynSum = nullptr;
  std::unique_ptr<analysis::DemandAnalysis> Analysis =
      makeAnalysis(AnalysisName, *Built.Graph, Opts, AsDynSum);
  if (!Analysis) {
    errs() << "error: unknown analysis '" << AnalysisName << "'\n";
    return usage();
  }

  // The parallel batch engine: shards queries across worker threads
  // with a shared summary store (dynsum only).
  std::unique_ptr<engine::QueryScheduler> Scheduler;
  if (Args.has("threads")) {
    if (!AsDynSum) {
      errs() << "error: --threads requires --analysis=dynsum\n";
      return 1;
    }
    int64_t Threads = Args.getInt("threads", 0);
    if (Threads < 0) {
      errs() << "error: --threads must be >= 0 (0 = auto)\n";
      return usage();
    }
    engine::EngineOptions EO;
    EO.NumThreads = unsigned(Threads);
    EO.Analysis = Opts;
    Scheduler = std::make_unique<engine::QueryScheduler>(*Built.Graph, EO);
  }

  std::string LoadPath = Args.getString("load-summaries", "");
  if (!LoadPath.empty()) {
    if (!AsDynSum) {
      errs() << "error: --load-summaries requires --analysis=dynsum\n";
      return 1;
    }
    bool Loaded = Scheduler ? Scheduler->loadSummaries(LoadPath)
                            : analysis::loadSummariesFile(*AsDynSum, LoadPath);
    if (Loaded)
      outs() << "loaded "
             << uint64_t(Scheduler ? Scheduler->store().size()
                                   : AsDynSum->cacheSize())
             << " summaries from " << LoadPath << '\n';
    else
      outs() << "note: could not load summaries from " << LoadPath
             << " (missing or different program); starting cold\n";
  }

  int Exit = 0;

  // Individual queries: resolve the specs, then answer them either as
  // one engine batch or one at a time.
  std::vector<std::string> QuerySpecs = Args.getAll("query");
  std::vector<std::pair<std::string, pag::NodeId>> QueryNodes;
  for (const std::string &Value : QuerySpecs) {
    pag::NodeId Node = 0;
    if (!findQueryNode(*Prog, *Built.Graph, Value, Node)) {
      Exit = 1;
      continue;
    }
    QueryNodes.emplace_back(Value, Node);
  }
  auto PrintAnswer = [&](const std::string &Value,
                         const std::vector<ir::AllocId> &Sites,
                         bool BudgetExceeded, uint64_t Steps) {
    outs() << "pts(" << Value << ") = {";
    bool First = true;
    for (ir::AllocId A : Sites) {
      if (!First)
        outs() << ", ";
      First = false;
      outs() << Prog->describeAlloc(A);
    }
    outs() << "}" << (BudgetExceeded ? " (budget exceeded: partial)" : "")
           << "  [" << Steps << " steps]\n";
  };
  if (Scheduler && !QueryNodes.empty()) {
    engine::QueryBatch Batch;
    for (const auto &[Value, Node] : QueryNodes)
      Batch.add(Node);
    engine::BatchResult R = Scheduler->run(Batch);
    for (size_t I = 0; I < QueryNodes.size(); ++I)
      PrintAnswer(QueryNodes[I].first, R.Outcomes[I].AllocSites,
                  R.Outcomes[I].BudgetExceeded, R.Outcomes[I].Steps);
  } else {
    for (const auto &[Value, Node] : QueryNodes) {
      analysis::QueryResult R = Analysis->query(Node);
      PrintAnswer(Value, R.allocSites(), R.BudgetExceeded, R.Steps);
    }
  }

  // Clients.
  std::string ClientName = Args.getString("client", "");
  if (!ClientName.empty()) {
    size_t MaxQueries = size_t(Args.getInt("max-queries", 0));
    std::vector<std::unique_ptr<clients::Client>> Selected;
    for (auto &C : clients::makeAllClients()) {
      std::string Lower = C->name();
      for (char &Ch : Lower)
        Ch = char(std::tolower(static_cast<unsigned char>(Ch)));
      if (ClientName == "all" || ClientName == Lower)
        Selected.push_back(std::move(C));
    }
    if (Selected.empty()) {
      errs() << "error: unknown client '" << ClientName << "'\n";
      return usage();
    }
    PrettyTable T;
    T.row()
        .cell("client")
        .cell("queries")
        .cell("proven")
        .cell("refuted")
        .cell("unknown")
        .cell("steps")
        .cell("seconds");
    for (const auto &C : Selected) {
      std::vector<clients::ClientQuery> Qs =
          C->makeQueries(*Built.Graph, MaxQueries);
      clients::ClientReport Rep =
          Scheduler ? runClientBatched(*C, *Scheduler, Qs)
                    : runClient(*C, *Analysis, Qs);
      T.row()
          .cell(Rep.ClientName)
          .cell(Rep.NumQueries)
          .cell(Rep.Proven)
          .cell(Rep.Refuted)
          .cell(Rep.Unknown)
          .cell(Rep.TotalSteps)
          .cell(Rep.Seconds, 3);
    }
    T.print(outs());
  }

  std::string SavePath = Args.getString("save-summaries", "");
  if (!SavePath.empty()) {
    if (!AsDynSum) {
      errs() << "error: --save-summaries requires --analysis=dynsum\n";
      return 1;
    }
    bool Saved = Scheduler ? Scheduler->saveSummaries(SavePath)
                           : analysis::saveSummariesFile(*AsDynSum, SavePath);
    if (Saved)
      outs() << "saved "
             << uint64_t(Scheduler ? Scheduler->store().size()
                                   : AsDynSum->cacheSize())
             << " summaries to " << SavePath << '\n';
    else {
      errs() << "error: cannot write " << SavePath << '\n';
      Exit = 1;
    }
  }

  return Exit;
}
} // namespace
