#!/usr/bin/env bash
# Crash-recovery smoke: kill -9 a serve session that is saving its
# summary snapshot in a tight loop, then assert the snapshot on disk
# still loads — it must be either the previous save or the new one,
# never a torn mix.  This exercises the atomic save path in
# SummaryIO::saveSummariesFile (temp file + fsync + rename): a crash at
# ANY instant may strand a *.tmp file, but the target path is only ever
# touched by rename(2).
#
# Usage: scripts/crash_recovery_smoke.sh [build-dir] [iterations]
#
# Exits nonzero on the first iteration whose snapshot fails to load.
set -u

BUILD=${1:-build}
ITERS=${2:-25}
TOOL=$BUILD/dynsum_tool
IR=tests/golden/dsum_corpus/figure2.ir
WORK=$(mktemp -d)
STORE=$WORK/store.dsum
trap 'rm -rf "$WORK"' EXIT

if [ ! -x "$TOOL" ]; then
  echo "error: $TOOL is not built (run: cmake --build $BUILD --target dynsum_tool)" >&2
  exit 1
fi
if [ ! -f "$IR" ]; then
  echo "error: $IR not found (run from the repository root)" >&2
  exit 1
fi

# Warm a couple of summaries, then save: the REPL script every serve
# session below replays before its save loop.
WARMUP=$(printf 'query Main.main.s1\nquery Main.main.s2\nquery Vector.get.ret\n')

# The snapshot must parse as a well-formed DSUM file AND yield warm
# summaries; "starting cold" means the load was rejected.
load_ok() {
  "$TOOL" "$IR" --analysis=dynsum --load-summaries="$STORE" \
    --query=Vector.get.ret 2>/dev/null | grep -q 'loaded .* summaries'
}

# Seed the "old" snapshot with one clean save.
{ printf '%s\nsave %s\nquit\n' "$WARMUP" "$STORE"; } \
  | "$TOOL" "$IR" --analysis=dynsum --serve >/dev/null 2>&1
if ! load_ok; then
  echo "error: the seed save did not produce a loadable snapshot" >&2
  exit 1
fi

FAILED=0
for I in $(seq 1 "$ITERS"); do
  # A serve session saving over the same target as fast as it can...
  { printf '%s\n' "$WARMUP"; yes "save $STORE"; } 2>/dev/null \
    | "$TOOL" "$IR" --analysis=dynsum --serve >/dev/null 2>&1 &
  PID=$!
  # ...killed -9 after a delay swept across the save window (5-105 ms)
  # so the shot lands at a different byte offset every iteration.
  sleep "0.$(printf '%03d' $((5 + (I * 37) % 100)))"
  kill -9 "$PID" 2>/dev/null
  wait "$PID" 2>/dev/null
  # A stranded temp file is the expected crash debris; clear it so the
  # next iteration starts clean.  The TARGET must still load.
  rm -f "$STORE.tmp"
  if ! load_ok; then
    echo "FAIL: iteration $I left an unloadable snapshot at $STORE" >&2
    FAILED=1
    break
  fi
done

if [ "$FAILED" -ne 0 ]; then
  exit 1
fi
echo "crash-recovery smoke: $ITERS kill -9 shots, snapshot loadable every time"
