#!/usr/bin/env bash
# Crash-recovery smoke: kill -9 a serve session that is saving its
# summary snapshot in a tight loop, then assert the snapshot on disk
# still loads — it must be either the previous save or the new one,
# never a torn mix.  This exercises the atomic save path in
# SummaryIO::saveSummariesFile (temp file + fsync + rename): a crash at
# ANY instant may strand a *.tmp file, but the target path is only ever
# touched by rename(2).
#
# A second case covers GRACEFUL interruption: a serve session holding
# --snapshot gets SIGTERM mid-session (parked in its stdin read) and
# must still write the shutdown snapshot — the signal handlers install
# without SA_RESTART, the read returns EINTR, and the session unwinds
# through the normal destructor path instead of dying snapshotless.
#
# Usage: scripts/crash_recovery_smoke.sh [build-dir] [iterations]
#
# Exits nonzero on the first iteration whose snapshot fails to load.
set -u

BUILD=${1:-build}
ITERS=${2:-25}
TOOL=$BUILD/dynsum_tool
IR=tests/golden/dsum_corpus/figure2.ir
WORK=$(mktemp -d)
STORE=$WORK/store.dsum
trap 'rm -rf "$WORK"' EXIT

if [ ! -x "$TOOL" ]; then
  echo "error: $TOOL is not built (run: cmake --build $BUILD --target dynsum_tool)" >&2
  exit 1
fi
if [ ! -f "$IR" ]; then
  echo "error: $IR not found (run from the repository root)" >&2
  exit 1
fi

# Warm a couple of summaries, then save: the REPL script every serve
# session below replays before its save loop.
WARMUP=$(printf 'query Main.main.s1\nquery Main.main.s2\nquery Vector.get.ret\n')

# The snapshot must parse as a well-formed DSUM file AND yield warm
# summaries; "starting cold" means the load was rejected.
load_ok() {
  local FILE=${1:-$STORE}
  "$TOOL" "$IR" --analysis=dynsum --load-summaries="$FILE" \
    --query=Vector.get.ret 2>/dev/null | grep -q 'loaded .* summaries'
}

# Seed the "old" snapshot with one clean save.
{ printf '%s\nsave %s\nquit\n' "$WARMUP" "$STORE"; } \
  | "$TOOL" "$IR" --analysis=dynsum --serve >/dev/null 2>&1
if ! load_ok; then
  echo "error: the seed save did not produce a loadable snapshot" >&2
  exit 1
fi

FAILED=0
for I in $(seq 1 "$ITERS"); do
  # A serve session saving over the same target as fast as it can...
  { printf '%s\n' "$WARMUP"; yes "save $STORE"; } 2>/dev/null \
    | "$TOOL" "$IR" --analysis=dynsum --serve >/dev/null 2>&1 &
  PID=$!
  # ...killed -9 after a delay swept across the save window (5-105 ms)
  # so the shot lands at a different byte offset every iteration.
  sleep "0.$(printf '%03d' $((5 + (I * 37) % 100)))"
  kill -9 "$PID" 2>/dev/null
  wait "$PID" 2>/dev/null
  # A stranded temp file is the expected crash debris; clear it so the
  # next iteration starts clean.  The TARGET must still load.
  rm -f "$STORE.tmp"
  if ! load_ok; then
    echo "FAIL: iteration $I left an unloadable snapshot at $STORE" >&2
    FAILED=1
    break
  fi
done

if [ "$FAILED" -ne 0 ]; then
  exit 1
fi
echo "crash-recovery smoke: $ITERS kill -9 shots, snapshot loadable every time"

# --- SIGTERM mid-session: the graceful half of the story ---------------
# The session warms a few summaries, then parks in its stdin read (the
# sleep keeps the pipe open with no further input).  SIGTERM must make
# it save --snapshot on the way out, exactly like a clean "quit".
TERMSTORE=$WORK/term.dsum
{ printf '%s\n' "$WARMUP"; sleep 30; } \
  | "$TOOL" "$IR" --analysis=dynsum --serve --snapshot="$TERMSTORE" \
    >/dev/null 2>&1 &
PID=$!
sleep 1 # let the warmup queries land; the session then parks in fgets
kill -TERM "$PID" 2>/dev/null
wait "$PID" 2>/dev/null
if [ ! -s "$TERMSTORE" ]; then
  echo "FAIL: SIGTERM mid-session left no snapshot at $TERMSTORE" >&2
  exit 1
fi
if ! load_ok "$TERMSTORE"; then
  echo "FAIL: the SIGTERM-mid-session snapshot does not load" >&2
  exit 1
fi
echo "crash-recovery smoke: SIGTERM mid-session saved a loadable snapshot"
