#!/usr/bin/env bash
# Loopback smoke for dynsum_serverd: start the server with two tenants,
# drive both through edit/query/commit over real sockets (asserting
# per-tenant isolation and the one-error overflow contract on the way),
# SIGTERM it mid-run, and assert the graceful drain snapshotted every
# tenant — then restart over the same snapshot directory and assert the
# un-edited tenant answers its first batch warm from the disk tier.
# (The edited tenant's snapshot is fingerprinted against its COMMITTED
# program, so a restart over the original source intentionally refuses
# the stale warm attach — that refusal is correctness, not a failure.)
#
# Usage: scripts/serverd_smoke.sh [build-dir]
set -u

BUILD=${1:-build}
SERVERD=$BUILD/dynsum_serverd
IR=tests/golden/dsum_corpus/figure2.ir
WORK=$(mktemp -d)
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

if [ ! -x "$SERVERD" ]; then
  echo "error: $SERVERD is not built (run: cmake --build $BUILD --target dynsum_serverd)" >&2
  exit 1
fi
if [ ! -f "$IR" ]; then
  echo "error: $IR not found (run from the repository root)" >&2
  exit 1
fi

start_server() { # start_server <tenant flags...>; sets SRV_PID and PORT
  rm -f "$WORK/port"
  "$SERVERD" "$@" --snapshot-dir="$WORK" --port-file="$WORK/port" \
    --threads=1 >"$WORK/server.log" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
      echo "error: dynsum_serverd died on startup:" >&2
      cat "$WORK/server.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  PORT=$(cat "$WORK/port")
}

# One python client process per session script: sends each line, reads
# the "."-terminated reply block, and checks the expectation patterns
# passed on stdin as "command<TAB>required substring<TAB>forbidden".
drive() { # drive <port>
  python3 - "$1" <<'PYEOF'
import socket, sys

port = int(sys.argv[1])
s = socket.create_connection(("127.0.0.1", port), timeout=10)
f = s.makefile("rw", newline="\n")

def block():
    out = []
    while True:
        line = f.readline()
        if not line or line == ".\n":
            return "".join(out)
        out.append(line)

block()  # greeting
failed = 0
for spec in sys.stdin.read().splitlines():
    if not spec.strip():
        continue
    cmd, want, forbid = (spec.split("\t") + ["", ""])[:3]
    f.write(cmd + "\n")
    f.flush()
    reply = block()
    if want and want not in reply:
        print(f"FAIL: '{cmd}' reply lacks '{want}':\n{reply}", file=sys.stderr)
        failed = 1
    if forbid and forbid in reply:
        print(f"FAIL: '{cmd}' reply contains forbidden '{forbid}':\n{reply}",
              file=sys.stderr)
        failed = 1
s.close()
sys.exit(failed)
PYEOF
}

# --- Round 1: two tenants, edits in alpha only, isolation in beta ------
start_server --tenant=alpha="$IR" --tenant=beta="$IR"

printf '%s\n' \
  $'tenants\talpha' \
  $'tenant alpha\ttenant alpha bound' \
  $'query Main.main.s1\t{o26:Integer}' \
  $'alloc Main.main s1 String\tbuffered: s1 = new String' \
  $'assign Main main.s1 main.s2\terror: unknown method' \
  $'commit\tgeneration 1' \
  $'query Main.main.s1\ts1@serve:String' \
  "query $(printf 'x%.0s' $(seq 1 5000))	error: line exceeds" \
  $'query Main.main.s1\ts1@serve:String' \
  $'quit\tbye' \
  | drive "$PORT" || { echo "FAIL: alpha session" >&2; exit 1; }

printf '%s\n' \
  $'tenant beta\ttenant beta bound' \
  $'query Main.main.s1\t{o26:Integer}\ts1@serve' \
  $'stats\tgeneration 0' \
  $'quit\tbye' \
  | drive "$PORT" || { echo "FAIL: beta session (isolation)" >&2; exit 1; }

# --- SIGTERM: the drain must snapshot every tenant ---------------------
kill -TERM "$SRV_PID"
wait "$SRV_PID"
RC=$?
SRV_PID=""
if [ "$RC" -ne 0 ]; then
  echo "FAIL: serverd exited $RC on SIGTERM:" >&2
  cat "$WORK/server.log" >&2
  exit 1
fi
for T in alpha beta; do
  if [ ! -s "$WORK/$T.dsum" ]; then
    echo "FAIL: SIGTERM drain left no snapshot for tenant $T" >&2
    exit 1
  fi
done
if ! grep -q 'drained' "$WORK/server.log"; then
  echo "FAIL: no drain line in the server log" >&2
  exit 1
fi

# --- Round 2: restart; the un-edited tenant must answer warm -----------
start_server --tenant=beta="$IR"

printf '%s\n' \
  $'tenant beta\ttenant beta bound' \
  $'query Main.main.s1\t{o26:Integer}' \
  $'stats\tdisk tier: attached' \
  $'quit\tbye' \
  | drive "$PORT" || { echo "FAIL: beta did not restart warm" >&2; exit 1; }

kill -TERM "$SRV_PID"
wait "$SRV_PID" || true
SRV_PID=""

echo "serverd smoke: 2 tenants driven, isolated, SIGTERM-drained, warm restart verified"
