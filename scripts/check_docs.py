#!/usr/bin/env python3
"""Repo documentation checks, run by the CI docs job.

1. Markdown link check: every relative link in README.md and docs/*.md
   must resolve to an existing file or directory (http(s)/mailto links
   and pure #anchors are skipped; a #fragment on a relative link is
   stripped before the existence check).
2. Header-banner check: every src/service/*.{h,cpp} and
   src/server/*.{h,cpp} file must open with the repo's //===--- banner
   and carry a \\file doxygen marker, like the rest of src/.

Exits non-zero with one line per violation.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

def check_links(md_files):
    problems = []
    for md in md_files:
        text = md.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(REPO)}: broken link -> {target}")
    return problems

def check_banners(src_files):
    problems = []
    for src in src_files:
        head = src.read_text(encoding="utf-8", errors="replace")[:600]
        rel = src.relative_to(REPO)
        if not head.startswith("//===--"):
            problems.append(f"{rel}: missing //===--- header banner")
        if "\\file" not in head:
            problems.append(f"{rel}: missing \\file doxygen marker")
    return problems

def main():
    md_files = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    md_files = [f for f in md_files if f.exists()]
    src_files = []
    for subdir in ("service", "server"):
        src_files += sorted((REPO / "src" / subdir).glob("*.h"))
        src_files += sorted((REPO / "src" / subdir).glob("*.cpp"))

    problems = check_links(md_files) + check_banners(src_files)
    for p in problems:
        print(p)
    print(f"checked {len(md_files)} markdown files, "
          f"{len(src_files)} service/server sources: "
          f"{'FAIL' if problems else 'OK'}")
    return 1 if problems else 0

if __name__ == "__main__":
    sys.exit(main())
