//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental analysis sessions: program edits with warm DYNSUM
/// summaries.
///
/// The paper motivates DYNSUM for "environments such as JIT compilers
/// and IDEs, particularly when the program constantly undergoes a lot
/// of edits" (Sections 1 and 7).  This module implements that scenario
/// end to end: an EditSession owns a program, its PAG and a DYNSUM
/// instance; edits are buffered, committed with an in-place PAG rebuild,
/// and the summary cache is kept warm by dropping only what an edit can
/// invalidate.
///
/// Why per-method invalidation is exact: a PPTA summary keyed at a node
/// of method m depends on (a) m's local edges and (b) the global-edge
/// boundary flags of m's nodes.  Editing m changes (a) only for m;
/// edits elsewhere can only change (b) — e.g. adding the first call to
/// m flips HasGlobalIn on m's formals, which decides whether Algorithm 3
/// records a boundary tuple there.  commit() therefore invalidates the
/// directly edited methods plus every method whose node flags changed,
/// which it finds by diffing flags across the rebuild.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_INCREMENTAL_EDITSESSION_H
#define DYNSUM_INCREMENTAL_EDITSESSION_H

#include "analysis/DynSum.h"
#include "pag/PAGBuilder.h"

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

namespace dynsum {
namespace incremental {

/// What commit() drops from the summary cache.
enum class InvalidationPolicy : uint8_t {
  ClearAll,  ///< baseline: drop everything on every commit
  PerMethod, ///< drop edited + boundary-changed methods only
};

/// Outcome of one commit, for reporting and the ablation bench.
struct CommitStats {
  uint64_t SummariesBefore = 0;
  uint64_t SummariesDropped = 0;
  uint64_t MethodsInvalidated = 0;
  bool NodesRemapped = false;
};

/// An editable program with an always-warm DYNSUM analysis.
///
/// Edits go through addStatement / removeStatements (or mutate the
/// program directly followed by markDirty) and take effect at the next
/// commit().  Queries auto-commit, so a session is never observed stale.
class EditSession {
public:
  /// Takes ownership of \p P.  The initial build is performed eagerly.
  EditSession(std::unique_ptr<ir::Program> P,
              const analysis::AnalysisOptions &Opts,
              InvalidationPolicy Policy = InvalidationPolicy::PerMethod);

  ir::Program &program() { return *Prog; }
  const ir::Program &program() const { return *Prog; }
  const pag::PAG &graph() const { return Graph; }
  const pag::CallGraph &callGraph() const { return Calls; }
  analysis::DynSumAnalysis &analysis() { return DynSum; }

  //===------------------------------------------------------------------===//
  // Edits
  //===------------------------------------------------------------------===//

  /// Appends \p S to method \p M.
  void addStatement(ir::MethodId M, ir::Statement S);

  /// Removes every statement of \p M matching \p Pred; returns how many.
  size_t removeStatements(ir::MethodId M,
                          const std::function<bool(const ir::Statement &)> &Pred);

  /// Marks \p M edited after direct program() mutation.
  void markDirty(ir::MethodId M);

  /// True when edits are pending.
  bool dirty() const { return !DirtyMethods.empty(); }

  /// Applies pending edits: rebuilds the PAG in place and invalidates
  /// summaries per the session policy.  No-op when clean.
  CommitStats commit();

  /// Statistics of the most recent non-trivial commit.
  const CommitStats &lastCommit() const { return LastCommit; }

  //===------------------------------------------------------------------===//
  // Queries (auto-committing)
  //===------------------------------------------------------------------===//

  /// Points-to query for variable \p V in the empty context.
  analysis::QueryResult queryVar(ir::VarId V);

private:
  /// Records the per-node boundary flags the next commit diffs against.
  void snapshot();

  std::unique_ptr<ir::Program> Prog;
  pag::PAG Graph;
  pag::CallGraph Calls;
  analysis::DynSumAnalysis DynSum;
  InvalidationPolicy Policy;

  std::unordered_set<ir::MethodId> DirtyMethods;
  CommitStats LastCommit;

  /// Snapshot of the last build: node count of the variable prefix and
  /// per-node (method, flags) for the boundary diff.
  struct NodeFlags {
    ir::MethodId Method = ir::kNone;
    bool HasLocalEdge = false;
    bool HasGlobalIn = false;
    bool HasGlobalOut = false;
  };
  size_t LastNumVars = 0;
  std::vector<NodeFlags> LastFlags;
};

} // namespace incremental
} // namespace dynsum

#endif // DYNSUM_INCREMENTAL_EDITSESSION_H
