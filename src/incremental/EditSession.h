//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental analysis sessions: program edits with warm DYNSUM
/// summaries.
///
/// The paper motivates DYNSUM for "environments such as JIT compilers
/// and IDEs, particularly when the program constantly undergoes a lot
/// of edits" (Sections 1 and 7).  This module implements that scenario
/// end to end: an EditSession owns a program, its PAG and a DYNSUM
/// instance; edits are buffered and committed with a *delta* PAG build
/// (pag::buildPAGDelta) that re-lowers only the edited methods and
/// keeps every node id stable, and the summary cache is kept warm by
/// dropping only what an edit can invalidate.
///
/// Why per-method invalidation is exact: a PPTA summary keyed at a node
/// of method m depends on (a) m's local edges and (b) the global-edge
/// boundary flags of m's nodes.  Editing m changes (a) only for m;
/// edits elsewhere can only change (b) — e.g. adding the first call to
/// m flips HasGlobalIn on m's formals, which decides whether Algorithm 3
/// records a boundary tuple there.  commit() therefore invalidates the
/// directly edited methods plus every method whose node flags changed,
/// which it finds by diffing flags across the rebuild (the shared
/// incremental::planInvalidation).  Stable node ids make every other
/// summary valid verbatim — there is no remapping step.
///
/// A session may additionally be wired to a cross-thread
/// engine::SharedSummaryStore via attachStore(): its analysis then
/// fetches/publishes summaries through the store, and commit() applies
/// the same per-method invalidation to the store (bumping its
/// generation) that it applies to the private cache — so warm summaries
/// shared with other sessions, batch workers or a later warm start are
/// never left stale.  Sessions stay single-threaded; for concurrent
/// queries over an editable program use service::AnalysisService.
///
/// Dirty tracking lives in the ir::Program itself (per-method edit
/// clock): addStatement stamps automatically, direct mutations go
/// through markDirty, and commit() asks the program what moved.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_INCREMENTAL_EDITSESSION_H
#define DYNSUM_INCREMENTAL_EDITSESSION_H

#include "analysis/DynSum.h"
#include "incremental/Invalidation.h"
#include "pag/PAGBuilder.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace dynsum {

namespace engine {
class TieredSummaryStore;
/// The store kept its historical name at call sites (see
/// engine/TieredStore.h).
using SharedSummaryStore = TieredSummaryStore;
} // namespace engine

namespace incremental {

/// What commit() drops from the summary cache.
enum class InvalidationPolicy : uint8_t {
  ClearAll,  ///< baseline: drop everything on every commit
  PerMethod, ///< drop edited + boundary-changed methods only
};

/// How a commit ended.  Everything except Committed/NoOp leaves the
/// generation chain and the summary store exactly as they were: the
/// edits stay buffered and a later commit (after the bad edit is fixed
/// or the transient fault passes) covers them.
enum class CommitOutcome : uint8_t {
  Committed,          ///< a new generation was published
  NoOp,               ///< nothing was dirty
  ValidationRejected, ///< the pre-commit IR gate found invalid edits
  BuildFailed,        ///< the build pipeline threw (fault, bad_alloc...)
  Quarantined,        ///< poison-edit quarantine failed the request fast
  Shed,               ///< admission control refused the request
};

inline const char *toString(CommitOutcome O) {
  switch (O) {
  case CommitOutcome::Committed:
    return "committed";
  case CommitOutcome::NoOp:
    return "noop";
  case CommitOutcome::ValidationRejected:
    return "validation-rejected";
  case CommitOutcome::BuildFailed:
    return "build-failed";
  case CommitOutcome::Quarantined:
    return "quarantined";
  case CommitOutcome::Shed:
    return "shed";
  }
  return "?";
}

/// Outcome of one commit, for reporting and the ablation bench.
struct CommitStats {
  /// How the commit ended; on anything but Committed the remaining
  /// counters describe work done before the failure (usually none).
  CommitOutcome Outcome = CommitOutcome::NoOp;
  /// Diagnostic for ValidationRejected / BuildFailed / Quarantined.
  std::string Error;
  uint64_t SummariesBefore = 0;
  uint64_t SummariesDropped = 0;
  /// Summaries dropped from the attached SharedSummaryStore (0 when no
  /// store is attached).
  uint64_t SharedSummariesDropped = 0;
  uint64_t MethodsInvalidated = 0;
  /// Methods whose PAG segments the delta build re-lowered.
  uint64_t MethodsRelowered = 0;
  /// Wall-clock cost of the commit (filled by AnalysisService).
  double Seconds = 0.0;
  /// Pipeline phase breakdown, carried up from pag::DeltaStats (and,
  /// for service commits, the generation clone): where a slow commit
  /// actually spent its time, per stage.
  double CloneSeconds = 0.0;
  double ShapeSeconds = 0.0;
  double LowerSeconds = 0.0;
  double ApplySeconds = 0.0;
  double RepackSeconds = 0.0;
};

/// An editable program with an always-warm DYNSUM analysis.
///
/// Edits go through addStatement / removeStatements (or mutate the
/// program directly followed by markDirty) and take effect at the next
/// commit().  Queries auto-commit, so a session is never observed stale.
class EditSession {
public:
  /// Takes ownership of \p P.  The initial build is performed eagerly.
  EditSession(std::unique_ptr<ir::Program> P,
              const analysis::AnalysisOptions &Opts,
              InvalidationPolicy Policy = InvalidationPolicy::PerMethod);

  ir::Program &program() { return *Prog; }
  const ir::Program &program() const { return *Prog; }
  const pag::PAG &graph() const { return Graph; }
  const pag::CallGraph &callGraph() const { return Calls; }
  analysis::DynSumAnalysis &analysis() { return DynSum; }

  /// Connects \p S (may be null to disconnect) as the session's summary
  /// exchange: queries fetch warm summaries from — and publish fresh
  /// ones into — the store, and every commit() applies its invalidation
  /// to the store as well, bumping the store's generation.  The store
  /// must describe the same program as this session (same PAG shape);
  /// it may be shared with engine batches or other sessions between
  /// commits.
  void attachStore(engine::SharedSummaryStore *S);
  engine::SharedSummaryStore *attachedStore() const { return Store; }

  //===------------------------------------------------------------------===//
  // Edits
  //===------------------------------------------------------------------===//

  /// Appends \p S to method \p M.
  void addStatement(ir::MethodId M, ir::Statement S);

  /// Removes every statement of \p M matching \p Pred; returns how many.
  size_t
  removeStatements(ir::MethodId M,
                   const std::function<bool(const ir::Statement &)> &Pred);

  /// Marks \p M edited after direct program() mutation.
  void markDirty(ir::MethodId M);

  /// True when edits are pending.
  bool dirty() const;

  /// Applies pending edits: patches the PAG in place (delta build —
  /// only edited methods re-lower, node ids stay stable) and
  /// invalidates summaries (private cache and attached store) per the
  /// session policy.  No-op when clean.
  CommitStats commit();

  /// Statistics of the most recent non-trivial commit.
  const CommitStats &lastCommit() const { return LastCommit; }

  //===------------------------------------------------------------------===//
  // Queries (auto-committing)
  //===------------------------------------------------------------------===//

  /// Points-to query for variable \p V in the empty context.
  analysis::QueryResult queryVar(ir::VarId V);

private:
  std::unique_ptr<ir::Program> Prog;
  pag::PAG Graph;
  pag::CallGraph Calls;
  analysis::DynSumAnalysis DynSum;
  InvalidationPolicy Policy;
  engine::SharedSummaryStore *Store = nullptr;

  /// Program edit clock at the last commit; the program names the
  /// methods that moved past it.
  uint64_t CommittedClock = 0;
  CommitStats LastCommit;

  /// Post-commit boundary flags carried forward from the invalidation
  /// diff so the next commit skips the full pre-edit node sweep.
  /// Empty until the first per-method commit; a ClearAll commit leaves
  /// it invalid (the diff never runs under that policy).
  BoundarySnapshot Boundary;
  bool BoundaryValid = false;
};

} // namespace incremental
} // namespace dynsum

#endif // DYNSUM_INCREMENTAL_EDITSESSION_H
