//===----------------------------------------------------------------------===//
///
/// \file
/// Invalidation-plan computation.
///
//===----------------------------------------------------------------------===//

#include "incremental/Invalidation.h"

#include "support/Parallel.h"

#include <cassert>

using namespace dynsum;
using namespace dynsum::incremental;

BoundarySnapshot
dynsum::incremental::snapshotBoundary(const pag::PAG &G, unsigned Threads) {
  BoundarySnapshot S;
  S.Flags.resize(G.numNodes());
  parallelChunks(G.numNodes(), Threads,
                 [&](size_t Begin, size_t End, unsigned) {
                   for (pag::NodeId N = pag::NodeId(Begin); N < End; ++N) {
                     const pag::Node &Node = G.node(N);
                     S.Flags[N] = {Node.Method, Node.HasLocalEdge,
                                   Node.HasGlobalIn, Node.HasGlobalOut};
                   }
                 });
  return S;
}

InvalidationPlan dynsum::incremental::planInvalidation(
    const BoundarySnapshot &Old, const pag::PAG &NewGraph,
    const std::unordered_set<ir::MethodId> &Dirty, unsigned Threads) {
  InvalidationPlan Plan;
  Plan.Methods = Dirty;

  // The methods to invalidate: those edited directly plus those whose
  // node flags changed across the rebuild (their summaries' boundary
  // tuples may be stale).  Node ids are stable, so the diff is
  // position-for-position; nodes appended by the rebuild have no old
  // flags and cannot have stale summaries.  Summaries keyed at unowned
  // nodes (globals, the null object) sit outside any method; drop them
  // whenever anything changed, since global edges are what connects
  // them.
  //
  // The diff shards into per-worker changed-method lists (duplicates
  // are fine — the merge below goes through a set), merged serially so
  // the resulting plan is thread-count independent.
  assert(Old.Flags.size() <= NewGraph.numNodes() &&
         "stable node ids are append-only");
  Threads = clampThreads(Threads);
  std::vector<std::vector<ir::MethodId>> Changed(Threads);
  parallelChunks(Old.Flags.size(), Threads,
                 [&](size_t Begin, size_t End, unsigned Worker) {
                   std::vector<ir::MethodId> &Out = Changed[Worker];
                   ir::MethodId Last = ir::kNone - 1; // dedup runs cheaply
                   for (pag::NodeId N = pag::NodeId(Begin); N < End; ++N) {
                     const pag::Node &Node = NewGraph.node(N);
                     const BoundaryFlags &Was = Old.Flags[N];
                     assert(Node.Method == Was.Method &&
                            "node/method mapping is stable");
                     if (Node.HasLocalEdge != Was.HasLocalEdge ||
                         Node.HasGlobalIn != Was.HasGlobalIn ||
                         Node.HasGlobalOut != Was.HasGlobalOut) {
                       if (Node.Method != Last) {
                         Out.push_back(Node.Method);
                         Last = Node.Method;
                       }
                     }
                   }
                 });
  bool AnyFlagChanged = false;
  for (const std::vector<ir::MethodId> &Out : Changed) {
    AnyFlagChanged |= !Out.empty();
    Plan.Methods.insert(Out.begin(), Out.end());
  }
  if (AnyFlagChanged || !Dirty.empty())
    Plan.Methods.insert(ir::kNone); // global/null-object-keyed summaries
  return Plan;
}
