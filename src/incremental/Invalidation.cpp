//===----------------------------------------------------------------------===//
///
/// \file
/// Invalidation-plan computation.
///
//===----------------------------------------------------------------------===//

#include "incremental/Invalidation.h"

#include "support/ExecContext.h"

#include <cassert>

using namespace dynsum;
using namespace dynsum::incremental;

BoundarySnapshot
dynsum::incremental::snapshotBoundary(const pag::PAG &G,
                                      const support::ExecContext &Exec) {
  BoundarySnapshot S;
  S.Flags.resize(G.numNodes());
  parallelChunks(G.numNodes(), Exec,
                 [&](size_t Begin, size_t End, unsigned) {
                   for (pag::NodeId N = pag::NodeId(Begin); N < End; ++N) {
                     const pag::Node &Node = G.node(N);
                     S.Flags[N] = {Node.Method, Node.HasLocalEdge,
                                   Node.HasGlobalIn, Node.HasGlobalOut};
                   }
                 });
  return S;
}

InvalidationPlan dynsum::incremental::planInvalidation(
    const BoundarySnapshot &Old, const pag::PAG &NewGraph,
    const std::unordered_set<ir::MethodId> &Dirty,
    const support::ExecContext &Exec, BoundarySnapshot *CaptureNew) {
  InvalidationPlan Plan;
  Plan.Methods = Dirty;
  if (CaptureNew)
    CaptureNew->Flags.resize(NewGraph.numNodes());

  // The methods to invalidate: those edited directly plus those whose
  // node flags changed across the rebuild (their summaries' boundary
  // tuples may be stale).  Node ids are stable, so the diff is
  // position-for-position; nodes appended by the rebuild have no old
  // flags and cannot have stale summaries.  Summaries keyed at unowned
  // nodes (globals, the null object) sit outside any method; drop them
  // whenever anything changed, since global edges are what connects
  // them.
  //
  // The diff shards into per-worker changed-method lists (duplicates
  // are fine — the merge below goes through a set), merged serially so
  // the resulting plan is thread-count independent.
  assert(Old.Flags.size() <= NewGraph.numNodes() &&
         "stable node ids are append-only");
  unsigned Threads = Exec.threads();
  std::vector<std::vector<ir::MethodId>> Changed(Threads);
  parallelChunks(Old.Flags.size(), Exec,
                 [&](size_t Begin, size_t End, unsigned Worker) {
                   std::vector<ir::MethodId> &Out = Changed[Worker];
                   ir::MethodId Last = ir::kNone - 1; // dedup runs cheaply
                   for (pag::NodeId N = pag::NodeId(Begin); N < End; ++N) {
                     const pag::Node &Node = NewGraph.node(N);
                     const BoundaryFlags &Was = Old.Flags[N];
                     assert(Node.Method == Was.Method &&
                            "node/method mapping is stable");
                     if (CaptureNew)
                       CaptureNew->Flags[N] = {Node.Method, Node.HasLocalEdge,
                                               Node.HasGlobalIn,
                                               Node.HasGlobalOut};
                     if (Node.HasLocalEdge != Was.HasLocalEdge ||
                         Node.HasGlobalIn != Was.HasGlobalIn ||
                         Node.HasGlobalOut != Was.HasGlobalOut) {
                       if (Node.Method != Last) {
                         Out.push_back(Node.Method);
                         Last = Node.Method;
                       }
                     }
                   }
                 });
  if (CaptureNew && Old.Flags.size() < NewGraph.numNodes()) {
    // Nodes appended by the rebuild sit past the diff; record their
    // flags so the captured snapshot covers the whole new graph.
    for (pag::NodeId N = pag::NodeId(Old.Flags.size());
         N < NewGraph.numNodes(); ++N) {
      const pag::Node &Node = NewGraph.node(N);
      CaptureNew->Flags[N] = {Node.Method, Node.HasLocalEdge,
                              Node.HasGlobalIn, Node.HasGlobalOut};
    }
  }
  bool AnyFlagChanged = false;
  for (const std::vector<ir::MethodId> &Out : Changed) {
    AnyFlagChanged |= !Out.empty();
    Plan.Methods.insert(Out.begin(), Out.end());
  }
  if (AnyFlagChanged || !Dirty.empty())
    Plan.Methods.insert(ir::kNone); // global/null-object-keyed summaries
  return Plan;
}

InvalidationPlan dynsum::incremental::patchInvalidation(
    BoundarySnapshot &Carried, const pag::PAG &NewGraph,
    const std::vector<pag::NodeId> &ChangedNodes,
    const std::unordered_set<ir::MethodId> &Dirty) {
  InvalidationPlan Plan;
  Plan.Methods = Dirty;

  // Nodes appended since the snapshot have no old flags (nothing can
  // hold a stale summary for them); record their current flags so the
  // patched snapshot covers the whole graph.
  size_t OldSize = Carried.Flags.size();
  assert(OldSize <= NewGraph.numNodes() &&
         "stable node ids are append-only");
  Carried.Flags.resize(NewGraph.numNodes());
  for (pag::NodeId N = pag::NodeId(OldSize); N < NewGraph.numNodes(); ++N) {
    const pag::Node &Node = NewGraph.node(N);
    Carried.Flags[N] = {Node.Method, Node.HasLocalEdge, Node.HasGlobalIn,
                        Node.HasGlobalOut};
  }

  // Every flag the rebuild may have moved sits on a changed node; the
  // diff (and the snapshot patch) visits only those.  The list is
  // O(delta), so this runs serially.
  bool AnyFlagChanged = false;
  for (pag::NodeId N : ChangedNodes) {
    if (N >= OldSize)
      continue; // appended: recorded above, no stale summaries
    const pag::Node &Node = NewGraph.node(N);
    BoundaryFlags &Was = Carried.Flags[N];
    assert(Node.Method == Was.Method && "node/method mapping is stable");
    if (Node.HasLocalEdge != Was.HasLocalEdge ||
        Node.HasGlobalIn != Was.HasGlobalIn ||
        Node.HasGlobalOut != Was.HasGlobalOut) {
      Plan.Methods.insert(Node.Method);
      AnyFlagChanged = true;
      Was = {Node.Method, Node.HasLocalEdge, Node.HasGlobalIn,
             Node.HasGlobalOut};
    }
  }
  if (AnyFlagChanged || !Dirty.empty())
    Plan.Methods.insert(ir::kNone); // global/null-object-keyed summaries
  return Plan;
}
