//===----------------------------------------------------------------------===//
///
/// \file
/// Invalidation-plan computation.
///
//===----------------------------------------------------------------------===//

#include "incremental/Invalidation.h"

#include <cassert>

using namespace dynsum;
using namespace dynsum::incremental;

BoundarySnapshot dynsum::incremental::snapshotBoundary(const pag::PAG &G) {
  BoundarySnapshot S;
  S.Flags.resize(G.numNodes());
  for (pag::NodeId N = 0; N < G.numNodes(); ++N) {
    const pag::Node &Node = G.node(N);
    S.Flags[N] = {Node.Method, Node.HasLocalEdge, Node.HasGlobalIn,
                  Node.HasGlobalOut};
  }
  return S;
}

InvalidationPlan dynsum::incremental::planInvalidation(
    const BoundarySnapshot &Old, const pag::PAG &NewGraph,
    const std::unordered_set<ir::MethodId> &Dirty) {
  InvalidationPlan Plan;
  Plan.Methods = Dirty;

  // The methods to invalidate: those edited directly plus those whose
  // node flags changed across the rebuild (their summaries' boundary
  // tuples may be stale).  Node ids are stable, so the diff is
  // position-for-position; nodes appended by the rebuild have no old
  // flags and cannot have stale summaries.  Summaries keyed at unowned
  // nodes (globals, the null object) sit outside any method; drop them
  // whenever anything changed, since global edges are what connects
  // them.
  assert(Old.Flags.size() <= NewGraph.numNodes() &&
         "stable node ids are append-only");
  bool AnyFlagChanged = false;
  for (pag::NodeId N = 0; N < Old.Flags.size(); ++N) {
    const pag::Node &Node = NewGraph.node(N);
    const BoundaryFlags &Was = Old.Flags[N];
    assert(Node.Method == Was.Method && "node/method mapping is stable");
    if (Node.HasLocalEdge != Was.HasLocalEdge ||
        Node.HasGlobalIn != Was.HasGlobalIn ||
        Node.HasGlobalOut != Was.HasGlobalOut) {
      Plan.Methods.insert(Node.Method);
      AnyFlagChanged = true;
    }
  }
  if (AnyFlagChanged || !Dirty.empty())
    Plan.Methods.insert(ir::kNone); // global/null-object-keyed summaries
  return Plan;
}
