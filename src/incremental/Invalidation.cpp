//===----------------------------------------------------------------------===//
///
/// \file
/// Invalidation-plan computation.
///
//===----------------------------------------------------------------------===//

#include "incremental/Invalidation.h"

#include <cassert>

using namespace dynsum;
using namespace dynsum::incremental;

BoundarySnapshot dynsum::incremental::snapshotBoundary(const pag::PAG &G,
                                                       size_t NumVars) {
  BoundarySnapshot S;
  S.NumVars = NumVars;
  S.Flags.resize(G.numNodes());
  for (pag::NodeId N = 0; N < G.numNodes(); ++N) {
    const pag::Node &Node = G.node(N);
    S.Flags[N] = {Node.Method, Node.HasLocalEdge, Node.HasGlobalIn,
                  Node.HasGlobalOut};
  }
  return S;
}

InvalidationPlan dynsum::incremental::planInvalidation(
    const BoundarySnapshot &Old, const pag::PAG &NewGraph, size_t NewNumVars,
    const std::unordered_set<ir::MethodId> &Dirty) {
  InvalidationPlan Plan;
  Plan.OldNumVars = Old.NumVars;
  if (NewNumVars != Old.NumVars) {
    assert(NewNumVars > Old.NumVars && "variables are append-only");
    Plan.NodesRemapped = true;
    Plan.VarOffset = uint32_t(NewNumVars - Old.NumVars);
  }
  Plan.Methods = Dirty;

  // The methods to invalidate: those edited directly plus those whose
  // node flags changed across the rebuild (their summaries' boundary
  // tuples may be stale).  Summaries keyed at unowned nodes (globals,
  // the null object) sit outside any method; drop them whenever a flag
  // changed anywhere, since global edges are what connects them.
  bool AnyFlagChanged = false;
  for (pag::NodeId N = 0; N < Old.Flags.size(); ++N) {
    pag::NodeId New = Plan.remap(N);
    assert(New < NewGraph.numNodes() && "append-only ids stay in range");
    const pag::Node &Node = NewGraph.node(New);
    const BoundaryFlags &Was = Old.Flags[N];
    assert(Node.Method == Was.Method && "node/method mapping is stable");
    if (Node.HasLocalEdge != Was.HasLocalEdge ||
        Node.HasGlobalIn != Was.HasGlobalIn ||
        Node.HasGlobalOut != Was.HasGlobalOut) {
      Plan.Methods.insert(Node.Method);
      AnyFlagChanged = true;
    }
  }
  if (AnyFlagChanged || !Dirty.empty())
    Plan.Methods.insert(ir::kNone); // global/null-object-keyed summaries
  return Plan;
}
