//===----------------------------------------------------------------------===//
///
/// \file
/// Commit-time invalidation planning, shared by every warm summary
/// cache.
///
/// A PPTA summary keyed at a node of method m depends on (a) m's local
/// edges and (b) the global-edge boundary flags of m's nodes.  Editing
/// m changes (a) only for m; edits elsewhere can only change (b) — e.g.
/// adding the first call to m flips HasGlobalIn on m's formals, which
/// decides whether Algorithm 3 records a boundary tuple there.  An
/// exact commit therefore invalidates the directly edited methods plus
/// every method whose node flags changed across the rebuild.
///
/// Since PAG node ids are stable across delta builds (PR 4), the plan
/// is a pure boundary-flag diff: snapshot the flags before the rebuild,
/// compare per node afterwards — node N is the same node in both
/// graphs, no remapping of any kind.  Nodes appended by the rebuild are
/// new; nothing can hold a stale summary for them.
///
/// The same plan is applied to every cache that outlives a commit: the
/// private DynSumAnalysis cache of an EditSession, and the cross-thread
/// SharedSummaryStore behind an AnalysisService (consumed through
/// SharedSummaryStore::beginGeneration).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_INCREMENTAL_INVALIDATION_H
#define DYNSUM_INCREMENTAL_INVALIDATION_H

#include "pag/PAG.h"

#include <unordered_set>
#include <vector>

namespace dynsum {
namespace incremental {

/// Per-node boundary state recorded before a rebuild, diffed after.
struct BoundaryFlags {
  ir::MethodId Method = ir::kNone;
  bool HasLocalEdge = false;
  bool HasGlobalIn = false;
  bool HasGlobalOut = false;
};

/// The pre-edit boundary flags, indexed by (stable) node id.
struct BoundarySnapshot {
  std::vector<BoundaryFlags> Flags;
};

/// Records \p G's boundary flags.  \p Exec shards the node sweep (the
/// commit pipeline runs this off the serving thread and fans it out on
/// the same pool as the rest of the pipeline).
BoundarySnapshot snapshotBoundary(const pag::PAG &G,
                                  const support::ExecContext &Exec = {});

/// What one commit must do to every summary cache built on the old
/// graph before it can serve the new one.
struct InvalidationPlan {
  /// Methods whose summaries must be dropped (edited directly or with a
  /// changed boundary flag).  Contains ir::kNone when the summaries
  /// keyed at unowned nodes (globals, the null object) must go too.
  std::unordered_set<ir::MethodId> Methods;
};

/// Diffs \p Old against the rebuilt \p NewGraph and folds in the
/// directly edited \p Dirty methods.  Node ids are stable, so the diff
/// compares position for position; nodes beyond the snapshot are new
/// and need no invalidation.  \p Exec shards the position-for-position
/// diff; the result is identical at every thread count.
///
/// When \p CaptureNew is non-null it is filled with \p NewGraph's
/// boundary flags as a side effect of the diff — the same result
/// snapshotBoundary(NewGraph) would produce, for one extra write
/// stream instead of a second full node sweep.  Callers that commit
/// repeatedly carry it forward as the next commit's \p Old, dropping
/// the per-commit snapshot from O(graph) to O(appended nodes).
InvalidationPlan
planInvalidation(const BoundarySnapshot &Old, const pag::PAG &NewGraph,
                 const std::unordered_set<ir::MethodId> &Dirty,
                 const support::ExecContext &Exec = {},
                 BoundarySnapshot *CaptureNew = nullptr);

/// O(delta) variant of planInvalidation for a snapshot carried forward
/// from the previous commit.  \p ChangedNodes must be every node whose
/// flags the rebuild may have touched — PAG::lastRepackAffectedNodes()
/// after a non-compacting finalizeDelta (a compaction rederives every
/// flag; fall back to the full diff then).  \p Carried is the pre-edit
/// snapshot; it is patched in place into the post-edit snapshot, ready
/// to be carried into the next commit.  The plan is identical to what
/// the full diff would have produced.
InvalidationPlan
patchInvalidation(BoundarySnapshot &Carried, const pag::PAG &NewGraph,
                  const std::vector<pag::NodeId> &ChangedNodes,
                  const std::unordered_set<ir::MethodId> &Dirty);

} // namespace incremental
} // namespace dynsum

#endif // DYNSUM_INCREMENTAL_INVALIDATION_H
