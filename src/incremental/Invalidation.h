//===----------------------------------------------------------------------===//
///
/// \file
/// Commit-time invalidation planning, shared by every warm summary
/// cache.
///
/// A PPTA summary keyed at a node of method m depends on (a) m's local
/// edges and (b) the global-edge boundary flags of m's nodes.  Editing
/// m changes (a) only for m; edits elsewhere can only change (b) — e.g.
/// adding the first call to m flips HasGlobalIn on m's formals, which
/// decides whether Algorithm 3 records a boundary tuple there.  An
/// exact commit therefore invalidates the directly edited methods plus
/// every method whose node flags changed across the rebuild.
///
/// This module computes that plan from a pre-rebuild BoundarySnapshot
/// and the post-rebuild graph, so the identical rule is applied to
/// every cache that outlives a commit: the private DynSumAnalysis cache
/// of an EditSession, and the cross-thread SharedSummaryStore behind an
/// AnalysisService (src/engine/SummaryStore.h consumes the plan through
/// beginGeneration).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_INCREMENTAL_INVALIDATION_H
#define DYNSUM_INCREMENTAL_INVALIDATION_H

#include "pag/PAG.h"

#include <unordered_set>
#include <vector>

namespace dynsum {
namespace incremental {

/// Per-node boundary state recorded before a rebuild, diffed after.
struct BoundaryFlags {
  ir::MethodId Method = ir::kNone;
  bool HasLocalEdge = false;
  bool HasGlobalIn = false;
  bool HasGlobalOut = false;
};

/// Everything the invalidation diff needs from the pre-edit build: the
/// variable-prefix length of the node numbering and every node's flags.
struct BoundarySnapshot {
  size_t NumVars = 0;
  std::vector<BoundaryFlags> Flags;
};

/// Records \p G's boundary flags; \p NumVars is the variable count of
/// the program \p G was built from (variables are always numbered
/// first, so it is also the length of the variable node prefix).
BoundarySnapshot snapshotBoundary(const pag::PAG &G, size_t NumVars);

/// What one commit must do to every summary cache built on the old
/// graph before it can serve the new one.
struct InvalidationPlan {
  /// Variables were added, shifting every object node up by VarOffset.
  bool NodesRemapped = false;
  size_t OldNumVars = 0;
  uint32_t VarOffset = 0;
  /// Methods whose summaries must be dropped (edited directly or with a
  /// changed boundary flag).  Contains ir::kNone when the summaries
  /// keyed at unowned nodes (globals, the null object) must go too.
  std::unordered_set<ir::MethodId> Methods;

  /// Old-graph node id -> new-graph node id.  Variables and allocation
  /// sites are append-only, so the remap is a single offset on the
  /// object suffix.
  pag::NodeId remap(pag::NodeId N) const {
    return N < OldNumVars ? N : pag::NodeId(N + VarOffset);
  }
};

/// Diffs \p Old against the rebuilt \p NewGraph (whose program now has
/// \p NewNumVars variables) and folds in the directly edited \p Dirty
/// methods.
InvalidationPlan
planInvalidation(const BoundarySnapshot &Old, const pag::PAG &NewGraph,
                 size_t NewNumVars,
                 const std::unordered_set<ir::MethodId> &Dirty);

} // namespace incremental
} // namespace dynsum

#endif // DYNSUM_INCREMENTAL_INVALIDATION_H
