//===----------------------------------------------------------------------===//
///
/// \file
/// EditSession implementation.
///
//===----------------------------------------------------------------------===//

#include "incremental/EditSession.h"

#include <algorithm>
#include <cassert>

using namespace dynsum;
using namespace dynsum::incremental;
using analysis::QueryResult;

EditSession::EditSession(std::unique_ptr<ir::Program> P,
                         const analysis::AnalysisOptions &Opts,
                         InvalidationPolicy Policy)
    : Prog(std::move(P)), Graph(*Prog), DynSum(Graph, Opts), Policy(Policy) {
  Calls = pag::rebuildPAG(Graph);
  snapshot();
}

void EditSession::snapshot() {
  LastNumVars = Prog->variables().size();
  LastFlags.resize(Graph.numNodes());
  for (pag::NodeId N = 0; N < Graph.numNodes(); ++N) {
    const pag::Node &Node = Graph.node(N);
    LastFlags[N] = {Node.Method, Node.HasLocalEdge, Node.HasGlobalIn,
                    Node.HasGlobalOut};
  }
}

void EditSession::addStatement(ir::MethodId M, ir::Statement S) {
  Prog->addStatement(M, std::move(S));
  markDirty(M);
}

size_t EditSession::removeStatements(
    ir::MethodId M, const std::function<bool(const ir::Statement &)> &Pred) {
  std::vector<ir::Statement> &Stmts = Prog->method(M).Stmts;
  size_t Before = Stmts.size();
  Stmts.erase(std::remove_if(Stmts.begin(), Stmts.end(), Pred), Stmts.end());
  size_t Removed = Before - Stmts.size();
  if (Removed > 0)
    markDirty(M);
  return Removed;
}

void EditSession::markDirty(ir::MethodId M) { DirtyMethods.insert(M); }

CommitStats EditSession::commit() {
  if (DirtyMethods.empty())
    return {};

  CommitStats Stats;
  Stats.SummariesBefore = DynSum.cacheSize();

  size_t OldNumVars = LastNumVars;
  size_t OldNumNodes = LastFlags.size();
  Calls = pag::rebuildPAG(Graph);

  if (Policy == InvalidationPolicy::ClearAll) {
    DynSum.clearCache();
    Stats.SummariesDropped = Stats.SummariesBefore;
    DirtyMethods.clear();
    snapshot();
    LastCommit = Stats;
    return Stats;
  }

  // Object nodes shift when variables were added (variables are always
  // numbered first).  Variables and allocation sites are append-only,
  // so the remap is a single offset on the object suffix.
  size_t NewNumVars = Prog->variables().size();
  if (NewNumVars != OldNumVars) {
    assert(NewNumVars > OldNumVars && "variables are append-only");
    uint32_t Offset = uint32_t(NewNumVars - OldNumVars);
    DynSum.remapCache([OldNumVars, Offset](pag::NodeId N) {
      return N < OldNumVars ? N : N + Offset;
    });
    Stats.NodesRemapped = true;
  } else {
    // Even without a remap the trivial-summary memo keys boundary flags
    // that the rebuild may have changed; an identity remap clears it.
    DynSum.remapCache([](pag::NodeId N) { return N; });
  }

  // The methods to invalidate: those edited directly plus those whose
  // node flags changed across the rebuild (their summaries' boundary
  // tuples may be stale).  Summaries keyed at unowned nodes (globals,
  // the null object) sit outside any method; drop them whenever a flag
  // changed anywhere, since global edges are what connects them.
  std::unordered_set<ir::MethodId> Invalidate(DirtyMethods);
  bool AnyFlagChanged = false;
  for (pag::NodeId Old = 0; Old < OldNumNodes; ++Old) {
    pag::NodeId New =
        Old < OldNumVars ? Old
                         : pag::NodeId(Old + (NewNumVars - OldNumVars));
    assert(New < Graph.numNodes() && "append-only ids stay in range");
    const pag::Node &Node = Graph.node(New);
    const NodeFlags &Was = LastFlags[Old];
    assert(Node.Method == Was.Method && "node/method mapping is stable");
    if (Node.HasLocalEdge != Was.HasLocalEdge ||
        Node.HasGlobalIn != Was.HasGlobalIn ||
        Node.HasGlobalOut != Was.HasGlobalOut) {
      Invalidate.insert(Node.Method);
      AnyFlagChanged = true;
    }
  }
  if (AnyFlagChanged || !DirtyMethods.empty())
    Invalidate.insert(ir::kNone); // global/null-object-keyed summaries

  for (ir::MethodId M : Invalidate)
    DynSum.invalidateMethod(M);

  Stats.MethodsInvalidated = Invalidate.size();
  Stats.SummariesDropped = Stats.SummariesBefore - DynSum.cacheSize();
  DirtyMethods.clear();
  snapshot();
  LastCommit = Stats;
  return Stats;
}

QueryResult EditSession::queryVar(ir::VarId V) {
  if (dirty())
    commit();
  return DynSum.query(Graph.nodeOfVar(V));
}
