//===----------------------------------------------------------------------===//
///
/// \file
/// EditSession implementation.
///
//===----------------------------------------------------------------------===//

#include "incremental/EditSession.h"

#include "engine/SummaryStore.h"

#include <algorithm>
#include <cassert>

using namespace dynsum;
using namespace dynsum::incremental;
using analysis::QueryResult;

EditSession::EditSession(std::unique_ptr<ir::Program> P,
                         const analysis::AnalysisOptions &Opts,
                         InvalidationPolicy Policy)
    : Prog(std::move(P)), Graph(*Prog), DynSum(Graph, Opts), Policy(Policy) {
  pag::buildPAGDelta(Graph, Calls); // first build: lowers everything
  CommittedClock = Prog->modClock();
}

void EditSession::attachStore(engine::SharedSummaryStore *S) {
  Store = S;
  DynSum.setSummaryExchange(S);
}

void EditSession::addStatement(ir::MethodId M, ir::Statement S) {
  Prog->addStatement(M, std::move(S)); // addStatement touches M
}

size_t EditSession::removeStatements(
    ir::MethodId M, const std::function<bool(const ir::Statement &)> &Pred) {
  return Prog->removeStatements(M, Pred); // stamps M on the edit clock
}

void EditSession::markDirty(ir::MethodId M) { Prog->touchMethod(M); }

bool EditSession::dirty() const {
  return Prog->modClock() != CommittedClock;
}

CommitStats EditSession::commit() {
  if (!dirty())
    return {};

  CommitStats Stats;
  Stats.Outcome = CommitOutcome::Committed;
  Stats.SummariesBefore = DynSum.cacheSize();

  // Snapshot the boundary flags, then patch the graph in place: only
  // the edited methods' segments are re-lowered and node ids never
  // move, so analyses holding references stay valid and summary keys
  // stay meaningful.  The snapshot is usually carried forward from the
  // previous commit (Boundary); without one it must be taken now —
  // the delta build mutates this graph in place, so the pre-edit
  // flags are about to disappear.
  BoundarySnapshot OldBoundary;
  if (!BoundaryValid)
    OldBoundary = snapshotBoundary(Graph);
  pag::DeltaStats Delta = pag::buildPAGDelta(Graph, Calls);
  Stats.MethodsRelowered = Delta.Relowered.size();
  Stats.ShapeSeconds = Delta.ShapeSeconds;
  Stats.LowerSeconds = Delta.LowerSeconds;
  Stats.ApplySeconds = Delta.ApplySeconds;
  Stats.RepackSeconds = Delta.RepackSeconds;

  if (Policy == InvalidationPolicy::ClearAll) {
    // The rebuild moved flags the carried snapshot doesn't reflect,
    // and no diff runs under this policy to repair it.
    BoundaryValid = false;
    DynSum.clearCache();
    DynSum.clearTrivialMemo();
    Stats.SummariesDropped = Stats.SummariesBefore;
    if (Store) {
      Stats.SharedSummariesDropped = Store->size();
      Store->clear(); // bumps the store generation
    }
    CommittedClock = Prog->modClock();
    LastCommit = Stats;
    return Stats;
  }

  // Invalidation plan: every touched method (a forced markDirty must
  // drop summaries even when the graph proved unchanged) plus the
  // boundary-flag diff.
  std::unordered_set<ir::MethodId> Dirty(Delta.Touched.begin(),
                                         Delta.Touched.end());
  InvalidationPlan Plan;
  if (BoundaryValid && !Graph.lastRepackCompacted()) {
    // O(delta): patch the carried snapshot along the repack's own
    // dirty-node list.
    Plan = patchInvalidation(Boundary, Graph,
                             Graph.lastRepackAffectedNodes(), Dirty);
  } else {
    if (BoundaryValid)
      OldBoundary = std::move(Boundary);
    BoundarySnapshot NewBoundary;
    Plan = planInvalidation(OldBoundary, Graph, Dirty, {}, &NewBoundary);
    Boundary = std::move(NewBoundary);
  }
  BoundaryValid = true;

  for (ir::MethodId M : Plan.Methods)
    DynSum.invalidateMethod(M);
  // The trivial-summary memo keys boundary flags; cheap to rebuild, so
  // drop it wholesale rather than diffing.
  DynSum.clearTrivialMemo();

  // The attached cross-thread store holds the same summaries under the
  // same (stable) node keying; one beginGeneration applies the same
  // drop and moves the store to the post-edit generation.
  if (Store)
    Stats.SharedSummariesDropped = Store->beginGeneration(Graph, Plan);

  Stats.MethodsInvalidated = Plan.Methods.size();
  Stats.SummariesDropped = Stats.SummariesBefore - DynSum.cacheSize();
  CommittedClock = Prog->modClock();
  LastCommit = Stats;
  return Stats;
}

QueryResult EditSession::queryVar(ir::VarId V) {
  if (dirty())
    commit();
  return DynSum.query(Graph.nodeOfVar(V));
}
