//===----------------------------------------------------------------------===//
///
/// \file
/// EditSession implementation.
///
//===----------------------------------------------------------------------===//

#include "incremental/EditSession.h"

#include "engine/SummaryStore.h"

#include <algorithm>
#include <cassert>

using namespace dynsum;
using namespace dynsum::incremental;
using analysis::QueryResult;

EditSession::EditSession(std::unique_ptr<ir::Program> P,
                         const analysis::AnalysisOptions &Opts,
                         InvalidationPolicy Policy)
    : Prog(std::move(P)), Graph(*Prog), DynSum(Graph, Opts), Policy(Policy) {
  Calls = pag::rebuildPAG(Graph);
  LastBoundary = snapshotBoundary(Graph, Prog->variables().size());
}

void EditSession::attachStore(engine::SharedSummaryStore *S) {
  Store = S;
  DynSum.setSummaryExchange(S);
}

void EditSession::addStatement(ir::MethodId M, ir::Statement S) {
  Prog->addStatement(M, std::move(S));
  markDirty(M);
}

size_t EditSession::removeStatements(
    ir::MethodId M, const std::function<bool(const ir::Statement &)> &Pred) {
  std::vector<ir::Statement> &Stmts = Prog->method(M).Stmts;
  size_t Before = Stmts.size();
  Stmts.erase(std::remove_if(Stmts.begin(), Stmts.end(), Pred), Stmts.end());
  size_t Removed = Before - Stmts.size();
  if (Removed > 0)
    markDirty(M);
  return Removed;
}

void EditSession::markDirty(ir::MethodId M) { DirtyMethods.insert(M); }

CommitStats EditSession::commit() {
  if (DirtyMethods.empty())
    return {};

  CommitStats Stats;
  Stats.SummariesBefore = DynSum.cacheSize();

  Calls = pag::rebuildPAG(Graph);

  if (Policy == InvalidationPolicy::ClearAll) {
    DynSum.clearCache();
    Stats.SummariesDropped = Stats.SummariesBefore;
    if (Store) {
      Stats.SharedSummariesDropped = Store->size();
      Store->clear(); // bumps the store generation
    }
    DirtyMethods.clear();
    LastBoundary = snapshotBoundary(Graph, Prog->variables().size());
    LastCommit = Stats;
    return Stats;
  }

  size_t NewNumVars = Prog->variables().size();
  InvalidationPlan Plan =
      planInvalidation(LastBoundary, Graph, NewNumVars, DirtyMethods);

  // Object nodes shift when variables were added (variables are always
  // numbered first; both are append-only, so the remap is one offset on
  // the object suffix).  Even without a remap the trivial-summary memo
  // keys boundary flags the rebuild may have changed; an identity remap
  // clears it.
  DynSum.remapCache([&Plan](pag::NodeId N) { return Plan.remap(N); });
  Stats.NodesRemapped = Plan.NodesRemapped;

  for (ir::MethodId M : Plan.Methods)
    DynSum.invalidateMethod(M);

  // The attached cross-thread store holds the same summaries under the
  // same node keying; one beginGeneration applies the identical remap +
  // drop and moves the store to the post-edit generation.
  if (Store)
    Stats.SharedSummariesDropped = Store->beginGeneration(Graph, Plan);

  Stats.MethodsInvalidated = Plan.Methods.size();
  Stats.SummariesDropped = Stats.SummariesBefore - DynSum.cacheSize();
  DirtyMethods.clear();
  LastBoundary = snapshotBoundary(Graph, NewNumVars);
  LastCommit = Stats;
  return Stats;
}

QueryResult EditSession::queryVar(ir::VarId V) {
  if (dirty())
    commit();
  return DynSum.query(Graph.nodeOfVar(V));
}
