//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-tenant socket analysis server behind dynsum_serverd.
///
/// One AnalysisServer multiplexes many independent tenants over one
/// loopback TCP socket.  Each tenant owns a full vertical slice of the
/// stack — its own ir::Program, AnalysisService (generation snapshots,
/// commit queue, overload watermarks), tiered summary store and
/// warm-restart snapshot file — so no summary, statement or allocation
/// site can leak across tenants by construction: there is no shared
/// mutable analysis state, only the shared commit WorkerPool
/// (support::ExecContext::pooled), whose run() barrier is internally
/// serialized and carries no tenant data of its own.
///
/// Protocol (newline-delimited, one reply block per request line):
/// a client connects, reads the greeting block, sends "tenant <name>"
/// to bind the session, then speaks the exact REPL grammar the
/// shared CommandInterpreter implements (query/alloc/assign/touch/
/// commit/wait/generations/rollback/deadline/save/load/stats/help).
/// Every reply block — greeting included — is terminated by a line
/// containing a single "."; error lines start with "error:".  Server
/// verbs that need no bound tenant: "tenant <name>", "tenants",
/// "help", "quit".
///
/// Admission control is two-layer: a global connection cap (excess
/// connects are answered "error: server overloaded" and closed — never
/// left hanging), and per-tenant OverloadPolicy watermarks inside each
/// AnalysisService (shed query batches answer Status == Overloaded,
/// shed background commits complete their ticket as Shed; both are
/// well-formed replies, never garbage).
///
/// Drain sequence (stop()/destructor, and what the dynsum_serverd
/// front end runs on SIGTERM/SIGINT): stop accepting, shutdown(2) every
/// live connection so parked reads return, join the handler threads,
/// then destroy the tenants — each AnalysisService destructor saves its
/// SnapshotOnShutdownPath, so a drained server restarts warm.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SERVER_SERVERD_H
#define DYNSUM_SERVER_SERVERD_H

#include "server/CommandInterpreter.h"
#include "service/AnalysisService.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace dynsum {
namespace server {

/// Server-wide configuration; per-tenant service knobs are stamped onto
/// every tenant alike.
struct ServerOptions {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port —
  /// read it back through port() after start().
  uint16_t Port = 0;
  /// Global connection cap: connects past it are answered
  /// "error: server overloaded" and closed.  0 = unlimited.
  unsigned MaxConnections = 64;
  /// Per-tenant query-engine thread budget.
  unsigned QueryThreads = 1;
  /// Size of the ONE commit WorkerPool all tenants share.
  unsigned CommitThreads = 1;
  /// Per-tenant retained-generation count (rollback window).
  unsigned KeepGenerations = 0;
  /// Per-tenant summary-store stripe count (0 = store default).
  unsigned StoreStripes = 0;
  /// Per-tenant post-commit warm pass.
  bool Presummarize = false;
  /// Per-tenant load-shedding watermarks (defaults disable shedding).
  service::OverloadPolicy Overload;
  /// When nonempty, each tenant snapshots to <SnapshotDir>/<name>.dsum
  /// on drain and warm-attaches the same file on the next start.
  std::string SnapshotDir;
  /// Analysis configuration stamped onto every tenant's engine.
  analysis::AnalysisOptions Analysis;
};

/// The server: register tenants, start(), and every accepted connection
/// gets its own handler thread + CommandInterpreter session over the
/// tenant it binds.
class AnalysisServer {
public:
  explicit AnalysisServer(ServerOptions Opts);
  ~AnalysisServer(); ///< stop() + tenant teardown (snapshots save)

  AnalysisServer(const AnalysisServer &) = delete;
  AnalysisServer &operator=(const AnalysisServer &) = delete;

  /// Registers a tenant before start(); builds its AnalysisService
  /// around \p Prog (warm-attaching its snapshot file when SnapshotDir
  /// is set).  False when the name is empty or already taken.
  bool addTenant(const std::string &Name, std::unique_ptr<ir::Program> Prog);

  /// Binds the loopback listen socket and spawns the accept loop.
  /// False (with \p Error set) on socket/bind/listen failure.
  bool start(std::string &Error);

  /// The bound port (valid after start(); useful with Port = 0).
  uint16_t port() const { return BoundPort; }

  /// Graceful drain: stop accepting, unblock + join every live
  /// connection, then destroy the tenants so their services save
  /// shutdown snapshots.  Idempotent; the destructor calls it.
  void stop();

  /// Registered tenant names, in registration order.
  std::vector<std::string> tenantNames() const;

  /// Connections shed by the global cap (for tests and the bench).
  uint64_t shedConnections() const {
    return ShedConnections.load(std::memory_order_relaxed);
  }

  /// Connections accepted and served (for tests and the bench).
  uint64_t acceptedConnections() const {
    return AcceptedConnections.load(std::memory_order_relaxed);
  }

private:
  /// One tenant: name + program lock + its vertical service slice.
  struct Tenant {
    std::string Name;
    /// Serializes program reads (name resolution, describeAlloc) in
    /// this tenant's sessions against its program-mutating commands;
    /// handed to every CommandInterpreter bound here.
    std::shared_mutex ProgramLock;
    std::unique_ptr<service::AnalysisService> Service;
  };

  /// One live client connection.
  struct Connection {
    int Fd = -1;
    std::thread Handler;
    std::atomic<bool> Done{false};
  };

  void acceptLoop();
  void handleConnection(Connection &C);
  Tenant *findTenant(const std::string &Name);
  /// Joins and erases finished connections (accept-loop housekeeping).
  void reapConnections();

  ServerOptions Opts;
  /// The shared commit pool: every tenant's ServiceOptions::Commit.
  support::ExecContext CommitCtx;
  std::vector<std::unique_ptr<Tenant>> Tenants;

  int ListenFd = -1;
  uint16_t BoundPort = 0;
  /// Self-pipe that wakes the accept loop's poll() for stop().
  int StopPipe[2] = {-1, -1};
  std::thread Acceptor;
  std::atomic<bool> Stopping{false};
  bool Started = false;
  bool Drained = false;

  mutable std::mutex ConnsM;
  std::vector<std::unique_ptr<Connection>> Conns;
  std::atomic<unsigned> ActiveConnections{0};
  std::atomic<uint64_t> ShedConnections{0};
  std::atomic<uint64_t> AcceptedConnections{0};
};

} // namespace server
} // namespace dynsum

#endif // DYNSUM_SERVER_SERVERD_H
