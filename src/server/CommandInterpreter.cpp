//===----------------------------------------------------------------------===//
///
/// \file
/// Shared serve-path command interpreter implementation.
///
//===----------------------------------------------------------------------===//

#include "server/CommandInterpreter.h"

#include "frontend/Frontend.h"
#include "ir/Parser.h"
#include "support/StringExtras.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

using namespace dynsum;
using namespace dynsum::server;

//===----------------------------------------------------------------------===//
// Spec resolution and program loading (shared with the tool's batch
// mode --query path)
//===----------------------------------------------------------------------===//

std::vector<std::string> server::splitWords(std::string_view Line) {
  std::vector<std::string> Words;
  std::string Cur;
  for (char C : Line) {
    if (std::isspace(static_cast<unsigned char>(C))) {
      if (!Cur.empty()) {
        Words.push_back(std::move(Cur));
        Cur.clear();
      }
    } else {
      Cur.push_back(C);
    }
  }
  if (!Cur.empty())
    Words.push_back(std::move(Cur));
  return Words;
}

ir::MethodId server::resolveMethodSpec(const ir::Program &P,
                                       const std::string &Spec) {
  size_t Dot = Spec.find('.');
  if (Dot == std::string::npos)
    return P.findFreeMethod(P.names().lookup(Spec));
  ir::TypeId Cls = P.findClass(P.names().lookup(Spec.substr(0, Dot)));
  if (Cls == ir::kNone)
    return ir::kNone;
  return P.findMethod(Cls, P.names().lookup(Spec.substr(Dot + 1)));
}

ir::VarId server::resolveVarSpec(const ir::Program &P,
                                 const std::string &Spec) {
  size_t LastDot = Spec.rfind('.');
  if (LastDot == std::string::npos)
    return ir::kNone;
  ir::MethodId M = resolveMethodSpec(P, Spec.substr(0, LastDot));
  if (M == ir::kNone)
    return ir::kNone;
  Symbol N = P.names().lookup(Spec.substr(LastDot + 1));
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Owner == M && V.Name == N)
      return V.Id;
  return ir::kNone;
}

namespace {

/// Reads a whole file into \p Out; false when it cannot be opened.
bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Chunk[65536];
  size_t N = 0;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Out.append(Chunk, N);
  std::fclose(F);
  return true;
}

} // namespace

std::unique_ptr<ir::Program> server::loadProgramFile(const std::string &Path,
                                                     std::string &Error) {
  std::string Source;
  if (!readFile(Path, Source)) {
    Error = "cannot read '" + Path + "'";
    return nullptr;
  }
  if (endsWith(Path, ".mj") || endsWith(Path, ".minijava") ||
      endsWith(Path, ".java")) {
    frontend::CompileResult R = frontend::compileMiniJava(Source);
    if (!R.ok()) {
      Error = Path + ": compilation failed\n" + R.Diags.str();
      return nullptr;
    }
    return std::move(R.Prog);
  }
  ir::ParseResult R = ir::parseProgram(Source);
  if (!R.ok()) {
    Error = Path + ": " + R.Error;
    return nullptr;
  }
  return std::move(R.Prog);
}

//===----------------------------------------------------------------------===//
// Overflow-aware line reading
//===----------------------------------------------------------------------===//

LineStatus server::readCommandLine(std::FILE *In, std::string &Line,
                                   size_t MaxBytes) {
  Line.clear();
  bool Overflowed = false;
  char Buf[4096];
  for (;;) {
    errno = 0;
    if (!std::fgets(Buf, sizeof(Buf), In)) {
      if (std::ferror(In) && errno == EINTR) {
        // A signal cut the read: drop any partial input (the caller is
        // shutting down or will re-issue) and let it re-check state.
        std::clearerr(In);
        return LineStatus::Interrupted;
      }
      // EOF: a final line with no trailing newline still executes.
      if (Overflowed)
        return LineStatus::Overflow;
      return Line.empty() ? LineStatus::Eof : LineStatus::Ok;
    }
    size_t N = std::strlen(Buf);
    bool HasNewline = N > 0 && Buf[N - 1] == '\n';
    if (HasNewline)
      --N;
    if (!Overflowed) {
      if (Line.size() + N > MaxBytes)
        Overflowed = true; // keep draining to the newline
      else
        Line.append(Buf, N);
    }
    if (HasNewline)
      return Overflowed ? LineStatus::Overflow : LineStatus::Ok;
  }
}

//===----------------------------------------------------------------------===//
// Command execution
//===----------------------------------------------------------------------===//

namespace {

/// RAII over the optional cross-session program lock: shared for
/// read-only commands, exclusive for program-mutating ones.  Lock
/// order is always ProgramLock before the service's internal edit
/// lock (which editProgram/submitCommit take themselves).
class ProgramGuard {
public:
  ProgramGuard(std::shared_mutex *M, bool Exclusive)
      : M(M), Exclusive(Exclusive) {
    if (!M)
      return;
    if (Exclusive)
      M->lock();
    else
      M->lock_shared();
  }
  ~ProgramGuard() {
    if (!M)
      return;
    if (Exclusive)
      M->unlock();
    else
      M->unlock_shared();
  }
  ProgramGuard(const ProgramGuard &) = delete;
  ProgramGuard &operator=(const ProgramGuard &) = delete;

private:
  std::shared_mutex *M;
  bool Exclusive;
};

} // namespace

void CommandInterpreter::printHelp(OStream &Out) {
  Out << "commands:\n"
         "  query <m.var>...        batched points-to queries (current "
         "generation)\n"
         "  alloc <method> <var> <Class>   buffer: var = new Class "
         "(creates var if new)\n"
         "  assign <method> <dst> <src>    buffer: dst = src\n"
         "  touch <method>          mark a method edited\n"
         "  commit [--scratch] [--async]   publish buffered edits as the "
         "next generation\n"
         "                          (--scratch force-re-lowers every "
         "method: A/B check\n"
         "                          against the delta build; --async "
         "queues the commit on\n"
         "                          the background committer and returns "
         "immediately;\n"
         "                          requests racing an in-flight commit "
         "coalesce)\n"
         "  wait                    block until queued async commits are "
         "published\n"
         "  generations             list retained snapshots (number, "
         "vars, retained bytes)\n"
         "  rollback <generation>   republish a retained snapshot (O(1); "
         "later edits\n"
         "                          become pending again)\n"
         "  save <path> | load <path>      persist / warm-start "
         "summaries\n"
         "  deadline <ms>           per-query wall-clock deadline for "
         "later queries\n"
         "                          (0 turns it off; overrun queries "
         "report (timeout)\n"
         "                          with the sound partial answer "
         "gathered so far)\n"
         "  stats                   generation, store size, counters, "
         "commit times,\n"
         "                          failure counters (timeouts, shed "
         "work, retries...)\n"
         "  quit\n"
         "method spec: Class.method or method (free); var spec appends "
         ".var\n";
}

CommandStatus CommandInterpreter::runQuery(const std::vector<std::string> &W,
                                           OStream &Out, OStream &Err) {
  // Shared lock: name resolution and describeAlloc read the live
  // program, which another session may be mutating.
  ProgramGuard G(ProgramLock, /*Exclusive=*/false);
  std::vector<ir::VarId> Vars;
  for (size_t I = 1; I < W.size(); ++I) {
    ir::VarId V = resolveVarSpec(S.program(), W[I]);
    if (V == ir::kNone) {
      Err << "error: no variable '" << W[I] << "'\n";
      return CommandStatus::Error;
    }
    Vars.push_back(V);
  }
  service::ServiceBatchResult R =
      DeadlineMs > 0 ? S.queryVars(Vars, support::Deadline::in(DeadlineMs / 1e3))
                     : S.queryVars(Vars);
  for (size_t I = 0; I < Vars.size(); ++I) {
    const engine::QueryOutcome &O = R.Outcomes[I];
    Out << "pts(" << W[I + 1] << ") = {";
    for (size_t A = 0; A < O.AllocSites.size(); ++A)
      Out << (A ? ", " : "") << S.program().describeAlloc(O.AllocSites[A]);
    Out << "}";
    if (O.Status != analysis::QueryStatus::Ok)
      Out << " (" << analysis::toString(O.Status) << ")";
    else if (O.BudgetExceeded)
      Out << " (budget exceeded)";
    Out << "  [" << O.Steps << " steps]\n";
  }
  Out << "[generation " << R.Generation << ": " << R.Stats.SharedHits
      << " shared hits, " << R.Stats.SummariesComputed << " computed]\n";
  return CommandStatus::Ok;
}

CommandStatus CommandInterpreter::runAlloc(const std::vector<std::string> &W,
                                           OStream &Out, OStream &Err) {
  ProgramGuard G(ProgramLock, /*Exclusive=*/true);
  ir::MethodId M = resolveMethodSpec(S.program(), W[1]);
  ir::TypeId T = S.program().findClass(S.program().names().lookup(W[3]));
  if (M == ir::kNone || T == ir::kNone) {
    Err << "error: unknown method or class\n";
    return CommandStatus::Error;
  }
  S.editProgram([&](ir::Program &P) {
    ir::VarId Dst = resolveVarSpec(P, W[1] + "." + W[2]);
    if (Dst == ir::kNone)
      Dst = P.createLocal(P.name(W[2]), M, T);
    ir::Statement New;
    New.Kind = ir::StmtKind::Alloc;
    New.Dst = Dst;
    New.Type = T;
    New.Alloc = P.createAllocSite(T, M, P.name(W[2] + "@serve"));
    P.addStatement(M, std::move(New));
    return std::vector<ir::MethodId>{M};
  });
  Out << "buffered: " << W[2] << " = new " << W[3] << " in " << W[1] << '\n';
  return CommandStatus::Ok;
}

CommandStatus CommandInterpreter::runAssign(const std::vector<std::string> &W,
                                            OStream &Out, OStream &Err) {
  ProgramGuard G(ProgramLock, /*Exclusive=*/true);
  // The method spec must resolve on its own: the composed var specs
  // below can succeed even when W[1] names something that is not a
  // method (e.g. "assign Main main.x main.y" resolves both vars via
  // "Main.main.x" while "Main" alone is a class) — ir::kNone must
  // never reach addStatement.
  ir::MethodId M = resolveMethodSpec(S.program(), W[1]);
  if (M == ir::kNone) {
    Err << "error: unknown method '" << W[1] << "'\n";
    return CommandStatus::Error;
  }
  ir::VarId Dst = resolveVarSpec(S.program(), W[1] + "." + W[2]);
  ir::VarId Src = resolveVarSpec(S.program(), W[1] + "." + W[3]);
  if (Dst == ir::kNone || Src == ir::kNone) {
    Err << "error: unknown variable\n";
    return CommandStatus::Error;
  }
  ir::Statement St;
  St.Kind = ir::StmtKind::Assign;
  St.Dst = Dst;
  St.Src = Src;
  S.addStatement(M, std::move(St));
  Out << "buffered: " << W[2] << " = " << W[3] << " in " << W[1] << '\n';
  return CommandStatus::Ok;
}

CommandStatus CommandInterpreter::runCommit(const std::vector<std::string> &W,
                                            OStream &Out, OStream &Err) {
  service::CommitMode Mode = service::CommitMode::Delta;
  bool Async = false;
  for (size_t I = 1; I < W.size(); ++I) {
    if (W[I] == "--scratch") {
      Mode = service::CommitMode::Scratch;
    } else if (W[I] == "--async") {
      Async = true;
    } else {
      Err << "error: bad commit flag '" << W[I]
          << "' (only --scratch / --async)\n";
      return CommandStatus::Error;
    }
  }
  service::CommitRequest Req;
  Req.Mode = Mode;
  Req.Background = Async;
  service::CommitTicket Ticket = S.submitCommit(Req);
  if (Async) {
    Out << "queued async commit"
        << (Mode == service::CommitMode::Scratch ? " (scratch)" : "")
        << "; \"wait\" blocks until published, \"stats\" shows progress\n";
    return CommandStatus::Ok;
  }
  incremental::CommitStats CS = Ticket.wait();
  if (CS.Outcome != incremental::CommitOutcome::Committed &&
      CS.Outcome != incremental::CommitOutcome::NoOp) {
    Err << "error: commit " << incremental::toString(CS.Outcome)
        << (CS.Error.empty() ? "" : ": " + CS.Error)
        << " (edits stay buffered; generation unchanged)\n";
    return CommandStatus::Error;
  }
  Out << "generation " << S.generation() << ": dropped " << CS.SummariesDropped
      << "/" << CS.SummariesBefore << " store summaries, "
      << CS.MethodsInvalidated << " methods invalidated, "
      << CS.MethodsRelowered << " re-lowered"
      << (Mode == service::CommitMode::Scratch ? " (scratch)" : "") << " in ";
  Out.writeFixed(CS.Seconds * 1e3, 2);
  Out << " ms (clone ";
  Out.writeFixed(CS.CloneSeconds * 1e3, 2);
  Out << ", shape ";
  Out.writeFixed(CS.ShapeSeconds * 1e3, 2);
  Out << ", lower ";
  Out.writeFixed(CS.LowerSeconds * 1e3, 2);
  Out << ", apply ";
  Out.writeFixed(CS.ApplySeconds * 1e3, 2);
  Out << ", repack ";
  Out.writeFixed(CS.RepackSeconds * 1e3, 2);
  Out << ")\n";
  return CommandStatus::Ok;
}

CommandStatus CommandInterpreter::runStats(OStream &Out) {
  service::ServiceStats SS = S.stats();
  Out << "generation " << SS.Generation << ", store "
      << uint64_t(SS.StoreSize) << " summaries, " << SS.Commits
      << " commits, " << SS.Batches << " batches, " << SS.Queries
      << " queries, " << SS.SharedSummariesDropped << " summaries dropped\n";
  if (SS.AsyncCommitsRequested > 0 || SS.CommitInFlight)
    Out << "async: " << SS.AsyncCommitsRequested << " requested, "
        << SS.AsyncCommitsCoalesced << " coalesced, "
        << (SS.CommitInFlight ? "commit in flight\n" : "queue idle\n");
  if (SS.RetainedGenerations > 0 || SS.Rollbacks > 0)
    Out << "history: " << SS.RetainedGenerations << " retained generations, "
        << SS.Rollbacks << " rollbacks\n";
  if (SS.TimedOutQueries || SS.CancelledQueries || SS.ShedQueries ||
      SS.CommitFailures || SS.CommitValidationRejects || SS.CommitRetries ||
      SS.CommitsQuarantined || SS.CommitsShed || SS.Quarantined ||
      SS.Shedding) {
    Out << "failures: " << SS.TimedOutQueries << " query timeouts, "
        << SS.CancelledQueries << " cancelled, " << SS.ShedQueries << " shed ("
        << SS.ShedBatches << " batches); commits: "
        << SS.CommitValidationRejects << " validation-rejected, "
        << SS.CommitFailures << " build-failed, " << SS.CommitRetries
        << " retries, " << SS.CommitsQuarantined << " quarantined, "
        << SS.CommitsShed << " shed" << (SS.Quarantined ? "; QUARANTINED" : "")
        << (SS.Shedding ? "; SHEDDING" : "") << '\n';
  }
  Out << "store: " << SS.Store.Hits << "/" << SS.Store.Fetches
      << " fetches hit (" << SS.Store.StaleFetches << " stale), "
      << SS.Store.Publishes << " published (" << SS.Store.StalePublishes
      << " stale), " << SS.Store.Invalidated << " invalidated, "
      << SS.Store.LockContended << " contended locks, "
      << uint64_t(SS.StoreStripes.size()) << " stripes\n";
  if (SS.DiskTierAttached || SS.Store.DiskProbes > 0)
    Out << "disk tier: " << (SS.DiskTierAttached ? "attached" : "detached")
        << ", " << SS.Store.DiskHits << "/" << SS.Store.DiskProbes
        << " probes hit, " << SS.Store.Promoted << " promoted, "
        << SS.Store.DiskStale << " stale, " << SS.Store.DiskCorrupt
        << " corrupt records\n";
  if (SS.WarmRuns > 0)
    Out << "presummarize: " << SS.WarmRuns << " warm passes, "
        << SS.WarmQueries << " vars warmed, " << SS.WarmSummariesComputed
        << " summaries computed\n";
  if (SS.Commits > 0) {
    Out << "last commit ";
    Out.writeFixed(SS.LastCommitSeconds * 1e3, 2);
    Out << " ms (" << SS.LastCommitRelowered << " methods re-lowered), mean ";
    Out.writeFixed(SS.TotalCommitSeconds * 1e3 / double(SS.Commits), 2);
    Out << " ms over " << SS.Commits << " commits\n";
  }
  return CommandStatus::Ok;
}

CommandStatus CommandInterpreter::execute(const std::string &Line,
                                          OStream &Out, OStream &Err) {
  std::vector<std::string> W = splitWords(Line);
  if (W.empty())
    return CommandStatus::Ok;
  const std::string &Cmd = W[0];

  if (Cmd == "quit" || Cmd == "exit")
    return CommandStatus::Quit;
  if (Cmd == "help") {
    printHelp(Out);
    return CommandStatus::Ok;
  }
  if (Cmd == "query" && W.size() > 1)
    return runQuery(W, Out, Err);
  if (Cmd == "alloc" && W.size() == 4)
    return runAlloc(W, Out, Err);
  if (Cmd == "assign" && W.size() == 4)
    return runAssign(W, Out, Err);
  if (Cmd == "touch" && W.size() == 2) {
    ProgramGuard G(ProgramLock, /*Exclusive=*/true);
    ir::MethodId M = resolveMethodSpec(S.program(), W[1]);
    if (M == ir::kNone) {
      Err << "error: no method '" << W[1] << "'\n";
      return CommandStatus::Error;
    }
    S.markDirty(M);
    return CommandStatus::Ok;
  }
  if (Cmd == "commit" && W.size() <= 3)
    return runCommit(W, Out, Err);
  if (Cmd == "wait" && W.size() == 1) {
    S.waitForCommits();
    S.waitForWarm(); // immediate unless Presummarize
    Out << "generation " << S.generation() << " (async queue drained)\n";
    return CommandStatus::Ok;
  }
  if (Cmd == "generations" && W.size() == 1) {
    for (const service::GenerationInfo &G : S.generations())
      Out << "  generation " << G.Number << ": " << uint64_t(G.NumVars)
          << " vars, " << G.RetainedBytes << " / " << G.TotalBytes
          << " bytes exclusive" << (G.IsCurrent ? " (current)" : "") << '\n';
    return CommandStatus::Ok;
  }
  if (Cmd == "rollback" && W.size() == 2) {
    uint64_t Gen = uint64_t(std::atoll(W[1].c_str()));
    if (S.rollback(Gen)) {
      Out << "rolled back to snapshot " << Gen << "; now serving "
          << "generation " << S.generation()
          << " (edits after its capture are pending again)\n";
      return CommandStatus::Ok;
    }
    Err << "error: generation " << Gen
        << " is not retained (see \"generations\")\n";
    return CommandStatus::Error;
  }
  if (Cmd == "deadline" && W.size() == 2) {
    char *End = nullptr;
    double Ms = std::strtod(W[1].c_str(), &End);
    if (End == W[1].c_str() || *End != '\0' || Ms < 0) {
      Err << "error: deadline wants a millisecond count, got '" << W[1]
          << "'\n";
      return CommandStatus::Error;
    }
    DeadlineMs = Ms;
    if (Ms > 0) {
      Out << "queries now carry a ";
      Out.writeFixed(Ms, 1);
      Out << " ms deadline\n";
    } else {
      Out << "query deadline off\n";
    }
    return CommandStatus::Ok;
  }
  if ((Cmd == "save" || Cmd == "load") && W.size() == 2) {
    bool Ok = Cmd == "save" ? S.saveSummaries(W[1]) : S.loadSummaries(W[1]);
    if (Ok) {
      Out << Cmd << ": " << uint64_t(S.stats().StoreSize) << " summaries ("
          << W[1] << ")\n";
      return CommandStatus::Ok;
    }
    Err << "error: cannot " << Cmd << " " << W[1] << '\n';
    return CommandStatus::Error;
  }
  if (Cmd == "stats" && W.size() == 1)
    return runStats(Out);
  Err << "error: bad command (try \"help\")\n";
  return CommandStatus::Error;
}
