//===----------------------------------------------------------------------===//
///
/// \file
/// The shared serve-path command interpreter: ONE implementation of the
/// line-oriented edit/query grammar behind both front ends — the
/// dynsum_tool --serve stdin REPL and every dynsum_serverd socket
/// session.  The grammar used to live inline in the tool's REPL loop;
/// factoring it here means a protocol command and a REPL command can
/// never drift apart, and the serve-path bugs get fixed in one place:
///
///   * "assign" validates its resolveMethod result before calling
///     AnalysisService::addStatement (the method spec can fail to
///     resolve even when both variable specs do — e.g. "assign Main
///     main.x main.y" resolves the vars through the composed
///     "Main.main.x" spec while "Main" alone names a class, not a
///     method — and ir::kNone must never reach addStatement).
///
///   * readCommandLine() reads one full line with an explicit cap: a
///     line longer than the cap is DRAINED to its newline and reported
///     as LineStatus::Overflow — exactly one error for the caller to
///     print — instead of silently executing as two commands the way a
///     bare fixed-buffer fgets loop used to.
///
/// Sessions are per-front-end: the interpreter holds session state (the
/// "deadline" setting) but no program state — many interpreters can
/// serve one AnalysisService.  When several sessions share a service
/// (the multi-tenant server), pass the tenant's program lock: command
/// execution then takes it shared for read-only commands (name
/// resolution reads the live ir::Program, which the service's
/// thread-safety contract leaves to the caller) and exclusive for
/// program-mutating ones (alloc/assign/touch).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SERVER_COMMANDINTERPRETER_H
#define DYNSUM_SERVER_COMMANDINTERPRETER_H

#include "service/AnalysisService.h"
#include "support/OStream.h"

#include <cstdio>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dynsum {
namespace server {

/// Splits \p Line on whitespace (never returns empty words).
std::vector<std::string> splitWords(std::string_view Line);

/// Resolves "Class.method" or "method" (free methods) to a MethodId.
ir::MethodId resolveMethodSpec(const ir::Program &P, const std::string &Spec);

/// Resolves "Class.method.var" / "method.var" to a VarId.
ir::VarId resolveVarSpec(const ir::Program &P, const std::string &Spec);

/// Loads a program from a MiniJava source file (.mj/.minijava/.java) or
/// a textual-IR file (anything else).  Returns null with \p Error set
/// on read/parse/compile failure.
std::unique_ptr<ir::Program> loadProgramFile(const std::string &Path,
                                             std::string &Error);

/// How one readCommandLine() ended.
enum class LineStatus : uint8_t {
  Ok,          ///< one complete command line (newline stripped)
  Eof,         ///< end of input, nothing buffered
  Interrupted, ///< a signal interrupted the read; re-check shutdown state
  Overflow,    ///< line exceeded the cap; drained whole, report ONE error
};

/// Line cap for the stdin REPL.  The historical fgets buffer size; the
/// difference is that an overlong line now reports Overflow instead of
/// executing as two commands.
constexpr size_t kMaxReplLineBytes = 4096;

/// Reads one '\n'-terminated line from \p In into \p Line (newline
/// stripped).  A line longer than \p MaxBytes is consumed up to and
/// including its newline and reported as Overflow — never split.  A
/// final line ended by EOF instead of a newline still returns
/// Ok/Overflow; EINTR returns Interrupted (partial input is dropped —
/// the caller is shutting down).
LineStatus readCommandLine(std::FILE *In, std::string &Line, size_t MaxBytes);

/// How one command execution ended.
enum class CommandStatus : uint8_t {
  Ok,    ///< executed (output, possibly empty, was written)
  Error, ///< rejected; one "error: ..." line was written
  Quit,  ///< "quit"/"exit": the session should end
};

/// One serve session's command dispatcher over a shared
/// AnalysisService.  Holds only session state (the per-session query
/// deadline); see the file comment for the locking contract.
class CommandInterpreter {
public:
  /// \p ProgramLock, when non-null, serializes this session's program
  /// reads/writes against other sessions of the same service (shared
  /// for queries, exclusive for alloc/assign/touch).  A single-session
  /// front end (the REPL) passes null and skips locking entirely.
  explicit CommandInterpreter(service::AnalysisService &S,
                              std::shared_mutex *ProgramLock = nullptr)
      : S(S), ProgramLock(ProgramLock) {}

  /// Executes one command line, writing the reply to \p Out and
  /// "error: ..." diagnostics to \p Err (front ends may pass the same
  /// stream for both).  An empty/blank line is Ok with no output.
  CommandStatus execute(const std::string &Line, OStream &Out, OStream &Err);

  /// The command reference ("help").
  static void printHelp(OStream &Out);

  /// Current per-session query deadline (0 = unlimited).
  double deadlineMs() const { return DeadlineMs; }

private:
  CommandStatus runQuery(const std::vector<std::string> &W, OStream &Out,
                         OStream &Err);
  CommandStatus runAlloc(const std::vector<std::string> &W, OStream &Out,
                         OStream &Err);
  CommandStatus runAssign(const std::vector<std::string> &W, OStream &Out,
                          OStream &Err);
  CommandStatus runCommit(const std::vector<std::string> &W, OStream &Out,
                          OStream &Err);
  CommandStatus runStats(OStream &Out);

  service::AnalysisService &S;
  std::shared_mutex *ProgramLock;
  /// Session state: per-query wall-clock deadline (0 = unlimited).
  double DeadlineMs = 0.0;
};

} // namespace server
} // namespace dynsum

#endif // DYNSUM_SERVER_COMMANDINTERPRETER_H
