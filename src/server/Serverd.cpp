//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-tenant socket server implementation (see Serverd.h).
///
//===----------------------------------------------------------------------===//

#include "server/Serverd.h"

#include "support/Shutdown.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace dynsum;
using namespace dynsum::server;

namespace {

/// Writes the whole buffer, riding out EINTR.  False on a dead peer
/// (EPIPE/ECONNRESET — the handler just ends the session).
bool sendAll(int Fd, const char *Data, size_t N) {
  while (N > 0) {
    ssize_t W = ::send(Fd, Data, N, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += W;
    N -= size_t(W);
  }
  return true;
}

/// Sends one protocol reply block: the accumulated text followed by the
/// lone-"." terminator line.
bool sendBlock(int Fd, const std::string &Body) {
  std::string Block = Body;
  Block += ".\n";
  return sendAll(Fd, Block.data(), Block.size());
}

/// Newline-delimited reads over a socket with the same overflow/EINTR
/// contract as readCommandLine(): an overlong line is drained whole and
/// reported once, a signal mid-read surfaces as Interrupted so the
/// handler can re-check the drain flag.
class SocketLineReader {
public:
  explicit SocketLineReader(int Fd) : Fd(Fd) {}

  LineStatus readLine(std::string &Line, size_t MaxBytes) {
    Line.clear();
    bool Overflowed = false;
    for (;;) {
      size_t Nl = Buf.find('\n', Scanned);
      if (Nl != std::string::npos) {
        bool TooLong = Overflowed || Nl > MaxBytes;
        if (!TooLong)
          Line.assign(Buf, 0, Nl);
        Buf.erase(0, Nl + 1);
        Scanned = 0;
        return TooLong ? LineStatus::Overflow : LineStatus::Ok;
      }
      Scanned = Buf.size();
      if (Buf.size() > MaxBytes)
        Overflowed = true; // keep draining to the newline
      if (AtEof) {
        if (Overflowed)
          return LineStatus::Overflow;
        if (Buf.empty())
          return LineStatus::Eof;
        Line.swap(Buf); // final line without a newline still executes
        Buf.clear();
        Scanned = 0;
        return LineStatus::Ok;
      }
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N < 0) {
        if (errno == EINTR)
          return LineStatus::Interrupted;
        return LineStatus::Eof; // reset/shutdown: treat as hangup
      }
      if (N == 0)
        AtEof = true;
      else
        Buf.append(Chunk, size_t(N));
    }
  }

private:
  int Fd;
  std::string Buf;
  size_t Scanned = 0; ///< prefix of Buf already known newline-free
  bool AtEof = false;
};

} // namespace

AnalysisServer::AnalysisServer(ServerOptions O) : Opts(std::move(O)) {
  // ONE pool shared by every tenant's commit pipeline and warm passes:
  // WorkerPool::run() is internally serialized, so tenants' phases
  // interleave on the same threads instead of each tenant parking its
  // own idle pool.
  CommitCtx = Opts.CommitThreads > 1
                  ? support::ExecContext::pooled(Opts.CommitThreads)
                  : support::ExecContext(Opts.CommitThreads);
}

AnalysisServer::~AnalysisServer() { stop(); }

bool AnalysisServer::addTenant(const std::string &Name,
                               std::unique_ptr<ir::Program> Prog) {
  if (Name.empty() || !Prog || Started || findTenant(Name))
    return false;
  auto T = std::make_unique<Tenant>();
  T->Name = Name;
  service::ServiceOptions SO;
  SO.Engine.NumThreads = Opts.QueryThreads;
  SO.Engine.Analysis = Opts.Analysis;
  SO.Commit = CommitCtx;
  SO.KeepGenerations = Opts.KeepGenerations;
  SO.StoreStripes = Opts.StoreStripes;
  SO.Presummarize = Opts.Presummarize;
  SO.Overload = Opts.Overload;
  if (!Opts.SnapshotDir.empty()) {
    std::string Snapshot = Opts.SnapshotDir + "/" + Name + ".dsum";
    SO.SnapshotOnShutdownPath = Snapshot;
    SO.WarmFromDiskPath = Snapshot; // warm-restart loop per tenant
  }
  T->Service =
      std::make_unique<service::AnalysisService>(std::move(Prog), SO);
  Tenants.push_back(std::move(T));
  return true;
}

bool AnalysisServer::start(std::string &Error) {
  if (Started) {
    Error = "already started";
    return false;
  }
  if (::pipe(StopPipe) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // loopback only
  Addr.sin_port = htons(Opts.Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Error = std::string("bind: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 64) != 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  socklen_t Len = sizeof(Addr);
  ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len);
  BoundPort = ntohs(Addr.sin_port);
  Started = true;
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void AnalysisServer::stop() {
  if (Drained)
    return;
  Drained = true;
  Stopping.store(true, std::memory_order_release);
  if (Started) {
    // Wake the accept loop's poll() and let it exit.
    char Byte = 1;
    ssize_t Ignored = ::write(StopPipe[1], &Byte, 1);
    (void)Ignored;
    Acceptor.join();
  }
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  for (int &Fd : StopPipe)
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
  // Unblock every parked handler read, then join.  Handlers never
  // close their own fd — the close happens here, after the join, so a
  // racing handler can never touch a recycled descriptor.
  std::vector<std::unique_ptr<Connection>> Live;
  {
    std::lock_guard<std::mutex> L(ConnsM);
    Live.swap(Conns);
  }
  for (auto &C : Live)
    ::shutdown(C->Fd, SHUT_RDWR);
  for (auto &C : Live) {
    if (C->Handler.joinable())
      C->Handler.join();
    ::close(C->Fd);
  }
  // Destroy the tenants: each AnalysisService destructor saves its
  // SnapshotOnShutdownPath, so the drain IS the snapshot pass.
  Tenants.clear();
}

std::vector<std::string> AnalysisServer::tenantNames() const {
  std::vector<std::string> Names;
  Names.reserve(Tenants.size());
  for (const auto &T : Tenants)
    Names.push_back(T->Name);
  return Names;
}

AnalysisServer::Tenant *AnalysisServer::findTenant(const std::string &Name) {
  for (auto &T : Tenants)
    if (T->Name == Name)
      return T.get();
  return nullptr;
}

void AnalysisServer::reapConnections() {
  std::lock_guard<std::mutex> L(ConnsM);
  for (size_t I = 0; I < Conns.size();) {
    if (Conns[I]->Done.load(std::memory_order_acquire)) {
      Conns[I]->Handler.join();
      ::close(Conns[I]->Fd);
      Conns.erase(Conns.begin() + long(I));
    } else {
      ++I;
    }
  }
}

void AnalysisServer::acceptLoop() {
  for (;;) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {StopPipe[0], POLLIN, 0}};
    int R = ::poll(Fds, 2, -1);
    if (R < 0) {
      if (errno == EINTR) {
        // A drain signal may have landed here instead of on main.
        if (Stopping.load(std::memory_order_acquire) ||
            support::shutdownRequested())
          return;
        continue;
      }
      return;
    }
    if (Stopping.load(std::memory_order_acquire) || (Fds[1].revents & POLLIN))
      return;
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    reapConnections();
    if (Opts.MaxConnections > 0 &&
        ActiveConnections.load(std::memory_order_relaxed) >=
            Opts.MaxConnections) {
      // Global cap: a well-formed refusal, then close.  Never a hung
      // connect, never a half answer.
      ShedConnections.fetch_add(1, std::memory_order_relaxed);
      sendBlock(Fd, "error: server overloaded\n");
      ::close(Fd);
      continue;
    }
    AcceptedConnections.fetch_add(1, std::memory_order_relaxed);
    ActiveConnections.fetch_add(1, std::memory_order_relaxed);
    auto C = std::make_unique<Connection>();
    C->Fd = Fd;
    Connection *Raw = C.get();
    {
      std::lock_guard<std::mutex> L(ConnsM);
      Conns.push_back(std::move(C));
    }
    Raw->Handler = std::thread([this, Raw] {
      handleConnection(*Raw);
      ActiveConnections.fetch_sub(1, std::memory_order_relaxed);
      Raw->Done.store(true, std::memory_order_release);
    });
  }
}

void AnalysisServer::handleConnection(Connection &C) {
  {
    StringOStream Hello;
    Hello << "dynsum_serverd: " << uint64_t(Tenants.size())
          << " tenants; \"tenant <name>\" binds this session, \"help\" "
             "lists commands\n";
    if (!sendBlock(C.Fd, Hello.str()))
      return;
  }
  SocketLineReader Reader(C.Fd);
  Tenant *Bound = nullptr;
  std::unique_ptr<CommandInterpreter> Interp;
  std::string Line;
  for (;;) {
    LineStatus LS = Reader.readLine(Line, kMaxReplLineBytes);
    if (LS == LineStatus::Interrupted) {
      if (Stopping.load(std::memory_order_acquire) ||
          support::shutdownRequested())
        return;
      continue;
    }
    if (LS == LineStatus::Eof)
      return;
    StringOStream Out;
    if (LS == LineStatus::Overflow) {
      Out << "error: line exceeds " << uint64_t(kMaxReplLineBytes)
          << " bytes (dropped)\n";
      if (!sendBlock(C.Fd, Out.str()))
        return;
      continue;
    }
    std::vector<std::string> W = splitWords(Line);
    if (W.empty()) {
      if (!sendBlock(C.Fd, "")) // every request line gets one block
        return;
      continue;
    }
    bool Quit = false;
    if (W[0] == "quit" || W[0] == "exit") {
      Out << "bye\n";
      Quit = true;
    } else if (W[0] == "tenants" && W.size() == 1) {
      for (const auto &T : Tenants)
        Out << "  " << T->Name << ": generation "
            << T->Service->generation()
            << (T.get() == Bound ? " (bound)" : "") << '\n';
    } else if (W[0] == "tenant" && W.size() == 2) {
      Tenant *T = findTenant(W[1]);
      if (!T) {
        Out << "error: no tenant '" << W[1] << "' (see \"tenants\")\n";
      } else {
        Bound = T;
        // Session state (the deadline) starts fresh on every rebind.
        Interp = std::make_unique<CommandInterpreter>(*T->Service,
                                                      &T->ProgramLock);
        Out << "tenant " << T->Name << " bound (generation "
            << T->Service->generation() << ")\n";
      }
    } else if (W[0] == "help" && !Bound) {
      Out << "server verbs: tenant <name> (bind), tenants, quit\n"
             "after binding a tenant:\n";
      CommandInterpreter::printHelp(Out);
    } else if (!Bound) {
      Out << "error: no tenant bound (use \"tenant <name>\")\n";
    } else {
      try {
        if (Interp->execute(Line, Out, Out) == CommandStatus::Quit) {
          Out << "bye\n";
          Quit = true;
        }
      } catch (const std::exception &E) {
        Out << "error: internal: " << E.what() << '\n';
      }
    }
    if (!sendBlock(C.Fd, Out.str()) || Quit)
      return;
  }
}
