//===----------------------------------------------------------------------===//
///
/// \file
/// Client framework and the three paper clients.
///
//===----------------------------------------------------------------------===//

#include "clients/Client.h"

#include "engine/QueryScheduler.h"
#include "pag/CallGraph.h"
#include "support/StringExtras.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::clients;
using namespace dynsum::ir;

Client::~Client() = default;

ClientPredicate Client::predicate(const pag::PAG &G,
                                  const ClientQuery &Q) const {
  return [this, &G, Q](const QueryResult &R) {
    return judge(G, Q, R) == Verdict::Proven;
  };
}

std::vector<ClientQuery> dynsum::clients::strideSample(
    std::vector<ClientQuery> Queries, size_t MaxQueries) {
  if (MaxQueries == 0 || Queries.size() <= MaxQueries)
    return Queries;
  std::vector<ClientQuery> Out;
  Out.reserve(MaxQueries);
  // Uniform stride keeps the sample spread over the whole program.
  double Step = double(Queries.size()) / double(MaxQueries);
  for (size_t I = 0; I < MaxQueries; ++I)
    Out.push_back(Queries[size_t(double(I) * Step)]);
  return Out;
}

ClientReport dynsum::clients::runClient(const Client &C, DemandAnalysis &A,
                                        const std::vector<ClientQuery> &Qs,
                                        size_t Begin, size_t End) {
  ClientReport Report;
  Report.ClientName = C.name();
  Report.AnalysisName = A.name();
  Timer T;
  for (size_t I = Begin; I < End && I < Qs.size(); ++I) {
    const ClientQuery &Q = Qs[I];
    QueryResult R = A.query(Q.Node, C.predicate(A.graph(), Q));
    ++Report.NumQueries;
    Report.TotalSteps += R.Steps;
    switch (C.judge(A.graph(), Q, R)) {
    case Verdict::Proven:
      ++Report.Proven;
      break;
    case Verdict::Refuted:
      ++Report.Refuted;
      break;
    case Verdict::Unknown:
      ++Report.Unknown;
      break;
    }
  }
  Report.Seconds = T.seconds();
  return Report;
}

ClientReport dynsum::clients::runClientBatched(
    const Client &C, engine::QueryScheduler &S,
    const std::vector<ClientQuery> &Qs, size_t Begin, size_t End) {
  ClientReport Report;
  Report.ClientName = C.name();
  Report.AnalysisName = "DYNSUM";
  End = std::min(End, Qs.size());
  if (Begin >= End)
    return Report;

  engine::QueryBatch Batch;
  for (size_t I = Begin; I < End; ++I)
    Batch.add(Qs[I].Node);
  engine::BatchResult R = S.run(Batch);

  for (size_t I = Begin; I < End; ++I) {
    const engine::QueryOutcome &Out = R.Outcomes[I - Begin];
    ++Report.NumQueries;
    Report.TotalSteps += Out.Steps;
    switch (C.judge(S.graph(), Qs[I], Out.toQueryResult())) {
    case Verdict::Proven:
      ++Report.Proven;
      break;
    case Verdict::Refuted:
      ++Report.Refuted;
      break;
    case Verdict::Unknown:
      ++Report.Unknown;
      break;
    }
  }
  Report.Seconds = R.Stats.Seconds;
  return Report;
}

ClientReport dynsum::clients::runClientBatched(
    const Client &C, engine::QueryScheduler &S,
    const std::vector<ClientQuery> &Qs) {
  return runClientBatched(C, S, Qs, 0, Qs.size());
}

//===----------------------------------------------------------------------===//
// SafeCast
//===----------------------------------------------------------------------===//

std::vector<ClientQuery>
SafeCastClient::makeQueries(const pag::PAG &G, size_t MaxQueries) const {
  const Program &P = G.program();
  std::vector<ClientQuery> Out;
  for (const CastSite &C : P.castSites()) {
    // Upcasts are statically safe; only downcasts/crosscasts demand
    // points-to information.
    TypeId SrcType = P.variable(C.Source).DeclaredType;
    if (P.isSubtypeOf(SrcType, C.Target))
      continue;
    ClientQuery Q;
    Q.Node = G.nodeOfVar(C.Source);
    Q.Site = C.Id;
    Q.TargetType = C.Target;
    Out.push_back(Q);
  }
  return strideSample(std::move(Out), MaxQueries);
}

Verdict SafeCastClient::judge(const pag::PAG &G, const ClientQuery &Q,
                              const QueryResult &R) const {
  const Program &P = G.program();
  bool AllSubtypes = true;
  for (const PtsTarget &T : R.Targets) {
    const AllocSite &A = P.alloc(T.Alloc);
    if (A.IsNull)
      continue; // null passes any cast
    AllSubtypes &= P.isSubtypeOf(A.Type, Q.TargetType);
  }
  if (AllSubtypes && !R.BudgetExceeded)
    return Verdict::Proven;
  if (R.BudgetExceeded)
    return Verdict::Unknown;
  return Verdict::Refuted;
}

//===----------------------------------------------------------------------===//
// NullDeref
//===----------------------------------------------------------------------===//

std::vector<ClientQuery>
NullDerefClient::makeQueries(const pag::PAG &G, size_t MaxQueries) const {
  const Program &P = G.program();
  std::vector<ClientQuery> Out;
  std::unordered_set<VarId> SeenBases;
  uint32_t Ordinal = 0;
  for (const Method &M : P.methods()) {
    for (const Statement &S : M.Stmts) {
      ++Ordinal;
      if (S.Kind != StmtKind::Load && S.Kind != StmtKind::Store)
        continue;
      if (!SeenBases.insert(S.Base).second)
        continue; // one query per distinct base variable
      ClientQuery Q;
      Q.Node = G.nodeOfVar(S.Base);
      Q.Site = Ordinal;
      Out.push_back(Q);
    }
  }
  return strideSample(std::move(Out), MaxQueries);
}

Verdict NullDerefClient::judge(const pag::PAG &G, const ClientQuery &Q,
                               const QueryResult &R) const {
  (void)Q;
  const Program &P = G.program();
  for (const PtsTarget &T : R.Targets)
    if (P.alloc(T.Alloc).IsNull)
      return Verdict::Refuted; // may dereference null
  if (R.BudgetExceeded)
    return Verdict::Unknown;
  if (R.Targets.empty())
    return Verdict::Refuted; // uninitialized: definitely-null deref
  return Verdict::Proven;
}

//===----------------------------------------------------------------------===//
// FactoryM
//===----------------------------------------------------------------------===//

bool FactoryMClient::isFactoryName(std::string_view Name) {
  return startsWith(Name, "create") || startsWith(Name, "make");
}

std::vector<ClientQuery>
FactoryMClient::makeQueries(const pag::PAG &G, size_t MaxQueries) const {
  const Program &P = G.program();
  std::vector<ClientQuery> Out;
  // One query per call site whose (single, direct) target is a factory
  // and whose result is used; virtual factory calls query every target.
  for (const Method &M : P.methods()) {
    for (const Statement &S : M.Stmts) {
      if (S.Kind != StmtKind::Call || S.Dst == kNone)
        continue;
      MethodId Target = kNone;
      if (!S.IsVirtual) {
        if (isFactoryName(P.names().text(P.method(S.Callee).Name)))
          Target = S.Callee;
      } else if (isFactoryName(P.names().text(S.VirtualName))) {
        Target = kNone; // judged per answer; factory unknown statically
      } else {
        continue;
      }
      if (!S.IsVirtual && Target == kNone)
        continue;
      ClientQuery Q;
      Q.Node = G.nodeOfVar(S.Dst);
      Q.Site = S.Call;
      Q.Factory = Target;
      Out.push_back(Q);
    }
  }
  return strideSample(std::move(Out), MaxQueries);
}

/// Lazily-built "methods reachable from each factory" index.
struct FactoryMClient::ReachabilityIndex {
  explicit ReachabilityIndex(const Program &P)
      : Calls(pag::buildCallGraph(P)) {}

  bool reaches(MethodId From, MethodId To) {
    auto It = Cache.find(From);
    if (It == Cache.end()) {
      std::vector<MethodId> R = Calls.reachableFrom(From);
      It = Cache.emplace(From, std::unordered_set<MethodId>(R.begin(),
                                                            R.end()))
               .first;
    }
    return It->second.count(To) != 0;
  }

  pag::CallGraph Calls;
  std::unordered_map<MethodId, std::unordered_set<MethodId>> Cache;
};

FactoryMClient::FactoryMClient() = default;
FactoryMClient::~FactoryMClient() = default;

Verdict FactoryMClient::judge(const pag::PAG &G, const ClientQuery &Q,
                              const QueryResult &R) const {
  const Program &P = G.program();
  if (ReachProgram != &P) {
    Reach = std::make_unique<ReachabilityIndex>(P);
    ReachProgram = &P;
  }
  ReachabilityIndex &ReachIdx = *Reach;
  bool AllFresh = true;
  for (const PtsTarget &T : R.Targets) {
    const AllocSite &A = P.alloc(T.Alloc);
    if (A.IsNull) {
      AllFresh = false; // a factory returning null is not fresh
      continue;
    }
    // Fresh = allocated in the factory itself or something it calls.
    if (Q.Factory != kNone) {
      AllFresh &= A.Owner != kNone && ReachIdx.reaches(Q.Factory, A.Owner);
    } else {
      // Virtual factory: accept allocation inside any factory-named
      // method (or its callees is unknowable without the target).
      AllFresh &= A.Owner != kNone &&
                  isFactoryName(P.names().text(P.method(A.Owner).Name));
    }
  }
  if (R.BudgetExceeded)
    return Verdict::Unknown;
  if (R.Targets.empty())
    return Verdict::Refuted; // factory provably returns nothing useful
  return AllFresh ? Verdict::Proven : Verdict::Refuted;
}

//===----------------------------------------------------------------------===//
// Devirt
//===----------------------------------------------------------------------===//

std::vector<ClientQuery>
DevirtClient::makeQueries(const pag::PAG &G, size_t MaxQueries) const {
  const Program &P = G.program();
  std::vector<ClientQuery> Out;
  for (const Method &M : P.methods()) {
    for (const Statement &S : M.Stmts) {
      if (S.Kind != StmtKind::Call || !S.IsVirtual)
        continue;
      // CHA-monomorphic sites need no points-to information; a JIT
      // devirtualizes them straight off the class hierarchy.
      TypeId RecvType = P.variable(S.Base).DeclaredType;
      if (P.chaTargets(RecvType, S.VirtualName).size() <= 1)
        continue;
      ClientQuery Q;
      Q.Node = G.nodeOfVar(S.Base);
      Q.Site = S.Call;
      Out.push_back(Q);
    }
  }
  return strideSample(std::move(Out), MaxQueries);
}

/// The virtual-call statement at site \p Site; null when \p Site is not
/// a virtual call.
static const Statement *findVirtualCall(const Program &P, CallSiteId Site) {
  const CallSite &C = P.callSite(Site);
  for (const Statement &S : P.method(C.Caller).Stmts)
    if (S.Kind == StmtKind::Call && S.IsVirtual && S.Call == Site)
      return &S;
  return nullptr;
}

std::vector<MethodId>
DevirtClient::dispatchTargets(const pag::PAG &G, const ClientQuery &Q,
                              const QueryResult &R) {
  const Program &P = G.program();
  const Statement *Call = findVirtualCall(P, Q.Site);
  assert(Call && "Devirt queries only virtual call sites");
  std::vector<MethodId> Targets;
  for (const PtsTarget &T : R.Targets) {
    const AllocSite &A = P.alloc(T.Alloc);
    if (A.IsNull)
      continue; // a null receiver throws; it dispatches nowhere
    MethodId Target = P.dispatch(A.Type, Call->VirtualName);
    if (Target != kNone)
      Targets.push_back(Target);
  }
  std::sort(Targets.begin(), Targets.end());
  Targets.erase(std::unique(Targets.begin(), Targets.end()), Targets.end());
  return Targets;
}

Verdict DevirtClient::judge(const pag::PAG &G, const ClientQuery &Q,
                            const QueryResult &R) const {
  if (R.BudgetExceeded)
    return Verdict::Unknown;
  // An empty receiver set means the call never executes; trivially
  // monomorphic.
  return dispatchTargets(G, Q, R).size() <= 1 ? Verdict::Proven
                                              : Verdict::Refuted;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

std::vector<std::unique_ptr<Client>> dynsum::clients::makePaperClients() {
  std::vector<std::unique_ptr<Client>> Out;
  Out.push_back(std::make_unique<SafeCastClient>());
  Out.push_back(std::make_unique<NullDerefClient>());
  Out.push_back(std::make_unique<FactoryMClient>());
  return Out;
}

std::vector<std::unique_ptr<Client>> dynsum::clients::makeAllClients() {
  std::vector<std::unique_ptr<Client>> Out = makePaperClients();
  Out.push_back(std::make_unique<DevirtClient>());
  return Out;
}
