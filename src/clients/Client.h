//===----------------------------------------------------------------------===//
///
/// \file
/// The client framework: a client derives points-to queries from a
/// program and judges each answer.  The paper evaluates three clients —
/// SafeCast, NullDeref and FactoryM — all implemented in this library.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_CLIENTS_CLIENT_H
#define DYNSUM_CLIENTS_CLIENT_H

#include "analysis/DemandAnalysis.h"

#include <memory>
#include <string>
#include <vector>

namespace dynsum {
namespace engine {
class QueryScheduler;
}
namespace clients {

/// One demand issued by a client.
struct ClientQuery {
  /// The PAG variable node whose points-to set is demanded.
  pag::NodeId Node = 0;
  /// Client-specific site id (cast site, statement ordinal, call site).
  uint32_t Site = ir::kNone;
  /// SafeCast: the downcast target type.
  ir::TypeId TargetType = ir::kNone;
  /// FactoryM: the factory method whose freshness is checked.
  ir::MethodId Factory = ir::kNone;
};

/// Outcome of judging one query's answer.
enum class Verdict : uint8_t {
  Proven,  ///< the client property definitely holds
  Refuted, ///< the property definitely fails (a real finding)
  Unknown, ///< budget exceeded: no claim
};

/// Aggregated results of running one client against one analysis.
struct ClientReport {
  std::string ClientName;
  std::string AnalysisName;
  uint64_t NumQueries = 0;
  uint64_t Proven = 0;
  uint64_t Refuted = 0;
  uint64_t Unknown = 0;
  /// Total PAG edge traversals across all queries.
  uint64_t TotalSteps = 0;
  /// Wall-clock seconds for the batch.
  double Seconds = 0.0;
};

/// A points-to analysis client.
class Client {
public:
  virtual ~Client();

  virtual const char *name() const = 0;

  /// Derives this client's query stream from \p G, in deterministic
  /// order.  \p MaxQueries truncates by uniform stride (0 = no limit) —
  /// the knob used to mirror the paper's per-benchmark query counts.
  virtual std::vector<ClientQuery> makeQueries(const pag::PAG &G,
                                               size_t MaxQueries) const = 0;

  /// Judges the answer to \p Q.
  virtual Verdict judge(const pag::PAG &G, const ClientQuery &Q,
                        const analysis::QueryResult &R) const = 0;

  /// The REFINEPTS satisfaction predicate for \p Q: refinement stops as
  /// soon as the property is Proven.  (Refuted answers cannot stop
  /// refinement early — the imprecision may be the analysis's fault.)
  analysis::ClientPredicate predicate(const pag::PAG &G,
                                      const ClientQuery &Q) const;
};

/// Applies \p MaxQueries to \p Queries by uniform stride.
std::vector<ClientQuery> strideSample(std::vector<ClientQuery> Queries,
                                      size_t MaxQueries);

/// Runs queries [\p Begin, \p End) of \p Queries through \p Analysis and
/// aggregates a report.
ClientReport runClient(const Client &C, analysis::DemandAnalysis &A,
                       const std::vector<ClientQuery> &Queries,
                       size_t Begin, size_t End);

/// Convenience: run the whole stream.
inline ClientReport runClient(const Client &C, analysis::DemandAnalysis &A,
                              const std::vector<ClientQuery> &Queries) {
  return runClient(C, A, Queries, 0, Queries.size());
}

/// Runs queries [\p Begin, \p End) of \p Queries through the parallel
/// batch engine \p S and aggregates a report shaped like runClient's.
/// Judging happens on the context-insensitive projection, which is all
/// the shipped clients inspect, so verdicts match the sequential path.
ClientReport runClientBatched(const Client &C, engine::QueryScheduler &S,
                              const std::vector<ClientQuery> &Queries,
                              size_t Begin, size_t End);

/// Convenience: run the whole stream through the batch engine.
ClientReport runClientBatched(const Client &C, engine::QueryScheduler &S,
                              const std::vector<ClientQuery> &Queries);

//===----------------------------------------------------------------------===//
// The three paper clients
//===----------------------------------------------------------------------===//

/// Checks downcast safety: for every cast site (T) x where T is not a
/// supertype of x's declared type, the cast is safe iff every object x
/// may point to has a type that is a subtype of T.
class SafeCastClient : public Client {
public:
  const char *name() const override { return "SafeCast"; }
  std::vector<ClientQuery> makeQueries(const pag::PAG &G,
                                       size_t MaxQueries) const override;
  Verdict judge(const pag::PAG &G, const ClientQuery &Q,
                const analysis::QueryResult &R) const override;
};

/// Detects null-pointer dereferences: for the base variable of every
/// load and store, the dereference is safe iff no null pseudo-object is
/// in its points-to set (and the set is non-empty, i.e. the variable is
/// initialized at all).  This client "demands high precision": any null
/// anywhere in the heap approximation refutes it.
class NullDerefClient : public Client {
public:
  const char *name() const override { return "NullDeref"; }
  std::vector<ClientQuery> makeQueries(const pag::PAG &G,
                                       size_t MaxQueries) const override;
  Verdict judge(const pag::PAG &G, const ClientQuery &Q,
                const analysis::QueryResult &R) const override;
};

/// Checks the factory-method property: the result of a call to a
/// factory (a method whose name starts with "create" or "make") must
/// only be objects freshly allocated inside the factory or its callees.
class FactoryMClient : public Client {
public:
  FactoryMClient();
  ~FactoryMClient() override;

  const char *name() const override { return "FactoryM"; }
  std::vector<ClientQuery> makeQueries(const pag::PAG &G,
                                       size_t MaxQueries) const override;
  Verdict judge(const pag::PAG &G, const ClientQuery &Q,
                const analysis::QueryResult &R) const override;

  /// True when \p M is treated as a factory by name.
  static bool isFactoryName(std::string_view Name);

private:
  struct ReachabilityIndex;
  /// Lazily built per judged program; owned by this client so indexes
  /// cannot outlive the queries that keyed them.
  mutable std::unique_ptr<ReachabilityIndex> Reach;
  mutable const ir::Program *ReachProgram = nullptr;
};

/// Checks virtual-call devirtualizability: a call site is Proven when
/// the receiver's points-to set dispatches to exactly one target method
/// (the JIT may then inline it), Refuted when several targets remain.
/// This client is not in the paper's evaluation; it implements the JIT
/// use case the paper's introduction motivates.
class DevirtClient : public Client {
public:
  const char *name() const override { return "Devirt"; }
  std::vector<ClientQuery> makeQueries(const pag::PAG &G,
                                       size_t MaxQueries) const override;
  Verdict judge(const pag::PAG &G, const ClientQuery &Q,
                const analysis::QueryResult &R) const override;

  /// The distinct dispatch targets implied by \p R for the virtual call
  /// at site \p Q.Site (null receivers ignored).  Exposed for tests and
  /// the devirtualization example.
  static std::vector<ir::MethodId> dispatchTargets(const pag::PAG &G,
                                                   const ClientQuery &Q,
                                                   const analysis::QueryResult &R);
};

/// Constructs the three paper clients in evaluation order.
std::vector<std::unique_ptr<Client>> makePaperClients();

/// The paper clients plus the Devirt extension client.
std::vector<std::unique_ptr<Client>> makeAllClients();

} // namespace clients
} // namespace dynsum

#endif // DYNSUM_CLIENTS_CLIENT_H
