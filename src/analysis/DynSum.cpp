//===----------------------------------------------------------------------===//
///
/// \file
/// DYNSUM implementation: Algorithm 3 (PPTA) and Algorithm 4 (worklist).
///
/// The paper's listings write PAG edges in flowsTo-bar orientation; the
/// comments below map every listing line onto the storage orientation
/// pinned in PAG.h:
///
///   listing "a --l--> b"  ==  PAG edge "b --l--> a"
///
/// so S1 (flowsTo-bar) rules read a node's IN edges, S2 (flowsTo) rules
/// read OUT edges, except the two "-bar" field rules called out inline.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"

#include "support/Debug.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::pag;

SummaryExchange::~SummaryExchange() = default;

uint64_t dynsum::analysis::packSummaryKey(NodeId Node, StackId Fields,
                                          RsmState S) {
  assert(Fields.Id < (1u << 31) && "field-stack id overflow");
  return (uint64_t(Fields.Id) << 33) | (uint64_t(Node) << 1) |
         uint64_t(S == RsmState::S2);
}

//===----------------------------------------------------------------------===//
// Algorithm 3: DSPOINTSTO
//===----------------------------------------------------------------------===//

bool PptaEngine::compute(NodeId V, StackId F, RsmState S, Budget &Bgt,
                         PptaSummary &Summary) {
  B = &Bgt;
  Out = &Summary;
  Complete = true;
  Visited.clear();
  Work.clear();
  push(V, F, S);
  // The recursion of the paper's listing is unrolled into an explicit
  // stack: expansion order differs from call order, but the traversal
  // is exhaustive under the visited set, so a complete run reaches the
  // same states, consumes the same budget, and emits the same summary
  // (as a set).  Incomplete runs are discarded by every caller.
  while (!Work.empty() && Complete) {
    Frame Fr = Work.back();
    Work.pop_back();
    expand(Fr.Node, Fr.Fields, Fr.State);
  }
  return Complete;
}

void PptaEngine::expand(NodeId V, StackId F, RsmState S) {
  // Lines 1-3: the visited check on (v, f, s) happened at push time.
  if (B->exceeded()) {
    Complete = false;
    return;
  }

  const Node &Nd = Graph.node(V);

  if (S == RsmState::S1) {
    // ---- S1: walking a flowsTo-bar path (lines 5-16). ----
    for (EdgeId EId : Graph.inEdgesOfKind(V, EdgeKind::New)) {
      // Lines 6-10.  o --new--> v.  With an empty field stack the
      // object is a result; otherwise flip to S2 at v ("new new-bar")
      // to look for aliases of v.
      if (!B->consume()) {
        Complete = false;
        return;
      }
      if (F.isEmpty())
        Out->Objects.push_back(Graph.allocOf(Graph.edge(EId).Src));
      else
        push(V, F, RsmState::S2);
    }
    for (EdgeId EId : Graph.inEdgesOfKind(V, EdgeKind::Assign)) {
      // Lines 11-12.  x --assign--> v: continue backwards at x.
      if (!B->consume()) {
        Complete = false;
        return;
      }
      push(Graph.edge(EId).Src, F, RsmState::S1);
    }
    for (EdgeId EId : Graph.inEdgesOfKind(V, EdgeKind::Load)) {
      // Lines 13-14.  base --load(g)--> v (v = base.g): push g and
      // continue backwards at the base.
      const Edge &E = Graph.edge(EId);
      if (!B->consume()) {
        Complete = false;
        return;
      }
      // k-limit the pending-field stack: cyclic stores/loads can grow
      // it without bound (e.g. a circular list).  Pruning the branch
      // is the same under-approximation as the visited-flag cycle
      // cutting REFINEPTS inherits from [15]; access paths deeper
      // than the cap do not occur in realistic code.
      if (FieldStacks.depth(F) >= MaxFieldDepth) {
        ++DepthPrunes;
        continue;
      }
      push(E.Src, FieldStacks.push(F, encodeLoadBarField(E.Aux)),
           RsmState::S1);
    }
    if (B->exceeded()) {
      Complete = false;
      return;
    }
    // Lines 15-16: a global edge flows into v — record the boundary
    // state for Algorithm 4.  (Stores into v are irrelevant backwards.)
    if (Nd.HasGlobalIn)
      Out->Tuples.push_back(PptaTuple{V, F, RsmState::S1});
    return;
  }

  // ---- S2: walking a flowsTo path (lines 17-29). ----
  if (!F.isEmpty()) {
    uint32_t Top = FieldStacks.peek(F);
    for (EdgeId EId : Graph.outEdgesOfKind(V, EdgeKind::Load)) {
      // Lines 18-20.  v --load(g)--> x (x = v.g): the tracked object
      // sits in v's field g; the load transfers it to x.  Only a field
      // pushed by a *store* (the object really went into .g) may be
      // popped here; see encodeLoadBarField's comment.
      const Edge &E = Graph.edge(EId);
      if (Top != encodeStoreField(E.Aux))
        continue;
      if (!B->consume()) {
        Complete = false;
        return;
      }
      push(E.Dst, FieldStacks.pop(F), RsmState::S2);
    }
  }
  for (EdgeId EId : Graph.outEdgesOfKind(V, EdgeKind::Assign)) {
    // Lines 21-22.  v --assign--> x: flow forwards.
    if (!B->consume()) {
      Complete = false;
      return;
    }
    push(Graph.edge(EId).Dst, F, RsmState::S2);
  }
  for (EdgeId EId : Graph.outEdgesOfKind(V, EdgeKind::Store)) {
    // Lines 23-24.  v --store(g)--> base (base.g = v): the object is
    // stored into base.g; push g and look for aliases of the base by
    // walking flowsTo-bar (S1) from it.
    const Edge &E = Graph.edge(EId);
    if (!B->consume()) {
      Complete = false;
      return;
    }
    if (FieldStacks.depth(F) >= MaxFieldDepth) {
      ++DepthPrunes; // see the S1 load case for the rationale
      continue;
    }
    push(E.Dst, FieldStacks.push(F, encodeStoreField(E.Aux)),
         RsmState::S1);
  }
  // Lines 25-27.  value --store(g)--> v (v.g = value): v is the base of
  // a store matching the pending field g; the tracked alias's field g
  // holds whatever "value" held — continue backwards (S1) from it.
  // Only a field pushed by a load-bar (an unresolved ".g read") may be
  // popped by a store-bar; see encodeLoadBarField's comment.
  if (!F.isEmpty()) {
    uint32_t Top = FieldStacks.peek(F);
    for (EdgeId EId : Graph.inEdgesOfKind(V, EdgeKind::Store)) {
      const Edge &E = Graph.edge(EId);
      if (encodeLoadBarField(E.Aux) != Top)
        continue;
      if (!B->consume()) {
        Complete = false;
        return;
      }
      push(E.Src, FieldStacks.pop(F), RsmState::S1);
    }
  }
  if (B->exceeded()) {
    Complete = false;
    return;
  }
  // Lines 28-29: a global edge flows out of v — boundary state.
  if (Nd.HasGlobalOut)
    Out->Tuples.push_back(PptaTuple{V, F, RsmState::S2});
}

//===----------------------------------------------------------------------===//
// Algorithm 4: the DYNSUM worklist
//===----------------------------------------------------------------------===//

PptaSummary DynSumAnalysis::internSummary(const PortableSummary &P,
                                          StackId Hint,
                                          const std::vector<uint32_t> &HintElems) {
  PptaSummary Out;
  Out.Objects.reserve(P.Objects.size());
  for (ir::AllocId A : P.Objects)
    Out.Objects.push_back(A);
  Out.Tuples.reserve(P.Tuples.size());
  const uint32_t *Run = P.FieldData.data();
  for (const PortableSummary::Tuple &T : P.Tuples) {
    // Longest common prefix with the hint: recovered by popping the
    // hint down (O(1) each) rather than hash-consing pushes up.
    size_t K = 0;
    size_t Limit = std::min(size_t(T.FieldsLen), HintElems.size());
    while (K < Limit && Run[K] == HintElems[K])
      ++K;
    StackId F = Hint;
    for (size_t I = HintElems.size(); I > K; --I)
      F = FieldStacks.pop(F);
    for (uint32_t I = K; I < T.FieldsLen; ++I)
      F = FieldStacks.push(F, Run[I]);
    Run += T.FieldsLen;
    Out.Tuples.push_back(PptaTuple{T.Node, F, T.State});
  }
  return Out;
}

PortableSummary DynSumAnalysis::exportSummary(const PptaSummary &S) const {
  PortableSummary Out;
  Out.Objects.assign(S.Objects.begin(), S.Objects.end());
  Out.Tuples.reserve(S.Tuples.size());
  for (const PptaTuple &T : S.Tuples) {
    uint32_t Depth = FieldStacks.depth(T.Fields);
    Out.Tuples.push_back(PortableSummary::Tuple{T.Node, T.State, Depth});
    // Append the run bottom-to-top by writing backwards from the top.
    size_t Start = Out.FieldData.size();
    Out.FieldData.resize(Start + Depth);
    StackId Cur = T.Fields;
    for (size_t I = Depth; I > 0; --I) {
      Out.FieldData[Start + I - 1] = FieldStacks.peek(Cur);
      Cur = FieldStacks.pop(Cur);
    }
  }
  return Out;
}

const PptaSummary *DynSumAnalysis::getSummary(NodeId U, StackId F,
                                              RsmState S, Budget &B,
                                              bool &UsedCache) {
  UsedCache = false;
  uint64_t Key = packSummaryKey(U, F, S);

  // Section 4.3: skip the PPTA when u has no local edges — the node
  // itself is the only boundary state.
  if (!Graph.node(U).HasLocalEdge) {
    auto It = TrivialSummaries.find(Key);
    if (It != TrivialSummaries.end())
      return &It->second;
    PptaSummary Trivial;
    Trivial.Tuples.push_back(PptaTuple{U, F, S});
    return &TrivialSummaries.emplace(Key, std::move(Trivial)).first->second;
  }

  // Spelled-out field stack for the exchange round trip, built into
  // member scratch whose capacity persists across fetches: a batch
  // issues one store round trip per cold summary, and the fetch side
  // must stay allocation-free for disk-tier serving to undercut
  // recomputation.
  if (Opts.EnableCache) {
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      UsedCache = true;
      Stats.add("dynsum.cacheHits");
      return &It->second;
    }
    // Local miss: another instance on the same PAG may have published
    // this summary already (summaries are context-free, hence shareable).
    if (Exchange) {
      FieldStacks.elementsInto(F, FetchFields);
      if (Exchange->fetch(U, FetchFields, S, FetchScratch)) {
        UsedCache = true;
        Stats.add("dynsum.sharedHits");
        return &Cache
                    .emplace(Key, internSummary(FetchScratch, F, FetchFields))
                    .first->second;
      }
    }
  }

  // Lines 8-9: compute and (when complete) memoize the summary.  The
  // summary is shrunk on publish: it lives in a long-lived cache, and
  // growth slack across hundreds of thousands of entries adds up.
  // A summary computation is the query's coarsest unit of work, so
  // poll the deadline here (off the strided path) BEFORE starting one —
  // an already-expired query must not pay for one more summary.  The
  // fault point models a slow/failing summary in the chaos tests, so it
  // sits after the poll, where the real computation starts.
  if (!B.poll())
    return nullptr;
  support::faultPoint("query.summary");
  PptaSummary Fresh;
  bool IsComplete = Engine.compute(U, F, S, B, Fresh);
  Stats.add("dynsum.pptaComputed");
  if (!IsComplete)
    return nullptr;
  Fresh.shrinkToFit();
  if (Opts.EnableCache && Exchange) {
    // The store takes ownership, so the scratch is copied at the call —
    // one allocation per published (cold) summary, none per fetched one.
    FieldStacks.elementsInto(F, FetchFields);
    Exchange->publish(U, FetchFields, S, exportSummary(Fresh));
  }
  if (!Opts.EnableCache) {
    // Uncached mode (ablation): stash in the trivial map keyed the same
    // way so the pointer stays valid for this query.
    return &TrivialSummaries
                .insert_or_assign(Key, std::move(Fresh))
                .first->second;
  }
  return &Cache.emplace(Key, std::move(Fresh)).first->second;
}

QueryResult DynSumAnalysis::query(NodeId V,
                                  const ClientPredicate &SatisfyClient) {
  (void)SatisfyClient; // DYNSUM computes full precision directly
  assert(!Graph.isObject(V) && "points-to query on an object node");

  Budget B(Opts.BudgetPerQuery, Opts.Deadline);
  QueryResult Result;

  // Per-query scratch is reused across queries: the flat result set and
  // the worklist stack keep their storage, the de-dup map its buckets.
  QueryPts.clear();
  Enqueued.clear();
  Work.clear();
  if (Work.capacity() == 0)
    Work.reserve(std::min<size_t>(Graph.numNodes() + 1, 4096));

  auto Propagate = [&](NodeId N, StackId F, RsmState S, StackId C) {
    if (Enqueued.insert(packSummaryKey(N, F, S), C.Id))
      Work.push_back(WorkItem{N, F, S, C});
  };

  // Line 2: initial state (v, empty fields, S1, empty context).
  Propagate(V, StackPool::empty(), RsmState::S1, StackPool::empty());

  while (!Work.empty() && !B.exceeded()) {
    WorkItem It = Work.back();
    Work.pop_back();
    Stats.add("dynsum.worklistPops");

    bool UsedCache = false;
    const PptaSummary *Summary =
        getSummary(It.Node, It.Fields, It.State, B, UsedCache);
    if (Summary == nullptr) {
      Result.BudgetExceeded = true;
      break;
    }

    // Lines 10-11: objects found by the summary materialize under the
    // *current* context — this is exactly why summaries are reusable
    // across contexts.  QueryPts only dedups; targets are collected as
    // they first appear, so a query's cost tracks its own result size.
    for (ir::AllocId A : Summary->Objects)
      if (QueryPts.insert(packPair(A, It.Ctx.Id)))
        Result.Targets.push_back(PtsTarget{A, It.Ctx});

    // Lines 12-28: cross global edges from every boundary tuple, one
    // kind-partitioned CSR span per rule.
    for (const PptaTuple &T : Summary->Tuples) {
      if (T.State == RsmState::S1) {
        for (EdgeId EId : Graph.inEdgesOfKind(T.Node, EdgeKind::Exit)) {
          // Lines 14-15: backwards into the callee pushes the site.
          const Edge &E = Graph.edge(EId);
          if (!B.consume())
            break;
          Propagate(E.Src, T.Fields, RsmState::S1,
                    E.ContextFree ? It.Ctx : Contexts.push(It.Ctx, E.Aux));
        }
        for (EdgeId EId : Graph.inEdgesOfKind(T.Node, EdgeKind::Entry)) {
          // Lines 16-18: backwards to the caller pops on match or
          // from the unbalanced empty stack.
          const Edge &E = Graph.edge(EId);
          if (E.ContextFree) {
            if (B.consume())
              Propagate(E.Src, T.Fields, RsmState::S1, It.Ctx);
          } else if (It.Ctx.isEmpty()) {
            if (B.consume())
              Propagate(E.Src, T.Fields, RsmState::S1, StackPool::empty());
          } else if (Contexts.peek(It.Ctx) == E.Aux) {
            if (B.consume())
              Propagate(E.Src, T.Fields, RsmState::S1,
                        Contexts.pop(It.Ctx));
          }
        }
        for (EdgeId EId :
             Graph.inEdgesOfKind(T.Node, EdgeKind::AssignGlobal)) {
          // Lines 19-20: globals clear the context.
          if (B.consume())
            Propagate(Graph.edge(EId).Src, T.Fields, RsmState::S1,
                      StackPool::empty());
        }
      } else {
        for (EdgeId EId : Graph.outEdgesOfKind(T.Node, EdgeKind::Exit)) {
          // Lines 22-24: forwards to the caller pops on match.
          const Edge &E = Graph.edge(EId);
          if (E.ContextFree) {
            if (B.consume())
              Propagate(E.Dst, T.Fields, RsmState::S2, It.Ctx);
          } else if (It.Ctx.isEmpty()) {
            if (B.consume())
              Propagate(E.Dst, T.Fields, RsmState::S2, StackPool::empty());
          } else if (Contexts.peek(It.Ctx) == E.Aux) {
            if (B.consume())
              Propagate(E.Dst, T.Fields, RsmState::S2,
                        Contexts.pop(It.Ctx));
          }
        }
        for (EdgeId EId : Graph.outEdgesOfKind(T.Node, EdgeKind::Entry)) {
          // Lines 25-26: forwards into the callee pushes the site.
          const Edge &E = Graph.edge(EId);
          if (B.consume())
            Propagate(E.Dst, T.Fields, RsmState::S2,
                      E.ContextFree ? It.Ctx
                                    : Contexts.push(It.Ctx, E.Aux));
        }
        for (EdgeId EId :
             Graph.outEdgesOfKind(T.Node, EdgeKind::AssignGlobal)) {
          // Lines 27-28.
          if (B.consume())
            Propagate(Graph.edge(EId).Dst, T.Fields, RsmState::S2,
                      StackPool::empty());
        }
      }
      if (B.exceeded())
        break;
    }
  }

  if (B.exceeded())
    Result.BudgetExceeded = true;
  Result.Status = B.status();
  Result.Steps = B.used();
  Result.canonicalize();
  TrivialSummaries.clear(); // uncached-mode stash is per-query only
  return Result;
}

size_t DynSumAnalysis::cacheNodeStateCount() const {
  std::unordered_set<uint64_t> NodeStates;
  for (const auto &[Key, Summary] : Cache) {
    (void)Summary;
    // Strip the field-stack bits (33..63), keep node and state.
    NodeStates.insert(Key & 0x1ffffffffull);
  }
  return NodeStates.size();
}

void DynSumAnalysis::invalidateMethod(ir::MethodId M) {
  for (auto It = Cache.begin(); It != Cache.end();) {
    NodeId N = NodeId((It->first >> 1) & 0xffffffffu);
    if (Graph.node(N).Method == M)
      It = Cache.erase(It);
    else
      ++It;
  }
  for (auto It = TrivialSummaries.begin(); It != TrivialSummaries.end();) {
    NodeId N = NodeId((It->first >> 1) & 0xffffffffu);
    if (Graph.node(N).Method == M)
      It = TrivialSummaries.erase(It);
    else
      ++It;
  }
}

void DynSumAnalysis::clearTrivialMemo() { TrivialSummaries.clear(); }
