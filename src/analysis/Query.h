//===----------------------------------------------------------------------===//
///
/// \file
/// Shared query/result/budget types for all demand-driven analyses.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ANALYSIS_QUERY_H
#define DYNSUM_ANALYSIS_QUERY_H

#include "ir/Program.h"
#include "pag/PAG.h"
#include "support/InternedStack.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dynsum {
namespace analysis {

/// Per-query traversal budget, counted in PAG edge traversals exactly as
/// the paper's Section 5.2 (default limit 75,000 edges per query).  Once
/// exhausted, every later consume() fails and the analysis unwinds with
/// a conservative "budget exceeded" answer.
class Budget {
public:
  explicit Budget(uint64_t Limit) : Limit(Limit) {}

  /// Accounts one edge traversal; returns false when over budget.
  bool consume() {
    if (Used >= Limit)
      return false;
    ++Used;
    return true;
  }

  bool exceeded() const { return Used >= Limit; }
  uint64_t used() const { return Used; }
  uint64_t limit() const { return Limit; }

private:
  uint64_t Limit;
  uint64_t Used = 0;
};

/// One context-tagged points-to target: (allocation site, context stack).
/// Contexts are StackPool ids local to the producing analysis instance;
/// cross-analysis comparisons project onto allocation sites.
struct PtsTarget {
  ir::AllocId Alloc = ir::kNone;
  StackId Context;

  friend bool operator==(const PtsTarget &A, const PtsTarget &B) {
    return A.Alloc == B.Alloc && A.Context == B.Context;
  }
  friend bool operator<(const PtsTarget &A, const PtsTarget &B) {
    if (A.Alloc != B.Alloc)
      return A.Alloc < B.Alloc;
    return A.Context.Id < B.Context.Id;
  }
};

/// The answer to one demand query.
struct QueryResult {
  /// Sorted, deduplicated context-tagged targets.
  std::vector<PtsTarget> Targets;
  /// True when the traversal budget ran out: Targets is then a partial
  /// under-approximation and clients must treat the answer as "unknown".
  bool BudgetExceeded = false;
  /// Edge traversals spent answering this query (the paper's
  /// machine-independent cost unit).
  uint64_t Steps = 0;

  /// Sorts and dedups Targets; analyses call this before returning.
  void canonicalize() {
    std::sort(Targets.begin(), Targets.end());
    Targets.erase(std::unique(Targets.begin(), Targets.end()),
                  Targets.end());
  }

  /// Context-insensitive projection: the distinct allocation sites.
  std::vector<ir::AllocId> allocSites() const {
    std::vector<ir::AllocId> Out;
    Out.reserve(Targets.size());
    for (const PtsTarget &T : Targets)
      Out.push_back(T.Alloc);
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }

  /// True when some target is allocation site \p A.
  bool contains(ir::AllocId A) const {
    for (const PtsTarget &T : Targets)
      if (T.Alloc == A)
        return true;
    return false;
  }
};

/// Tunables shared by the demand-driven analyses.
struct AnalysisOptions {
  /// Edge-traversal budget per points-to query (75,000 in the paper).
  uint64_t BudgetPerQuery = 75000;
  /// Abort a query whose pending-field stack exceeds this depth; keeps
  /// PPTA finite on field-recursive structures within one budget unit.
  uint32_t MaxFieldDepth = 64;
  /// REFINEPTS: bound on refinement iterations (Algorithm 2's loop).
  uint32_t MaxRefineIterations = 16;
  /// REFINEPTS: enable its per-query (v, context) memoization.
  /// DYNSUM: enable the cross-query summary cache.
  bool EnableCache = true;
};

} // namespace analysis
} // namespace dynsum

#endif // DYNSUM_ANALYSIS_QUERY_H
