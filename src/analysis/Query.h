//===----------------------------------------------------------------------===//
///
/// \file
/// Shared query/result/budget types for all demand-driven analyses.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ANALYSIS_QUERY_H
#define DYNSUM_ANALYSIS_QUERY_H

#include "ir/Program.h"
#include "pag/PAG.h"
#include "support/Deadline.h"
#include "support/InternedStack.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dynsum {
namespace analysis {

/// How a query ended.  Anything other than Ok means Targets is a
/// partial under-approximation and clients must treat the answer as
/// "unknown" — the same sound-fallback contract the step budget has
/// always had, extended to wall-clock and admission-control failures.
enum class QueryStatus : uint8_t {
  Ok,         ///< completed (possibly by exhausting the step budget)
  Timeout,    ///< the deadline expired mid-traversal
  Cancelled,  ///< the caller's CancelToken fired mid-traversal
  Overloaded, ///< shed by admission control before running at all
};

inline const char *toString(QueryStatus S) {
  switch (S) {
  case QueryStatus::Ok:
    return "ok";
  case QueryStatus::Timeout:
    return "timeout";
  case QueryStatus::Cancelled:
    return "cancelled";
  case QueryStatus::Overloaded:
    return "overloaded";
  }
  return "?";
}

/// Per-query traversal budget, counted in PAG edge traversals exactly as
/// the paper's Section 5.2 (default limit 75,000 edges per query).  Once
/// exhausted, every later consume() fails and the analysis unwinds with
/// a conservative "budget exceeded" answer.
///
/// The budget also carries the query's deadline/cancel token: the
/// wall clock is polled every kDeadlineStride traversals (and at
/// explicit poll() points before blocking work), so an expired
/// deadline trips the same exceeded() unwind path the step budget
/// uses.  An unlimited deadline costs one dead branch per consume.
class Budget {
public:
  explicit Budget(uint64_t Limit) : Limit(Limit) {}
  Budget(uint64_t Limit, const support::Deadline &D)
      : Limit(Limit), DL(D), CheckDeadline(D.hasLimit()) {}

  /// Accounts one edge traversal; returns false when over budget,
  /// past the deadline, or cancelled.
  bool consume() {
    if (exceeded())
      return false;
    ++Used;
    if (CheckDeadline && (Used & (kDeadlineStride - 1)) == 0)
      pollDeadline();
    return Interrupt == QueryStatus::Ok;
  }

  /// Forces an immediate deadline/cancel check, off the strided path;
  /// analyses call it before starting a coarse unit of work (e.g. one
  /// summary computation).  Returns false when the query must unwind.
  bool poll() {
    if (CheckDeadline)
      pollDeadline();
    return !exceeded();
  }

  bool exceeded() const {
    return Used >= Limit || Interrupt != QueryStatus::Ok;
  }

  /// Why the traversal was interrupted: Ok covers both "not exceeded"
  /// and "step budget ran out" (the classic sound fallback); Timeout /
  /// Cancelled mark wall-clock interruptions.
  QueryStatus status() const { return Interrupt; }

  uint64_t used() const { return Used; }
  uint64_t limit() const { return Limit; }

private:
  static constexpr uint64_t kDeadlineStride = 256;

  void pollDeadline() {
    if (DL.cancelled())
      Interrupt = QueryStatus::Cancelled;
    else if (DL.expired())
      Interrupt = QueryStatus::Timeout;
  }

  uint64_t Limit;
  uint64_t Used = 0;
  support::Deadline DL;
  bool CheckDeadline = false;
  QueryStatus Interrupt = QueryStatus::Ok;
};

/// One context-tagged points-to target: (allocation site, context stack).
/// Contexts are StackPool ids local to the producing analysis instance;
/// cross-analysis comparisons project onto allocation sites.
struct PtsTarget {
  ir::AllocId Alloc = ir::kNone;
  StackId Context;

  friend bool operator==(const PtsTarget &A, const PtsTarget &B) {
    return A.Alloc == B.Alloc && A.Context == B.Context;
  }
  friend bool operator<(const PtsTarget &A, const PtsTarget &B) {
    if (A.Alloc != B.Alloc)
      return A.Alloc < B.Alloc;
    return A.Context.Id < B.Context.Id;
  }
};

/// The answer to one demand query.
struct QueryResult {
  /// Sorted, deduplicated context-tagged targets.
  std::vector<PtsTarget> Targets;
  /// True when the traversal budget ran out (or the query was
  /// interrupted — see Status): Targets is then a partial
  /// under-approximation and clients must treat the answer as "unknown".
  bool BudgetExceeded = false;
  /// How the query ended; anything but Ok implies BudgetExceeded.
  QueryStatus Status = QueryStatus::Ok;
  /// Edge traversals spent answering this query (the paper's
  /// machine-independent cost unit).
  uint64_t Steps = 0;

  /// Sorts and dedups Targets; analyses call this before returning.
  void canonicalize() {
    std::sort(Targets.begin(), Targets.end());
    Targets.erase(std::unique(Targets.begin(), Targets.end()),
                  Targets.end());
  }

  /// Context-insensitive projection: the distinct allocation sites.
  std::vector<ir::AllocId> allocSites() const {
    std::vector<ir::AllocId> Out;
    Out.reserve(Targets.size());
    for (const PtsTarget &T : Targets)
      Out.push_back(T.Alloc);
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }

  /// True when some target is allocation site \p A.
  bool contains(ir::AllocId A) const {
    for (const PtsTarget &T : Targets)
      if (T.Alloc == A)
        return true;
    return false;
  }
};

/// Tunables shared by the demand-driven analyses.
struct AnalysisOptions {
  /// Edge-traversal budget per points-to query (75,000 in the paper).
  uint64_t BudgetPerQuery = 75000;
  /// Abort a query whose pending-field stack exceeds this depth; keeps
  /// PPTA finite on field-recursive structures within one budget unit.
  uint32_t MaxFieldDepth = 64;
  /// REFINEPTS: bound on refinement iterations (Algorithm 2's loop).
  uint32_t MaxRefineIterations = 16;
  /// REFINEPTS: enable its per-query (v, context) memoization.
  /// DYNSUM: enable the cross-query summary cache.
  bool EnableCache = true;
  /// Wall-clock deadline / cancellation for each query; unlimited by
  /// default.  Trips the same sound-fallback unwind as the step budget
  /// and is reported via QueryResult::Status.
  support::Deadline Deadline;
};

} // namespace analysis
} // namespace dynsum

#endif // DYNSUM_ANALYSIS_QUERY_H
