//===----------------------------------------------------------------------===//
///
/// \file
/// Andersen solver implementation.
///
/// The solver works on an extended node space: every PAG variable node,
/// plus one node per (object, field) pair touched by a load or store.
/// Assign-like PAG edges (assign, assignglobal, entry, exit) become
/// static copy edges.  Loads and stores add dynamic copy edges as
/// objects reach base variables, the textbook worklist formulation.
///
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"

#include "support/Hashing.h"

#include <cassert>
#include <deque>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::pag;

AndersenAnalysis::AndersenAnalysis(const PAG &G)
    : Graph(G), NumAllocs(G.program().allocs().size()) {}

uint32_t AndersenAnalysis::fieldNode(ir::AllocId A, ir::FieldId F) {
  uint64_t Key = packPair(A, F);
  auto It = FieldNodes.find(Key);
  if (It != FieldNodes.end())
    return It->second;
  uint32_t Id = uint32_t(Pts.size());
  Pts.emplace_back(NumAllocs);
  CopySucc.emplace_back();
  FieldNodes.emplace(Key, Id);
  FieldNodeKeys.emplace_back(A, F);
  return Id;
}

bool AndersenAnalysis::addCopy(uint32_t Src, uint32_t Dst) {
  // Linear duplicate check is fine: fan-outs stay small and this runs
  // once per (object, access) discovery.
  for (uint32_t Existing : CopySucc[Src])
    if (Existing == Dst)
      return false;
  CopySucc[Src].push_back(Dst);
  return true;
}

void AndersenAnalysis::solve() {
  if (Solved)
    return;
  Solved = true;

  size_t NumVars = Graph.numNodes();
  Pts.assign(NumVars, BitVector(NumAllocs));
  CopySucc.assign(NumVars, {});

  // Split the PAG into the solver's edge classes once.
  struct Access {
    uint32_t Base;
    uint32_t Other; // load destination / store source
    ir::FieldId F;
  };
  std::vector<std::vector<Access>> LoadsAt(NumVars), StoresAt(NumVars);

  // FIFO worklist: the solver is a monotone fixpoint, so any order is
  // correct, but breadth-first propagation batches set-union work and
  // converges with ~3x fewer propagations than LIFO on the generated
  // workloads.  (This is a whole-program pre-analysis, not the query
  // hot path, so the deque's allocation pattern is acceptable.)
  std::deque<uint32_t> Worklist;
  BitVector InList(NumVars);
  auto Enqueue = [&](uint32_t N) {
    if (N < NumVars) {
      if (!InList.set(N))
        return;
    }
    Worklist.push_back(N);
  };

  for (EdgeId Id = 0; Id < Graph.numEdgeSlots(); ++Id) {
    if (!Graph.edgeAlive(Id))
      continue;
    const Edge &E = Graph.edge(Id);
    switch (E.Kind) {
    case EdgeKind::New:
      Pts[E.Dst].set(Graph.allocOf(E.Src));
      Enqueue(E.Dst);
      break;
    case EdgeKind::Assign:
    case EdgeKind::AssignGlobal:
    case EdgeKind::Entry:
    case EdgeKind::Exit:
      addCopy(E.Src, E.Dst);
      break;
    case EdgeKind::Load:
      // base --load(f)--> dst
      LoadsAt[E.Src].push_back(Access{E.Src, E.Dst, E.Aux});
      break;
    case EdgeKind::Store:
      // src --store(f)--> base
      StoresAt[E.Dst].push_back(Access{E.Dst, E.Src, E.Aux});
      break;
    }
  }

  // InList is sized for variable nodes only; field nodes always enqueue.
  while (!Worklist.empty()) {
    uint32_t N = Worklist.front();
    Worklist.pop_front();
    if (N < NumVars)
      InList.reset(N);
    ++Propagations;

    // Discover dynamic copies induced by field accesses on N's objects.
    if (N < NumVars) {
      for (size_t A = 0; A < NumAllocs; ++A) {
        if (!Pts[N].test(A))
          continue;
        for (const Access &L : LoadsAt[N]) {
          uint32_t FN = fieldNode(ir::AllocId(A), L.F);
          if (addCopy(FN, L.Other))
            Enqueue(FN);
        }
        for (const Access &S : StoresAt[N]) {
          uint32_t FN = fieldNode(ir::AllocId(A), S.F);
          if (addCopy(S.Other, FN))
            Enqueue(S.Other);
        }
      }
    }

    // Propagate N's set over its copy successors.
    for (uint32_t Succ : CopySucc[N]) {
      if (Pts[Succ].size() != Pts[N].size())
        Pts[Succ].resize(NumAllocs); // defensive; sizes always match
      if (Pts[Succ].orInPlace(Pts[N]))
        Enqueue(Succ);
    }
  }
}

std::vector<ir::AllocId> AndersenAnalysis::allocSites(NodeId V) const {
  assert(Solved && "query before solve()");
  std::vector<ir::AllocId> Out;
  for (size_t A = 0; A < NumAllocs; ++A)
    if (Pts[V].test(A))
      Out.push_back(ir::AllocId(A));
  return Out;
}

bool AndersenAnalysis::pointsTo(NodeId V, ir::AllocId A) const {
  assert(Solved && "query before solve()");
  return Pts[V].test(A);
}

std::vector<ir::AllocId>
AndersenAnalysis::fieldAllocSites(ir::AllocId A, ir::FieldId F) const {
  assert(Solved && "query before solve()");
  auto It = FieldNodes.find(packPair(A, F));
  std::vector<ir::AllocId> Out;
  if (It == FieldNodes.end())
    return Out;
  for (size_t O = 0; O < NumAllocs; ++O)
    if (Pts[It->second].test(O))
      Out.push_back(ir::AllocId(O));
  return Out;
}

std::vector<ir::MethodId>
AndersenTargetResolver::resolve(const ir::Program &P, ir::MethodId Caller,
                                const ir::Statement &S) const {
  assert(S.Kind == ir::StmtKind::Call && S.IsVirtual && "not a virtual call");
  std::vector<ir::MethodId> Targets;
  NodeId Recv = Graph.nodeOfVar(S.Base);
  for (ir::AllocId A : Andersen.allocSites(Recv)) {
    const ir::AllocSite &Site = P.alloc(A);
    if (Site.IsNull)
      continue; // calls on null do not dispatch
    ir::MethodId M = P.dispatch(Site.Type, S.VirtualName);
    if (M != ir::kNone &&
        std::find(Targets.begin(), Targets.end(), M) == Targets.end())
      Targets.push_back(M);
  }
  if (Targets.empty()) {
    // Receiver has no points-to info (dead code or library stubs); fall
    // back to CHA so the PAG stays sound.
    return TargetResolver::resolve(P, Caller, S);
  }
  std::sort(Targets.begin(), Targets.end());
  return Targets;
}

BuiltPAG dynsum::analysis::buildPAGWithAndersenCallGraph(const ir::Program &P,
                                                         unsigned Rounds) {
  BuiltPAG Built = buildPAG(P); // CHA first
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    AndersenAnalysis Andersen(*Built.Graph);
    Andersen.solve();
    AndersenTargetResolver Resolver(Andersen, *Built.Graph);
    BuiltPAG Refined = buildPAG(P, &Resolver);
    bool Same = Refined.Graph->numEdges() == Built.Graph->numEdges();
    Built = std::move(Refined);
    if (Same)
      break; // call graph stabilized
  }
  return Built;
}
