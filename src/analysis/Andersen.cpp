//===----------------------------------------------------------------------===//
///
/// \file
/// Andersen solver implementation.
///
/// The solver works on an extended node space: every PAG variable node,
/// plus one node per (object, field) pair touched by a load or store.
/// Assign-like PAG edges (assign, assignglobal, entry, exit) become
/// static copy edges.  Loads and stores add dynamic copy edges as
/// objects reach base variables, the textbook worklist formulation.
///
/// Two solvers share that constraint system:
///
///  * solveSerial: the FIFO worklist of the seed, templated over the
///    points-to container (HybridPtsSet by default, BitVector for the
///    Dense A/B baseline).
///
///  * solveParallel: bulk-synchronous rounds over a frontier of nodes
///    with un-propagated deltas.  Each round runs three phases under
///    the same two-rule discipline as the parallel commit pipeline
///    (readers never see concurrent writes; all shared mutation is
///    either owner-sharded or single-writer):
///
///      1. Stage (parallel, read-only): frontier workers stage
///         (succ, pred) propagation pairs into per-worker buckets keyed
///         by the successor's owner shard (owner = node % threads), and
///         stage (object, field, var) access discoveries per worker.
///         Delta sets and adjacency are frozen.
///      2. Propagate (parallel, owner-sharded): worker S drains every
///         bucket destined for shard S, unioning Delta[pred] into
///         Pts[succ] and recording newly added elements in
///         NextDelta[succ].  Only the owner writes a node's sets.
///      3. Apply (serial, single-writer): discovery tuples are sorted
///         and deduplicated, field nodes are created in sorted
///         (object, field) order — deterministic ids — and new copy
///         edges flush the full source set into their destination.
///
///    Every phase's output is a set union or a sorted list, so the
///    round is deterministic and the fixpoint — unique for a monotone
///    constraint system — is bit-identical to the serial solve.
///
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"

#include "support/ExecContext.h"
#include "support/Hashing.h"
#include "support/Parallel.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <tuple>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::pag;

namespace {

/// One load or store site, keyed by its base variable.
struct Access {
  uint32_t Base;
  uint32_t Other; // load destination / store source
  ir::FieldId F;
};

/// Splits the PAG into the solver's edge classes.  \p OnSeed(Dst) fires
/// after each New-edge seed lands in its points-to set.
template <class SetVec, class SeedFn, class CopyFn>
void classifyEdges(const PAG &Graph, SetVec &Pts,
                   std::vector<std::vector<Access>> &LoadsAt,
                   std::vector<std::vector<Access>> &StoresAt, SeedFn OnSeed,
                   CopyFn AddCopy) {
  for (EdgeId Id = 0; Id < Graph.numEdgeSlots(); ++Id) {
    if (!Graph.edgeAlive(Id))
      continue;
    const Edge &E = Graph.edge(Id);
    switch (E.Kind) {
    case EdgeKind::New:
      Pts[E.Dst].set(Graph.allocOf(E.Src));
      OnSeed(E.Dst);
      break;
    case EdgeKind::Assign:
    case EdgeKind::AssignGlobal:
    case EdgeKind::Entry:
    case EdgeKind::Exit:
      AddCopy(E.Src, E.Dst);
      break;
    case EdgeKind::Load:
      // base --load(f)--> dst
      LoadsAt[E.Src].push_back(Access{E.Src, E.Dst, E.Aux});
      break;
    case EdgeKind::Store:
      // src --store(f)--> base
      StoresAt[E.Dst].push_back(Access{E.Dst, E.Src, E.Aux});
      break;
    }
  }
}

/// Member iteration for the serial discovery loop.  The dense baseline
/// keeps the seed's alloc-universe probe scan; the hybrid set walks its
/// members directly — O(|set|) instead of O(universe), the sparse
/// representation's main win.  Collected into a scratch vector because
/// the caller creates field nodes (growing the set vector) mid-loop.
void collectMembers(const BitVector &S, size_t Universe,
                    std::vector<uint32_t> &Out) {
  for (size_t A = 0; A < Universe; ++A)
    if (S.test(A))
      Out.push_back(uint32_t(A));
}
void collectMembers(const HybridPtsSet &S, size_t,
                    std::vector<uint32_t> &Out) {
  S.forEach([&](uint32_t A) { Out.push_back(A); });
}

} // namespace

AndersenAnalysis::AndersenAnalysis(const PAG &G, unsigned Threads, PtsRep Rep)
    : Graph(G), NumAllocs(G.program().allocs().size()),
      NumThreads(clampThreads(Threads)), Rep(Rep) {}

bool AndersenAnalysis::addCopy(uint32_t Src, uint32_t Dst) {
  if (!CopyEdges.insert(Src, Dst))
    return false;
  CopySucc[Src].push_back(Dst);
  return true;
}

void AndersenAnalysis::solve() {
  if (Solved)
    return;
  Solved = true;
  if (Rep == PtsRep::Dense)
    solveSerial(DensePts); // Dense is the serial A/B baseline
  else if (NumThreads > 1)
    solveParallel();
  else
    solveSerial(Pts);
}

template <class SetVec> void AndersenAnalysis::solveSerial(SetVec &P) {
  size_t NumVars = Graph.numNodes();
  P.assign(NumVars, typename SetVec::value_type(NumAllocs));
  CopySucc.assign(NumVars, {});
  CopyEdges.clear();

  std::vector<std::vector<Access>> LoadsAt(NumVars), StoresAt(NumVars);

  // FIFO worklist: the solver is a monotone fixpoint, so any order is
  // correct, but breadth-first propagation batches set-union work and
  // converges with ~3x fewer propagations than LIFO on the generated
  // workloads.  (This is a whole-program pre-analysis, not the query
  // hot path, so the deque's allocation pattern is acceptable.)
  std::deque<uint32_t> Worklist;
  BitVector InList(NumVars);
  std::vector<uint32_t> Members; // discovery scratch, reused per pop
  auto Enqueue = [&](uint32_t N) {
    if (N < NumVars) {
      if (!InList.set(N))
        return;
    }
    Worklist.push_back(N);
  };

  auto FieldNodeOf = [&](ir::AllocId A, ir::FieldId F) -> uint32_t {
    uint64_t Key = packPair(A, F);
    auto It = FieldNodes.find(Key);
    if (It != FieldNodes.end())
      return It->second;
    uint32_t Id = uint32_t(P.size());
    P.emplace_back(NumAllocs);
    CopySucc.emplace_back();
    FieldNodes.emplace(Key, Id);
    FieldNodeKeys.emplace_back(A, F);
    return Id;
  };

  classifyEdges(Graph, P, LoadsAt, StoresAt, Enqueue,
                [&](uint32_t Src, uint32_t Dst) { addCopy(Src, Dst); });

  // InList is sized for variable nodes only; field nodes always enqueue.
  while (!Worklist.empty()) {
    uint32_t N = Worklist.front();
    Worklist.pop_front();
    if (N < NumVars)
      InList.reset(N);
    ++Propagations;

    // Discover dynamic copies induced by field accesses on N's objects.
    if (N < NumVars && (!LoadsAt[N].empty() || !StoresAt[N].empty())) {
      Members.clear();
      collectMembers(P[N], NumAllocs, Members);
      for (uint32_t A : Members) {
        for (const Access &L : LoadsAt[N]) {
          uint32_t FN = FieldNodeOf(ir::AllocId(A), L.F);
          if (addCopy(FN, L.Other))
            Enqueue(FN);
        }
        for (const Access &S : StoresAt[N]) {
          uint32_t FN = FieldNodeOf(ir::AllocId(A), S.F);
          if (addCopy(S.Other, FN))
            Enqueue(S.Other);
        }
      }
    }

    // Propagate N's set over its copy successors.
    for (uint32_t Succ : CopySucc[N]) {
      if (P[Succ].size() != P[N].size())
        P[Succ].resize(NumAllocs); // defensive; sizes always match
      if (P[Succ].orInPlace(P[N]))
        Enqueue(Succ);
    }
  }
}

void AndersenAnalysis::solveParallel() {
  const size_t NumVars = Graph.numNodes();
  const unsigned T = NumThreads;
  Pts.assign(NumVars, HybridPtsSet(NumAllocs));
  CopySucc.assign(NumVars, {});
  CopyEdges.clear();

  std::vector<std::vector<Access>> LoadsAt(NumVars), StoresAt(NumVars);

  // Delta[N]: elements added to Pts[N] that N has not yet propagated;
  // frozen during the parallel phases of a round.  NextDelta[N]
  // accumulates this round's additions (written only by N's owner).
  // Plain vectors, not sets: an element is reported newly-set exactly
  // once per node, so deltas are duplicate-free by construction, and
  // set membership stays the job of Pts alone.
  std::vector<std::vector<uint32_t>> Delta(NumVars), NextDelta(NumVars);
  std::vector<uint8_t> Touched(NumVars, 0);
  std::vector<uint32_t> Frontier;

  auto MarkSeed = [&](uint32_t N) {
    if (!Touched[N]) {
      Touched[N] = 1;
      Frontier.push_back(N);
    }
  };
  classifyEdges(Graph, Pts, LoadsAt, StoresAt, MarkSeed,
                [&](uint32_t Src, uint32_t Dst) { addCopy(Src, Dst); });
  std::sort(Frontier.begin(), Frontier.end());
  for (uint32_t N : Frontier) {
    Touched[N] = 0;
    Pts[N].forEach( // initial delta = initial set
        [&](uint32_t A) { Delta[N].push_back(A); });
  }

  auto FieldNodeOf = [&](ir::AllocId A, ir::FieldId F) -> uint32_t {
    uint64_t Key = packPair(A, F);
    auto It = FieldNodes.find(Key);
    if (It != FieldNodes.end())
      return It->second;
    uint32_t Id = uint32_t(Pts.size());
    Pts.emplace_back(NumAllocs);
    Delta.emplace_back();
    NextDelta.emplace_back();
    Touched.push_back(0);
    CopySucc.emplace_back();
    FieldNodes.emplace(Key, Id);
    FieldNodeKeys.emplace_back(A, F);
    return Id;
  };

  /// A dynamic-copy discovery: object Alloc reached an accessed base.
  struct Disc {
    uint32_t Alloc;
    uint32_t Field;
    uint32_t Other;
    uint8_t IsLoad;

    bool operator<(const Disc &R) const {
      return std::tie(Alloc, Field, IsLoad, Other) <
             std::tie(R.Alloc, R.Field, R.IsLoad, R.Other);
    }
    bool operator==(const Disc &R) const {
      return Alloc == R.Alloc && Field == R.Field && Other == R.Other &&
             IsLoad == R.IsLoad;
    }
  };

  // Per-worker staging: PropStage[w][s] holds (succ, pred) pairs whose
  // successor is owned by shard s; DiscStage[w] holds discoveries.
  std::vector<std::vector<std::vector<std::pair<uint32_t, uint32_t>>>>
      PropStage(T);
  for (auto &Buckets : PropStage)
    Buckets.resize(T);
  std::vector<std::vector<Disc>> DiscStage(T);
  std::vector<std::vector<uint32_t>> ShardTouched(T);
  std::vector<Disc> AllDisc;

  // One persistent pool for every round: a solve runs hundreds of
  // rounds of two parallel phases each, so per-phase thread spawning
  // would dominate at this granularity.
  support::ExecContext Exec = support::ExecContext::pooled(T);

  while (!Frontier.empty()) {
    Propagations += Frontier.size();

    // Phase 1: stage.  Reads Delta/CopySucc/LoadsAt/StoresAt, writes
    // only this worker's buckets.
    parallelChunks(Frontier.size(), Exec, [&](size_t B, size_t E, unsigned W) {
      for (size_t I = B; I < E; ++I) {
        uint32_t N = Frontier[I];
        for (uint32_t Succ : CopySucc[N])
          PropStage[W][Succ % T].emplace_back(Succ, N);
        if (N < NumVars && (!LoadsAt[N].empty() || !StoresAt[N].empty())) {
          for (uint32_t A : Delta[N]) {
            for (const Access &L : LoadsAt[N])
              DiscStage[W].push_back(Disc{A, L.F, L.Other, 1});
            for (const Access &S : StoresAt[N])
              DiscStage[W].push_back(Disc{A, S.F, S.Other, 0});
          }
        }
      }
    });

    // Phase 2: propagate.  Worker of shard S is the only writer of
    // Pts/NextDelta/Touched for nodes owned by S.
    parallelChunks(T, Exec, [&](size_t B, size_t E, unsigned) {
      for (size_t S = B; S < E; ++S) {
        for (unsigned W = 0; W < T; ++W) {
          for (const auto &Pair : PropStage[W][S]) {
            uint32_t Succ = Pair.first, Pred = Pair.second;
            bool Changed = false;
            for (uint32_t A : Delta[Pred]) {
              if (Pts[Succ].set(A)) {
                NextDelta[Succ].push_back(A);
                Changed = true;
              }
            }
            if (Changed && !Touched[Succ]) {
              Touched[Succ] = 1;
              ShardTouched[S].push_back(Succ);
            }
          }
          PropStage[W][S].clear();
        }
      }
    });

    // Phase 3: apply (single writer).  Consumed deltas are cleared,
    // discoveries create field nodes and edges in sorted order, and a
    // new edge flushes its full source set (covering everything its
    // source drained from deltas in earlier rounds).
    //
    // Deltas RELEASE their storage rather than keeping capacity: over
    // hundreds of rounds nearly every node holds a delta at some
    // point, and retained capacities sum to the total fact count at
    // 4 bytes each — gigabytes at 10k methods — where the live deltas
    // of any one round are a tiny fraction of that.
    for (uint32_t N : Frontier)
      std::vector<uint32_t>().swap(Delta[N]);

    AllDisc.clear();
    for (auto &Stage : DiscStage) {
      AllDisc.insert(AllDisc.end(), Stage.begin(), Stage.end());
      Stage.clear();
    }
    std::sort(AllDisc.begin(), AllDisc.end());
    AllDisc.erase(std::unique(AllDisc.begin(), AllDisc.end()), AllDisc.end());

    std::vector<uint32_t> SerialTouched;
    for (const Disc &D : AllDisc) {
      uint32_t FN = FieldNodeOf(ir::AllocId(D.Alloc), ir::FieldId(D.Field));
      uint32_t Src = D.IsLoad ? FN : D.Other;
      uint32_t Dst = D.IsLoad ? D.Other : FN;
      if (!addCopy(Src, Dst))
        continue;
      bool Changed = Pts[Dst].orInPlace(
          Pts[Src], [&](uint32_t A) { NextDelta[Dst].push_back(A); });
      if (Changed && !Touched[Dst]) {
        Touched[Dst] = 1;
        SerialTouched.push_back(Dst);
      }
    }

    Frontier.clear();
    for (auto &List : ShardTouched) {
      Frontier.insert(Frontier.end(), List.begin(), List.end());
      List.clear();
    }
    Frontier.insert(Frontier.end(), SerialTouched.begin(), SerialTouched.end());
    std::sort(Frontier.begin(), Frontier.end());
    for (uint32_t N : Frontier) {
      Touched[N] = 0;
      std::swap(Delta[N], NextDelta[N]);
      std::vector<uint32_t>().swap(NextDelta[N]);
    }
  }
}

std::vector<ir::AllocId> AndersenAnalysis::allocSites(NodeId V) const {
  assert(Solved && "query before solve()");
  std::vector<ir::AllocId> Out;
  if (Rep == PtsRep::Dense) {
    for (size_t A = 0; A < NumAllocs; ++A)
      if (DensePts[V].test(A))
        Out.push_back(ir::AllocId(A));
  } else {
    Pts[V].forEach([&](uint32_t A) { Out.push_back(ir::AllocId(A)); });
  }
  return Out;
}

bool AndersenAnalysis::pointsTo(NodeId V, ir::AllocId A) const {
  assert(Solved && "query before solve()");
  return Rep == PtsRep::Dense ? DensePts[V].test(A) : Pts[V].test(A);
}

std::vector<ir::AllocId>
AndersenAnalysis::fieldAllocSites(ir::AllocId A, ir::FieldId F) const {
  assert(Solved && "query before solve()");
  auto It = FieldNodes.find(packPair(A, F));
  if (It == FieldNodes.end())
    return {};
  return allocSites(It->second);
}

std::vector<ir::MethodId>
AndersenTargetResolver::resolve(const ir::Program &P, ir::MethodId Caller,
                                const ir::Statement &S) const {
  assert(S.Kind == ir::StmtKind::Call && S.IsVirtual && "not a virtual call");
  std::vector<ir::MethodId> Targets;
  NodeId Recv = Graph.nodeOfVar(S.Base);
  for (ir::AllocId A : Andersen.allocSites(Recv)) {
    const ir::AllocSite &Site = P.alloc(A);
    if (Site.IsNull)
      continue; // calls on null do not dispatch
    ir::MethodId M = P.dispatch(Site.Type, S.VirtualName);
    if (M != ir::kNone &&
        std::find(Targets.begin(), Targets.end(), M) == Targets.end())
      Targets.push_back(M);
  }
  if (Targets.empty()) {
    // Receiver has no points-to info (dead code or library stubs); fall
    // back to CHA so the PAG stays sound.
    return TargetResolver::resolve(P, Caller, S);
  }
  std::sort(Targets.begin(), Targets.end());
  return Targets;
}

BuiltPAG dynsum::analysis::buildPAGWithAndersenCallGraph(const ir::Program &P,
                                                         unsigned Rounds,
                                                         unsigned Threads) {
  BuiltPAG Built = buildPAG(P); // CHA first
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    AndersenAnalysis Andersen(*Built.Graph, Threads);
    Andersen.solve();
    AndersenTargetResolver Resolver(Andersen, *Built.Graph);
    BuiltPAG Refined = buildPAG(P, &Resolver);
    bool Same = Refined.Graph->numEdges() == Built.Graph->numEdges();
    Built = std::move(Refined);
    if (Same)
      break; // call graph stabilized
  }
  return Built;
}
