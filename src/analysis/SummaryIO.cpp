//===----------------------------------------------------------------------===//
///
/// \file
/// Summary-cache serialization implementation.
///
//===----------------------------------------------------------------------===//

#include "analysis/SummaryIO.h"

#include "support/FaultInjection.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace dynsum;
using namespace dynsum::analysis;

static constexpr uint32_t kMagic = kSummaryFileMagic;
static constexpr uint32_t kVersion = kSummaryFileVersion;

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

uint64_t dynsum::analysis::programFingerprint(const ir::Program &P) {
  uint64_t H = 0xd59b8cf1a2b3c4d5ull;
  H = hashCombine(H, P.classes().size());
  for (const ir::ClassType &C : P.classes()) {
    H = hashCombine(H, C.Name.Id);
    H = hashCombine(H, C.Super);
  }
  H = hashCombine(H, P.fields().size());
  for (const ir::Field &F : P.fields())
    H = hashCombine(H, F.Name.Id);
  H = hashCombine(H, P.variables().size());
  for (const ir::Variable &V : P.variables()) {
    H = hashCombine(H, V.Name.Id);
    H = hashCombine(H, packPair(V.Owner, uint32_t(V.IsGlobal)));
  }
  H = hashCombine(H, P.allocs().size());
  for (const ir::AllocSite &A : P.allocs())
    H = hashCombine(H, packPair(A.Type, A.Owner));
  H = hashCombine(H, P.methods().size());
  for (const ir::Method &M : P.methods()) {
    H = hashCombine(H, M.Name.Id);
    H = hashCombine(H, packPair(M.Owner, uint32_t(M.Params.size())));
    for (ir::VarId V : M.Params)
      H = hashCombine(H, V);
    H = hashCombine(H, M.Stmts.size());
    for (const ir::Statement &S : M.Stmts) {
      H = hashCombine(H, packPair(uint32_t(S.Kind), S.Dst));
      H = hashCombine(H, packPair(S.Src, S.Base));
      H = hashCombine(H, packPair(S.FieldLabel, S.Type));
      H = hashCombine(H, packPair(S.Alloc, S.Call));
      H = hashCombine(H, packPair(S.Callee, S.VirtualName.Id));
      H = hashCombine(H, uint64_t(S.IsVirtual));
      for (ir::VarId V : S.Args)
        H = hashCombine(H, V);
    }
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Little-endian buffer primitives
//===----------------------------------------------------------------------===//

namespace {

void put32(std::string &Buf, uint32_t V) {
  char Bytes[4] = {char(V), char(V >> 8), char(V >> 16), char(V >> 24)};
  Buf.append(Bytes, 4);
}

void put64(std::string &Buf, uint64_t V) {
  put32(Buf, uint32_t(V));
  put32(Buf, uint32_t(V >> 32));
}

/// FNV-1a over a byte range: the per-section checksum.  Not
/// cryptographic — it guards against torn writes and bit rot, not
/// adversaries.
uint64_t fnv64(std::string_view Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : Bytes) {
    H ^= uint8_t(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Bounds-checked little-endian reader over the input buffer.
class Reader {
public:
  explicit Reader(std::string_view Data) : Data(Data) {}

  bool read32(uint32_t &V) {
    if (Pos + 4 > Data.size())
      return false;
    V = uint32_t(uint8_t(Data[Pos])) | uint32_t(uint8_t(Data[Pos + 1])) << 8 |
        uint32_t(uint8_t(Data[Pos + 2])) << 16 |
        uint32_t(uint8_t(Data[Pos + 3])) << 24;
    Pos += 4;
    return true;
  }

  bool read64(uint64_t &V) {
    uint32_t Lo = 0, Hi = 0;
    if (!read32(Lo) || !read32(Hi))
      return false;
    V = uint64_t(Hi) << 32 | Lo;
    return true;
  }

  /// Decodes the next \p N u32s into \p Out with a single bounds
  /// check; the serving path reads whole field runs through this
  /// (per-element read32 calls pay a branch per element, and the plain
  /// byte-assembly loop below vectorizes).
  bool read32Run(uint32_t *Out, size_t N) {
    if (N > remaining() / 4)
      return false;
    const char *P = Data.data() + Pos;
    for (size_t I = 0; I < N; ++I, P += 4)
      Out[I] = uint32_t(uint8_t(P[0])) | uint32_t(uint8_t(P[1])) << 8 |
               uint32_t(uint8_t(P[2])) << 16 | uint32_t(uint8_t(P[3])) << 24;
    Pos += N * 4;
    return true;
  }

  /// Consumes the next \p N u32s iff they equal \p Vals element-wise;
  /// on a short buffer or any mismatch nothing is consumed and false
  /// is returned (callers that must distinguish the two check
  /// remaining() first).
  bool match32Run(const uint32_t *Vals, size_t N) {
    if (N > remaining() / 4)
      return false;
    const char *P = Data.data() + Pos;
    for (size_t I = 0; I < N; ++I, P += 4) {
      uint32_t E = uint32_t(uint8_t(P[0])) | uint32_t(uint8_t(P[1])) << 8 |
                   uint32_t(uint8_t(P[2])) << 16 | uint32_t(uint8_t(P[3])) << 24;
      if (E != Vals[I])
        return false;
    }
    Pos += N * 4;
    return true;
  }

  /// Takes the next \p Len bytes as a sub-view; false when fewer
  /// remain.
  bool readBytes(size_t Len, std::string_view &Out) {
    if (Pos + Len > Data.size())
      return false;
    Out = Data.substr(Pos, Len);
    Pos += Len;
    return true;
  }

  size_t remaining() const { return Data.size() - Pos; }
  bool atEnd() const { return Pos == Data.size(); }

private:
  std::string_view Data;
  size_t Pos = 0;
};

/// On-disk node references are canonical — VarId for variable nodes,
/// numVars + AllocId for object nodes — because in-memory numbering
/// depends on the graph's delta-build history while the canonical form
/// depends only on the (fingerprinted) program.
uint32_t canonicalNode(const pag::PAG &G, pag::NodeId Node) {
  const pag::Node &N = G.node(Node);
  if (N.Kind == pag::NodeKind::Object)
    return uint32_t(G.program().variables().size()) + N.IrId;
  return N.IrId;
}

/// Resolves a canonical reference against \p G; false when out of
/// range.
bool resolveCanonicalNode(const pag::PAG &G, uint32_t Canonical,
                          pag::NodeId &Node) {
  size_t NumVars = G.program().variables().size();
  size_t NumAllocs = G.program().allocs().size();
  if (Canonical < NumVars) {
    Node = G.nodeOfVar(Canonical);
    return true;
  }
  if (Canonical - NumVars < NumAllocs) {
    Node = G.nodeOfAlloc(uint32_t(Canonical - NumVars));
    return true;
  }
  return false;
}

/// Serializes one (node, stack, state) triple with the stack expanded
/// and the node canonicalized.
void putTriple(std::string &Buf, const pag::PAG &G, const StackPool &Stacks,
               pag::NodeId Node, StackId Fields, RsmState S) {
  put32(Buf, canonicalNode(G, Node));
  put32(Buf, uint32_t(S));
  std::vector<uint32_t> Elems = Stacks.elements(Fields);
  put32(Buf, uint32_t(Elems.size()));
  for (uint32_t E : Elems)
    put32(Buf, E);
}

/// Reads a triple back, re-interning the stack in \p Stacks and
/// resolving the canonical node against \p G.  Bounds checks guard
/// against corrupt input.
bool readTriple(Reader &R, const pag::PAG &G, StackPool &Stacks,
                pag::NodeId &Node, StackId &Fields, RsmState &S) {
  uint32_t Canonical = 0, StateRaw = 0, Len = 0;
  if (!R.read32(Canonical) || !R.read32(StateRaw) || !R.read32(Len))
    return false;
  if (StateRaw > 1 || Len > (1u << 20))
    return false;
  if (!resolveCanonicalNode(G, Canonical, Node))
    return false;
  StackId Stack = StackPool::empty();
  for (uint32_t I = 0; I < Len; ++I) {
    uint32_t E = 0;
    if (!R.read32(E))
      return false;
    Stack = Stacks.push(Stack, E);
  }
  Fields = Stack;
  S = StateRaw == 0 ? RsmState::S1 : RsmState::S2;
  return true;
}

/// One decoded summary entry, staged before merging so a failed load
/// never leaves a half-merged cache.
struct Entry {
  pag::NodeId Node;
  StackId Fields;
  RsmState S;
  PptaSummary Summary;
};

/// Parses one entry body (key triple, objects, tuples) from \p R.
/// Shared by the v2 stream parse and the v3 per-record parse.
bool parseEntry(Reader &R, const pag::PAG &G, StackPool &Stacks,
                size_t NumAllocs, Entry &E) {
  if (!readTriple(R, G, Stacks, E.Node, E.Fields, E.S))
    return false;
  uint32_t NumObjects = 0;
  if (!R.read32(NumObjects) || NumObjects > NumAllocs)
    return false;
  E.Summary.Objects.resize(NumObjects);
  for (uint32_t O = 0; O < NumObjects; ++O) {
    if (!R.read32(E.Summary.Objects[O]) || E.Summary.Objects[O] >= NumAllocs)
      return false;
  }
  uint32_t NumTuples = 0;
  if (!R.read32(NumTuples) || NumTuples > (1u << 22))
    return false;
  E.Summary.Tuples.resize(NumTuples);
  for (uint32_t T = 0; T < NumTuples; ++T) {
    PptaTuple &Tuple = E.Summary.Tuples[T];
    if (!readTriple(R, G, Stacks, Tuple.Node, Tuple.Fields, Tuple.State))
      return false;
  }
  return true;
}

/// Best-effort method attribution for a damaged record: the payload
/// leads with the entry's canonical node, whose owner usually survives
/// single-bit damage elsewhere in the record.
std::string describeRecord(const ir::Program &P, std::string_view Payload) {
  if (Payload.size() < 4)
    return "unattributable (payload too short)";
  Reader R(Payload);
  uint32_t Canonical = 0;
  R.read32(Canonical);
  size_t NumVars = P.variables().size();
  if (Canonical < NumVars)
    return "method " + P.describeMethod(P.variable(Canonical).Owner);
  if (Canonical - NumVars < P.allocs().size())
    return "method " + P.describeMethod(P.alloc(Canonical - NumVars).Owner);
  return "unattributable (key node out of range)";
}

/// The strict all-or-nothing v2 body parse (post-version field).
void deserializeV2(DynSumAnalysis &A, Reader &R, SummaryLoadReport &Report) {
  uint64_t Fingerprint = 0, NumEntries = 0;
  if (!R.read64(Fingerprint) ||
      Fingerprint != programFingerprint(A.graph().program())) {
    Report.Error = "program fingerprint mismatch";
    return;
  }
  if (!R.read64(NumEntries)) {
    Report.Error = "truncated v2 header";
    return;
  }
  const pag::PAG &G = A.graph();
  size_t NumAllocs = G.program().allocs().size();
  StackPool &Stacks = A.fieldStacks();
  std::vector<Entry> Staged;
  Staged.reserve(size_t(NumEntries));
  for (uint64_t I = 0; I < NumEntries; ++I) {
    Entry E;
    if (!parseEntry(R, G, Stacks, NumAllocs, E)) {
      Report.Error =
          "truncated or corrupt v2 entry " + std::to_string(I) +
          " (v2 has no per-record framing; nothing was loaded)";
      return;
    }
    Staged.push_back(std::move(E));
  }
  if (!R.atEnd()) {
    Report.Error = "trailing bytes after the last v2 entry";
    return;
  }
  for (Entry &E : Staged)
    A.insertSummary(E.Node, E.Fields, E.S, std::move(E.Summary));
  Report.Ok = true;
  Report.EntriesLoaded = Staged.size();
}

/// The corruption-tolerant v3 body parse: checksummed header, then
/// length/checksum-framed records skipped independently on damage.
void deserializeV3(DynSumAnalysis &A, Reader &R, std::string_view Data,
                   SummaryLoadReport &Report) {
  uint64_t Fingerprint = 0, NumEntries = 0, HeaderCrc = 0;
  if (!R.read64(Fingerprint) || !R.read64(NumEntries) ||
      !R.read64(HeaderCrc)) {
    Report.Error = "truncated v3 header";
    return;
  }
  // The checksum covers everything before it: magic, version,
  // fingerprint, entry count.
  if (fnv64(Data.substr(0, 24)) != HeaderCrc) {
    Report.Error = "v3 header checksum mismatch";
    return;
  }
  if (Fingerprint != programFingerprint(A.graph().program())) {
    Report.Error = "program fingerprint mismatch";
    return;
  }

  const pag::PAG &G = A.graph();
  const ir::Program &P = G.program();
  size_t NumAllocs = P.allocs().size();
  StackPool &Stacks = A.fieldStacks();
  constexpr size_t kMaxReportedSkips = 16;

  std::vector<Entry> Staged;
  Staged.reserve(size_t(NumEntries));
  for (uint64_t I = 0; I < NumEntries; ++I) {
    uint32_t Len = 0;
    uint64_t Crc = 0;
    std::string_view Payload;
    if (!R.read32(Len) || !R.read64(Crc) || !R.readBytes(Len, Payload)) {
      // A tear (crash mid-write, truncated copy): everything before it
      // is intact and loads; the tail is gone.
      Report.Truncated = true;
      Report.Error = "truncated at record " + std::to_string(I) + " of " +
                     std::to_string(NumEntries);
      break;
    }
    const char *Damage = nullptr;
    Entry E;
    if (fnv64(Payload) != Crc) {
      Damage = "checksum mismatch";
    } else {
      Reader Body(Payload);
      if (!parseEntry(Body, G, Stacks, NumAllocs, E) || !Body.atEnd())
        Damage = "malformed payload";
    }
    if (Damage) {
      ++Report.RecordsSkipped;
      if (Report.SkippedRecords.size() < kMaxReportedSkips)
        Report.SkippedRecords.push_back("record " + std::to_string(I) + " (" +
                                        describeRecord(P, Payload) + "): " +
                                        Damage);
      continue;
    }
    Staged.push_back(std::move(E));
  }

  // Summaries are independent cache entries, so the intact subset is
  // sound on its own — merge it even when records were lost.
  for (Entry &E : Staged)
    A.insertSummary(E.Node, E.Fields, E.S, std::move(E.Summary));
  Report.Ok = true;
  Report.EntriesLoaded = Staged.size();
  if (Report.RecordsSkipped && Report.Error.empty())
    Report.Error = std::to_string(Report.RecordsSkipped) +
                   " damaged record(s) skipped";
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialize / deserialize
//===----------------------------------------------------------------------===//

std::string dynsum::analysis::serializeSummaries(const DynSumAnalysis &A) {
  std::string Buf;
  put32(Buf, kMagic);
  put32(Buf, kVersion);
  put64(Buf, programFingerprint(A.graph().program()));
  put64(Buf, A.summaryCache().size());
  put64(Buf, fnv64(Buf)); // header checksum over the 24 bytes above

  const pag::PAG &G = A.graph();
  const StackPool &Stacks = A.fieldStacks();
  std::string Payload;
  std::vector<std::pair<uint64_t, uint64_t>> Digests; // (digest, offset)
  Digests.reserve(A.summaryCache().size());
  for (const auto &[Key, Summary] : A.summaryCache()) {
    pag::NodeId Node = pag::NodeId((Key >> 1) & 0xffffffffu);
    RsmState S = (Key & 1) == 0 ? RsmState::S1 : RsmState::S2;
    StackId Fields{uint32_t(Key >> 33)};
    Payload.clear();
    putTriple(Payload, G, Stacks, Node, Fields, S);
    put32(Payload, uint32_t(Summary.Objects.size()));
    for (ir::AllocId O : Summary.Objects)
      put32(Payload, O);
    put32(Payload, uint32_t(Summary.Tuples.size()));
    for (const PptaTuple &T : Summary.Tuples)
      putTriple(Payload, G, Stacks, T.Node, T.Fields, T.State);
    Digests.emplace_back(summaryRecordDigest(canonicalNode(G, Node), S,
                                             Stacks.elements(Fields)),
                         uint64_t(Buf.size()));
    put32(Buf, uint32_t(Payload.size()));
    put64(Buf, fnv64(Payload));
    Buf += Payload;
  }

  // Digest-index section (see kSummaryIndexMagic): trailing bytes the
  // streaming loader never reads — it stops after the header's record
  // count — but which let MappedSummaryFile binary-search a probe
  // instead of scanning every frame on open.  Sorted by digest; the
  // final u64 locates the section from the file's end.
  std::sort(Digests.begin(), Digests.end());
  size_t IndexStart = Buf.size();
  put32(Buf, kSummaryIndexMagic);
  put64(Buf, Digests.size());
  for (const auto &[Digest, Offset] : Digests) {
    put64(Buf, Digest);
    put64(Buf, Offset);
  }
  put64(Buf, fnv64(std::string_view(Buf).substr(IndexStart)));
  put64(Buf, IndexStart);
  return Buf;
}

SummaryLoadReport
dynsum::analysis::deserializeSummariesReport(DynSumAnalysis &A,
                                             std::string_view Data) {
  SummaryLoadReport Report;
  Reader R(Data);
  uint32_t Magic = 0, Version = 0;
  if (!R.read32(Magic) || Magic != kMagic) {
    Report.Error = "not a DSUM summary file (bad magic)";
    return Report;
  }
  if (!R.read32(Version)) {
    Report.Error = "truncated before the version field";
    return Report;
  }
  if (Version == 2)
    deserializeV2(A, R, Report);
  else if (Version == 3)
    deserializeV3(A, R, Data, Report);
  else
    Report.Error = "unsupported DSUM version " + std::to_string(Version) +
                   " (this build reads v2 and v3)";
  return Report;
}

bool dynsum::analysis::deserializeSummaries(DynSumAnalysis &A,
                                            std::string_view Data) {
  return deserializeSummariesReport(A, Data).Ok;
}

//===----------------------------------------------------------------------===//
// File wrappers
//===----------------------------------------------------------------------===//

bool dynsum::analysis::saveSummariesFile(const DynSumAnalysis &A,
                                         const std::string &Path) {
  std::string Buf = serializeSummaries(A);

  // Crash-safe sequence: write a sibling temp file, flush it all the
  // way to disk, then atomically rename over the target.  A crash (or
  // kill -9) at any instant leaves either the complete old file or the
  // complete new one — the torn temp file is garbage with a different
  // name, and the v3 loader would reject or degrade on it anyway.
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return false;
  // Fault point: a torn write truncates the stream at byte N and skips
  // the publish rename, modeling power loss mid-save.
  size_t Limit = support::tornWriteLimit("save.write");
  size_t Want = std::min(Buf.size(), Limit);
  bool Ok = std::fwrite(Buf.data(), 1, Want, F) == Want && Want == Buf.size();
  if (Ok && std::fflush(F) != 0)
    Ok = false;
#ifndef _WIN32
  if (Ok && fsync(fileno(F)) != 0)
    Ok = false;
#endif
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

SummaryLoadReport
dynsum::analysis::loadSummariesFileReport(DynSumAnalysis &A,
                                          const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    SummaryLoadReport Report;
    Report.Error = "cannot open " + Path;
    return Report;
  }
  std::string Buf;
  char Chunk[65536];
  size_t N = 0;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Buf.append(Chunk, N);
  std::fclose(F);
  return deserializeSummariesReport(A, Buf);
}

bool dynsum::analysis::loadSummariesFile(DynSumAnalysis &A,
                                         const std::string &Path) {
  return loadSummariesFileReport(A, Path).Ok;
}

//===----------------------------------------------------------------------===//
// MappedSummaryFile
//===----------------------------------------------------------------------===//

namespace {

uint32_t get32(std::string_view Data, size_t Pos) {
  return uint32_t(uint8_t(Data[Pos])) | uint32_t(uint8_t(Data[Pos + 1])) << 8 |
         uint32_t(uint8_t(Data[Pos + 2])) << 16 |
         uint32_t(uint8_t(Data[Pos + 3])) << 24;
}

uint64_t get64(std::string_view Data, size_t Pos) {
  return uint64_t(get32(Data, Pos)) | uint64_t(get32(Data, Pos + 4)) << 32;
}

/// Parses one record payload into canonical references (no PAG, no
/// StackPool — resolution happens in the promoting store).  Bounds
/// mirror parseEntry's: states binary, stacks capped, every canonical
/// node inside [0, NumVars + NumAllocs), every object a valid AllocId.
bool parseCanonicalRecord(std::string_view Payload, size_t NumVars,
                          size_t NumAllocs, DecodedSummaryRecord &Out) {
  Reader R(Payload);
  size_t NumCanonical = NumVars + NumAllocs;
  // \p Out may be a reused scratch record: every list is resized over,
  // and FieldData (append-only below) starts from empty.  Capacity is
  // deliberately kept — the probe path decodes hundreds of thousands
  // of records and must not allocate per record.
  Out.FieldData.clear();
  uint32_t StateRaw = 0, StackLen = 0;
  if (!R.read32(Out.CanonicalNode) || !R.read32(StateRaw) ||
      !R.read32(StackLen))
    return false;
  if (Out.CanonicalNode >= NumCanonical || StateRaw > 1 ||
      StackLen > (1u << 20))
    return false;
  Out.State = StateRaw == 0 ? RsmState::S1 : RsmState::S2;
  Out.Fields.resize(StackLen);
  for (uint32_t I = 0; I < StackLen; ++I)
    if (!R.read32(Out.Fields[I]))
      return false;
  uint32_t NumObjects = 0;
  if (!R.read32(NumObjects) || NumObjects > NumAllocs)
    return false;
  Out.Objects.resize(NumObjects);
  for (uint32_t O = 0; O < NumObjects; ++O)
    if (!R.read32(Out.Objects[O]) || Out.Objects[O] >= NumAllocs)
      return false;
  uint32_t NumTuples = 0;
  if (!R.read32(NumTuples) || NumTuples > (1u << 22))
    return false;
  Out.Tuples.resize(NumTuples);
  for (uint32_t T = 0; T < NumTuples; ++T) {
    DecodedSummaryRecord::Tuple &Tuple = Out.Tuples[T];
    uint32_t TState = 0;
    if (!R.read32(Tuple.CanonicalNode) || !R.read32(TState) ||
        !R.read32(Tuple.FieldsLen))
      return false;
    if (Tuple.CanonicalNode >= NumCanonical || TState > 1 ||
        Tuple.FieldsLen > (1u << 20))
      return false;
    Tuple.State = TState == 0 ? RsmState::S1 : RsmState::S2;
    for (uint32_t I = 0; I < Tuple.FieldsLen; ++I) {
      uint32_t E = 0;
      if (!R.read32(E))
        return false;
      Out.FieldData.push_back(E);
    }
  }
  return R.atEnd();
}

/// Match-gated body parse for the serving path: compares the record's
/// key against (\p Canonical, \p S, \p Fields) element-by-element as it
/// reads, and only on a full key match parses the body straight into
/// \p Out (tuple nodes left canonical).  Returns false on key mismatch
/// OR damage; \p Malformed distinguishes the two so the caller can
/// remember damaged records as dead without penalizing mere digest
/// collisions.
bool parseRecordBodyIfMatch(std::string_view Payload, size_t NumVars,
                            size_t NumAllocs, uint32_t Canonical, RsmState S,
                            const std::vector<uint32_t> &Fields,
                            PortableSummary &Out, bool &Malformed) {
  Reader R(Payload);
  Malformed = false;
  size_t NumCanonical = NumVars + NumAllocs;
  uint32_t Node = 0, StateRaw = 0, StackLen = 0;
  if (!R.read32(Node) || !R.read32(StateRaw) || !R.read32(StackLen)) {
    Malformed = true;
    return false;
  }
  if (Node >= NumCanonical || StateRaw > 1 || StackLen > (1u << 20)) {
    Malformed = true;
    return false;
  }
  RsmState RecState = StateRaw == 0 ? RsmState::S1 : RsmState::S2;
  if (Node != Canonical || RecState != S || StackLen != Fields.size())
    return false; // valid record, different key
  if (StackLen > R.remaining() / 4) {
    Malformed = true;
    return false;
  }
  if (!R.match32Run(Fields.data(), StackLen))
    return false; // valid record, different key

  // Key matched: decode the body.  \p Out may be reused scratch; every
  // list is resized over and FieldData (append-only) starts empty.
  Out.FieldData.clear();
  uint32_t NumObjects = 0;
  if (!R.read32(NumObjects) || NumObjects > NumAllocs) {
    Malformed = true;
    return false;
  }
  Out.Objects.resize(NumObjects);
  for (uint32_t O = 0; O < NumObjects; ++O)
    if (!R.read32(Out.Objects[O]) || Out.Objects[O] >= NumAllocs) {
      Malformed = true;
      return false;
    }
  uint32_t NumTuples = 0;
  if (!R.read32(NumTuples) || NumTuples > (1u << 22)) {
    Malformed = true;
    return false;
  }
  Out.Tuples.resize(NumTuples);
  for (uint32_t T = 0; T < NumTuples; ++T) {
    PortableSummary::Tuple &Tuple = Out.Tuples[T];
    uint32_t TState = 0, TLen = 0;
    if (!R.read32(Tuple.Node) || !R.read32(TState) || !R.read32(TLen)) {
      Malformed = true;
      return false;
    }
    if (Tuple.Node >= NumCanonical || TState > 1 || TLen > (1u << 20)) {
      Malformed = true;
      return false;
    }
    Tuple.State = TState == 0 ? RsmState::S1 : RsmState::S2;
    Tuple.FieldsLen = TLen;
    size_t Base = Out.FieldData.size();
    Out.FieldData.resize(Base + TLen);
    if (!R.read32Run(Out.FieldData.data() + Base, TLen)) {
      Malformed = true;
      return false;
    }
  }
  if (!R.atEnd()) {
    Malformed = true;
    return false;
  }
  return true;
}

/// Extracts just the key triple from a record payload — what the frame
/// scan needs to index a record without validating its whole body.
bool parseRecordKey(std::string_view Payload, size_t NumVars,
                    size_t NumAllocs, uint32_t &Canonical, RsmState &S,
                    std::vector<uint32_t> &Fields) {
  Reader R(Payload);
  uint32_t StateRaw = 0, StackLen = 0;
  if (!R.read32(Canonical) || !R.read32(StateRaw) || !R.read32(StackLen))
    return false;
  if (Canonical >= NumVars + NumAllocs || StateRaw > 1 ||
      StackLen > (1u << 20))
    return false;
  Fields.resize(StackLen);
  for (uint32_t I = 0; I < StackLen; ++I)
    if (!R.read32(Fields[I]))
      return false;
  S = StateRaw == 0 ? RsmState::S1 : RsmState::S2;
  return true;
}

} // namespace

std::unique_ptr<MappedSummaryFile>
MappedSummaryFile::open(const std::string &Path, uint64_t ExpectedFingerprint,
                        size_t NumVars, size_t NumAllocs,
                        std::string *Error) {
  auto Fail = [&](const std::string &Why) -> std::unique_ptr<MappedSummaryFile> {
    if (Error)
      *Error = Why;
    return nullptr;
  };

  std::unique_ptr<MappedSummaryFile> F(new MappedSummaryFile());
  std::string MapError;
  if (!F->Map.map(Path, &MapError))
    return Fail(MapError);
  std::string_view Data = F->Map.bytes();

  // Header validation — the exact gate the streaming loader applies.
  if (Data.size() < 32)
    return Fail("not a DSUM summary file (too short)");
  if (get32(Data, 0) != kMagic)
    return Fail("not a DSUM summary file (bad magic)");
  uint32_t Version = get32(Data, 4);
  if (Version != 3)
    return Fail("DSUM version " + std::to_string(Version) +
                " has no per-record framing; only v3 supports mapped access");
  if (fnv64(Data.substr(0, 24)) != get64(Data, 24))
    return Fail("v3 header checksum mismatch");
  if (get64(Data, 8) != ExpectedFingerprint)
    return Fail("program fingerprint mismatch");

  F->NumVars = NumVars;
  F->NumAllocs = NumAllocs;
  uint64_t NumEntries = get64(Data, 16);

  // Locate the digest index from the trailing footer.  Every check
  // failing soft-falls to the frame scan: pre-index v3 files have no
  // footer at all, torn files lost theirs, and a damaged index must
  // never be trusted (the CRC decides).
  bool HaveFooter = false;
  if (Data.size() >= 32 + 28) {
    uint64_t IndexStart = get64(Data, Data.size() - 8);
    if (IndexStart >= 32 && IndexStart + 28 <= Data.size() &&
        get32(Data, size_t(IndexStart)) == kSummaryIndexMagic) {
      uint64_t Count = get64(Data, size_t(IndexStart) + 4);
      if (Count <= (Data.size() - 28) / 16 &&
          IndexStart + 28 + Count * 16 == Data.size() &&
          Count == NumEntries &&
          fnv64(Data.substr(size_t(IndexStart), size_t(12 + Count * 16))) ==
              get64(Data, Data.size() - 16)) {
        F->Index.reserve(size_t(Count));
        size_t Pos = size_t(IndexStart) + 12;
        bool Sane = true;
        uint64_t PrevDigest = 0;
        for (uint64_t I = 0; I < Count && Sane; ++I, Pos += 16) {
          IndexEntry E;
          E.Digest = get64(Data, Pos);
          E.Offset = get64(Data, Pos + 8);
          // Offsets point at record frames strictly inside the record
          // region; digests ascend (binary-search precondition).
          Sane = E.Offset >= 32 && E.Offset + 12 <= IndexStart &&
                 (I == 0 || E.Digest >= PrevDigest);
          PrevDigest = E.Digest;
          F->Index.push_back(E);
        }
        if (Sane) {
          HaveFooter = true;
        } else {
          F->Index.clear();
        }
      }
    }
  }
  F->IndexFromFooter = HaveFooter;

  if (!HaveFooter) {
    // Frame scan: walk the length-framed records exactly like the
    // streaming loader, keying each by the digest of its (unvalidated)
    // key bytes.  A record whose key bytes are damaged lands under a
    // wrong digest — or is dropped here when they are unparseable — so
    // probes for its true key miss; full validation still happens
    // lazily on first touch.  A tear ends the scan: the intact prefix
    // is served, the tail is gone.
    size_t Pos = 32;
    std::vector<uint32_t> Fields;
    for (uint64_t I = 0; I < NumEntries; ++I) {
      if (Pos + 12 > Data.size())
        break; // torn frame header
      uint32_t Len = get32(Data, Pos);
      if (Pos + 12 + Len > Data.size())
        break; // torn payload
      uint32_t Canonical = 0;
      RsmState S = RsmState::S1;
      if (parseRecordKey(Data.substr(Pos + 12, Len), NumVars, NumAllocs,
                         Canonical, S, Fields)) {
        F->Index.push_back(
            IndexEntry{summaryRecordDigest(Canonical, S, Fields), Pos});
      } else {
        F->Corrupt.fetch_add(1, std::memory_order_relaxed);
      }
      Pos += 12 + Len;
    }
    std::sort(F->Index.begin(), F->Index.end(),
              [](const IndexEntry &A, const IndexEntry &B) {
                return A.Digest < B.Digest ||
                       (A.Digest == B.Digest && A.Offset < B.Offset);
              });
  }

  if (!F->Index.empty()) {
    F->Verdict =
        std::make_unique<std::atomic<uint8_t>[]>(F->Index.size());
    for (size_t I = 0; I < F->Index.size(); ++I)
      F->Verdict[I].store(0, std::memory_order_relaxed);
  }

  // Open-addressing digest table over the index slots, built once per
  // open.  A probe walks one short chain (load factor <= 1/2) instead
  // of binary-searching the sorted index — log2(records) dependent
  // cache misses per find() was the disk tier's single largest serving
  // cost.  Each entry carries digest, offset, and slot together so the
  // common chain-length-1 probe is one cache-line load.  Low digest
  // bits select the home slot; the stripe selector uses the top bits,
  // so the two stay uncorrelated.
  size_t Cap = 1;
  while (Cap < F->Index.size() * 2)
    Cap <<= 1;
  F->HashTable.assign(Cap, HashEntry{});
  F->HashMask = Cap - 1;
  for (size_t I = 0; I < F->Index.size(); ++I) {
    size_t H = size_t(F->Index[I].Digest) & F->HashMask;
    while (F->HashTable[H].Offset != kNoEntry)
      H = (H + 1) & F->HashMask;
    F->HashTable[H] =
        HashEntry{F->Index[I].Digest, F->Index[I].Offset, uint32_t(I)};
  }
  return F;
}

bool MappedSummaryFile::decodeSlot(size_t Slot,
                                   DecodedSummaryRecord &Out) const {
  std::string_view Data = Map.bytes();
  uint64_t Offset = Index[Slot].Offset;
  uint8_t State = Verdict[Slot].load(std::memory_order_acquire);
  if (State == 2)
    return false; // already known dead

  auto MarkDead = [&] {
    uint8_t Expected = State;
    if (Verdict[Slot].compare_exchange_strong(Expected, 2,
                                              std::memory_order_acq_rel))
      Corrupt.fetch_add(1, std::memory_order_relaxed);
    return false;
  };

  if (Offset + 12 > Data.size())
    return MarkDead();
  uint32_t Len = get32(Data, size_t(Offset));
  if (Offset + 12 + Len > Data.size())
    return MarkDead();
  std::string_view Payload = Data.substr(size_t(Offset) + 12, Len);
  // CRC on first touch only: a record that validated once is immutable
  // under the mapping, so later probes skip straight to the parse.
  if (State == 0 && fnv64(Payload) != get64(Data, size_t(Offset) + 4))
    return MarkDead();
  if (!parseCanonicalRecord(Payload, NumVars, NumAllocs, Out))
    return MarkDead();
  if (State == 0)
    Verdict[Slot].store(1, std::memory_order_release);
  return true;
}

bool MappedSummaryFile::find(uint32_t CanonicalNode, RsmState S,
                             const std::vector<uint32_t> &Fields,
                             DecodedSummaryRecord &Out) const {
  uint64_t D = summaryRecordDigest(CanonicalNode, S, Fields);
  if (Index.empty())
    return false;
  // Linear probing visits every slot whose digest hashes to this chain
  // before the first empty slot, so all candidates sharing D (including
  // genuine digest collisions) are reached.
  for (size_t H = size_t(D) & HashMask; HashTable[H].Offset != kNoEntry;
       H = (H + 1) & HashMask) {
    if (HashTable[H].Digest != D)
      continue;
    uint32_t Slot = HashTable[H].Slot;
    // Decode straight into the caller's record: it doubles as scratch
    // (capacity reused across probes), so on a miss or a digest
    // collision its contents are unspecified.
    if (!decodeSlot(Slot, Out))
      continue;
    if (Out.CanonicalNode == CanonicalNode && Out.State == S &&
        Out.Fields == Fields)
      return true;
  }
  return false;
}

bool MappedSummaryFile::findBody(uint64_t Digest, uint32_t CanonicalNode,
                                 RsmState S,
                                 const std::vector<uint32_t> &Fields,
                                 PortableSummary &Out) const {
  uint64_t D = Digest;
  if (Index.empty())
    return false;
  std::string_view Data = Map.bytes();
  for (size_t H = size_t(D) & HashMask; HashTable[H].Offset != kNoEntry;
       H = (H + 1) & HashMask) {
    if (HashTable[H].Digest != D)
      continue;
    uint32_t Slot = HashTable[H].Slot;
    // After validateAll() settled every verdict as valid, the load (a
    // near-guaranteed cache miss into a side array) is pure overhead.
    uint8_t State = 1;
    if (!AllValid) {
      State = Verdict[Slot].load(std::memory_order_acquire);
      if (State == 2)
        continue; // already known dead
    }
    auto MarkDead = [&] {
      uint8_t Expected = State;
      if (Verdict[Slot].compare_exchange_strong(Expected, 2,
                                                std::memory_order_acq_rel))
        Corrupt.fetch_add(1, std::memory_order_relaxed);
    };
    uint64_t Offset = HashTable[H].Offset;
    if (Offset + 12 > Data.size()) {
      MarkDead();
      continue;
    }
    uint32_t Len = get32(Data, size_t(Offset));
    if (Offset + 12 + Len > Data.size()) {
      MarkDead();
      continue;
    }
    std::string_view Payload = Data.substr(size_t(Offset) + 12, Len);
    // CRC on first touch, exactly like decodeSlot — unless validateAll
    // already settled every verdict at attach time, in which case State
    // is 1 or 2 here and the serving path never streams a checksum.  A
    // verdict of 1 promises a valid checksum; body validity is
    // (re)established by the parse below whenever the key matches.
    if (State == 0 && fnv64(Payload) != get64(Data, size_t(Offset) + 4)) {
      MarkDead();
      continue;
    }
    bool Malformed = false;
    bool Match = parseRecordBodyIfMatch(Payload, NumVars, NumAllocs,
                                        CanonicalNode, S, Fields, Out,
                                        Malformed);
    if (Malformed) {
      MarkDead();
      continue;
    }
    if (State == 0)
      Verdict[Slot].store(1, std::memory_order_release);
    if (Match)
      return true;
  }
  return false;
}

uint64_t MappedSummaryFile::validateAll() {
  std::string_view Data = Map.bytes();
  uint64_t Dead = 0;
  for (size_t Slot = 0; Slot < Index.size(); ++Slot) {
    uint8_t State = Verdict[Slot].load(std::memory_order_relaxed);
    if (State == 2) {
      ++Dead;
      continue;
    }
    if (State == 1)
      continue;
    uint64_t Offset = Index[Slot].Offset;
    bool Valid = Offset + 12 <= Data.size();
    uint32_t Len = Valid ? get32(Data, size_t(Offset)) : 0;
    Valid = Valid && Offset + 12 + Len <= Data.size() &&
            fnv64(Data.substr(size_t(Offset) + 12, Len)) ==
                get64(Data, size_t(Offset) + 4);
    if (Valid) {
      Verdict[Slot].store(1, std::memory_order_release);
    } else {
      Verdict[Slot].store(2, std::memory_order_release);
      Corrupt.fetch_add(1, std::memory_order_relaxed);
      ++Dead;
    }
  }
  // A fully clean file lets probes skip the verdict load altogether.
  // (Monotone: verdicts only move 0 -> {1,2}, and we just visited all.)
  AllValid = Dead == 0;
  return Dead;
}
