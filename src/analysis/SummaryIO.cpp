//===----------------------------------------------------------------------===//
///
/// \file
/// Summary-cache serialization implementation.
///
//===----------------------------------------------------------------------===//

#include "analysis/SummaryIO.h"

#include "support/Hashing.h"

#include <cstdio>
#include <cstring>

using namespace dynsum;
using namespace dynsum::analysis;

static constexpr uint32_t kMagic = kSummaryFileMagic;
static constexpr uint32_t kVersion = kSummaryFileVersion;

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

uint64_t dynsum::analysis::programFingerprint(const ir::Program &P) {
  uint64_t H = 0xd59b8cf1a2b3c4d5ull;
  H = hashCombine(H, P.classes().size());
  for (const ir::ClassType &C : P.classes()) {
    H = hashCombine(H, C.Name.Id);
    H = hashCombine(H, C.Super);
  }
  H = hashCombine(H, P.fields().size());
  for (const ir::Field &F : P.fields())
    H = hashCombine(H, F.Name.Id);
  H = hashCombine(H, P.variables().size());
  for (const ir::Variable &V : P.variables()) {
    H = hashCombine(H, V.Name.Id);
    H = hashCombine(H, packPair(V.Owner, uint32_t(V.IsGlobal)));
  }
  H = hashCombine(H, P.allocs().size());
  for (const ir::AllocSite &A : P.allocs())
    H = hashCombine(H, packPair(A.Type, A.Owner));
  H = hashCombine(H, P.methods().size());
  for (const ir::Method &M : P.methods()) {
    H = hashCombine(H, M.Name.Id);
    H = hashCombine(H, packPair(M.Owner, uint32_t(M.Params.size())));
    for (ir::VarId V : M.Params)
      H = hashCombine(H, V);
    H = hashCombine(H, M.Stmts.size());
    for (const ir::Statement &S : M.Stmts) {
      H = hashCombine(H, packPair(uint32_t(S.Kind), S.Dst));
      H = hashCombine(H, packPair(S.Src, S.Base));
      H = hashCombine(H, packPair(S.FieldLabel, S.Type));
      H = hashCombine(H, packPair(S.Alloc, S.Call));
      H = hashCombine(H, packPair(S.Callee, S.VirtualName.Id));
      H = hashCombine(H, uint64_t(S.IsVirtual));
      for (ir::VarId V : S.Args)
        H = hashCombine(H, V);
    }
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Little-endian buffer primitives
//===----------------------------------------------------------------------===//

namespace {

void put32(std::string &Buf, uint32_t V) {
  char Bytes[4] = {char(V), char(V >> 8), char(V >> 16), char(V >> 24)};
  Buf.append(Bytes, 4);
}

void put64(std::string &Buf, uint64_t V) {
  put32(Buf, uint32_t(V));
  put32(Buf, uint32_t(V >> 32));
}

/// Bounds-checked little-endian reader over the input buffer.
class Reader {
public:
  explicit Reader(std::string_view Data) : Data(Data) {}

  bool read32(uint32_t &V) {
    if (Pos + 4 > Data.size())
      return false;
    V = uint32_t(uint8_t(Data[Pos])) | uint32_t(uint8_t(Data[Pos + 1])) << 8 |
        uint32_t(uint8_t(Data[Pos + 2])) << 16 |
        uint32_t(uint8_t(Data[Pos + 3])) << 24;
    Pos += 4;
    return true;
  }

  bool read64(uint64_t &V) {
    uint32_t Lo = 0, Hi = 0;
    if (!read32(Lo) || !read32(Hi))
      return false;
    V = uint64_t(Hi) << 32 | Lo;
    return true;
  }

  bool atEnd() const { return Pos == Data.size(); }

private:
  std::string_view Data;
  size_t Pos = 0;
};

/// On-disk node references are canonical — VarId for variable nodes,
/// numVars + AllocId for object nodes — because in-memory numbering
/// depends on the graph's delta-build history while the canonical form
/// depends only on the (fingerprinted) program.
uint32_t canonicalNode(const pag::PAG &G, pag::NodeId Node) {
  const pag::Node &N = G.node(Node);
  if (N.Kind == pag::NodeKind::Object)
    return uint32_t(G.program().variables().size()) + N.IrId;
  return N.IrId;
}

/// Resolves a canonical reference against \p G; false when out of
/// range.
bool resolveCanonicalNode(const pag::PAG &G, uint32_t Canonical,
                          pag::NodeId &Node) {
  size_t NumVars = G.program().variables().size();
  size_t NumAllocs = G.program().allocs().size();
  if (Canonical < NumVars) {
    Node = G.nodeOfVar(Canonical);
    return true;
  }
  if (Canonical - NumVars < NumAllocs) {
    Node = G.nodeOfAlloc(uint32_t(Canonical - NumVars));
    return true;
  }
  return false;
}

/// Serializes one (node, stack, state) triple with the stack expanded
/// and the node canonicalized.
void putTriple(std::string &Buf, const pag::PAG &G, const StackPool &Stacks,
               pag::NodeId Node, StackId Fields, RsmState S) {
  put32(Buf, canonicalNode(G, Node));
  put32(Buf, uint32_t(S));
  std::vector<uint32_t> Elems = Stacks.elements(Fields);
  put32(Buf, uint32_t(Elems.size()));
  for (uint32_t E : Elems)
    put32(Buf, E);
}

/// Reads a triple back, re-interning the stack in \p Stacks and
/// resolving the canonical node against \p G.  Bounds checks guard
/// against corrupt input.
bool readTriple(Reader &R, const pag::PAG &G, StackPool &Stacks,
                pag::NodeId &Node, StackId &Fields, RsmState &S) {
  uint32_t Canonical = 0, StateRaw = 0, Len = 0;
  if (!R.read32(Canonical) || !R.read32(StateRaw) || !R.read32(Len))
    return false;
  if (StateRaw > 1 || Len > (1u << 20))
    return false;
  if (!resolveCanonicalNode(G, Canonical, Node))
    return false;
  StackId Stack = StackPool::empty();
  for (uint32_t I = 0; I < Len; ++I) {
    uint32_t E = 0;
    if (!R.read32(E))
      return false;
    Stack = Stacks.push(Stack, E);
  }
  Fields = Stack;
  S = StateRaw == 0 ? RsmState::S1 : RsmState::S2;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialize / deserialize
//===----------------------------------------------------------------------===//

std::string dynsum::analysis::serializeSummaries(const DynSumAnalysis &A) {
  std::string Buf;
  put32(Buf, kMagic);
  put32(Buf, kVersion);
  put64(Buf, programFingerprint(A.graph().program()));
  put64(Buf, A.summaryCache().size());

  const pag::PAG &G = A.graph();
  const StackPool &Stacks = A.fieldStacks();
  for (const auto &[Key, Summary] : A.summaryCache()) {
    pag::NodeId Node = pag::NodeId((Key >> 1) & 0xffffffffu);
    RsmState S = (Key & 1) == 0 ? RsmState::S1 : RsmState::S2;
    StackId Fields{uint32_t(Key >> 33)};
    putTriple(Buf, G, Stacks, Node, Fields, S);
    put32(Buf, uint32_t(Summary.Objects.size()));
    for (ir::AllocId O : Summary.Objects)
      put32(Buf, O);
    put32(Buf, uint32_t(Summary.Tuples.size()));
    for (const PptaTuple &T : Summary.Tuples)
      putTriple(Buf, G, Stacks, T.Node, T.Fields, T.State);
  }
  return Buf;
}

bool dynsum::analysis::deserializeSummaries(DynSumAnalysis &A,
                                            std::string_view Data) {
  Reader R(Data);
  uint32_t Magic = 0, Version = 0;
  uint64_t Fingerprint = 0, NumEntries = 0;
  if (!R.read32(Magic) || Magic != kMagic)
    return false;
  if (!R.read32(Version) || Version != kVersion)
    return false;
  if (!R.read64(Fingerprint) ||
      Fingerprint != programFingerprint(A.graph().program()))
    return false;
  if (!R.read64(NumEntries))
    return false;

  const pag::PAG &G = A.graph();
  size_t NumAllocs = G.program().allocs().size();
  StackPool &Stacks = A.fieldStacks();

  // Parse into a staging vector first so a truncated buffer never
  // leaves a half-merged cache.
  struct Entry {
    pag::NodeId Node;
    StackId Fields;
    RsmState S;
    PptaSummary Summary;
  };
  std::vector<Entry> Staged;
  Staged.reserve(size_t(NumEntries));
  for (uint64_t I = 0; I < NumEntries; ++I) {
    Entry E;
    if (!readTriple(R, G, Stacks, E.Node, E.Fields, E.S))
      return false;
    uint32_t NumObjects = 0;
    if (!R.read32(NumObjects) || NumObjects > NumAllocs)
      return false;
    E.Summary.Objects.resize(NumObjects);
    for (uint32_t O = 0; O < NumObjects; ++O) {
      if (!R.read32(E.Summary.Objects[O]) ||
          E.Summary.Objects[O] >= NumAllocs)
        return false;
    }
    uint32_t NumTuples = 0;
    if (!R.read32(NumTuples) || NumTuples > (1u << 22))
      return false;
    E.Summary.Tuples.resize(NumTuples);
    for (uint32_t T = 0; T < NumTuples; ++T) {
      PptaTuple &Tuple = E.Summary.Tuples[T];
      if (!readTriple(R, G, Stacks, Tuple.Node, Tuple.Fields, Tuple.State))
        return false;
    }
    Staged.push_back(std::move(E));
  }
  if (!R.atEnd())
    return false;

  for (Entry &E : Staged)
    A.insertSummary(E.Node, E.Fields, E.S, std::move(E.Summary));
  return true;
}

//===----------------------------------------------------------------------===//
// File wrappers
//===----------------------------------------------------------------------===//

bool dynsum::analysis::saveSummariesFile(const DynSumAnalysis &A,
                                         const std::string &Path) {
  std::string Buf = serializeSummaries(A);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Buf.data(), 1, Buf.size(), F) == Buf.size();
  if (std::fclose(F) != 0)
    Ok = false;
  return Ok;
}

bool dynsum::analysis::loadSummariesFile(DynSumAnalysis &A,
                                         const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::string Buf;
  char Chunk[65536];
  size_t N = 0;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Buf.append(Chunk, N);
  std::fclose(F);
  return deserializeSummaries(A, Buf);
}
