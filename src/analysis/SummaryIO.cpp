//===----------------------------------------------------------------------===//
///
/// \file
/// Summary-cache serialization implementation.
///
//===----------------------------------------------------------------------===//

#include "analysis/SummaryIO.h"

#include "support/FaultInjection.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace dynsum;
using namespace dynsum::analysis;

static constexpr uint32_t kMagic = kSummaryFileMagic;
static constexpr uint32_t kVersion = kSummaryFileVersion;

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

uint64_t dynsum::analysis::programFingerprint(const ir::Program &P) {
  uint64_t H = 0xd59b8cf1a2b3c4d5ull;
  H = hashCombine(H, P.classes().size());
  for (const ir::ClassType &C : P.classes()) {
    H = hashCombine(H, C.Name.Id);
    H = hashCombine(H, C.Super);
  }
  H = hashCombine(H, P.fields().size());
  for (const ir::Field &F : P.fields())
    H = hashCombine(H, F.Name.Id);
  H = hashCombine(H, P.variables().size());
  for (const ir::Variable &V : P.variables()) {
    H = hashCombine(H, V.Name.Id);
    H = hashCombine(H, packPair(V.Owner, uint32_t(V.IsGlobal)));
  }
  H = hashCombine(H, P.allocs().size());
  for (const ir::AllocSite &A : P.allocs())
    H = hashCombine(H, packPair(A.Type, A.Owner));
  H = hashCombine(H, P.methods().size());
  for (const ir::Method &M : P.methods()) {
    H = hashCombine(H, M.Name.Id);
    H = hashCombine(H, packPair(M.Owner, uint32_t(M.Params.size())));
    for (ir::VarId V : M.Params)
      H = hashCombine(H, V);
    H = hashCombine(H, M.Stmts.size());
    for (const ir::Statement &S : M.Stmts) {
      H = hashCombine(H, packPair(uint32_t(S.Kind), S.Dst));
      H = hashCombine(H, packPair(S.Src, S.Base));
      H = hashCombine(H, packPair(S.FieldLabel, S.Type));
      H = hashCombine(H, packPair(S.Alloc, S.Call));
      H = hashCombine(H, packPair(S.Callee, S.VirtualName.Id));
      H = hashCombine(H, uint64_t(S.IsVirtual));
      for (ir::VarId V : S.Args)
        H = hashCombine(H, V);
    }
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Little-endian buffer primitives
//===----------------------------------------------------------------------===//

namespace {

void put32(std::string &Buf, uint32_t V) {
  char Bytes[4] = {char(V), char(V >> 8), char(V >> 16), char(V >> 24)};
  Buf.append(Bytes, 4);
}

void put64(std::string &Buf, uint64_t V) {
  put32(Buf, uint32_t(V));
  put32(Buf, uint32_t(V >> 32));
}

/// FNV-1a over a byte range: the per-section checksum.  Not
/// cryptographic — it guards against torn writes and bit rot, not
/// adversaries.
uint64_t fnv64(std::string_view Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : Bytes) {
    H ^= uint8_t(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Bounds-checked little-endian reader over the input buffer.
class Reader {
public:
  explicit Reader(std::string_view Data) : Data(Data) {}

  bool read32(uint32_t &V) {
    if (Pos + 4 > Data.size())
      return false;
    V = uint32_t(uint8_t(Data[Pos])) | uint32_t(uint8_t(Data[Pos + 1])) << 8 |
        uint32_t(uint8_t(Data[Pos + 2])) << 16 |
        uint32_t(uint8_t(Data[Pos + 3])) << 24;
    Pos += 4;
    return true;
  }

  bool read64(uint64_t &V) {
    uint32_t Lo = 0, Hi = 0;
    if (!read32(Lo) || !read32(Hi))
      return false;
    V = uint64_t(Hi) << 32 | Lo;
    return true;
  }

  /// Takes the next \p Len bytes as a sub-view; false when fewer
  /// remain.
  bool readBytes(size_t Len, std::string_view &Out) {
    if (Pos + Len > Data.size())
      return false;
    Out = Data.substr(Pos, Len);
    Pos += Len;
    return true;
  }

  size_t remaining() const { return Data.size() - Pos; }
  bool atEnd() const { return Pos == Data.size(); }

private:
  std::string_view Data;
  size_t Pos = 0;
};

/// On-disk node references are canonical — VarId for variable nodes,
/// numVars + AllocId for object nodes — because in-memory numbering
/// depends on the graph's delta-build history while the canonical form
/// depends only on the (fingerprinted) program.
uint32_t canonicalNode(const pag::PAG &G, pag::NodeId Node) {
  const pag::Node &N = G.node(Node);
  if (N.Kind == pag::NodeKind::Object)
    return uint32_t(G.program().variables().size()) + N.IrId;
  return N.IrId;
}

/// Resolves a canonical reference against \p G; false when out of
/// range.
bool resolveCanonicalNode(const pag::PAG &G, uint32_t Canonical,
                          pag::NodeId &Node) {
  size_t NumVars = G.program().variables().size();
  size_t NumAllocs = G.program().allocs().size();
  if (Canonical < NumVars) {
    Node = G.nodeOfVar(Canonical);
    return true;
  }
  if (Canonical - NumVars < NumAllocs) {
    Node = G.nodeOfAlloc(uint32_t(Canonical - NumVars));
    return true;
  }
  return false;
}

/// Serializes one (node, stack, state) triple with the stack expanded
/// and the node canonicalized.
void putTriple(std::string &Buf, const pag::PAG &G, const StackPool &Stacks,
               pag::NodeId Node, StackId Fields, RsmState S) {
  put32(Buf, canonicalNode(G, Node));
  put32(Buf, uint32_t(S));
  std::vector<uint32_t> Elems = Stacks.elements(Fields);
  put32(Buf, uint32_t(Elems.size()));
  for (uint32_t E : Elems)
    put32(Buf, E);
}

/// Reads a triple back, re-interning the stack in \p Stacks and
/// resolving the canonical node against \p G.  Bounds checks guard
/// against corrupt input.
bool readTriple(Reader &R, const pag::PAG &G, StackPool &Stacks,
                pag::NodeId &Node, StackId &Fields, RsmState &S) {
  uint32_t Canonical = 0, StateRaw = 0, Len = 0;
  if (!R.read32(Canonical) || !R.read32(StateRaw) || !R.read32(Len))
    return false;
  if (StateRaw > 1 || Len > (1u << 20))
    return false;
  if (!resolveCanonicalNode(G, Canonical, Node))
    return false;
  StackId Stack = StackPool::empty();
  for (uint32_t I = 0; I < Len; ++I) {
    uint32_t E = 0;
    if (!R.read32(E))
      return false;
    Stack = Stacks.push(Stack, E);
  }
  Fields = Stack;
  S = StateRaw == 0 ? RsmState::S1 : RsmState::S2;
  return true;
}

/// One decoded summary entry, staged before merging so a failed load
/// never leaves a half-merged cache.
struct Entry {
  pag::NodeId Node;
  StackId Fields;
  RsmState S;
  PptaSummary Summary;
};

/// Parses one entry body (key triple, objects, tuples) from \p R.
/// Shared by the v2 stream parse and the v3 per-record parse.
bool parseEntry(Reader &R, const pag::PAG &G, StackPool &Stacks,
                size_t NumAllocs, Entry &E) {
  if (!readTriple(R, G, Stacks, E.Node, E.Fields, E.S))
    return false;
  uint32_t NumObjects = 0;
  if (!R.read32(NumObjects) || NumObjects > NumAllocs)
    return false;
  E.Summary.Objects.resize(NumObjects);
  for (uint32_t O = 0; O < NumObjects; ++O) {
    if (!R.read32(E.Summary.Objects[O]) || E.Summary.Objects[O] >= NumAllocs)
      return false;
  }
  uint32_t NumTuples = 0;
  if (!R.read32(NumTuples) || NumTuples > (1u << 22))
    return false;
  E.Summary.Tuples.resize(NumTuples);
  for (uint32_t T = 0; T < NumTuples; ++T) {
    PptaTuple &Tuple = E.Summary.Tuples[T];
    if (!readTriple(R, G, Stacks, Tuple.Node, Tuple.Fields, Tuple.State))
      return false;
  }
  return true;
}

/// Best-effort method attribution for a damaged record: the payload
/// leads with the entry's canonical node, whose owner usually survives
/// single-bit damage elsewhere in the record.
std::string describeRecord(const ir::Program &P, std::string_view Payload) {
  if (Payload.size() < 4)
    return "unattributable (payload too short)";
  Reader R(Payload);
  uint32_t Canonical = 0;
  R.read32(Canonical);
  size_t NumVars = P.variables().size();
  if (Canonical < NumVars)
    return "method " + P.describeMethod(P.variable(Canonical).Owner);
  if (Canonical - NumVars < P.allocs().size())
    return "method " + P.describeMethod(P.alloc(Canonical - NumVars).Owner);
  return "unattributable (key node out of range)";
}

/// The strict all-or-nothing v2 body parse (post-version field).
void deserializeV2(DynSumAnalysis &A, Reader &R, SummaryLoadReport &Report) {
  uint64_t Fingerprint = 0, NumEntries = 0;
  if (!R.read64(Fingerprint) ||
      Fingerprint != programFingerprint(A.graph().program())) {
    Report.Error = "program fingerprint mismatch";
    return;
  }
  if (!R.read64(NumEntries)) {
    Report.Error = "truncated v2 header";
    return;
  }
  const pag::PAG &G = A.graph();
  size_t NumAllocs = G.program().allocs().size();
  StackPool &Stacks = A.fieldStacks();
  std::vector<Entry> Staged;
  Staged.reserve(size_t(NumEntries));
  for (uint64_t I = 0; I < NumEntries; ++I) {
    Entry E;
    if (!parseEntry(R, G, Stacks, NumAllocs, E)) {
      Report.Error =
          "truncated or corrupt v2 entry " + std::to_string(I) +
          " (v2 has no per-record framing; nothing was loaded)";
      return;
    }
    Staged.push_back(std::move(E));
  }
  if (!R.atEnd()) {
    Report.Error = "trailing bytes after the last v2 entry";
    return;
  }
  for (Entry &E : Staged)
    A.insertSummary(E.Node, E.Fields, E.S, std::move(E.Summary));
  Report.Ok = true;
  Report.EntriesLoaded = Staged.size();
}

/// The corruption-tolerant v3 body parse: checksummed header, then
/// length/checksum-framed records skipped independently on damage.
void deserializeV3(DynSumAnalysis &A, Reader &R, std::string_view Data,
                   SummaryLoadReport &Report) {
  uint64_t Fingerprint = 0, NumEntries = 0, HeaderCrc = 0;
  if (!R.read64(Fingerprint) || !R.read64(NumEntries) ||
      !R.read64(HeaderCrc)) {
    Report.Error = "truncated v3 header";
    return;
  }
  // The checksum covers everything before it: magic, version,
  // fingerprint, entry count.
  if (fnv64(Data.substr(0, 24)) != HeaderCrc) {
    Report.Error = "v3 header checksum mismatch";
    return;
  }
  if (Fingerprint != programFingerprint(A.graph().program())) {
    Report.Error = "program fingerprint mismatch";
    return;
  }

  const pag::PAG &G = A.graph();
  const ir::Program &P = G.program();
  size_t NumAllocs = P.allocs().size();
  StackPool &Stacks = A.fieldStacks();
  constexpr size_t kMaxReportedSkips = 16;

  std::vector<Entry> Staged;
  Staged.reserve(size_t(NumEntries));
  for (uint64_t I = 0; I < NumEntries; ++I) {
    uint32_t Len = 0;
    uint64_t Crc = 0;
    std::string_view Payload;
    if (!R.read32(Len) || !R.read64(Crc) || !R.readBytes(Len, Payload)) {
      // A tear (crash mid-write, truncated copy): everything before it
      // is intact and loads; the tail is gone.
      Report.Truncated = true;
      Report.Error = "truncated at record " + std::to_string(I) + " of " +
                     std::to_string(NumEntries);
      break;
    }
    const char *Damage = nullptr;
    Entry E;
    if (fnv64(Payload) != Crc) {
      Damage = "checksum mismatch";
    } else {
      Reader Body(Payload);
      if (!parseEntry(Body, G, Stacks, NumAllocs, E) || !Body.atEnd())
        Damage = "malformed payload";
    }
    if (Damage) {
      ++Report.RecordsSkipped;
      if (Report.SkippedRecords.size() < kMaxReportedSkips)
        Report.SkippedRecords.push_back("record " + std::to_string(I) + " (" +
                                        describeRecord(P, Payload) + "): " +
                                        Damage);
      continue;
    }
    Staged.push_back(std::move(E));
  }

  // Summaries are independent cache entries, so the intact subset is
  // sound on its own — merge it even when records were lost.
  for (Entry &E : Staged)
    A.insertSummary(E.Node, E.Fields, E.S, std::move(E.Summary));
  Report.Ok = true;
  Report.EntriesLoaded = Staged.size();
  if (Report.RecordsSkipped && Report.Error.empty())
    Report.Error = std::to_string(Report.RecordsSkipped) +
                   " damaged record(s) skipped";
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialize / deserialize
//===----------------------------------------------------------------------===//

std::string dynsum::analysis::serializeSummaries(const DynSumAnalysis &A) {
  std::string Buf;
  put32(Buf, kMagic);
  put32(Buf, kVersion);
  put64(Buf, programFingerprint(A.graph().program()));
  put64(Buf, A.summaryCache().size());
  put64(Buf, fnv64(Buf)); // header checksum over the 24 bytes above

  const pag::PAG &G = A.graph();
  const StackPool &Stacks = A.fieldStacks();
  std::string Payload;
  for (const auto &[Key, Summary] : A.summaryCache()) {
    pag::NodeId Node = pag::NodeId((Key >> 1) & 0xffffffffu);
    RsmState S = (Key & 1) == 0 ? RsmState::S1 : RsmState::S2;
    StackId Fields{uint32_t(Key >> 33)};
    Payload.clear();
    putTriple(Payload, G, Stacks, Node, Fields, S);
    put32(Payload, uint32_t(Summary.Objects.size()));
    for (ir::AllocId O : Summary.Objects)
      put32(Payload, O);
    put32(Payload, uint32_t(Summary.Tuples.size()));
    for (const PptaTuple &T : Summary.Tuples)
      putTriple(Payload, G, Stacks, T.Node, T.Fields, T.State);
    put32(Buf, uint32_t(Payload.size()));
    put64(Buf, fnv64(Payload));
    Buf += Payload;
  }
  return Buf;
}

SummaryLoadReport
dynsum::analysis::deserializeSummariesReport(DynSumAnalysis &A,
                                             std::string_view Data) {
  SummaryLoadReport Report;
  Reader R(Data);
  uint32_t Magic = 0, Version = 0;
  if (!R.read32(Magic) || Magic != kMagic) {
    Report.Error = "not a DSUM summary file (bad magic)";
    return Report;
  }
  if (!R.read32(Version)) {
    Report.Error = "truncated before the version field";
    return Report;
  }
  if (Version == 2)
    deserializeV2(A, R, Report);
  else if (Version == 3)
    deserializeV3(A, R, Data, Report);
  else
    Report.Error = "unsupported DSUM version " + std::to_string(Version) +
                   " (this build reads v2 and v3)";
  return Report;
}

bool dynsum::analysis::deserializeSummaries(DynSumAnalysis &A,
                                            std::string_view Data) {
  return deserializeSummariesReport(A, Data).Ok;
}

//===----------------------------------------------------------------------===//
// File wrappers
//===----------------------------------------------------------------------===//

bool dynsum::analysis::saveSummariesFile(const DynSumAnalysis &A,
                                         const std::string &Path) {
  std::string Buf = serializeSummaries(A);

  // Crash-safe sequence: write a sibling temp file, flush it all the
  // way to disk, then atomically rename over the target.  A crash (or
  // kill -9) at any instant leaves either the complete old file or the
  // complete new one — the torn temp file is garbage with a different
  // name, and the v3 loader would reject or degrade on it anyway.
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return false;
  // Fault point: a torn write truncates the stream at byte N and skips
  // the publish rename, modeling power loss mid-save.
  size_t Limit = support::tornWriteLimit("save.write");
  size_t Want = std::min(Buf.size(), Limit);
  bool Ok = std::fwrite(Buf.data(), 1, Want, F) == Want && Want == Buf.size();
  if (Ok && std::fflush(F) != 0)
    Ok = false;
#ifndef _WIN32
  if (Ok && fsync(fileno(F)) != 0)
    Ok = false;
#endif
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

SummaryLoadReport
dynsum::analysis::loadSummariesFileReport(DynSumAnalysis &A,
                                          const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    SummaryLoadReport Report;
    Report.Error = "cannot open " + Path;
    return Report;
  }
  std::string Buf;
  char Chunk[65536];
  size_t N = 0;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Buf.append(Chunk, N);
  std::fclose(F);
  return deserializeSummariesReport(A, Buf);
}

bool dynsum::analysis::loadSummariesFile(DynSumAnalysis &A,
                                         const std::string &Path) {
  return loadSummariesFileReport(A, Path).Ok;
}
