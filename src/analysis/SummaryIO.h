//===----------------------------------------------------------------------===//
///
/// \file
/// Persistence for DYNSUM summary caches: warm starts across processes.
///
/// The paper positions DYNSUM for JIT compilers and IDEs; both restart.
/// SummaryIO lets a session serialize its dynamic summaries on shutdown
/// and a later session on the *same program* load them back, skipping
/// every PPTA recomputation for previously queried code.
///
/// Summaries are keyed by PAG nodes and field-stack ids.  On disk
/// (format v2) node references are CANONICAL: a variable node is its
/// VarId, an object node is numVars + AllocId.  In-memory numbering
/// depends on build history — a graph evolved through delta builds
/// interleaves late-created variables after object nodes — so raw node
/// ids would silently mean different nodes in the saving and loading
/// process even for byte-identical programs.  The canonical form
/// depends only on the program, whose analysis-relevant shape is
/// fingerprinted into the byte stream: loads onto a different program
/// are rejected, never silently wrong.  (Field stacks are spelled out
/// and re-interned on load for the same reason.)
///
/// Format (little-endian): magic "DSUM", u32 version, u64 fingerprint,
/// u64 entry count, then per entry the key triple with the field stack
/// spelled out element by element, the object list, and the boundary
/// tuples (again with explicit stacks).  The byte-exact layout — and
/// the versioning rules, including why the engine's in-memory store
/// generation is deliberately *not* a field — is specified in
/// docs/SUMMARY_FORMAT.md; any layout change must bump
/// kSummaryFileVersion in lockstep with that document.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ANALYSIS_SUMMARYIO_H
#define DYNSUM_ANALYSIS_SUMMARYIO_H

#include "analysis/DynSum.h"

#include <string>
#include <string_view>

namespace dynsum {
namespace analysis {

/// On-disk format tag ("DSUM" little-endian) and version.  Bump the
/// version for any layout change and record it in
/// docs/SUMMARY_FORMAT.md.
constexpr uint32_t kSummaryFileMagic = 0x4d555344;
/// v2: node references are canonical (VarId | numVars + AllocId)
/// instead of raw in-memory node ids, which stopped being a pure
/// function of the program when delta builds arrived.
constexpr uint32_t kSummaryFileVersion = 2;

/// A stable fingerprint of everything about \p P the analyses can
/// observe: the class hierarchy, methods, variables, allocation/call
/// sites and every statement.  Two programs with equal fingerprints
/// build identical PAGs.
uint64_t programFingerprint(const ir::Program &P);

/// Serializes \p A's summary cache (tagged with its program's
/// fingerprint) into a byte buffer.
std::string serializeSummaries(const DynSumAnalysis &A);

/// Loads summaries serialized by serializeSummaries into \p A, merging
/// over its current cache.  Returns false — leaving \p A untouched — on
/// a malformed buffer, a version mismatch, or a fingerprint mismatch
/// with \p A's program.
bool deserializeSummaries(DynSumAnalysis &A, std::string_view Data);

/// Convenience file wrappers over the buffer API.  saveSummariesFile
/// returns false on I/O failure; loadSummariesFile on I/O failure or
/// any deserializeSummaries rejection.
bool saveSummariesFile(const DynSumAnalysis &A, const std::string &Path);
bool loadSummariesFile(DynSumAnalysis &A, const std::string &Path);

} // namespace analysis
} // namespace dynsum

#endif // DYNSUM_ANALYSIS_SUMMARYIO_H
