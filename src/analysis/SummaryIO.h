//===----------------------------------------------------------------------===//
///
/// \file
/// Persistence for DYNSUM summary caches: warm starts across processes.
///
/// The paper positions DYNSUM for JIT compilers and IDEs; both restart.
/// SummaryIO lets a session serialize its dynamic summaries on shutdown
/// and a later session on the *same program* load them back, skipping
/// every PPTA recomputation for previously queried code.
///
/// Summaries are keyed by PAG nodes and field-stack ids.  On disk
/// (format v2) node references are CANONICAL: a variable node is its
/// VarId, an object node is numVars + AllocId.  In-memory numbering
/// depends on build history — a graph evolved through delta builds
/// interleaves late-created variables after object nodes — so raw node
/// ids would silently mean different nodes in the saving and loading
/// process even for byte-identical programs.  The canonical form
/// depends only on the program, whose analysis-relevant shape is
/// fingerprinted into the byte stream: loads onto a different program
/// are rejected, never silently wrong.  (Field stacks are spelled out
/// and re-interned on load for the same reason.)
///
/// Format (little-endian): magic "DSUM", u32 version, u64 fingerprint,
/// u64 entry count, u64 header checksum, then per entry a length- and
/// checksum-framed record holding the key triple with the field stack
/// spelled out element by element, the object list, and the boundary
/// tuples (again with explicit stacks).  The framing (new in v3) makes
/// loads corruption-tolerant: a record whose checksum fails is skipped
/// and reported, a truncated tail stops the scan — everything before
/// the damage still loads.  Since every summary is an independent
/// cache entry, a partial load is sound; it just warms less.  The
/// byte-exact layout — and the versioning rules, including why the
/// engine's in-memory store generation is deliberately *not* a field —
/// is specified in docs/SUMMARY_FORMAT.md; any layout change must bump
/// kSummaryFileVersion in lockstep with that document.
///
/// saveSummariesFile is crash-safe: the bytes go to a temp file that is
/// fsync'd and atomically renamed over the target, so a crash (or
/// kill -9) at any instant leaves either the old file or the new one,
/// never a torn mix.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ANALYSIS_SUMMARYIO_H
#define DYNSUM_ANALYSIS_SUMMARYIO_H

#include "analysis/DynSum.h"
#include "support/Hashing.h"
#include "support/MappedFile.h"

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dynsum {
namespace analysis {

/// On-disk format tag ("DSUM" little-endian) and version.  Bump the
/// version for any layout change and record it in
/// docs/SUMMARY_FORMAT.md.
constexpr uint32_t kSummaryFileMagic = 0x4d555344;
/// v2: node references are canonical (VarId | numVars + AllocId)
/// instead of raw in-memory node ids, which stopped being a pure
/// function of the program when delta builds arrived.
/// v3: header checksum plus per-entry length/checksum framing so loads
/// degrade per record instead of all-or-nothing.  v2 files still load
/// (with v2's strict all-or-nothing semantics).
constexpr uint32_t kSummaryFileVersion = 3;
/// Tag of the optional digest-index section appended after the last v3
/// record ("DIDX" little-endian).  The index is NOT a format bump: the
/// v3 streaming loader reads exactly the header's record count and
/// ignores trailing bytes, so indexed files load everywhere v3 files
/// do.  The index only accelerates MappedSummaryFile; when it is
/// missing or damaged the reader rebuilds it by scanning the record
/// frames.  Layout in docs/SUMMARY_FORMAT.md (digest-index appendix).
constexpr uint32_t kSummaryIndexMagic = 0x58444944;

/// What a load actually did.  Header-level damage (bad magic, unknown
/// version, wrong fingerprint, corrupt header) fails the whole load:
/// Ok is false, Error says why, nothing was merged.  Record-level
/// damage degrades instead: Ok stays true, the intact prefix/suffix of
/// records is merged, and RecordsSkipped / Truncated / SkippedRecords
/// describe what was lost.
struct SummaryLoadReport {
  bool Ok = false;
  /// Summary entries merged into the analysis.
  uint64_t EntriesLoaded = 0;
  /// v3 records dropped for a checksum or payload-parse failure.
  uint64_t RecordsSkipped = 0;
  /// The file ended mid-record; everything before the tear loaded.
  bool Truncated = false;
  /// Why Ok is false, or a note about partial damage.
  std::string Error;
  /// Human-readable description of each skipped record (best-effort
  /// method attribution from the damaged payload), capped to the first
  /// few for bounded reports.
  std::vector<std::string> SkippedRecords;
};

/// A stable fingerprint of everything about \p P the analyses can
/// observe: the class hierarchy, methods, variables, allocation/call
/// sites and every statement.  Two programs with equal fingerprints
/// build identical PAGs.
uint64_t programFingerprint(const ir::Program &P);

/// Serializes \p A's summary cache (tagged with its program's
/// fingerprint) into a byte buffer.
std::string serializeSummaries(const DynSumAnalysis &A);

/// Loads summaries serialized by serializeSummaries into \p A, merging
/// over its current cache, and reports exactly what happened.  Header
/// damage merges nothing (Ok false, Error set); v3 record damage is
/// skipped per record (Ok true, counters set).  v2 buffers keep their
/// historical all-or-nothing contract.
SummaryLoadReport deserializeSummariesReport(DynSumAnalysis &A,
                                             std::string_view Data);

/// Boolean convenience over deserializeSummariesReport: true iff the
/// header was accepted (a degraded-but-partial v3 load still counts).
bool deserializeSummaries(DynSumAnalysis &A, std::string_view Data);

/// Convenience file wrappers over the buffer API.  saveSummariesFile
/// writes atomically (temp file + fsync + rename) and returns false on
/// I/O failure with the previous file intact; loadSummariesFile
/// returns false on I/O failure or a header rejection.
bool saveSummariesFile(const DynSumAnalysis &A, const std::string &Path);
bool loadSummariesFile(DynSumAnalysis &A, const std::string &Path);

/// File wrapper that surfaces the full per-record load report; an
/// unreadable file reports Ok false with Error set.
SummaryLoadReport loadSummariesFileReport(DynSumAnalysis &A,
                                          const std::string &Path);

//===----------------------------------------------------------------------===//
// Memory-mapped random access (the summary disk tier)
//===----------------------------------------------------------------------===//

/// Digest of one canonical summary key — the hash the on-disk digest
/// index is sorted by and the disk-tier probe recomputes.  Canonical
/// node references only (VarId | numVars + AllocId): the digest must be
/// a pure function of the program-level key, independent of any
/// process's node numbering.
inline uint64_t summaryRecordDigest(uint32_t CanonicalNode, RsmState S,
                                    const std::vector<uint32_t> &Fields) {
  uint64_t H = hashMix(packPair(CanonicalNode, uint32_t(S)));
  for (uint32_t F : Fields)
    H = hashCombine(H, F);
  return H;
}

/// One summary record decoded straight from the mapped file, still in
/// canonical node references.  The caller (the store's disk tier) owns
/// the canonical-to-node translation, because only it knows which
/// graph the summary is being promoted into.
struct DecodedSummaryRecord {
  uint32_t CanonicalNode = 0;
  RsmState State = RsmState::S1;
  std::vector<uint32_t> Fields;
  std::vector<ir::AllocId> Objects;
  struct Tuple {
    uint32_t CanonicalNode = 0;
    RsmState State = RsmState::S1;
    uint32_t FieldsLen = 0;
  };
  std::vector<Tuple> Tuples;
  /// Tuple field stacks, concatenated in tuple order (PortableSummary
  /// layout).
  std::vector<uint32_t> FieldData;
};

/// Read-only random access into one v3 .dsum file through an mmap
/// (support::MappedFile), keyed by the digest index.
///
/// open() validates the header exactly like the streaming loader (magic,
/// version, fingerprint, header checksum — any failure rejects the
/// file), then locates the digest index from the trailing footer.  A
/// missing or damaged index is NOT a rejection: the reader falls back
/// to scanning the record frames and indexing them itself, which is
/// how pre-index v3 files (and files with a torn-off tail) stay
/// servable.
///
/// find() is the probe: one O(1) digest-table chain walk, decoding
/// candidate records until one's exact key matches.  Record payloads are
/// checksummed lazily — on the first probe that touches them, not at
/// open — and a record that fails its CRC (or parses out of bounds) is
/// remembered as dead and reported as a miss forever after: corruption
/// degrades to cold recomputation, never to a crash or a damaged
/// summary.
///
/// Thread safety: find() may be called from any number of threads
/// concurrently (the lazy validation verdicts are atomics; the mapping
/// is immutable).  open() must complete before the first find().
class MappedSummaryFile {
public:
  /// Opens and validates \p Path.  Null on rejection with \p Error set:
  /// unreadable file, bad magic/version (only v3 has the per-record
  /// framing random access needs), header checksum mismatch, or a
  /// fingerprint differing from \p ExpectedFingerprint.  \p NumVars /
  /// \p NumAllocs bound the canonical references a valid record may
  /// contain (the opening program's shape).
  static std::unique_ptr<MappedSummaryFile>
  open(const std::string &Path, uint64_t ExpectedFingerprint, size_t NumVars,
       size_t NumAllocs, std::string *Error = nullptr);

  /// Probes for the exact canonical key; true with \p Out filled on a
  /// hit.  A damaged record is a miss (counted in corruptRecords()).
  /// \p Out doubles as decode scratch — candidates are decoded into it
  /// and its capacity is reused across probes, so after a miss its
  /// contents are unspecified.
  bool find(uint32_t CanonicalNode, RsmState S,
            const std::vector<uint32_t> &Fields,
            DecodedSummaryRecord &Out) const;

  /// The serving-path variant of find(): decodes the matching record's
  /// BODY straight into a portable summary, materializing nothing else.
  /// \p Digest must be summaryRecordDigest of the key — the caller
  /// computes it up front (so it can prefetch() while other work is in
  /// flight) and this probe reuses it.  The key fields are compared
  /// element-by-element against \p Fields during the parse (no key
  /// vector is built), and tuple nodes are left CANONICAL for the
  /// caller to translate in place — objects and field runs are
  /// process-independent already.  Damage semantics match find(): a
  /// corrupt record is remembered dead and reported as a miss; \p Out
  /// doubles as scratch, contents unspecified on a miss.
  bool findBody(uint64_t Digest, uint32_t CanonicalNode, RsmState S,
                const std::vector<uint32_t> &Fields,
                PortableSummary &Out) const;

  /// Starts pulling the digest-table line for \p Digest toward the
  /// cache.  The serving path calls this before its hot-tier lookup:
  /// by the time that lookup misses, the table entry — the first of
  /// the probe's dependent memory loads — is already on its way.
  void prefetch(uint64_t Digest) const {
#if defined(__GNUC__)
    if (!HashTable.empty())
      __builtin_prefetch(&HashTable[size_t(Digest) & HashMask]);
#else
    (void)Digest;
#endif
  }

  /// Settles every record's lazy verdict up front: streams each
  /// payload's checksum once and marks the record valid or dead, so
  /// subsequent probes never pay a CRC.  Laziness is the right default
  /// for a file opened ad hoc — most records are never probed — but a
  /// long-lived serving tier probes most of the file anyway, and paying
  /// the checksums during (untimed, once-per-restart) attach instead of
  /// on the first batch's critical path is a pure win there.  Returns
  /// the number of records marked dead.  Call before the first
  /// concurrent find(); safe to skip entirely (probes then validate
  /// lazily as documented above).
  uint64_t validateAll();

  /// Records reachable through the index (intact prefix for a torn
  /// file).
  size_t records() const { return Index.size(); }

  /// True when the on-disk digest index was present and valid; false
  /// means the open fell back to a frame scan.
  bool indexedOnOpen() const { return IndexFromFooter; }

  /// Records rejected so far by the lazy CRC/parse validation.
  uint64_t corruptRecords() const {
    return Corrupt.load(std::memory_order_relaxed);
  }

private:
  MappedSummaryFile() = default;

  struct IndexEntry {
    uint64_t Digest = 0;
    uint64_t Offset = 0; ///< record frame (length field) from file start
  };

  /// Decodes and validates the record at \p Slot; false on damage.
  bool decodeSlot(size_t Slot, DecodedSummaryRecord &Out) const;

  support::MappedFile Map;
  std::vector<IndexEntry> Index; ///< sorted by Digest
  /// Open-addressing acceleration over Index: digest low bits pick the
  /// home slot, linear probing, an all-ones Offset marks empties.  The
  /// digest, record offset, and slot number live IN the table entry, so
  /// the common probe (chain length 1) resolves a record from a single
  /// cache-line load — separate slot->index->offset indirections cost a
  /// dependent miss each at serving rates.  Sized to twice the record
  /// count (load factor <= 1/2) so chains stay O(1).
  struct HashEntry {
    uint64_t Digest = 0;
    uint64_t Offset = kNoEntry; ///< record frame, or kNoEntry if empty
    uint32_t Slot = 0;          ///< position in Index / Verdict
  };
  static constexpr uint64_t kNoEntry = ~0ull;
  std::vector<HashEntry> HashTable;
  size_t HashMask = 0;
  /// Set by validateAll() when every record checked out: probes then
  /// skip the per-record verdict load entirely.
  bool AllValid = false;
  /// Lazy per-record verdicts: 0 = unchecked, 1 = valid, 2 = dead.
  std::unique_ptr<std::atomic<uint8_t>[]> Verdict;
  mutable std::atomic<uint64_t> Corrupt{0};
  size_t NumVars = 0;
  size_t NumAllocs = 0;
  bool IndexFromFooter = false;
};

} // namespace analysis
} // namespace dynsum

#endif // DYNSUM_ANALYSIS_SUMMARYIO_H
