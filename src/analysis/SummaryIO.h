//===----------------------------------------------------------------------===//
///
/// \file
/// Persistence for DYNSUM summary caches: warm starts across processes.
///
/// The paper positions DYNSUM for JIT compilers and IDEs; both restart.
/// SummaryIO lets a session serialize its dynamic summaries on shutdown
/// and a later session on the *same program* load them back, skipping
/// every PPTA recomputation for previously queried code.
///
/// Summaries are keyed by PAG node ids and field-stack ids; both are
/// deterministic functions of the program (node numbering) and of the
/// stack contents (re-interned on load), so the only safety requirement
/// is that the loading session analyzes an identical program.  That is
/// enforced with a fingerprint of the program's analysis-relevant shape
/// embedded in the byte stream: loads onto a different program are
/// rejected, never silently wrong.
///
/// Format (little-endian): magic "DSUM", u32 version, u64 fingerprint,
/// u64 entry count, then per entry the key triple with the field stack
/// spelled out element by element, the object list, and the boundary
/// tuples (again with explicit stacks).  The byte-exact layout — and
/// the versioning rules, including why the engine's in-memory store
/// generation is deliberately *not* a field — is specified in
/// docs/SUMMARY_FORMAT.md; any layout change must bump
/// kSummaryFileVersion in lockstep with that document.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ANALYSIS_SUMMARYIO_H
#define DYNSUM_ANALYSIS_SUMMARYIO_H

#include "analysis/DynSum.h"

#include <string>
#include <string_view>

namespace dynsum {
namespace analysis {

/// On-disk format tag ("DSUM" little-endian) and version.  Bump the
/// version for any layout change and record it in
/// docs/SUMMARY_FORMAT.md.
constexpr uint32_t kSummaryFileMagic = 0x4d555344;
constexpr uint32_t kSummaryFileVersion = 1;

/// A stable fingerprint of everything about \p P the analyses can
/// observe: the class hierarchy, methods, variables, allocation/call
/// sites and every statement.  Two programs with equal fingerprints
/// build identical PAGs.
uint64_t programFingerprint(const ir::Program &P);

/// Serializes \p A's summary cache (tagged with its program's
/// fingerprint) into a byte buffer.
std::string serializeSummaries(const DynSumAnalysis &A);

/// Loads summaries serialized by serializeSummaries into \p A, merging
/// over its current cache.  Returns false — leaving \p A untouched — on
/// a malformed buffer, a version mismatch, or a fingerprint mismatch
/// with \p A's program.
bool deserializeSummaries(DynSumAnalysis &A, std::string_view Data);

/// Convenience file wrappers over the buffer API.  saveSummariesFile
/// returns false on I/O failure; loadSummariesFile on I/O failure or
/// any deserializeSummaries rejection.
bool saveSummariesFile(const DynSumAnalysis &A, const std::string &Path);
bool loadSummariesFile(DynSumAnalysis &A, const std::string &Path);

} // namespace analysis
} // namespace dynsum

#endif // DYNSUM_ANALYSIS_SUMMARYIO_H
