//===----------------------------------------------------------------------===//
///
/// \file
/// Persistence for DYNSUM summary caches: warm starts across processes.
///
/// The paper positions DYNSUM for JIT compilers and IDEs; both restart.
/// SummaryIO lets a session serialize its dynamic summaries on shutdown
/// and a later session on the *same program* load them back, skipping
/// every PPTA recomputation for previously queried code.
///
/// Summaries are keyed by PAG nodes and field-stack ids.  On disk
/// (format v2) node references are CANONICAL: a variable node is its
/// VarId, an object node is numVars + AllocId.  In-memory numbering
/// depends on build history — a graph evolved through delta builds
/// interleaves late-created variables after object nodes — so raw node
/// ids would silently mean different nodes in the saving and loading
/// process even for byte-identical programs.  The canonical form
/// depends only on the program, whose analysis-relevant shape is
/// fingerprinted into the byte stream: loads onto a different program
/// are rejected, never silently wrong.  (Field stacks are spelled out
/// and re-interned on load for the same reason.)
///
/// Format (little-endian): magic "DSUM", u32 version, u64 fingerprint,
/// u64 entry count, u64 header checksum, then per entry a length- and
/// checksum-framed record holding the key triple with the field stack
/// spelled out element by element, the object list, and the boundary
/// tuples (again with explicit stacks).  The framing (new in v3) makes
/// loads corruption-tolerant: a record whose checksum fails is skipped
/// and reported, a truncated tail stops the scan — everything before
/// the damage still loads.  Since every summary is an independent
/// cache entry, a partial load is sound; it just warms less.  The
/// byte-exact layout — and the versioning rules, including why the
/// engine's in-memory store generation is deliberately *not* a field —
/// is specified in docs/SUMMARY_FORMAT.md; any layout change must bump
/// kSummaryFileVersion in lockstep with that document.
///
/// saveSummariesFile is crash-safe: the bytes go to a temp file that is
/// fsync'd and atomically renamed over the target, so a crash (or
/// kill -9) at any instant leaves either the old file or the new one,
/// never a torn mix.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ANALYSIS_SUMMARYIO_H
#define DYNSUM_ANALYSIS_SUMMARYIO_H

#include "analysis/DynSum.h"

#include <string>
#include <string_view>
#include <vector>

namespace dynsum {
namespace analysis {

/// On-disk format tag ("DSUM" little-endian) and version.  Bump the
/// version for any layout change and record it in
/// docs/SUMMARY_FORMAT.md.
constexpr uint32_t kSummaryFileMagic = 0x4d555344;
/// v2: node references are canonical (VarId | numVars + AllocId)
/// instead of raw in-memory node ids, which stopped being a pure
/// function of the program when delta builds arrived.
/// v3: header checksum plus per-entry length/checksum framing so loads
/// degrade per record instead of all-or-nothing.  v2 files still load
/// (with v2's strict all-or-nothing semantics).
constexpr uint32_t kSummaryFileVersion = 3;

/// What a load actually did.  Header-level damage (bad magic, unknown
/// version, wrong fingerprint, corrupt header) fails the whole load:
/// Ok is false, Error says why, nothing was merged.  Record-level
/// damage degrades instead: Ok stays true, the intact prefix/suffix of
/// records is merged, and RecordsSkipped / Truncated / SkippedRecords
/// describe what was lost.
struct SummaryLoadReport {
  bool Ok = false;
  /// Summary entries merged into the analysis.
  uint64_t EntriesLoaded = 0;
  /// v3 records dropped for a checksum or payload-parse failure.
  uint64_t RecordsSkipped = 0;
  /// The file ended mid-record; everything before the tear loaded.
  bool Truncated = false;
  /// Why Ok is false, or a note about partial damage.
  std::string Error;
  /// Human-readable description of each skipped record (best-effort
  /// method attribution from the damaged payload), capped to the first
  /// few for bounded reports.
  std::vector<std::string> SkippedRecords;
};

/// A stable fingerprint of everything about \p P the analyses can
/// observe: the class hierarchy, methods, variables, allocation/call
/// sites and every statement.  Two programs with equal fingerprints
/// build identical PAGs.
uint64_t programFingerprint(const ir::Program &P);

/// Serializes \p A's summary cache (tagged with its program's
/// fingerprint) into a byte buffer.
std::string serializeSummaries(const DynSumAnalysis &A);

/// Loads summaries serialized by serializeSummaries into \p A, merging
/// over its current cache, and reports exactly what happened.  Header
/// damage merges nothing (Ok false, Error set); v3 record damage is
/// skipped per record (Ok true, counters set).  v2 buffers keep their
/// historical all-or-nothing contract.
SummaryLoadReport deserializeSummariesReport(DynSumAnalysis &A,
                                             std::string_view Data);

/// Boolean convenience over deserializeSummariesReport: true iff the
/// header was accepted (a degraded-but-partial v3 load still counts).
bool deserializeSummaries(DynSumAnalysis &A, std::string_view Data);

/// Convenience file wrappers over the buffer API.  saveSummariesFile
/// writes atomically (temp file + fsync + rename) and returns false on
/// I/O failure with the previous file intact; loadSummariesFile
/// returns false on I/O failure or a header rejection.
bool saveSummariesFile(const DynSumAnalysis &A, const std::string &Path);
bool loadSummariesFile(DynSumAnalysis &A, const std::string &Path);

/// File wrapper that surfaces the full per-record load report; an
/// unreadable file reports Ok false with Error set.
SummaryLoadReport loadSummariesFileReport(DynSumAnalysis &A,
                                          const std::string &Path);

} // namespace analysis
} // namespace dynsum

#endif // DYNSUM_ANALYSIS_SUMMARYIO_H
