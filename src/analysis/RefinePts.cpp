//===----------------------------------------------------------------------===//
///
/// \file
/// REFINEPTS / NOREFINE implementation.
///
/// Edge-orientation reminder (PAG.h pins the storage direction; the
/// paper's listings write the inverse):
///   pointsTo (S1/backward) walks a node's IN edges;
///   flowsTo  (S2/forward)  walks a node's OUT edges.
///
//===----------------------------------------------------------------------===//

#include "analysis/RefinePts.h"

#include "support/Debug.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::pag;

void RefinePtsAnalysis::mergeInto(ObjSet &Dst, const ObjSet &Src) {
  for (const PtsTarget &T : Src)
    if (std::find(Dst.begin(), Dst.end(), T) == Dst.end())
      Dst.push_back(T);
}

void RefinePtsAnalysis::mergeInto(VarSet &Dst, const VarSet &Src) {
  for (const VarCtx &V : Src) {
    bool Present = false;
    for (const VarCtx &Existing : Dst)
      Present |= Existing.Node == V.Node && Existing.Ctx == V.Ctx;
    if (!Present)
      Dst.push_back(V);
  }
}

QueryResult RefinePtsAnalysis::query(NodeId V,
                                     const ClientPredicate &SatisfyClient) {
  assert(!Graph.isObject(V) && "points-to query on an object node");
  FldsToRefine.clear();
  LastIterations = 0;
  uint64_t TotalSteps = 0;

  // One traversal budget for the whole query, spanning every refinement
  // pass (Section 5.2: at most 75,000 edges per points-to query).
  Budget B(Opts.BudgetPerQuery, Opts.Deadline);
  QueryResult Result;
  for (unsigned Iter = 0; Iter < Opts.MaxRefineIterations; ++Iter) {
    ++LastIterations;
    Stats.add("refine.passes");
    uint64_t StepsBefore = B.used();
    ObjSet Pts = runPass(V, B);
    TotalSteps += B.used() - StepsBefore;

    Result = QueryResult();
    Result.Targets = std::move(Pts);
    Result.BudgetExceeded = B.exceeded();
    Result.Status = B.status();
    Result.Steps = TotalSteps;
    Result.canonicalize();

    if (SatisfyClient && SatisfyClient(Result))
      return Result; // client satisfied; stop refining (Alg. 2 line 30)
    if (!Refinement)
      return Result; // NOREFINE: single fully-refined pass
    if (FldsSeen.empty())
      return Result; // nothing left to refine (Alg. 2 lines 32-33)
    if (Result.BudgetExceeded)
      return Result; // out of budget: conservative answer
    // Refine every match edge encountered (Alg. 2 line 35).
    FldsToRefine.orInPlace(FldsSeen);
  }
  return Result;
}

RefinePtsAnalysis::ObjSet RefinePtsAnalysis::runPass(NodeId V, Budget &B) {
  FldsSeen.clear();
  BackCache.clear();
  FwdCache.clear();
  ActiveBack.clear();
  ActiveFwd.clear();
  CycleDependent = false;
  return sbPointsTo(V, StackPool::empty(), B);
}

//===----------------------------------------------------------------------===//
// Algorithm 1: SBPOINTSTO
//===----------------------------------------------------------------------===//

RefinePtsAnalysis::ObjSet RefinePtsAnalysis::sbPointsTo(NodeId V, StackId Ctx,
                                                        Budget &B) {
  ObjSet Pts;
  if (B.exceeded())
    return Pts;

  uint64_t Key = packPair(V, Ctx.Id);
  if (Refinement && Opts.EnableCache) {
    auto It = BackCache.find(Key);
    if (It != BackCache.end()) {
      Stats.add("refine.cacheHits");
      return It->second;
    }
  }
  if (!ActiveBack.insert(Key).second) {
    // Points-to cycle: do not re-traverse (visited flags, Section 5.1).
    CycleDependent = true;
    return Pts;
  }
  bool WasCycleDependent = CycleDependent;
  CycleDependent = false;

  for (EdgeId EId : Graph.inEdges(V)) {
    if (!B.consume())
      break;
    const Edge &E = Graph.edge(EId);
    switch (E.Kind) {
    case EdgeKind::New:
      // Alg. 1 lines 2-3, with the context recorded for heap cloning.
      Pts.push_back(PtsTarget{Graph.allocOf(E.Src), Ctx});
      break;
    case EdgeKind::Assign:
      // Alg. 1 lines 4-5.
      mergeInto(Pts, sbPointsTo(E.Src, Ctx, B));
      break;
    case EdgeKind::AssignGlobal:
      // Alg. 1 lines 6-7: globals are context-insensitive.
      mergeInto(Pts, sbPointsTo(E.Src, StackPool::empty(), B));
      break;
    case EdgeKind::Exit:
      // Alg. 1 lines 8-9: walking backwards into the callee pushes the
      // call site.  Recursion-collapsed edges keep the context.
      mergeInto(Pts, sbPointsTo(E.Src,
                                E.ContextFree ? Ctx
                                              : Contexts.push(Ctx, E.Aux),
                                B));
      break;
    case EdgeKind::Entry:
      // Alg. 1 lines 10-12: walking backwards to the caller pops when
      // the top matches, or continues from the empty (unbalanced) stack.
      if (E.ContextFree) {
        mergeInto(Pts, sbPointsTo(E.Src, Ctx, B));
      } else if (Ctx.isEmpty()) {
        mergeInto(Pts, sbPointsTo(E.Src, StackPool::empty(), B));
      } else if (Contexts.peek(Ctx) == E.Aux) {
        mergeInto(Pts, sbPointsTo(E.Src, Contexts.pop(Ctx), B));
      }
      break;
    case EdgeKind::Load: {
      // E: base --load(f)--> V, i.e. V = base.f.  Alg. 1 lines 13-24.
      NodeId LoadBase = E.Src;
      ir::FieldId F = E.Aux;
      if (!FldsToRefine.test(EId) && Refinement) {
        // Field-based: cross the artificial match edge to every value
        // stored into any .f, clearing the context (lines 15-17).
        FldsSeen.set(EId);
        for (EdgeId SId : Graph.storesOfField(F)) {
          if (!B.consume())
            break;
          mergeInto(Pts, sbPointsTo(Graph.edge(SId).Src,
                                    StackPool::empty(), B));
        }
        break;
      }
      // Field-sensitive: find aliases of the load's base (lines 19-24).
      ObjSet BaseObjs = sbPointsTo(LoadBase, Ctx, B);
      VarSet Aliases;
      for (const PtsTarget &O : BaseObjs) {
        if (B.exceeded())
          break;
        mergeInto(Aliases,
                  sbFlowsTo(Graph.nodeOfAlloc(O.Alloc), O.Context, B));
      }
      for (const VarCtx &R : Aliases) {
        if (B.exceeded())
          break;
        // Stores q.f = p with q == R.Node: continue from the stored
        // value under the alias's context (line 24).  The CSR kind
        // partition hands us exactly the store edges.
        for (EdgeId SId : Graph.inEdgesOfKind(R.Node, EdgeKind::Store)) {
          const Edge &SE = Graph.edge(SId);
          if (SE.Aux != F)
            continue;
          if (!B.consume())
            break;
          mergeInto(Pts, sbPointsTo(SE.Src, R.Ctx, B));
        }
      }
      break;
    }
    case EdgeKind::Store:
      // An incoming store edge means V is a stored *value*'s target
      // base; irrelevant when walking flowsTo-bar.
      break;
    }
    if (B.exceeded())
      break;
  }

  ActiveBack.erase(Key);
  bool Complete = !CycleDependent && !B.exceeded();
  if (Refinement && Opts.EnableCache && Complete)
    BackCache.emplace(Key, Pts);
  CycleDependent |= WasCycleDependent;
  return Pts;
}

//===----------------------------------------------------------------------===//
// SBFLOWSTO (the omitted "inverse" of Algorithm 1)
//===----------------------------------------------------------------------===//

RefinePtsAnalysis::VarSet RefinePtsAnalysis::sbFlowsTo(NodeId O, StackId Ctx,
                                                       Budget &B) {
  assert(Graph.isObject(O) && "sbFlowsTo starts from an object");
  VarSet Out;
  for (EdgeId EId : Graph.outEdges(O)) {
    if (!B.consume())
      break;
    const Edge &E = Graph.edge(EId);
    assert(E.Kind == EdgeKind::New && "objects only have new out-edges");
    mergeInto(Out, fwdFlowsTo(E.Dst, Ctx, B));
  }
  return Out;
}

RefinePtsAnalysis::VarSet RefinePtsAnalysis::fwdFlowsTo(NodeId V, StackId Ctx,
                                                        Budget &B) {
  VarSet Out;
  if (B.exceeded())
    return Out;

  uint64_t Key = packPair(V, Ctx.Id);
  if (Refinement && Opts.EnableCache) {
    auto It = FwdCache.find(Key);
    if (It != FwdCache.end()) {
      Stats.add("refine.cacheHits");
      return It->second;
    }
  }
  if (!ActiveFwd.insert(Key).second) {
    CycleDependent = true;
    return Out;
  }
  bool WasCycleDependent = CycleDependent;
  CycleDependent = false;

  Out.push_back(VarCtx{V, Ctx});
  for (EdgeId EId : Graph.outEdges(V)) {
    if (!B.consume())
      break;
    const Edge &E = Graph.edge(EId);
    switch (E.Kind) {
    case EdgeKind::Assign:
      mergeInto(Out, fwdFlowsTo(E.Dst, Ctx, B));
      break;
    case EdgeKind::AssignGlobal:
      mergeInto(Out, fwdFlowsTo(E.Dst, StackPool::empty(), B));
      break;
    case EdgeKind::Entry:
      // Forwards into the callee: push the site.
      mergeInto(Out, fwdFlowsTo(E.Dst,
                                E.ContextFree ? Ctx
                                              : Contexts.push(Ctx, E.Aux),
                                B));
      break;
    case EdgeKind::Exit:
      // Forwards back to the caller: pop on match / unbalanced empty.
      if (E.ContextFree) {
        mergeInto(Out, fwdFlowsTo(E.Dst, Ctx, B));
      } else if (Ctx.isEmpty()) {
        mergeInto(Out, fwdFlowsTo(E.Dst, StackPool::empty(), B));
      } else if (Contexts.peek(Ctx) == E.Aux) {
        mergeInto(Out, fwdFlowsTo(E.Dst, Contexts.pop(Ctx), B));
      }
      break;
    case EdgeKind::Store: {
      // V --store(f)--> StoreBase: the tracked object is stored into
      // StoreBase.f; it continues to every load of .f whose base
      // aliases StoreBase.
      NodeId StoreBase = E.Dst;
      ir::FieldId F = E.Aux;
      VarSet BaseAliases; // lazily computed on first refined load edge
      bool AliasesReady = false;
      for (EdgeId LId : Graph.loadsOfField(F)) {
        if (!B.consume())
          break;
        const Edge &LE = Graph.edge(LId);
        if (!FldsToRefine.test(LId) && Refinement) {
          // Field-based match edge: jump straight to the loaded var.
          FldsSeen.set(LId);
          mergeInto(Out, fwdFlowsTo(LE.Dst, StackPool::empty(), B));
          continue;
        }
        if (!AliasesReady) {
          AliasesReady = true;
          ObjSet BaseObjs = sbPointsTo(StoreBase, Ctx, B);
          for (const PtsTarget &O : BaseObjs) {
            if (B.exceeded())
              break;
            mergeInto(BaseAliases,
                      sbFlowsTo(Graph.nodeOfAlloc(O.Alloc), O.Context, B));
          }
        }
        for (const VarCtx &R : BaseAliases)
          if (R.Node == LE.Src)
            mergeInto(Out, fwdFlowsTo(LE.Dst, R.Ctx, B));
      }
      break;
    }
    case EdgeKind::Load:
      // V is the base of a load; the object in V does not flow through.
      break;
    case EdgeKind::New:
      unreachable("new edge out of a variable node");
    }
    if (B.exceeded())
      break;
  }

  ActiveFwd.erase(Key);
  bool Complete = !CycleDependent && !B.exceeded();
  if (Refinement && Opts.EnableCache && Complete)
    FwdCache.emplace(Key, Out);
  CycleDependent |= WasCycleDependent;
  return Out;
}
