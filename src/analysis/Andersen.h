//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive Andersen-style (inclusion-based) points-to analysis.
///
/// Context-insensitive and field-sensitive.  Three roles in this repo:
///  * ground-truth over-approximation oracle in the test suite (every
///    demand-driven context-sensitive answer must be a subset);
///  * call-graph construction, standing in for Spark's on-the-fly
///    Andersen analysis (see AndersenTargetResolver);
///  * the conservative fallback answer for budget-exceeded queries.
///
/// The solver runs serial or sharded-parallel (see Threads below); the
/// parallel solve reaches the same least fixpoint, so points-to sets
/// are bit-identical at every thread count (fuzz-oracle-enforced in
/// tests/andersen_parallel_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ANALYSIS_ANDERSEN_H
#define DYNSUM_ANALYSIS_ANDERSEN_H

#include "analysis/Query.h"
#include "pag/CallGraph.h"
#include "pag/PAGBuilder.h"
#include "support/BitVector.h"
#include "support/FlatSet.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace dynsum {
namespace analysis {

/// Which container backs the solver's points-to sets.  Hybrid is the
/// default everywhere; Dense keeps the seed BitVector representation
/// alive as an in-run A/B baseline for benches and equivalence tests
/// (Dense always solves serially).
enum class PtsRep { Hybrid, Dense };

/// Whole-program inclusion-based solver over a finalized PAG.
class AndersenAnalysis {
public:
  /// \p Threads > 1 selects the sharded bulk-synchronous solver
  /// (0 = one worker per hardware thread).  Results are identical at
  /// every thread count.
  explicit AndersenAnalysis(const pag::PAG &G, unsigned Threads = 1,
                            PtsRep Rep = PtsRep::Hybrid);

  /// Runs to fixpoint.  Idempotent.
  void solve();

  /// Allocation sites in pts(V); sorted.  Requires solve().
  std::vector<ir::AllocId> allocSites(pag::NodeId V) const;

  /// True when \p V may point to \p A.
  bool pointsTo(pag::NodeId V, ir::AllocId A) const;

  /// Allocation sites in the field pts of (object \p A).\p F; sorted.
  std::vector<ir::AllocId> fieldAllocSites(ir::AllocId A,
                                           ir::FieldId F) const;

  /// Number of solver propagation rounds performed (for tests/benches).
  uint64_t propagationCount() const { return Propagations; }

private:
  template <class SetVec> void solveSerial(SetVec &P);
  void solveParallel();

  /// Adds a dynamic copy edge Src -> Dst; returns true when new.
  /// Membership is a hashed edge set, not a linear fan-out scan.
  bool addCopy(uint32_t Src, uint32_t Dst);

  const pag::PAG &Graph;
  size_t NumAllocs;
  unsigned NumThreads;
  PtsRep Rep;
  bool Solved = false;
  uint64_t Propagations = 0;

  /// Extended node space: variable nodes first, then one node per
  /// touched (object, field) pair, created on demand.  Exactly one of
  /// Pts / DensePts is populated, selected by Rep.
  std::vector<HybridPtsSet> Pts;               // by extended node
  std::vector<BitVector> DensePts;             // Rep == Dense only
  std::vector<std::vector<uint32_t>> CopySucc; // dynamic + static copies
  FlatPairSet CopyEdges;                       // (src, dst) membership
  std::unordered_map<uint64_t, uint32_t> FieldNodes; // (A,F) -> ext node
  std::vector<std::pair<ir::AllocId, ir::FieldId>> FieldNodeKeys;
};

/// Virtual-dispatch resolver driven by Andersen points-to results: the
/// receiver's possible allocation types select the dispatch targets.
/// This reproduces the paper's "call graph ... constructed on-the-fly
/// with Andersen-style analysis by Spark".
class AndersenTargetResolver : public pag::TargetResolver {
public:
  AndersenTargetResolver(const AndersenAnalysis &A, const pag::PAG &G)
      : Andersen(A), Graph(G) {}

  std::vector<ir::MethodId> resolve(const ir::Program &P,
                                    ir::MethodId Caller,
                                    const ir::Statement &S) const override;

private:
  const AndersenAnalysis &Andersen;
  const pag::PAG &Graph;
};

/// Builds a PAG whose call graph was refined by Andersen analysis:
/// CHA-based PAG first, then up to \p Rounds rebuilds with
/// points-to-directed dispatch until the call graph stabilizes.
/// \p Threads parallelizes each whole-program solve.
pag::BuiltPAG buildPAGWithAndersenCallGraph(const ir::Program &P,
                                            unsigned Rounds = 2,
                                            unsigned Threads = 1);

} // namespace analysis
} // namespace dynsum

#endif // DYNSUM_ANALYSIS_ANDERSEN_H
