//===----------------------------------------------------------------------===//
///
/// \file
/// STASUM — static whole-program summary precomputation (Yan et al.,
/// ISSTA'11 style), reproduced for the Figure 5 comparison.
///
/// STASUM computes, offline, the PPTA summaries for *every* summary key
/// any query could ever demand: it seeds one key per (boundary node,
/// empty field stack, direction) of every method and closes the set by
/// following boundary tuples across all global edges, context-
/// insensitively (static summaries cannot depend on calling contexts).
/// DYNSUM's cache is always a subset of this closure; Figure 5 plots
/// the ratio per query batch.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ANALYSIS_STASUM_H
#define DYNSUM_ANALYSIS_STASUM_H

#include "analysis/DynSum.h"

#include <cstdint>

namespace dynsum {
namespace analysis {

struct StaSumOptions {
  /// Same cap as the dynamic analyses so key spaces are comparable.
  uint32_t MaxFieldDepth = 64;
  /// Safety valves for the offline closure (the paper notes STASUM can
  /// bound its summary count only via user-supplied heuristics; these
  /// are ours).
  uint64_t MaxSummaries = 4u * 1000 * 1000;
  uint64_t StepBudget = 200u * 1000 * 1000;
};

struct StaSumResult {
  /// Distinct summaries computed (keys over nodes that have local
  /// edges, matching what DYNSUM counts in its cache).
  uint64_t NumSummaries = 0;
  /// Summaries projected onto distinct (node, state) pairs — STASUM's
  /// own accounting unit (one all-pairs summary per boundary point);
  /// compare with DynSumAnalysis::cacheNodeStateCount().
  uint64_t NumNodeStateSummaries = 0;
  /// PPTA edge traversals spent building them.
  uint64_t Steps = 0;
  /// True when a safety valve stopped the closure early.
  bool Capped = false;
};

/// Runs the offline closure over \p G.
StaSumResult computeStaSum(const pag::PAG &G,
                           const StaSumOptions &Opts = StaSumOptions());

} // namespace analysis
} // namespace dynsum

#endif // DYNSUM_ANALYSIS_STASUM_H
