//===----------------------------------------------------------------------===//
///
/// \file
/// REFINEPTS — Sridharan & Bodík's refinement-based context-sensitive
/// demand-driven points-to analysis (the paper's Algorithms 1 and 2) —
/// and NOREFINE, its variant with neither refinement nor caching.
///
/// The analysis computes L_REFINEPTS = L_FT  intersect  RRP reachability
/// by recursive traversal: SBPOINTSTO walks flowsTo-bar paths backwards
/// from the queried variable, SBFLOWSTO walks flowsTo paths forwards
/// from objects; both track the RRP context stack.  Heap accesses start
/// field-based (match edges) and are refined per load edge across
/// iterations of the refinement loop.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ANALYSIS_REFINEPTS_H
#define DYNSUM_ANALYSIS_REFINEPTS_H

#include "analysis/DemandAnalysis.h"
#include "support/BitVector.h"
#include "support/InternedStack.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dynsum {
namespace analysis {

/// Algorithms 1 + 2.  Construct with \p Refinement = false for NOREFINE
/// (every load edge is field-sensitive from the start, no memoization,
/// a single pass).
class RefinePtsAnalysis : public DemandAnalysis {
public:
  RefinePtsAnalysis(const pag::PAG &G, const AnalysisOptions &Opts,
                    bool Refinement = true)
      : DemandAnalysis(G, Opts), Refinement(Refinement),
        FldsToRefine(G.numEdgeSlots()), FldsSeen(G.numEdgeSlots()) {}

  const char *name() const override {
    return Refinement ? "REFINEPTS" : "NOREFINE";
  }

  QueryResult query(pag::NodeId V,
                    const ClientPredicate &SatisfyClient) override;

  using DemandAnalysis::query;

  /// Refinement iterations used by the most recent query.
  unsigned lastIterations() const { return LastIterations; }

private:
  /// (alloc, context) during traversal.
  using ObjSet = std::vector<PtsTarget>;
  /// (variable node, context) — flowsTo results.
  struct VarCtx {
    pag::NodeId Node;
    StackId Ctx;
  };
  using VarSet = std::vector<VarCtx>;

  /// One refinement pass: SBPOINTSTO(v, empty) with the current
  /// fldsToRefine set.
  ObjSet runPass(pag::NodeId V, Budget &B);

  /// Algorithm 1.  Traverses backwards (flowsTo-bar).
  ObjSet sbPointsTo(pag::NodeId V, StackId Ctx, Budget &B);

  /// The "inverse" of Algorithm 1.  Traverses forwards (flowsTo) from
  /// object node \p O.
  VarSet sbFlowsTo(pag::NodeId O, StackId Ctx, Budget &B);

  /// Forward traversal from a variable that the tracked object reached.
  VarSet fwdFlowsTo(pag::NodeId V, StackId Ctx, Budget &B);

  /// Dedup helpers.
  static void mergeInto(ObjSet &Dst, const ObjSet &Src);
  static void mergeInto(VarSet &Dst, const VarSet &Src);

  bool Refinement;
  unsigned LastIterations = 0;

  //===------------------------------------------------------------------===//
  // Per-query state
  //===------------------------------------------------------------------===//

  StackPool Contexts;
  /// Load edges currently treated field-sensitively, as a hybrid set
  /// over the edge-slot universe (tiny for most queries, dense when a
  /// hot query refines wide).
  HybridPtsSet FldsToRefine;
  /// Load edges crossed field-based during the current pass.
  HybridPtsSet FldsSeen;
  /// Cycle guards: (node, ctx) active on the recursion stack, one per
  /// direction.
  std::unordered_set<uint64_t> ActiveBack, ActiveFwd;
  /// True while some recursion result depended on an active node (such
  /// results are not memoized: they are partial by cycle cutting).
  bool CycleDependent = false;
  /// Ad hoc memoization ("caching ... within a query", Section 4):
  /// fully-resolved results keyed by (node, ctx), cleared every pass.
  std::unordered_map<uint64_t, ObjSet> BackCache;
  std::unordered_map<uint64_t, VarSet> FwdCache;
};

} // namespace analysis
} // namespace dynsum

#endif // DYNSUM_ANALYSIS_REFINEPTS_H
