//===----------------------------------------------------------------------===//
///
/// \file
/// DYNSUM — the paper's contribution: context-sensitive demand-driven
/// points-to analysis with dynamic PPTA summaries (Algorithms 3 and 4).
///
/// PPTA (Partial Points-To Analysis) summarizes, per queried
/// (node, field-stack, RSM-state) triple, everything reachable along
/// *local* PAG edges only: the objects found (field-sensitively) plus
/// the boundary tuples where a *global* edge must be crossed.  Because
/// local edges never touch the calling context, a summary computed
/// under one context is valid under every context — the paper's "local
/// reachability reuse".  The worklist algorithm stitches summaries
/// across global edges while tracking the RRP context stack.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ANALYSIS_DYNSUM_H
#define DYNSUM_ANALYSIS_DYNSUM_H

#include "analysis/DemandAnalysis.h"
#include "support/FlatSet.h"
#include "support/InternedStack.h"
#include "support/SmallVector.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dynsum {
namespace analysis {

/// Direction state of the LFT RSMs in Figure 3(a).
enum class RsmState : uint8_t {
  S1, ///< traversing a flowsTo-bar path (towards allocation sites)
  S2, ///< traversing a flowsTo path (away from an allocation site)
};

/// A context-independent CFL-reachability fact: the traversal stands at
/// \p Node with pending field labels \p Fields in direction \p State.
struct PptaTuple {
  pag::NodeId Node = 0;
  StackId Fields;
  RsmState State = RsmState::S1;
};

/// The dynamic summary for one (node, field-stack, state) key.  Most
/// summaries hold only a handful of entries, and caches hold hundreds
/// of thousands of summaries, so both lists are small-size-optimized:
/// up to 4 entries live inline with no heap allocation at all.
struct PptaSummary {
  /// Objects whose new edge was reached with an empty field stack;
  /// their context is the *querying* context (supplied by Algorithm 4).
  SmallVector<ir::AllocId, 4> Objects;
  /// States at method-boundary nodes (incident to global edges) where
  /// Algorithm 4 must take over.
  SmallVector<PptaTuple, 4> Tuples;

  /// Releases growth slack before the summary enters a long-lived cache.
  void shrinkToFit() {
    Objects.shrinkToFit();
    Tuples.shrinkToFit();
  }
};

/// Packs a summary key into 64 bits: bit 0 = state, bits 1..32 = node,
/// bits 33..63 = field-stack id (field stacks stay well below 2^31).
uint64_t packSummaryKey(pag::NodeId Node, StackId Fields, RsmState S);

/// A PptaSummary in pool-independent form.  StackIds only mean
/// something inside the owning instance's StackPool, so tuple field
/// stacks are spelled out — flattened into one shared element array
/// (bottom-to-top runs, one per tuple, in tuple order) so converting
/// and copying a summary costs at most three allocations however many
/// tuples it carries.  This is the shape that crosses threads (see
/// SummaryExchange).
struct PortableSummary {
  /// One boundary tuple: its field run is the next \p FieldsLen
  /// elements of FieldData.
  struct Tuple {
    pag::NodeId Node = 0;
    RsmState State = RsmState::S1;
    uint32_t FieldsLen = 0;
  };

  std::vector<ir::AllocId> Objects;
  std::vector<Tuple> Tuples;
  std::vector<uint32_t> FieldData;
};

/// Cross-instance exchange of *complete* PPTA summaries.  A summary is a
/// deterministic function of (node, field stack, state) and the PAG —
/// never of the querying context or of who computed it — so any instance
/// analyzing the same PAG may reuse any other instance's summaries (the
/// paper's local reachability reuse, extended across analysis
/// instances).  Implementations must be safe for concurrent fetch and
/// publish; DynSumAnalysis itself stays single-threaded and only talks
/// to the exchange on local cache misses.
class SummaryExchange {
public:
  virtual ~SummaryExchange();

  /// Looks up the summary for (\p Node, \p Fields bottom-to-top, \p S);
  /// fills \p Out and returns true on a hit.  Misses are the hot case
  /// during a cold batch: implementations must not allocate on a miss.
  virtual bool fetch(pag::NodeId Node, const std::vector<uint32_t> &Fields,
                     RsmState S, PortableSummary &Out) = 0;

  /// Offers a freshly computed complete summary for reuse by others.
  /// \p Fields is taken by value so callers can move a freshly built
  /// vector straight into the store.
  virtual void publish(pag::NodeId Node, std::vector<uint32_t> Fields,
                       RsmState S, PortableSummary Summary) = 0;
};

/// Pending-field stack entries are tagged with the sub-language that
/// pushed them.  The LFT grammar pairs parentheses per sub-language:
/// a load(f)-bar push (S1, "resolve an alias's .f") may only be closed
/// by a store(f)-bar edge, and a store(f) push (S2, "the tracked object
/// went into .f") only by a forward load(f).  A single untyped stack
/// would let the two kinds cross-match and fabricate points-to targets
/// (the paper's Table 1 trace implicitly maintains this pairing).
inline uint32_t encodeLoadBarField(ir::FieldId F) { return (F << 1) | 0; }
inline uint32_t encodeStoreField(ir::FieldId F) { return (F << 1) | 1; }
inline ir::FieldId decodeField(uint32_t Encoded) { return Encoded >> 1; }

/// The reusable PPTA engine (Algorithm 3).  Shared by DYNSUM and by the
/// STASUM static summary closure.
///
/// The traversal is an explicit worklist over (node, field-stack,
/// state) frames — no recursion, so arbitrarily deep assign chains
/// cannot overflow the call stack — with a flat open-addressing
/// visited set that is epoch-cleared (not freed) between compute()
/// calls.  Edge iteration uses the PAG's kind-partitioned CSR spans,
/// one contiguous run per transition rule.
class PptaEngine {
public:
  PptaEngine(const pag::PAG &G, StackPool &FieldStacks,
             uint32_t MaxFieldDepth)
      : Graph(G), FieldStacks(FieldStacks), MaxFieldDepth(MaxFieldDepth) {}

  /// Runs DSPOINTSTO(V, F, S) with a fresh visited set, appending into
  /// \p Out.  Returns true when the computation completed within
  /// \p Budget and the field-depth cap (only complete summaries are
  /// cacheable).
  bool compute(pag::NodeId V, StackId F, RsmState S, Budget &B,
               PptaSummary &Out);

  /// Branches pruned by the field-depth k-limit so far (diagnostics).
  uint64_t depthPrunes() const { return DepthPrunes; }

private:
  /// One pending traversal state.
  struct Frame {
    pag::NodeId Node;
    StackId Fields;
    RsmState State;
  };

  /// Expands one frame: applies every Algorithm 3 rule at (V, F, S),
  /// pushing successor states not yet visited.
  void expand(pag::NodeId V, StackId F, RsmState S);

  /// Pushes (N, F, S) unless already visited this compute().
  void push(pag::NodeId N, StackId F, RsmState S) {
    if (Visited.insert(packSummaryKey(N, F, S)))
      Work.push_back(Frame{N, F, S});
  }

  const pag::PAG &Graph;
  StackPool &FieldStacks;
  uint32_t MaxFieldDepth;

  // Per-compute() state.  Work and Visited keep their storage across
  // calls (Visited clears by epoch bump); a summary computation never
  // allocates on the steady state.
  Budget *B = nullptr;
  PptaSummary *Out = nullptr;
  bool Complete = true;
  uint64_t DepthPrunes = 0;
  std::vector<Frame> Work;
  FlatU64Set Visited;
};

/// Algorithm 4 plus the summary cache.
class DynSumAnalysis : public DemandAnalysis {
public:
  DynSumAnalysis(const pag::PAG &G, const AnalysisOptions &Opts)
      : DemandAnalysis(G, Opts),
        Engine(G, FieldStacks, Opts.MaxFieldDepth) {}

  const char *name() const override { return "DYNSUM"; }

  QueryResult query(pag::NodeId V,
                    const ClientPredicate &SatisfyClient) override;

  using DemandAnalysis::query;

  /// Number of summaries currently cached (the |Cache| of Figure 5).
  size_t cacheSize() const { return Cache.size(); }

  /// Cache size projected onto distinct (node, state) pairs — the unit
  /// comparable with STASUM's per-boundary-point method summaries
  /// (STASUM's own count is per boundary point, not per pending-field
  /// configuration).
  size_t cacheNodeStateCount() const;

  /// Drops every cached summary.
  void clearCache() { Cache.clear(); }

  /// Drops only the summaries of nodes owned by \p M — the IDE/JIT
  /// "method was edited" scenario the paper motivates (an extension;
  /// the paper recomputes naturally because summaries are demand-built).
  /// Passing ir::kNone drops the summaries keyed at unowned nodes
  /// (globals and the null object).
  void invalidateMethod(ir::MethodId M);

  /// Drops the trivial-summary memo (Section 4.3 shortcut summaries for
  /// boundary nodes without local edges).  Commits call this: the memo
  /// keys boundary flags a rebuild may have changed, and unlike the
  /// real cache it carries no per-method ownership to diff against.
  /// PAG node ids themselves are stable across delta builds, so the
  /// summary cache proper never needs rewriting.
  void clearTrivialMemo();

  /// Access to the interned field-stack pool (tests, SummaryIO).
  StackPool &fieldStacks() { return FieldStacks; }
  const StackPool &fieldStacks() const { return FieldStacks; }

  /// Read access to the summary cache (SummaryIO serialization).
  const std::unordered_map<uint64_t, PptaSummary> &summaryCache() const {
    return Cache;
  }

  /// Installs a summary for (\p Node, \p Fields, \p S), overwriting any
  /// existing entry.  \p Fields must come from this instance's
  /// fieldStacks() pool (SummaryIO re-interns on load).
  void insertSummary(pag::NodeId Node, StackId Fields, RsmState S,
                     PptaSummary Summary) {
    Cache[packSummaryKey(Node, Fields, S)] = std::move(Summary);
  }

  /// Connects this instance to a cross-instance summary exchange (may be
  /// null to disconnect).  On a local cache miss the exchange is
  /// consulted before computing, and freshly computed complete summaries
  /// are published back.  The exchange must describe the same PAG.
  void setSummaryExchange(SummaryExchange *E) { Exchange = E; }
  SummaryExchange *summaryExchange() const { return Exchange; }

  /// Converts between the local (StackId) and portable (explicit field
  /// vector) summary representations, re-interning through this
  /// instance's field-stack pool.
  ///
  /// The optional hint is an already-interned stack (with \p HintElems
  /// its spelled-out elements) the tuples' stacks are expected to share
  /// a prefix with — on the fetch path, the query's own field stack:
  /// PPTA boundary tuples are reached from (u, F) by pushing and
  /// popping fields, so their stacks typically keep most of F's bottom.
  /// The shared prefix is then recovered by O(1) pops off the hint
  /// instead of one hash-consing push per element, which is what makes
  /// re-interning a ~30-deep stack cheaper than recomputing its
  /// summary.  No hint (drainInto's bulk install) interns from the
  /// empty stack, byte-for-byte the historical behavior.
  PptaSummary internSummary(const PortableSummary &P,
                            StackId Hint = StackPool::empty(),
                            const std::vector<uint32_t> &HintElems = {});
  PortableSummary exportSummary(const PptaSummary &S) const;

private:
  /// Cache lookup/compute for one summary key.  Returns null when the
  /// summary could not be completed within budget (query turns
  /// conservative).  \p UsedCache reports a hit.
  const PptaSummary *getSummary(pag::NodeId U, StackId F, RsmState S,
                                Budget &B, bool &UsedCache);

  /// One pending Algorithm 4 state: a summary key plus the RRP context
  /// under which its boundary tuples are crossed.
  struct WorkItem {
    pag::NodeId Node;
    StackId Fields;
    RsmState State;
    StackId Ctx;
  };

  StackPool FieldStacks;
  StackPool Contexts;
  PptaEngine Engine;
  SummaryExchange *Exchange = nullptr;
  std::unordered_map<uint64_t, PptaSummary> Cache;
  /// Per-query scratch, reused across queries so the steady-state query
  /// path does not allocate: the vector-backed worklist stack, the
  /// packed (alloc, ctx) result set, and the flat worklist de-dup set
  /// over (summary key, context) pairs.
  std::vector<WorkItem> Work;
  FlatU64Set QueryPts;
  FlatPairSet Enqueued;
  /// Store round-trip scratch: the spelled-out field stack and the
  /// portable summary a fetch decodes into.  Reusing their capacity
  /// makes the warm fetch path allocation-free per hit, which is what
  /// lets disk-tier serving undercut recomputation.
  std::vector<uint32_t> FetchFields;
  PortableSummary FetchScratch;
  /// Summaries for boundary nodes without local edges (the Section 4.3
  /// shortcut) materialized once; not counted as real summaries.
  std::unordered_map<uint64_t, PptaSummary> TrivialSummaries;
};

} // namespace analysis
} // namespace dynsum

#endif // DYNSUM_ANALYSIS_DYNSUM_H
