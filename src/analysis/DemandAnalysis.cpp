//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-line virtual anchor for DemandAnalysis.
///
//===----------------------------------------------------------------------===//

#include "analysis/DemandAnalysis.h"

#include <algorithm>

using namespace dynsum;
using namespace dynsum::analysis;

DemandAnalysis::~DemandAnalysis() = default;

bool DemandAnalysis::mayAlias(pag::NodeId A, pag::NodeId B) {
  if (A == B)
    return true;
  QueryResult RA = query(A);
  QueryResult RB = query(B);
  if (RA.BudgetExceeded || RB.BudgetExceeded)
    return true; // no proof of disjointness within budget
  // Both target lists are canonical (sorted, unique); a linear merge
  // finds any common allocation site.  Contexts are intentionally
  // ignored: (o, c1) and (o, c2) name the same run-time objects when
  // c1 and c2 describe overlapping concrete stacks, which cannot be
  // decided from the abstractions alone.
  std::vector<ir::AllocId> SA = RA.allocSites(), SB = RB.allocSites();
  std::vector<ir::AllocId> Common;
  std::set_intersection(SA.begin(), SA.end(), SB.begin(), SB.end(),
                        std::back_inserter(Common));
  return !Common.empty();
}
