//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract interface of the demand-driven points-to analyses
/// (NOREFINE, REFINEPTS, DYNSUM).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ANALYSIS_DEMANDANALYSIS_H
#define DYNSUM_ANALYSIS_DEMANDANALYSIS_H

#include "analysis/Query.h"
#include "support/Statistics.h"

#include <functional>

namespace dynsum {
namespace analysis {

/// Client satisfaction predicate for REFINEPTS's refinement loop
/// (Algorithm 2's satisfyClient).  Returning true ends refinement early.
/// A null predicate means "never satisfied early": refine to full field
/// sensitivity (the precision every other analysis delivers directly).
using ClientPredicate = std::function<bool(const QueryResult &)>;

/// A demand-driven, context- and field-sensitive points-to analysis
/// over a PAG.  Instances keep internal caches; queries are answered
/// one at a time (single-threaded, like the paper's setup).
class DemandAnalysis {
public:
  DemandAnalysis(const pag::PAG &G, const AnalysisOptions &Opts)
      : Graph(G), Opts(Opts) {}
  virtual ~DemandAnalysis();

  /// Analysis name for reports ("DYNSUM", ...).
  virtual const char *name() const = 0;

  /// Computes the points-to set of PAG variable node \p V in the empty
  /// initial context.  \p SatisfyClient is only consulted by REFINEPTS.
  virtual QueryResult query(pag::NodeId V,
                            const ClientPredicate &SatisfyClient) = 0;

  /// Convenience overload: full-precision query.
  QueryResult query(pag::NodeId V) { return query(V, nullptr); }

  /// Demand alias query (the question STASUM's line of work answers
  /// directly): may \p A and \p B point to the same object?  Answered
  /// by intersecting the two points-to sets on context-tagged targets
  /// when both queries complete, and conservatively (true) otherwise.
  bool mayAlias(pag::NodeId A, pag::NodeId B);

  const pag::PAG &graph() const { return Graph; }
  const AnalysisOptions &options() const { return Opts; }
  Statistics &stats() { return Stats; }
  const Statistics &stats() const { return Stats; }

protected:
  const pag::PAG &Graph;
  AnalysisOptions Opts;
  Statistics Stats;
};

} // namespace analysis
} // namespace dynsum

#endif // DYNSUM_ANALYSIS_DEMANDANALYSIS_H
