//===----------------------------------------------------------------------===//
///
/// \file
/// STASUM offline summary closure.
///
//===----------------------------------------------------------------------===//

#include "analysis/StaSum.h"

#include "support/BitVector.h"
#include "support/FlatSet.h"
#include "support/InternedStack.h"

#include <vector>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::pag;

StaSumResult dynsum::analysis::computeStaSum(const PAG &G,
                                             const StaSumOptions &Opts) {
  StaSumResult Result;
  StackPool FieldStacks;
  PptaEngine Engine(G, FieldStacks, Opts.MaxFieldDepth);
  Budget B(Opts.StepBudget);

  FlatU64Set Seen; // all keys ever enqueued
  Seen.reserve(G.numNodes() / 2 + 16);
  // Keys projected to (node, state): a small universe (2 * numNodes),
  // so a HybridPtsSet beats a hash set — it densifies as the closure
  // widens instead of rehashing.
  HybridPtsSet NodeStates(size_t(2) * G.numNodes() + 1);
  // Vector-backed stack (LIFO order is fine: the closure is exhaustive
  // under Seen); sized for the boundary-node seeding pass up front.
  std::vector<uint64_t> Work;
  Work.reserve(G.numNodes() / 4 + 16);
  // Key decoding mirrors packSummaryKey.
  auto Push = [&](NodeId N, StackId F, RsmState S) {
    uint64_t Key = packSummaryKey(N, F, S);
    if (Seen.insert(Key))
      Work.push_back(Key);
  };

  // Seed: every boundary node of every method, both directions, with an
  // empty field stack — the states a fresh query can demand first.
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Nd = G.node(N);
    if (Nd.HasGlobalIn)
      Push(N, StackPool::empty(), RsmState::S1);
    if (Nd.HasGlobalOut)
      Push(N, StackPool::empty(), RsmState::S2);
  }

  while (!Work.empty()) {
    if (Result.NumSummaries >= Opts.MaxSummaries || B.exceeded()) {
      Result.Capped = true;
      break;
    }
    uint64_t Key = Work.back();
    Work.pop_back();
    NodeId N = NodeId((Key >> 1) & 0xffffffffu);
    StackId F{uint32_t(Key >> 33)};
    RsmState S = (Key & 1) ? RsmState::S2 : RsmState::S1;

    PptaSummary Summary;
    if (G.node(N).HasLocalEdge) {
      Engine.compute(N, F, S, B, Summary);
      ++Result.NumSummaries;
      NodeStates.set(size_t(Key & 0x1ffffffffull));
    } else {
      Summary.Tuples.push_back(PptaTuple{N, F, S});
    }

    // Close over every global edge (context-insensitively: a static
    // summary must serve all contexts, so no stack filtering applies).
    // The three global kinds are contiguous CSR spans per node.
    constexpr EdgeKind GlobalKinds[] = {EdgeKind::AssignGlobal,
                                        EdgeKind::Entry, EdgeKind::Exit};
    for (const PptaTuple &T : Summary.Tuples) {
      if (T.State == RsmState::S1) {
        for (EdgeKind K : GlobalKinds)
          for (EdgeId EId : G.inEdgesOfKind(T.Node, K))
            Push(G.edge(EId).Src, T.Fields, RsmState::S1);
      } else {
        for (EdgeKind K : GlobalKinds)
          for (EdgeId EId : G.outEdgesOfKind(T.Node, K))
            Push(G.edge(EId).Dst, T.Fields, RsmState::S2);
      }
    }
  }

  Result.Steps = B.used();
  Result.NumNodeStateSummaries = NodeStates.count();
  return Result;
}
