//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic program generator.
///
/// Substitutes for the paper's SPECjvm98/DaCapo benchmarks: given a
/// Table 3 row and a scale factor, synthesizes an IR program whose PAG
/// reproduces the row's statistical shape — the per-kind edge mix, the
/// locality percentage, Zipf-skewed "library" methods shared by many
/// callers (the paper's reuse driver), class hierarchies for virtual
/// dispatch, globals, downcasts, factory call sites and occasional
/// nulls, so all three paper clients have realistic query streams.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_WORKLOAD_GENERATOR_H
#define DYNSUM_WORKLOAD_GENERATOR_H

#include "ir/Program.h"
#include "workload/BenchmarkSpec.h"

#include <memory>

namespace dynsum {
namespace workload {

struct GenOptions {
  /// Linear shrink of every Table 3 count (1.0 = paper size).
  double Scale = 1.0 / 16;
  /// Extra seed XOR-ed into the per-benchmark name seed.
  uint64_t Seed = 0;
  /// Longest straight assign chain; longer quotas fan out into parallel
  /// chains (keeps demand-driven recursion depth bounded).
  unsigned MaxChain = 8;
  /// Probability that a call statement is virtual.
  double VirtualCallFraction = 0.25;
  /// Probability of a short recursion cycle at a call site.
  double RecursionFraction = 0.02;
  /// Probability that a store writes a null (NullDeref violations).
  double NullStoreFraction = 0.04;
};

/// Synthesizes the program for \p Spec.  Deterministic in
/// (Spec.Name, Opts).
std::unique_ptr<ir::Program> generateProgram(const BenchmarkSpec &Spec,
                                             const GenOptions &Opts);

/// The paper's per-client query counts scaled like the program
/// (client index 0 = SafeCast, 1 = NullDeref, 2 = FactoryM).
size_t scaledQueryCount(const BenchmarkSpec &Spec, unsigned ClientIndex,
                        double Scale);

/// A deterministic probe query set: every \p Stride-th local variable.
std::vector<ir::VarId> probeVariables(const ir::Program &P, size_t Stride);

/// The canonical deterministic edit script of the incremental benches
/// and their pinning tests: step \p I appends a fresh local + allocation
/// to a pseudo-random method, plus an assign into an existing variable
/// when possible.  Returns the methods touched.  Shared so the
/// TSan-covered service tests exercise exactly the pattern
/// bench/service_loop measures.
std::vector<ir::MethodId> applyScriptEdit(ir::Program &P, unsigned I);

} // namespace workload
} // namespace dynsum

#endif // DYNSUM_WORKLOAD_GENERATOR_H
