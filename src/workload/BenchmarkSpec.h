//===----------------------------------------------------------------------===//
///
/// \file
/// The nine benchmark shapes of the paper's Table 3.
///
/// The paper evaluates on SPECjvm98/DaCapo programs analysed through
/// Soot/Spark; those are unavailable here, so each benchmark is
/// described by its published PAG statistics and re-synthesized by the
/// generator at a configurable scale.  Node/edge counts are in
/// thousands, exactly as printed in Table 3.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_WORKLOAD_BENCHMARKSPEC_H
#define DYNSUM_WORKLOAD_BENCHMARKSPEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace dynsum {
namespace workload {

/// One row of Table 3.
struct BenchmarkSpec {
  std::string Name;
  double MethodsK;      ///< #Methods (K)
  double ObjectsK;      ///< O nodes = new edges (K)
  double VarsK;         ///< V nodes (K)
  double AssignK;       ///< assign edges (K)
  double LoadK;         ///< load edges (K)
  double StoreK;        ///< store edges (K)
  double EntryK;        ///< entry edges (K)
  double ExitK;         ///< exit edges (K)
  double AssignGlobalK; ///< assignglobal edges (K)
  double LocalityPct;   ///< paper's printed locality (derived quantity)
  unsigned QuerySafeCast;
  unsigned QueryNullDeref;
  unsigned QueryFactoryM;

  /// Paper locality recomputed from the edge columns (sanity check).
  double computedLocality() const {
    double Local = ObjectsK + AssignK + LoadK + StoreK;
    double Global = EntryK + ExitK + AssignGlobalK;
    return 100.0 * Local / (Local + Global);
  }
};

/// The nine rows of Table 3, in paper order.
const std::vector<BenchmarkSpec> &paperSuite();

/// Finds a spec by name; aborts when unknown.
const BenchmarkSpec &specByName(const std::string &Name);

} // namespace workload
} // namespace dynsum

#endif // DYNSUM_WORKLOAD_BENCHMARKSPEC_H
