//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 2 motivating example as a reusable IR source.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_WORKLOAD_PAPEREXAMPLE_H
#define DYNSUM_WORKLOAD_PAPEREXAMPLE_H

namespace dynsum {
namespace workload {

/// Textual IR of the Vector/Client program of Figure 2.  Allocation and
/// call-site labels match the paper's line numbers; the expected
/// answers are pts(s1) = {o26} and pts(s2) = {o29}.
const char *figure2Source();

} // namespace workload
} // namespace dynsum

#endif // DYNSUM_WORKLOAD_PAPEREXAMPLE_H
