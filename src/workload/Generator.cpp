//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic program generator implementation.
///
/// Layout of the generated method list (rank 0 is the "hottest"):
///   [0, NumContainerMethods)  container library: store/load pairs over
///                             shared Box-like classes (the Vector.add/
///                             Vector.get pattern that drives summary
///                             reuse in the paper's motivating example);
///   [.., +NumFactories)       factory methods "createN" (FactoryM);
///   [.., +NumVirtuals)        virtual family methods "virtF" on class
///                             families (CHA fan-out);
///   [.., NumMethods)          ordinary methods, calling lower ranks
///                             through a Zipf distribution;
///   the last few methods are roots ("mainN") that fan out widely.
///
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "ir/Builder.h"
#include "support/Hashing.h"
#include "support/Random.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace dynsum;
using namespace dynsum::ir;
using namespace dynsum::workload;

namespace {

std::string nameOf(const char *Prefix, size_t I) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%s%zu", Prefix, I);
  return std::string(Buf);
}

uint64_t seedFromName(const std::string &Name, uint64_t Extra) {
  uint64_t H = 0x9e3779b97f4a7c15ull ^ Extra;
  for (char C : Name)
    H = hashCombine(H, uint64_t(uint8_t(C)));
  return H;
}

/// Rounds a scaled Table 3 count to a usable quota.
size_t quota(double ThousandsInPaper, double Scale, size_t Min) {
  double V = ThousandsInPaper * 1000.0 * Scale;
  size_t Q = size_t(std::llround(V));
  return Q < Min ? Min : Q;
}

/// All derived sizing for one generated program.
struct Plan {
  size_t NumMethods;
  size_t NumClasses;
  size_t NumFamilies; ///< class families with virtual methods
  size_t NumFields;
  size_t NumGlobals;
  size_t NumContainerMethods;
  size_t NumMixers;
  size_t NumFactories;
  size_t NumVirtuals; ///< total virtual-family methods
  size_t NumRoots;

  size_t AllocQuota;
  size_t AssignQuota;
  size_t LoadQuota;
  size_t StoreQuota;
  size_t CallQuota;        ///< call statements (entry edges ~ args * calls)
  size_t GlobalQuota;      ///< assignglobal statements
  size_t CastQuota;        ///< downcast statements (SafeCast queries)
  size_t FactoryCallQuota; ///< calls to factories (FactoryM queries)
};

Plan makePlan(const BenchmarkSpec &Spec, const GenOptions &Opts) {
  Plan P;
  // Size methods realistically (a few dozen pointer-relevant variables
  // each, like compiled Java), deriving the method count from the
  // variable target when Table 3's printed method count would make
  // methods enormous.  Huge single methods would blow up *every*
  // demand-driven analysis far beyond what the paper's workloads do.
  P.NumMethods = std::max(quota(Spec.MethodsK, Opts.Scale, 32),
                          quota(Spec.VarsK, Opts.Scale, 32) / 50);
  P.NumClasses = std::max<size_t>(12, P.NumMethods / 5);
  P.NumFamilies = std::max<size_t>(3, P.NumClasses / 6);
  P.NumFields = std::max<size_t>(10, P.NumClasses);
  P.NumGlobals = std::max<size_t>(4, quota(Spec.AssignGlobalK, Opts.Scale, 4) / 8);

  P.AllocQuota = quota(Spec.ObjectsK, Opts.Scale, P.NumMethods);
  P.AssignQuota = quota(Spec.AssignK, Opts.Scale, 2 * P.NumMethods);
  P.LoadQuota = quota(Spec.LoadK, Opts.Scale, P.NumMethods);
  P.StoreQuota = quota(Spec.StoreK, Opts.Scale, P.NumMethods / 2 + 1);
  // Each call contributes roughly 2.5 entry edges (receiver + args,
  // times the occasional multi-target virtual).
  P.CallQuota = quota(Spec.EntryK, Opts.Scale, P.NumMethods) * 2 / 5;
  P.GlobalQuota = quota(Spec.AssignGlobalK, Opts.Scale, 4);
  P.CastQuota =
      std::max<size_t>(8, size_t(std::llround(Spec.QuerySafeCast *
                                              Opts.Scale * 4)));
  P.FactoryCallQuota =
      std::max<size_t>(8, size_t(std::llround(Spec.QueryFactoryM *
                                              Opts.Scale * 4)));

  P.NumContainerMethods = std::max<size_t>(6, P.NumMethods / 25) & ~size_t(1);
  P.NumMixers = std::max<size_t>(4, P.NumMethods / 30);
  P.NumFactories = std::max<size_t>(4, P.NumMethods / 40);
  P.NumVirtuals = 0; // filled while laying out families
  P.NumRoots = std::max<size_t>(2, P.NumMethods / 50);
  return P;
}

/// Generator state while emitting one program.
class Generation {
public:
  Generation(const BenchmarkSpec &Spec, const GenOptions &Opts)
      : Spec(Spec), Opts(Opts), P(makePlan(Spec, Opts)),
        R(seedFromName(Spec.Name, Opts.Seed)) {}

  std::unique_ptr<Program> run() {
    initQuotas();
    layOutClasses();
    declareGlobals();
    declareMethods();
    emitBodies();
    return B.takeProgram();
  }

private:
  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  void layOutClasses() {
    // Container element/holder classes first.
    B.cls("Box");
    B.cls("Item");
    // Class families: base plus 1..3 subclasses.
    for (size_t F = 0; F < P.NumFamilies; ++F) {
      std::string Base = nameOf("Base", F);
      B.cls(Base);
      size_t Subs = 1 + R.nextBelow(3);
      for (size_t S = 0; S < Subs; ++S)
        B.cls(nameOf(("Sub" + std::to_string(F) + "_").c_str(), S), Base);
      FamilySubCount.push_back(Subs);
    }
    // Plain classes (also the cast-target pool), as subclasses of the
    // families' bases or Object to give SafeCast real hierarchies.
    for (size_t C = 0; C < P.NumClasses; ++C) {
      if (R.nextBool(0.5)) {
        size_t F = R.nextBelow(P.NumFamilies);
        B.cls(nameOf("C", C), nameOf("Base", F));
      } else {
        B.cls(nameOf("C", C));
      }
    }
    for (size_t F = 0; F < P.NumFields; ++F)
      B.field(nameOf("f", F));
  }

  void declareGlobals() {
    for (size_t G = 0; G < P.NumGlobals; ++G)
      B.global(nameOf("g", G));
  }

  /// Declares every method signature before any body references it.
  void declareMethods() {
    // Container library: storeK(b, p) { b.boxf = p }  /  loadK(b).
    for (size_t I = 0; I < P.NumContainerMethods; I += 2) {
      MethodOrder.push_back(
          B.method(nameOf("boxput", I / 2), {{"b", "Box"}, {"p", ""}}));
      MethodOrder.push_back(
          B.method(nameOf("boxget", I / 2), {{"b", "Box"}}));
    }
    // Mixers: merge two values into one result.  Chains of mixer calls
    // create the re-converging CFL "diamond" paths that real code is
    // full of (the same value passed through several arguments); they
    // are what memoization (REFINEPTS) and summaries (DYNSUM) prune
    // and an uncached search (NOREFINE) re-explores per path.
    FirstMixer = MethodOrder.size();
    for (size_t I = 0; I < P.NumMixers; ++I)
      MethodOrder.push_back(
          B.method(nameOf("mix", I), {{"a", ""}, {"b", ""}}));
    // Factories.
    FirstFactory = MethodOrder.size();
    for (size_t I = 0; I < P.NumFactories; ++I)
      MethodOrder.push_back(B.method(nameOf("create", I), {{"p", ""}}));
    // Virtual families: every class in family F implements virtF.
    FirstVirtual = MethodOrder.size();
    for (size_t F = 0; F < P.NumFamilies; ++F) {
      std::string VName = nameOf("virt", F);
      std::string Base = nameOf("Base", F);
      MethodOrder.push_back(
          B.method(Base + "." + VName, {{"this", Base}, {"p", ""}}));
      for (size_t S = 0; S < FamilySubCount[F]; ++S) {
        std::string Sub = nameOf(("Sub" + std::to_string(F) + "_").c_str(), S);
        MethodOrder.push_back(
            B.method(Sub + "." + VName, {{"this", Sub}, {"p", ""}}));
      }
    }
    // Ordinary methods + roots.
    FirstOrdinary = MethodOrder.size();
    size_t Remaining = P.NumMethods > MethodOrder.size()
                           ? P.NumMethods - MethodOrder.size()
                           : P.NumRoots;
    for (size_t I = 0; I < Remaining; ++I) {
      bool IsRoot = I + P.NumRoots >= Remaining;
      const char *Prefix = IsRoot ? "main" : "m";
      MethodOrder.push_back(B.method(nameOf(Prefix, I), {{"p1", ""}, {"p2", ""}}));
    }
  }

  //===------------------------------------------------------------------===//
  // Bodies
  //===------------------------------------------------------------------===//

  void emitBodies() {
    emitContainerBodies();
    emitMixerBodies();
    emitFactoryBodies();
    emitVirtualBodies();
    size_t NumOrdinary = MethodOrder.size() - FirstOrdinary;
    // Zipf over callee ranks: low ranks (library) get called the most.
    ZipfSampler CalleeZipf(FirstOrdinary + NumOrdinary, 0.9);
    ZipfSampler FieldZipf(B.program().fields().size(), 0.8);
    for (size_t I = FirstOrdinary; I < MethodOrder.size(); ++I)
      emitOrdinaryBody(I, CalleeZipf, FieldZipf, NumOrdinary);
  }

  void emitContainerBodies() {
    for (size_t I = 0; I < P.NumContainerMethods; I += 2) {
      // Each put/get pair owns its field, like a real container class
      // whose backing field is private: field-based match edges then
      // fan out only to that pair's stores.
      std::string FieldK = nameOf("boxf", I / 2);
      MethodId Put = MethodOrder[I];
      B.store(Put, "b", FieldK, "p");
      B.ret(Put, "p");
      MethodId Get = MethodOrder[I + 1];
      B.load(Get, "r", "b", FieldK);
      B.ret(Get, "r");
    }
  }

  void emitMixerBodies() {
    for (size_t I = FirstMixer; I < FirstMixer + P.NumMixers; ++I) {
      MethodId M = MethodOrder[I];
      B.assign(M, "r", "a");
      B.assign(M, "r", "b");
      B.ret(M, "r");
    }
  }

  /// Routes \p Val through a chain of mixer calls of random depth,
  /// passing the running value through both arguments (the diamond).
  std::string mixerChain(MethodId M, const std::string &Val,
                         std::function<std::string()> Fresh) {
    std::string Cur = Val;
    size_t Depth = 3 + R.nextBelow(6);
    for (size_t D = 0; D < Depth; ++D) {
      std::string Next = Fresh();
      size_t Mixer = FirstMixer + R.nextBelow(P.NumMixers);
      B.call(M, Next, qualifiedName(Mixer), {Cur, Cur});
      Cur = Next;
    }
    return Cur;
  }

  void emitFactoryBodies() {
    for (size_t I = FirstFactory; I < FirstFactory + P.NumFactories; ++I) {
      MethodId M = MethodOrder[I];
      // 40% of the factories delegate to an earlier factory — the
      // common "create calls createImpl" layering — so freshness proofs
      // must cross call boundaries.
      if (I > FirstFactory && R.nextBool(0.4)) {
        size_t Delegate =
            FirstFactory + R.nextBelow(I - FirstFactory);
        B.call(M, "o", qualifiedName(Delegate), {"p"});
        B.ret(M, "o");
        continue;
      }
      std::string Cls = nameOf("C", R.nextBelow(P.NumClasses));
      B.alloc(M, "o", Cls);
      // Half of the factories initialize a field of the fresh object.
      if (R.nextBool(0.5))
        B.store(M, "o", fieldName(R.nextBelow(P.NumFields)), "p");
      // Half return through a private container round-trip, so
      // freshness proofs need field-sensitive heap reasoning.
      if (R.nextBool(0.5)) {
        B.alloc(M, "fb", "Box");
        // Each factory keeps to its own container pair (private scratch
        // state), so a field-based pass can already prove freshness for
        // non-delegating factories.
        size_t Half = std::max<size_t>(1, P.NumContainerMethods / 4);
        size_t Pair = Half + (I * 7 + 3) % Half;
        B.call(M, "", nameOf("boxput", Pair), {"fb", "o"});
        B.call(M, "o2", nameOf("boxget", Pair), {"fb"});
        B.ret(M, "o2");
      } else {
        B.ret(M, "o");
      }
      --QuotaAllocs;
    }
  }

  void emitVirtualBodies() {
    for (size_t I = FirstVirtual; I < FirstOrdinary; ++I) {
      MethodId M = MethodOrder[I];
      // Each override returns a fresh object or its argument.
      if (R.nextBool(0.7)) {
        B.alloc(M, "o", nameOf("C", R.nextBelow(P.NumClasses)));
        B.ret(M, "o");
        --QuotaAllocs;
      } else {
        B.assign(M, "o", "p");
        B.ret(M, "o");
      }
    }
  }

  std::string fieldName(size_t F) { return nameOf("f", F); }

  void emitOrdinaryBody(size_t Rank, ZipfSampler &CalleeZipf,
                        ZipfSampler &FieldZipf, size_t NumOrdinary) {
    MethodId M = MethodOrder[Rank];
    bool IsRoot = Rank + P.NumRoots >= MethodOrder.size();

    // Per-method draws; roots get a bigger share of calls.
    auto Draw = [&](size_t &GlobalQuota, double Mean) {
      if (GlobalQuota == 0)
        return size_t(0);
      double Jitter = 0.5 + R.nextDouble();
      size_t N;
      if (Mean < 1.0)
        N = R.nextBool(Mean) ? 1 : 0; // keep rare statement kinds alive
      else
        N = size_t(std::llround(Mean * Jitter));
      N = std::min(N, GlobalQuota);
      GlobalQuota -= N;
      return N;
    };
    double Share = 1.0 / double(std::max<size_t>(1, NumOrdinary));
    size_t Allocs = Draw(QuotaAllocs, double(P.AllocQuota) * Share);
    size_t Assigns = Draw(QuotaAssigns, double(P.AssignQuota) * Share);
    size_t Loads = Draw(QuotaLoads, double(P.LoadQuota) * Share);
    size_t Stores = Draw(QuotaStores, double(P.StoreQuota) * Share);
    size_t Calls =
        Draw(QuotaCalls, double(P.CallQuota) * Share * (IsRoot ? 3.0 : 1.0));
    size_t Globals = Draw(QuotaGlobals, double(P.GlobalQuota) * Share);
    size_t Casts = Draw(QuotaCasts, double(P.CastQuota) * Share);
    size_t FactoryCalls =
        Draw(QuotaFactoryCalls, double(P.FactoryCallQuota) * Share);

    // Pool of value-bearing locals, refreshed by every statement.
    std::vector<std::string> Vals = {"p1", "p2"};
    // Locals whose dynamic type is known (they hold a fresh allocation
    // that flowed through assignments only): (name, class name).
    std::vector<std::pair<std::string, std::string>> TypedVals;
    size_t NextLocal = 0;
    auto Fresh = [&] { return nameOf("v", NextLocal++); };
    auto Pick = [&]() -> std::string { return R.pick(Vals); };

    // A Box local shared with the container library: the cross-context
    // store/load pattern of the paper's Vector example.
    B.alloc(M, "box", "Box");
    if (QuotaAllocs > 0)
      --QuotaAllocs;

    // The first ordinary method is always directly recursive, so every
    // generated program exercises recursion collapsing even at tiny
    // scales where the probabilistic self-calls may not fire.
    if (Rank == FirstOrdinary) {
      std::string SelfR = Fresh();
      B.call(M, SelfR, qualifiedName(Rank), {"p1", "p2"});
      Vals.push_back(SelfR);
    }

    for (size_t A = 0; A < Allocs; ++A) {
      std::string X = Fresh();
      std::string Cls = nameOf("C", R.nextBelow(P.NumClasses));
      B.alloc(M, X, Cls);
      Vals.push_back(X);
      TypedVals.emplace_back(X, Cls);
    }
    // Assign chains, capped per segment to bound recursion depth.
    size_t Emitted = 0;
    while (Emitted < Assigns) {
      std::string Src = Pick();
      size_t Len = std::min<size_t>(Assigns - Emitted,
                                    1 + R.nextBelow(Opts.MaxChain));
      for (size_t K = 0; K < Len; ++K) {
        std::string Dst = Fresh();
        B.assign(M, Dst, Src);
        Src = Dst;
        ++Emitted;
      }
      Vals.push_back(Src);
    }
    for (size_t S = 0; S < Stores; ++S) {
      std::string Base = Pick();
      if (R.nextBool(Opts.NullStoreFraction)) {
        std::string Z = Fresh();
        B.nullAssign(M, Z);
        B.store(M, Base, fieldName(FieldZipf.sample(R)), Z);
        continue;
      }
      B.store(M, Base, fieldName(FieldZipf.sample(R)), Pick());
    }
    for (size_t L = 0; L < Loads; ++L) {
      std::string Dst = Fresh();
      B.load(M, Dst, Pick(), fieldName(FieldZipf.sample(R)));
      Vals.push_back(Dst);
    }

    // Container round-trip through the shared library (hot summaries);
    // probabilistic so call-edge density stays near the Table 3 mix.
    if (R.nextBool(0.6)) {
      size_t Half = std::max<size_t>(1, P.NumContainerMethods / 4);
      size_t Pair = Half + R.nextBelow(Half);
      B.call(M, "", nameOf("boxput", Pair), {"box", Pick()});
      std::string BoxVal = Fresh();
      B.call(M, BoxVal, nameOf("boxget", Pair), {"box"});
      Vals.push_back(BoxVal);
    }

    for (size_t C = 0; C < Calls; ++C) {
      if (R.nextBool(Opts.VirtualCallFraction)) {
        emitVirtualCall(M, Vals, Fresh());
        continue;
      }
      size_t CalleeRank;
      if (R.nextBool(Opts.RecursionFraction))
        CalleeRank = Rank; // self call: a guaranteed recursion cycle
      else
        CalleeRank = std::min<size_t>(CalleeZipf.sample(R), Rank - 1);
      emitDirectCall(M, CalleeRank, Vals, Fresh());
    }
    for (size_t F = 0; F < FactoryCalls; ++F) {
      std::string Dst = Fresh();
      size_t Factory = FirstFactory + R.nextBelow(P.NumFactories);
      // Factory arguments often come off mixer chains: freshness
      // judgments then traverse the diamond region too.
      std::string Arg =
          R.nextBool(0.5) ? mixerChain(M, Pick(), Fresh) : Pick();
      B.call(M, Dst, qualifiedName(Factory), {Arg});
      Vals.push_back(Dst);
    }
    for (size_t G = 0; G < Globals; ++G) {
      std::string GName = nameOf("g", R.nextBelow(P.NumGlobals));
      if (R.nextBool(0.5)) {
        B.assign(M, GName, Pick()); // store to global
      } else {
        std::string Dst = Fresh();
        B.assign(M, Dst, GName); // read from global
        Vals.push_back(Dst);
      }
    }
    for (size_t C = 0; C < Casts; ++C) {
      // Downcast a value of static type Object.  Most real downcasts
      // are correct but only provable through the heap: 70% of the
      // time round-trip a local of known dynamic type through the
      // shared container library (store, load back, cast to its own
      // class) — exactly the Vector pattern that makes the paper's
      // SafeCast queries demand context-sensitive field-sensitive
      // reasoning.  The rest cast arbitrary values (mostly unsafe).
      std::string Dst = Fresh();
      if (!TypedVals.empty() && R.nextBool(0.7)) {
        const auto &[Val, Cls] = R.pick(TypedVals);
        std::string Mixed = mixerChain(M, Val, Fresh);
        std::string CastBox = Fresh();
        B.alloc(M, CastBox, "Box");
        // Containers are type-themed: values of one class go through
        // one put/get pair, like real homogeneous collections.  A
        // field-based (match-edge) pass can then often prove the cast
        // safe already — the regime where the paper's REFINEPTS
        // refinement pays off.
        size_t Half = std::max<size_t>(1, P.NumContainerMethods / 4);
        size_t Pair = seedFromName(Cls, 17) % Half;
        B.call(M, "", nameOf("boxput", Pair), {CastBox, Mixed});
        std::string Loaded = Fresh();
        B.call(M, Loaded, nameOf("boxget", Pair), {CastBox});
        B.cast(M, Dst, Cls, Loaded);
      } else {
        B.cast(M, Dst, nameOf("C", R.nextBelow(P.NumClasses)), Pick());
      }
      Vals.push_back(Dst);
    }
    B.ret(M, Pick());
  }

  std::string qualifiedName(size_t Rank) {
    const Program &Prog = B.program();
    const Method &M = Prog.method(MethodOrder[Rank]);
    if (M.Owner == kNone)
      return std::string(Prog.names().text(M.Name));
    return std::string(Prog.names().text(Prog.classOf(M.Owner).Name)) + "." +
           std::string(Prog.names().text(M.Name));
  }

  void emitDirectCall(MethodId Caller, size_t CalleeRank,
                      std::vector<std::string> &Vals,
                      const std::string &Dst) {
    const Program &Prog = B.program();
    const Method &Callee = Prog.method(MethodOrder[CalleeRank]);
    if (Callee.Owner != kNone) {
      // Instance method: call it virtually instead (receiver typing is
      // handled there); direct calls target free methods only.
      emitVirtualCall(Caller, Vals, Dst);
      return;
    }
    std::vector<std::string> Args;
    for (size_t I = 0; I < Callee.Params.size(); ++I)
      Args.push_back(R.pick(Vals));
    // boxput/boxget expect a Box receiver argument first.
    if (!Args.empty() && startsWith(Prog.names().text(Callee.Name), "box"))
      Args[0] = "box";
    B.call(Caller, Dst, qualifiedName(CalleeRank), Args);
    Vals.push_back(Dst);
  }

  void emitVirtualCall(MethodId Caller, std::vector<std::string> &Vals,
                       const std::string &Dst) {
    size_t F = R.nextBelow(P.NumFamilies);
    size_t Sub = R.nextBelow(FamilySubCount[F]);
    std::string Recv = "recv" + std::to_string(F);
    // Allocate a subclass into a base-typed receiver once per method.
    if (std::find(Vals.begin(), Vals.end(), Recv) == Vals.end()) {
      B.alloc(Caller, Recv,
              nameOf(("Sub" + std::to_string(F) + "_").c_str(), Sub));
      B.declareLocal(Caller, Recv, nameOf("Base", F));
      Vals.push_back(Recv);
    }
    B.vcall(Caller, Dst, Recv, nameOf("virt", F), {R.pick(Vals)});
    Vals.push_back(Dst);
  }

  const BenchmarkSpec &Spec;
  const GenOptions &Opts;
  Plan P;
  Rng R;
  ProgramBuilder B;

  std::vector<MethodId> MethodOrder;
  std::vector<size_t> FamilySubCount;
  size_t FirstMixer = 0;
  size_t FirstFactory = 0;
  size_t FirstVirtual = 0;
  size_t FirstOrdinary = 0;

  // Mutable global quotas consumed while emitting.
  size_t QuotaAllocs = 0;
  size_t QuotaAssigns = 0;
  size_t QuotaLoads = 0;
  size_t QuotaStores = 0;
  size_t QuotaCalls = 0;
  size_t QuotaGlobals = 0;
  size_t QuotaCasts = 0;
  size_t QuotaFactoryCalls = 0;

  void initQuotas() {
    QuotaAllocs = P.AllocQuota;
    QuotaAssigns = P.AssignQuota;
    QuotaLoads = P.LoadQuota;
    QuotaStores = P.StoreQuota;
    QuotaCalls = P.CallQuota;
    QuotaGlobals = P.GlobalQuota;
    QuotaCasts = P.CastQuota;
    QuotaFactoryCalls = P.FactoryCallQuota;
  }
};

} // namespace

std::unique_ptr<Program>
dynsum::workload::generateProgram(const BenchmarkSpec &Spec,
                                  const GenOptions &Opts) {
  Generation G(Spec, Opts);
  return G.run();
}

size_t dynsum::workload::scaledQueryCount(const BenchmarkSpec &Spec,
                                          unsigned ClientIndex,
                                          double Scale) {
  unsigned Total = ClientIndex == 0   ? Spec.QuerySafeCast
                   : ClientIndex == 1 ? Spec.QueryNullDeref
                                      : Spec.QueryFactoryM;
  size_t N = size_t(std::llround(double(Total) * Scale));
  return std::max<size_t>(8, N);
}

std::vector<ir::VarId>
dynsum::workload::probeVariables(const ir::Program &P, size_t Stride) {
  std::vector<ir::VarId> Out;
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Id % Stride == 0)
      Out.push_back(V.Id);
  return Out;
}

std::vector<ir::MethodId> dynsum::workload::applyScriptEdit(ir::Program &P,
                                                            unsigned I) {
  ir::MethodId M = P.methods()[(I * 37 + 11) % P.methods().size()].Id;
  ir::TypeId T = P.classes().back().Id;
  ir::VarId Fresh = P.createLocal(P.name("svc$" + std::to_string(I)), M, T);
  ir::Statement New;
  New.Kind = ir::StmtKind::Alloc;
  New.Dst = Fresh;
  New.Type = T;
  New.Alloc = P.createAllocSite(T, M, Symbol{});
  P.addStatement(M, std::move(New));
  for (const ir::Statement &St : P.method(M).Stmts)
    if (St.Kind == ir::StmtKind::Assign) {
      ir::Statement Copy;
      Copy.Kind = ir::StmtKind::Assign;
      Copy.Src = Fresh;
      Copy.Dst = St.Dst;
      P.addStatement(M, std::move(Copy));
      break;
    }
  return {M};
}
