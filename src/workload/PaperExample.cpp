//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 2 source text.
///
//===----------------------------------------------------------------------===//

#include "workload/PaperExample.h"

const char *dynsum::workload::figure2Source() {
  return R"(
class Vector   { fields elems, count, arr }
class Client   { fields vec }
class Main     {}
class Integer  {}
class String   {}

method Vector.<init>(this : Vector) {
  t = new Object @o5
  this.elems = t
}

method Vector.add(this : Vector, p) {
  t = this.elems
  t.arr = p
}

method Vector.get(this : Vector, i) {
  t = this.elems
  ret = t.arr
  return ret
}

method Client.<initDefault>(this : Client) {
}

method Client.<init>(this : Client, v : Vector) {
  this.vec = v
}

method Client.set(this : Client, v : Vector) {
  this.vec = v
}

method Client.retrieve(this : Client) {
  t = this.vec
  r = vcall @22 t.get(i0)
  return r
}

method Main.main() {
  v1 = new Vector @o25
  call @25 Vector.<init>(v1)
  tmp1 = new Integer @o26
  vcall @26 v1.add(tmp1)
  c1 = new Client @o27
  call @27 Client.<init>(c1, v1)
  v2 = new Vector @o28
  call @28 Vector.<init>(v2)
  tmp2 = new String @o29
  vcall @29 v2.add(tmp2)
  c2 = new Client @o30
  call @30 Client.<initDefault>(c2)
  vcall @31 c2.set(v2)
  s1 = vcall @32 c1.retrieve()
  s2 = vcall @33 c2.retrieve()
  var v1 : Vector
  var v2 : Vector
  var c1 : Client
  var c2 : Client
}
)";
}
