//===----------------------------------------------------------------------===//
///
/// \file
/// Table 3 data.
///
//===----------------------------------------------------------------------===//

#include "workload/BenchmarkSpec.h"

#include "support/Debug.h"

using namespace dynsum;
using namespace dynsum::workload;

const std::vector<BenchmarkSpec> &dynsum::workload::paperSuite() {
  // Columns: name, methodsK, O(=new)K, V K, assignK, loadK, storeK,
  // entryK, exitK, assignglobalK, locality%, queries (SafeCast,
  // NullDeref, FactoryM).  Values transcribed from Table 3.
  static const std::vector<BenchmarkSpec> Suite = {
      {"jack", 0.5, 16.6, 207.9, 328.1, 25.1, 8.8, 39.9, 12.8, 2.4, 87.3,
       134, 356, 127},
      {"javac", 1.1, 17.2, 216.1, 367.4, 26.8, 9.1, 42.4, 13.3, 0.5, 88.2,
       307, 2897, 231},
      {"soot-c", 3.4, 9.4, 104.8, 195.1, 13.3, 4.2, 19.3, 6.4, 0.7, 89.4,
       906, 2290, 619},
      {"bloat", 2.2, 10.3, 115.2, 217.2, 14.5, 4.6, 20.6, 6.1, 1.0, 89.9,
       1217, 3469, 613},
      {"jython", 3.2, 9.5, 109.0, 168.4, 14.4, 4.2, 19.5, 7.1, 1.3, 87.6,
       464, 3351, 214},
      {"avrora", 1.6, 4.5, 45.1, 38.1, 6.0, 2.9, 9.7, 2.9, 0.3, 80.0, 1130,
       4689, 334},
      {"batik", 2.3, 10.8, 118.1, 119.7, 13.4, 5.3, 24.8, 7.8, 0.6, 81.8,
       2748, 5738, 769},
      {"luindex", 1.0, 4.4, 48.2, 42.6, 6.9, 2.3, 9.1, 3.0, 0.5, 81.7, 1666,
       4899, 657},
      {"xalan", 2.5, 6.6, 75.8, 76.4, 14.1, 4.4, 15.7, 4.0, 0.2, 83.6, 4090,
       10872, 1290},
  };
  return Suite;
}

const BenchmarkSpec &dynsum::workload::specByName(const std::string &Name) {
  for (const BenchmarkSpec &S : paperSuite())
    if (S.Name == Name)
      return S;
  fatalError("unknown benchmark name");
}
