//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a PAG (and its call graph) from an IR program.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_PAG_PAGBUILDER_H
#define DYNSUM_PAG_PAGBUILDER_H

#include "pag/CallGraph.h"
#include "pag/PAG.h"

#include <memory>

namespace dynsum {
namespace pag {

/// The PAG plus the call graph it was derived from.
struct BuiltPAG {
  std::unique_ptr<PAG> Graph;
  CallGraph Calls;
};

/// Translates \p P into PAG edges per Figure 1:
///   * every variable and allocation site becomes a node;
///   * Alloc/Null produce new edges;
///   * Assign/Cast produce assign edges, or assignglobal when either
///     side is a global variable;
///   * Load/Store produce load(f)/store(f) edges between base and
///     value/destination;
///   * calls produce entry_i edges (actual -> formal, pairwise) and, for
///     calls with a result, exit_i edges (returned var -> result var)
///     for every call-graph target;
///   * entry/exit edges whose caller and callee share a recursive SCC
///     are marked ContextFree.
///
/// \p Resolver selects virtual-call targets (CHA when null).
BuiltPAG buildPAG(const ir::Program &P,
                  const TargetResolver *Resolver = nullptr);

/// Rebuilds \p G *in place* from its (edited) program and returns the
/// fresh call graph.  References to \p G held by analyses remain valid;
/// node numbering follows the same deterministic scheme as buildPAG
/// (variables in id order, then allocation sites), so nodes of
/// pre-existing variables keep their ids and object nodes shift by the
/// number of added variables.
CallGraph rebuildPAG(PAG &G, const TargetResolver *Resolver = nullptr);

} // namespace pag
} // namespace dynsum

#endif // DYNSUM_PAG_PAGBUILDER_H
