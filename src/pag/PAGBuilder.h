//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a PAG (and its call graph) from an IR program — from scratch
/// or as a per-method delta after edits.
///
/// Node identity is persistent: a variable/allocation site keeps its
/// PAG node id across every subsequent delta build (the IR ids are
/// append-only, and the PAG's node table is keyed by them).  Edges are
/// owned by per-method segments; a delta build re-lowers exactly the
/// methods whose lowered edges can differ:
///
///   * methods whose statement bodies changed (found by the program's
///     per-method edit clock, confirmed by content fingerprint — a
///     markDirty with no real edit does not force a re-lower);
///   * methods whose callee shape changed: some call site's target set,
///     a target's recursion-collapse status, or a callee's
///     params/returns interface moved (entry/exit edges embed all
///     three), detected by fingerprint against the updated call graph.
///
/// The call graph itself is refreshed incrementally for the default CHA
/// resolver (re-resolving only changed methods, plus all virtual sites
/// when the class hierarchy grew); a custom resolver (RTA/Andersen
/// answers depend on whole-program state) forces a full re-resolution,
/// while edge lowering stays delta — the shape fingerprints absorb
/// whatever the resolver moved.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_PAG_PAGBUILDER_H
#define DYNSUM_PAG_PAGBUILDER_H

#include "pag/CallGraph.h"
#include "pag/PAG.h"

#include <memory>
#include <unordered_set>

namespace dynsum {
namespace pag {

/// The PAG plus the call graph it was derived from.
struct BuiltPAG {
  std::unique_ptr<PAG> Graph;
  CallGraph Calls;
};

/// What one delta build did, for invalidation planning and diagnostics.
struct DeltaStats {
  /// Methods whose segments were re-lowered (body- or shape-changed).
  std::vector<ir::MethodId> Relowered;
  /// Methods stamped by the edit clock since the last build (superset
  /// candidates for Relowered; summary invalidation keys off these even
  /// when the fingerprint proved the graph unchanged — a forced
  /// markDirty must still drop summaries).
  std::vector<ir::MethodId> Touched;
  size_t NodesAdded = 0;
  /// True when slack forced the CSR repack to compact fully.
  bool Compacted = false;
  /// Worker count the build actually ran with (requests are clamped).
  unsigned ThreadsUsed = 1;
  /// Phase timings (seconds) of the pipeline stages worth watching:
  /// the shape-fingerprint sweep, the sharded statement lowering, the
  /// single-writer segment apply, and the CSR repack.
  double ShapeSeconds = 0.0;
  double LowerSeconds = 0.0;
  double ApplySeconds = 0.0;
  double RepackSeconds = 0.0;
};

/// Translates \p P into PAG edges per Figure 1:
///   * every variable and allocation site becomes a node;
///   * Alloc/Null produce new edges;
///   * Assign/Cast produce assign edges, or assignglobal when either
///     side is a global variable;
///   * Load/Store produce load(f)/store(f) edges between base and
///     value/destination;
///   * calls produce entry_i edges (actual -> formal, pairwise) and, for
///     calls with a result, exit_i edges (returned var -> result var)
///     for every call-graph target;
///   * entry/exit edges whose caller and callee share a recursive SCC
///     are marked ContextFree.
///
/// \p Resolver selects virtual-call targets (CHA when null).
/// \p Exec shards statement lowering as in buildPAGDelta.
BuiltPAG buildPAG(const ir::Program &P,
                  const TargetResolver *Resolver = nullptr,
                  const support::ExecContext &Exec = {});

/// Patches \p G and \p Calls in place to match \p G's (edited) program:
/// appends nodes for new variables/allocation sites, re-lowers only the
/// changed methods' segments, and repacks the CSR incrementally.  Every
/// pre-existing node id is preserved.  \p G must have been produced by
/// buildPAG/earlier buildPAGDelta calls over the same program instance.
/// \p ForceFull re-lowers every method regardless of fingerprints (the
/// commit --scratch escape hatch; identical result, O(program) cost).
///
/// \p Exec shards the pipeline (its thread budget; 0 = one worker per
/// hardware thread, and phases reuse its pool when it carries one):
/// the shape-fingerprint sweep partitions the method table, the
/// re-lower set is lowered into per-worker private edge staging
/// buffers, and the CSR repack partitions the dirty node buckets.
/// Everything that assigns ids — node appends, edge slot allocation,
/// segment bookkeeping — stays in single-writer phases, and every
/// parallel phase writes only chunks this graph owns exclusively, so
/// the resulting graph is BIT-IDENTICAL to a 1-thread build: same node
/// ids, same edge slot ids, same CSR layout.
DeltaStats buildPAGDelta(PAG &G, CallGraph &Calls,
                         const TargetResolver *Resolver = nullptr,
                         bool ForceFull = false,
                         const support::ExecContext &Exec = {});

} // namespace pag
} // namespace dynsum

#endif // DYNSUM_PAG_PAGBUILDER_H
