//===----------------------------------------------------------------------===//
///
/// \file
/// DOT export implementation.
///
//===----------------------------------------------------------------------===//

#include "pag/GraphViz.h"

#include "support/OStream.h"

#include <map>
#include <vector>

using namespace dynsum;
using namespace dynsum::pag;

namespace {

/// Escapes a label for a double-quoted DOT string.
std::string escape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

const char *nodeShape(NodeKind K) {
  switch (K) {
  case NodeKind::Object:
    return "ellipse";
  case NodeKind::Local:
    return "box";
  case NodeKind::Global:
    return "hexagon";
  }
  return "box";
}

} // namespace

void dynsum::pag::writeGraphViz(const PAG &G, OStream &OS,
                                const GraphVizOptions &Opts) {
  const ir::Program &P = G.program();
  OS << "digraph \"" << escape(Opts.Title) << "\" {\n";
  OS << "  rankdir=BT;\n  node [fontsize=10];\n  edge [fontsize=9];\n";

  std::vector<bool> HasEdge(G.numNodes(), !Opts.HideIsolatedNodes);
  for (EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    if (!G.edgeAlive(E))
      continue;
    HasEdge[G.edge(E).Src] = true;
    HasEdge[G.edge(E).Dst] = true;
  }

  // Bucket nodes by owning method for clustering.
  std::map<ir::MethodId, std::vector<NodeId>> ByMethod;
  std::vector<NodeId> Unowned;
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    if (!HasEdge[N])
      continue;
    ir::MethodId M = G.node(N).Method;
    if (Opts.ClusterByMethod && M != ir::kNone)
      ByMethod[M].push_back(N);
    else
      Unowned.push_back(N);
  }

  auto EmitNode = [&](NodeId N, const char *Indent) {
    OS << Indent << 'n' << N << " [label=\"" << escape(G.describe(N))
       << "\", shape=" << nodeShape(G.node(N).Kind) << "];\n";
  };

  for (const auto &[Method, Nodes] : ByMethod) {
    OS << "  subgraph cluster_m" << Method << " {\n";
    OS << "    label=\"" << escape(P.describeMethod(Method))
       << "\";\n    style=dotted;\n";
    for (NodeId N : Nodes)
      EmitNode(N, "    ");
    OS << "  }\n";
  }
  for (NodeId N : Unowned)
    EmitNode(N, "  ");

  for (EdgeId EId = 0; EId < G.numEdgeSlots(); ++EId) {
    if (!G.edgeAlive(EId))
      continue;
    const Edge &E = G.edge(EId);
    OS << "  n" << E.Src << " -> n" << E.Dst << " [label=\""
       << edgeKindName(E.Kind);
    if (E.Kind == EdgeKind::Load || E.Kind == EdgeKind::Store)
      OS << '(' << P.names().text(P.fields()[E.Aux].Name) << ')';
    else if (E.Kind == EdgeKind::Entry || E.Kind == EdgeKind::Exit) {
      const ir::CallSite &CS = P.callSite(E.Aux);
      OS << (CS.Label != ir::kNone ? CS.Label : CS.Id);
    }
    OS << '"';
    if (!isLocalEdgeKind(E.Kind))
      OS << ", style=dashed";
    if (E.ContextFree)
      OS << ", color=gray";
    OS << "];\n";
  }
  OS << "}\n";
}

std::string dynsum::pag::toGraphViz(const PAG &G,
                                    const GraphVizOptions &Opts) {
  StringOStream OS;
  writeGraphViz(G, OS, Opts);
  return OS.str();
}
