//===----------------------------------------------------------------------===//
///
/// \file
/// PAG storage, indexing and statistics.
///
/// Two packing paths share the CSR invariants:
///
///   finalize()       full counting-sort pack (first build, compaction)
///   finalizeDelta()  per-node region rewrite for the nodes incident to
///                    freed/added edges only — O(edit), not O(graph)
///
/// The delta path relies on per-node offset stride 8 (each node carries
/// its own end boundary), so a grown region can relocate to the array
/// tail without shifting any other node's region.  Accumulated slack
/// (dead edge slots + relocation holes) above half the live size
/// triggers a compacting full pack.
///
/// All persistent storage is copy-on-write chunked (see PAG.h): serial
/// mutation goes through the CoW accessors, and each parallel write
/// phase is preceded by a serial pass that uniquifies its destination
/// chunks, so workers only ever write chunks this graph owns
/// exclusively.
///
//===----------------------------------------------------------------------===//

#include "pag/PAG.h"

#include "support/Debug.h"
#include "support/OStream.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace dynsum;
using namespace dynsum::pag;

const char *dynsum::pag::edgeKindName(EdgeKind K) {
  switch (K) {
  case EdgeKind::New:
    return "new";
  case EdgeKind::Assign:
    return "assign";
  case EdgeKind::Load:
    return "load";
  case EdgeKind::Store:
    return "store";
  case EdgeKind::AssignGlobal:
    return "assignglobal";
  case EdgeKind::Entry:
    return "entry";
  case EdgeKind::Exit:
    return "exit";
  }
  unreachable("bad edge kind");
}

double PAGStats::locality() const {
  uint64_t Local = EdgesByKind[unsigned(EdgeKind::New)] +
                   EdgesByKind[unsigned(EdgeKind::Assign)] +
                   EdgesByKind[unsigned(EdgeKind::Load)] +
                   EdgesByKind[unsigned(EdgeKind::Store)];
  uint64_t Total = totalEdges();
  return Total == 0 ? 1.0 : double(Local) / double(Total);
}

uint64_t PAGStats::totalEdges() const {
  uint64_t Total = 0;
  for (uint64_t N : EdgesByKind)
    Total += N;
  return Total;
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

NodeId PAG::addNode(NodeKind Kind, uint32_t IrId, ir::MethodId Method) {
  NodeId Id = NodeId(Nodes.size());
  Node N;
  N.Kind = Kind;
  N.IrId = IrId;
  N.Method = Method;
  Nodes.push_back(N);
  if (Kind == NodeKind::Object) {
    if (AllocToNode.size() <= IrId)
      AllocToNode.resize(IrId + 1, ir::kNone);
    assert(AllocToNode[IrId] == ir::kNone && "allocation site re-added");
    AllocToNode.mutableAt(IrId) = Id;
    if (NumBuiltAllocs <= IrId)
      NumBuiltAllocs = IrId + 1;
  } else {
    if (VarToNode.size() <= IrId)
      VarToNode.resize(IrId + 1, ir::kNone);
    assert(VarToNode[IrId] == ir::kNone && "variable re-added");
    VarToNode.mutableAt(IrId) = Id;
    if (NumBuiltVars <= IrId)
      NumBuiltVars = IrId + 1;
  }
  return Id;
}

void PAG::beginSegment(ir::MethodId M) {
  assert(OpenSegment == ir::kNone && "nested beginSegment");
  if (Segments.size() <= M)
    Segments.resize(M + 1);
  // Free the segment's previous edges.  Their bucket membership is
  // captured into the pending scratch *now*, before slot reuse can
  // overwrite the edge payloads.
  std::vector<EdgeId> &Seg = Segments.mutableAt(M);
  for (EdgeId E : Seg) {
    assert(!EdgeDead[E] && "segment edge already dead");
    EdgeDead.mutableAt(E) = true;
    FreeSlots.push_back(E);
    PendingDead.push_back(E);
    PendingDeadMeta.push_back(Edges[E]);
    --NumAliveEdges;
  }
  Seg.clear();
  OpenSegment = M;
}

void PAG::endSegment() {
  assert(OpenSegment != ir::kNone && "endSegment without beginSegment");
  OpenSegment = ir::kNone;
}

EdgeId PAG::allocEdgeSlot(const Edge &E) {
  if (!FreeSlots.empty()) {
    EdgeId Id = FreeSlots.back();
    FreeSlots.pop_back();
    Edges.mutableAt(Id) = E;
    EdgeDead.mutableAt(Id) = false;
    return Id;
  }
  EdgeId Id = EdgeId(Edges.size());
  Edges.push_back(E);
  EdgeDead.push_back(false);
  return Id;
}

EdgeId PAG::addEdge(NodeId Src, NodeId Dst, EdgeKind Kind, uint32_t Aux,
                    bool ContextFree) {
  assert(OpenSegment != ir::kNone && "addEdge outside a segment");
  assert(Src < Nodes.size() && Dst < Nodes.size() && "edge endpoint range");
  Edge E;
  E.Src = Src;
  E.Dst = Dst;
  E.Kind = Kind;
  E.Aux = Aux;
  E.ContextFree = ContextFree;
  EdgeId Id = allocEdgeSlot(E);
  ++NumAliveEdges;
  Segments.mutableAt(OpenSegment).push_back(Id);
  PendingNew.push_back(Id);
  return Id;
}

//===----------------------------------------------------------------------===//
// Full pack
//===----------------------------------------------------------------------===//

void PAG::compactEdgeSlots() {
  if (FreeSlots.empty())
    return;
  std::vector<EdgeId> Remap(Edges.size(), ir::kNone);
  size_t Next = 0;
  for (EdgeId E = 0; E < Edges.size(); ++E) {
    if (EdgeDead[E])
      continue;
    Remap[E] = EdgeId(Next);
    if (Next != E) {
      Edge Tmp = Edges[E]; // copy first: mutableAt may replace E's chunk
      Edges.mutableAt(Next) = Tmp;
    }
    ++Next;
  }
  Edges.resize(Next);
  EdgeDead.assign(Next, false);
  FreeSlots.clear();
  for (size_t M = 0; M < Segments.size(); ++M) {
    if (Segments[M].empty())
      continue;
    for (EdgeId &E : Segments.mutableAt(M))
      E = Remap[E];
  }
}

void PAG::packDirection(bool In) {
  FlatTable &Flat = In ? InFlat : OutFlat;
  OffsetTable &Off = In ? InOff : OutOff;
  size_t NumSlots = Nodes.size() * kOffsetStride;

  // Counting sort of edge ids into (node, kind) buckets: one counting
  // pass, one placement-assignment pass, one scatter pass.  The
  // scatter iterates edges in id order, so each bucket keeps edge-id
  // (i.e. insertion) order — full rebuilds are bit-for-bit
  // deterministic.  Placement goes through placeRegion so no node's
  // region straddles a chunk boundary (pads to the next chunk instead).
  std::vector<uint32_t> Count(Nodes.size() * kNumEdgeKinds, 0);
  for (EdgeId Id = 0; Id < Edges.size(); ++Id) {
    const Edge &E = Edges[Id];
    ++Count[size_t(In ? E.Dst : E.Src) * kNumEdgeKinds + unsigned(E.Kind)];
  }

  Flat.reset();
  Off.assign(NumSlots, 0);
  std::vector<uint32_t> Cursor(Count.size());
  for (size_t N = 0; N < Nodes.size(); ++N) {
    size_t RegionSize = 0;
    for (unsigned K = 0; K < kNumEdgeKinds; ++K)
      RegionSize += Count[N * kNumEdgeKinds + K];
    uint32_t Run = uint32_t(Flat.placeRegion(RegionSize));
    for (unsigned K = 0; K < kNumEdgeKinds; ++K) {
      Off.rawAt(N * kOffsetStride + K) = Run;
      Cursor[N * kNumEdgeKinds + K] = Run;
      Run += Count[N * kNumEdgeKinds + K];
    }
    Off.rawAt(N * kOffsetStride + kNumEdgeKinds) = Run;
  }

  for (EdgeId Id = 0; Id < Edges.size(); ++Id) {
    const Edge &E = Edges[Id];
    Flat.rawAt(Cursor[size_t(In ? E.Dst : E.Src) * kNumEdgeKinds +
                      unsigned(E.Kind)]++) = Id;
  }
}

void PAG::ensureOffsetCoverage() {
  InOff.resize(Nodes.size() * kOffsetStride, 0);
  OutOff.resize(Nodes.size() * kOffsetStride, 0);
  FieldStoreOff.resize(Prog.fields().size() * 2, 0);
  FieldLoadOff.resize(Prog.fields().size() * 2, 0);
}

void PAG::finalize() {
  assert(OpenSegment == ir::kNone &&
         "finalize with an open segment (partial populate)");
  if (Finalized && PendingDead.empty() && PendingNew.empty() &&
      FreeSlots.empty() && FlatHoles + FieldHoles == 0) {
    // Idempotent: nothing changed since the last pack and the arrays
    // are already dense; at most extend coverage over freshly added
    // (still edgeless) nodes.  With dead slots or relocation holes
    // present the full pack below runs, honoring the contract that
    // finalize() always leaves a compact, densely numbered graph.
    ensureOffsetCoverage();
    return;
  }

  compactEdgeSlots();
  packDirection(/*In=*/true);
  packDirection(/*In=*/false);

  // Field-indexed CSR over store/load edges.
  size_t NumFields = Prog.fields().size();
  FieldStoreOff.assign(NumFields * 2, 0);
  FieldLoadOff.assign(NumFields * 2, 0);
  std::vector<uint32_t> StoreCount(NumFields, 0), LoadCount(NumFields, 0);
  for (EdgeId Id = 0; Id < Edges.size(); ++Id) {
    const Edge &E = Edges[Id];
    if (E.Kind == EdgeKind::Store)
      ++StoreCount[E.Aux];
    else if (E.Kind == EdgeKind::Load)
      ++LoadCount[E.Aux];
  }
  FieldStoreFlat.reset();
  FieldLoadFlat.reset();
  std::vector<uint32_t> StoreCursor(NumFields), LoadCursor(NumFields);
  for (size_t F = 0; F < NumFields; ++F) {
    uint32_t SB = uint32_t(FieldStoreFlat.placeRegion(StoreCount[F]));
    FieldStoreOff.rawAt(F * 2) = SB;
    FieldStoreOff.rawAt(F * 2 + 1) = SB + StoreCount[F];
    StoreCursor[F] = SB;
    uint32_t LB = uint32_t(FieldLoadFlat.placeRegion(LoadCount[F]));
    FieldLoadOff.rawAt(F * 2) = LB;
    FieldLoadOff.rawAt(F * 2 + 1) = LB + LoadCount[F];
    LoadCursor[F] = LB;
  }
  for (EdgeId Id = 0; Id < Edges.size(); ++Id) {
    const Edge &E = Edges[Id];
    if (E.Kind == EdgeKind::Store)
      FieldStoreFlat.rawAt(StoreCursor[E.Aux]++) = Id;
    else if (E.Kind == EdgeKind::Load)
      FieldLoadFlat.rawAt(LoadCursor[E.Aux]++) = Id;
  }

  // Rederive every node's boundary flags from the live edge set.
  for (size_t N = 0; N < Nodes.size(); ++N) {
    Node &Nd = Nodes.mutableAt(N);
    Nd.HasLocalEdge = Nd.HasGlobalIn = Nd.HasGlobalOut = false;
  }
  for (EdgeId Id = 0; Id < Edges.size(); ++Id) {
    const Edge E = Edges[Id]; // by value: mutableAt may move chunks
    if (isLocalEdgeKind(E.Kind)) {
      Nodes.mutableAt(E.Src).HasLocalEdge = true;
      Nodes.mutableAt(E.Dst).HasLocalEdge = true;
    } else {
      Nodes.mutableAt(E.Dst).HasGlobalIn = true;
      Nodes.mutableAt(E.Src).HasGlobalOut = true;
    }
  }

  FlatHoles = FieldHoles = 0;
  PendingDead.clear();
  PendingDeadMeta.clear();
  PendingNew.clear();
  Finalized = true;
}

//===----------------------------------------------------------------------===//
// Incremental repack
//===----------------------------------------------------------------------===//

void PAG::rederiveFlags(NodeId N) {
  Node &Nd = Nodes.rawAt(N);
  Nd.HasLocalEdge = Nd.HasGlobalIn = Nd.HasGlobalOut = false;
  for (EdgeId E : inEdges(N)) {
    if (isLocalEdgeKind(Edges[E].Kind))
      Nd.HasLocalEdge = true;
    else
      Nd.HasGlobalIn = true;
  }
  for (EdgeId E : outEdges(N)) {
    if (isLocalEdgeKind(Edges[E].Kind))
      Nd.HasLocalEdge = true;
    else
      Nd.HasGlobalOut = true;
  }
}

namespace {

/// (node*kinds + kind, edge) pairs sorted by bucket: the per-bucket
/// addition lists of one repack, range-scanned per affected node.
struct BucketAdds {
  std::vector<std::pair<uint64_t, EdgeId>> Pairs;

  void add(NodeId N, EdgeKind K, EdgeId E) {
    Pairs.emplace_back(uint64_t(N) * kNumEdgeKinds + unsigned(K), E);
  }
  void sort() {
    std::stable_sort(
        Pairs.begin(), Pairs.end(),
        [](const auto &A, const auto &B) { return A.first < B.first; });
  }
  /// Appends the additions of bucket (N, K) to \p Out.
  void appendTo(NodeId N, EdgeKind K, std::vector<EdgeId> &Out) const {
    uint64_t Key = uint64_t(N) * kNumEdgeKinds + unsigned(K);
    auto It = std::lower_bound(Pairs.begin(), Pairs.end(), Key,
                               [](const auto &P, uint64_t K2) {
                                 return P.first < K2;
                               });
    for (; It != Pairs.end() && It->first == Key; ++It)
      Out.push_back(It->second);
  }
};

} // namespace

void PAG::repackNodes(const std::vector<NodeId> &AffectedNodes,
                      const std::vector<char> &Freed,
                      const support::ExecContext &Exec) {
  BucketAdds InAdds, OutAdds;
  for (EdgeId E : PendingNew) {
    const Edge &Ed = Edges[E];
    InAdds.add(Ed.Dst, Ed.Kind, E);
    OutAdds.add(Ed.Src, Ed.Kind, E);
  }
  InAdds.sort();
  OutAdds.sort();

  // Offset tables may be short when nodes were added since the last
  // pack: new nodes get empty regions at offset 0.
  InOff.resize(Nodes.size() * kOffsetStride, 0);
  OutOff.resize(Nodes.size() * kOffsetStride, 0);

  // Three phases per direction, bit-identical to the old serial loop at
  // every thread count:
  //
  //   gather   (parallel)  workers own disjoint ranges of the sorted
  //                        dirty node list and compute each node's new
  //                        region contents + kind bounds from the old
  //                        CSR, the freed marks and the add lists;
  //   place    (serial)    one pass over the nodes in order replays the
  //                        serial placement policy exactly — rewrite in
  //                        place when the region still fits, otherwise
  //                        relocate via placeRegion — and uniquifies
  //                        every destination chunk (flat regions and
  //                        offset entries) while still serial;
  //   scatter  (parallel)  workers copy their regions into their now
  //                        disjoint, exclusively owned destination
  //                        ranges and write the offset entries raw.
  size_t NumAffected = AffectedNodes.size();
  std::vector<std::vector<EdgeId>> Regions(NumAffected);
  std::vector<uint32_t> Bounds(NumAffected * kOffsetStride);
  std::vector<uint32_t> Begins(NumAffected);

  auto RebuildDirection = [&](bool In) {
    FlatTable &Flat = In ? InFlat : OutFlat;
    OffsetTable &Off = In ? InOff : OutOff;
    const BucketAdds &Adds = In ? InAdds : OutAdds;

    parallelChunks(NumAffected, Exec,
                   [&](size_t ChunkBegin, size_t ChunkEnd, unsigned) {
                     for (size_t I = ChunkBegin; I < ChunkEnd; ++I) {
                       NodeId N = AffectedNodes[I];
                       size_t Base = size_t(N) * kOffsetStride;
                       std::vector<EdgeId> &Region = Regions[I];
                       Region.clear();
                       for (unsigned K = 0; K < kNumEdgeKinds; ++K) {
                         Bounds[I * kOffsetStride + K] =
                             uint32_t(Region.size());
                         uint32_t BB = Off[Base + K];
                         uint32_t BE = Off[Base + K + 1];
                         if (BB != BE) {
                           const EdgeId *P = Flat.addr(BB);
                           for (uint32_t X = 0; X < BE - BB; ++X) {
                             EdgeId E = P[X];
                             if (!Freed[E])
                               Region.push_back(E);
                           }
                         }
                         Adds.appendTo(N, EdgeKind(K), Region);
                       }
                       Bounds[I * kOffsetStride + kNumEdgeKinds] =
                           uint32_t(Region.size());
                     }
                   });

    for (size_t I = 0; I < NumAffected; ++I) {
      size_t Base = size_t(AffectedNodes[I]) * kOffsetStride;
      size_t OldBegin = Off[Base];
      size_t OldSize = Off[Base + kNumEdgeKinds] - OldBegin;
      if (Regions[I].size() <= OldSize) {
        Begins[I] = uint32_t(OldBegin); // in place; trailing slack holes
        FlatHoles += OldSize - Regions[I].size();
        if (!Regions[I].empty())
          Flat.ensureUniqueRegion(OldBegin);
      } else {
        Begins[I] = uint32_t(Flat.placeRegion(Regions[I].size()));
        FlatHoles += OldSize;
      }
      // A node's eight offsets share a chunk (stride divides the chunk
      // size); uniquify it here so the scatter may write raw.
      Off.ensureWritable(Base);
    }

    parallelChunks(NumAffected, Exec,
                   [&](size_t ChunkBegin, size_t ChunkEnd, unsigned) {
                     for (size_t I = ChunkBegin; I < ChunkEnd; ++I) {
                       size_t Base =
                           size_t(AffectedNodes[I]) * kOffsetStride;
                       if (!Regions[I].empty())
                         std::copy(Regions[I].begin(), Regions[I].end(),
                                   Flat.regionPtr(Begins[I]));
                       for (unsigned K = 0; K < kOffsetStride; ++K)
                         Off.rawAt(Base + K) =
                             Begins[I] + Bounds[I * kOffsetStride + K];
                     }
                   });
  };

  RebuildDirection(/*In=*/true);
  RebuildDirection(/*In=*/false);

  for (NodeId N : AffectedNodes)
    Nodes.ensureWritable(N);
  parallelChunks(NumAffected, Exec,
                 [&](size_t ChunkBegin, size_t ChunkEnd, unsigned) {
                   for (size_t I = ChunkBegin; I < ChunkEnd; ++I)
                     rederiveFlags(AffectedNodes[I]);
                 });
}

void PAG::repackFields(const std::vector<ir::FieldId> &AffectedFields,
                       const std::vector<char> &Freed,
                       const support::ExecContext &Exec) {
  size_t NumFields = Prog.fields().size();
  FieldStoreOff.resize(NumFields * 2, 0);
  FieldLoadOff.resize(NumFields * 2, 0);

  // Per-field addition lists from the new edges.
  std::vector<std::pair<ir::FieldId, EdgeId>> StoreAdds, LoadAdds;
  for (EdgeId E : PendingNew) {
    const Edge &Ed = Edges[E];
    if (Ed.Kind == EdgeKind::Store)
      StoreAdds.emplace_back(Ed.Aux, E);
    else if (Ed.Kind == EdgeKind::Load)
      LoadAdds.emplace_back(Ed.Aux, E);
  }
  auto ByField = [](const auto &A, const auto &B) {
    return A.first < B.first;
  };
  std::stable_sort(StoreAdds.begin(), StoreAdds.end(), ByField);
  std::stable_sort(LoadAdds.begin(), LoadAdds.end(), ByField);

  // Same gather / place / scatter structure as repackNodes, over the
  // affected field list.
  size_t NumAffected = AffectedFields.size();
  std::vector<std::vector<EdgeId>> Regions(NumAffected);
  std::vector<uint32_t> Begins(NumAffected);

  auto RebuildDirection = [&](bool IsStore) {
    FlatTable &Flat = IsStore ? FieldStoreFlat : FieldLoadFlat;
    OffsetTable &Off = IsStore ? FieldStoreOff : FieldLoadOff;
    const auto &Adds = IsStore ? StoreAdds : LoadAdds;

    parallelChunks(NumAffected, Exec,
                   [&](size_t ChunkBegin, size_t ChunkEnd, unsigned) {
                     for (size_t I = ChunkBegin; I < ChunkEnd; ++I) {
                       ir::FieldId F = AffectedFields[I];
                       std::vector<EdgeId> &Region = Regions[I];
                       Region.clear();
                       uint32_t BB = Off[F * 2];
                       uint32_t BE = Off[F * 2 + 1];
                       if (BB != BE) {
                         const EdgeId *P = Flat.addr(BB);
                         for (uint32_t X = 0; X < BE - BB; ++X)
                           if (!Freed[P[X]])
                             Region.push_back(P[X]);
                       }
                       auto It = std::lower_bound(
                           Adds.begin(), Adds.end(), F,
                           [](const auto &P2, ir::FieldId F2) {
                             return P2.first < F2;
                           });
                       for (; It != Adds.end() && It->first == F; ++It)
                         Region.push_back(It->second);
                     }
                   });

    for (size_t I = 0; I < NumAffected; ++I) {
      ir::FieldId F = AffectedFields[I];
      size_t OldBegin = Off[F * 2];
      size_t OldSize = Off[F * 2 + 1] - OldBegin;
      if (Regions[I].size() <= OldSize) {
        Begins[I] = uint32_t(OldBegin);
        FieldHoles += OldSize - Regions[I].size();
        if (!Regions[I].empty())
          Flat.ensureUniqueRegion(OldBegin);
      } else {
        Begins[I] = uint32_t(Flat.placeRegion(Regions[I].size()));
        FieldHoles += OldSize;
      }
      // A field's [begin, end) pair shares a chunk (2 divides the
      // chunk size).
      Off.ensureWritable(F * 2);
    }

    parallelChunks(NumAffected, Exec,
                   [&](size_t ChunkBegin, size_t ChunkEnd, unsigned) {
                     for (size_t I = ChunkBegin; I < ChunkEnd; ++I) {
                       ir::FieldId F = AffectedFields[I];
                       if (!Regions[I].empty())
                         std::copy(Regions[I].begin(), Regions[I].end(),
                                   Flat.regionPtr(Begins[I]));
                       Off.rawAt(F * 2) = Begins[I];
                       Off.rawAt(F * 2 + 1) =
                           uint32_t(Begins[I] + Regions[I].size());
                     }
                   });
  };

  RebuildDirection(/*IsStore=*/true);
  RebuildDirection(/*IsStore=*/false);
}

void PAG::finalizeDelta(const support::ExecContext &Exec) {
  assert(OpenSegment == ir::kNone &&
         "finalizeDelta with an open segment (partial populate)");
  LastRepackAffected.clear();
  if (!Finalized) {
    finalize();
    LastRepackCompacted = true;
    return;
  }
  ensureOffsetCoverage();
  if (PendingDead.empty() && PendingNew.empty()) {
    LastRepackCompacted = false;
    return;
  }

  // Compaction policy: when dead slots + relocation holes exceed half
  // the live size, a full pack is both cheaper long-term and keeps the
  // arrays cache-dense.  (Chunk-alignment padding is excluded: a full
  // pack would re-pad, so counting it could trigger compaction every
  // round without reducing it.)
  size_t Slack = deadEdgeSlots() + FlatHoles + FieldHoles;
  if (Slack > NumAliveEdges / 2 + 1024) {
    finalize();
    LastRepackCompacted = true;
    return;
  }

  // Affected nodes/fields: endpoints and labels of every freed or added
  // edge.  Freed endpoints come from PendingDeadMeta — the payload
  // snapshot taken at free time — because a freed slot may since have
  // been reused and overwritten by a new edge.
  std::vector<NodeId> AffectedNodes;
  std::vector<ir::FieldId> AffectedFields;
  auto Touch = [&](const Edge &E) {
    AffectedNodes.push_back(E.Src);
    AffectedNodes.push_back(E.Dst);
    if (E.Kind == EdgeKind::Store || E.Kind == EdgeKind::Load)
      AffectedFields.push_back(E.Aux);
  };
  for (const Edge &E : PendingDeadMeta)
    Touch(E);
  for (EdgeId E : PendingNew)
    Touch(Edges[E]);
  std::sort(AffectedNodes.begin(), AffectedNodes.end());
  AffectedNodes.erase(
      std::unique(AffectedNodes.begin(), AffectedNodes.end()),
      AffectedNodes.end());
  std::sort(AffectedFields.begin(), AffectedFields.end());
  AffectedFields.erase(
      std::unique(AffectedFields.begin(), AffectedFields.end()),
      AffectedFields.end());

  // Freed-this-round marks: a slot freed by beginSegment this round is
  // filtered out of every surviving bucket, even if the slot was
  // immediately reused (its new incarnation arrives via the add
  // lists).  Built once, shared by both repack passes.
  std::vector<char> Freed(Edges.size(), 0);
  for (EdgeId E : PendingDead)
    Freed[E] = 1;

  repackNodes(AffectedNodes, Freed, Exec);
  repackFields(AffectedFields, Freed, Exec);

  PendingDead.clear();
  PendingDeadMeta.clear();
  PendingNew.clear();
  LastRepackCompacted = false;
  LastRepackAffected = std::move(AffectedNodes);
}

//===----------------------------------------------------------------------===//
// Reading
//===----------------------------------------------------------------------===//

EdgeSpan PAG::storesOfField(ir::FieldId F) const {
  assert(Finalized && "PAG not finalized");
  assert(F < Prog.fields().size() && "field id out of range");
  if (F * 2 >= FieldStoreOff.size())
    return EdgeSpan(); // field created after the last pack, no edges yet
  return spanOf(FieldStoreFlat, FieldStoreOff, F * 2, F * 2 + 1);
}

EdgeSpan PAG::loadsOfField(ir::FieldId F) const {
  assert(Finalized && "PAG not finalized");
  assert(F < Prog.fields().size() && "field id out of range");
  if (F * 2 >= FieldLoadOff.size())
    return EdgeSpan();
  return spanOf(FieldLoadFlat, FieldLoadOff, F * 2, F * 2 + 1);
}

ir::AllocId PAG::allocOf(NodeId N) const {
  assert(isObject(N) && "allocOf on a variable node");
  return Nodes[N].IrId;
}

std::string PAG::describe(NodeId N) const {
  const Node &Nd = Nodes[N];
  if (Nd.Kind == NodeKind::Object)
    return Prog.describeAlloc(Nd.IrId);
  return Prog.describeVar(Nd.IrId);
}

PAGStats PAG::stats() const {
  PAGStats S;
  S.NumMethods = Prog.methods().size();
  for (size_t I = 0; I < Nodes.size(); ++I) {
    switch (Nodes[I].Kind) {
    case NodeKind::Object:
      ++S.NumObjects;
      break;
    case NodeKind::Local:
      ++S.NumLocals;
      break;
    case NodeKind::Global:
      ++S.NumGlobals;
      break;
    }
  }
  for (EdgeId E = 0; E < Edges.size(); ++E)
    if (!EdgeDead[E])
      ++S.EdgesByKind[unsigned(Edges[E].Kind)];
  return S;
}

PAGMemoryStats PAG::memoryStats() const {
  support::ChunkMemoryStats C;
  C += Nodes.memory();
  C += Edges.memory();
  C += EdgeDead.memory();
  C += Segments.memory();
  C += InFlat.memory();
  C += OutFlat.memory();
  C += InOff.memory();
  C += OutOff.memory();
  C += FieldStoreFlat.memory();
  C += FieldLoadFlat.memory();
  C += FieldStoreOff.memory();
  C += FieldLoadOff.memory();
  C += VarToNode.memory();
  C += AllocToNode.memory();
  C += BuiltBodyFp.memory();
  C += BuiltIfaceFp.memory();
  C += BuiltShapeFp.memory();

  PAGMemoryStats S;
  S.Chunks = C.Chunks;
  S.SharedChunks = C.SharedChunks;
  S.TotalBytes = C.TotalBytes + C.TableBytes;
  S.SharedBytes = C.SharedBytes;

  // The segment table's chunks hold vector objects whose heap blocks
  // the generic accounting cannot see; attribute each segment's heap
  // to the sharing state of its chunk.
  for (size_t M = 0; M < Segments.size(); ++M) {
    size_t Heap = Segments[M].capacity() * sizeof(EdgeId);
    S.TotalBytes += Heap;
    if (Segments.sharedAt(M))
      S.SharedBytes += Heap;
  }

  S.RetainedBytes = S.TotalBytes - S.SharedBytes;
  S.ScratchBytes = FreeSlots.capacity() * sizeof(EdgeId) +
                   PendingDead.capacity() * sizeof(EdgeId) +
                   PendingDeadMeta.capacity() * sizeof(Edge) +
                   PendingNew.capacity() * sizeof(EdgeId);
  return S;
}

void PAG::dump(OStream &OS) const {
  OS << "PAG: " << uint64_t(Nodes.size()) << " nodes, "
     << uint64_t(NumAliveEdges) << " edges\n";
  for (EdgeId Id = 0; Id < Edges.size(); ++Id) {
    if (EdgeDead[Id])
      continue;
    const Edge &E = Edges[Id];
    OS << "  " << describe(E.Src) << " --" << edgeKindName(E.Kind);
    if (E.Kind == EdgeKind::Load || E.Kind == EdgeKind::Store)
      OS << '(' << Prog.names().text(Prog.fields()[E.Aux].Name) << ')';
    else if (E.Kind == EdgeKind::Entry || E.Kind == EdgeKind::Exit) {
      const ir::CallSite &CS = Prog.callSite(E.Aux);
      OS << '[' << (CS.Label != ir::kNone ? CS.Label : CS.Id) << ']';
    }
    if (E.ContextFree)
      OS << "{rec}";
    OS << "--> " << describe(E.Dst) << '\n';
  }
}
