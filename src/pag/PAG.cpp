//===----------------------------------------------------------------------===//
///
/// \file
/// PAG storage, indexing and statistics.
///
//===----------------------------------------------------------------------===//

#include "pag/PAG.h"

#include "support/Debug.h"
#include "support/OStream.h"

#include <cassert>

using namespace dynsum;
using namespace dynsum::pag;

const char *dynsum::pag::edgeKindName(EdgeKind K) {
  switch (K) {
  case EdgeKind::New:
    return "new";
  case EdgeKind::Assign:
    return "assign";
  case EdgeKind::Load:
    return "load";
  case EdgeKind::Store:
    return "store";
  case EdgeKind::AssignGlobal:
    return "assignglobal";
  case EdgeKind::Entry:
    return "entry";
  case EdgeKind::Exit:
    return "exit";
  }
  unreachable("bad edge kind");
}

double PAGStats::locality() const {
  uint64_t Local = EdgesByKind[unsigned(EdgeKind::New)] +
                   EdgesByKind[unsigned(EdgeKind::Assign)] +
                   EdgesByKind[unsigned(EdgeKind::Load)] +
                   EdgesByKind[unsigned(EdgeKind::Store)];
  uint64_t Total = totalEdges();
  return Total == 0 ? 1.0 : double(Local) / double(Total);
}

uint64_t PAGStats::totalEdges() const {
  uint64_t Total = 0;
  for (uint64_t N : EdgesByKind)
    Total += N;
  return Total;
}

NodeId PAG::addNode(NodeKind Kind, uint32_t IrId, ir::MethodId Method) {
  assert(!Finalized && "adding node after finalize");
  NodeId Id = NodeId(Nodes.size());
  Node N;
  N.Kind = Kind;
  N.IrId = IrId;
  N.Method = Method;
  Nodes.push_back(N);
  if (Kind == NodeKind::Object) {
    if (AllocToNode.size() <= IrId)
      AllocToNode.resize(IrId + 1, ir::kNone);
    AllocToNode[IrId] = Id;
  } else {
    if (VarToNode.size() <= IrId)
      VarToNode.resize(IrId + 1, ir::kNone);
    VarToNode[IrId] = Id;
  }
  return Id;
}

void PAG::reset() {
  Nodes.clear();
  Edges.clear();
  InFlat.clear();
  OutFlat.clear();
  InOff.clear();
  OutOff.clear();
  FieldStoreFlat.clear();
  FieldLoadFlat.clear();
  FieldStoreOff.clear();
  FieldLoadOff.clear();
  VarToNode.clear();
  AllocToNode.clear();
  Finalized = false;
}

EdgeId PAG::addEdge(NodeId Src, NodeId Dst, EdgeKind Kind, uint32_t Aux,
                    bool ContextFree) {
  assert(!Finalized && "adding edge after finalize");
  assert(Src < Nodes.size() && Dst < Nodes.size() && "edge endpoint range");
  EdgeId Id = EdgeId(Edges.size());
  Edge E;
  E.Src = Src;
  E.Dst = Dst;
  E.Kind = Kind;
  E.Aux = Aux;
  E.ContextFree = ContextFree;
  Edges.push_back(E);
  if (isLocalEdgeKind(Kind)) {
    Nodes[Src].HasLocalEdge = true;
    Nodes[Dst].HasLocalEdge = true;
  } else {
    Nodes[Dst].HasGlobalIn = true;
    Nodes[Src].HasGlobalOut = true;
  }
  return Id;
}

void PAG::finalize() {
  assert(!Finalized && "finalize called twice");
  size_t NumBuckets = Nodes.size() * kNumEdgeKinds;
  size_t NumFields = Prog.fields().size();

  // Counting sort of edge ids into (node, kind) buckets: one counting
  // pass, one prefix-sum pass, one placement pass per direction.
  // Placement iterates edges in id order, so each bucket keeps edge-id
  // (i.e. insertion) order — rebuilds are bit-for-bit deterministic.
  auto Bucket = [](NodeId N, EdgeKind K) {
    return size_t(N) * kNumEdgeKinds + unsigned(K);
  };
  InOff.assign(NumBuckets + 1, 0);
  OutOff.assign(NumBuckets + 1, 0);
  FieldStoreOff.assign(NumFields + 1, 0);
  FieldLoadOff.assign(NumFields + 1, 0);
  for (const Edge &E : Edges) {
    ++InOff[Bucket(E.Dst, E.Kind) + 1];
    ++OutOff[Bucket(E.Src, E.Kind) + 1];
    if (E.Kind == EdgeKind::Store)
      ++FieldStoreOff[E.Aux + 1];
    else if (E.Kind == EdgeKind::Load)
      ++FieldLoadOff[E.Aux + 1];
  }
  for (size_t I = 1; I < InOff.size(); ++I) {
    InOff[I] += InOff[I - 1];
    OutOff[I] += OutOff[I - 1];
  }
  for (size_t I = 1; I <= NumFields; ++I) {
    FieldStoreOff[I] += FieldStoreOff[I - 1];
    FieldLoadOff[I] += FieldLoadOff[I - 1];
  }
  InFlat.resize(Edges.size());
  OutFlat.resize(Edges.size());
  FieldStoreFlat.resize(FieldStoreOff[NumFields]);
  FieldLoadFlat.resize(FieldLoadOff[NumFields]);
  std::vector<uint32_t> InCursor(InOff.begin(), InOff.end() - 1);
  std::vector<uint32_t> OutCursor(OutOff.begin(), OutOff.end() - 1);
  std::vector<uint32_t> StoreCursor(FieldStoreOff.begin(),
                                    FieldStoreOff.end() - 1);
  std::vector<uint32_t> LoadCursor(FieldLoadOff.begin(),
                                   FieldLoadOff.end() - 1);
  for (EdgeId Id = 0; Id < Edges.size(); ++Id) {
    const Edge &E = Edges[Id];
    InFlat[InCursor[Bucket(E.Dst, E.Kind)]++] = Id;
    OutFlat[OutCursor[Bucket(E.Src, E.Kind)]++] = Id;
    if (E.Kind == EdgeKind::Store)
      FieldStoreFlat[StoreCursor[E.Aux]++] = Id;
    else if (E.Kind == EdgeKind::Load)
      FieldLoadFlat[LoadCursor[E.Aux]++] = Id;
  }
  Finalized = true;
}

EdgeSpan PAG::storesOfField(ir::FieldId F) const {
  assert(Finalized && "PAG not finalized");
  assert(F < Prog.fields().size() && "field id out of range");
  return spanOf(FieldStoreFlat, FieldStoreOff, F, F + 1);
}

EdgeSpan PAG::loadsOfField(ir::FieldId F) const {
  assert(Finalized && "PAG not finalized");
  assert(F < Prog.fields().size() && "field id out of range");
  return spanOf(FieldLoadFlat, FieldLoadOff, F, F + 1);
}

ir::AllocId PAG::allocOf(NodeId N) const {
  assert(isObject(N) && "allocOf on a variable node");
  return Nodes[N].IrId;
}

std::string PAG::describe(NodeId N) const {
  const Node &Nd = Nodes[N];
  if (Nd.Kind == NodeKind::Object)
    return Prog.describeAlloc(Nd.IrId);
  return Prog.describeVar(Nd.IrId);
}

PAGStats PAG::stats() const {
  PAGStats S;
  S.NumMethods = Prog.methods().size();
  for (const Node &N : Nodes) {
    switch (N.Kind) {
    case NodeKind::Object:
      ++S.NumObjects;
      break;
    case NodeKind::Local:
      ++S.NumLocals;
      break;
    case NodeKind::Global:
      ++S.NumGlobals;
      break;
    }
  }
  for (const Edge &E : Edges)
    ++S.EdgesByKind[unsigned(E.Kind)];
  return S;
}

void PAG::dump(OStream &OS) const {
  OS << "PAG: " << uint64_t(Nodes.size()) << " nodes, "
     << uint64_t(Edges.size()) << " edges\n";
  for (const Edge &E : Edges) {
    OS << "  " << describe(E.Src) << " --" << edgeKindName(E.Kind);
    if (E.Kind == EdgeKind::Load || E.Kind == EdgeKind::Store)
      OS << '(' << Prog.names().text(Prog.fields()[E.Aux].Name) << ')';
    else if (E.Kind == EdgeKind::Entry || E.Kind == EdgeKind::Exit) {
      const ir::CallSite &CS = Prog.callSite(E.Aux);
      OS << '[' << (CS.Label != ir::kNone ? CS.Label : CS.Id) << ']';
    }
    if (E.ContextFree)
      OS << "{rec}";
    OS << "--> " << describe(E.Dst) << '\n';
  }
}
