//===----------------------------------------------------------------------===//
///
/// \file
/// PAG storage, indexing and statistics.
///
/// Two packing paths share the CSR invariants:
///
///   finalize()       full counting-sort pack (first build, compaction)
///   finalizeDelta()  per-node region rewrite for the nodes incident to
///                    freed/added edges only — O(edit), not O(graph)
///
/// The delta path relies on per-node offset stride 8 (each node carries
/// its own end boundary), so a grown region can relocate to the array
/// tail without shifting any other node's region.  Accumulated slack
/// (dead edge slots + relocation holes) above half the live size
/// triggers a compacting full pack.
///
//===----------------------------------------------------------------------===//

#include "pag/PAG.h"

#include "support/Debug.h"
#include "support/OStream.h"
#include "support/Parallel.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace dynsum;
using namespace dynsum::pag;

const char *dynsum::pag::edgeKindName(EdgeKind K) {
  switch (K) {
  case EdgeKind::New:
    return "new";
  case EdgeKind::Assign:
    return "assign";
  case EdgeKind::Load:
    return "load";
  case EdgeKind::Store:
    return "store";
  case EdgeKind::AssignGlobal:
    return "assignglobal";
  case EdgeKind::Entry:
    return "entry";
  case EdgeKind::Exit:
    return "exit";
  }
  unreachable("bad edge kind");
}

double PAGStats::locality() const {
  uint64_t Local = EdgesByKind[unsigned(EdgeKind::New)] +
                   EdgesByKind[unsigned(EdgeKind::Assign)] +
                   EdgesByKind[unsigned(EdgeKind::Load)] +
                   EdgesByKind[unsigned(EdgeKind::Store)];
  uint64_t Total = totalEdges();
  return Total == 0 ? 1.0 : double(Local) / double(Total);
}

uint64_t PAGStats::totalEdges() const {
  uint64_t Total = 0;
  for (uint64_t N : EdgesByKind)
    Total += N;
  return Total;
}

//===----------------------------------------------------------------------===//
// Cloning (the commit pipeline's generation copy)
//===----------------------------------------------------------------------===//

namespace {

/// One-pass copy with growth headroom: a single allocation sized
/// size + slack, then one memcpy-style append — no value-initializing
/// resize, no later reallocation when the delta build appends a few
/// elements.
template <typename T>
void copyWithHeadroom(std::vector<T> &Dst, const std::vector<T> &Src) {
  Dst.reserve(Src.size() + Src.size() / 8 + 1024);
  Dst.insert(Dst.end(), Src.begin(), Src.end());
}

} // namespace

PAG::PAG(const PAG &Other, unsigned Threads) : Prog(Other.Prog) {
  // Scalar state first (cheap, single-writer).
  NumAliveEdges = Other.NumAliveEdges;
  OpenSegment = Other.OpenSegment;
  FlatHoles = Other.FlatHoles;
  FieldHoles = Other.FieldHoles;
  NumBuiltVars = Other.NumBuiltVars;
  NumBuiltAllocs = Other.NumBuiltAllocs;
  Finalized = Other.Finalized;
  LastRepackCompacted = Other.LastRepackCompacted;
  BuiltModClock = Other.BuiltModClock;
  BuiltStructureVersion = Other.BuiltStructureVersion;
  BuiltOnce = Other.BuiltOnce;

  // The member arrays are copied as independent jobs claimed by a
  // worker pool; the per-method segment table — many small vectors, the
  // allocation-heaviest member — is split into range jobs of its own so
  // it does not serialize the pool.  Every array the next delta build
  // can grow gets headroom (see copyWithHeadroom); the pure scratch
  // vectors (Pending*, FreeSlots) are copied verbatim.
  constexpr size_t kSegmentJobs = 16;
  Segments.resize(Other.Segments.size());
  std::vector<std::function<void()>> Jobs;
  Jobs.reserve(20 + kSegmentJobs);
  // Biggest members first: the dynamic job claim then packs them
  // against the long pole instead of behind it.
  Jobs.push_back([this, &Other] { copyWithHeadroom(InOff, Other.InOff); });
  Jobs.push_back([this, &Other] { copyWithHeadroom(OutOff, Other.OutOff); });
  Jobs.push_back([this, &Other] { copyWithHeadroom(Edges, Other.Edges); });
  Jobs.push_back([this, &Other] { copyWithHeadroom(Nodes, Other.Nodes); });
  Jobs.push_back([this, &Other] { copyWithHeadroom(InFlat, Other.InFlat); });
  Jobs.push_back(
      [this, &Other] { copyWithHeadroom(OutFlat, Other.OutFlat); });
  Jobs.push_back(
      [this, &Other] { copyWithHeadroom(EdgeDead, Other.EdgeDead); });
  Jobs.push_back(
      [this, &Other] { copyWithHeadroom(VarToNode, Other.VarToNode); });
  Jobs.push_back(
      [this, &Other] { copyWithHeadroom(AllocToNode, Other.AllocToNode); });
  Jobs.push_back([this, &Other] {
    copyWithHeadroom(FieldStoreFlat, Other.FieldStoreFlat);
  });
  Jobs.push_back([this, &Other] {
    copyWithHeadroom(FieldLoadFlat, Other.FieldLoadFlat);
  });
  Jobs.push_back([this, &Other] {
    copyWithHeadroom(FieldStoreOff, Other.FieldStoreOff);
  });
  Jobs.push_back([this, &Other] {
    copyWithHeadroom(FieldLoadOff, Other.FieldLoadOff);
  });
  Jobs.push_back(
      [this, &Other] { copyWithHeadroom(BuiltBodyFp, Other.BuiltBodyFp); });
  Jobs.push_back(
      [this, &Other] { copyWithHeadroom(BuiltIfaceFp, Other.BuiltIfaceFp); });
  Jobs.push_back(
      [this, &Other] { copyWithHeadroom(BuiltShapeFp, Other.BuiltShapeFp); });
  Jobs.push_back([this, &Other] { FreeSlots = Other.FreeSlots; });
  Jobs.push_back([this, &Other] { PendingDead = Other.PendingDead; });
  Jobs.push_back(
      [this, &Other] { PendingDeadMeta = Other.PendingDeadMeta; });
  Jobs.push_back([this, &Other] { PendingNew = Other.PendingNew; });
  size_t NumSegs = Other.Segments.size();
  size_t SegChunk = (NumSegs + kSegmentJobs - 1) / kSegmentJobs;
  for (size_t Begin = 0; Begin < NumSegs; Begin += SegChunk) {
    size_t End = Begin + SegChunk < NumSegs ? Begin + SegChunk : NumSegs;
    Jobs.push_back([this, &Other, Begin, End] {
      for (size_t I = Begin; I < End; ++I)
        Segments[I] = Other.Segments[I];
    });
  }
  parallelJobs(Jobs.size(), Threads, [&Jobs](size_t I) { Jobs[I](); });
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

NodeId PAG::addNode(NodeKind Kind, uint32_t IrId, ir::MethodId Method) {
  NodeId Id = NodeId(Nodes.size());
  Node N;
  N.Kind = Kind;
  N.IrId = IrId;
  N.Method = Method;
  Nodes.push_back(N);
  if (Kind == NodeKind::Object) {
    if (AllocToNode.size() <= IrId)
      AllocToNode.resize(IrId + 1, ir::kNone);
    assert(AllocToNode[IrId] == ir::kNone && "allocation site re-added");
    AllocToNode[IrId] = Id;
    if (NumBuiltAllocs <= IrId)
      NumBuiltAllocs = IrId + 1;
  } else {
    if (VarToNode.size() <= IrId)
      VarToNode.resize(IrId + 1, ir::kNone);
    assert(VarToNode[IrId] == ir::kNone && "variable re-added");
    VarToNode[IrId] = Id;
    if (NumBuiltVars <= IrId)
      NumBuiltVars = IrId + 1;
  }
  return Id;
}

void PAG::beginSegment(ir::MethodId M) {
  assert(OpenSegment == ir::kNone && "nested beginSegment");
  if (Segments.size() <= M)
    Segments.resize(M + 1);
  // Free the segment's previous edges.  Their bucket membership is
  // captured into the pending scratch *now*, before slot reuse can
  // overwrite the edge payloads.
  for (EdgeId E : Segments[M]) {
    assert(!EdgeDead[E] && "segment edge already dead");
    EdgeDead[E] = true;
    FreeSlots.push_back(E);
    PendingDead.push_back(E);
    PendingDeadMeta.push_back(Edges[E]);
    --NumAliveEdges;
  }
  Segments[M].clear();
  OpenSegment = M;
}

void PAG::endSegment() {
  assert(OpenSegment != ir::kNone && "endSegment without beginSegment");
  OpenSegment = ir::kNone;
}

EdgeId PAG::allocEdgeSlot(const Edge &E) {
  if (!FreeSlots.empty()) {
    EdgeId Id = FreeSlots.back();
    FreeSlots.pop_back();
    Edges[Id] = E;
    EdgeDead[Id] = false;
    return Id;
  }
  EdgeId Id = EdgeId(Edges.size());
  Edges.push_back(E);
  EdgeDead.push_back(false);
  return Id;
}

EdgeId PAG::addEdge(NodeId Src, NodeId Dst, EdgeKind Kind, uint32_t Aux,
                    bool ContextFree) {
  assert(OpenSegment != ir::kNone && "addEdge outside a segment");
  assert(Src < Nodes.size() && Dst < Nodes.size() && "edge endpoint range");
  Edge E;
  E.Src = Src;
  E.Dst = Dst;
  E.Kind = Kind;
  E.Aux = Aux;
  E.ContextFree = ContextFree;
  EdgeId Id = allocEdgeSlot(E);
  ++NumAliveEdges;
  Segments[OpenSegment].push_back(Id);
  PendingNew.push_back(Id);
  return Id;
}

//===----------------------------------------------------------------------===//
// Full pack
//===----------------------------------------------------------------------===//

void PAG::compactEdgeSlots() {
  if (FreeSlots.empty())
    return;
  std::vector<EdgeId> Remap(Edges.size(), ir::kNone);
  size_t Next = 0;
  for (EdgeId E = 0; E < Edges.size(); ++E) {
    if (EdgeDead[E])
      continue;
    Remap[E] = EdgeId(Next);
    if (Next != E)
      Edges[Next] = Edges[E];
    ++Next;
  }
  Edges.resize(Next);
  EdgeDead.assign(Next, false);
  FreeSlots.clear();
  for (std::vector<EdgeId> &Seg : Segments)
    for (EdgeId &E : Seg)
      E = Remap[E];
}

void PAG::packDirection(bool In) {
  std::vector<EdgeId> &Flat = In ? InFlat : OutFlat;
  std::vector<uint32_t> &Off = In ? InOff : OutOff;
  size_t NumSlots = Nodes.size() * kOffsetStride;

  // Counting sort of edge ids into (node, kind) buckets: one counting
  // pass, one prefix-sum pass, one placement pass.  Placement iterates
  // edges in id order, so each bucket keeps edge-id (i.e. insertion)
  // order — full rebuilds are bit-for-bit deterministic.
  std::vector<uint32_t> Count(Nodes.size() * kNumEdgeKinds, 0);
  for (const Edge &E : Edges)
    ++Count[size_t(In ? E.Dst : E.Src) * kNumEdgeKinds + unsigned(E.Kind)];

  Off.assign(NumSlots, 0);
  uint32_t Run = 0;
  for (size_t N = 0; N < Nodes.size(); ++N) {
    for (unsigned K = 0; K < kNumEdgeKinds; ++K) {
      Off[N * kOffsetStride + K] = Run;
      Run += Count[N * kNumEdgeKinds + K];
    }
    Off[N * kOffsetStride + kNumEdgeKinds] = Run;
  }

  Flat.resize(Edges.size());
  std::vector<uint32_t> Cursor(Count.size());
  for (size_t N = 0; N < Nodes.size(); ++N)
    for (unsigned K = 0; K < kNumEdgeKinds; ++K)
      Cursor[N * kNumEdgeKinds + K] = Off[N * kOffsetStride + K];
  for (EdgeId Id = 0; Id < Edges.size(); ++Id) {
    const Edge &E = Edges[Id];
    Flat[Cursor[size_t(In ? E.Dst : E.Src) * kNumEdgeKinds +
                unsigned(E.Kind)]++] = Id;
  }
}

void PAG::ensureOffsetCoverage() {
  InOff.resize(Nodes.size() * kOffsetStride, 0);
  OutOff.resize(Nodes.size() * kOffsetStride, 0);
  FieldStoreOff.resize(Prog.fields().size() * 2, 0);
  FieldLoadOff.resize(Prog.fields().size() * 2, 0);
}

void PAG::finalize() {
  assert(OpenSegment == ir::kNone &&
         "finalize with an open segment (partial populate)");
  if (Finalized && PendingDead.empty() && PendingNew.empty() &&
      FreeSlots.empty() && FlatHoles + FieldHoles == 0) {
    // Idempotent: nothing changed since the last pack and the arrays
    // are already dense; at most extend coverage over freshly added
    // (still edgeless) nodes.  With dead slots or relocation holes
    // present the full pack below runs, honoring the contract that
    // finalize() always leaves a compact, densely numbered graph.
    ensureOffsetCoverage();
    return;
  }

  compactEdgeSlots();
  packDirection(/*In=*/true);
  packDirection(/*In=*/false);

  // Field-indexed CSR over store/load edges.
  size_t NumFields = Prog.fields().size();
  FieldStoreOff.assign(NumFields * 2, 0);
  FieldLoadOff.assign(NumFields * 2, 0);
  std::vector<uint32_t> StoreCount(NumFields, 0), LoadCount(NumFields, 0);
  for (const Edge &E : Edges) {
    if (E.Kind == EdgeKind::Store)
      ++StoreCount[E.Aux];
    else if (E.Kind == EdgeKind::Load)
      ++LoadCount[E.Aux];
  }
  uint32_t StoreRun = 0, LoadRun = 0;
  for (size_t F = 0; F < NumFields; ++F) {
    FieldStoreOff[F * 2] = StoreRun;
    StoreRun += StoreCount[F];
    FieldStoreOff[F * 2 + 1] = StoreRun;
    FieldLoadOff[F * 2] = LoadRun;
    LoadRun += LoadCount[F];
    FieldLoadOff[F * 2 + 1] = LoadRun;
  }
  FieldStoreFlat.resize(StoreRun);
  FieldLoadFlat.resize(LoadRun);
  std::vector<uint32_t> StoreCursor(NumFields), LoadCursor(NumFields);
  for (size_t F = 0; F < NumFields; ++F) {
    StoreCursor[F] = FieldStoreOff[F * 2];
    LoadCursor[F] = FieldLoadOff[F * 2];
  }
  for (EdgeId Id = 0; Id < Edges.size(); ++Id) {
    const Edge &E = Edges[Id];
    if (E.Kind == EdgeKind::Store)
      FieldStoreFlat[StoreCursor[E.Aux]++] = Id;
    else if (E.Kind == EdgeKind::Load)
      FieldLoadFlat[LoadCursor[E.Aux]++] = Id;
  }

  // Rederive every node's boundary flags from the live edge set.
  for (Node &N : Nodes)
    N.HasLocalEdge = N.HasGlobalIn = N.HasGlobalOut = false;
  for (const Edge &E : Edges) {
    if (isLocalEdgeKind(E.Kind)) {
      Nodes[E.Src].HasLocalEdge = true;
      Nodes[E.Dst].HasLocalEdge = true;
    } else {
      Nodes[E.Dst].HasGlobalIn = true;
      Nodes[E.Src].HasGlobalOut = true;
    }
  }

  FlatHoles = FieldHoles = 0;
  PendingDead.clear();
  PendingDeadMeta.clear();
  PendingNew.clear();
  Finalized = true;
}

//===----------------------------------------------------------------------===//
// Incremental repack
//===----------------------------------------------------------------------===//

void PAG::rederiveFlags(NodeId N) {
  Node &Nd = Nodes[N];
  Nd.HasLocalEdge = Nd.HasGlobalIn = Nd.HasGlobalOut = false;
  for (EdgeId E : inEdges(N)) {
    if (isLocalEdgeKind(Edges[E].Kind))
      Nd.HasLocalEdge = true;
    else
      Nd.HasGlobalIn = true;
  }
  for (EdgeId E : outEdges(N)) {
    if (isLocalEdgeKind(Edges[E].Kind))
      Nd.HasLocalEdge = true;
    else
      Nd.HasGlobalOut = true;
  }
}

namespace {

/// (node*kinds + kind, edge) pairs sorted by bucket: the per-bucket
/// addition lists of one repack, range-scanned per affected node.
struct BucketAdds {
  std::vector<std::pair<uint64_t, EdgeId>> Pairs;

  void add(NodeId N, EdgeKind K, EdgeId E) {
    Pairs.emplace_back(uint64_t(N) * kNumEdgeKinds + unsigned(K), E);
  }
  void sort() {
    std::stable_sort(
        Pairs.begin(), Pairs.end(),
        [](const auto &A, const auto &B) { return A.first < B.first; });
  }
  /// Appends the additions of bucket (N, K) to \p Out.
  void appendTo(NodeId N, EdgeKind K, std::vector<EdgeId> &Out) const {
    uint64_t Key = uint64_t(N) * kNumEdgeKinds + unsigned(K);
    auto It = std::lower_bound(Pairs.begin(), Pairs.end(), Key,
                               [](const auto &P, uint64_t K2) {
                                 return P.first < K2;
                               });
    for (; It != Pairs.end() && It->first == Key; ++It)
      Out.push_back(It->second);
  }
};

} // namespace

void PAG::repackNodes(const std::vector<NodeId> &AffectedNodes,
                      const std::vector<char> &Freed, unsigned Threads) {
  BucketAdds InAdds, OutAdds;
  for (EdgeId E : PendingNew) {
    const Edge &Ed = Edges[E];
    InAdds.add(Ed.Dst, Ed.Kind, E);
    OutAdds.add(Ed.Src, Ed.Kind, E);
  }
  InAdds.sort();
  OutAdds.sort();

  // Offset tables may be short when nodes were added since the last
  // pack: new nodes get empty regions at offset 0.
  InOff.resize(Nodes.size() * kOffsetStride, 0);
  OutOff.resize(Nodes.size() * kOffsetStride, 0);

  // Three phases per direction, bit-identical to the old serial loop at
  // every thread count:
  //
  //   gather   (parallel)  workers own disjoint ranges of the sorted
  //                        dirty node list and compute each node's new
  //                        region contents + kind bounds from the old
  //                        CSR, the freed marks and the add lists;
  //   place    (serial)    one pass over the nodes in order replays the
  //                        serial placement policy exactly — rewrite in
  //                        place when the region still fits, otherwise
  //                        relocate to the array tail — and sizes the
  //                        tail with ONE resize instead of one per
  //                        relocation (the old loop re-allocated the
  //                        whole flat array on every growth);
  //   scatter  (parallel)  workers copy their regions into their now
  //                        disjoint destination ranges and write the
  //                        offset entries.
  size_t NumAffected = AffectedNodes.size();
  std::vector<std::vector<EdgeId>> Regions(NumAffected);
  std::vector<uint32_t> Bounds(NumAffected * kOffsetStride);
  std::vector<uint32_t> Begins(NumAffected);

  auto RebuildDirection = [&](bool In) {
    std::vector<EdgeId> &Flat = In ? InFlat : OutFlat;
    std::vector<uint32_t> &Off = In ? InOff : OutOff;
    const BucketAdds &Adds = In ? InAdds : OutAdds;

    parallelChunks(NumAffected, Threads,
                   [&](size_t ChunkBegin, size_t ChunkEnd, unsigned) {
                     for (size_t I = ChunkBegin; I < ChunkEnd; ++I) {
                       NodeId N = AffectedNodes[I];
                       size_t Base = size_t(N) * kOffsetStride;
                       std::vector<EdgeId> &Region = Regions[I];
                       Region.clear();
                       for (unsigned K = 0; K < kNumEdgeKinds; ++K) {
                         Bounds[I * kOffsetStride + K] =
                             uint32_t(Region.size());
                         for (uint32_t P = Off[Base + K];
                              P < Off[Base + K + 1]; ++P) {
                           EdgeId E = Flat[P];
                           if (!Freed[E])
                             Region.push_back(E);
                         }
                         Adds.appendTo(N, EdgeKind(K), Region);
                       }
                       Bounds[I * kOffsetStride + kNumEdgeKinds] =
                           uint32_t(Region.size());
                     }
                   });

    size_t Tail = Flat.size();
    for (size_t I = 0; I < NumAffected; ++I) {
      size_t Base = size_t(AffectedNodes[I]) * kOffsetStride;
      size_t OldBegin = Off[Base];
      size_t OldSize = Off[Base + kNumEdgeKinds] - OldBegin;
      if (Regions[I].size() <= OldSize) {
        Begins[I] = uint32_t(OldBegin); // in place; trailing slack holes
        FlatHoles += OldSize - Regions[I].size();
      } else {
        Begins[I] = uint32_t(Tail); // relocate to the tail
        Tail += Regions[I].size();
        FlatHoles += OldSize;
      }
    }
    Flat.resize(Tail);

    parallelChunks(NumAffected, Threads,
                   [&](size_t ChunkBegin, size_t ChunkEnd, unsigned) {
                     for (size_t I = ChunkBegin; I < ChunkEnd; ++I) {
                       size_t Base =
                           size_t(AffectedNodes[I]) * kOffsetStride;
                       std::copy(Regions[I].begin(), Regions[I].end(),
                                 Flat.begin() + Begins[I]);
                       for (unsigned K = 0; K < kOffsetStride; ++K)
                         Off[Base + K] = Begins[I] +
                                         Bounds[I * kOffsetStride + K];
                     }
                   });
  };

  RebuildDirection(/*In=*/true);
  RebuildDirection(/*In=*/false);

  parallelChunks(NumAffected, Threads,
                 [&](size_t ChunkBegin, size_t ChunkEnd, unsigned) {
                   for (size_t I = ChunkBegin; I < ChunkEnd; ++I)
                     rederiveFlags(AffectedNodes[I]);
                 });
}

void PAG::repackFields(const std::vector<ir::FieldId> &AffectedFields,
                       const std::vector<char> &Freed, unsigned Threads) {
  size_t NumFields = Prog.fields().size();
  FieldStoreOff.resize(NumFields * 2, 0);
  FieldLoadOff.resize(NumFields * 2, 0);

  // Per-field addition lists from the new edges.
  std::vector<std::pair<ir::FieldId, EdgeId>> StoreAdds, LoadAdds;
  for (EdgeId E : PendingNew) {
    const Edge &Ed = Edges[E];
    if (Ed.Kind == EdgeKind::Store)
      StoreAdds.emplace_back(Ed.Aux, E);
    else if (Ed.Kind == EdgeKind::Load)
      LoadAdds.emplace_back(Ed.Aux, E);
  }
  auto ByField = [](const auto &A, const auto &B) {
    return A.first < B.first;
  };
  std::stable_sort(StoreAdds.begin(), StoreAdds.end(), ByField);
  std::stable_sort(LoadAdds.begin(), LoadAdds.end(), ByField);

  // Same gather / place / scatter structure as repackNodes, over the
  // affected field list.
  size_t NumAffected = AffectedFields.size();
  std::vector<std::vector<EdgeId>> Regions(NumAffected);
  std::vector<uint32_t> Begins(NumAffected);

  auto RebuildDirection = [&](bool IsStore) {
    std::vector<EdgeId> &Flat = IsStore ? FieldStoreFlat : FieldLoadFlat;
    std::vector<uint32_t> &Off = IsStore ? FieldStoreOff : FieldLoadOff;
    const auto &Adds = IsStore ? StoreAdds : LoadAdds;

    parallelChunks(NumAffected, Threads,
                   [&](size_t ChunkBegin, size_t ChunkEnd, unsigned) {
                     for (size_t I = ChunkBegin; I < ChunkEnd; ++I) {
                       ir::FieldId F = AffectedFields[I];
                       std::vector<EdgeId> &Region = Regions[I];
                       Region.clear();
                       for (uint32_t P = Off[F * 2]; P < Off[F * 2 + 1];
                            ++P)
                         if (!Freed[Flat[P]])
                           Region.push_back(Flat[P]);
                       auto It = std::lower_bound(
                           Adds.begin(), Adds.end(), F,
                           [](const auto &P, ir::FieldId F2) {
                             return P.first < F2;
                           });
                       for (; It != Adds.end() && It->first == F; ++It)
                         Region.push_back(It->second);
                     }
                   });

    size_t Tail = Flat.size();
    for (size_t I = 0; I < NumAffected; ++I) {
      ir::FieldId F = AffectedFields[I];
      size_t OldBegin = Off[F * 2];
      size_t OldSize = Off[F * 2 + 1] - OldBegin;
      if (Regions[I].size() <= OldSize) {
        Begins[I] = uint32_t(OldBegin);
        FieldHoles += OldSize - Regions[I].size();
      } else {
        Begins[I] = uint32_t(Tail);
        Tail += Regions[I].size();
        FieldHoles += OldSize;
      }
    }
    Flat.resize(Tail);

    parallelChunks(NumAffected, Threads,
                   [&](size_t ChunkBegin, size_t ChunkEnd, unsigned) {
                     for (size_t I = ChunkBegin; I < ChunkEnd; ++I) {
                       ir::FieldId F = AffectedFields[I];
                       std::copy(Regions[I].begin(), Regions[I].end(),
                                 Flat.begin() + Begins[I]);
                       Off[F * 2] = Begins[I];
                       Off[F * 2 + 1] =
                           uint32_t(Begins[I] + Regions[I].size());
                     }
                   });
  };

  RebuildDirection(/*IsStore=*/true);
  RebuildDirection(/*IsStore=*/false);
}

void PAG::finalizeDelta(unsigned Threads) {
  assert(OpenSegment == ir::kNone &&
         "finalizeDelta with an open segment (partial populate)");
  if (!Finalized) {
    finalize();
    LastRepackCompacted = true;
    return;
  }
  ensureOffsetCoverage();
  if (PendingDead.empty() && PendingNew.empty()) {
    LastRepackCompacted = false;
    return;
  }

  // Compaction policy: when dead slots + relocation holes exceed half
  // the live size, a full pack is both cheaper long-term and keeps the
  // arrays cache-dense.
  size_t Slack = deadEdgeSlots() + FlatHoles + FieldHoles;
  if (Slack > NumAliveEdges / 2 + 1024) {
    finalize();
    LastRepackCompacted = true;
    return;
  }

  // Affected nodes/fields: endpoints and labels of every freed or added
  // edge.  Freed endpoints come from PendingDeadMeta — the payload
  // snapshot taken at free time — because a freed slot may since have
  // been reused and overwritten by a new edge.
  std::vector<NodeId> AffectedNodes;
  std::vector<ir::FieldId> AffectedFields;
  auto Touch = [&](const Edge &E) {
    AffectedNodes.push_back(E.Src);
    AffectedNodes.push_back(E.Dst);
    if (E.Kind == EdgeKind::Store || E.Kind == EdgeKind::Load)
      AffectedFields.push_back(E.Aux);
  };
  for (const Edge &E : PendingDeadMeta)
    Touch(E);
  for (EdgeId E : PendingNew)
    Touch(Edges[E]);
  std::sort(AffectedNodes.begin(), AffectedNodes.end());
  AffectedNodes.erase(
      std::unique(AffectedNodes.begin(), AffectedNodes.end()),
      AffectedNodes.end());
  std::sort(AffectedFields.begin(), AffectedFields.end());
  AffectedFields.erase(
      std::unique(AffectedFields.begin(), AffectedFields.end()),
      AffectedFields.end());

  // Freed-this-round marks: a slot freed by beginSegment this round is
  // filtered out of every surviving bucket, even if the slot was
  // immediately reused (its new incarnation arrives via the add
  // lists).  Built once, shared by both repack passes.
  std::vector<char> Freed(Edges.size(), 0);
  for (EdgeId E : PendingDead)
    Freed[E] = 1;

  repackNodes(AffectedNodes, Freed, Threads);
  repackFields(AffectedFields, Freed, Threads);

  PendingDead.clear();
  PendingDeadMeta.clear();
  PendingNew.clear();
  LastRepackCompacted = false;
}

//===----------------------------------------------------------------------===//
// Reading
//===----------------------------------------------------------------------===//

EdgeSpan PAG::storesOfField(ir::FieldId F) const {
  assert(Finalized && "PAG not finalized");
  assert(F < Prog.fields().size() && "field id out of range");
  if (F * 2 >= FieldStoreOff.size())
    return EdgeSpan(); // field created after the last pack, no edges yet
  return spanOf(FieldStoreFlat, FieldStoreOff, F * 2, F * 2 + 1);
}

EdgeSpan PAG::loadsOfField(ir::FieldId F) const {
  assert(Finalized && "PAG not finalized");
  assert(F < Prog.fields().size() && "field id out of range");
  if (F * 2 >= FieldLoadOff.size())
    return EdgeSpan();
  return spanOf(FieldLoadFlat, FieldLoadOff, F * 2, F * 2 + 1);
}

ir::AllocId PAG::allocOf(NodeId N) const {
  assert(isObject(N) && "allocOf on a variable node");
  return Nodes[N].IrId;
}

std::string PAG::describe(NodeId N) const {
  const Node &Nd = Nodes[N];
  if (Nd.Kind == NodeKind::Object)
    return Prog.describeAlloc(Nd.IrId);
  return Prog.describeVar(Nd.IrId);
}

PAGStats PAG::stats() const {
  PAGStats S;
  S.NumMethods = Prog.methods().size();
  for (const Node &N : Nodes) {
    switch (N.Kind) {
    case NodeKind::Object:
      ++S.NumObjects;
      break;
    case NodeKind::Local:
      ++S.NumLocals;
      break;
    case NodeKind::Global:
      ++S.NumGlobals;
      break;
    }
  }
  for (EdgeId E = 0; E < Edges.size(); ++E)
    if (!EdgeDead[E])
      ++S.EdgesByKind[unsigned(Edges[E].Kind)];
  return S;
}

void PAG::dump(OStream &OS) const {
  OS << "PAG: " << uint64_t(Nodes.size()) << " nodes, "
     << uint64_t(NumAliveEdges) << " edges\n";
  for (EdgeId Id = 0; Id < Edges.size(); ++Id) {
    if (EdgeDead[Id])
      continue;
    const Edge &E = Edges[Id];
    OS << "  " << describe(E.Src) << " --" << edgeKindName(E.Kind);
    if (E.Kind == EdgeKind::Load || E.Kind == EdgeKind::Store)
      OS << '(' << Prog.names().text(Prog.fields()[E.Aux].Name) << ')';
    else if (E.Kind == EdgeKind::Entry || E.Kind == EdgeKind::Exit) {
      const ir::CallSite &CS = Prog.callSite(E.Aux);
      OS << '[' << (CS.Label != ir::kNone ? CS.Label : CS.Id) << ']';
    }
    if (E.ContextFree)
      OS << "{rec}";
    OS << "--> " << describe(E.Dst) << '\n';
  }
}
