//===----------------------------------------------------------------------===//
///
/// \file
/// GraphViz (DOT) export of a PAG, in the visual style of the paper's
/// Figure 2: local edges solid, global edges dashed, method-local nodes
/// clustered per method.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_PAG_GRAPHVIZ_H
#define DYNSUM_PAG_GRAPHVIZ_H

#include "pag/PAG.h"

#include <string>

namespace dynsum {

class OStream;

namespace pag {

struct GraphVizOptions {
  /// Group each method's nodes into a dotted cluster (Figure 2's
  /// rectangles).
  bool ClusterByMethod = true;
  /// Skip nodes without any edge.
  bool HideIsolatedNodes = true;
  /// Graph title.
  std::string Title = "PAG";
};

/// Writes \p G as a DOT digraph to \p OS.
void writeGraphViz(const PAG &G, OStream &OS,
                   const GraphVizOptions &Opts = GraphVizOptions());

/// Convenience wrapper returning the DOT text.
std::string toGraphViz(const PAG &G,
                       const GraphVizOptions &Opts = GraphVizOptions());

} // namespace pag
} // namespace dynsum

#endif // DYNSUM_PAG_GRAPHVIZ_H
