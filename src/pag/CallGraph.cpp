//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph construction and Tarjan SCC.
///
//===----------------------------------------------------------------------===//

#include "pag/CallGraph.h"

#include "support/BitVector.h"

#include <algorithm>
#include <cassert>

using namespace dynsum;
using namespace dynsum::ir;
using namespace dynsum::pag;

TargetResolver::~TargetResolver() = default;

std::vector<MethodId> TargetResolver::resolve(const Program &P,
                                              MethodId Caller,
                                              const Statement &S) const {
  (void)Caller;
  assert(S.Kind == StmtKind::Call && S.IsVirtual && "not a virtual call");
  TypeId RecvType = P.variable(S.Base).DeclaredType;
  return P.chaTargets(RecvType, S.VirtualName);
}

std::vector<MethodId> CallGraph::reachableFrom(MethodId Root) const {
  std::vector<MethodId> Out;
  BitVector Seen(Callees.size());
  std::vector<MethodId> Work{Root};
  Seen.set(Root);
  while (!Work.empty()) {
    MethodId M = Work.back();
    Work.pop_back();
    Out.push_back(M);
    for (const auto &[Site, Callee] : Callees[M]) {
      (void)Site;
      if (Seen.set(Callee))
        Work.push_back(Callee);
    }
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

namespace {

/// Iterative Tarjan SCC over the method graph.
class SccFinder {
public:
  SccFinder(size_t NumMethods, const CallGraph::CalleeTable &Callees)
      : Callees(Callees) {
    Index.assign(NumMethods, kUnvisited);
    Lowlink.assign(NumMethods, 0);
    OnStack.assign(NumMethods, false);
    SccIds.assign(NumMethods, 0);
  }

  void run() {
    for (MethodId M = 0; M < Index.size(); ++M)
      if (Index[M] == kUnvisited)
        strongConnect(M);
  }

  std::vector<uint32_t> takeSccIds() { return std::move(SccIds); }
  uint32_t numSccs() const { return NextScc; }

private:
  static constexpr uint32_t kUnvisited = 0xffffffffu;

  struct Frame {
    MethodId M;
    size_t NextEdge = 0;
  };

  void strongConnect(MethodId Root) {
    std::vector<Frame> CallStack{Frame{Root, 0}};
    visit(Root);
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      if (F.NextEdge < Callees[F.M].size()) {
        MethodId Next = Callees[F.M][F.NextEdge].second;
        ++F.NextEdge;
        if (Index[Next] == kUnvisited) {
          visit(Next);
          CallStack.push_back(Frame{Next, 0});
        } else if (OnStack[Next]) {
          Lowlink[F.M] = std::min(Lowlink[F.M], Index[Next]);
        }
        continue;
      }
      // All successors processed.
      MethodId M = F.M;
      CallStack.pop_back();
      if (!CallStack.empty())
        Lowlink[CallStack.back().M] = std::min(Lowlink[CallStack.back().M],
                                               Lowlink[M]);
      if (Lowlink[M] == Index[M]) {
        // M is an SCC root; pop the component.
        while (true) {
          MethodId Popped = TarjanStack.back();
          TarjanStack.pop_back();
          OnStack[Popped] = false;
          SccIds[Popped] = NextScc;
          if (Popped == M)
            break;
        }
        ++NextScc;
      }
    }
  }

  void visit(MethodId M) {
    Index[M] = NextIndex;
    Lowlink[M] = NextIndex;
    ++NextIndex;
    TarjanStack.push_back(M);
    OnStack[M] = true;
  }

  const CallGraph::CalleeTable &Callees;
  std::vector<uint32_t> Index, Lowlink, SccIds;
  std::vector<char> OnStack;
  std::vector<MethodId> TarjanStack;
  uint32_t NextIndex = 0;
  uint32_t NextScc = 0;
};

} // namespace

void CallGraph::resolveMethod(const Program &P, const TargetResolver &R,
                              MethodId Id) {
  const Method &M = P.method(Id);
  // Drop the method's previous resolution (SiteTargets of sites it no
  // longer issues stay behind but are unreachable through the edges).
  // The mutableAt calls split only the chunks this method's rows live
  // in; every other chunk stays shared with retained generations.
  std::vector<std::pair<CallSiteId, MethodId>> &MethodCallees =
      Callees.mutableAt(Id);
  MethodCallees.clear();
  char HasVirtual = 0;
  for (const Statement &S : M.Stmts) {
    if (S.Kind != StmtKind::Call)
      continue;
    std::vector<MethodId> Targets;
    if (S.IsVirtual) {
      HasVirtual = 1;
      Targets = R.resolve(P, Id, S);
    } else {
      Targets.push_back(S.Callee);
    }
    for (MethodId T : Targets)
      MethodCallees.emplace_back(S.Call, T);
    SiteTargets.mutableAt(S.Call) = std::move(Targets);
  }
  if (HasVirtualSite[Id] != HasVirtual)
    HasVirtualSite.mutableAt(Id) = HasVirtual;
}

void CallGraph::recomputeSccs() {
  SccFinder Finder(Callees.size(), Callees);
  Finder.run();
  SccIds = Finder.takeSccIds();
  SccRecursive.assign(Finder.numSccs(), false);

  // An SCC is recursive when it has more than one member or a self call.
  std::vector<uint32_t> SccSize(Finder.numSccs(), 0);
  for (uint32_t Scc : SccIds)
    ++SccSize[Scc];
  for (MethodId M = 0; M < Callees.size(); ++M) {
    if (SccSize[SccIds[M]] > 1) {
      SccRecursive[SccIds[M]] = true;
      continue;
    }
    for (const auto &[Site, Callee] : Callees[M]) {
      (void)Site;
      if (Callee == M)
        SccRecursive[SccIds[M]] = true;
    }
  }
}

CallGraph dynsum::pag::buildCallGraph(const Program &P,
                                      const TargetResolver *Resolver) {
  TargetResolver Default;
  if (Resolver == nullptr)
    Resolver = &Default;

  CallGraph CG;
  CG.SiteTargets.assign(P.callSites().size(), {});
  CG.Callees.assign(P.methods().size(), {});
  CG.HasVirtualSite.assign(P.methods().size(), 0);

  for (const Method &M : P.methods())
    CG.resolveMethod(P, *Resolver, M.Id);
  CG.recomputeSccs();
  return CG;
}

void dynsum::pag::updateCallGraph(CallGraph &CG, const Program &P,
                                  const TargetResolver *Resolver,
                                  const std::vector<MethodId> &BodyChanged,
                                  bool HierarchyChanged) {
  TargetResolver Default;
  if (Resolver == nullptr)
    Resolver = &Default;

  size_t OldNumMethods = CG.Callees.size();
  CG.SiteTargets.resize(P.callSites().size());
  CG.Callees.resize(P.methods().size());
  CG.HasVirtualSite.resize(P.methods().size(), 0);

  std::vector<char> Done(P.methods().size(), 0);
  for (MethodId M : BodyChanged) {
    CG.resolveMethod(P, *Resolver, M);
    Done[M] = 1;
  }
  // New methods (beyond the previous table) are body-changed by
  // definition; re-resolve any the caller did not already name.
  for (MethodId M = MethodId(OldNumMethods); M < P.methods().size(); ++M)
    if (!Done[M]) {
      CG.resolveMethod(P, *Resolver, M);
      Done[M] = 1;
    }
  if (HierarchyChanged)
    for (MethodId M = 0; M < P.methods().size(); ++M)
      if (!Done[M] && CG.HasVirtualSite[M])
        CG.resolveMethod(P, *Resolver, M);

  CG.recomputeSccs();
}
