//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph construction and Tarjan SCC.
///
//===----------------------------------------------------------------------===//

#include "pag/CallGraph.h"

#include "support/BitVector.h"

#include <algorithm>
#include <cassert>

using namespace dynsum;
using namespace dynsum::ir;
using namespace dynsum::pag;

TargetResolver::~TargetResolver() = default;

std::vector<MethodId> TargetResolver::resolve(const Program &P,
                                              MethodId Caller,
                                              const Statement &S) const {
  (void)Caller;
  assert(S.Kind == StmtKind::Call && S.IsVirtual && "not a virtual call");
  TypeId RecvType = P.variable(S.Base).DeclaredType;
  return P.chaTargets(RecvType, S.VirtualName);
}

std::vector<MethodId> CallGraph::reachableFrom(MethodId Root) const {
  std::vector<MethodId> Out;
  BitVector Seen(Callees.size());
  std::vector<MethodId> Work{Root};
  Seen.set(Root);
  while (!Work.empty()) {
    MethodId M = Work.back();
    Work.pop_back();
    Out.push_back(M);
    for (const auto &[Site, Callee] : Callees[M]) {
      (void)Site;
      if (Seen.set(Callee))
        Work.push_back(Callee);
    }
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

namespace {

/// Iterative Tarjan SCC over the method graph.
class SccFinder {
public:
  SccFinder(size_t NumMethods,
            const std::vector<std::vector<std::pair<CallSiteId, MethodId>>>
                &Callees)
      : Callees(Callees) {
    Index.assign(NumMethods, kUnvisited);
    Lowlink.assign(NumMethods, 0);
    OnStack.assign(NumMethods, false);
    SccIds.assign(NumMethods, 0);
  }

  void run() {
    for (MethodId M = 0; M < Index.size(); ++M)
      if (Index[M] == kUnvisited)
        strongConnect(M);
  }

  std::vector<uint32_t> takeSccIds() { return std::move(SccIds); }
  uint32_t numSccs() const { return NextScc; }

private:
  static constexpr uint32_t kUnvisited = 0xffffffffu;

  struct Frame {
    MethodId M;
    size_t NextEdge = 0;
  };

  void strongConnect(MethodId Root) {
    std::vector<Frame> CallStack{Frame{Root, 0}};
    visit(Root);
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      if (F.NextEdge < Callees[F.M].size()) {
        MethodId Next = Callees[F.M][F.NextEdge].second;
        ++F.NextEdge;
        if (Index[Next] == kUnvisited) {
          visit(Next);
          CallStack.push_back(Frame{Next, 0});
        } else if (OnStack[Next]) {
          Lowlink[F.M] = std::min(Lowlink[F.M], Index[Next]);
        }
        continue;
      }
      // All successors processed.
      MethodId M = F.M;
      CallStack.pop_back();
      if (!CallStack.empty())
        Lowlink[CallStack.back().M] = std::min(Lowlink[CallStack.back().M],
                                               Lowlink[M]);
      if (Lowlink[M] == Index[M]) {
        // M is an SCC root; pop the component.
        while (true) {
          MethodId Popped = TarjanStack.back();
          TarjanStack.pop_back();
          OnStack[Popped] = false;
          SccIds[Popped] = NextScc;
          if (Popped == M)
            break;
        }
        ++NextScc;
      }
    }
  }

  void visit(MethodId M) {
    Index[M] = NextIndex;
    Lowlink[M] = NextIndex;
    ++NextIndex;
    TarjanStack.push_back(M);
    OnStack[M] = true;
  }

  const std::vector<std::vector<std::pair<CallSiteId, MethodId>>> &Callees;
  std::vector<uint32_t> Index, Lowlink, SccIds;
  std::vector<char> OnStack;
  std::vector<MethodId> TarjanStack;
  uint32_t NextIndex = 0;
  uint32_t NextScc = 0;
};

} // namespace

CallGraph dynsum::pag::buildCallGraph(const Program &P,
                                      const TargetResolver *Resolver) {
  TargetResolver Default;
  if (Resolver == nullptr)
    Resolver = &Default;

  CallGraph CG;
  CG.SiteTargets.assign(P.callSites().size(), {});
  CG.Callees.assign(P.methods().size(), {});

  for (const Method &M : P.methods()) {
    for (const Statement &S : M.Stmts) {
      if (S.Kind != StmtKind::Call)
        continue;
      std::vector<MethodId> Targets;
      if (S.IsVirtual)
        Targets = Resolver->resolve(P, M.Id, S);
      else
        Targets.push_back(S.Callee);
      for (MethodId T : Targets)
        CG.Callees[M.Id].emplace_back(S.Call, T);
      CG.SiteTargets[S.Call] = std::move(Targets);
    }
  }

  SccFinder Finder(P.methods().size(), CG.Callees);
  Finder.run();
  CG.SccIds = Finder.takeSccIds();
  CG.SccRecursive.assign(Finder.numSccs(), false);

  // An SCC is recursive when it has more than one member or a self call.
  std::vector<uint32_t> SccSize(Finder.numSccs(), 0);
  for (uint32_t Scc : CG.SccIds)
    ++SccSize[Scc];
  for (MethodId M = 0; M < P.methods().size(); ++M) {
    if (SccSize[CG.SccIds[M]] > 1) {
      CG.SccRecursive[CG.SccIds[M]] = true;
      continue;
    }
    for (const auto &[Site, Callee] : CG.Callees[M]) {
      (void)Site;
      if (Callee == M)
        CG.SccRecursive[CG.SccIds[M]] = true;
    }
  }
  return CG;
}
