//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph with recursion-cycle detection.
///
/// Virtual call sites may have several targets.  Recursion cycles
/// (non-trivial SCCs and self calls) are "collapsed" as in the paper's
/// implementation section: entry/exit PAG edges whose caller and callee
/// share a recursive SCC are marked context-free so the analyses cross
/// them without pushing or popping call sites.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_PAG_CALLGRAPH_H
#define DYNSUM_PAG_CALLGRAPH_H

#include "ir/Program.h"
#include "support/ChunkedStorage.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace dynsum {
namespace pag {

class TargetResolver;
class CallGraph;

/// Builds the call graph using \p Resolver (CHA when null) and runs
/// Tarjan's SCC to flag recursion.
CallGraph buildCallGraph(const ir::Program &P,
                         const TargetResolver *Resolver = nullptr);

/// Incrementally refreshes \p CG after program edits: re-resolves the
/// call sites of the \p BodyChanged methods (and, when
/// \p HierarchyChanged, of every method with a virtual site — CHA
/// dispatch of unedited methods can only move when the hierarchy does),
/// sizes the tables for methods/sites created since the last build, and
/// reruns Tarjan over the whole method graph (recursion is a global
/// property, but the SCC pass is linear in the call graph and cheap
/// next to re-lowering).  \p CG must describe an earlier state of \p P.
void updateCallGraph(CallGraph &CG, const ir::Program &P,
                     const TargetResolver *Resolver,
                     const std::vector<ir::MethodId> &BodyChanged,
                     bool HierarchyChanged);

/// Resolves the possible targets of every call site.
///
/// The per-site and per-method tables live on CoW chunked storage: a
/// retained generation's CallGraph copy shares every chunk an
/// incremental update did not touch, so the commit-time copy is a
/// chunk-table memcpy instead of a deep copy of every target vector.
/// (SccIds/SccRecursive stay plain vectors — recomputeSccs rewrites
/// them wholesale each update, so there is nothing to share.)
class CallGraph {
public:
  /// Targets of call site \p Site.
  const std::vector<ir::MethodId> &targets(ir::CallSiteId Site) const {
    assert(Site < SiteTargets.size() && "call site out of range");
    return SiteTargets[Site];
  }

  /// All (site, callee) pairs made from \p Caller.
  const std::vector<std::pair<ir::CallSiteId, ir::MethodId>> &
  calleesOf(ir::MethodId Caller) const {
    assert(Caller < Callees.size() && "method out of range");
    return Callees[Caller];
  }

  /// SCC index of \p M in the method graph.
  uint32_t sccOf(ir::MethodId M) const { return SccIds.at(M); }

  /// True when \p M sits on a recursion cycle.
  bool isRecursive(ir::MethodId M) const {
    return SccRecursive.at(SccIds.at(M));
  }

  /// True when \p Caller and \p Callee share a recursive cycle, i.e. the
  /// call's entry/exit edges must be treated context-insensitively.
  bool inSameRecursion(ir::MethodId Caller, ir::MethodId Callee) const {
    return SccIds.at(Caller) == SccIds.at(Callee) &&
           SccRecursive.at(SccIds.at(Caller));
  }

  /// Number of SCCs.
  size_t numSccs() const { return SccRecursive.size(); }

  /// Methods reachable (transitively, via call edges) from \p Root,
  /// including \p Root itself.
  std::vector<ir::MethodId> reachableFrom(ir::MethodId Root) const;

  /// True when \p M contains a virtual call site (the set a hierarchy
  /// change can silently retarget).
  bool hasVirtualSite(ir::MethodId M) const {
    assert(M < HasVirtualSite.size() && "method out of range");
    return HasVirtualSite[M] != 0;
  }

  /// Per-callee-edge table type (also consumed by the SCC pass).
  using CalleeTable = support::ChunkedVector<
      std::vector<std::pair<ir::CallSiteId, ir::MethodId>>, 7>;

  /// Chunked-storage footprint of the sharable tables (memoryStats
  /// plumbing for the retained-generation budget).
  support::ChunkMemoryStats memory() const {
    support::ChunkMemoryStats S = SiteTargets.memory();
    S += Callees.memory();
    S += HasVirtualSite.memory();
    return S;
  }

private:
  friend CallGraph buildCallGraph(const ir::Program &P,
                                  const TargetResolver *Resolver);
  friend void updateCallGraph(CallGraph &CG, const ir::Program &P,
                              const TargetResolver *Resolver,
                              const std::vector<ir::MethodId> &BodyChanged,
                              bool HierarchyChanged);

  /// Rebuilds Callees[M]/SiteTargets for \p M from its statements.
  void resolveMethod(const ir::Program &P, const TargetResolver &R,
                     ir::MethodId M);

  /// Reruns Tarjan + recursion flagging over the current Callees.
  void recomputeSccs();

  support::ChunkedVector<std::vector<ir::MethodId>, 7>
      SiteTargets;                  // by CallSiteId
  CalleeTable Callees;              // by MethodId
  support::ChunkedVector<char, 12> HasVirtualSite; // by MethodId
  std::vector<uint32_t> SccIds;     // by MethodId
  std::vector<bool> SccRecursive;   // by SCC id
};

/// A pluggable virtual-dispatch policy: given a virtual call statement
/// in \p Caller, produce possible targets.  The default policy is CHA
/// over the receiver's declared type; the Andersen-driven policy in
/// src/analysis narrows it with points-to results.
class TargetResolver {
public:
  virtual ~TargetResolver();

  /// Targets of virtual statement \p S (S.Kind == Call, S.IsVirtual).
  virtual std::vector<ir::MethodId>
  resolve(const ir::Program &P, ir::MethodId Caller,
          const ir::Statement &S) const;
};


} // namespace pag
} // namespace dynsum

#endif // DYNSUM_PAG_CALLGRAPH_H
