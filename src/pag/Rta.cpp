//===----------------------------------------------------------------------===//
///
/// \file
/// RTA fixpoint and dispatch filtering.
///
//===----------------------------------------------------------------------===//

#include "pag/Rta.h"

#include <cassert>

using namespace dynsum;
using namespace dynsum::ir;
using namespace dynsum::pag;

RtaTargetResolver::RtaTargetResolver(const Program &P,
                                     std::vector<MethodId> Roots)
    : Prog(P), Instantiated(P.classes().size(), false),
      Reachable(P.methods().size(), false) {
  if (Roots.empty())
    for (const Method &M : P.methods())
      Roots.push_back(M.Id);

  std::vector<MethodId> Worklist;
  auto reach = [&](MethodId M) {
    if (M == kNone || Reachable[M])
      return;
    Reachable[M] = true;
    Worklist.push_back(M);
  };
  for (MethodId M : Roots)
    reach(M);

  // Fixpoint: processing a method admits its allocations and direct
  // calls immediately; virtual sites are re-dispatched after every
  // round because newly instantiated types can widen them.  The outer
  // loop runs until neither the reachable set nor the instantiated set
  // grows — at most |methods| + |types| rounds, each linear in the
  // program, which is plenty fast for analysis-time construction.
  bool Changed = true;
  while (Changed) {
    Changed = false;

    while (!Worklist.empty()) {
      MethodId M = Worklist.back();
      Worklist.pop_back();
      for (const Statement &S : Prog.method(M).Stmts) {
        switch (S.Kind) {
        case StmtKind::Alloc:
          if (!Instantiated[S.Type]) {
            Instantiated[S.Type] = true;
            Changed = true;
          }
          break;
        case StmtKind::Call:
          if (!S.IsVirtual)
            reach(S.Callee);
          break;
        default:
          break;
        }
      }
    }

    // Re-dispatch every virtual site of every reachable method under
    // the current instantiated set.
    for (const Method &M : Prog.methods()) {
      if (!Reachable[M.Id])
        continue;
      for (const Statement &S : M.Stmts) {
        if (S.Kind != StmtKind::Call || !S.IsVirtual)
          continue;
        for (MethodId Target : resolve(Prog, M.Id, S))
          if (!Reachable[Target]) {
            reach(Target);
            Changed = true;
          }
      }
    }
  }
}

std::vector<MethodId> RtaTargetResolver::resolve(const Program &P,
                                                 MethodId Caller,
                                                 const Statement &S) const {
  assert(&P == &Prog && "resolver is bound to one program");
  (void)Caller;
  assert(S.Kind == StmtKind::Call && S.IsVirtual && "not a virtual call");

  TypeId DeclType = P.variable(S.Base).DeclaredType;
  std::vector<MethodId> Targets;
  // Every instantiated subtype of the receiver's declared type names a
  // possible runtime class; collect their dispatch results.
  for (const ClassType &C : P.classes()) {
    if (!Instantiated[C.Id] || !P.isSubtypeOf(C.Id, DeclType))
      continue;
    MethodId Target = P.dispatch(C.Id, S.VirtualName);
    if (Target == kNone)
      continue;
    bool Seen = false;
    for (MethodId Existing : Targets)
      if (Existing == Target)
        Seen = true;
    if (!Seen)
      Targets.push_back(Target);
  }
  return Targets;
}

size_t RtaTargetResolver::numInstantiatedTypes() const {
  size_t N = 0;
  for (bool B : Instantiated)
    if (B)
      ++N;
  return N;
}

size_t RtaTargetResolver::numReachableMethods() const {
  size_t N = 0;
  for (bool B : Reachable)
    if (B)
      ++N;
  return N;
}
