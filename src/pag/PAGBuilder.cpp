//===----------------------------------------------------------------------===//
///
/// \file
/// PAG builder implementation.
///
//===----------------------------------------------------------------------===//

#include "pag/PAGBuilder.h"

#include <cassert>

using namespace dynsum;
using namespace dynsum::ir;
using namespace dynsum::pag;

namespace {

/// Chooses assign vs assignglobal for a variable-to-variable copy.
EdgeKind copyKind(const Program &P, VarId Src, VarId Dst) {
  if (P.variable(Src).IsGlobal || P.variable(Dst).IsGlobal)
    return EdgeKind::AssignGlobal;
  return EdgeKind::Assign;
}

} // namespace

/// Fills \p G (which must be empty) with the nodes and edges of \p P,
/// using \p CG for call targets and recursion information.
static void populate(PAG &G, const Program &P, const CallGraph &CG) {
  // Nodes: all variables first, then all allocation sites.
  for (const Variable &V : P.variables())
    G.addNode(V.IsGlobal ? NodeKind::Global : NodeKind::Local, V.Id, V.Owner);
  for (const AllocSite &A : P.allocs())
    G.addNode(NodeKind::Object, A.Id, A.Owner);

  // Collect each method's returned variables once; exit edges fan out
  // from them.
  std::vector<std::vector<VarId>> Returns(P.methods().size());
  for (const Method &M : P.methods())
    for (const Statement &S : M.Stmts)
      if (S.Kind == StmtKind::Return)
        Returns[M.Id].push_back(S.Src);

  for (const Method &M : P.methods()) {
    for (const Statement &S : M.Stmts) {
      switch (S.Kind) {
      case StmtKind::Alloc:
      case StmtKind::Null:
        G.addEdge(G.nodeOfAlloc(S.Alloc), G.nodeOfVar(S.Dst), EdgeKind::New);
        break;
      case StmtKind::Assign:
      case StmtKind::Cast:
        // A cast is an assignment to the PAG; the cast site only matters
        // to the SafeCast client.
        G.addEdge(G.nodeOfVar(S.Src), G.nodeOfVar(S.Dst),
                  copyKind(P, S.Src, S.Dst));
        break;
      case StmtKind::Load:
        // dst = base.f  =>  base --load(f)--> dst
        G.addEdge(G.nodeOfVar(S.Base), G.nodeOfVar(S.Dst), EdgeKind::Load,
                  S.FieldLabel);
        break;
      case StmtKind::Store:
        // base.f = src  =>  src --store(f)--> base
        G.addEdge(G.nodeOfVar(S.Src), G.nodeOfVar(S.Base), EdgeKind::Store,
                  S.FieldLabel);
        break;
      case StmtKind::Call: {
        for (MethodId Target : CG.targets(S.Call)) {
          const Method &Callee = P.method(Target);
          bool ContextFree = CG.inSameRecursion(M.Id, Target);
          size_t NumArgs = S.Args.size() < Callee.Params.size()
                               ? S.Args.size()
                               : Callee.Params.size();
          for (size_t I = 0; I < NumArgs; ++I)
            G.addEdge(G.nodeOfVar(S.Args[I]), G.nodeOfVar(Callee.Params[I]),
                      EdgeKind::Entry, S.Call, ContextFree);
          if (S.Dst != kNone)
            for (VarId Ret : Returns[Target])
              G.addEdge(G.nodeOfVar(Ret), G.nodeOfVar(S.Dst), EdgeKind::Exit,
                        S.Call, ContextFree);
        }
        break;
      }
      case StmtKind::Return:
        break; // handled from the call side
      }
    }
  }

  G.finalize();
}

BuiltPAG dynsum::pag::buildPAG(const Program &P,
                               const TargetResolver *Resolver) {
  BuiltPAG Result;
  Result.Calls = buildCallGraph(P, Resolver);
  Result.Graph = std::make_unique<PAG>(P);
  populate(*Result.Graph, P, Result.Calls);
  return Result;
}

CallGraph dynsum::pag::rebuildPAG(PAG &G, const TargetResolver *Resolver) {
  const Program &P = G.program();
  CallGraph Calls = buildCallGraph(P, Resolver);
  G.reset();
  populate(G, P, Calls);
  return Calls;
}
