//===----------------------------------------------------------------------===//
///
/// \file
/// PAG builder implementation: full builds and per-method delta builds
/// over the persistent node table.
///
//===----------------------------------------------------------------------===//

#include "pag/PAGBuilder.h"

#include "support/ExecContext.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace dynsum;
using namespace dynsum::ir;
using namespace dynsum::pag;

namespace {

/// Chooses assign vs assignglobal for a variable-to-variable copy.
EdgeKind copyKind(const Program &P, VarId Src, VarId Dst) {
  if (P.variable(Src).IsGlobal || P.variable(Dst).IsGlobal)
    return EdgeKind::AssignGlobal;
  return EdgeKind::Assign;
}

/// Lazily computed returned-variable lists: exit edges fan out from the
/// callee's returns, so lowering a caller needs its callees' returns —
/// but only those, never the whole program's.
class ReturnsCache {
public:
  explicit ReturnsCache(const Program &P) : P(P) {}

  const std::vector<VarId> &of(MethodId M) {
    auto It = Cache.find(M);
    if (It != Cache.end())
      return It->second;
    std::vector<VarId> &Rets = Cache[M];
    for (const Statement &S : P.method(M).Stmts)
      if (S.Kind == StmtKind::Return)
        Rets.push_back(S.Src);
    return Rets;
  }

private:
  const Program &P;
  std::unordered_map<MethodId, std::vector<VarId>> Cache;
};

/// One worker's private staging buffers: the edges of its share of the
/// re-lower set, lowered without touching the shared graph.  A
/// single-writer apply phase later replays them through
/// beginSegment/addEdge in method-id order, so edge slot assignment is
/// identical to a fully serial build.
struct StagedLowering {
  /// All staged edges of this worker, in emission order.
  std::vector<Edge> Edges;
  /// (method, [begin, end) into Edges) per lowered method, in the order
  /// the worker lowered them (ascending method id within a worker).
  struct MethodRange {
    MethodId M;
    uint32_t Begin;
    uint32_t End;
  };
  std::vector<MethodRange> Methods;
};

/// Lowers method \p Id's statements into \p Out — the staging-buffer
/// form of the classic per-method lowering.  Reads the graph's node
/// table (read-only: every node was appended in the single-writer node
/// phase before lowering fans out) and the refreshed call graph.
void lowerMethodInto(StagedLowering &Out, const PAG &G, const Program &P,
                     const CallGraph &CG, ReturnsCache &Returns,
                     MethodId Id) {
  uint32_t Begin = uint32_t(Out.Edges.size());
  auto Emit = [&Out](NodeId Src, NodeId Dst, EdgeKind Kind,
                     uint32_t Aux = ir::kNone, bool ContextFree = false) {
    Edge E;
    E.Src = Src;
    E.Dst = Dst;
    E.Kind = Kind;
    E.Aux = Aux;
    E.ContextFree = ContextFree;
    Out.Edges.push_back(E);
  };

  const Method &M = P.method(Id);
  for (const Statement &S : M.Stmts) {
    switch (S.Kind) {
    case StmtKind::Alloc:
    case StmtKind::Null:
      Emit(G.nodeOfAlloc(S.Alloc), G.nodeOfVar(S.Dst), EdgeKind::New);
      break;
    case StmtKind::Assign:
    case StmtKind::Cast:
      // A cast is an assignment to the PAG; the cast site only matters
      // to the SafeCast client.
      Emit(G.nodeOfVar(S.Src), G.nodeOfVar(S.Dst),
           copyKind(P, S.Src, S.Dst));
      break;
    case StmtKind::Load:
      // dst = base.f  =>  base --load(f)--> dst
      Emit(G.nodeOfVar(S.Base), G.nodeOfVar(S.Dst), EdgeKind::Load,
           S.FieldLabel);
      break;
    case StmtKind::Store:
      // base.f = src  =>  src --store(f)--> base
      Emit(G.nodeOfVar(S.Src), G.nodeOfVar(S.Base), EdgeKind::Store,
           S.FieldLabel);
      break;
    case StmtKind::Call: {
      for (MethodId Target : CG.targets(S.Call)) {
        const Method &Callee = P.method(Target);
        bool ContextFree = CG.inSameRecursion(Id, Target);
        size_t NumArgs = S.Args.size() < Callee.Params.size()
                             ? S.Args.size()
                             : Callee.Params.size();
        for (size_t I = 0; I < NumArgs; ++I)
          Emit(G.nodeOfVar(S.Args[I]), G.nodeOfVar(Callee.Params[I]),
               EdgeKind::Entry, S.Call, ContextFree);
        if (S.Dst != kNone)
          for (VarId Ret : Returns.of(Target))
            Emit(G.nodeOfVar(Ret), G.nodeOfVar(S.Dst), EdgeKind::Exit,
                 S.Call, ContextFree);
      }
      break;
    }
    case StmtKind::Return:
      break; // handled from the call side
    }
  }
  Out.Methods.push_back({Id, Begin, uint32_t(Out.Edges.size())});
}

/// Everything a caller's lowered call edges depend on beyond its own
/// statements: per (site, callee) pair the target, the recursion
/// collapse bit, and the callee's params/returns interface.  A clean
/// method is re-lowered iff this fingerprint moved.
uint64_t calleeShape(const CallGraph &CG, MethodId M,
                     const MethodFpTable &IfaceFp) {
  uint64_t H = 0x8f2d1c7b6a59e043ull;
  for (const auto &[Site, Callee] : CG.calleesOf(M)) {
    H = hashCombine(H, packPair(Site, Callee));
    H = hashCombine(H, uint64_t(CG.inSameRecursion(M, Callee)));
    H = hashCombine(H, IfaceFp[Callee]);
  }
  return H;
}

} // namespace

DeltaStats dynsum::pag::buildPAGDelta(PAG &G, CallGraph &Calls,
                                      const TargetResolver *Resolver,
                                      bool ForceFull,
                                      const support::ExecContext &Exec) {
  const Program &P = G.program();
  DeltaStats DS;
  unsigned Threads = Exec.threads();
  DS.ThreadsUsed = Threads;
  const bool First = !G.BuiltOnce;
  const size_t NumMethods = P.methods().size();

  // --- Nodes: append for program ids created since the last build.
  // Variables before allocation sites, matching the classic full-build
  // numbering on the first call; afterwards ids just keep appending.
  size_t FirstNewVar = G.numBuiltVars();
  size_t FirstNewAlloc = G.numBuiltAllocs();
  for (VarId V = VarId(FirstNewVar); V < P.variables().size(); ++V) {
    const Variable &Var = P.variable(V);
    G.addNode(Var.IsGlobal ? NodeKind::Global : NodeKind::Local, V,
              Var.Owner);
    ++DS.NodesAdded;
  }
  for (AllocId A = AllocId(FirstNewAlloc); A < P.allocs().size(); ++A) {
    G.addNode(NodeKind::Object, A, P.alloc(A).Owner);
    ++DS.NodesAdded;
  }

  // --- Candidates: methods stamped by the edit clock since the last
  // build; their body/interface fingerprints decide what really moved.
  size_t OldNumMethods = G.BuiltBodyFp.size();
  G.BuiltBodyFp.resize(NumMethods, 0);
  G.BuiltIfaceFp.resize(NumMethods, 0);
  G.BuiltShapeFp.resize(NumMethods, 0);

  std::vector<MethodId> BodyChanged;
  if (First) {
    DS.Touched.reserve(NumMethods);
    BodyChanged.reserve(NumMethods);
    for (MethodId M = 0; M < NumMethods; ++M) {
      DS.Touched.push_back(M);
      BodyChanged.push_back(M);
    }
    // Fingerprinting every method hashes every statement once; shard
    // it (each worker writes a disjoint slot range of the freshly
    // allocated — hence exclusively owned — fingerprint chunks).
    parallelChunks(NumMethods, Exec,
                   [&](size_t Begin, size_t End, unsigned) {
                     for (MethodId M = MethodId(Begin); M < End; ++M) {
                       G.BuiltBodyFp.rawAt(M) = P.methodFingerprint(M);
                       G.BuiltIfaceFp.rawAt(M) =
                           P.methodInterfaceFingerprint(M);
                     }
                   });
  } else {
    DS.Touched = P.methodsTouchedSince(G.BuiltModClock);
    for (MethodId M : DS.Touched) {
      uint64_t BodyFp = P.methodFingerprint(M);
      bool IsNew = M >= OldNumMethods;
      if (ForceFull || IsNew || BodyFp != G.BuiltBodyFp[M])
        BodyChanged.push_back(M);
      if (G.BuiltBodyFp[M] != BodyFp)
        G.BuiltBodyFp.mutableAt(M) = BodyFp;
      uint64_t IfaceFp = P.methodInterfaceFingerprint(M);
      if (G.BuiltIfaceFp[M] != IfaceFp)
        G.BuiltIfaceFp.mutableAt(M) = IfaceFp;
    }
  }

  // --- Call graph refresh.  The default CHA resolver updates
  // incrementally; a stateful resolver (RTA/Andersen) is re-run whole —
  // its answers can move anywhere — while lowering stays delta.
  bool HierarchyChanged = P.structureVersion() != G.BuiltStructureVersion;
  if (First || Resolver != nullptr) {
    Calls = buildCallGraph(P, Resolver);
  } else {
    updateCallGraph(Calls, P, nullptr, BodyChanged, HierarchyChanged);
  }

  // --- Re-lower set: body-changed plus shape-changed.  The shape pass
  // is one hash per call edge over the whole graph — linear in the call
  // graph, independent of statement counts — and partitions perfectly:
  // workers own disjoint method ranges, reading the (frozen) call graph
  // and writing disjoint Relower slots.  Shape fingerprints that moved
  // are collected per worker and applied serially afterwards: most
  // methods re-hash to their stored value, so the CoW fingerprint
  // chunks shared with the previous generation are never split for an
  // unchanged method — and never written from two workers at once.
  Timer ShapeClock;
  std::vector<char> Relower(NumMethods, 0);
  for (MethodId M : BodyChanged)
    Relower[M] = 1;
  const bool RelowerAll = ForceFull || First;
  unsigned ShapeWorkers = Threads > 0 ? Threads : 1;
  std::vector<std::vector<std::pair<MethodId, uint64_t>>> ShapeChanged(
      ShapeWorkers);
  parallelChunks(NumMethods, Exec,
                 [&](size_t Begin, size_t End, unsigned Worker) {
                   auto &Changed = ShapeChanged[Worker];
                   for (MethodId M = MethodId(Begin); M < End; ++M) {
                     uint64_t Shape =
                         calleeShape(Calls, M, G.BuiltIfaceFp);
                     if (Shape != G.BuiltShapeFp[M]) {
                       Relower[M] = 1;
                       Changed.emplace_back(M, Shape);
                     } else if (RelowerAll) {
                       Relower[M] = 1;
                     }
                   }
                 });
  for (const auto &Changed : ShapeChanged)
    for (const auto &[M, Shape] : Changed)
      G.BuiltShapeFp.mutableAt(M) = Shape;
  DS.ShapeSeconds = ShapeClock.seconds();

  // --- Re-lower: shard the re-lower set across the worker pool, each
  // worker lowering its (contiguous, ascending) share into private
  // staging buffers...
  Timer LowerClock;
  for (MethodId M = 0; M < NumMethods; ++M)
    if (Relower[M])
      DS.Relowered.push_back(M);

  unsigned LowerWorkers = Threads;
  if (LowerWorkers > DS.Relowered.size())
    LowerWorkers = unsigned(DS.Relowered.size());
  if (LowerWorkers == 0)
    LowerWorkers = 1;
  support::ExecContext LowerExec = Exec;
  LowerExec.Budget = LowerWorkers;
  std::vector<StagedLowering> Staged(LowerWorkers);
  parallelChunks(DS.Relowered.size(), LowerExec,
                 [&](size_t Begin, size_t End, unsigned Worker) {
                   StagedLowering &Out = Staged[Worker];
                   Out.Edges.reserve((End - Begin) * 8);
                   ReturnsCache Returns(P);
                   for (size_t I = Begin; I < End; ++I) {
                     support::faultPoint("commit.lower");
                     lowerMethodInto(Out, G, P, Calls, Returns,
                                     DS.Relowered[I]);
                   }
                 });
  DS.LowerSeconds = LowerClock.seconds();

  // ...then a single-writer apply phase replays the staged segments in
  // ascending method order.  Slot allocation (including free-slot
  // reuse) happens here only, in exactly the order a serial build would
  // have used, so edge slot ids are identical at every thread count.
  Timer ApplyClock;
  for (const StagedLowering &Out : Staged) {
    for (const StagedLowering::MethodRange &R : Out.Methods) {
      G.beginSegment(R.M);
      for (uint32_t I = R.Begin; I < R.End; ++I) {
        const Edge &E = Out.Edges[I];
        G.addEdge(E.Src, E.Dst, E.Kind, E.Aux, E.ContextFree);
      }
      G.endSegment();
    }
  }
  DS.ApplySeconds = ApplyClock.seconds();

  Timer RepackClock;
  if (First)
    G.finalize();
  else
    G.finalizeDelta(Exec);
  DS.RepackSeconds = RepackClock.seconds();
  DS.Compacted = G.lastRepackCompacted();

  G.BuiltModClock = P.modClock();
  G.BuiltStructureVersion = P.structureVersion();
  G.BuiltOnce = true;
  return DS;
}

BuiltPAG dynsum::pag::buildPAG(const Program &P,
                               const TargetResolver *Resolver,
                               const support::ExecContext &Exec) {
  BuiltPAG Result;
  Result.Graph = std::make_unique<PAG>(P);
  buildPAGDelta(*Result.Graph, Result.Calls, Resolver, /*ForceFull=*/false,
                Exec);
  return Result;
}
