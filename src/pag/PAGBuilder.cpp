//===----------------------------------------------------------------------===//
///
/// \file
/// PAG builder implementation: full builds and per-method delta builds
/// over the persistent node table.
///
//===----------------------------------------------------------------------===//

#include "pag/PAGBuilder.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace dynsum;
using namespace dynsum::ir;
using namespace dynsum::pag;

namespace {

/// Chooses assign vs assignglobal for a variable-to-variable copy.
EdgeKind copyKind(const Program &P, VarId Src, VarId Dst) {
  if (P.variable(Src).IsGlobal || P.variable(Dst).IsGlobal)
    return EdgeKind::AssignGlobal;
  return EdgeKind::Assign;
}

/// Lazily computed returned-variable lists: exit edges fan out from the
/// callee's returns, so lowering a caller needs its callees' returns —
/// but only those, never the whole program's.
class ReturnsCache {
public:
  explicit ReturnsCache(const Program &P) : P(P) {}

  const std::vector<VarId> &of(MethodId M) {
    auto It = Cache.find(M);
    if (It != Cache.end())
      return It->second;
    std::vector<VarId> &Rets = Cache[M];
    for (const Statement &S : P.method(M).Stmts)
      if (S.Kind == StmtKind::Return)
        Rets.push_back(S.Src);
    return Rets;
  }

private:
  const Program &P;
  std::unordered_map<MethodId, std::vector<VarId>> Cache;
};

/// Re-lowers method \p M's statements into its (freshly opened)
/// segment.
void lowerMethod(PAG &G, const Program &P, const CallGraph &CG,
                 ReturnsCache &Returns, MethodId Id) {
  const Method &M = P.method(Id);
  G.beginSegment(Id);
  for (const Statement &S : M.Stmts) {
    switch (S.Kind) {
    case StmtKind::Alloc:
    case StmtKind::Null:
      G.addEdge(G.nodeOfAlloc(S.Alloc), G.nodeOfVar(S.Dst), EdgeKind::New);
      break;
    case StmtKind::Assign:
    case StmtKind::Cast:
      // A cast is an assignment to the PAG; the cast site only matters
      // to the SafeCast client.
      G.addEdge(G.nodeOfVar(S.Src), G.nodeOfVar(S.Dst),
                copyKind(P, S.Src, S.Dst));
      break;
    case StmtKind::Load:
      // dst = base.f  =>  base --load(f)--> dst
      G.addEdge(G.nodeOfVar(S.Base), G.nodeOfVar(S.Dst), EdgeKind::Load,
                S.FieldLabel);
      break;
    case StmtKind::Store:
      // base.f = src  =>  src --store(f)--> base
      G.addEdge(G.nodeOfVar(S.Src), G.nodeOfVar(S.Base), EdgeKind::Store,
                S.FieldLabel);
      break;
    case StmtKind::Call: {
      for (MethodId Target : CG.targets(S.Call)) {
        const Method &Callee = P.method(Target);
        bool ContextFree = CG.inSameRecursion(Id, Target);
        size_t NumArgs = S.Args.size() < Callee.Params.size()
                             ? S.Args.size()
                             : Callee.Params.size();
        for (size_t I = 0; I < NumArgs; ++I)
          G.addEdge(G.nodeOfVar(S.Args[I]), G.nodeOfVar(Callee.Params[I]),
                    EdgeKind::Entry, S.Call, ContextFree);
        if (S.Dst != kNone)
          for (VarId Ret : Returns.of(Target))
            G.addEdge(G.nodeOfVar(Ret), G.nodeOfVar(S.Dst), EdgeKind::Exit,
                      S.Call, ContextFree);
      }
      break;
    }
    case StmtKind::Return:
      break; // handled from the call side
    }
  }
  G.endSegment();
}

/// Everything a caller's lowered call edges depend on beyond its own
/// statements: per (site, callee) pair the target, the recursion
/// collapse bit, and the callee's params/returns interface.  A clean
/// method is re-lowered iff this fingerprint moved.
uint64_t calleeShape(const CallGraph &CG, MethodId M,
                     const std::vector<uint64_t> &IfaceFp) {
  uint64_t H = 0x8f2d1c7b6a59e043ull;
  for (const auto &[Site, Callee] : CG.calleesOf(M)) {
    H = hashCombine(H, packPair(Site, Callee));
    H = hashCombine(H, uint64_t(CG.inSameRecursion(M, Callee)));
    H = hashCombine(H, IfaceFp[Callee]);
  }
  return H;
}

} // namespace

DeltaStats dynsum::pag::buildPAGDelta(PAG &G, CallGraph &Calls,
                                      const TargetResolver *Resolver,
                                      bool ForceFull) {
  const Program &P = G.program();
  DeltaStats DS;
  const bool First = !G.BuiltOnce;
  const size_t NumMethods = P.methods().size();

  // --- Nodes: append for program ids created since the last build.
  // Variables before allocation sites, matching the classic full-build
  // numbering on the first call; afterwards ids just keep appending.
  size_t FirstNewVar = G.numBuiltVars();
  size_t FirstNewAlloc = G.numBuiltAllocs();
  for (VarId V = VarId(FirstNewVar); V < P.variables().size(); ++V) {
    const Variable &Var = P.variable(V);
    G.addNode(Var.IsGlobal ? NodeKind::Global : NodeKind::Local, V,
              Var.Owner);
    ++DS.NodesAdded;
  }
  for (AllocId A = AllocId(FirstNewAlloc); A < P.allocs().size(); ++A) {
    G.addNode(NodeKind::Object, A, P.alloc(A).Owner);
    ++DS.NodesAdded;
  }

  // --- Candidates: methods stamped by the edit clock since the last
  // build; their body/interface fingerprints decide what really moved.
  size_t OldNumMethods = G.BuiltBodyFp.size();
  G.BuiltBodyFp.resize(NumMethods, 0);
  G.BuiltIfaceFp.resize(NumMethods, 0);
  G.BuiltShapeFp.resize(NumMethods, 0);

  std::vector<MethodId> BodyChanged;
  if (First) {
    DS.Touched.reserve(NumMethods);
    BodyChanged.reserve(NumMethods);
    for (MethodId M = 0; M < NumMethods; ++M) {
      DS.Touched.push_back(M);
      BodyChanged.push_back(M);
      G.BuiltBodyFp[M] = P.methodFingerprint(M);
      G.BuiltIfaceFp[M] = P.methodInterfaceFingerprint(M);
    }
  } else {
    DS.Touched = P.methodsTouchedSince(G.BuiltModClock);
    for (MethodId M : DS.Touched) {
      uint64_t BodyFp = P.methodFingerprint(M);
      bool IsNew = M >= OldNumMethods;
      if (ForceFull || IsNew || BodyFp != G.BuiltBodyFp[M])
        BodyChanged.push_back(M);
      G.BuiltBodyFp[M] = BodyFp;
      G.BuiltIfaceFp[M] = P.methodInterfaceFingerprint(M);
    }
  }

  // --- Call graph refresh.  The default CHA resolver updates
  // incrementally; a stateful resolver (RTA/Andersen) is re-run whole —
  // its answers can move anywhere — while lowering stays delta.
  bool HierarchyChanged = P.structureVersion() != G.BuiltStructureVersion;
  if (First || Resolver != nullptr) {
    Calls = buildCallGraph(P, Resolver);
  } else {
    updateCallGraph(Calls, P, nullptr, BodyChanged, HierarchyChanged);
  }

  // --- Re-lower set: body-changed plus shape-changed.  The shape pass
  // is one hash per call edge over the whole graph — linear in the call
  // graph, independent of statement counts.
  std::vector<char> Relower(NumMethods, 0);
  for (MethodId M : BodyChanged)
    Relower[M] = 1;
  if (ForceFull || First) {
    for (MethodId M = 0; M < NumMethods; ++M) {
      Relower[M] = 1;
      G.BuiltShapeFp[M] = calleeShape(Calls, M, G.BuiltIfaceFp);
    }
  } else {
    for (MethodId M = 0; M < NumMethods; ++M) {
      uint64_t Shape = calleeShape(Calls, M, G.BuiltIfaceFp);
      if (Shape != G.BuiltShapeFp[M])
        Relower[M] = 1;
      G.BuiltShapeFp[M] = Shape;
    }
  }

  // --- Re-lower and repack.
  ReturnsCache Returns(P);
  for (MethodId M = 0; M < NumMethods; ++M) {
    if (!Relower[M])
      continue;
    lowerMethod(G, P, Calls, Returns, M);
    DS.Relowered.push_back(M);
  }
  if (First)
    G.finalize();
  else
    G.finalizeDelta();
  DS.Compacted = G.lastRepackCompacted();

  G.BuiltModClock = P.modClock();
  G.BuiltStructureVersion = P.structureVersion();
  G.BuiltOnce = true;
  return DS;
}

BuiltPAG dynsum::pag::buildPAG(const Program &P,
                               const TargetResolver *Resolver) {
  BuiltPAG Result;
  Result.Graph = std::make_unique<PAG>(P);
  buildPAGDelta(*Result.Graph, Result.Calls, Resolver);
  return Result;
}
