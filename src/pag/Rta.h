//===----------------------------------------------------------------------===//
///
/// \file
/// Rapid Type Analysis (RTA) virtual-dispatch resolver.
///
/// The paper builds its call graph "on the fly" with Spark's
/// Andersen-style analysis; this repo ships three resolvers for the
/// call-graph-precision ablation:
///
///   CHA       every override in the receiver's declared-type subtree
///             (pag::TargetResolver's default),
///   RTA       CHA filtered to *instantiated* types: a target survives
///             only if some allocated class dispatches to it, with
///             allocations counted only in methods reachable from the
///             roots (Bacon & Sweeney, OOPSLA'96),
///   Andersen  receiver points-to sets (analysis::AndersenTargetResolver).
///
/// RTA runs a reachability/instantiation fixpoint at construction time:
/// reaching a method admits its allocation types; new types widen the
/// dispatch of every reachable virtual site, which can reach more
/// methods.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_PAG_RTA_H
#define DYNSUM_PAG_RTA_H

#include "pag/CallGraph.h"

#include <vector>

namespace dynsum {
namespace pag {

/// RTA resolver.  Construct once per program; resolve() is then pure.
class RtaTargetResolver : public TargetResolver {
public:
  /// Runs the RTA fixpoint from \p Roots.  An empty root set means
  /// "every method is a root" — no reachability pruning, pure
  /// instantiated-types filtering.
  explicit RtaTargetResolver(const ir::Program &P,
                             std::vector<ir::MethodId> Roots = {});

  std::vector<ir::MethodId> resolve(const ir::Program &P,
                                    ir::MethodId Caller,
                                    const ir::Statement &S) const override;

  /// True when some reachable method allocates exactly \p T.
  bool isInstantiated(ir::TypeId T) const { return Instantiated.at(T); }

  /// True when \p M is reachable from the roots.
  bool isReachable(ir::MethodId M) const { return Reachable.at(M); }

  /// Number of instantiated types / reachable methods (diagnostics).
  size_t numInstantiatedTypes() const;
  size_t numReachableMethods() const;

private:
  const ir::Program &Prog;
  std::vector<bool> Instantiated; ///< by TypeId
  std::vector<bool> Reachable;    ///< by MethodId
};

} // namespace pag
} // namespace dynsum

#endif // DYNSUM_PAG_RTA_H
