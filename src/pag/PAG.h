//===----------------------------------------------------------------------===//
///
/// \file
/// The Pointer Assignment Graph of the paper's Figure 1.
///
/// Nodes are objects (allocation sites), local variables and global
/// variables.  Edges point in the direction of value flow and carry one
/// of the seven labels:
///
///   local edges   new, assign, load(f), store(f)
///   global edges  assignglobal, entry_i, exit_i
///
/// Orientation conventions (pinned here; every analysis cites them):
///   o --new--> v            v = new ...          (object o flows into v)
///   x --assign--> y         y = x
///   base --load(f)--> dst   dst = base.f         (edge leaves the BASE)
///   val --store(f)--> base  base.f = val         (edge enters the BASE)
///   actual --entry_i--> formal                   (call at site i)
///   ret --exit_i--> recv                         (return at site i)
///
/// The paper's algorithm listings traverse flowsTo-bar and therefore
/// write every edge inverted; the implementation comments map each
/// listing line to this storage orientation.
///
/// Identity and deltas: node ids are STABLE ACROSS EDITS.  The node
/// table is keyed by the program's append-only variable/allocation-site
/// ids (which the IR keys by (method, symbol/site)); a node is created
/// the first time its variable or site is seen and keeps its id for the
/// graph's lifetime.  Edges are owned by per-method SEGMENTS: every
/// edge originates from lowering one method's statements, and a delta
/// build (PAGBuilder::buildPAGDelta) re-lowers only the edited methods'
/// segments, leaving every other segment — and every node id — alone.
/// Edge slot ids of untouched segments are stable too; only the edited
/// segments' slots are freed and reused.  (EdgeIds are an internal
/// addressing scheme, not an API contract across commits.)
///
/// Read-side storage is kind-partitioned CSR: finalize() packs all
/// in/out edge ids into two flat arrays with per-(node, kind) offset
/// tables, so the traversal hot paths iterate a contiguous span per
/// kind (inEdgesOfKind) instead of switching on kind per edge.  Each
/// node stores its own eight bucket boundaries (7 kinds + its end), so
/// a node's region can be relocated independently: the incremental
/// repack after a delta build rewrites only the regions of nodes
/// incident to re-lowered segments (growing regions move to the array
/// tail, leaving holes that a slack-triggered compaction reclaims).
/// The whole-node views (inEdges/outEdges) remain as spans over the
/// same arrays for callers that still want every kind.
///
/// Generation storage: every persistent member lives on copy-on-write
/// chunk tables (support/ChunkedStorage.h).  Copying a PAG copies the
/// tables — O(#chunks) refcount bumps, no element copies — and the copy
/// shares every chunk with its parent until one of them writes, so the
/// commit pipeline's generation snapshot costs O(delta), not O(graph),
/// and a retained generation's exclusive footprint is proportional to
/// the edits made since it was captured (memoryStats() reports it).
/// The CSR flat arrays additionally guarantee that a node's region
/// never straddles a chunk boundary, keeping EdgeSpan a plain pointer
/// pair.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_PAG_PAG_H
#define DYNSUM_PAG_PAG_H

#include "ir/Program.h"
#include "support/ChunkedStorage.h"
#include "support/ExecContext.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dynsum {

class OStream;

namespace pag {

class PAG;
class CallGraph;
class TargetResolver;
struct DeltaStats;

/// Defined in PAGBuilder.h; declared here so the delta builder can be
/// befriended without an include cycle.
DeltaStats buildPAGDelta(PAG &G, CallGraph &Calls,
                         const TargetResolver *Resolver, bool ForceFull,
                         const support::ExecContext &Exec);

using NodeId = uint32_t;
using EdgeId = uint32_t;

enum class NodeKind : uint8_t {
  Object, ///< an allocation site
  Local,  ///< a method-local variable
  Global, ///< a static/global variable
};

enum class EdgeKind : uint8_t {
  New,
  Assign,
  Load,
  Store,
  AssignGlobal,
  Entry,
  Exit,
};

/// Number of EdgeKind values (the CSR kind-partition fan-out).
constexpr unsigned kNumEdgeKinds = 7;
static_assert(unsigned(EdgeKind::Exit) + 1 == kNumEdgeKinds,
              "kNumEdgeKinds must cover every EdgeKind or the CSR "
              "bucket arithmetic bleeds across nodes");

/// Offset-table stride per node: seven kind boundaries plus the node's
/// own end boundary.  Keeping the end per node (instead of borrowing
/// the next node's first boundary, as a classical prefix-sum CSR does)
/// is what lets the incremental repack relocate one node's region
/// without shifting every node after it.
constexpr unsigned kOffsetStride = kNumEdgeKinds + 1;

/// True for the four context-independent edge kinds summarized by PPTA.
inline bool isLocalEdgeKind(EdgeKind K) {
  return K == EdgeKind::New || K == EdgeKind::Assign ||
         K == EdgeKind::Load || K == EdgeKind::Store;
}

/// Printable label ("new", "entry", ...).
const char *edgeKindName(EdgeKind K);

/// Per-method fingerprint storage (body/interface/shape), chunked like
/// every other generation-persistent table.  Named at namespace scope
/// so the delta builder's helpers can take it by reference.
using MethodFpTable = support::ChunkedVector<uint64_t, 12>;

/// A non-owning contiguous view over edge ids in the CSR arrays
/// (std::span substitute; the repo is C++17).  Invalidated by the next
/// finalize()/finalizeDelta() like any index would be.
class EdgeSpan {
public:
  EdgeSpan() = default;
  EdgeSpan(const EdgeId *Begin, const EdgeId *End)
      : BeginPtr(Begin), EndPtr(End) {}

  const EdgeId *begin() const { return BeginPtr; }
  const EdgeId *end() const { return EndPtr; }
  size_t size() const { return size_t(EndPtr - BeginPtr); }
  bool empty() const { return BeginPtr == EndPtr; }
  EdgeId operator[](size_t I) const { return BeginPtr[I]; }

private:
  const EdgeId *BeginPtr = nullptr;
  const EdgeId *EndPtr = nullptr;
};

struct Node {
  NodeKind Kind = NodeKind::Local;
  /// ir::AllocId for objects, ir::VarId for variables.
  uint32_t IrId = ir::kNone;
  /// Owning method; kNone for globals and the null object.
  ir::MethodId Method = ir::kNone;
  /// True when some local-kind edge touches this node (PPTA shortcut,
  /// paper section 4.3).  Derived from the live edge set by
  /// finalize()/finalizeDelta().
  bool HasLocalEdge = false;
  /// True when a global-kind edge flows into / out of this node
  /// (Algorithm 3 lines 15-16 / 28-29 record boundary tuples on these).
  bool HasGlobalIn = false;
  bool HasGlobalOut = false;
};

struct Edge {
  NodeId Src = 0;
  NodeId Dst = 0;
  EdgeKind Kind = EdgeKind::Assign;
  /// FieldId for load/store; CallSiteId for entry/exit; kNone otherwise.
  uint32_t Aux = ir::kNone;
  /// True for entry/exit edges inside a collapsed recursion cycle: the
  /// analyses cross them without pushing/popping the context.
  bool ContextFree = false;
};

/// Aggregate counts for the Table 3 reproduction.
struct PAGStats {
  uint64_t NumMethods = 0;
  uint64_t NumObjects = 0;
  uint64_t NumLocals = 0;
  uint64_t NumGlobals = 0;
  uint64_t EdgesByKind[7] = {};
  /// Fraction of local edges among all edges.
  double locality() const;
  uint64_t totalEdges() const;
};

/// Chunk-table footprint of one graph, split by ownership.
/// RetainedBytes is what destroying this graph would actually free —
/// for a generation retained behind the current one it is proportional
/// to the edits committed since its capture, not to the graph size.
struct PAGMemoryStats {
  size_t TotalBytes = 0;    ///< chunk + table bytes reachable from here
  size_t SharedBytes = 0;   ///< subset co-owned by other generations
  size_t RetainedBytes = 0; ///< TotalBytes - SharedBytes (exclusive)
  size_t ScratchBytes = 0;  ///< plain-vector scratch (Pending*, frees)
  size_t Chunks = 0;
  size_t SharedChunks = 0;
};

/// The graph.  Construction happens through PAGBuilder; the analyses
/// only read.  Copyable: a copy is an independent graph over the same
/// program — AnalysisService snapshots the previous generation's graph
/// and patches the snapshot while in-flight batches keep draining
/// against the original.  Since all persistent storage sits on CoW
/// chunk tables, the copy is an O(#chunks) table duplication; mutated
/// chunks are split off lazily, so the two graphs share every byte
/// neither side has touched.
class PAG {
public:
  explicit PAG(const ir::Program &P) : Prog(P) {}

  /// Generation snapshot: the default memberwise copy IS the cheap
  /// chunk-table copy (every persistent member is a chunked container
  /// whose copy constructor bumps refcounts instead of copying
  /// elements), and memberwise copying cannot silently drop a member
  /// the way a hand-written clone could.
  PAG(const PAG &Other) = default;

  //===------------------------------------------------------------------===//
  // Construction (PAGBuilder only)
  //===------------------------------------------------------------------===//

  /// Creates the node of a variable/allocation site.  Ids are assigned
  /// in call order and never change afterwards.
  NodeId addNode(NodeKind Kind, uint32_t IrId, ir::MethodId Method);

  /// Opens method \p M's edge segment for (re-)population: the
  /// segment's previous edges (if any) are freed for slot reuse and
  /// subsequent addEdge calls land in the segment.  Only PAGBuilder
  /// drives this; finalizeDelta requires every opened segment to have
  /// been closed by endSegment().
  void beginSegment(ir::MethodId M);
  void endSegment();

  /// Adds an edge to the open segment.  Returns the edge's slot id
  /// (stable until this segment is next re-lowered).
  EdgeId addEdge(NodeId Src, NodeId Dst, EdgeKind Kind,
                 uint32_t Aux = ir::kNone, bool ContextFree = false);

  /// Packs the full kind-partitioned CSR from scratch (first build, or
  /// compaction after deltas accumulated too much slack).  Dead edge
  /// slots are compacted away — edge ids are renumbered densely — and
  /// node flags are rederived.  Idempotent: calling it again without
  /// intervening edits is a no-op.
  void finalize();

  /// Incremental repack after a delta build: rewrites only the CSR
  /// regions of nodes incident to freed or added edges, rederives those
  /// nodes' flags, and falls back to finalize() when accumulated slack
  /// (dead slots + relocation holes) exceeds half the live size.
  /// Requires finalize() to have run once before.
  ///
  /// A multi-threaded \p Exec partitions the repack: workers own
  /// disjoint ranges of the (sorted) dirty node list, region contents
  /// are computed in parallel, placements are assigned in one serial
  /// pass that replicates the serial policy exactly — and uniquifies
  /// every destination chunk, so the parallel copy fan-out writes raw —
  /// making the resulting layout bit-identical at every thread count.
  void finalizeDelta(const support::ExecContext &Exec = {});

  //===------------------------------------------------------------------===//
  // Reading
  //===------------------------------------------------------------------===//

  const ir::Program &program() const { return Prog; }

  size_t numNodes() const { return Nodes.size(); }

  /// Number of LIVE edges.  Edge slot ids range over [0, numEdgeSlots())
  /// and may include dead slots after delta builds; iterate slots and
  /// filter with edgeAlive() to visit every live edge.
  size_t numEdges() const { return NumAliveEdges; }
  size_t numEdgeSlots() const { return Edges.size(); }
  bool edgeAlive(EdgeId E) const { return !EdgeDead[E]; }

  const Node &node(NodeId N) const { return Nodes[N]; }
  const Edge &edge(EdgeId E) const { return Edges[E]; }

  /// Edge ids entering / leaving \p N (all kinds; within the span,
  /// edges are grouped by EdgeKind in enum order).
  EdgeSpan inEdges(NodeId N) const {
    size_t Base = size_t(N) * kOffsetStride;
    return spanOf(InFlat, InOff, Base, Base + kNumEdgeKinds);
  }
  EdgeSpan outEdges(NodeId N) const {
    size_t Base = size_t(N) * kOffsetStride;
    return spanOf(OutFlat, OutOff, Base, Base + kNumEdgeKinds);
  }

  /// Edge ids of exactly kind \p K entering / leaving \p N — the hot
  /// paths iterate these instead of filtering inEdges with a switch.
  EdgeSpan inEdgesOfKind(NodeId N, EdgeKind K) const {
    size_t Base = size_t(N) * kOffsetStride + unsigned(K);
    return spanOf(InFlat, InOff, Base, Base + 1);
  }
  EdgeSpan outEdgesOfKind(NodeId N, EdgeKind K) const {
    size_t Base = size_t(N) * kOffsetStride + unsigned(K);
    return spanOf(OutFlat, OutOff, Base, Base + 1);
  }

  /// All store edges labelled with \p F (REFINEPTS match-edge lookup).
  EdgeSpan storesOfField(ir::FieldId F) const;

  /// All load edges labelled with \p F.
  EdgeSpan loadsOfField(ir::FieldId F) const;

  /// Node of a variable / allocation site.
  NodeId nodeOfVar(ir::VarId V) const {
    assert(V < VarToNode.size() && "variable id out of range");
    return VarToNode[V];
  }
  NodeId nodeOfAlloc(ir::AllocId A) const {
    assert(A < AllocToNode.size() && "allocation id out of range");
    return AllocToNode[A];
  }

  /// True when \p N is an object node.
  bool isObject(NodeId N) const {
    return Nodes[N].Kind == NodeKind::Object;
  }

  /// The allocation site of object node \p N.
  ir::AllocId allocOf(NodeId N) const;

  /// Human-readable node name ("s1@Main.main", "o25:Vector").
  std::string describe(NodeId N) const;

  /// Computes the Table 3 statistics of this graph.
  PAGStats stats() const;

  /// Chunk-table footprint: how many bytes this graph reaches, how
  /// many of them are shared with other generations, and how many are
  /// exclusively its own.  The per-element accounting of the segment
  /// table counts the inline vector objects only (their heap blocks
  /// follow the same sharing, chunk for chunk).
  PAGMemoryStats memoryStats() const;

  /// Writes a readable edge dump (tests and debugging).
  void dump(OStream &OS) const;

  //===------------------------------------------------------------------===//
  // Delta-build bookkeeping (PAGBuilder reads/writes; tests may read)
  //===------------------------------------------------------------------===//

  /// Variables/allocation sites already materialized as nodes; the
  /// delta builder appends nodes for program ids beyond these.
  size_t numBuiltVars() const { return NumBuiltVars; }
  size_t numBuiltAllocs() const { return NumBuiltAllocs; }

  /// Live edge slots of method \p M's segment (empty when the method
  /// has no pointer-relevant statements or predates its segment).
  const std::vector<EdgeId> &segmentEdges(ir::MethodId M) const {
    static const std::vector<EdgeId> Empty;
    return M < Segments.size() ? Segments[M] : Empty;
  }

  /// The program edit clock captured at this graph's last (full or
  /// delta) build: edits up to this clock are reflected in the graph.
  /// AnalysisService::rollback uses it to rewind its committed clock
  /// to a retained generation.
  uint64_t builtModClock() const { return BuiltModClock; }

  /// CSR slack diagnostics: dead slots plus relocation holes, and
  /// whether the last finalizeDelta() compacted.  Chunk-alignment
  /// padding in the flat arrays is NOT slack (a compaction would
  /// re-pad), so it never triggers one.
  size_t deadEdgeSlots() const { return Edges.size() - NumAliveEdges; }
  size_t csrHoleSlots() const { return FlatHoles + FieldHoles; }
  bool lastRepackCompacted() const { return LastRepackCompacted; }

  /// The (sorted, deduped) nodes whose CSR regions — and therefore
  /// boundary flags — the last finalizeDelta() rewrote.  Every other
  /// node's flags are bit-identical to before the repack, which is
  /// what lets incremental::patchInvalidation diff O(delta) nodes
  /// instead of the whole graph.  Meaningless after a compaction or a
  /// full finalize() (every flag was rederived); check
  /// lastRepackCompacted() first.
  const std::vector<NodeId> &lastRepackAffectedNodes() const {
    return LastRepackAffected;
  }

private:
  using NodeTable = support::ChunkedVector<Node, 12>;
  using EdgeTable = support::ChunkedVector<Edge, 12>;
  using ByteTable = support::ChunkedVector<char, 15>;
  using SegmentTable = support::ChunkedVector<std::vector<EdgeId>, 7>;
  /// 8192 offsets per chunk: kOffsetStride (8) divides the chunk size,
  /// so one node's eight boundaries always share a chunk — the serial
  /// placement pass uniquifies one chunk per touched node.
  using OffsetTable = support::ChunkedVector<uint32_t, 13>;
  using IdTable = support::ChunkedVector<NodeId, 13>;
  using FpTable = MethodFpTable;
  using FlatTable = support::ChunkedFlatArray<EdgeId, 14>;

  EdgeSpan spanOf(const FlatTable &Flat, const OffsetTable &Off,
                  size_t From, size_t To) const {
    uint32_t B = Off[From], E = Off[To];
    if (B == E)
      return EdgeSpan();
    const EdgeId *P = Flat.addr(B);
    return EdgeSpan(P, P + (E - B));
  }

  /// Allocates an edge slot (reusing a freed one when possible).
  EdgeId allocEdgeSlot(const Edge &E);

  /// Extends the offset tables over nodes added since the last pack
  /// (their regions start empty).
  void ensureOffsetCoverage();

  /// Recomputes \p N's boundary flags from its current CSR spans.
  /// The node's chunk must already be writable (raw write path).
  void rederiveFlags(NodeId N);

  /// Renumbers edge slots densely, dropping dead ones (stable order).
  void compactEdgeSlots();

  /// Full counting-sort pack of one direction's CSR.
  void packDirection(bool In);

  /// Rewrites the CSR regions of \p AffectedNodes (sorted, unique) in
  /// both directions, appending grown regions at the array tails.
  /// \p Freed marks the slots freed this round (shared with
  /// repackFields so the O(slots) bitmap is built once per repack).
  /// Workers repack disjoint node ranges; see finalizeDelta(Exec).
  void repackNodes(const std::vector<NodeId> &AffectedNodes,
                   const std::vector<char> &Freed,
                   const support::ExecContext &Exec);

  /// Rebuilds the per-field load/store CSR regions of \p AffectedFields.
  void repackFields(const std::vector<ir::FieldId> &AffectedFields,
                    const std::vector<char> &Freed,
                    const support::ExecContext &Exec);

  const ir::Program &Prog;
  NodeTable Nodes;
  EdgeTable Edges;    ///< slot-addressed; may contain dead slots
  ByteTable EdgeDead; ///< parallel to Edges
  std::vector<EdgeId> FreeSlots;
  size_t NumAliveEdges = 0;

  /// Per-method segments: the live slot ids emitted while lowering that
  /// method, in emission order.
  SegmentTable Segments;
  ir::MethodId OpenSegment = ir::kNone;

  /// Delta scratch, consumed by finalizeDelta(): slots freed and edges
  /// added since the last (full or delta) pack.  Freed payloads are
  /// snapshotted (PendingDeadMeta) because the slot may be reused — and
  /// its Edge overwritten — before the repack runs.  Plain vectors:
  /// they are empty in any finalized graph, so generation snapshots
  /// copy nothing.
  std::vector<EdgeId> PendingDead;
  std::vector<Edge> PendingDeadMeta;
  std::vector<EdgeId> PendingNew;

  /// CSR payloads: every live edge id once per direction, grouped by
  /// (node, kind); within a group, survivors keep their relative order
  /// and re-lowered edges append in emission order.
  FlatTable InFlat, OutFlat;
  /// CSR offsets, numNodes * kOffsetStride entries.  Node N's kind-K
  /// bucket is [Off[N*8 + K], Off[N*8 + K + 1]); its whole region is
  /// [Off[N*8], Off[N*8 + 7]].  Regions of different nodes need not be
  /// adjacent (relocation leaves holes), only internally contiguous —
  /// and a region never straddles a chunk boundary of the flat table.
  OffsetTable InOff, OutOff;
  /// Elements of InFlat/OutFlat occupied by relocation holes.
  size_t FlatHoles = 0;

  /// Field-indexed CSR over store/load edges: per-field [begin, end)
  /// pairs (2 entries per field), same relocation scheme.
  FlatTable FieldStoreFlat, FieldLoadFlat;
  OffsetTable FieldStoreOff, FieldLoadOff;
  size_t FieldHoles = 0;

  IdTable VarToNode;
  IdTable AllocToNode;
  size_t NumBuiltVars = 0;
  size_t NumBuiltAllocs = 0;
  bool Finalized = false;
  bool LastRepackCompacted = false;
  /// Nodes the last finalizeDelta() rederived flags for (see
  /// lastRepackAffectedNodes()).  A generation copy inherits the
  /// source's list, but every consumer reads it right after running
  /// finalizeDelta on the copy, which overwrites it first.
  std::vector<NodeId> LastRepackAffected;

  /// Persistent delta-build state (written by pag::buildPAGDelta): the
  /// program edit clock, structure version and per-method fingerprints
  /// captured at the last build.  Copies of the graph carry it along,
  /// so a generation snapshot can be delta-patched independently.
  uint64_t BuiltModClock = 0;
  uint64_t BuiltStructureVersion = 0;
  bool BuiltOnce = false;
  FpTable BuiltBodyFp;  // by MethodId
  FpTable BuiltIfaceFp; // by MethodId
  FpTable BuiltShapeFp; // by MethodId

  friend class PAGBuilder;
  friend DeltaStats buildPAGDelta(PAG &G, CallGraph &Calls,
                                  const TargetResolver *Resolver,
                                  bool ForceFull,
                                  const support::ExecContext &Exec);
};

} // namespace pag
} // namespace dynsum

#endif // DYNSUM_PAG_PAG_H
