//===----------------------------------------------------------------------===//
///
/// \file
/// The Pointer Assignment Graph of the paper's Figure 1.
///
/// Nodes are objects (allocation sites), local variables and global
/// variables.  Edges point in the direction of value flow and carry one
/// of the seven labels:
///
///   local edges   new, assign, load(f), store(f)
///   global edges  assignglobal, entry_i, exit_i
///
/// Orientation conventions (pinned here; every analysis cites them):
///   o --new--> v            v = new ...          (object o flows into v)
///   x --assign--> y         y = x
///   base --load(f)--> dst   dst = base.f         (edge leaves the BASE)
///   val --store(f)--> base  base.f = val         (edge enters the BASE)
///   actual --entry_i--> formal                   (call at site i)
///   ret --exit_i--> recv                         (return at site i)
///
/// The paper's algorithm listings traverse flowsTo-bar and therefore
/// write every edge inverted; the implementation comments map each
/// listing line to this storage orientation.
///
/// Read-side storage is kind-partitioned CSR: finalize() packs all
/// in/out edge ids into two flat arrays with per-(node, kind) offset
/// tables, so the traversal hot paths iterate a contiguous span per
/// kind (inEdgesOfKind) instead of switching on kind per edge.  The
/// whole-node views (inEdges/outEdges) remain as spans over the same
/// arrays for callers that still want every kind.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_PAG_PAG_H
#define DYNSUM_PAG_PAG_H

#include "ir/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dynsum {

class OStream;

namespace pag {

using NodeId = uint32_t;
using EdgeId = uint32_t;

enum class NodeKind : uint8_t {
  Object, ///< an allocation site
  Local,  ///< a method-local variable
  Global, ///< a static/global variable
};

enum class EdgeKind : uint8_t {
  New,
  Assign,
  Load,
  Store,
  AssignGlobal,
  Entry,
  Exit,
};

/// Number of EdgeKind values (the CSR kind-partition fan-out).
constexpr unsigned kNumEdgeKinds = 7;
static_assert(unsigned(EdgeKind::Exit) + 1 == kNumEdgeKinds,
              "kNumEdgeKinds must cover every EdgeKind or the CSR "
              "bucket arithmetic bleeds across nodes");

/// True for the four context-independent edge kinds summarized by PPTA.
inline bool isLocalEdgeKind(EdgeKind K) {
  return K == EdgeKind::New || K == EdgeKind::Assign ||
         K == EdgeKind::Load || K == EdgeKind::Store;
}

/// Printable label ("new", "entry", ...).
const char *edgeKindName(EdgeKind K);

/// A non-owning contiguous view over edge ids in the CSR arrays
/// (std::span substitute; the repo is C++17).  Invalidated by
/// finalize()/reset() like any index would be.
class EdgeSpan {
public:
  EdgeSpan() = default;
  EdgeSpan(const EdgeId *Begin, const EdgeId *End)
      : BeginPtr(Begin), EndPtr(End) {}

  const EdgeId *begin() const { return BeginPtr; }
  const EdgeId *end() const { return EndPtr; }
  size_t size() const { return size_t(EndPtr - BeginPtr); }
  bool empty() const { return BeginPtr == EndPtr; }
  EdgeId operator[](size_t I) const { return BeginPtr[I]; }

private:
  const EdgeId *BeginPtr = nullptr;
  const EdgeId *EndPtr = nullptr;
};

struct Node {
  NodeKind Kind = NodeKind::Local;
  /// ir::AllocId for objects, ir::VarId for variables.
  uint32_t IrId = ir::kNone;
  /// Owning method; kNone for globals and the null object.
  ir::MethodId Method = ir::kNone;
  /// True when some local-kind edge touches this node (PPTA shortcut,
  /// paper section 4.3).
  bool HasLocalEdge = false;
  /// True when a global-kind edge flows into / out of this node
  /// (Algorithm 3 lines 15-16 / 28-29 record boundary tuples on these).
  bool HasGlobalIn = false;
  bool HasGlobalOut = false;
};

struct Edge {
  NodeId Src = 0;
  NodeId Dst = 0;
  EdgeKind Kind = EdgeKind::Assign;
  /// FieldId for load/store; CallSiteId for entry/exit; kNone otherwise.
  uint32_t Aux = ir::kNone;
  /// True for entry/exit edges inside a collapsed recursion cycle: the
  /// analyses cross them without pushing/popping the context.
  bool ContextFree = false;
};

/// Aggregate counts for the Table 3 reproduction.
struct PAGStats {
  uint64_t NumMethods = 0;
  uint64_t NumObjects = 0;
  uint64_t NumLocals = 0;
  uint64_t NumGlobals = 0;
  uint64_t EdgesByKind[7] = {};
  /// Fraction of local edges among all edges.
  double locality() const;
  uint64_t totalEdges() const;
};

/// The graph.  Construction happens through PAGBuilder; the analyses
/// only read.
class PAG {
public:
  explicit PAG(const ir::Program &P) : Prog(P) {}

  //===------------------------------------------------------------------===//
  // Construction (PAGBuilder only)
  //===------------------------------------------------------------------===//

  NodeId addNode(NodeKind Kind, uint32_t IrId, ir::MethodId Method);
  EdgeId addEdge(NodeId Src, NodeId Dst, EdgeKind Kind,
                 uint32_t Aux = ir::kNone, bool ContextFree = false);

  /// Builds the kind-partitioned CSR in/out indices and the per-field
  /// load/store indices; call once after the last addEdge.
  void finalize();

  /// Drops all nodes, edges and indices, returning the graph to its
  /// just-constructed state (the program reference is kept).  Used by
  /// rebuildPAG for in-place rebuilds after program edits so analyses
  /// holding references to this graph stay valid.  The rebuild's
  /// populate() re-finalizes, rebuilding the CSR for the new edges.
  void reset();

  //===------------------------------------------------------------------===//
  // Reading
  //===------------------------------------------------------------------===//

  const ir::Program &program() const { return Prog; }

  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const { return Edges.size(); }
  const Node &node(NodeId N) const { return Nodes[N]; }
  const Edge &edge(EdgeId E) const { return Edges[E]; }

  /// Edge ids entering / leaving \p N (all kinds; within the span,
  /// edges are grouped by EdgeKind in enum order).
  EdgeSpan inEdges(NodeId N) const {
    return spanOf(InFlat, InOff, size_t(N) * kNumEdgeKinds,
                  size_t(N + 1) * kNumEdgeKinds);
  }
  EdgeSpan outEdges(NodeId N) const {
    return spanOf(OutFlat, OutOff, size_t(N) * kNumEdgeKinds,
                  size_t(N + 1) * kNumEdgeKinds);
  }

  /// Edge ids of exactly kind \p K entering / leaving \p N — the hot
  /// paths iterate these instead of filtering inEdges with a switch.
  EdgeSpan inEdgesOfKind(NodeId N, EdgeKind K) const {
    size_t Base = size_t(N) * kNumEdgeKinds + unsigned(K);
    return spanOf(InFlat, InOff, Base, Base + 1);
  }
  EdgeSpan outEdgesOfKind(NodeId N, EdgeKind K) const {
    size_t Base = size_t(N) * kNumEdgeKinds + unsigned(K);
    return spanOf(OutFlat, OutOff, Base, Base + 1);
  }

  /// All store edges labelled with \p F (REFINEPTS match-edge lookup).
  EdgeSpan storesOfField(ir::FieldId F) const;

  /// All load edges labelled with \p F.
  EdgeSpan loadsOfField(ir::FieldId F) const;

  /// Node of a variable / allocation site.
  NodeId nodeOfVar(ir::VarId V) const { return VarToNode.at(V); }
  NodeId nodeOfAlloc(ir::AllocId A) const { return AllocToNode.at(A); }

  /// True when \p N is an object node.
  bool isObject(NodeId N) const {
    return Nodes[N].Kind == NodeKind::Object;
  }

  /// The allocation site of object node \p N.
  ir::AllocId allocOf(NodeId N) const;

  /// Human-readable node name ("s1@Main.main", "o25:Vector").
  std::string describe(NodeId N) const;

  /// Computes the Table 3 statistics of this graph.
  PAGStats stats() const;

  /// Writes a readable edge dump (tests and debugging).
  void dump(OStream &OS) const;

private:
  EdgeSpan spanOf(const std::vector<EdgeId> &Flat,
                  const std::vector<uint32_t> &Off, size_t From,
                  size_t To) const {
    return EdgeSpan(Flat.data() + Off[From], Flat.data() + Off[To]);
  }

  const ir::Program &Prog;
  std::vector<Node> Nodes;
  std::vector<Edge> Edges;
  /// CSR payloads: every edge id once per direction, grouped by
  /// (node, kind); edge-id order is preserved within a group.
  std::vector<EdgeId> InFlat, OutFlat;
  /// CSR offsets, numNodes * kNumEdgeKinds + 1 entries.  The range of
  /// (node N, kind K) is [Off[N*7 + K], Off[N*7 + K + 1]); node N's
  /// whole range is [Off[N*7], Off[(N+1)*7]).
  std::vector<uint32_t> InOff, OutOff;
  /// Field-indexed CSR over store/load edges (numFields + 1 offsets).
  std::vector<EdgeId> FieldStoreFlat, FieldLoadFlat;
  std::vector<uint32_t> FieldStoreOff, FieldLoadOff;
  std::vector<NodeId> VarToNode;
  std::vector<NodeId> AllocToNode;
  bool Finalized = false;

  friend class PAGBuilder;
};

} // namespace pag
} // namespace dynsum

#endif // DYNSUM_PAG_PAG_H
