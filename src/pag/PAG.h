//===----------------------------------------------------------------------===//
///
/// \file
/// The Pointer Assignment Graph of the paper's Figure 1.
///
/// Nodes are objects (allocation sites), local variables and global
/// variables.  Edges point in the direction of value flow and carry one
/// of the seven labels:
///
///   local edges   new, assign, load(f), store(f)
///   global edges  assignglobal, entry_i, exit_i
///
/// Orientation conventions (pinned here; every analysis cites them):
///   o --new--> v            v = new ...          (object o flows into v)
///   x --assign--> y         y = x
///   base --load(f)--> dst   dst = base.f         (edge leaves the BASE)
///   val --store(f)--> base  base.f = val         (edge enters the BASE)
///   actual --entry_i--> formal                   (call at site i)
///   ret --exit_i--> recv                         (return at site i)
///
/// The paper's algorithm listings traverse flowsTo-bar and therefore
/// write every edge inverted; the implementation comments map each
/// listing line to this storage orientation.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_PAG_PAG_H
#define DYNSUM_PAG_PAG_H

#include "ir/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dynsum {

class OStream;

namespace pag {

using NodeId = uint32_t;
using EdgeId = uint32_t;

enum class NodeKind : uint8_t {
  Object, ///< an allocation site
  Local,  ///< a method-local variable
  Global, ///< a static/global variable
};

enum class EdgeKind : uint8_t {
  New,
  Assign,
  Load,
  Store,
  AssignGlobal,
  Entry,
  Exit,
};

/// True for the four context-independent edge kinds summarized by PPTA.
inline bool isLocalEdgeKind(EdgeKind K) {
  return K == EdgeKind::New || K == EdgeKind::Assign ||
         K == EdgeKind::Load || K == EdgeKind::Store;
}

/// Printable label ("new", "entry", ...).
const char *edgeKindName(EdgeKind K);

struct Node {
  NodeKind Kind = NodeKind::Local;
  /// ir::AllocId for objects, ir::VarId for variables.
  uint32_t IrId = ir::kNone;
  /// Owning method; kNone for globals and the null object.
  ir::MethodId Method = ir::kNone;
  /// True when some local-kind edge touches this node (PPTA shortcut,
  /// paper section 4.3).
  bool HasLocalEdge = false;
  /// True when a global-kind edge flows into / out of this node
  /// (Algorithm 3 lines 15-16 / 28-29 record boundary tuples on these).
  bool HasGlobalIn = false;
  bool HasGlobalOut = false;
};

struct Edge {
  NodeId Src = 0;
  NodeId Dst = 0;
  EdgeKind Kind = EdgeKind::Assign;
  /// FieldId for load/store; CallSiteId for entry/exit; kNone otherwise.
  uint32_t Aux = ir::kNone;
  /// True for entry/exit edges inside a collapsed recursion cycle: the
  /// analyses cross them without pushing/popping the context.
  bool ContextFree = false;
};

/// Aggregate counts for the Table 3 reproduction.
struct PAGStats {
  uint64_t NumMethods = 0;
  uint64_t NumObjects = 0;
  uint64_t NumLocals = 0;
  uint64_t NumGlobals = 0;
  uint64_t EdgesByKind[7] = {};
  /// Fraction of local edges among all edges.
  double locality() const;
  uint64_t totalEdges() const;
};

/// The graph.  Construction happens through PAGBuilder; the analyses
/// only read.
class PAG {
public:
  explicit PAG(const ir::Program &P) : Prog(P) {}

  //===------------------------------------------------------------------===//
  // Construction (PAGBuilder only)
  //===------------------------------------------------------------------===//

  NodeId addNode(NodeKind Kind, uint32_t IrId, ir::MethodId Method);
  EdgeId addEdge(NodeId Src, NodeId Dst, EdgeKind Kind,
                 uint32_t Aux = ir::kNone, bool ContextFree = false);

  /// Builds the per-node in/out indices; call once after the last
  /// addEdge.
  void finalize();

  /// Drops all nodes, edges and indices, returning the graph to its
  /// just-constructed state (the program reference is kept).  Used by
  /// rebuildPAG for in-place rebuilds after program edits so analyses
  /// holding references to this graph stay valid.
  void reset();

  //===------------------------------------------------------------------===//
  // Reading
  //===------------------------------------------------------------------===//

  const ir::Program &program() const { return Prog; }

  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const { return Edges.size(); }
  const Node &node(NodeId N) const { return Nodes[N]; }
  const Edge &edge(EdgeId E) const { return Edges[E]; }

  /// Edge ids entering / leaving \p N (all kinds, callers filter).
  const std::vector<EdgeId> &inEdges(NodeId N) const { return In[N]; }
  const std::vector<EdgeId> &outEdges(NodeId N) const { return Out[N]; }

  /// All store edges labelled with \p F (REFINEPTS match-edge lookup).
  const std::vector<EdgeId> &storesOfField(ir::FieldId F) const;

  /// All load edges labelled with \p F.
  const std::vector<EdgeId> &loadsOfField(ir::FieldId F) const;

  /// Node of a variable / allocation site.
  NodeId nodeOfVar(ir::VarId V) const { return VarToNode.at(V); }
  NodeId nodeOfAlloc(ir::AllocId A) const { return AllocToNode.at(A); }

  /// True when \p N is an object node.
  bool isObject(NodeId N) const {
    return Nodes[N].Kind == NodeKind::Object;
  }

  /// The allocation site of object node \p N.
  ir::AllocId allocOf(NodeId N) const;

  /// Human-readable node name ("s1@Main.main", "o25:Vector").
  std::string describe(NodeId N) const;

  /// Computes the Table 3 statistics of this graph.
  PAGStats stats() const;

  /// Writes a readable edge dump (tests and debugging).
  void dump(OStream &OS) const;

private:
  const ir::Program &Prog;
  std::vector<Node> Nodes;
  std::vector<Edge> Edges;
  std::vector<std::vector<EdgeId>> In, Out;
  std::vector<std::vector<EdgeId>> FieldStores, FieldLoads;
  std::vector<NodeId> VarToNode;
  std::vector<NodeId> AllocToNode;
  bool Finalized = false;

  friend class PAGBuilder;
};

} // namespace pag
} // namespace dynsum

#endif // DYNSUM_PAG_PAG_H
