//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniJava.
///
/// Grammar (EBNF; [] optional, {} repetition):
///
///   unit       := {classdecl} EOF
///   classdecl  := "class" ID ["extends" ID] "{" {member} "}"
///   member     := type ID ";"                                   // field
///               | ["static"] (type | "void") ID "(" params ")" block
///               | ID "(" params ")" block                       // ctor
///   type       := ("int" | "boolean" | ID) ["[" "]"]
///   params     := [type ID {"," type ID}]
///   block      := "{" {stmt} "}"
///   stmt       := block
///               | "if" "(" expr ")" stmt ["else" stmt]
///               | "while" "(" expr ")" stmt
///               | "return" [expr] ";"
///               | type ID ["=" expr] ";"                        // decl
///               | expr ["=" expr] ";"                           // assign
///   expr       := binary expression over unary, precedence
///                 || < && < ==/!= < (< >) < +- < */
///   unary      := ("!" | "-") unary | "(" type ")" unary | postfix
///   postfix    := primary {"." ID ["(" args ")"] | "[" expr "]"}
///   primary    := INT | STRING | "true" | "false" | "null" | "this"
///               | ID ["(" args ")"]
///               | "new" ID "(" args ")"
///               | "new" ("int" | "boolean" | ID) "[" expr "]"
///               | "(" expr ")"
///
/// Cast-vs-grouping ambiguity at "(": resolved by lookahead — a
/// parenthesized primitive type, a parenthesized "ID[]", or "(ID)"
/// followed by a token that can begin a unary expression parses as a
/// cast (the standard one-identifier heuristic; MiniJava has no
/// expression juxtaposition so it is exact here).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_FRONTEND_PARSER_H
#define DYNSUM_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Diagnostics.h"

#include <vector>

namespace dynsum {
namespace frontend {

/// Parses \p Source into an AST, reporting problems to \p Diags.  The
/// returned unit contains everything parseable before the first
/// unrecoverable error; callers must check Diags before using it.
CompilationUnit parseUnit(std::string_view Source, DiagnosticEngine &Diags);

} // namespace frontend
} // namespace dynsum

#endif // DYNSUM_FRONTEND_PARSER_H
