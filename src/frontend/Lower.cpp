//===----------------------------------------------------------------------===//
///
/// \file
/// MiniJava-to-IR lowering implementation.
///
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"

#include <cassert>
#include <unordered_map>

using namespace dynsum;
using namespace dynsum::frontend;
using ir::kNone;

namespace {

/// Lowering context for one compilation unit.
class Lowerer {
public:
  Lowerer(const CompilationUnit &Unit, const SemaResult &Sema)
      : Unit(Unit), Sema(Sema), Prog(std::make_unique<ir::Program>()) {}

  std::unique_ptr<ir::Program> run();

private:
  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  /// IR class for sema class \p Idx, creating superclasses first.
  ir::TypeId irClass(uint32_t Idx);

  /// IR class representing arrays of \p Elem ("Vector[]", "int[]").
  ir::TypeId irArrayClass(TypeDesc::Kind Elem, uint32_t ElemClassIdx);

  /// IR type carrying values of \p T (kObjectType for non-pointers).
  ir::TypeId irTypeOf(const TypeDesc &T);

  /// IR global for static field \p FieldIdx of sema class \p ClassIdx.
  ir::VarId irStaticField(uint32_t ClassIdx, uint32_t FieldIdx);

  void declareMethods();
  void lowerBodies();

  //===------------------------------------------------------------------===//
  // Statements and expressions
  //===------------------------------------------------------------------===//

  void lowerStmt(const Stmt &S);

  /// Lowers \p E for value.  Returns the IR variable holding the result,
  /// or kNone when the expression carries no pointer.
  ir::VarId lowerExpr(const Expr &E);

  ir::VarId lowerCall(const Expr &E);
  ir::VarId lowerNewObject(const Expr &E);

  /// A fresh temporary in the current method with declared type \p T.
  ir::VarId newTemp(ir::TypeId T);

  /// The scoped IR variable for source name \p Name (must be bound).
  ir::VarId scopedVar(std::string_view Name) const;

  void emit(ir::Statement S) { Prog->addStatement(CurMethod, std::move(S)); }

  void emitAssign(ir::VarId Dst, ir::VarId Src) {
    assert(Dst != kNone && Src != kNone && "assign of non-pointers");
    ir::Statement S;
    S.Kind = ir::StmtKind::Assign;
    S.Dst = Dst;
    S.Src = Src;
    emit(std::move(S));
  }

  /// Declares source variable \p Name in the innermost scope, creating a
  /// uniquely named IR local (shadowed names get a "#N" suffix).
  ir::VarId declareScopedVar(std::string_view Name, ir::TypeId DeclaredType);

  void pushScope() { ScopeBounds.push_back(Scope.size()); }
  void popScope() {
    Scope.resize(ScopeBounds.back());
    ScopeBounds.pop_back();
  }

  const CompilationUnit &Unit;
  const SemaResult &Sema;
  std::unique_ptr<ir::Program> Prog;

  /// Sema class index -> IR class id (kNone until created).
  std::vector<ir::TypeId> ClassMap;
  /// Array-class cache keyed by (elem kind, elem class idx).
  std::unordered_map<uint64_t, ir::TypeId> ArrayClasses;
  /// Sema method index -> IR method id.
  std::vector<ir::MethodId> MethodMap;
  /// (class idx << 32 | field idx) -> IR global id.
  std::unordered_map<uint64_t, ir::VarId> StaticFieldMap;

  ir::FieldId ArrField = kNone;

  // Per-method lowering state.
  ir::MethodId CurMethod = kNone;
  uint32_t CurSema = ~0u; ///< sema index of the method being lowered
  struct Binding {
    std::string Name;
    ir::VarId Var;
  };
  std::vector<Binding> Scope;
  std::vector<size_t> ScopeBounds;
  uint32_t NextTemp = 0;
  std::unordered_map<std::string, uint32_t> NameUses;
};

} // namespace

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

ir::TypeId Lowerer::irClass(uint32_t Idx) {
  assert(Idx < ClassMap.size() && "sema class out of range");
  if (ClassMap[Idx] != kNone)
    return ClassMap[Idx];
  const ClassInfo &Info = Sema.Classes[Idx];
  assert(Idx != 0 && "Object is pre-mapped");
  ir::TypeId Super =
      Info.SuperIdx == ~0u ? ir::kObjectType : irClass(Info.SuperIdx);
  ClassMap[Idx] = Prog->createClass(Prog->name(Info.Name), Super);
  return ClassMap[Idx];
}

ir::TypeId Lowerer::irArrayClass(TypeDesc::Kind Elem, uint32_t ElemClassIdx) {
  uint64_t Key = (uint64_t(Elem) << 32) | ElemClassIdx;
  auto It = ArrayClasses.find(Key);
  if (It != ArrayClasses.end())
    return It->second;
  std::string Name;
  switch (Elem) {
  case TypeDesc::Int:
    Name = "int[]";
    break;
  case TypeDesc::Boolean:
    Name = "boolean[]";
    break;
  case TypeDesc::Class:
    Name = Sema.Classes[ElemClassIdx].Name + "[]";
    break;
  default:
    assert(false && "bad array element kind");
  }
  ir::TypeId Id = Prog->createClass(Prog->name(Name), ir::kObjectType);
  ArrayClasses.emplace(Key, Id);
  return Id;
}

ir::TypeId Lowerer::irTypeOf(const TypeDesc &T) {
  switch (T.K) {
  case TypeDesc::Class:
    return irClass(T.ClassIdx);
  case TypeDesc::Array:
    return irArrayClass(T.Elem, T.ElemClassIdx);
  default:
    return ir::kObjectType;
  }
}

ir::VarId Lowerer::irStaticField(uint32_t ClassIdx, uint32_t FieldIdx) {
  uint64_t Key = (uint64_t(ClassIdx) << 32) | FieldIdx;
  auto It = StaticFieldMap.find(Key);
  if (It != StaticFieldMap.end())
    return It->second;
  const ClassInfo &Cls = Sema.Classes[ClassIdx];
  const FieldInfo &F = Cls.StaticFields[FieldIdx];
  ir::VarId G = Prog->createGlobal(Prog->name(Cls.Name + "." + F.Name),
                                   irTypeOf(F.Type));
  StaticFieldMap.emplace(Key, G);
  return G;
}

void Lowerer::declareMethods() {
  MethodMap.assign(Sema.Methods.size(), kNone);
  for (uint32_t I = 0; I < Sema.Methods.size(); ++I) {
    const MethodInfo &M = Sema.Methods[I];
    ir::TypeId Owner = irClass(M.ClassIdx);
    std::string_view Name = M.IsCtor ? std::string_view("<init>") : M.Name;
    ir::MethodId Id = Prog->createMethod(Prog->name(Name), Owner);
    MethodMap[I] = Id;
  }
}

//===----------------------------------------------------------------------===//
// Scope management
//===----------------------------------------------------------------------===//

ir::VarId Lowerer::declareScopedVar(std::string_view Name,
                                    ir::TypeId DeclaredType) {
  // IR locals are keyed by name within a method; shadowed declarations
  // get a unique suffix.
  std::string Unique(Name);
  uint32_t &Uses = NameUses[Unique];
  if (Uses > 0)
    Unique += "#" + std::to_string(Uses);
  ++Uses;
  ir::VarId V =
      Prog->createLocal(Prog->name(Unique), CurMethod, DeclaredType);
  Scope.push_back({std::string(Name), V});
  return V;
}

ir::VarId Lowerer::scopedVar(std::string_view Name) const {
  for (size_t I = Scope.size(); I > 0; --I)
    if (Scope[I - 1].Name == Name)
      return Scope[I - 1].Var;
  assert(false && "sema guarantees all variable references are bound");
  return kNone;
}

ir::VarId Lowerer::newTemp(ir::TypeId T) {
  std::string Name = "$t" + std::to_string(NextTemp++);
  return Prog->createLocal(Prog->name(Name), CurMethod, T);
}

//===----------------------------------------------------------------------===//
// Bodies
//===----------------------------------------------------------------------===//

void Lowerer::lowerBodies() {
  for (uint32_t I = 0; I < Sema.Methods.size(); ++I) {
    const MethodInfo &M = Sema.Methods[I];
    if (!M.Decl || !M.Decl->Body)
      continue;
    CurMethod = MethodMap[I];
    CurSema = I;
    Scope.clear();
    ScopeBounds.clear();
    NameUses.clear();
    NextTemp = 0;
    pushScope();

    ir::Method &IrM = Prog->method(CurMethod);
    if (!M.IsStatic) {
      ir::VarId This = declareScopedVar("this", irClass(M.ClassIdx));
      IrM.Params.push_back(This);
    }
    for (size_t P = 0; P < M.ParamNames.size(); ++P) {
      if (!M.ParamTypes[P].isPointer()) {
        // Primitive parameters exist only in sema's scopes; the IR
        // signature is pointers-only.
        Scope.push_back({M.ParamNames[P], kNone});
        continue;
      }
      ir::VarId V =
          declareScopedVar(M.ParamNames[P], irTypeOf(M.ParamTypes[P]));
      IrM.Params.push_back(V);
    }

    lowerStmt(*M.Decl->Body);
    popScope();
  }
  CurMethod = kNone;
  CurSema = ~0u;
}

void Lowerer::lowerStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Block:
    pushScope();
    for (const StmtPtr &Child : S.Body)
      lowerStmt(*Child);
    popScope();
    return;

  case StmtKind::VarDecl: {
    // The declared type, not the initializer type, names the IR local's
    // static type (SafeCast keys on declared types).
    TypeDesc Declared;
    switch (S.DeclType.Base) {
    case TypeRef::Int:
      Declared = TypeDesc::intTy();
      break;
    case TypeRef::Boolean:
      Declared = TypeDesc::boolTy();
      break;
    case TypeRef::Void:
      Declared = TypeDesc::invalidTy();
      break;
    case TypeRef::Class:
      Declared = TypeDesc::classTy(Sema.classIdx(S.DeclType.Name));
      break;
    }
    if (S.DeclType.IsArray)
      Declared = TypeDesc::arrayOf(Declared.K, Declared.ClassIdx);

    if (!Declared.isPointer()) {
      // Primitive local: evaluate the initializer for effects only.
      if (S.Value)
        lowerExpr(*S.Value);
      Scope.push_back({S.Text, kNone});
      return;
    }
    ir::VarId V = declareScopedVar(S.Text, irTypeOf(Declared));
    if (S.Value) {
      ir::VarId Init = lowerExpr(*S.Value);
      if (Init != kNone)
        emitAssign(V, Init);
    }
    return;
  }

  case StmtKind::Assign: {
    const Expr &Target = *S.Target;
    switch (Target.Kind) {
    case ExprKind::VarRef: {
      ir::VarId Src = lowerExpr(*S.Value);
      ir::VarId Dst = scopedVar(Target.Text);
      if (Dst != kNone && Src != kNone)
        emitAssign(Dst, Src);
      return;
    }
    case ExprKind::FieldAccess: {
      auto StaticRef = Sema.StaticFieldRefs.find(&Target);
      if (StaticRef != Sema.StaticFieldRefs.end()) {
        ir::VarId Src = lowerExpr(*S.Value);
        ir::VarId G = irStaticField(StaticRef->second.first,
                                    StaticRef->second.second);
        if (Src != kNone)
          emitAssign(G, Src); // a global assignment
        return;
      }
      ir::VarId Base = lowerExpr(*Target.Lhs);
      ir::VarId Src = lowerExpr(*S.Value);
      if (Base == kNone || Src == kNone)
        return; // primitive-typed field: no pointer moves
      ir::Statement Store;
      Store.Kind = ir::StmtKind::Store;
      Store.Base = Base;
      Store.FieldLabel = Prog->getOrCreateField(Prog->name(Target.Text));
      Store.Src = Src;
      emit(std::move(Store));
      return;
    }
    case ExprKind::ArrayIndex: {
      ir::VarId Base = lowerExpr(*Target.Lhs);
      lowerExpr(*Target.Rhs); // index, for effects
      ir::VarId Src = lowerExpr(*S.Value);
      if (Base == kNone || Src == kNone)
        return;
      ir::Statement Store;
      Store.Kind = ir::StmtKind::Store;
      Store.Base = Base;
      Store.FieldLabel = ArrField;
      Store.Src = Src;
      emit(std::move(Store));
      return;
    }
    default:
      assert(false && "parser rejects other assignment targets");
      return;
    }
  }

  case StmtKind::ExprStmt:
    lowerExpr(*S.Value);
    return;

  case StmtKind::If:
    lowerExpr(*S.Cond); // effects only; both branches always lower
    lowerStmt(*S.Then);
    if (S.Else)
      lowerStmt(*S.Else);
    return;

  case StmtKind::While:
    lowerExpr(*S.Cond);
    lowerStmt(*S.Then);
    return;

  case StmtKind::Return: {
    if (!S.Value)
      return;
    ir::VarId V = lowerExpr(*S.Value);
    if (V == kNone)
      return; // void/primitive return carries no pointer
    ir::Statement Ret;
    Ret.Kind = ir::StmtKind::Return;
    Ret.Src = V;
    emit(std::move(Ret));
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ir::VarId Lowerer::lowerExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
    return kNone;

  case ExprKind::NullLit: {
    ir::VarId Tmp = newTemp(ir::kObjectType);
    ir::Statement S;
    S.Kind = ir::StmtKind::Null;
    S.Dst = Tmp;
    S.Alloc = Prog->createNullAlloc(CurMethod);
    emit(std::move(S));
    return Tmp;
  }

  case ExprKind::StringLit: {
    uint32_t StringIdx = Sema.classIdx("String");
    ir::TypeId StringTy = irClass(StringIdx);
    ir::VarId Tmp = newTemp(StringTy);
    ir::Statement S;
    S.Kind = ir::StmtKind::Alloc;
    S.Dst = Tmp;
    S.Type = StringTy;
    S.Alloc = Prog->createAllocSite(StringTy, CurMethod, Symbol{});
    emit(std::move(S));
    return Tmp;
  }

  case ExprKind::This:
    return scopedVar("this");

  case ExprKind::VarRef:
    if (Sema.ClassRefs.count(&E))
      return kNone; // a class name used as a static qualifier
    return scopedVar(E.Text);

  case ExprKind::FieldAccess: {
    auto StaticRef = Sema.StaticFieldRefs.find(&E);
    if (StaticRef != Sema.StaticFieldRefs.end()) {
      const FieldInfo &F =
          Sema.Classes[StaticRef->second.first]
              .StaticFields[StaticRef->second.second];
      if (!F.Type.isPointer())
        return kNone;
      return irStaticField(StaticRef->second.first, StaticRef->second.second);
    }
    ir::VarId Base = lowerExpr(*E.Lhs);
    if (Sema.LengthReads.count(&E))
      return kNone; // arr.length is an int
    TypeDesc FieldType = Sema.typeOf(&E);
    if (Base == kNone || !FieldType.isPointer())
      return kNone; // primitive field: the deref moves no pointer
    ir::VarId Tmp = newTemp(irTypeOf(FieldType));
    ir::Statement S;
    S.Kind = ir::StmtKind::Load;
    S.Dst = Tmp;
    S.Base = Base;
    S.FieldLabel = Prog->getOrCreateField(Prog->name(E.Text));
    emit(std::move(S));
    return Tmp;
  }

  case ExprKind::ArrayIndex: {
    ir::VarId Base = lowerExpr(*E.Lhs);
    lowerExpr(*E.Rhs); // index, for effects
    TypeDesc ElemType = Sema.typeOf(&E);
    if (Base == kNone || !ElemType.isPointer())
      return kNone;
    ir::VarId Tmp = newTemp(irTypeOf(ElemType));
    ir::Statement S;
    S.Kind = ir::StmtKind::Load;
    S.Dst = Tmp;
    S.Base = Base;
    S.FieldLabel = ArrField;
    emit(std::move(S));
    return Tmp;
  }

  case ExprKind::Call:
    return lowerCall(E);
  case ExprKind::NewObject:
    return lowerNewObject(E);

  case ExprKind::NewArray: {
    lowerExpr(*E.Rhs); // size, for effects
    TypeDesc T = Sema.typeOf(&E);
    assert(T.K == TypeDesc::Array && "sema types new[] as an array");
    ir::TypeId ArrTy = irArrayClass(T.Elem, T.ElemClassIdx);
    ir::VarId Tmp = newTemp(ArrTy);
    ir::Statement S;
    S.Kind = ir::StmtKind::Alloc;
    S.Dst = Tmp;
    S.Type = ArrTy;
    S.Alloc = Prog->createAllocSite(ArrTy, CurMethod, Symbol{});
    emit(std::move(S));
    return Tmp;
  }

  case ExprKind::Cast: {
    ir::VarId Src = lowerExpr(*E.Lhs);
    TypeDesc Target = Sema.typeOf(&E);
    if (Src == kNone || !Target.isPointer())
      return Src;
    ir::TypeId TargetTy = irTypeOf(Target);
    ir::VarId Tmp = newTemp(TargetTy);
    ir::Statement S;
    S.Kind = ir::StmtKind::Cast;
    S.Dst = Tmp;
    S.Src = Src;
    S.Type = TargetTy;
    S.Cast = Prog->createCastSite(CurMethod, Src, TargetTy);
    emit(std::move(S));
    return Tmp;
  }

  case ExprKind::Unary:
    lowerExpr(*E.Lhs);
    return kNone;

  case ExprKind::Binary:
    lowerExpr(*E.Lhs);
    lowerExpr(*E.Rhs);
    return kNone;
  }
  assert(false && "unknown expression kind");
  return kNone;
}

ir::VarId Lowerer::lowerCall(const Expr &E) {
  auto CallIt = Sema.Calls.find(&E);
  assert(CallIt != Sema.Calls.end() && "sema resolves every call");
  const CallInfo &Info = CallIt->second;
  const MethodInfo &Callee = Sema.Methods[Info.MethodIdx];

  // Receiver (virtual calls only).
  ir::VarId Recv = kNone;
  if (Info.K == CallInfo::Virtual)
    Recv = Info.ImplicitThis ? scopedVar("this") : lowerExpr(*E.Lhs);
  else if (E.Lhs && !Sema.ClassRefs.count(E.Lhs.get()))
    lowerExpr(*E.Lhs); // static call through an expression: effects only

  // Arguments: lower all for effects, keep the pointer ones.
  std::vector<ir::VarId> PtrArgs;
  for (size_t I = 0; I < E.Args.size(); ++I) {
    ir::VarId V = lowerExpr(*E.Args[I]);
    if (Callee.ParamTypes[I].isPointer()) {
      // A pointer parameter may still receive the null temp of an
      // unlowered operand only via sema errors; guarded by assert.
      assert(V != kNone && "pointer argument lowered to nothing");
      PtrArgs.push_back(V);
    }
  }

  ir::VarId Dst = kNone;
  if (Callee.ReturnType.isPointer())
    Dst = newTemp(irTypeOf(Callee.ReturnType));

  ir::Statement S;
  S.Kind = ir::StmtKind::Call;
  S.Dst = Dst;
  S.Call = Prog->createCallSite(CurMethod, E.Loc.Line);
  if (Info.K == CallInfo::Virtual) {
    assert(Recv != kNone && "virtual call without a receiver");
    S.IsVirtual = true;
    S.Base = Recv;
    S.VirtualName = Prog->name(Callee.Name);
    S.Args.push_back(Recv);
  } else {
    S.Callee = MethodMap[Info.MethodIdx];
  }
  for (ir::VarId Arg : PtrArgs)
    S.Args.push_back(Arg);
  emit(std::move(S));
  return Dst;
}

ir::VarId Lowerer::lowerNewObject(const Expr &E) {
  TypeDesc T = Sema.typeOf(&E);
  assert(T.K == TypeDesc::Class && "sema types 'new C' as class C");
  ir::TypeId Ty = irClass(T.ClassIdx);
  ir::VarId Obj = newTemp(Ty);
  ir::Statement Alloc;
  Alloc.Kind = ir::StmtKind::Alloc;
  Alloc.Dst = Obj;
  Alloc.Type = Ty;
  Alloc.Alloc = Prog->createAllocSite(Ty, CurMethod, Symbol{});
  emit(std::move(Alloc));

  auto CallIt = Sema.Calls.find(&E);
  if (CallIt == Sema.Calls.end())
    return Obj; // no constructor declared: the bare allocation suffices

  const MethodInfo &Ctor = Sema.Methods[CallIt->second.MethodIdx];
  ir::Statement S;
  S.Kind = ir::StmtKind::Call;
  S.Callee = MethodMap[CallIt->second.MethodIdx];
  S.Call = Prog->createCallSite(CurMethod, E.Loc.Line);
  S.Args.push_back(Obj); // the fresh object is the receiver
  for (size_t I = 0; I < E.Args.size(); ++I) {
    ir::VarId V = lowerExpr(*E.Args[I]);
    if (Ctor.ParamTypes[I].isPointer()) {
      assert(V != kNone && "pointer argument lowered to nothing");
      S.Args.push_back(V);
    }
  }
  emit(std::move(S));
  return Obj;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Program> Lowerer::run() {
  ClassMap.assign(Sema.Classes.size(), kNone);
  ClassMap[0] = ir::kObjectType;
  for (uint32_t I = 1; I < Sema.Classes.size(); ++I)
    irClass(I);
  ArrField = Prog->getOrCreateField(Prog->name("arr"));
  declareMethods();
  lowerBodies();
  return std::move(Prog);
}

std::unique_ptr<ir::Program>
dynsum::frontend::lowerUnit(const CompilationUnit &Unit,
                            const SemaResult &Sema) {
  Lowerer L(Unit, Sema);
  return L.run();
}
