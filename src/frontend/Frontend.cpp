//===----------------------------------------------------------------------===//
///
/// \file
/// MiniJava compilation driver.
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

using namespace dynsum;
using namespace dynsum::frontend;

std::string Diagnostic::str() const {
  return "line " + std::to_string(Loc.Line) + ":" + std::to_string(Loc.Col) +
         ": " + Message;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (!Out.empty())
      Out += '\n';
    Out += D.str();
  }
  return Out;
}

CompileResult dynsum::frontend::compileMiniJava(std::string_view Source) {
  CompileResult Result;
  CompilationUnit Unit = parseUnit(Source, Result.Diags);
  if (Result.Diags.hasErrors())
    return Result;
  SemaResult Sema = analyzeUnit(Unit, Result.Diags);
  if (Result.Diags.hasErrors())
    return Result;
  Result.Prog = lowerUnit(Unit, Sema);
  return Result;
}
