//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection shared by the MiniJava parser, sema and
/// lowering phases.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_FRONTEND_DIAGNOSTICS_H
#define DYNSUM_FRONTEND_DIAGNOSTICS_H

#include "frontend/Token.h"

#include <string>
#include <vector>

namespace dynsum {
namespace frontend {

/// One error message anchored at a source location.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;

  /// "line L:C: message" (the error style of the IR parser).
  std::string str() const;
};

/// Accumulates diagnostics across frontend phases.  The frontend never
/// aborts on the first error; each phase reports what it can and later
/// phases run only when earlier ones were clean.
class DiagnosticEngine {
public:
  /// Records an error at \p Loc.
  void report(SourceLoc Loc, std::string Message) {
    Diags.push_back({Loc, std::move(Message)});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// All diagnostics joined by newlines (convenience for tests and
  /// tools).  Empty when clean.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace frontend
} // namespace dynsum

#endif // DYNSUM_FRONTEND_DIAGNOSTICS_H
