//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for MiniJava: class-table construction, scope and
/// name resolution, and type checking.
///
/// Sema validates a parsed CompilationUnit and produces the resolution
/// side tables lowering consumes: the class/member tables, a type for
/// every expression, and a resolution record for every call.  The AST
/// itself stays immutable; annotations are keyed by node address.
///
/// Language rules enforced here (deliberate simplifications over Java,
/// each keeping the IR's name-keyed dispatch sound):
///  * single inheritance, no interfaces; "Object" and "String" are
///    built in (String only when not user-declared);
///  * no method overloading: one signature per name per class;
///  * an override must repeat the overridden signature exactly;
///  * a name may not be both a static and an instance method anywhere
///    in one inheritance chain;
///  * fields may not redeclare (hide) inherited fields;
///  * arrays are invariant, assignable only to identical array types or
///    to Object; "arr.length" reads as int;
///  * casts exist only between reference types.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_FRONTEND_SEMA_H
#define DYNSUM_FRONTEND_SEMA_H

#include "frontend/Ast.h"
#include "frontend/Diagnostics.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace dynsum {
namespace frontend {

/// A resolved MiniJava type.
struct TypeDesc {
  enum Kind : uint8_t {
    Invalid, ///< error recovery; compatible with everything
    Void,
    Int,
    Boolean,
    Null, ///< the type of the null literal
    Class,
    Array,
  };

  Kind K = Invalid;
  uint32_t ClassIdx = ~0u; ///< SemaResult::Classes index when K == Class
  Kind Elem = Invalid;     ///< Int/Boolean/Class when K == Array
  uint32_t ElemClassIdx = ~0u;

  static TypeDesc invalidTy() { return {}; }
  static TypeDesc voidTy() { return {Void, ~0u, Invalid, ~0u}; }
  static TypeDesc intTy() { return {Int, ~0u, Invalid, ~0u}; }
  static TypeDesc boolTy() { return {Boolean, ~0u, Invalid, ~0u}; }
  static TypeDesc nullTy() { return {Null, ~0u, Invalid, ~0u}; }
  static TypeDesc classTy(uint32_t Idx) { return {Class, Idx, Invalid, ~0u}; }
  static TypeDesc arrayOf(Kind ElemKind, uint32_t ElemIdx) {
    return {Array, ~0u, ElemKind, ElemIdx};
  }

  bool isPointer() const { return K == Class || K == Array || K == Null; }
  bool isInvalid() const { return K == Invalid; }

  friend bool operator==(const TypeDesc &A, const TypeDesc &B) {
    return A.K == B.K && A.ClassIdx == B.ClassIdx && A.Elem == B.Elem &&
           A.ElemClassIdx == B.ElemClassIdx;
  }
};

/// A resolved instance field.
struct FieldInfo {
  std::string Name;
  TypeDesc Type;
  SourceLoc Loc;
};

/// A resolved method, constructor or static method.
struct MethodInfo {
  std::string Name;
  uint32_t ClassIdx = ~0u;
  std::vector<TypeDesc> ParamTypes;
  std::vector<std::string> ParamNames;
  TypeDesc ReturnType;
  bool IsStatic = false;
  bool IsCtor = false;
  const MethodDecl *Decl = nullptr; ///< null for nothing today; kept for tools
};

/// A resolved class.
struct ClassInfo {
  std::string Name;
  uint32_t SuperIdx = ~0u; ///< ~0 only for the Object root
  std::vector<FieldInfo> Fields;       ///< instance fields
  std::vector<FieldInfo> StaticFields; ///< globals, read as "Name.field"
  std::vector<uint32_t> Methods; ///< indices into SemaResult::Methods
  const ClassDecl *Decl = nullptr; ///< null for built-in Object/String
};

/// How one Call / NewObject expression resolved.
struct CallInfo {
  enum Kind : uint8_t {
    Virtual, ///< dispatched on the receiver's dynamic type
    Static,  ///< direct call to a static method
    Ctor,    ///< constructor invocation from a NewObject
  };

  Kind K = Virtual;
  uint32_t MethodIdx = ~0u; ///< the statically resolved declaration
  /// Virtual calls on "this" / unqualified instance calls: receiver is
  /// the implicit this.
  bool ImplicitThis = false;
};

/// Everything sema learned about a unit.
struct SemaResult {
  /// Classes[0] is the implicit Object root.
  std::vector<ClassInfo> Classes;
  std::vector<MethodInfo> Methods;

  /// Type of every expression (error recovery may leave Invalid).
  std::unordered_map<const Expr *, TypeDesc> ExprTypes;
  /// Resolution of every Call and NewObject expression.
  std::unordered_map<const Expr *, CallInfo> Calls;
  /// VarRef expressions that name a *class* (static-call/field
  /// qualifiers).
  std::unordered_map<const Expr *, uint32_t> ClassRefs;
  /// FieldAccess expressions that are "array.length" reads.
  std::unordered_map<const Expr *, bool> LengthReads;
  /// FieldAccess expressions resolving to a static field:
  /// (declaring class index, index into its StaticFields).
  std::unordered_map<const Expr *, std::pair<uint32_t, uint32_t>>
      StaticFieldRefs;

  /// Class index by name; ~0u when absent.
  uint32_t classIdx(std::string_view Name) const;

  /// Field lookup walking the superclass chain; null when absent.
  const FieldInfo *findField(uint32_t ClassIdx, std::string_view Name) const;

  /// Static-field lookup walking the superclass chain.  On success
  /// returns the declaring class index and the StaticFields position;
  /// (~0u, ~0u) when absent.
  std::pair<uint32_t, uint32_t> findStaticField(uint32_t ClassIdx,
                                                std::string_view Name) const;

  /// Method lookup by name walking the superclass chain; ~0u when
  /// absent.  Constructors are never returned (look them up per class).
  uint32_t findMethod(uint32_t ClassIdx, std::string_view Name) const;

  /// The constructor declared by exactly \p ClassIdx; ~0u when none.
  uint32_t findCtor(uint32_t ClassIdx) const;

  /// True when \p Sub is \p Super or a transitive subclass.
  bool isSubclass(uint32_t Sub, uint32_t Super) const;

  /// Type of \p E as recorded by sema (Invalid when unknown).
  TypeDesc typeOf(const Expr *E) const;

  /// Readable type name for diagnostics and tests ("Vector", "int[]").
  std::string typeName(const TypeDesc &T) const;

private:
  mutable std::unordered_map<std::string, uint32_t> ClassIdxCache;
};

/// Runs semantic analysis over \p Unit.  Errors go to \p Diags; the
/// result is only meaningful for lowering when Diags stays clean.
SemaResult analyzeUnit(const CompilationUnit &Unit, DiagnosticEngine &Diags);

} // namespace frontend
} // namespace dynsum

#endif // DYNSUM_FRONTEND_SEMA_H
