//===----------------------------------------------------------------------===//
///
/// \file
/// One-call MiniJava compilation pipeline: source text -> pointer IR.
///
/// This is the frontend analogue of ir::parseProgram for users who want
/// to write analyses against Java-like source instead of the textual
/// IR.  The pipeline is lex -> parse -> sema -> lower; the IR program it
/// produces feeds pag::buildPAG and every analysis unchanged.
///
/// Identity contract: lowering assigns variable/allocation-site/method
/// ids deterministically in source order, and the produced Program
/// carries the per-method edit clock and fingerprints (see "Edit
/// tracking" in ir/Program.h) that the incremental layers key on.
/// Those append-only ids are what the PAG's persistent node table is
/// keyed by, so identity is stable from source symbol to PAG node to
/// service summary — edits after compilation (EditSession,
/// AnalysisService) patch per method instead of rebuilding.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_FRONTEND_FRONTEND_H
#define DYNSUM_FRONTEND_FRONTEND_H

#include "frontend/Diagnostics.h"
#include "ir/Program.h"

#include <memory>
#include <string_view>

namespace dynsum {
namespace frontend {

/// Result of compiling a MiniJava unit.
struct CompileResult {
  /// The lowered program; null when compilation failed.
  std::unique_ptr<ir::Program> Prog;
  /// All diagnostics, in phase order (lexer/parser before sema).
  DiagnosticEngine Diags;

  bool ok() const { return Prog != nullptr; }
};

/// Compiles MiniJava \p Source down to the pointer IR.
CompileResult compileMiniJava(std::string_view Source);

} // namespace frontend
} // namespace dynsum

#endif // DYNSUM_FRONTEND_FRONTEND_H
