//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the MiniJava frontend.
///
/// Supports // line comments and /* block comments */, decimal integer
/// literals, double-quoted string literals (no escapes beyond \" \\ \n
/// \t) and the operator/keyword set of Token.h.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_FRONTEND_LEXER_H
#define DYNSUM_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <string_view>
#include <vector>

namespace dynsum {
namespace frontend {

/// Lexes a source buffer into a token vector (ending with Eof).  The
/// buffer must outlive any tokens produced from it.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Lexes the next token.  After Eof, repeatedly returns Eof.  Invalid
  /// input yields a Token::Error carrying the offending text.
  Token next();

  /// Lexes the entire buffer.  The result always ends with an Eof token;
  /// an Error token (if any) terminates lexing early.
  std::vector<Token> lexAll();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  void advance();
  void skipTrivia();
  Token make(TokenKind K, size_t Begin) const;

  std::string_view Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  uint32_t TokLine = 1;
  uint32_t TokCol = 1;
};

} // namespace frontend
} // namespace dynsum

#endif // DYNSUM_FRONTEND_LEXER_H
