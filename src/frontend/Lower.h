//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering from the checked MiniJava AST to the mini pointer IR.
///
/// Lowering is pointer-only, the same projection Spark applies to Java
/// bytecode before building a PAG:
///  * control flow is flattened — the IR is flow-insensitive, so the
///    statements of both branches of an if (and of loop bodies) are
///    emitted unconditionally into the method's statement bag;
///  * arithmetic and boolean computation disappears; subexpressions are
///    still lowered so calls buried in them keep their effects;
///  * loads/stores of primitive-typed fields and array elements vanish
///    (they move no pointers);
///  * arrays collapse onto the single "arr" field of a synthesized
///    "T[]" class, exactly the paper's array model;
///  * "new C(...)" becomes an allocation plus a direct call to the
///    constructor "C.<init>" with the fresh object as receiver;
///  * virtual calls carry the method *name*; PAG construction expands
///    them through CHA dispatch;
///  * static fields become IR globals named "Class.field"; reads and
///    writes become (context-insensitive) global assignments;
///  * every null literal gets its own null pseudo-allocation site (the
///    NullDeref client's targets);
///  * every reference cast records a cast site (the SafeCast client
///    filters statically-safe upcasts itself).
///
/// Lowering is deterministic: identical source yields identical IR ids
/// statement for statement.  Ids are handed out in source order and are
/// append-only, which is what lets the delta PAG builder treat them as
/// stable node identities across later edits.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_FRONTEND_LOWER_H
#define DYNSUM_FRONTEND_LOWER_H

#include "frontend/Sema.h"
#include "ir/Program.h"

#include <memory>

namespace dynsum {
namespace frontend {

/// Lowers \p Unit (checked against \p Sema, which must be error-free)
/// into a fresh IR program.
std::unique_ptr<ir::Program> lowerUnit(const CompilationUnit &Unit,
                                       const SemaResult &Sema);

} // namespace frontend
} // namespace dynsum

#endif // DYNSUM_FRONTEND_LOWER_H
