//===----------------------------------------------------------------------===//
///
/// \file
/// AST pretty-printer (pseudo-source form used by tests and tools).
///
//===----------------------------------------------------------------------===//

#include "frontend/Ast.h"

#include "support/OStream.h"

#include <cassert>

using namespace dynsum;
using namespace dynsum::frontend;

std::string TypeRef::str() const {
  std::string Out;
  switch (Base) {
  case Class:
    Out = Name;
    break;
  case Int:
    Out = "int";
    break;
  case Boolean:
    Out = "boolean";
    break;
  case Void:
    Out = "void";
    break;
  }
  if (IsArray)
    Out += "[]";
  return Out;
}

namespace {

/// Indentation-tracking printer over an OStream.
class AstPrinter {
public:
  explicit AstPrinter(OStream &OS) : OS(OS) {}

  void print(const CompilationUnit &Unit) {
    for (const ClassDecl &Cls : Unit.Classes)
      printClass(Cls);
  }

private:
  void indent() { OS.writeRepeated(' ', Depth * 2); }

  void printClass(const ClassDecl &Cls);
  void printMethod(const MethodDecl &M);
  void printStmt(const Stmt &S);
  void printExpr(const Expr &E);

  OStream &OS;
  unsigned Depth = 0;
};

} // namespace

void AstPrinter::printClass(const ClassDecl &Cls) {
  OS << "class " << Cls.Name;
  if (!Cls.SuperName.empty())
    OS << " extends " << Cls.SuperName;
  OS << " {\n";
  ++Depth;
  for (const FieldDecl &F : Cls.Fields) {
    indent();
    if (F.IsStatic)
      OS << "static ";
    OS << F.Type.str() << ' ' << F.Name << ";\n";
  }
  for (const MethodDecl &M : Cls.Methods)
    printMethod(M);
  --Depth;
  OS << "}\n";
}

void AstPrinter::printMethod(const MethodDecl &M) {
  indent();
  if (M.IsStatic)
    OS << "static ";
  if (!M.IsCtor)
    OS << M.ReturnType.str() << ' ';
  OS << M.Name << '(';
  for (size_t I = 0; I < M.Params.size(); ++I) {
    if (I)
      OS << ", ";
    OS << M.Params[I].Type.str() << ' ' << M.Params[I].Name;
  }
  OS << ") ";
  printStmt(*M.Body);
}

void AstPrinter::printStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Block:
    OS << "{\n";
    ++Depth;
    for (const StmtPtr &Child : S.Body) {
      indent();
      printStmt(*Child);
    }
    --Depth;
    indent();
    OS << "}\n";
    return;
  case StmtKind::VarDecl:
    OS << S.DeclType.str() << ' ' << S.Text;
    if (S.Value) {
      OS << " = ";
      printExpr(*S.Value);
    }
    OS << ";\n";
    return;
  case StmtKind::Assign:
    printExpr(*S.Target);
    OS << " = ";
    printExpr(*S.Value);
    OS << ";\n";
    return;
  case StmtKind::ExprStmt:
    printExpr(*S.Value);
    OS << ";\n";
    return;
  case StmtKind::If:
    OS << "if (";
    printExpr(*S.Cond);
    OS << ") ";
    printStmt(*S.Then);
    if (S.Else) {
      indent();
      OS << "else ";
      printStmt(*S.Else);
    }
    return;
  case StmtKind::While:
    OS << "while (";
    printExpr(*S.Cond);
    OS << ") ";
    printStmt(*S.Then);
    return;
  case StmtKind::Return:
    OS << "return";
    if (S.Value) {
      OS << ' ';
      printExpr(*S.Value);
    }
    OS << ";\n";
    return;
  }
}

/// Spelling of binary/unary operator \p K.
static const char *opSpelling(TokenKind K) {
  switch (K) {
  case TokenKind::Plus:
    return "+";
  case TokenKind::Minus:
    return "-";
  case TokenKind::Star:
    return "*";
  case TokenKind::Slash:
    return "/";
  case TokenKind::Less:
    return "<";
  case TokenKind::Greater:
    return ">";
  case TokenKind::EqEq:
    return "==";
  case TokenKind::NotEq:
    return "!=";
  case TokenKind::AndAnd:
    return "&&";
  case TokenKind::OrOr:
    return "||";
  case TokenKind::Not:
    return "!";
  default:
    assert(false && "not an operator token");
    return "?";
  }
}

void AstPrinter::printExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    OS << E.IntValue;
    return;
  case ExprKind::BoolLit:
    OS << (E.BoolValue ? "true" : "false");
    return;
  case ExprKind::StringLit:
    OS << '"' << E.Text << '"';
    return;
  case ExprKind::NullLit:
    OS << "null";
    return;
  case ExprKind::This:
    OS << "this";
    return;
  case ExprKind::VarRef:
    OS << E.Text;
    return;
  case ExprKind::FieldAccess:
    printExpr(*E.Lhs);
    OS << '.' << E.Text;
    return;
  case ExprKind::ArrayIndex:
    printExpr(*E.Lhs);
    OS << '[';
    printExpr(*E.Rhs);
    OS << ']';
    return;
  case ExprKind::Call:
    if (E.Lhs) {
      printExpr(*E.Lhs);
      OS << '.';
    }
    OS << E.Text << '(';
    for (size_t I = 0; I < E.Args.size(); ++I) {
      if (I)
        OS << ", ";
      printExpr(*E.Args[I]);
    }
    OS << ')';
    return;
  case ExprKind::NewObject:
    OS << "new " << E.Type.Name << '(';
    for (size_t I = 0; I < E.Args.size(); ++I) {
      if (I)
        OS << ", ";
      printExpr(*E.Args[I]);
    }
    OS << ')';
    return;
  case ExprKind::NewArray: {
    TypeRef Elem = E.Type;
    Elem.IsArray = false;
    OS << "new " << Elem.str() << '[';
    printExpr(*E.Rhs);
    OS << ']';
    return;
  }
  case ExprKind::Cast:
    OS << '(' << E.Type.str() << ") ";
    printExpr(*E.Lhs);
    return;
  case ExprKind::Unary:
    OS << opSpelling(E.Op);
    printExpr(*E.Lhs);
    return;
  case ExprKind::Binary:
    OS << '(';
    printExpr(*E.Lhs);
    OS << ' ' << opSpelling(E.Op) << ' ';
    printExpr(*E.Rhs);
    OS << ')';
    return;
  }
}

void dynsum::frontend::dumpAst(const CompilationUnit &Unit, OStream &OS) {
  AstPrinter(OS).print(Unit);
}
