//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree of the MiniJava frontend.
///
/// The surface language is a small single-inheritance subset of Java:
/// classes with typed fields, constructors, static and instance methods,
/// block-structured statements (if/while/return/assignment/expression),
/// and expressions covering allocation, field and array access, calls,
/// casts and integer/boolean arithmetic.  Pointer-relevant constructs
/// lower onto the mini pointer IR; arithmetic type-checks but lowers to
/// nothing (the analyses are pointer-only, like the paper's PAG).
///
/// Expressions and statements are tagged structs (one struct per
/// category, the same pattern as ir::Statement) rather than class
/// hierarchies: the frontend is a producer pipeline with exactly three
/// consumers (sema, lowering, dump), so visitors would be noise.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_FRONTEND_AST_H
#define DYNSUM_FRONTEND_AST_H

#include "frontend/Token.h"

#include <memory>
#include <string>
#include <vector>

namespace dynsum {
class OStream;
} // namespace dynsum

namespace dynsum {
namespace frontend {

/// A syntactic type reference, before sema resolution.
struct TypeRef {
  enum BaseKind : uint8_t {
    Class,   ///< a class name (Name holds it)
    Int,     ///< primitive int
    Boolean, ///< primitive boolean
    Void,    ///< method return only
  };

  BaseKind Base = Class;
  std::string Name; ///< class name when Base == Class
  bool IsArray = false;
  SourceLoc Loc;

  bool isClass() const { return Base == Class && !IsArray; }
  bool isPrimitive() const { return (Base == Int || Base == Boolean) && !IsArray; }
  bool isVoid() const { return Base == Void; }

  /// "Vector", "int[]", "void" — for diagnostics.
  std::string str() const;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind : uint8_t {
  IntLit,      ///< 42                       (IntValue)
  BoolLit,     ///< true / false             (BoolValue)
  StringLit,   ///< "text"                   (Text, with quotes stripped)
  NullLit,     ///< null
  This,        ///< this
  VarRef,      ///< name                     (Text; may resolve to a class)
  FieldAccess, ///< Lhs.Text
  ArrayIndex,  ///< Lhs[Rhs]
  Call,        ///< [Lhs.]Text(Args)         (Lhs null for unqualified)
  NewObject,   ///< new Type(Args)
  NewArray,    ///< new Type[Rhs]
  Cast,        ///< (Type) Lhs
  Unary,       ///< Op Lhs                   (Op in {'!', '-'})
  Binary,      ///< Lhs Op Rhs               (arithmetic/logic/comparison)
};

/// Binary operator spelling, kept as the token kind that produced it.
/// All binaries operate on primitives except EqEq/NotEq, which also
/// compare references (type-checked, lowered to nothing).
struct Expr {
  ExprKind Kind = ExprKind::NullLit;
  SourceLoc Loc;

  ExprPtr Lhs; ///< base / operand / cast operand
  ExprPtr Rhs; ///< index / binary right operand / array size

  std::string Text;          ///< identifier, field, method or literal text
  int64_t IntValue = 0;      ///< IntLit
  bool BoolValue = false;    ///< BoolLit
  TokenKind Op = TokenKind::Eof; ///< Unary/Binary operator
  TypeRef Type;              ///< NewObject/NewArray/Cast type
  std::vector<ExprPtr> Args; ///< Call/NewObject arguments
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node kinds.
enum class StmtKind : uint8_t {
  VarDecl, ///< Type Text [= Value];
  Assign,  ///< Target = Value;              (Target: VarRef/Field/Index)
  ExprStmt,///< Value;                       (calls for effect)
  If,      ///< if (Cond) Then [else Else]
  While,   ///< while (Cond) Then
  Return,  ///< return [Value];
  Block,   ///< { Body... }
};

struct Stmt {
  StmtKind Kind = StmtKind::Block;
  SourceLoc Loc;

  TypeRef DeclType;          ///< VarDecl
  std::string Text;          ///< VarDecl name
  ExprPtr Target;            ///< Assign left-hand side
  ExprPtr Value;             ///< initializer / RHS / ExprStmt / Return
  ExprPtr Cond;              ///< If/While condition
  StmtPtr Then;              ///< If then-branch / While body
  StmtPtr Else;              ///< If else-branch
  std::vector<StmtPtr> Body; ///< Block statements
};

/// A formal parameter.
struct ParamDecl {
  TypeRef Type;
  std::string Name;
  SourceLoc Loc;
};

/// A method, constructor (Name == owning class name, IsCtor set) or
/// static method declaration.
struct MethodDecl {
  std::string Name;
  TypeRef ReturnType;
  std::vector<ParamDecl> Params;
  StmtPtr Body; ///< always a Block
  bool IsStatic = false;
  bool IsCtor = false;
  SourceLoc Loc;
};

/// A field declaration.  Static fields are program globals (accessed as
/// "ClassName.field"); they lower to the IR's context-insensitive global
/// variables, the source of assignglobal PAG edges.
struct FieldDecl {
  TypeRef Type;
  std::string Name;
  bool IsStatic = false;
  SourceLoc Loc;
};

/// A class declaration.
struct ClassDecl {
  std::string Name;
  std::string SuperName; ///< empty = extends Object
  std::vector<FieldDecl> Fields;
  std::vector<MethodDecl> Methods;
  SourceLoc Loc;
};

/// A parsed compilation unit.
struct CompilationUnit {
  std::vector<ClassDecl> Classes;
};

/// Pretty-prints \p Unit as indented pseudo-source (tests, debugging).
void dumpAst(const CompilationUnit &Unit, OStream &OS);

} // namespace frontend
} // namespace dynsum

#endif // DYNSUM_FRONTEND_AST_H
