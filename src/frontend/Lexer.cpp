//===----------------------------------------------------------------------===//
///
/// \file
/// MiniJava lexer implementation.
///
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cassert>
#include <cctype>

using namespace dynsum;
using namespace dynsum::frontend;

const char *dynsum::frontend::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::AndAnd:
    return "'&&'";
  case TokenKind::OrOr:
    return "'||'";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwExtends:
    return "'extends'";
  case TokenKind::KwStatic:
    return "'static'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBoolean:
    return "'boolean'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwThis:
    return "'this'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  }
  assert(false && "unknown token kind");
  return "?";
}

void Lexer::advance() {
  assert(Pos < Source.size() && "advancing past end of input");
  if (Source[Pos] == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  ++Pos;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = Source[Pos];
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && Source[Pos] != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (Pos < Source.size() &&
             !(Source[Pos] == '*' && peek(1) == '/'))
        advance();
      if (Pos < Source.size()) {
        advance();
        advance();
      }
      continue;
    }
    break;
  }
}

Token Lexer::make(TokenKind K, size_t Begin) const {
  Token T;
  T.Kind = K;
  T.Text = Source.substr(Begin, Pos - Begin);
  T.Loc = {TokLine, TokCol};
  return T;
}

/// Maps an identifier spelling to its keyword kind, or Identifier.
static TokenKind classifyWord(std::string_view Word) {
  if (Word == "class")
    return TokenKind::KwClass;
  if (Word == "extends")
    return TokenKind::KwExtends;
  if (Word == "static")
    return TokenKind::KwStatic;
  if (Word == "void")
    return TokenKind::KwVoid;
  if (Word == "int")
    return TokenKind::KwInt;
  if (Word == "boolean")
    return TokenKind::KwBoolean;
  if (Word == "if")
    return TokenKind::KwIf;
  if (Word == "else")
    return TokenKind::KwElse;
  if (Word == "while")
    return TokenKind::KwWhile;
  if (Word == "return")
    return TokenKind::KwReturn;
  if (Word == "new")
    return TokenKind::KwNew;
  if (Word == "null")
    return TokenKind::KwNull;
  if (Word == "this")
    return TokenKind::KwThis;
  if (Word == "true")
    return TokenKind::KwTrue;
  if (Word == "false")
    return TokenKind::KwFalse;
  return TokenKind::Identifier;
}

Token Lexer::next() {
  skipTrivia();
  TokLine = Line;
  TokCol = Col;
  size_t Begin = Pos;
  if (Pos >= Source.size())
    return make(TokenKind::Eof, Begin);

  char C = Source[Pos];
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$') {
    while (Pos < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(Source[Pos])) ||
            Source[Pos] == '_' || Source[Pos] == '$'))
      advance();
    Token T = make(TokenKind::Identifier, Begin);
    T.Kind = classifyWord(T.Text);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    while (Pos < Source.size() &&
           std::isdigit(static_cast<unsigned char>(Source[Pos])))
      advance();
    return make(TokenKind::IntLiteral, Begin);
  }

  if (C == '"') {
    advance();
    while (Pos < Source.size() && Source[Pos] != '"' && Source[Pos] != '\n') {
      if (Source[Pos] == '\\' && Pos + 1 < Source.size())
        advance(); // skip the escaped character as well
      advance();
    }
    if (Pos >= Source.size() || Source[Pos] != '"')
      return make(TokenKind::Error, Begin); // unterminated string
    advance();
    return make(TokenKind::StringLiteral, Begin);
  }

  advance();
  switch (C) {
  case '{':
    return make(TokenKind::LBrace, Begin);
  case '}':
    return make(TokenKind::RBrace, Begin);
  case '(':
    return make(TokenKind::LParen, Begin);
  case ')':
    return make(TokenKind::RParen, Begin);
  case '[':
    return make(TokenKind::LBracket, Begin);
  case ']':
    return make(TokenKind::RBracket, Begin);
  case ';':
    return make(TokenKind::Semicolon, Begin);
  case ',':
    return make(TokenKind::Comma, Begin);
  case '.':
    return make(TokenKind::Dot, Begin);
  case '+':
    return make(TokenKind::Plus, Begin);
  case '-':
    return make(TokenKind::Minus, Begin);
  case '*':
    return make(TokenKind::Star, Begin);
  case '/':
    return make(TokenKind::Slash, Begin);
  case '<':
    return make(TokenKind::Less, Begin);
  case '>':
    return make(TokenKind::Greater, Begin);
  case '=':
    if (peek() == '=') {
      advance();
      return make(TokenKind::EqEq, Begin);
    }
    return make(TokenKind::Assign, Begin);
  case '!':
    if (peek() == '=') {
      advance();
      return make(TokenKind::NotEq, Begin);
    }
    return make(TokenKind::Not, Begin);
  case '&':
    if (peek() == '&') {
      advance();
      return make(TokenKind::AndAnd, Begin);
    }
    return make(TokenKind::Error, Begin);
  case '|':
    if (peek() == '|') {
      advance();
      return make(TokenKind::OrOr, Begin);
    }
    return make(TokenKind::Error, Begin);
  default:
    return make(TokenKind::Error, Begin);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = next();
    Tokens.push_back(T);
    if (T.is(TokenKind::Eof) || T.is(TokenKind::Error))
      break;
  }
  if (Tokens.back().is(TokenKind::Error)) {
    Token Eof;
    Eof.Kind = TokenKind::Eof;
    Eof.Loc = Tokens.back().Loc;
    Tokens.push_back(Eof);
  }
  return Tokens;
}
