//===----------------------------------------------------------------------===//
///
/// \file
/// MiniJava semantic analysis implementation.
///
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include <cassert>

using namespace dynsum;
using namespace dynsum::frontend;

static constexpr uint32_t Absent = ~0u;

//===----------------------------------------------------------------------===//
// SemaResult queries
//===----------------------------------------------------------------------===//

uint32_t SemaResult::classIdx(std::string_view Name) const {
  if (ClassIdxCache.empty())
    for (uint32_t I = 0; I < Classes.size(); ++I)
      ClassIdxCache.emplace(Classes[I].Name, I);
  auto It = ClassIdxCache.find(std::string(Name));
  return It == ClassIdxCache.end() ? Absent : It->second;
}

const FieldInfo *SemaResult::findField(uint32_t ClassIdx,
                                       std::string_view Name) const {
  for (uint32_t C = ClassIdx; C != Absent; C = Classes[C].SuperIdx)
    for (const FieldInfo &F : Classes[C].Fields)
      if (F.Name == Name)
        return &F;
  return nullptr;
}

std::pair<uint32_t, uint32_t>
SemaResult::findStaticField(uint32_t ClassIdx, std::string_view Name) const {
  for (uint32_t C = ClassIdx; C != Absent; C = Classes[C].SuperIdx)
    for (uint32_t I = 0; I < Classes[C].StaticFields.size(); ++I)
      if (Classes[C].StaticFields[I].Name == Name)
        return {C, I};
  return {Absent, Absent};
}

uint32_t SemaResult::findMethod(uint32_t ClassIdx,
                                std::string_view Name) const {
  for (uint32_t C = ClassIdx; C != Absent; C = Classes[C].SuperIdx)
    for (uint32_t M : Classes[C].Methods)
      if (!Methods[M].IsCtor && Methods[M].Name == Name)
        return M;
  return Absent;
}

uint32_t SemaResult::findCtor(uint32_t ClassIdx) const {
  for (uint32_t M : Classes[ClassIdx].Methods)
    if (Methods[M].IsCtor)
      return M;
  return Absent;
}

bool SemaResult::isSubclass(uint32_t Sub, uint32_t Super) const {
  for (uint32_t C = Sub; C != Absent; C = Classes[C].SuperIdx)
    if (C == Super)
      return true;
  return false;
}

TypeDesc SemaResult::typeOf(const Expr *E) const {
  auto It = ExprTypes.find(E);
  return It == ExprTypes.end() ? TypeDesc::invalidTy() : It->second;
}

std::string SemaResult::typeName(const TypeDesc &T) const {
  switch (T.K) {
  case TypeDesc::Invalid:
    return "<error>";
  case TypeDesc::Void:
    return "void";
  case TypeDesc::Int:
    return "int";
  case TypeDesc::Boolean:
    return "boolean";
  case TypeDesc::Null:
    return "null";
  case TypeDesc::Class:
    return Classes[T.ClassIdx].Name;
  case TypeDesc::Array: {
    TypeDesc Elem;
    Elem.K = T.Elem;
    Elem.ClassIdx = T.ElemClassIdx;
    return typeName(Elem) + "[]";
  }
  }
  assert(false && "unknown TypeDesc kind");
  return "?";
}

//===----------------------------------------------------------------------===//
// The analyzer
//===----------------------------------------------------------------------===//

namespace {

/// Walks the unit twice: first to build the class/member tables, then to
/// type-check every method body under a scope stack.
class Analyzer {
public:
  Analyzer(const CompilationUnit &Unit, DiagnosticEngine &Diags)
      : Unit(Unit), Diags(Diags) {}

  SemaResult run();

private:
  //===------------------------------------------------------------------===//
  // Phase 1: declarations
  //===------------------------------------------------------------------===//

  void buildClassTable();
  void buildMemberTables();
  void checkFieldHiding();
  void checkOverrides();

  /// Resolves a syntactic type reference; Invalid (with a diagnostic)
  /// when the named class does not exist.
  TypeDesc resolveType(const TypeRef &T);

  //===------------------------------------------------------------------===//
  // Phase 2: bodies
  //===------------------------------------------------------------------===//

  void checkBodies();
  void checkMethodBody(uint32_t MethodIdx);
  void checkStmt(const Stmt &S);
  TypeDesc checkExpr(const Expr &E);
  TypeDesc checkCall(const Expr &E);
  TypeDesc checkNewObject(const Expr &E);

  /// When \p Base is a bare identifier that names a class rather than a
  /// variable in scope, records it as a static qualifier and returns the
  /// class index; Absent otherwise.  Callers use this *instead of*
  /// checkExpr on the base so a qualifier is never judged as a value.
  uint32_t classQualifier(const Expr &Base);

  /// Records and returns \p T as the type of \p E.
  TypeDesc setType(const Expr &E, TypeDesc T) {
    Result.ExprTypes[&E] = T;
    return T;
  }

  /// True when a value of type \p Src may be assigned to \p Dst.
  bool assignable(const TypeDesc &Src, const TypeDesc &Dst) const;

  /// Reports "cannot assign X to Y" style errors unless either side is
  /// already invalid (avoid cascades).
  void checkAssignable(const TypeDesc &Src, const TypeDesc &Dst,
                       SourceLoc Loc, const char *What);

  void error(SourceLoc Loc, std::string Message) {
    Diags.report(Loc, std::move(Message));
  }

  //===------------------------------------------------------------------===//
  // Scopes
  //===------------------------------------------------------------------===//

  struct ScopedVar {
    std::string Name;
    TypeDesc Type;
  };

  void pushScope() { ScopeBounds.push_back(Scope.size()); }
  void popScope() {
    Scope.resize(ScopeBounds.back());
    ScopeBounds.pop_back();
  }

  /// Innermost declaration of \p Name; null when unbound.
  const ScopedVar *lookupVar(std::string_view Name) const {
    for (size_t I = Scope.size(); I > 0; --I)
      if (Scope[I - 1].Name == Name)
        return &Scope[I - 1];
    return nullptr;
  }

  /// True when \p Name is already bound in the current (innermost) scope.
  bool boundInCurrentScope(std::string_view Name) const {
    for (size_t I = ScopeBounds.back(); I < Scope.size(); ++I)
      if (Scope[I].Name == Name)
        return true;
    return false;
  }

  const CompilationUnit &Unit;
  DiagnosticEngine &Diags;
  SemaResult Result;

  // Body-checking state.
  const MethodInfo *CurMethod = nullptr;
  std::vector<ScopedVar> Scope;
  std::vector<size_t> ScopeBounds;
};

} // namespace

//===----------------------------------------------------------------------===//
// Phase 1: declaration tables
//===----------------------------------------------------------------------===//

void Analyzer::buildClassTable() {
  // The implicit root.  All class insertions (including the built-in
  // String appended by run()) happen before the first classIdx() call so
  // the lazily built name cache in SemaResult stays consistent.
  ClassInfo Object;
  Object.Name = "Object";
  Result.Classes.push_back(std::move(Object));

  std::unordered_map<std::string, uint32_t> Seen;
  Seen.emplace("Object", 0);
  for (const ClassDecl &Cls : Unit.Classes) {
    if (Cls.Name == "Object") {
      error(Cls.Loc, "class name 'Object' is reserved for the built-in root");
      continue;
    }
    if (!Seen.emplace(Cls.Name, uint32_t(Result.Classes.size())).second) {
      error(Cls.Loc, "duplicate class '" + Cls.Name + "'");
      continue;
    }
    ClassInfo Info;
    Info.Name = Cls.Name;
    Info.Decl = &Cls;
    Result.Classes.push_back(std::move(Info));
  }
}

void Analyzer::buildMemberTables() {
  // Resolve superclasses.
  for (ClassInfo &Info : Result.Classes) {
    if (!Info.Decl) {
      // Built-in Object (and String, added later) have no declaration.
      continue;
    }
    const ClassDecl &Cls = *Info.Decl;
    if (Cls.SuperName.empty()) {
      Info.SuperIdx = 0;
      continue;
    }
    uint32_t Super = Result.classIdx(Cls.SuperName);
    if (Super == Absent) {
      error(Cls.Loc, "unknown superclass '" + Cls.SuperName + "' of '" +
                         Cls.Name + "'");
      Info.SuperIdx = 0;
      continue;
    }
    Info.SuperIdx = Super;
  }

  // Detect inheritance cycles: walk each chain with a step bound.
  for (uint32_t I = 1; I < Result.Classes.size(); ++I) {
    uint32_t Steps = 0;
    for (uint32_t C = I; C != Absent; C = Result.Classes[C].SuperIdx) {
      if (++Steps > Result.Classes.size()) {
        error(Result.Classes[I].Decl ? Result.Classes[I].Decl->Loc
                                     : SourceLoc{},
              "inheritance cycle involving class '" + Result.Classes[I].Name +
                  "'");
        Result.Classes[I].SuperIdx = 0; // break the cycle for recovery
        break;
      }
    }
  }

  // Fields and methods.
  for (uint32_t I = 1; I < Result.Classes.size(); ++I) {
    ClassInfo &Info = Result.Classes[I];
    if (!Info.Decl)
      continue;
    const ClassDecl &Cls = *Info.Decl;

    for (const FieldDecl &F : Cls.Fields) {
      std::vector<FieldInfo> &Bucket =
          F.IsStatic ? Info.StaticFields : Info.Fields;
      bool Duplicate = false;
      for (const FieldInfo &Existing : Bucket)
        if (Existing.Name == F.Name) {
          error(F.Loc, "duplicate field '" + F.Name + "' in class '" +
                           Cls.Name + "'");
          Duplicate = true;
          break;
        }
      if (Duplicate)
        continue;
      FieldInfo FI;
      FI.Name = F.Name;
      FI.Type = resolveType(F.Type);
      FI.Loc = F.Loc;
      Bucket.push_back(std::move(FI));
    }

    for (const MethodDecl &M : Cls.Methods) {
      bool Duplicate = false;
      for (uint32_t Existing : Info.Methods) {
        const MethodInfo &EM = Result.Methods[Existing];
        if (EM.Name == M.Name && EM.IsCtor == M.IsCtor) {
          error(M.Loc, M.IsCtor
                           ? "duplicate constructor in class '" + Cls.Name + "'"
                           : "duplicate method '" + M.Name + "' in class '" +
                                 Cls.Name + "' (overloading is not supported)");
          Duplicate = true;
          break;
        }
      }
      if (Duplicate)
        continue;
      MethodInfo MI;
      MI.Name = M.Name;
      MI.ClassIdx = I;
      MI.ReturnType = M.IsCtor ? TypeDesc::voidTy() : resolveType(M.ReturnType);
      MI.IsStatic = M.IsStatic;
      MI.IsCtor = M.IsCtor;
      MI.Decl = &M;
      for (const ParamDecl &P : M.Params) {
        for (const std::string &Prev : MI.ParamNames)
          if (Prev == P.Name)
            error(P.Loc, "duplicate parameter '" + P.Name + "'");
        MI.ParamTypes.push_back(resolveType(P.Type));
        MI.ParamNames.push_back(P.Name);
      }
      Info.Methods.push_back(uint32_t(Result.Methods.size()));
      Result.Methods.push_back(std::move(MI));
    }
  }
}

void Analyzer::checkFieldHiding() {
  // Runs after every class's fields exist (class order is arbitrary, so
  // this cannot fold into buildMemberTables' main loop).
  for (const ClassInfo &Info : Result.Classes) {
    if (Info.SuperIdx == Absent)
      continue;
    for (const FieldInfo &F : Info.Fields)
      if (Result.findField(Info.SuperIdx, F.Name))
        error(F.Loc, "field '" + F.Name + "' in class '" + Info.Name +
                         "' hides an inherited field (the IR's "
                         "name-keyed fields cannot distinguish them)");
  }
}

void Analyzer::checkOverrides() {
  for (const MethodInfo &M : Result.Methods) {
    if (M.IsCtor)
      continue;
    uint32_t Super = Result.Classes[M.ClassIdx].SuperIdx;
    if (Super == Absent)
      continue;
    uint32_t Overridden = Result.findMethod(Super, M.Name);
    if (Overridden == Absent)
      continue;
    const MethodInfo &O = Result.Methods[Overridden];
    SourceLoc Loc = M.Decl ? M.Decl->Loc : SourceLoc{};
    if (M.IsStatic != O.IsStatic) {
      error(Loc, "method '" + M.Name + "' in class '" +
                     Result.Classes[M.ClassIdx].Name +
                     "' conflicts with an inherited " +
                     (O.IsStatic ? "static" : "instance") + " method");
      continue;
    }
    if (M.IsStatic)
      continue; // static methods simply hide; no dispatch involved
    bool SignatureMatches = M.ParamTypes.size() == O.ParamTypes.size() &&
                            M.ReturnType == O.ReturnType;
    for (size_t I = 0; SignatureMatches && I < M.ParamTypes.size(); ++I)
      SignatureMatches = M.ParamTypes[I] == O.ParamTypes[I];
    if (!SignatureMatches)
      error(Loc, "override of '" + Result.Classes[O.ClassIdx].Name + "." +
                     O.Name + "' must repeat its exact signature");
  }
}

TypeDesc Analyzer::resolveType(const TypeRef &T) {
  TypeDesc Base;
  switch (T.Base) {
  case TypeRef::Int:
    Base = TypeDesc::intTy();
    break;
  case TypeRef::Boolean:
    Base = TypeDesc::boolTy();
    break;
  case TypeRef::Void:
    assert(!T.IsArray && "parser rejects void arrays");
    return TypeDesc::voidTy();
  case TypeRef::Class: {
    uint32_t Idx = Result.classIdx(T.Name);
    if (Idx == Absent) {
      error(T.Loc, "unknown type '" + T.Name + "'");
      return TypeDesc::invalidTy();
    }
    Base = TypeDesc::classTy(Idx);
    break;
  }
  }
  if (!T.IsArray)
    return Base;
  return TypeDesc::arrayOf(Base.K, Base.ClassIdx);
}

//===----------------------------------------------------------------------===//
// Phase 2: bodies
//===----------------------------------------------------------------------===//

bool Analyzer::assignable(const TypeDesc &Src, const TypeDesc &Dst) const {
  if (Src.isInvalid() || Dst.isInvalid())
    return true; // error recovery: stay quiet after the first message
  if (Src == Dst)
    return true;
  if (Src.K == TypeDesc::Null)
    return Dst.K == TypeDesc::Class || Dst.K == TypeDesc::Array;
  if (Src.K == TypeDesc::Class && Dst.K == TypeDesc::Class)
    return Result.isSubclass(Src.ClassIdx, Dst.ClassIdx);
  if (Src.K == TypeDesc::Array && Dst.K == TypeDesc::Class)
    return Dst.ClassIdx == 0; // any array is an Object
  return false;
}

void Analyzer::checkAssignable(const TypeDesc &Src, const TypeDesc &Dst,
                               SourceLoc Loc, const char *What) {
  if (assignable(Src, Dst))
    return;
  error(Loc, std::string("cannot use ") + Result.typeName(Src) + " as " +
                 Result.typeName(Dst) + " in " + What);
}

void Analyzer::checkBodies() {
  for (uint32_t M = 0; M < Result.Methods.size(); ++M)
    checkMethodBody(M);
}

void Analyzer::checkMethodBody(uint32_t MethodIdx) {
  const MethodInfo &M = Result.Methods[MethodIdx];
  if (!M.Decl || !M.Decl->Body)
    return;
  CurMethod = &M;
  Scope.clear();
  ScopeBounds.clear();
  pushScope();
  for (size_t I = 0; I < M.ParamNames.size(); ++I)
    Scope.push_back({M.ParamNames[I], M.ParamTypes[I]});
  checkStmt(*M.Decl->Body);
  popScope();
  CurMethod = nullptr;
}

void Analyzer::checkStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Block:
    pushScope();
    for (const StmtPtr &Child : S.Body)
      checkStmt(*Child);
    popScope();
    return;

  case StmtKind::VarDecl: {
    TypeDesc T = resolveType(S.DeclType);
    if (T.K == TypeDesc::Void) {
      error(S.Loc, "variables may not have type void");
      T = TypeDesc::invalidTy();
    }
    if (boundInCurrentScope(S.Text))
      error(S.Loc, "redeclaration of '" + S.Text + "' in the same scope");
    if (S.Value) {
      TypeDesc Init = checkExpr(*S.Value);
      checkAssignable(Init, T, S.Loc, "initialization");
    }
    Scope.push_back({S.Text, T});
    return;
  }

  case StmtKind::Assign: {
    TypeDesc Target = checkExpr(*S.Target);
    if (S.Target->Kind == ExprKind::FieldAccess &&
        Result.LengthReads.count(S.Target.get()))
      error(S.Target->Loc, "array length is read-only");
    TypeDesc Value = checkExpr(*S.Value);
    checkAssignable(Value, Target, S.Loc, "assignment");
    return;
  }

  case StmtKind::ExprStmt:
    checkExpr(*S.Value);
    return;

  case StmtKind::If:
  case StmtKind::While: {
    TypeDesc Cond = checkExpr(*S.Cond);
    if (!Cond.isInvalid() && Cond.K != TypeDesc::Boolean)
      error(S.Cond->Loc, "condition must be boolean, got " +
                             Result.typeName(Cond));
    checkStmt(*S.Then);
    if (S.Else)
      checkStmt(*S.Else);
    return;
  }

  case StmtKind::Return: {
    assert(CurMethod && "return outside a method body");
    const TypeDesc &Expected = CurMethod->ReturnType;
    if (!S.Value) {
      if (Expected.K != TypeDesc::Void && !Expected.isInvalid())
        error(S.Loc, "non-void method must return a value");
      return;
    }
    if (Expected.K == TypeDesc::Void) {
      error(S.Loc, CurMethod->IsCtor
                       ? "constructors may not return a value"
                       : "void method may not return a value");
      checkExpr(*S.Value);
      return;
    }
    TypeDesc Got = checkExpr(*S.Value);
    checkAssignable(Got, Expected, S.Loc, "return");
    return;
  }
  }
}

TypeDesc Analyzer::checkExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return setType(E, TypeDesc::intTy());
  case ExprKind::BoolLit:
    return setType(E, TypeDesc::boolTy());
  case ExprKind::NullLit:
    return setType(E, TypeDesc::nullTy());

  case ExprKind::StringLit: {
    uint32_t StringIdx = Result.classIdx("String");
    assert(StringIdx != Absent && "String is registered before body checks");
    return setType(E, TypeDesc::classTy(StringIdx));
  }

  case ExprKind::This:
    if (!CurMethod || CurMethod->IsStatic) {
      error(E.Loc, "'this' is only available in instance methods");
      return setType(E, TypeDesc::invalidTy());
    }
    return setType(E, TypeDesc::classTy(CurMethod->ClassIdx));

  case ExprKind::VarRef: {
    if (const ScopedVar *V = lookupVar(E.Text))
      return setType(E, V->Type);
    // Class names are valid only as static-call/field qualifiers, which
    // checkCall and the FieldAccess case consume via classQualifier()
    // before ever type-checking the base as a value.
    error(E.Loc, Result.classIdx(E.Text) != Absent
                     ? "class name '" + E.Text + "' used as a value"
                     : "use of undeclared variable '" + E.Text + "'");
    return setType(E, TypeDesc::invalidTy());
  }

  case ExprKind::FieldAccess: {
    if (uint32_t Qual = classQualifier(*E.Lhs); Qual != Absent) {
      // "ClassName.field": a static field (a program global).
      auto [DeclClass, FieldIdx] = Result.findStaticField(Qual, E.Text);
      if (DeclClass == Absent) {
        error(E.Loc, "class '" + Result.Classes[Qual].Name +
                         "' has no static field '" + E.Text + "'");
        return setType(E, TypeDesc::invalidTy());
      }
      Result.StaticFieldRefs[&E] = {DeclClass, FieldIdx};
      return setType(E, Result.Classes[DeclClass].StaticFields[FieldIdx].Type);
    }
    TypeDesc Base = checkExpr(*E.Lhs);
    if (Base.K == TypeDesc::Array) {
      if (E.Text == "length") {
        Result.LengthReads[&E] = true;
        return setType(E, TypeDesc::intTy());
      }
      error(E.Loc, "arrays have no field '" + E.Text + "'");
      return setType(E, TypeDesc::invalidTy());
    }
    if (Base.K != TypeDesc::Class) {
      if (!Base.isInvalid())
        error(E.Loc, "field access on non-object type " +
                         Result.typeName(Base));
      return setType(E, TypeDesc::invalidTy());
    }
    const FieldInfo *F = Result.findField(Base.ClassIdx, E.Text);
    if (!F) {
      error(E.Loc, "class '" + Result.Classes[Base.ClassIdx].Name +
                       "' has no field '" + E.Text + "'");
      return setType(E, TypeDesc::invalidTy());
    }
    return setType(E, F->Type);
  }

  case ExprKind::ArrayIndex: {
    TypeDesc Base = checkExpr(*E.Lhs);
    TypeDesc Index = checkExpr(*E.Rhs);
    if (!Index.isInvalid() && Index.K != TypeDesc::Int)
      error(E.Rhs->Loc, "array index must be int");
    if (Base.K != TypeDesc::Array) {
      if (!Base.isInvalid())
        error(E.Loc, "indexing non-array type " + Result.typeName(Base));
      return setType(E, TypeDesc::invalidTy());
    }
    TypeDesc Elem;
    Elem.K = Base.Elem;
    Elem.ClassIdx = Base.ElemClassIdx;
    return setType(E, Elem);
  }

  case ExprKind::Call:
    return checkCall(E);
  case ExprKind::NewObject:
    return checkNewObject(E);

  case ExprKind::NewArray: {
    TypeDesc Size = checkExpr(*E.Rhs);
    if (!Size.isInvalid() && Size.K != TypeDesc::Int)
      error(E.Rhs->Loc, "array size must be int");
    TypeRef Elem = E.Type;
    Elem.IsArray = false;
    TypeDesc ElemTy = resolveType(Elem);
    if (ElemTy.isInvalid())
      return setType(E, TypeDesc::invalidTy());
    return setType(E, TypeDesc::arrayOf(ElemTy.K, ElemTy.ClassIdx));
  }

  case ExprKind::Cast: {
    TypeDesc Target = resolveType(E.Type);
    TypeDesc Operand = checkExpr(*E.Lhs);
    if (!Target.isInvalid() && !Target.isPointer())
      error(E.Loc, "casts exist only between reference types");
    if (!Operand.isInvalid() && !Operand.isPointer())
      error(E.Loc, "cannot cast non-reference type " +
                       Result.typeName(Operand));
    return setType(E, Target);
  }

  case ExprKind::Unary: {
    TypeDesc Operand = checkExpr(*E.Lhs);
    TypeDesc Expected =
        E.Op == TokenKind::Not ? TypeDesc::boolTy() : TypeDesc::intTy();
    if (!Operand.isInvalid() && !(Operand == Expected))
      error(E.Loc, std::string("operand of ") +
                       (E.Op == TokenKind::Not ? "'!'" : "unary '-'") +
                       " must be " + Result.typeName(Expected));
    return setType(E, Expected);
  }

  case ExprKind::Binary: {
    TypeDesc L = checkExpr(*E.Lhs);
    TypeDesc R = checkExpr(*E.Rhs);
    switch (E.Op) {
    case TokenKind::EqEq:
    case TokenKind::NotEq: {
      bool BothRefs = L.isPointer() && R.isPointer();
      bool SamePrim = L == R && (L.K == TypeDesc::Int ||
                                 L.K == TypeDesc::Boolean);
      if (!L.isInvalid() && !R.isInvalid() && !BothRefs && !SamePrim)
        error(E.Loc, "'=='/'!=' compare two references or two values of "
                     "the same primitive type");
      return setType(E, TypeDesc::boolTy());
    }
    case TokenKind::AndAnd:
    case TokenKind::OrOr:
      if (!L.isInvalid() && L.K != TypeDesc::Boolean)
        error(E.Lhs->Loc, "logical operand must be boolean");
      if (!R.isInvalid() && R.K != TypeDesc::Boolean)
        error(E.Rhs->Loc, "logical operand must be boolean");
      return setType(E, TypeDesc::boolTy());
    case TokenKind::Less:
    case TokenKind::Greater:
      if (!L.isInvalid() && L.K != TypeDesc::Int)
        error(E.Lhs->Loc, "comparison operand must be int");
      if (!R.isInvalid() && R.K != TypeDesc::Int)
        error(E.Rhs->Loc, "comparison operand must be int");
      return setType(E, TypeDesc::boolTy());
    default:
      if (!L.isInvalid() && L.K != TypeDesc::Int)
        error(E.Lhs->Loc, "arithmetic operand must be int");
      if (!R.isInvalid() && R.K != TypeDesc::Int)
        error(E.Rhs->Loc, "arithmetic operand must be int");
      return setType(E, TypeDesc::intTy());
    }
  }
  }
  assert(false && "unknown expression kind");
  return TypeDesc::invalidTy();
}

uint32_t Analyzer::classQualifier(const Expr &Base) {
  if (Base.Kind != ExprKind::VarRef || lookupVar(Base.Text))
    return Absent;
  uint32_t Cls = Result.classIdx(Base.Text);
  if (Cls == Absent)
    return Absent;
  Result.ClassRefs[&Base] = Cls;
  setType(Base, TypeDesc::invalidTy());
  return Cls;
}

TypeDesc Analyzer::checkCall(const Expr &E) {
  CallInfo Info;
  uint32_t MethodIdx = Absent;

  if (!E.Lhs) {
    // Unqualified call: a method of the enclosing class.
    assert(CurMethod && "call outside a method body");
    MethodIdx = Result.findMethod(CurMethod->ClassIdx, E.Text);
    if (MethodIdx == Absent) {
      error(E.Loc, "no method '" + E.Text + "' in class '" +
                       Result.Classes[CurMethod->ClassIdx].Name +
                       "' or its superclasses");
      return setType(E, TypeDesc::invalidTy());
    }
    const MethodInfo &M = Result.Methods[MethodIdx];
    if (M.IsStatic) {
      Info.K = CallInfo::Static;
    } else {
      if (CurMethod->IsStatic) {
        error(E.Loc, "cannot call instance method '" + E.Text +
                         "' from a static method");
        return setType(E, TypeDesc::invalidTy());
      }
      Info.K = CallInfo::Virtual;
      Info.ImplicitThis = true;
    }
  } else {
    if (uint32_t Qual = classQualifier(*E.Lhs); Qual != Absent) {
      // "ClassName.m(...)": a static call.
      MethodIdx = Result.findMethod(Qual, E.Text);
      if (MethodIdx == Absent || !Result.Methods[MethodIdx].IsStatic) {
        error(E.Loc, "class '" + Result.Classes[Qual].Name +
                         "' has no static method '" + E.Text + "'");
        return setType(E, TypeDesc::invalidTy());
      }
      Info.K = CallInfo::Static;
    } else {
      TypeDesc Base = checkExpr(*E.Lhs);
      if (Base.K != TypeDesc::Class) {
        if (!Base.isInvalid())
          error(E.Loc, "method call on non-object type " +
                           Result.typeName(Base));
        return setType(E, TypeDesc::invalidTy());
      }
      MethodIdx = Result.findMethod(Base.ClassIdx, E.Text);
      if (MethodIdx == Absent) {
        error(E.Loc, "class '" + Result.Classes[Base.ClassIdx].Name +
                         "' has no method '" + E.Text + "'");
        return setType(E, TypeDesc::invalidTy());
      }
      if (Result.Methods[MethodIdx].IsStatic) {
        error(E.Loc, "static method '" + E.Text +
                         "' must be called through its class name");
        return setType(E, TypeDesc::invalidTy());
      }
      Info.K = CallInfo::Virtual;
    }
  }

  const MethodInfo &M = Result.Methods[MethodIdx];
  if (E.Args.size() != M.ParamTypes.size()) {
    error(E.Loc, "call to '" + M.Name + "' passes " +
                     std::to_string(E.Args.size()) + " arguments, expected " +
                     std::to_string(M.ParamTypes.size()));
    for (const ExprPtr &Arg : E.Args)
      checkExpr(*Arg);
    return setType(E, M.ReturnType);
  }
  for (size_t I = 0; I < E.Args.size(); ++I) {
    TypeDesc Got = checkExpr(*E.Args[I]);
    checkAssignable(Got, M.ParamTypes[I], E.Args[I]->Loc, "argument passing");
  }

  Info.MethodIdx = MethodIdx;
  Result.Calls[&E] = Info;
  return setType(E, M.ReturnType);
}

TypeDesc Analyzer::checkNewObject(const Expr &E) {
  uint32_t Cls = Result.classIdx(E.Type.Name);
  if (Cls == Absent) {
    error(E.Loc, "unknown class '" + E.Type.Name + "'");
    for (const ExprPtr &Arg : E.Args)
      checkExpr(*Arg);
    return setType(E, TypeDesc::invalidTy());
  }

  uint32_t Ctor = Result.findCtor(Cls);
  if (Ctor == Absent) {
    if (!E.Args.empty())
      error(E.Loc, "class '" + Result.Classes[Cls].Name +
                       "' has no constructor but arguments were passed");
    for (const ExprPtr &Arg : E.Args)
      checkExpr(*Arg);
    return setType(E, TypeDesc::classTy(Cls));
  }

  const MethodInfo &M = Result.Methods[Ctor];
  if (E.Args.size() != M.ParamTypes.size()) {
    error(E.Loc, "constructor of '" + Result.Classes[Cls].Name + "' takes " +
                     std::to_string(M.ParamTypes.size()) + " arguments, got " +
                     std::to_string(E.Args.size()));
    for (const ExprPtr &Arg : E.Args)
      checkExpr(*Arg);
  } else {
    for (size_t I = 0; I < E.Args.size(); ++I) {
      TypeDesc Got = checkExpr(*E.Args[I]);
      checkAssignable(Got, M.ParamTypes[I], E.Args[I]->Loc,
                      "argument passing");
    }
  }

  CallInfo Info;
  Info.K = CallInfo::Ctor;
  Info.MethodIdx = Ctor;
  Result.Calls[&E] = Info;
  return setType(E, TypeDesc::classTy(Cls));
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

SemaResult Analyzer::run() {
  buildClassTable();
  // Built-in String unless the program declares its own.
  bool HasString = false;
  for (const ClassInfo &C : Result.Classes)
    if (C.Name == "String")
      HasString = true;
  if (!HasString) {
    ClassInfo Str;
    Str.Name = "String";
    Str.SuperIdx = 0;
    Result.Classes.push_back(std::move(Str));
  }
  buildMemberTables();
  checkFieldHiding();
  checkOverrides();
  checkBodies();
  return std::move(Result);
}

SemaResult dynsum::frontend::analyzeUnit(const CompilationUnit &Unit,
                                         DiagnosticEngine &Diags) {
  Analyzer A(Unit, Diags);
  return A.run();
}
