//===----------------------------------------------------------------------===//
///
/// \file
/// MiniJava recursive-descent parser implementation.
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

#include <cassert>
#include <cstdlib>

using namespace dynsum;
using namespace dynsum::frontend;

namespace {

/// The parser state: a token cursor plus diagnostics.  Recovery is by
/// synchronizing to ';' or '}' after an error so one typo does not
/// cascade into hundreds of messages.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  CompilationUnit parseUnit();

private:
  //===------------------------------------------------------------------===//
  // Token cursor
  //===------------------------------------------------------------------===//

  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokenKind K) const { return cur().is(K); }

  Token take() {
    Token T = cur();
    if (!T.is(TokenKind::Eof))
      ++Pos;
    return T;
  }

  bool accept(TokenKind K) {
    if (!at(K))
      return false;
    take();
    return true;
  }

  /// Consumes a token of kind \p K or reports "\p What expected".
  Token expect(TokenKind K, const char *What) {
    if (at(K))
      return take();
    error(cur().Loc, std::string("expected ") + What + " before " +
                         tokenKindName(cur().Kind));
    return cur();
  }

  void error(SourceLoc Loc, std::string Message) {
    Diags.report(Loc, std::move(Message));
  }

  /// Skips ahead to the next ';' (consumed) or '}' / EOF (left in
  /// place), the statement-level recovery point.
  void synchronizeStmt() {
    while (!at(TokenKind::Eof)) {
      if (accept(TokenKind::Semicolon))
        return;
      if (at(TokenKind::RBrace))
        return;
      take();
    }
  }

  //===------------------------------------------------------------------===//
  // Grammar productions
  //===------------------------------------------------------------------===//

  ClassDecl parseClass();
  void parseMember(ClassDecl &Cls);
  TypeRef parseType();
  std::vector<ParamDecl> parseParams();
  StmtPtr parseBlock();
  StmtPtr parseStmt();
  ExprPtr parseExpr();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgs();

  /// True when the cursor sits at the start of a type usable in a
  /// declaration statement: "int"/"boolean", "ID ID", or "ID [ ] ID".
  bool atDeclStart() const;

  /// True when \p K may begin a unary expression (cast lookahead).
  static bool startsUnary(TokenKind K);

  std::vector<Token> Tokens;
  size_t Pos = 0;
  DiagnosticEngine &Diags;
};

} // namespace

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

static ExprPtr makeExpr(ExprKind K, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = K;
  E->Loc = Loc;
  return E;
}

static StmtPtr makeStmt(StmtKind K, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = K;
  S->Loc = Loc;
  return S;
}

bool Parser::startsUnary(TokenKind K) {
  switch (K) {
  case TokenKind::Identifier:
  case TokenKind::IntLiteral:
  case TokenKind::StringLiteral:
  case TokenKind::KwTrue:
  case TokenKind::KwFalse:
  case TokenKind::KwNull:
  case TokenKind::KwThis:
  case TokenKind::KwNew:
  case TokenKind::LParen:
  case TokenKind::Not:
  case TokenKind::Minus:
    return true;
  default:
    return false;
  }
}

bool Parser::atDeclStart() const {
  if (at(TokenKind::KwInt) || at(TokenKind::KwBoolean))
    return true;
  if (!at(TokenKind::Identifier))
    return false;
  if (peek().is(TokenKind::Identifier))
    return true; // "Type name"
  return peek().is(TokenKind::LBracket) && peek(2).is(TokenKind::RBracket) &&
         peek(3).is(TokenKind::Identifier); // "Type[] name"
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

CompilationUnit Parser::parseUnit() {
  CompilationUnit Unit;
  while (!at(TokenKind::Eof)) {
    if (at(TokenKind::KwClass)) {
      Unit.Classes.push_back(parseClass());
      continue;
    }
    error(cur().Loc, std::string("expected 'class' at top level, found ") +
                         tokenKindName(cur().Kind));
    // Recover by scanning for the next class keyword.
    while (!at(TokenKind::Eof) && !at(TokenKind::KwClass))
      take();
  }
  return Unit;
}

ClassDecl Parser::parseClass() {
  ClassDecl Cls;
  Cls.Loc = expect(TokenKind::KwClass, "'class'").Loc;
  Cls.Name = std::string(expect(TokenKind::Identifier, "class name").Text);
  if (accept(TokenKind::KwExtends))
    Cls.SuperName =
        std::string(expect(TokenKind::Identifier, "superclass name").Text);
  expect(TokenKind::LBrace, "'{'");
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof))
    parseMember(Cls);
  expect(TokenKind::RBrace, "'}'");
  return Cls;
}

void Parser::parseMember(ClassDecl &Cls) {
  MethodDecl M;
  M.Loc = cur().Loc;

  // Constructor: "ClassName ( ... )".
  if (at(TokenKind::Identifier) && cur().Text == Cls.Name &&
      peek().is(TokenKind::LParen)) {
    M.Name = std::string(take().Text);
    M.IsCtor = true;
    M.ReturnType.Base = TypeRef::Void;
    M.ReturnType.Loc = M.Loc;
    expect(TokenKind::LParen, "'('");
    M.Params = parseParams();
    expect(TokenKind::RParen, "')'");
    M.Body = parseBlock();
    Cls.Methods.push_back(std::move(M));
    return;
  }

  M.IsStatic = accept(TokenKind::KwStatic);

  TypeRef Type;
  if (at(TokenKind::KwVoid)) {
    Type.Base = TypeRef::Void;
    Type.Loc = take().Loc;
  } else {
    Type = parseType();
  }

  Token Name = expect(TokenKind::Identifier, "member name");

  if (accept(TokenKind::LParen)) {
    M.Name = std::string(Name.Text);
    M.ReturnType = Type;
    M.Params = parseParams();
    expect(TokenKind::RParen, "')'");
    M.Body = parseBlock();
    Cls.Methods.push_back(std::move(M));
    return;
  }

  // Otherwise a field declaration (static fields are globals).
  if (Type.isVoid())
    error(Type.Loc, "fields may not have type void");
  FieldDecl F;
  F.Loc = M.Loc;
  F.Type = Type;
  F.Name = std::string(Name.Text);
  F.IsStatic = M.IsStatic;
  expect(TokenKind::Semicolon, "';'");
  Cls.Fields.push_back(std::move(F));
}

TypeRef Parser::parseType() {
  TypeRef T;
  T.Loc = cur().Loc;
  if (accept(TokenKind::KwInt)) {
    T.Base = TypeRef::Int;
  } else if (accept(TokenKind::KwBoolean)) {
    T.Base = TypeRef::Boolean;
  } else {
    T.Base = TypeRef::Class;
    T.Name = std::string(expect(TokenKind::Identifier, "type name").Text);
  }
  if (accept(TokenKind::LBracket)) {
    expect(TokenKind::RBracket, "']'");
    T.IsArray = true;
  }
  return T;
}

std::vector<ParamDecl> Parser::parseParams() {
  std::vector<ParamDecl> Params;
  if (at(TokenKind::RParen))
    return Params;
  do {
    ParamDecl P;
    P.Loc = cur().Loc;
    P.Type = parseType();
    P.Name = std::string(expect(TokenKind::Identifier, "parameter name").Text);
    Params.push_back(std::move(P));
  } while (accept(TokenKind::Comma));
  return Params;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  StmtPtr Block = makeStmt(StmtKind::Block, cur().Loc);
  expect(TokenKind::LBrace, "'{'");
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof))
    Block->Body.push_back(parseStmt());
  expect(TokenKind::RBrace, "'}'");
  return Block;
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = cur().Loc;

  if (at(TokenKind::LBrace))
    return parseBlock();

  if (accept(TokenKind::KwIf)) {
    StmtPtr S = makeStmt(StmtKind::If, Loc);
    expect(TokenKind::LParen, "'('");
    S->Cond = parseExpr();
    expect(TokenKind::RParen, "')'");
    S->Then = parseStmt();
    if (accept(TokenKind::KwElse))
      S->Else = parseStmt();
    return S;
  }

  if (accept(TokenKind::KwWhile)) {
    StmtPtr S = makeStmt(StmtKind::While, Loc);
    expect(TokenKind::LParen, "'('");
    S->Cond = parseExpr();
    expect(TokenKind::RParen, "')'");
    S->Then = parseStmt();
    return S;
  }

  if (accept(TokenKind::KwReturn)) {
    StmtPtr S = makeStmt(StmtKind::Return, Loc);
    if (!at(TokenKind::Semicolon))
      S->Value = parseExpr();
    expect(TokenKind::Semicolon, "';'");
    return S;
  }

  if (atDeclStart()) {
    StmtPtr S = makeStmt(StmtKind::VarDecl, Loc);
    S->DeclType = parseType();
    S->Text = std::string(expect(TokenKind::Identifier, "variable name").Text);
    if (accept(TokenKind::Assign))
      S->Value = parseExpr();
    expect(TokenKind::Semicolon, "';'");
    return S;
  }

  // Expression statement or assignment.
  ExprPtr E = parseExpr();
  if (accept(TokenKind::Assign)) {
    StmtPtr S = makeStmt(StmtKind::Assign, Loc);
    if (E->Kind != ExprKind::VarRef && E->Kind != ExprKind::FieldAccess &&
        E->Kind != ExprKind::ArrayIndex)
      error(E->Loc, "left-hand side of '=' must be a variable, field or "
                    "array element");
    S->Target = std::move(E);
    S->Value = parseExpr();
    expect(TokenKind::Semicolon, "';'");
    return S;
  }

  StmtPtr S = makeStmt(StmtKind::ExprStmt, Loc);
  if (E->Kind != ExprKind::Call && E->Kind != ExprKind::NewObject)
    error(E->Loc, "only calls may be used as statements");
  S->Value = std::move(E);
  if (!accept(TokenKind::Semicolon)) {
    error(cur().Loc, std::string("expected ';' before ") +
                         tokenKindName(cur().Kind));
    synchronizeStmt();
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binding power of binary operator \p K; 0 when not a binary operator.
static int binaryPrec(TokenKind K) {
  switch (K) {
  case TokenKind::OrOr:
    return 1;
  case TokenKind::AndAnd:
    return 2;
  case TokenKind::EqEq:
  case TokenKind::NotEq:
    return 3;
  case TokenKind::Less:
  case TokenKind::Greater:
    return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
    return 6;
  default:
    return 0;
  }
}

ExprPtr Parser::parseExpr() { return parseBinary(1); }

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  while (true) {
    int Prec = binaryPrec(cur().Kind);
    if (Prec < MinPrec)
      return Lhs;
    Token Op = take();
    ExprPtr Rhs = parseBinary(Prec + 1); // all operators left-associative
    ExprPtr E = makeExpr(ExprKind::Binary, Op.Loc);
    E->Op = Op.Kind;
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    Lhs = std::move(E);
  }
}

ExprPtr Parser::parseUnary() {
  if (at(TokenKind::Not) || at(TokenKind::Minus)) {
    Token Op = take();
    ExprPtr E = makeExpr(ExprKind::Unary, Op.Loc);
    E->Op = Op.Kind;
    E->Lhs = parseUnary();
    return E;
  }

  // Cast lookahead: "( int/boolean ...", "( ID )"+unary, "( ID [ ] )".
  if (at(TokenKind::LParen)) {
    bool IsCast = false;
    if (peek().is(TokenKind::KwInt) || peek().is(TokenKind::KwBoolean)) {
      IsCast = true;
    } else if (peek().is(TokenKind::Identifier)) {
      if (peek(2).is(TokenKind::RParen) && startsUnary(peek(3).Kind))
        IsCast = true;
      else if (peek(2).is(TokenKind::LBracket) &&
               peek(3).is(TokenKind::RBracket) && peek(4).is(TokenKind::RParen))
        IsCast = true;
    }
    if (IsCast) {
      SourceLoc Loc = take().Loc; // '('
      ExprPtr E = makeExpr(ExprKind::Cast, Loc);
      E->Type = parseType();
      expect(TokenKind::RParen, "')'");
      E->Lhs = parseUnary();
      return E;
    }
  }

  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (true) {
    if (accept(TokenKind::Dot)) {
      Token Name = expect(TokenKind::Identifier, "member name");
      if (accept(TokenKind::LParen)) {
        ExprPtr Call = makeExpr(ExprKind::Call, Name.Loc);
        Call->Text = std::string(Name.Text);
        Call->Lhs = std::move(E);
        Call->Args = parseArgs();
        expect(TokenKind::RParen, "')'");
        E = std::move(Call);
      } else {
        ExprPtr Field = makeExpr(ExprKind::FieldAccess, Name.Loc);
        Field->Text = std::string(Name.Text);
        Field->Lhs = std::move(E);
        E = std::move(Field);
      }
      continue;
    }
    if (at(TokenKind::LBracket)) {
      SourceLoc Loc = take().Loc;
      ExprPtr Index = makeExpr(ExprKind::ArrayIndex, Loc);
      Index->Lhs = std::move(E);
      Index->Rhs = parseExpr();
      expect(TokenKind::RBracket, "']'");
      E = std::move(Index);
      continue;
    }
    return E;
  }
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  if (at(TokenKind::RParen))
    return Args;
  do {
    Args.push_back(parseExpr());
  } while (accept(TokenKind::Comma));
  return Args;
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;

  if (at(TokenKind::IntLiteral)) {
    Token T = take();
    ExprPtr E = makeExpr(ExprKind::IntLit, Loc);
    E->Text = std::string(T.Text);
    E->IntValue = std::strtoll(E->Text.c_str(), nullptr, 10);
    return E;
  }

  if (at(TokenKind::StringLiteral)) {
    Token T = take();
    ExprPtr E = makeExpr(ExprKind::StringLit, Loc);
    assert(T.Text.size() >= 2 && "lexer guarantees closing quote");
    E->Text = std::string(T.Text.substr(1, T.Text.size() - 2));
    return E;
  }

  if (accept(TokenKind::KwTrue)) {
    ExprPtr E = makeExpr(ExprKind::BoolLit, Loc);
    E->BoolValue = true;
    return E;
  }
  if (accept(TokenKind::KwFalse)) {
    ExprPtr E = makeExpr(ExprKind::BoolLit, Loc);
    E->BoolValue = false;
    return E;
  }
  if (accept(TokenKind::KwNull))
    return makeExpr(ExprKind::NullLit, Loc);
  if (accept(TokenKind::KwThis))
    return makeExpr(ExprKind::This, Loc);

  if (accept(TokenKind::KwNew)) {
    TypeRef Type;
    Type.Loc = cur().Loc;
    if (accept(TokenKind::KwInt)) {
      Type.Base = TypeRef::Int;
    } else if (accept(TokenKind::KwBoolean)) {
      Type.Base = TypeRef::Boolean;
    } else {
      Type.Base = TypeRef::Class;
      Type.Name = std::string(expect(TokenKind::Identifier, "type name").Text);
    }
    if (accept(TokenKind::LBracket)) {
      ExprPtr E = makeExpr(ExprKind::NewArray, Loc);
      E->Rhs = parseExpr();
      expect(TokenKind::RBracket, "']'");
      Type.IsArray = true;
      E->Type = Type;
      return E;
    }
    if (Type.Base != TypeRef::Class) {
      error(Loc, "'new' on a primitive type requires '[size]'");
      return makeExpr(ExprKind::NullLit, Loc);
    }
    ExprPtr E = makeExpr(ExprKind::NewObject, Loc);
    E->Type = Type;
    expect(TokenKind::LParen, "'('");
    E->Args = parseArgs();
    expect(TokenKind::RParen, "')'");
    return E;
  }

  if (at(TokenKind::Identifier)) {
    Token Name = take();
    if (accept(TokenKind::LParen)) {
      ExprPtr E = makeExpr(ExprKind::Call, Loc);
      E->Text = std::string(Name.Text);
      E->Args = parseArgs();
      expect(TokenKind::RParen, "')'");
      return E;
    }
    ExprPtr E = makeExpr(ExprKind::VarRef, Loc);
    E->Text = std::string(Name.Text);
    return E;
  }

  if (accept(TokenKind::LParen)) {
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "')'");
    return E;
  }

  error(Loc, std::string("expected an expression, found ") +
                 tokenKindName(cur().Kind));
  if (!at(TokenKind::Eof))
    take(); // make progress so the parser cannot loop
  return makeExpr(ExprKind::NullLit, Loc);
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

CompilationUnit dynsum::frontend::parseUnit(std::string_view Source,
                                            DiagnosticEngine &Diags) {
  Lexer Lex(Source);
  std::vector<Token> Tokens = Lex.lexAll();
  for (const Token &T : Tokens)
    if (T.is(TokenKind::Error))
      Diags.report(T.Loc, "invalid token '" + std::string(T.Text) + "'");
  Parser P(std::move(Tokens), Diags);
  return P.parseUnit();
}
