//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and source locations for the MiniJava frontend.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_FRONTEND_TOKEN_H
#define DYNSUM_FRONTEND_TOKEN_H

#include <cstdint>
#include <string_view>

namespace dynsum {
namespace frontend {

/// A 1-based line/column pair into the compiled source buffer.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool valid() const { return Line != 0; }
};

/// Lexical token kinds of the MiniJava grammar.
enum class TokenKind : uint8_t {
  // Punctuation and operators.
  LBrace,    ///< {
  RBrace,    ///< }
  LParen,    ///< (
  RParen,    ///< )
  LBracket,  ///< [
  RBracket,  ///< ]
  Semicolon, ///< ;
  Comma,     ///< ,
  Dot,       ///< .
  Assign,    ///< =
  Plus,      ///< +
  Minus,     ///< -
  Star,      ///< *
  Slash,     ///< /
  Less,      ///< <
  Greater,   ///< >
  EqEq,      ///< ==
  NotEq,     ///< !=
  Not,       ///< !
  AndAnd,    ///< &&
  OrOr,      ///< ||

  // Keywords.
  KwClass,
  KwExtends,
  KwStatic,
  KwVoid,
  KwInt,
  KwBoolean,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwNew,
  KwNull,
  KwThis,
  KwTrue,
  KwFalse,

  // Literals and identifiers.
  Identifier,
  IntLiteral,
  StringLiteral,

  Eof,
  Error, ///< invalid character or unterminated literal
};

/// Human-readable spelling of \p K for diagnostics ("'{'", "identifier").
const char *tokenKindName(TokenKind K);

/// One lexed token.  Text views into the source buffer handed to the
/// Lexer, which must outlive the token stream.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string_view Text;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace frontend
} // namespace dynsum

#endif // DYNSUM_FRONTEND_TOKEN_H
