//===----------------------------------------------------------------------===//
///
/// \file
/// IR printer implementation.
///
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "support/Debug.h"
#include "support/OStream.h"

using namespace dynsum;
using namespace dynsum::ir;

static std::string_view varName(const Program &P, VarId V) {
  return P.names().text(P.variable(V).Name);
}

static std::string_view className(const Program &P, TypeId T) {
  return P.names().text(P.classOf(T).Name);
}

void dynsum::ir::printStatement(const Program &P, const Statement &S,
                                OStream &OS) {
  const StringInterner &Names = P.names();
  switch (S.Kind) {
  case StmtKind::Alloc:
    OS << varName(P, S.Dst) << " = new " << className(P, S.Type);
    if (!P.alloc(S.Alloc).Label.empty())
      OS << " @" << Names.text(P.alloc(S.Alloc).Label);
    break;
  case StmtKind::Null:
    OS << varName(P, S.Dst) << " = null";
    break;
  case StmtKind::Assign:
    OS << varName(P, S.Dst) << " = " << varName(P, S.Src);
    break;
  case StmtKind::Cast:
    OS << varName(P, S.Dst) << " = (" << className(P, S.Type) << ") "
       << varName(P, S.Src);
    break;
  case StmtKind::Load:
    OS << varName(P, S.Dst) << " = " << varName(P, S.Base) << '.'
       << Names.text(P.fields()[S.FieldLabel].Name);
    break;
  case StmtKind::Store:
    OS << varName(P, S.Base) << '.'
       << Names.text(P.fields()[S.FieldLabel].Name) << " = "
       << varName(P, S.Src);
    break;
  case StmtKind::Call: {
    if (S.Dst != kNone)
      OS << varName(P, S.Dst) << " = ";
    OS << (S.IsVirtual ? "vcall" : "call");
    if (P.callSite(S.Call).Label != kNone)
      OS << " @" << P.callSite(S.Call).Label;
    OS << ' ';
    size_t FirstArg = 0;
    if (S.IsVirtual) {
      OS << varName(P, S.Base) << '.' << Names.text(S.VirtualName);
      FirstArg = 1; // receiver is printed before the dot
    } else {
      OS << P.describeMethod(S.Callee);
    }
    OS << '(';
    for (size_t I = FirstArg; I < S.Args.size(); ++I) {
      if (I != FirstArg)
        OS << ", ";
      OS << varName(P, S.Args[I]);
    }
    OS << ')';
    break;
  }
  case StmtKind::Return:
    OS << "return " << varName(P, S.Src);
    break;
  }
}

void dynsum::ir::printProgram(const Program &P, OStream &OS) {
  const StringInterner &Names = P.names();

  // Fields are program-global in this IR; emit the whole field table in
  // the first printed class (or a synthetic holder when the program has
  // no classes) so the round-trip preserves it.
  bool FieldsEmitted = P.fields().empty();
  auto EmitFields = [&] {
    OS << "\n  fields ";
    bool First = true;
    for (const Field &F : P.fields()) {
      if (!First)
        OS << ", ";
      OS << Names.text(F.Name);
      First = false;
    }
    OS << '\n';
    FieldsEmitted = true;
  };
  for (const ClassType &C : P.classes()) {
    if (C.Id == kObjectType)
      continue;
    OS << "class " << Names.text(C.Name);
    if (C.Super != kObjectType)
      OS << " extends " << className(P, C.Super);
    OS << " {";
    if (!FieldsEmitted)
      EmitFields();
    OS << "}\n";
  }
  if (!FieldsEmitted) {
    OS << "class $Fields {";
    EmitFields();
    OS << "}\n";
  }
  for (const Variable &V : P.variables()) {
    if (!V.IsGlobal)
      continue;
    OS << "global " << Names.text(V.Name);
    if (V.DeclaredType != kObjectType)
      OS << " : " << className(P, V.DeclaredType);
    OS << '\n';
  }
  for (const Method &M : P.methods()) {
    OS << "method " << P.describeMethod(M.Id) << '(';
    for (size_t I = 0; I < M.Params.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << varName(P, M.Params[I]);
      const Variable &V = P.variable(M.Params[I]);
      if (V.DeclaredType != kObjectType)
        OS << " : " << className(P, V.DeclaredType);
    }
    OS << ") {\n";
    // Re-emit "var x : T" declarations so locals' declared types (used
    // by CHA and SafeCast) survive the round-trip.
    for (const Variable &V : P.variables()) {
      if (V.IsGlobal || V.Owner != M.Id || V.DeclaredType == kObjectType)
        continue;
      bool IsParam = false;
      for (VarId Param : M.Params)
        IsParam |= Param == V.Id;
      if (IsParam)
        continue;
      OS << "  var " << Names.text(V.Name) << " : "
         << className(P, V.DeclaredType) << '\n';
    }
    for (const Statement &S : M.Stmts) {
      OS << "  ";
      printStatement(P, S, OS);
      OS << '\n';
    }
    OS << "}\n";
  }
}

std::string dynsum::ir::programToString(const Program &P) {
  StringOStream OS;
  printProgram(P, OS);
  return OS.str();
}
