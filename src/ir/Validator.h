//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for IR programs.
///
/// The PAG builder and the analyses assume these invariants; the parser,
/// builder API and workload generator are all validated in tests.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_IR_VALIDATOR_H
#define DYNSUM_IR_VALIDATOR_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace dynsum {
namespace ir {

/// Checks \p P and returns human-readable problems (empty = valid):
///  * every statement's variables exist and locals belong to the
///    enclosing method (globals are allowed anywhere);
///  * alloc/cast types and field ids are in range;
///  * direct calls pass exactly the callee's parameter count;
///  * virtual calls have at least one CHA target, and every target's
///    parameter count matches;
///  * call/alloc/cast site ownership matches the enclosing method;
///  * class hierarchy is acyclic (guaranteed by construction, checked
///    defensively).
std::vector<std::string> validate(const Program &P);

} // namespace ir
} // namespace dynsum

#endif // DYNSUM_IR_VALIDATOR_H
