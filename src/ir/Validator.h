//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for IR programs.
///
/// The PAG builder and the analyses assume these invariants; the parser,
/// builder API and workload generator are all validated in tests.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_IR_VALIDATOR_H
#define DYNSUM_IR_VALIDATOR_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace dynsum {
namespace ir {

/// Checks \p P and returns human-readable problems (empty = valid):
///  * every statement's variables exist and locals belong to the
///    enclosing method (globals are allowed anywhere);
///  * alloc/cast types and field ids are in range;
///  * direct calls pass exactly the callee's parameter count;
///  * virtual calls have at least one CHA target, and every target's
///    parameter count matches;
///  * call/alloc/cast site ownership matches the enclosing method;
///  * class hierarchy is acyclic (guaranteed by construction, checked
///    defensively).
std::vector<std::string> validate(const Program &P);

/// Same statement-level checks restricted to \p Methods — the commit
/// pipeline's pre-commit gate, O(dirty methods) instead of O(program).
/// Skips the whole-program hierarchy walk (edits cannot create class
/// cycles; the hierarchy is append-only) and ignores out-of-range
/// method ids in \p Methods.
std::vector<std::string> validateMethods(const Program &P,
                                         const std::vector<MethodId> &Methods);

} // namespace ir
} // namespace dynsum

#endif // DYNSUM_IR_VALIDATOR_H
