//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the textual mini-IR format.
///
/// Grammar (comments run from "//" or "#" to end of line):
///
///   program   := (classdecl | globaldecl | methoddecl)*
///   classdecl := "class" IDENT ["extends" IDENT]
///                "{" ["fields" IDENT ("," IDENT)*]* "}"
///   globaldecl:= "global" IDENT [":" IDENT]
///   methoddecl:= "method" QUAL "(" [param ("," param)*] ")" "{" stmt* "}"
///   param     := IDENT [":" IDENT]
///   QUAL      := IDENT ["." IDENT]
///   stmt      := "var" IDENT ":" IDENT
///              | IDENT "=" "new" IDENT ["@" IDENT]
///              | IDENT "=" "null"
///              | IDENT "=" "(" IDENT ")" IDENT          // cast
///              | IDENT "=" IDENT "." IDENT              // load
///              | IDENT "." IDENT "=" IDENT              // store
///              | IDENT "=" IDENT                        // assign
///              | [IDENT "="] "call" ["@" NUM] QUAL "(" args ")"
///              | [IDENT "="] "vcall" ["@" NUM] IDENT "." IDENT "(" args ")"
///              | "return" IDENT
///
/// Example (the paper's Figure 2 program ships in tests/ and examples/).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_IR_PARSER_H
#define DYNSUM_IR_PARSER_H

#include "ir/Program.h"

#include <memory>
#include <string>
#include <string_view>

namespace dynsum {
namespace ir {

/// Outcome of a parse: either a program or a diagnostic.
struct ParseResult {
  std::unique_ptr<Program> Prog;
  /// Empty on success; otherwise "line N: message".
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Parses \p Source into a Program.  All class and method declarations
/// are processed in a first pass so calls may reference methods declared
/// later in the file.
ParseResult parseProgram(std::string_view Source);

} // namespace ir
} // namespace dynsum

#endif // DYNSUM_IR_PARSER_H
