//===----------------------------------------------------------------------===//
///
/// \file
/// IR validator implementation.
///
//===----------------------------------------------------------------------===//

#include "ir/Validator.h"

#include <string>

using namespace dynsum;
using namespace dynsum::ir;

namespace {

class ValidatorImpl {
public:
  explicit ValidatorImpl(const Program &P) : P(P) {}

  std::vector<std::string> run() {
    checkHierarchy();
    for (const Method &M : P.methods())
      checkMethod(M);
    return std::move(Problems);
  }

  std::vector<std::string> runOn(const std::vector<MethodId> &Methods) {
    for (MethodId M : Methods)
      if (M < P.methods().size())
        checkMethod(P.method(M));
    return std::move(Problems);
  }

private:
  void problem(const std::string &Message) { Problems.push_back(Message); }

  void checkHierarchy() {
    // Walking Super links from any class must terminate at Object.
    for (const ClassType &C : P.classes()) {
      size_t Steps = 0;
      for (TypeId T = C.Id; T != kNone; T = P.classOf(T).Super) {
        if (++Steps > P.classes().size()) {
          problem("class hierarchy cycle involving " +
                  std::string(P.names().text(C.Name)));
          break;
        }
      }
    }
  }

  bool checkVar(const Method &M, VarId V, const char *Role) {
    if (V >= P.variables().size()) {
      problem(P.describeMethod(M.Id) + ": " + Role + " variable out of range");
      return false;
    }
    const Variable &Var = P.variable(V);
    if (!Var.IsGlobal && Var.Owner != M.Id) {
      problem(P.describeMethod(M.Id) + ": " + Role + " local " +
              P.describeVar(V) + " belongs to another method");
      return false;
    }
    return true;
  }

  void checkCall(const Method &M, const Statement &S) {
    if (S.Call >= P.callSites().size()) {
      problem(P.describeMethod(M.Id) + ": call site out of range");
      return;
    }
    if (P.callSite(S.Call).Caller != M.Id)
      problem(P.describeMethod(M.Id) + ": call site owned by another method");
    for (VarId Arg : S.Args)
      checkVar(M, Arg, "argument");
    if (S.Dst != kNone)
      checkVar(M, S.Dst, "call result");
    if (!S.IsVirtual) {
      if (S.Callee >= P.methods().size()) {
        problem(P.describeMethod(M.Id) + ": direct call to unknown method");
        return;
      }
      const Method &Callee = P.method(S.Callee);
      if (Callee.Params.size() != S.Args.size())
        problem(P.describeMethod(M.Id) + ": call to " +
                P.describeMethod(S.Callee) + " passes " +
                std::to_string(S.Args.size()) + " args, expects " +
                std::to_string(Callee.Params.size()));
      return;
    }
    if (!checkVar(M, S.Base, "receiver"))
      return;
    if (S.Args.empty() || S.Args[0] != S.Base)
      problem(P.describeMethod(M.Id) +
              ": virtual call receiver must be the first argument");
    TypeId RecvType = P.variable(S.Base).DeclaredType;
    std::vector<MethodId> Targets = P.chaTargets(RecvType, S.VirtualName);
    if (Targets.empty()) {
      problem(P.describeMethod(M.Id) + ": virtual call to " +
              std::string(P.names().text(S.VirtualName)) +
              " has no CHA target on " +
              std::string(P.names().text(P.classOf(RecvType).Name)));
      return;
    }
    for (MethodId T : Targets)
      if (P.method(T).Params.size() != S.Args.size())
        problem(P.describeMethod(M.Id) + ": virtual target " +
                P.describeMethod(T) + " expects " +
                std::to_string(P.method(T).Params.size()) + " args, got " +
                std::to_string(S.Args.size()));
  }

  void checkMethod(const Method &M) {
    for (VarId Param : M.Params)
      checkVar(M, Param, "parameter");
    for (const Statement &S : M.Stmts) {
      switch (S.Kind) {
      case StmtKind::Alloc:
        checkVar(M, S.Dst, "alloc destination");
        if (S.Type >= P.classes().size())
          problem(P.describeMethod(M.Id) + ": alloc of unknown class");
        if (S.Alloc >= P.allocs().size())
          problem(P.describeMethod(M.Id) + ": alloc site out of range");
        else if (P.alloc(S.Alloc).Owner != M.Id)
          problem(P.describeMethod(M.Id) +
                  ": alloc site owned by another method");
        break;
      case StmtKind::Null:
        checkVar(M, S.Dst, "null destination");
        break;
      case StmtKind::Assign:
        checkVar(M, S.Dst, "assign destination");
        checkVar(M, S.Src, "assign source");
        break;
      case StmtKind::Cast:
        checkVar(M, S.Dst, "cast destination");
        checkVar(M, S.Src, "cast source");
        if (S.Type >= P.classes().size())
          problem(P.describeMethod(M.Id) + ": cast to unknown class");
        if (S.Cast >= P.castSites().size())
          problem(P.describeMethod(M.Id) + ": cast site out of range");
        break;
      case StmtKind::Load:
        checkVar(M, S.Dst, "load destination");
        checkVar(M, S.Base, "load base");
        if (S.FieldLabel >= P.fields().size())
          problem(P.describeMethod(M.Id) + ": load of unknown field");
        break;
      case StmtKind::Store:
        checkVar(M, S.Base, "store base");
        checkVar(M, S.Src, "store source");
        if (S.FieldLabel >= P.fields().size())
          problem(P.describeMethod(M.Id) + ": store of unknown field");
        break;
      case StmtKind::Call:
        checkCall(M, S);
        break;
      case StmtKind::Return:
        checkVar(M, S.Src, "return value");
        break;
      }
    }
  }

  const Program &P;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> dynsum::ir::validate(const Program &P) {
  return ValidatorImpl(P).run();
}

std::vector<std::string>
dynsum::ir::validateMethods(const Program &P,
                            const std::vector<MethodId> &Methods) {
  return ValidatorImpl(P).runOn(Methods);
}
