//===----------------------------------------------------------------------===//
///
/// \file
/// A name-based convenience layer for constructing IR programs.
///
/// Tests, examples and the workload generator build programs through
/// this API; the parser is a thin layer over it as well.  Local
/// variables are created on first use within their method, mirroring how
/// the textual format treats identifiers.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_IR_BUILDER_H
#define DYNSUM_IR_BUILDER_H

#include "ir/Program.h"

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dynsum {
namespace ir {

/// Builds a Program incrementally.  The builder owns the program until
/// takeProgram() is called.
class ProgramBuilder {
public:
  ProgramBuilder();

  /// Read access to the program under construction.
  Program &program() { return *Prog; }
  const Program &program() const { return *Prog; }

  /// Transfers ownership of the finished program.
  std::unique_ptr<Program> takeProgram();

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  /// Declares class \p Name extending \p Super ("" or "Object" for the
  /// root).  Returns the existing class when already declared (its super
  /// must then match).
  TypeId cls(std::string_view Name, std::string_view Super = "");

  /// Returns the class named \p Name; aborts when it does not exist.
  TypeId typeOf(std::string_view Name) const;

  /// Declares (or finds) the field \p Name.
  FieldId field(std::string_view Name);

  /// Declares method "Class.name" or a free method "name".  \p Params
  /// are (name, declared-type) pairs; use "" for untyped parameters.
  /// For instance methods include the receiver (conventionally "this")
  /// as the first parameter.
  MethodId
  method(std::string_view QualifiedName,
         const std::vector<std::pair<std::string, std::string>> &Params = {});

  /// Declares a global with optional declared type.
  VarId global(std::string_view Name, std::string_view Type = "");

  /// Declares or retrieves local \p Name of method \p M.  A global of
  /// the same name takes precedence (as in the textual format).
  VarId var(MethodId M, std::string_view Name);

  /// Sets the declared type of a local ("var x : T" in the text format).
  void declareLocal(MethodId M, std::string_view Name, std::string_view Type);

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  /// Dst = new Type.  \p Label optionally names the site (e.g. "o25").
  AllocId alloc(MethodId M, std::string_view Dst, std::string_view Type,
                std::string_view Label = "");

  /// Dst = null.
  void nullAssign(MethodId M, std::string_view Dst);

  /// Dst = Src.
  void assign(MethodId M, std::string_view Dst, std::string_view Src);

  /// Dst = (Type) Src; records a cast site for the SafeCast client.
  CastSiteId cast(MethodId M, std::string_view Dst, std::string_view Type,
                  std::string_view Src);

  /// Dst = Base.Field.
  void load(MethodId M, std::string_view Dst, std::string_view Base,
            std::string_view FieldName);

  /// Base.Field = Src.
  void store(MethodId M, std::string_view Base, std::string_view FieldName,
             std::string_view Src);

  /// [Dst =] call Callee(Args).  \p Dst may be "" for a void call.
  /// \p Label is the optional user-visible site number.
  CallSiteId call(MethodId M, std::string_view Dst,
                  std::string_view CalleeQualifiedName,
                  const std::vector<std::string> &Args,
                  uint32_t Label = kNone);

  /// [Dst =] vcall Recv.Name(Args).  The receiver is implicitly passed
  /// as the first argument.
  CallSiteId vcall(MethodId M, std::string_view Dst, std::string_view Recv,
                   std::string_view MethodName,
                   const std::vector<std::string> &Args, uint32_t Label = kNone);

  /// return Src.
  void ret(MethodId M, std::string_view Src);

private:
  TypeId typeOrObject(std::string_view Name) const;

  std::unique_ptr<Program> Prog;
  /// (method id, name symbol) -> local variable.
  std::unordered_map<uint64_t, VarId> Locals;
};

} // namespace ir
} // namespace dynsum

#endif // DYNSUM_IR_BUILDER_H
