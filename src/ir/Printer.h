//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-printer emitting the textual mini-IR format.
///
/// printProgram(parseProgram(Text)) round-trips modulo whitespace, which
/// the parser tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_IR_PRINTER_H
#define DYNSUM_IR_PRINTER_H

#include "ir/Program.h"

#include <string>

namespace dynsum {

class OStream;

namespace ir {

/// Writes \p P in the textual IR grammar accepted by parseProgram().
void printProgram(const Program &P, OStream &OS);

/// Convenience wrapper returning the text as a string.
std::string programToString(const Program &P);

/// Writes one statement of \p M (used by debug dumps and examples).
void printStatement(const Program &P, const Statement &S, OStream &OS);

} // namespace ir
} // namespace dynsum

#endif // DYNSUM_IR_PRINTER_H
