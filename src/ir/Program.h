//===----------------------------------------------------------------------===//
///
/// \file
/// The mini pointer IR: classes, fields, methods, variables, statements.
///
/// This IR is the frontend substitute for Soot/Spark in the DynSum
/// reproduction.  It models exactly the language abstraction of the
/// paper's Figure 1: allocations, assignments, field loads/stores,
/// parameter passing and returns, plus globals, casts (for the SafeCast
/// client) and null constants (for the NullDeref client).  The analyses
/// never consume the IR directly; they consume the PAG built from it.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_IR_PROGRAM_H
#define DYNSUM_IR_PROGRAM_H

#include "support/StringInterner.h"

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace dynsum {
namespace ir {

using TypeId = uint32_t;
using FieldId = uint32_t;
using MethodId = uint32_t;
using VarId = uint32_t;
using AllocId = uint32_t;
using CallSiteId = uint32_t;
using CastSiteId = uint32_t;

inline constexpr uint32_t kNone = 0xffffffffu;

/// The implicit root class; every class without an "extends" clause
/// derives from it.
inline constexpr TypeId kObjectType = 0;

/// A class in the single-inheritance hierarchy.
struct ClassType {
  Symbol Name;
  TypeId Id = kNone;
  TypeId Super = kNone; // kNone only for Object itself
  /// Methods declared directly in this class (not inherited).
  std::vector<MethodId> Methods;
  /// Direct subclasses, maintained by Program::createClass.
  std::vector<TypeId> Subclasses;
};

/// An instance field label.  Field identity is by name program-wide, the
/// same way CFL load/store parentheses are keyed by label in the paper.
struct Field {
  Symbol Name;
  FieldId Id = kNone;
};

/// A local or global variable.
struct Variable {
  Symbol Name;
  VarId Id = kNone;
  /// Owning method; kNone for globals.
  MethodId Owner = kNone;
  /// Declared (static) type, used by CHA dispatch and the SafeCast
  /// client; kObjectType when unannotated.
  TypeId DeclaredType = kObjectType;
  bool IsGlobal = false;
};

/// An allocation site ("new" expression).  The analyses' heap
/// abstraction is (AllocId, calling context).
struct AllocSite {
  AllocId Id = kNone;
  TypeId Type = kObjectType;
  MethodId Owner = kNone;
  /// Optional user label (e.g. the paper's "o25"); zero-symbol when
  /// auto-assigned.
  Symbol Label;
  /// True for the singleton null pseudo-object.
  bool IsNull = false;
};

/// A call site.  Sites are the "i" subscripts of entry_i/exit_i edges.
struct CallSite {
  CallSiteId Id = kNone;
  MethodId Caller = kNone;
  /// Optional user-chosen numeric label (the paper's line numbers);
  /// kNone when auto-assigned.  Labels are only for printing.
  uint32_t Label = kNone;
};

/// A downcast site checked by the SafeCast client.
struct CastSite {
  CastSiteId Id = kNone;
  MethodId Owner = kNone;
  VarId Source = kNone;
  TypeId Target = kObjectType;
};

/// Statement kinds; the IR is flow-insensitive so statements are an
/// unordered bag per method.
enum class StmtKind : uint8_t {
  Alloc,  ///< Dst = new Type            (alloc site Alloc)
  Null,   ///< Dst = null
  Assign, ///< Dst = Src
  Cast,   ///< Dst = (Type) Src          (cast site Cast)
  Load,   ///< Dst = Base.Field
  Store,  ///< Base.Field = Src
  Call,   ///< [Dst =] call/vcall (...)  (call site Call)
  Return, ///< return Src
};

/// One IR statement.  Unused members are kNone.
struct Statement {
  StmtKind Kind = StmtKind::Assign;
  VarId Dst = kNone;
  VarId Src = kNone;
  VarId Base = kNone; // load/store base, vcall receiver
  FieldId FieldLabel = kNone;
  TypeId Type = kNone;       // alloc type, cast target
  AllocId Alloc = kNone;     // alloc/null site
  CallSiteId Call = kNone;   // call site
  CastSiteId Cast = kNone;   // cast site
  MethodId Callee = kNone;   // direct call target
  Symbol VirtualName;        // virtual call method name
  bool IsVirtual = false;
  std::vector<VarId> Args; // call arguments, receiver first for vcalls
};

/// A method.  Parameters are ordinary locals listed in Params; instance
/// methods take the receiver as their first parameter by convention.
struct Method {
  Symbol Name;
  MethodId Id = kNone;
  /// Declaring class; kNone for static/free methods.
  TypeId Owner = kNone;
  std::vector<VarId> Params;
  std::vector<Statement> Stmts;

  bool isInstance() const { return Owner != kNone; }
};

/// A whole program: the closed world the PAG is built from.
class Program {
public:
  Program();

  //===------------------------------------------------------------------===//
  // Construction
  //===------------------------------------------------------------------===//

  /// Interns \p Text in the program's name table.
  Symbol name(std::string_view Text) { return Names.intern(Text); }

  /// Creates class \p ClassName deriving from \p Super (use kObjectType
  /// for plain classes).  The name must be fresh.
  TypeId createClass(Symbol ClassName, TypeId Super);

  /// Returns the field with \p FieldName, creating it on first use.
  FieldId getOrCreateField(Symbol FieldName);

  /// Creates a method named \p MethodName in class \p Owner (kNone for a
  /// free/static method).
  MethodId createMethod(Symbol MethodName, TypeId Owner);

  /// Creates a fresh local named \p VarName in \p Owner.
  VarId createLocal(Symbol VarName, MethodId Owner, TypeId DeclaredType);

  /// Creates a global variable.  The name must be fresh among globals.
  VarId createGlobal(Symbol VarName, TypeId DeclaredType);

  /// Registers an allocation site in \p Owner for objects of \p Type.
  AllocId createAllocSite(TypeId Type, MethodId Owner, Symbol Label);

  /// Registers a call site in \p Caller with optional numeric \p Label.
  CallSiteId createCallSite(MethodId Caller, uint32_t Label);

  /// Registers a downcast site.
  CastSiteId createCastSite(MethodId Owner, VarId Source, TypeId Target);

  /// Registers a null pseudo-allocation site in \p Owner.  Each
  /// "x = null" statement gets its own site so that every allocation
  /// site keeps exactly one new edge (a PAG invariant the analyses rely
  /// on); sites are marked IsNull for the NullDeref client.
  AllocId createNullAlloc(MethodId Owner);

  /// Appends \p S to \p M's statement bag.  Touches \p M (see
  /// touchMethod), so the common edit path is tracked automatically.
  void addStatement(MethodId M, Statement S);

  /// Removes every statement of \p M matching \p Pred; returns how
  /// many.  Touches \p M when anything was removed, so remove-only
  /// edits stamp the edit clock exactly like addStatement does — the
  /// edit layers (EditSession, AnalysisService) forward here instead of
  /// erasing by hand precisely so the stamp cannot be forgotten.
  size_t removeStatements(MethodId M,
                          const std::function<bool(const Statement &)> &Pred);

  //===------------------------------------------------------------------===//
  // Edit tracking
  //
  // The incremental layers (EditSession, AnalysisService, the delta PAG
  // builder) need to name exactly which methods changed between two
  // builds.  The program keeps a monotonic edit clock: every mutation of
  // a method stamps that method with the next tick.  A consumer records
  // the clock at build time and later asks which methods moved past it —
  // an O(#methods) integer scan, no statement hashing.
  //
  // Content fingerprints complement the clock: a stamp says "possibly
  // changed" (markDirty with no real edit also stamps), the fingerprint
  // says whether the method's analysis-visible content actually
  // differs.  The delta builder uses stamps to find candidates and
  // fingerprints to skip spurious re-lowers.
  //===------------------------------------------------------------------===//

  /// Stamps \p M as edited at the next clock tick.  addStatement calls
  /// this; direct mutation through method(M) must call it explicitly
  /// (EditSession::markDirty and friends forward here).
  void touchMethod(MethodId M);

  /// The current edit clock (starts at 0; bumped by every touch).
  uint64_t modClock() const { return ModClock; }

  /// The clock value of \p M's most recent touch.  Methods are stamped
  /// at creation, so this is never 0.
  uint64_t methodModCount(MethodId M) const { return MethodModCounts.at(M); }

  /// Every method touched strictly after \p Clock, in id order.
  std::vector<MethodId> methodsTouchedSince(uint64_t Clock) const;

  /// Bumped whenever the class hierarchy or method set grows
  /// (createClass/createMethod): CHA dispatch of *unedited* methods can
  /// only change when this does.
  uint64_t structureVersion() const { return StructureVersion; }

  /// Content hash of everything PAG construction reads from \p M's
  /// body: its statements, in order, with every analysis-visible field.
  uint64_t methodFingerprint(MethodId M) const;

  /// Hash of \p M's call-boundary interface: parameter variable ids and
  /// returned variable ids.  Callers' entry/exit edges depend on
  /// exactly this, so a caller must be re-lowered iff some callee's
  /// interface fingerprint changed (or its own body did).
  uint64_t methodInterfaceFingerprint(MethodId M) const;

  //===------------------------------------------------------------------===//
  // Lookup
  //===------------------------------------------------------------------===//

  /// Finds a class by name; kNone when absent.
  TypeId findClass(Symbol ClassName) const;

  /// Finds a method by owner + name; kNone when absent.  Does not search
  /// superclasses (see dispatch()).
  MethodId findMethod(TypeId Owner, Symbol MethodName) const;

  /// Finds a free (ownerless) method by name; kNone when absent.
  MethodId findFreeMethod(Symbol MethodName) const;

  /// Finds a global variable by name; kNone when absent.
  VarId findGlobal(Symbol VarName) const;

  /// Virtual-dispatch lookup: the method \p MethodName visible on
  /// \p Receiver, walking up the superclass chain; kNone when absent.
  MethodId dispatch(TypeId Receiver, Symbol MethodName) const;

  /// True when \p Sub is \p Super or a (transitive) subclass of it.
  bool isSubtypeOf(TypeId Sub, TypeId Super) const;

  /// Class-hierarchy-analysis call targets for a virtual call on a
  /// receiver statically typed \p ReceiverType: the dispatch results of
  /// every class in the subtree rooted at \p ReceiverType, deduplicated.
  std::vector<MethodId> chaTargets(TypeId ReceiverType,
                                   Symbol MethodName) const;

  //===------------------------------------------------------------------===//
  // Accessors
  //===------------------------------------------------------------------===//

  StringInterner &names() { return Names; }
  const StringInterner &names() const { return Names; }

  const std::vector<ClassType> &classes() const { return Classes; }
  const std::vector<Field> &fields() const { return Fields; }
  const std::vector<Method> &methods() const { return Methods; }
  const std::vector<Variable> &variables() const { return Variables; }
  const std::vector<AllocSite> &allocs() const { return Allocs; }
  const std::vector<CallSite> &callSites() const { return CallSites; }
  const std::vector<CastSite> &castSites() const { return CastSites; }

  const ClassType &classOf(TypeId Id) const { return Classes.at(Id); }
  const Method &method(MethodId Id) const { return Methods.at(Id); }
  Method &method(MethodId Id) { return Methods.at(Id); }
  const Variable &variable(VarId Id) const { return Variables.at(Id); }
  Variable &variable(VarId Id) { return Variables.at(Id); }
  const AllocSite &alloc(AllocId Id) const { return Allocs.at(Id); }
  const CallSite &callSite(CallSiteId Id) const { return CallSites.at(Id); }
  const CastSite &castSite(CastSiteId Id) const { return CastSites.at(Id); }

  /// Human-readable description of a variable ("v1@Main.main" or
  /// "G.cache").
  std::string describeVar(VarId Id) const;

  /// Human-readable description of an allocation site ("o25:Vector").
  std::string describeAlloc(AllocId Id) const;

  /// Human-readable description of a method ("Vector.add").
  std::string describeMethod(MethodId Id) const;

private:
  StringInterner Names;
  std::vector<ClassType> Classes;
  std::vector<Field> Fields;
  std::vector<Method> Methods;
  std::vector<Variable> Variables;
  std::vector<AllocSite> Allocs;
  std::vector<CallSite> CallSites;
  std::vector<CastSite> CastSites;

  /// Edit tracking (see "Edit tracking" above).
  uint64_t ModClock = 0;
  uint64_t StructureVersion = 0;
  std::vector<uint64_t> MethodModCounts; // by MethodId

  /// Name indexes so find*/dispatch stay O(1) as programs grow to 100k+
  /// methods (the workload generator and the frontend resolve every
  /// reference by name).  First declaration wins, matching the linear
  /// scans these replaced.
  std::unordered_map<uint32_t, TypeId> ClassByName;     // Symbol.Id
  std::unordered_map<uint32_t, VarId> GlobalByName;     // Symbol.Id
  std::unordered_map<uint32_t, MethodId> FreeMethodByName; // Symbol.Id
  std::unordered_map<uint64_t, MethodId> MethodByOwnerName; // Owner<<32|Name
};

} // namespace ir
} // namespace dynsum

#endif // DYNSUM_IR_PROGRAM_H
