//===----------------------------------------------------------------------===//
///
/// \file
/// Two-pass recursive-descent parser for the textual mini-IR.
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Builder.h"

#include <cctype>
#include <cstdlib>
#include <vector>

using namespace dynsum;
using namespace dynsum::ir;

namespace {

enum class TokKind : uint8_t {
  Ident,
  Number,
  Punct, // single character in Text[0]
  Eof,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  unsigned Line = 0;

  bool isPunct(char C) const { return Kind == TokKind::Punct && Text[0] == C; }
  bool isIdent(std::string_view S) const {
    return Kind == TokKind::Ident && Text == S;
  }
};

/// Splits the source into identifier / number / punctuation tokens.
/// Identifiers may contain letters, digits, '_', '<', '>' and '$' so that
/// Java-flavoured names like "<init>" work unquoted.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  bool lex(std::vector<Token> &Out, std::string &Error) {
    while (true) {
      skipWhitespaceAndComments();
      if (Pos >= Source.size())
        break;
      char C = Source[Pos];
      if (isIdentStart(C)) {
        size_t Begin = Pos;
        while (Pos < Source.size() && isIdentChar(Source[Pos]))
          ++Pos;
        Out.push_back(
            Token{TokKind::Ident,
                  std::string(Source.substr(Begin, Pos - Begin)), Line});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(C))) {
        size_t Begin = Pos;
        while (Pos < Source.size() &&
               std::isdigit(static_cast<unsigned char>(Source[Pos])))
          ++Pos;
        Out.push_back(
            Token{TokKind::Number,
                  std::string(Source.substr(Begin, Pos - Begin)), Line});
        continue;
      }
      if (std::string_view("{}()=.,:@").find(C) != std::string_view::npos) {
        Out.push_back(Token{TokKind::Punct, std::string(1, C), Line});
        ++Pos;
        continue;
      }
      Error = "line " + std::to_string(Line) + ": unexpected character '" +
              std::string(1, C) + "'";
      return false;
    }
    Out.push_back(Token{TokKind::Eof, "", Line});
    return true;
  }

private:
  static bool isIdentStart(char C) {
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
           C == '<' || C == '$';
  }
  static bool isIdentChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '<' || C == '>' || C == '$' || C == '[' || C == ']';
  }

  void skipWhitespaceAndComments() {
    while (Pos < Source.size()) {
      char C = Source[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == '#' ||
          (C == '/' && Pos + 1 < Source.size() && Source[Pos + 1] == '/')) {
        while (Pos < Source.size() && Source[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }

  std::string_view Source;
  size_t Pos = 0;
  unsigned Line = 1;
};

/// Parses a lexed token stream.  Pass 1 registers classes (with fields),
/// globals and method signatures; pass 2 fills in method bodies.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  ParseResult run() {
    // Classes and globals first so method signatures and bodies may
    // reference declarations appearing later in the file.
    if (!declarationPass(/*ClassesAndGlobals=*/true))
      return {nullptr, Error};
    Pos = 0;
    if (!declarationPass(/*ClassesAndGlobals=*/false))
      return {nullptr, Error};
    Pos = 0;
    if (!bodyPass())
      return {nullptr, Error};
    return {Builder.takeProgram(), ""};
  }

private:
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peekAhead(size_t N) const {
    size_t I = Pos + N;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  void advance() {
    if (Pos + 1 < Tokens.size())
      ++Pos;
  }

  bool fail(const std::string &Message) {
    Error = "line " + std::to_string(cur().Line) + ": " + Message;
    return false;
  }

  bool expectPunct(char C) {
    if (!cur().isPunct(C))
      return fail(std::string("expected '") + C + "', found '" + cur().Text +
                  "'");
    advance();
    return true;
  }

  bool expectIdent(std::string &Out) {
    if (cur().Kind != TokKind::Ident)
      return fail("expected identifier, found '" + cur().Text + "'");
    Out = cur().Text;
    advance();
    return true;
  }

  /// Skips a balanced { ... } block; cur() must be at '{'.
  bool skipBlock() {
    if (!expectPunct('{'))
      return false;
    unsigned Depth = 1;
    while (Depth > 0) {
      if (cur().Kind == TokKind::Eof)
        return fail("unterminated block");
      if (cur().isPunct('{'))
        ++Depth;
      else if (cur().isPunct('}'))
        --Depth;
      advance();
    }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Pass 1: declarations
  //===------------------------------------------------------------------===//

  bool declarationPass(bool ClassesAndGlobals) {
    while (cur().Kind != TokKind::Eof) {
      if (cur().isIdent("class")) {
        if (ClassesAndGlobals) {
          if (!parseClassDecl())
            return false;
        } else {
          while (!cur().isPunct('{') && cur().Kind != TokKind::Eof)
            advance();
          if (!skipBlock())
            return false;
        }
        continue;
      }
      if (cur().isIdent("global")) {
        if (ClassesAndGlobals) {
          if (!parseGlobalDecl())
            return false;
        } else {
          advance(); // global
          advance(); // name
          if (cur().isPunct(':')) {
            advance();
            advance();
          }
        }
        continue;
      }
      if (cur().isIdent("method")) {
        if (ClassesAndGlobals) {
          while (!cur().isPunct('{') && cur().Kind != TokKind::Eof)
            advance();
          if (!skipBlock())
            return false;
        } else {
          if (!parseMethodSignature(/*DeclareOnly=*/true))
            return false;
          if (!skipBlock())
            return false;
        }
        continue;
      }
      return fail("expected 'class', 'global' or 'method'");
    }
    return true;
  }

  bool parseClassDecl() {
    advance(); // class
    std::string Name;
    if (!expectIdent(Name))
      return false;
    std::string Super;
    if (cur().isIdent("extends")) {
      advance();
      if (!expectIdent(Super))
        return false;
    }
    Builder.cls(Name, Super);
    if (!expectPunct('{'))
      return false;
    while (!cur().isPunct('}')) {
      if (cur().Kind == TokKind::Eof)
        return fail("unterminated class body");
      if (!cur().isIdent("fields"))
        return fail("expected 'fields' or '}' in class body");
      advance();
      while (true) {
        std::string FieldName;
        if (!expectIdent(FieldName))
          return false;
        Builder.field(FieldName);
        if (!cur().isPunct(','))
          break;
        advance();
      }
    }
    advance(); // }
    return true;
  }

  bool parseGlobalDecl() {
    advance(); // global
    std::string Name;
    if (!expectIdent(Name))
      return false;
    std::string Type;
    if (cur().isPunct(':')) {
      advance();
      if (!expectIdent(Type))
        return false;
    }
    Builder.global(Name, Type);
    return true;
  }

  /// Parses "method QUAL(params)" and returns at the '{'.  When
  /// \p DeclareOnly, registers the signature; otherwise looks the method
  /// up for body parsing.
  bool parseMethodSignature(bool DeclareOnly) {
    advance(); // method
    std::string First;
    if (!expectIdent(First))
      return false;
    std::string Qual = First;
    if (cur().isPunct('.')) {
      advance();
      std::string MethodName;
      if (!expectIdent(MethodName))
        return false;
      Qual += "." + MethodName;
    }
    if (!expectPunct('('))
      return false;
    std::vector<std::pair<std::string, std::string>> Params;
    if (!cur().isPunct(')')) {
      while (true) {
        std::string ParamName;
        if (!expectIdent(ParamName))
          return false;
        std::string ParamType;
        if (cur().isPunct(':')) {
          advance();
          if (!expectIdent(ParamType))
            return false;
        }
        Params.emplace_back(ParamName, ParamType);
        if (!cur().isPunct(','))
          break;
        advance();
      }
    }
    if (!expectPunct(')'))
      return false;
    if (DeclareOnly) {
      CurrentMethod = Builder.method(Qual, Params);
    } else {
      CurrentMethod = findDeclaredMethod(Qual);
      if (CurrentMethod == kNone)
        return fail("internal: method vanished between passes");
    }
    return true;
  }

  MethodId findDeclaredMethod(const std::string &Qual) {
    const Program &P = Builder.program();
    size_t Dot = Qual.find('.');
    if (Dot == std::string::npos)
      return P.findFreeMethod(P.names().lookup(Qual));
    TypeId Owner = P.findClass(P.names().lookup(Qual.substr(0, Dot)));
    if (Owner == kNone)
      return kNone;
    return P.findMethod(Owner, P.names().lookup(Qual.substr(Dot + 1)));
  }

  //===------------------------------------------------------------------===//
  // Pass 2: method bodies
  //===------------------------------------------------------------------===//

  bool bodyPass() {
    while (cur().Kind != TokKind::Eof) {
      if (cur().isIdent("class")) {
        // Skip the class declaration wholesale.
        while (!cur().isPunct('{'))
          advance();
        if (!skipBlock())
          return false;
        continue;
      }
      if (cur().isIdent("global")) {
        advance(); // global
        advance(); // name
        if (cur().isPunct(':')) {
          advance();
          advance();
        }
        continue;
      }
      if (cur().isIdent("method")) {
        if (!parseMethodSignature(/*DeclareOnly=*/false))
          return false;
        if (!parseBody())
          return false;
        continue;
      }
      return fail("expected 'class', 'global' or 'method'");
    }
    return true;
  }

  bool parseBody() {
    if (!expectPunct('{'))
      return false;
    while (!cur().isPunct('}')) {
      if (cur().Kind == TokKind::Eof)
        return fail("unterminated method body");
      if (!parseStatement())
        return false;
    }
    advance(); // }
    return true;
  }

  /// Parses an optional "@ NUM" call-site label.
  bool parseOptionalLabel(uint32_t &Label) {
    Label = kNone;
    if (!cur().isPunct('@'))
      return true;
    advance();
    if (cur().Kind != TokKind::Number)
      return fail("expected number after '@'");
    Label = uint32_t(std::strtoul(cur().Text.c_str(), nullptr, 10));
    advance();
    return true;
  }

  bool parseArgs(std::vector<std::string> &Args) {
    if (!expectPunct('('))
      return false;
    if (!cur().isPunct(')')) {
      while (true) {
        std::string Arg;
        if (!expectIdent(Arg))
          return false;
        Args.push_back(Arg);
        if (!cur().isPunct(','))
          break;
        advance();
      }
    }
    return expectPunct(')');
  }

  bool parseCall(const std::string &Dst) {
    bool Virtual = cur().isIdent("vcall");
    advance(); // call / vcall
    uint32_t Label;
    if (!parseOptionalLabel(Label))
      return false;
    std::string First;
    if (!expectIdent(First))
      return false;
    std::string Second;
    bool HasDot = cur().isPunct('.');
    if (HasDot) {
      advance();
      if (!expectIdent(Second))
        return false;
    }
    std::vector<std::string> Args;
    if (!parseArgs(Args))
      return false;
    if (Virtual) {
      if (!HasDot)
        return fail("vcall requires receiver.method");
      Builder.vcall(CurrentMethod, Dst, First, Second, Args, Label);
      return true;
    }
    std::string Qual = HasDot ? First + "." + Second : First;
    Builder.call(CurrentMethod, Dst, Qual, Args, Label);
    return true;
  }

  bool parseStatement() {
    // return IDENT
    if (cur().isIdent("return")) {
      advance();
      std::string Src;
      if (!expectIdent(Src))
        return false;
      Builder.ret(CurrentMethod, Src);
      return true;
    }
    // var IDENT : TYPE
    if (cur().isIdent("var")) {
      advance();
      std::string Name, Type;
      if (!expectIdent(Name) || !expectPunct(':') || !expectIdent(Type))
        return false;
      Builder.declareLocal(CurrentMethod, Name, Type);
      return true;
    }
    // call/vcall without result
    if (cur().isIdent("call") || cur().isIdent("vcall"))
      return parseCall("");

    std::string First;
    if (!expectIdent(First))
      return false;

    // store: IDENT . FIELD = IDENT
    if (cur().isPunct('.')) {
      advance();
      std::string FieldName, Src;
      if (!expectIdent(FieldName) || !expectPunct('=') || !expectIdent(Src))
        return false;
      Builder.store(CurrentMethod, First, FieldName, Src);
      return true;
    }

    if (!expectPunct('='))
      return false;

    // IDENT = new TYPE [@ LABEL]
    if (cur().isIdent("new")) {
      advance();
      std::string Type;
      if (!expectIdent(Type))
        return false;
      std::string Label;
      if (cur().isPunct('@')) {
        advance();
        if (cur().Kind != TokKind::Ident && cur().Kind != TokKind::Number)
          return fail("expected label after '@'");
        Label = cur().Text;
        advance();
      }
      Builder.alloc(CurrentMethod, First, Type, Label);
      return true;
    }
    // IDENT = null
    if (cur().isIdent("null")) {
      advance();
      Builder.nullAssign(CurrentMethod, First);
      return true;
    }
    // IDENT = ( TYPE ) IDENT  -- cast
    if (cur().isPunct('(')) {
      advance();
      std::string Type, Src;
      if (!expectIdent(Type) || !expectPunct(')') || !expectIdent(Src))
        return false;
      Builder.cast(CurrentMethod, First, Type, Src);
      return true;
    }
    // IDENT = call/vcall ...
    if (cur().isIdent("call") || cur().isIdent("vcall"))
      return parseCall(First);

    // IDENT = IDENT [. FIELD]
    std::string Second;
    if (!expectIdent(Second))
      return false;
    if (cur().isPunct('.')) {
      advance();
      std::string FieldName;
      if (!expectIdent(FieldName))
        return false;
      Builder.load(CurrentMethod, First, Second, FieldName);
      return true;
    }
    Builder.assign(CurrentMethod, First, Second);
    return true;
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  ProgramBuilder Builder;
  MethodId CurrentMethod = kNone;
  std::string Error;
};

} // namespace

ParseResult dynsum::ir::parseProgram(std::string_view Source) {
  std::vector<Token> Tokens;
  std::string LexError;
  Lexer Lex(Source);
  if (!Lex.lex(Tokens, LexError))
    return {nullptr, LexError};
  Parser P(std::move(Tokens));
  return P.run();
}
