//===----------------------------------------------------------------------===//
///
/// \file
/// ProgramBuilder implementation.
///
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include "support/Debug.h"
#include "support/Hashing.h"

#include <cassert>

using namespace dynsum;
using namespace dynsum::ir;

ProgramBuilder::ProgramBuilder() : Prog(std::make_unique<Program>()) {}

std::unique_ptr<Program> ProgramBuilder::takeProgram() {
  return std::move(Prog);
}

TypeId ProgramBuilder::cls(std::string_view Name, std::string_view Super) {
  Symbol NameSym = Prog->name(Name);
  TypeId Existing = Prog->findClass(NameSym);
  if (Existing != kNone)
    return Existing;
  TypeId SuperId = kObjectType;
  if (!Super.empty() && Super != "Object") {
    Symbol SuperSym = Prog->name(Super);
    SuperId = Prog->findClass(SuperSym);
    if (SuperId == kNone)
      SuperId = cls(Super);
  }
  return Prog->createClass(NameSym, SuperId);
}

TypeId ProgramBuilder::typeOf(std::string_view Name) const {
  TypeId T = Prog->findClass(Prog->names().lookup(Name));
  if (T == kNone)
    fatalError("unknown class referenced in builder");
  return T;
}

TypeId ProgramBuilder::typeOrObject(std::string_view Name) const {
  if (Name.empty())
    return kObjectType;
  TypeId T = Prog->findClass(Prog->names().lookup(Name));
  return T == kNone ? kObjectType : T;
}

FieldId ProgramBuilder::field(std::string_view Name) {
  return Prog->getOrCreateField(Prog->name(Name));
}

MethodId ProgramBuilder::method(
    std::string_view QualifiedName,
    const std::vector<std::pair<std::string, std::string>> &Params) {
  size_t Dot = QualifiedName.find('.');
  TypeId Owner = kNone;
  std::string_view MethodName = QualifiedName;
  if (Dot != std::string_view::npos) {
    Owner = cls(QualifiedName.substr(0, Dot));
    MethodName = QualifiedName.substr(Dot + 1);
  }
  MethodId M = Prog->createMethod(Prog->name(MethodName), Owner);
  for (const auto &[ParamName, ParamType] : Params) {
    VarId V = var(M, ParamName);
    if (!ParamType.empty())
      declareLocal(M, ParamName, ParamType);
    Prog->method(M).Params.push_back(V);
  }
  return M;
}

VarId ProgramBuilder::global(std::string_view Name, std::string_view Type) {
  Symbol NameSym = Prog->name(Name);
  VarId Existing = Prog->findGlobal(NameSym);
  if (Existing != kNone)
    return Existing;
  return Prog->createGlobal(NameSym, typeOrObject(Type));
}

VarId ProgramBuilder::var(MethodId M, std::string_view Name) {
  Symbol NameSym = Prog->name(Name);
  VarId Global = Prog->findGlobal(NameSym);
  if (Global != kNone)
    return Global;
  uint64_t Key = packPair(M, NameSym.Id);
  auto It = Locals.find(Key);
  if (It != Locals.end())
    return It->second;
  VarId V = Prog->createLocal(NameSym, M, kObjectType);
  Locals.emplace(Key, V);
  return V;
}

void ProgramBuilder::declareLocal(MethodId M, std::string_view Name,
                                  std::string_view Type) {
  VarId V = var(M, Name);
  Prog->variable(V).DeclaredType = typeOrObject(Type);
}

AllocId ProgramBuilder::alloc(MethodId M, std::string_view Dst,
                              std::string_view Type, std::string_view Label) {
  TypeId T = cls(Type);
  Symbol LabelSym = Label.empty() ? Symbol{} : Prog->name(Label);
  AllocId A = Prog->createAllocSite(T, M, LabelSym);
  Statement S;
  S.Kind = StmtKind::Alloc;
  S.Dst = var(M, Dst);
  S.Type = T;
  S.Alloc = A;
  Prog->addStatement(M, std::move(S));
  return A;
}

void ProgramBuilder::nullAssign(MethodId M, std::string_view Dst) {
  Statement S;
  S.Kind = StmtKind::Null;
  S.Dst = var(M, Dst);
  S.Alloc = Prog->createNullAlloc(M);
  Prog->addStatement(M, std::move(S));
}

void ProgramBuilder::assign(MethodId M, std::string_view Dst,
                            std::string_view Src) {
  Statement S;
  S.Kind = StmtKind::Assign;
  S.Dst = var(M, Dst);
  S.Src = var(M, Src);
  Prog->addStatement(M, std::move(S));
}

CastSiteId ProgramBuilder::cast(MethodId M, std::string_view Dst,
                                std::string_view Type, std::string_view Src) {
  TypeId T = cls(Type);
  Statement S;
  S.Kind = StmtKind::Cast;
  S.Dst = var(M, Dst);
  S.Src = var(M, Src);
  S.Type = T;
  S.Cast = Prog->createCastSite(M, S.Src, T);
  CastSiteId Id = S.Cast;
  Prog->addStatement(M, std::move(S));
  return Id;
}

void ProgramBuilder::load(MethodId M, std::string_view Dst,
                          std::string_view Base, std::string_view FieldName) {
  Statement S;
  S.Kind = StmtKind::Load;
  S.Dst = var(M, Dst);
  S.Base = var(M, Base);
  S.FieldLabel = field(FieldName);
  Prog->addStatement(M, std::move(S));
}

void ProgramBuilder::store(MethodId M, std::string_view Base,
                           std::string_view FieldName, std::string_view Src) {
  Statement S;
  S.Kind = StmtKind::Store;
  S.Base = var(M, Base);
  S.FieldLabel = field(FieldName);
  S.Src = var(M, Src);
  Prog->addStatement(M, std::move(S));
}

CallSiteId ProgramBuilder::call(MethodId M, std::string_view Dst,
                                std::string_view CalleeQualifiedName,
                                const std::vector<std::string> &Args,
                                uint32_t Label) {
  size_t Dot = CalleeQualifiedName.find('.');
  MethodId Callee = kNone;
  if (Dot != std::string_view::npos) {
    TypeId Owner =
        Prog->findClass(Prog->names().lookup(CalleeQualifiedName.substr(0, Dot)));
    if (Owner == kNone)
      fatalError("direct call to method of unknown class");
    Callee = Prog->findMethod(
        Owner, Prog->names().lookup(CalleeQualifiedName.substr(Dot + 1)));
  } else {
    Callee =
        Prog->findFreeMethod(Prog->names().lookup(CalleeQualifiedName));
  }
  if (Callee == kNone)
    fatalError("direct call to undeclared method");
  Statement S;
  S.Kind = StmtKind::Call;
  S.Dst = Dst.empty() ? kNone : var(M, Dst);
  S.Callee = Callee;
  S.Call = Prog->createCallSite(M, Label);
  for (const std::string &Arg : Args)
    S.Args.push_back(var(M, Arg));
  CallSiteId Id = S.Call;
  Prog->addStatement(M, std::move(S));
  return Id;
}

CallSiteId ProgramBuilder::vcall(MethodId M, std::string_view Dst,
                                 std::string_view Recv,
                                 std::string_view MethodName,
                                 const std::vector<std::string> &Args,
                                 uint32_t Label) {
  Statement S;
  S.Kind = StmtKind::Call;
  S.IsVirtual = true;
  S.Dst = Dst.empty() ? kNone : var(M, Dst);
  S.Base = var(M, Recv);
  S.VirtualName = Prog->name(MethodName);
  S.Call = Prog->createCallSite(M, Label);
  S.Args.push_back(S.Base); // receiver is the first argument
  for (const std::string &Arg : Args)
    S.Args.push_back(var(M, Arg));
  CallSiteId Id = S.Call;
  Prog->addStatement(M, std::move(S));
  return Id;
}

void ProgramBuilder::ret(MethodId M, std::string_view Src) {
  Statement S;
  S.Kind = StmtKind::Return;
  S.Src = var(M, Src);
  Prog->addStatement(M, std::move(S));
}
