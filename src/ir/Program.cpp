//===----------------------------------------------------------------------===//
///
/// \file
/// Program model implementation: hierarchy maintenance, dispatch, CHA.
///
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include "support/Debug.h"

#include <algorithm>
#include <cassert>

using namespace dynsum;
using namespace dynsum::ir;

Program::Program() {
  // The implicit root class.
  ClassType Root;
  Root.Name = Names.intern("Object");
  Root.Id = kObjectType;
  Root.Super = kNone;
  Classes.push_back(Root);
}

TypeId Program::createClass(Symbol ClassName, TypeId Super) {
  assert(findClass(ClassName) == kNone && "duplicate class name");
  assert(Super < Classes.size() && "unknown superclass");
  TypeId Id = TypeId(Classes.size());
  ClassType C;
  C.Name = ClassName;
  C.Id = Id;
  C.Super = Super;
  Classes.push_back(C);
  Classes[Super].Subclasses.push_back(Id);
  return Id;
}

FieldId Program::getOrCreateField(Symbol FieldName) {
  for (const Field &F : Fields)
    if (F.Name == FieldName)
      return F.Id;
  Field F;
  F.Name = FieldName;
  F.Id = FieldId(Fields.size());
  Fields.push_back(F);
  return F.Id;
}

MethodId Program::createMethod(Symbol MethodName, TypeId Owner) {
  assert((Owner == kNone || Owner < Classes.size()) && "unknown owner class");
  Method M;
  M.Name = MethodName;
  M.Id = MethodId(Methods.size());
  M.Owner = Owner;
  Methods.push_back(std::move(M));
  if (Owner != kNone)
    Classes[Owner].Methods.push_back(Methods.back().Id);
  return Methods.back().Id;
}

VarId Program::createLocal(Symbol VarName, MethodId Owner,
                           TypeId DeclaredType) {
  assert(Owner < Methods.size() && "local without owning method");
  Variable V;
  V.Name = VarName;
  V.Id = VarId(Variables.size());
  V.Owner = Owner;
  V.DeclaredType = DeclaredType;
  V.IsGlobal = false;
  Variables.push_back(V);
  return V.Id;
}

VarId Program::createGlobal(Symbol VarName, TypeId DeclaredType) {
  assert(findGlobal(VarName) == kNone && "duplicate global name");
  Variable V;
  V.Name = VarName;
  V.Id = VarId(Variables.size());
  V.Owner = kNone;
  V.DeclaredType = DeclaredType;
  V.IsGlobal = true;
  Variables.push_back(V);
  return V.Id;
}

AllocId Program::createAllocSite(TypeId Type, MethodId Owner, Symbol Label) {
  AllocSite A;
  A.Id = AllocId(Allocs.size());
  A.Type = Type;
  A.Owner = Owner;
  A.Label = Label;
  Allocs.push_back(A);
  return A.Id;
}

CallSiteId Program::createCallSite(MethodId Caller, uint32_t Label) {
  CallSite S;
  S.Id = CallSiteId(CallSites.size());
  S.Caller = Caller;
  S.Label = Label;
  CallSites.push_back(S);
  return S.Id;
}

CastSiteId Program::createCastSite(MethodId Owner, VarId Source,
                                   TypeId Target) {
  CastSite C;
  C.Id = CastSiteId(CastSites.size());
  C.Owner = Owner;
  C.Source = Source;
  C.Target = Target;
  CastSites.push_back(C);
  return C.Id;
}

AllocId Program::createNullAlloc(MethodId Owner) {
  AllocSite A;
  A.Id = AllocId(Allocs.size());
  A.Type = kObjectType;
  A.Owner = Owner;
  A.Label = Names.intern("null");
  A.IsNull = true;
  Allocs.push_back(A);
  return A.Id;
}

void Program::addStatement(MethodId M, Statement S) {
  assert(M < Methods.size() && "statement outside any method");
  Methods[M].Stmts.push_back(std::move(S));
}

TypeId Program::findClass(Symbol ClassName) const {
  for (const ClassType &C : Classes)
    if (C.Name == ClassName)
      return C.Id;
  return kNone;
}

MethodId Program::findMethod(TypeId Owner, Symbol MethodName) const {
  if (Owner == kNone || Owner >= Classes.size())
    return kNone;
  for (MethodId M : Classes[Owner].Methods)
    if (Methods[M].Name == MethodName)
      return M;
  return kNone;
}

MethodId Program::findFreeMethod(Symbol MethodName) const {
  for (const Method &M : Methods)
    if (M.Owner == kNone && M.Name == MethodName)
      return M.Id;
  return kNone;
}

VarId Program::findGlobal(Symbol VarName) const {
  for (const Variable &V : Variables)
    if (V.IsGlobal && V.Name == VarName)
      return V.Id;
  return kNone;
}

MethodId Program::dispatch(TypeId Receiver, Symbol MethodName) const {
  for (TypeId T = Receiver; T != kNone; T = Classes[T].Super) {
    MethodId M = findMethod(T, MethodName);
    if (M != kNone)
      return M;
  }
  return kNone;
}

bool Program::isSubtypeOf(TypeId Sub, TypeId Super) const {
  for (TypeId T = Sub; T != kNone; T = Classes[T].Super)
    if (T == Super)
      return true;
  return false;
}

std::vector<MethodId> Program::chaTargets(TypeId ReceiverType,
                                          Symbol MethodName) const {
  std::vector<MethodId> Targets;
  // Walk the subtree rooted at the receiver's declared type; each class
  // in it is a possible dynamic type, so collect its dispatch result.
  std::vector<TypeId> Work{ReceiverType};
  while (!Work.empty()) {
    TypeId T = Work.back();
    Work.pop_back();
    MethodId M = dispatch(T, MethodName);
    if (M != kNone &&
        std::find(Targets.begin(), Targets.end(), M) == Targets.end())
      Targets.push_back(M);
    for (TypeId Sub : Classes[T].Subclasses)
      Work.push_back(Sub);
  }
  std::sort(Targets.begin(), Targets.end());
  return Targets;
}

std::string Program::describeVar(VarId Id) const {
  const Variable &V = variable(Id);
  std::string Out;
  if (V.IsGlobal) {
    Out = "G.";
    Out += Names.text(V.Name);
    return Out;
  }
  Out = std::string(Names.text(V.Name));
  Out += '@';
  Out += describeMethod(V.Owner);
  return Out;
}

std::string Program::describeAlloc(AllocId Id) const {
  const AllocSite &A = alloc(Id);
  if (A.IsNull)
    return "null";
  std::string Out;
  if (!A.Label.empty())
    Out = std::string(Names.text(A.Label));
  else
    Out = "o" + std::to_string(Id);
  Out += ':';
  Out += Names.text(classOf(A.Type).Name);
  return Out;
}

std::string Program::describeMethod(MethodId Id) const {
  const Method &M = method(Id);
  std::string Out;
  if (M.Owner != kNone) {
    Out = std::string(Names.text(classOf(M.Owner).Name));
    Out += '.';
  }
  Out += Names.text(M.Name);
  return Out;
}
