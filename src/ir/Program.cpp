//===----------------------------------------------------------------------===//
///
/// \file
/// Program model implementation: hierarchy maintenance, dispatch, CHA.
///
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include "support/Debug.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace dynsum;
using namespace dynsum::ir;

Program::Program() {
  // The implicit root class.
  ClassType Root;
  Root.Name = Names.intern("Object");
  Root.Id = kObjectType;
  Root.Super = kNone;
  Classes.push_back(Root);
  ClassByName.emplace(Root.Name.Id, kObjectType);
}

TypeId Program::createClass(Symbol ClassName, TypeId Super) {
  assert(findClass(ClassName) == kNone && "duplicate class name");
  assert(Super < Classes.size() && "unknown superclass");
  TypeId Id = TypeId(Classes.size());
  ClassType C;
  C.Name = ClassName;
  C.Id = Id;
  C.Super = Super;
  Classes.push_back(C);
  Classes[Super].Subclasses.push_back(Id);
  ClassByName.emplace(ClassName.Id, Id);
  ++StructureVersion;
  return Id;
}

FieldId Program::getOrCreateField(Symbol FieldName) {
  for (const Field &F : Fields)
    if (F.Name == FieldName)
      return F.Id;
  Field F;
  F.Name = FieldName;
  F.Id = FieldId(Fields.size());
  Fields.push_back(F);
  return F.Id;
}

MethodId Program::createMethod(Symbol MethodName, TypeId Owner) {
  assert((Owner == kNone || Owner < Classes.size()) && "unknown owner class");
  Method M;
  M.Name = MethodName;
  M.Id = MethodId(Methods.size());
  M.Owner = Owner;
  Methods.push_back(std::move(M));
  MethodId Id = Methods.back().Id;
  if (Owner != kNone) {
    Classes[Owner].Methods.push_back(Id);
    MethodByOwnerName.emplace(packPair(Owner, MethodName.Id), Id);
  } else {
    FreeMethodByName.emplace(MethodName.Id, Id);
  }
  MethodModCounts.push_back(++ModClock); // a fresh method starts dirty
  ++StructureVersion;
  return Id;
}

VarId Program::createLocal(Symbol VarName, MethodId Owner,
                           TypeId DeclaredType) {
  assert(Owner < Methods.size() && "local without owning method");
  Variable V;
  V.Name = VarName;
  V.Id = VarId(Variables.size());
  V.Owner = Owner;
  V.DeclaredType = DeclaredType;
  V.IsGlobal = false;
  Variables.push_back(V);
  return V.Id;
}

VarId Program::createGlobal(Symbol VarName, TypeId DeclaredType) {
  assert(findGlobal(VarName) == kNone && "duplicate global name");
  Variable V;
  V.Name = VarName;
  V.Id = VarId(Variables.size());
  V.Owner = kNone;
  V.DeclaredType = DeclaredType;
  V.IsGlobal = true;
  Variables.push_back(V);
  GlobalByName.emplace(VarName.Id, V.Id);
  return V.Id;
}

AllocId Program::createAllocSite(TypeId Type, MethodId Owner, Symbol Label) {
  AllocSite A;
  A.Id = AllocId(Allocs.size());
  A.Type = Type;
  A.Owner = Owner;
  A.Label = Label;
  Allocs.push_back(A);
  return A.Id;
}

CallSiteId Program::createCallSite(MethodId Caller, uint32_t Label) {
  CallSite S;
  S.Id = CallSiteId(CallSites.size());
  S.Caller = Caller;
  S.Label = Label;
  CallSites.push_back(S);
  return S.Id;
}

CastSiteId Program::createCastSite(MethodId Owner, VarId Source,
                                   TypeId Target) {
  CastSite C;
  C.Id = CastSiteId(CastSites.size());
  C.Owner = Owner;
  C.Source = Source;
  C.Target = Target;
  CastSites.push_back(C);
  return C.Id;
}

AllocId Program::createNullAlloc(MethodId Owner) {
  AllocSite A;
  A.Id = AllocId(Allocs.size());
  A.Type = kObjectType;
  A.Owner = Owner;
  A.Label = Names.intern("null");
  A.IsNull = true;
  Allocs.push_back(A);
  return A.Id;
}

void Program::addStatement(MethodId M, Statement S) {
  assert(M < Methods.size() && "statement outside any method");
  Methods[M].Stmts.push_back(std::move(S));
  touchMethod(M);
}

size_t Program::removeStatements(
    MethodId M, const std::function<bool(const Statement &)> &Pred) {
  assert(M < Methods.size() && "removal outside any method");
  std::vector<Statement> &Stmts = Methods[M].Stmts;
  size_t Before = Stmts.size();
  Stmts.erase(std::remove_if(Stmts.begin(), Stmts.end(), Pred), Stmts.end());
  size_t Removed = Before - Stmts.size();
  if (Removed > 0)
    touchMethod(M);
  return Removed;
}

void Program::touchMethod(MethodId M) {
  assert(M < Methods.size() && "touch of unknown method");
  MethodModCounts[M] = ++ModClock;
}

std::vector<MethodId> Program::methodsTouchedSince(uint64_t Clock) const {
  std::vector<MethodId> Out;
  for (MethodId M = 0; M < MethodModCounts.size(); ++M)
    if (MethodModCounts[M] > Clock)
      Out.push_back(M);
  return Out;
}

uint64_t Program::methodFingerprint(MethodId Id) const {
  const Method &M = method(Id);
  uint64_t H = 0xa3c59ac2f1e0d4b7ull;
  H = hashCombine(H, packPair(uint32_t(M.Params.size()),
                              uint32_t(M.Stmts.size())));
  for (VarId V : M.Params)
    H = hashCombine(H, V);
  for (const Statement &S : M.Stmts) {
    H = hashCombine(H, packPair(uint32_t(S.Kind), S.Dst));
    H = hashCombine(H, packPair(S.Src, S.Base));
    H = hashCombine(H, packPair(S.FieldLabel, S.Type));
    H = hashCombine(H, packPair(S.Alloc, S.Call));
    H = hashCombine(H, packPair(S.Callee, S.VirtualName.Id));
    H = hashCombine(H, uint64_t(S.IsVirtual));
    for (VarId V : S.Args)
      H = hashCombine(H, V);
  }
  return H;
}

uint64_t Program::methodInterfaceFingerprint(MethodId Id) const {
  const Method &M = method(Id);
  uint64_t H = 0x51f8b0d9ce72a681ull;
  for (VarId V : M.Params)
    H = hashCombine(H, V);
  H = hashCombine(H, 0xffffffffull); // params/returns separator
  for (const Statement &S : M.Stmts)
    if (S.Kind == StmtKind::Return)
      H = hashCombine(H, S.Src);
  return H;
}

TypeId Program::findClass(Symbol ClassName) const {
  auto It = ClassByName.find(ClassName.Id);
  return It == ClassByName.end() ? kNone : It->second;
}

MethodId Program::findMethod(TypeId Owner, Symbol MethodName) const {
  if (Owner == kNone || Owner >= Classes.size())
    return kNone;
  auto It = MethodByOwnerName.find(packPair(Owner, MethodName.Id));
  return It == MethodByOwnerName.end() ? kNone : It->second;
}

MethodId Program::findFreeMethod(Symbol MethodName) const {
  auto It = FreeMethodByName.find(MethodName.Id);
  return It == FreeMethodByName.end() ? kNone : It->second;
}

VarId Program::findGlobal(Symbol VarName) const {
  auto It = GlobalByName.find(VarName.Id);
  return It == GlobalByName.end() ? kNone : It->second;
}

MethodId Program::dispatch(TypeId Receiver, Symbol MethodName) const {
  for (TypeId T = Receiver; T != kNone; T = Classes[T].Super) {
    MethodId M = findMethod(T, MethodName);
    if (M != kNone)
      return M;
  }
  return kNone;
}

bool Program::isSubtypeOf(TypeId Sub, TypeId Super) const {
  for (TypeId T = Sub; T != kNone; T = Classes[T].Super)
    if (T == Super)
      return true;
  return false;
}

std::vector<MethodId> Program::chaTargets(TypeId ReceiverType,
                                          Symbol MethodName) const {
  std::vector<MethodId> Targets;
  // Walk the subtree rooted at the receiver's declared type; each class
  // in it is a possible dynamic type, so collect its dispatch result.
  std::vector<TypeId> Work{ReceiverType};
  while (!Work.empty()) {
    TypeId T = Work.back();
    Work.pop_back();
    MethodId M = dispatch(T, MethodName);
    if (M != kNone &&
        std::find(Targets.begin(), Targets.end(), M) == Targets.end())
      Targets.push_back(M);
    for (TypeId Sub : Classes[T].Subclasses)
      Work.push_back(Sub);
  }
  std::sort(Targets.begin(), Targets.end());
  return Targets;
}

std::string Program::describeVar(VarId Id) const {
  const Variable &V = variable(Id);
  std::string Out;
  if (V.IsGlobal) {
    Out = "G.";
    Out += Names.text(V.Name);
    return Out;
  }
  Out = std::string(Names.text(V.Name));
  Out += '@';
  Out += describeMethod(V.Owner);
  return Out;
}

std::string Program::describeAlloc(AllocId Id) const {
  const AllocSite &A = alloc(Id);
  if (A.IsNull)
    return "null";
  std::string Out;
  if (!A.Label.empty())
    Out = std::string(Names.text(A.Label));
  else
    Out = "o" + std::to_string(Id);
  Out += ':';
  Out += Names.text(classOf(A.Type).Name);
  return Out;
}

std::string Program::describeMethod(MethodId Id) const {
  const Method &M = method(Id);
  std::string Out;
  if (M.Owner != kNone) {
    Out = std::string(Names.text(classOf(M.Owner).Name));
    Out += '.';
  }
  Out += Names.text(M.Name);
  return Out;
}
