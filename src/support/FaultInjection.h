//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the chaos tests and the
/// crash-recovery smoke.
///
/// A fault *site* is a string literal compiled into the production code
/// ("commit.lower", "save.write", "query.summary", ...).  Tests arm a
/// site with a FaultSpec — throw, injected latency, torn write at byte
/// N, or simulated allocation failure — and the site fires
/// deterministically by hit count (every FireEvery-th hit, at most
/// MaxFires times).  Sites are compiled in unconditionally but cost a
/// single relaxed atomic load when nothing is armed: faultPoint() is an
/// inline branch on a global flag, and the slow path (registry lookup,
/// counter bump, the fault itself) only exists behind it.
///
/// Determinism contract: with a fixed workload and a fixed spec, the
/// *number* of fires is exact.  Under concurrency the firing thread is
/// scheduler-dependent — chaos tests therefore assert observable
/// outcomes (no crash, no torn state, answers bit-identical to a
/// fault-free twin), never which worker absorbed the fault.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_FAULTINJECTION_H
#define DYNSUM_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace dynsum {
namespace support {

enum class FaultKind : uint8_t {
  Throw,     ///< throw FaultInjectedError from the site
  Latency,   ///< sleep Param microseconds at the site
  TornWrite, ///< truncate the write at byte Param (tornWriteLimit sites)
  BadAlloc,  ///< throw std::bad_alloc from the site
};

struct FaultSpec {
  FaultKind Kind = FaultKind::Throw;
  /// Fire on every N-th hit of the site (1 = every hit).
  uint64_t FireEvery = 1;
  /// Stop firing after this many fires (the site keeps counting hits).
  uint64_t MaxFires = UINT64_MAX;
  /// Kind-specific: latency in microseconds, or torn-write byte limit.
  uint64_t Param = 0;
};

/// What an armed Throw site throws.  Deliberately a std::runtime_error
/// so production catch-sites need no fault-injection awareness.
class FaultInjectedError : public std::runtime_error {
public:
  explicit FaultInjectedError(const std::string &Site)
      : std::runtime_error("injected fault at " + Site) {}
};

namespace detail {
extern std::atomic<bool> FaultsArmedFlag;
void faultPointSlow(const char *Site);
size_t tornWriteLimitSlow(const char *Site);
} // namespace detail

/// True when any site is armed — one relaxed load, the entire cost of
/// a fault point in production.
inline bool faultsArmed() {
  return detail::FaultsArmedFlag.load(std::memory_order_relaxed);
}

/// Arms \p Site with \p Spec (replacing any previous spec for it).
void armFault(const std::string &Site, const FaultSpec &Spec);

/// Disarms every site and resets all counters.
void clearFaults();

/// Times the site was reached since the last clearFaults().
uint64_t faultHits(const std::string &Site);

/// Times the site actually fired since the last clearFaults().
uint64_t faultFires(const std::string &Site);

/// A Throw/Latency/BadAlloc fault point.  No-op unless armed.
inline void faultPoint(const char *Site) {
  if (faultsArmed())
    detail::faultPointSlow(Site);
}

/// A TornWrite fault point: the number of bytes the caller may write
/// before simulating the crash (SIZE_MAX = write everything).
inline size_t tornWriteLimit(const char *Site) {
  return faultsArmed() ? detail::tornWriteLimitSlow(Site) : SIZE_MAX;
}

} // namespace support
} // namespace dynsum

#endif // DYNSUM_SUPPORT_FAULTINJECTION_H
