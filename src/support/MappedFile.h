//===----------------------------------------------------------------------===//
///
/// \file
/// Read-only memory-mapped file with a heap fallback.
///
/// The summary disk tier serves probe misses straight out of the .dsum
/// file, so the file must be addressable as one contiguous byte range
/// without reading it all up front.  On POSIX that is mmap(PROT_READ,
/// MAP_PRIVATE): pages fault in lazily, stay clean, and the kernel
/// evicts them under pressure — a cold restart touches only the records
/// the first queries actually probe.  Where mmap is unavailable (or
/// fails), the file is read into a private heap buffer instead; callers
/// see the same bytes() view either way, just without the laziness.
///
/// The mapping is immutable and the class is move-only; concurrent
/// readers need no synchronization.  A file that shrinks or is
/// rewritten in place underneath a live mapping is undefined behavior
/// at the OS level — the summary save path never does that (it
/// publishes by atomic rename, so an open mapping keeps the old inode
/// alive untouched).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_MAPPEDFILE_H
#define DYNSUM_SUPPORT_MAPPEDFILE_H

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace dynsum {
namespace support {

/// A read-only view of one file's bytes, mmap'd when possible.
class MappedFile {
public:
  MappedFile() = default;

  MappedFile(MappedFile &&Other) noexcept { *this = std::move(Other); }

  MappedFile &operator=(MappedFile &&Other) noexcept {
    if (this != &Other) {
      reset();
      Base = Other.Base;
      Size = Other.Size;
      Heap = std::move(Other.Heap);
      Other.Base = nullptr;
      Other.Size = 0;
    }
    return *this;
  }

  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;

  ~MappedFile() { reset(); }

  /// Maps \p Path read-only.  False (with \p Error set when non-null)
  /// when the file cannot be opened or read; an empty file maps
  /// successfully to an empty view.
  bool map(const std::string &Path, std::string *Error = nullptr) {
    reset();
#ifndef _WIN32
    int Fd = ::open(Path.c_str(), O_RDONLY);
    if (Fd < 0) {
      if (Error)
        *Error = "cannot open " + Path;
      return false;
    }
    struct stat St;
    if (::fstat(Fd, &St) != 0) {
      ::close(Fd);
      if (Error)
        *Error = "cannot stat " + Path;
      return false;
    }
    if (St.st_size == 0) { // zero-length mmap is EINVAL; an empty view is fine
      ::close(Fd);
      Mapped = true;
      return true;
    }
    void *P = ::mmap(nullptr, size_t(St.st_size), PROT_READ, MAP_PRIVATE, Fd,
                     0);
    ::close(Fd);
    if (P != MAP_FAILED) {
      Base = static_cast<const char *>(P);
      Size = size_t(St.st_size);
      Mapped = true;
      return true;
    }
    // mmap refused (unusual filesystem, resource limits): fall through
    // to the heap path — same bytes, eager instead of lazy.
#endif
    return readIntoHeap(Path, Error);
  }

  bool valid() const { return Mapped || !Heap.empty() || Base; }

  /// The file's bytes.  Stable for the lifetime of this object.
  std::string_view bytes() const {
    if (Base)
      return std::string_view(Base, Size);
    return Heap;
  }

private:
  bool readIntoHeap(const std::string &Path, std::string *Error) {
    std::FILE *F = std::fopen(Path.c_str(), "rb");
    if (!F) {
      if (Error)
        *Error = "cannot open " + Path;
      return false;
    }
    char Chunk[65536];
    size_t N = 0;
    while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
      Heap.append(Chunk, N);
    bool Ok = std::ferror(F) == 0;
    std::fclose(F);
    if (!Ok) {
      Heap.clear();
      if (Error)
        *Error = "read error on " + Path;
      return false;
    }
    Mapped = true; // heap-backed, but valid
    return true;
  }

  void reset() {
#ifndef _WIN32
    if (Base)
      ::munmap(const_cast<char *>(Base), Size);
#endif
    Base = nullptr;
    Size = 0;
    Heap.clear();
    Mapped = false;
  }

  const char *Base = nullptr; ///< mmap'd range (null when heap-backed)
  size_t Size = 0;
  std::string Heap; ///< fallback storage when mmap is unavailable
  bool Mapped = false;
};

} // namespace support
} // namespace dynsum

#endif // DYNSUM_SUPPORT_MAPPEDFILE_H
