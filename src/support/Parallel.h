//===----------------------------------------------------------------------===//
///
/// \file
/// Fork-join helpers for the commit pipeline and other data-parallel
/// phases.
///
/// The model is deliberately minimal: a phase splits a dense index
/// range into one contiguous chunk per worker, spawns plain
/// std::threads for the extra workers, runs the first chunk inline and
/// joins.  Thread spawn cost (~tens of microseconds) is negligible
/// against the millisecond-scale phases these shard (graph clones,
/// fingerprint sweeps, partitioned CSR repacks); keeping no persistent
/// pool keeps every call-site self-contained and trivially
/// exception/lifetime-safe.
///
/// Determinism contract: chunking depends only on (N, Threads), never
/// on scheduling, so any phase whose chunks write disjoint state
/// produces identical results at every thread count.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_PARALLEL_H
#define DYNSUM_SUPPORT_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace dynsum {

/// Clamps a worker-count request to something the OS can deliver
/// (0 = one per hardware thread; negative inputs arrive as huge
/// unsigneds and are capped too).
inline unsigned clampThreads(unsigned Requested) {
  constexpr unsigned kMaxThreads = 256;
  unsigned T = Requested;
  if (T == 0) {
    T = std::thread::hardware_concurrency();
    if (T == 0)
      T = 1;
  }
  return T > kMaxThreads ? kMaxThreads : T;
}

/// Runs \p F(Begin, End, Worker) over [0, N) split into at most
/// \p Threads contiguous chunks.  Worker indices are dense in
/// [0, workers-used); chunk boundaries depend only on (N, Threads).
/// With one thread (or N <= 1) everything runs inline on the caller.
template <typename Fn>
void parallelChunks(size_t N, unsigned Threads, Fn &&F) {
  Threads = clampThreads(Threads);
  if (N == 0)
    return;
  if (Threads > N)
    Threads = unsigned(N);
  size_t Chunk = (N + Threads - 1) / Threads;
  if (Threads <= 1) {
    F(size_t(0), N, 0u);
    return;
  }
  std::vector<std::thread> Workers;
  Workers.reserve(Threads - 1);
  for (unsigned W = 1; W < Threads; ++W) {
    size_t Begin = size_t(W) * Chunk;
    if (Begin >= N)
      break;
    size_t End = Begin + Chunk < N ? Begin + Chunk : N;
    Workers.emplace_back([&F, Begin, End, W] { F(Begin, End, W); });
  }
  F(size_t(0), Chunk < N ? Chunk : N, 0u);
  for (std::thread &T : Workers)
    T.join();
}

/// Runs a small fixed set of independent jobs (e.g. "copy this member
/// array") across up to \p Threads workers.  Unlike parallelChunks,
/// jobs are claimed dynamically (an atomic cursor), because job costs
/// are typically lopsided; each job runs exactly once.  Jobs must write
/// disjoint state.
template <typename JobFn>
void parallelJobs(size_t NumJobs, unsigned Threads, JobFn &&Job) {
  Threads = clampThreads(Threads);
  if (Threads > NumJobs)
    Threads = unsigned(NumJobs);
  if (Threads <= 1) {
    for (size_t I = 0; I < NumJobs; ++I)
      Job(I);
    return;
  }
  std::atomic<size_t> Next{0};
  auto Drain = [&Next, &Job, NumJobs] {
    for (size_t I; (I = Next.fetch_add(1, std::memory_order_relaxed)) <
                   NumJobs;)
      Job(I);
  };
  std::vector<std::thread> Workers;
  Workers.reserve(Threads - 1);
  for (unsigned W = 1; W < Threads; ++W)
    Workers.emplace_back(Drain);
  Drain();
  for (std::thread &T : Workers)
    T.join();
}

} // namespace dynsum

#endif // DYNSUM_SUPPORT_PARALLEL_H
