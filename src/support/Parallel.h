//===----------------------------------------------------------------------===//
///
/// \file
/// Fork-join helpers for the commit pipeline and other data-parallel
/// phases.
///
/// The model is deliberately minimal: a phase splits a dense index
/// range into one contiguous chunk per worker, spawns plain
/// std::threads for the extra workers, runs the first chunk inline and
/// joins.  Thread spawn cost (~tens of microseconds) is negligible
/// against the millisecond-scale phases these shard (graph clones,
/// fingerprint sweeps, partitioned CSR repacks); keeping no persistent
/// pool keeps every call-site self-contained and trivially
/// exception/lifetime-safe.
///
/// Determinism contract: chunking depends only on (N, Threads), never
/// on scheduling, so any phase whose chunks write disjoint state
/// produces identical results at every thread count.
///
/// Exception contract: a throw inside a worker is captured, every
/// worker is still joined, and the first captured exception is
/// rethrown on the calling thread — a failed phase never terminates
/// the process and never leaks a running thread.  The phase's partial
/// writes are the caller's problem (the commit pipeline abandons the
/// half-built generation).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_PARALLEL_H
#define DYNSUM_SUPPORT_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace dynsum {

/// Clamps a worker-count request to something the OS can deliver
/// (0 = one per hardware thread; negative inputs arrive as huge
/// unsigneds and are capped too).
inline unsigned clampThreads(unsigned Requested) {
  constexpr unsigned kMaxThreads = 256;
  unsigned T = Requested;
  if (T == 0) {
    T = std::thread::hardware_concurrency();
    if (T == 0)
      T = 1;
  }
  return T > kMaxThreads ? kMaxThreads : T;
}

namespace support {
namespace detail {

/// First-exception capture shared by the fork-join helpers: workers
/// race to claim the slot, the winner stores its exception, and the
/// join (or pool barrier) publishes it to the caller.
struct FirstException {
  std::atomic<bool> Claimed{false};
  std::exception_ptr Error;

  template <typename Fn> void guard(Fn &&F) {
    try {
      F();
    } catch (...) {
      if (!Claimed.exchange(true, std::memory_order_acq_rel))
        Error = std::current_exception();
    }
  }

  /// Call after every worker has been joined / passed the barrier.
  void rethrow() {
    if (Claimed.load(std::memory_order_acquire) && Error)
      std::rethrow_exception(Error);
  }
};

} // namespace detail
} // namespace support

/// Runs \p F(Begin, End, Worker) over [0, N) split into at most
/// \p Threads contiguous chunks.  Worker indices are dense in
/// [0, workers-used); chunk boundaries depend only on (N, Threads).
/// With one thread (or N <= 1) everything runs inline on the caller.
template <typename Fn>
void parallelChunks(size_t N, unsigned Threads, Fn &&F) {
  Threads = clampThreads(Threads);
  if (N == 0)
    return;
  if (Threads > N)
    Threads = unsigned(N);
  size_t Chunk = (N + Threads - 1) / Threads;
  if (Threads <= 1) {
    F(size_t(0), N, 0u);
    return;
  }
  support::detail::FirstException Err;
  std::vector<std::thread> Workers;
  Workers.reserve(Threads - 1);
  for (unsigned W = 1; W < Threads; ++W) {
    size_t Begin = size_t(W) * Chunk;
    if (Begin >= N)
      break;
    size_t End = Begin + Chunk < N ? Begin + Chunk : N;
    Workers.emplace_back([&F, &Err, Begin, End, W] {
      Err.guard([&] { F(Begin, End, W); });
    });
  }
  Err.guard([&] { F(size_t(0), Chunk < N ? Chunk : N, 0u); });
  for (std::thread &T : Workers)
    T.join();
  Err.rethrow();
}

/// Runs a small fixed set of independent jobs (e.g. "copy this member
/// array") across up to \p Threads workers.  Unlike parallelChunks,
/// jobs are claimed dynamically (an atomic cursor), because job costs
/// are typically lopsided; each job runs exactly once.  Jobs must write
/// disjoint state.
template <typename JobFn>
void parallelJobs(size_t NumJobs, unsigned Threads, JobFn &&Job) {
  Threads = clampThreads(Threads);
  if (Threads > NumJobs)
    Threads = unsigned(NumJobs);
  if (Threads <= 1) {
    for (size_t I = 0; I < NumJobs; ++I)
      Job(I);
    return;
  }
  std::atomic<size_t> Next{0};
  support::detail::FirstException Err;
  auto Drain = [&Next, &Job, &Err, NumJobs] {
    for (size_t I; (I = Next.fetch_add(1, std::memory_order_relaxed)) <
                   NumJobs;) {
      if (Err.Claimed.load(std::memory_order_relaxed))
        return; // fail fast: stop claiming jobs once one has thrown
      Err.guard([&] { Job(I); });
    }
  };
  std::vector<std::thread> Workers;
  Workers.reserve(Threads - 1);
  for (unsigned W = 1; W < Threads; ++W)
    Workers.emplace_back(Drain);
  Drain();
  for (std::thread &T : Workers)
    T.join();
  Err.rethrow();
}

} // namespace dynsum

#endif // DYNSUM_SUPPORT_PARALLEL_H
