//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal --flag=value command-line parser for examples and benches.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_COMMANDLINE_H
#define DYNSUM_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dynsum {

/// Parses "--name=value" and bare positional arguments.  Unknown flags
/// are collected rather than rejected so harnesses can share argv with
/// other libraries (e.g. google-benchmark).
class CommandLine {
public:
  CommandLine(int Argc, const char *const *Argv);

  /// Returns flag \p Name's value or \p Default when absent.
  std::string getString(const std::string &Name,
                        const std::string &Default) const;

  /// Returns flag \p Name parsed as an integer, or \p Default.
  int64_t getInt(const std::string &Name, int64_t Default) const;

  /// Returns flag \p Name parsed as a double, or \p Default.
  double getDouble(const std::string &Name, double Default) const;

  /// True when "--name" or "--name=..." was present.
  bool has(const std::string &Name) const { return Flags.count(Name) != 0; }

  /// Every value of a repeatable flag, in command-line order (the map
  /// accessors above return only the first occurrence).
  std::vector<std::string> getAll(const std::string &Name) const;

  const std::vector<std::string> &positional() const { return Positional; }

private:
  std::map<std::string, std::string> Flags;
  /// All (flag, value) pairs in order, for repeatable flags.
  std::vector<std::pair<std::string, std::string>> Ordered;
  std::vector<std::string> Positional;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_COMMANDLINE_H
