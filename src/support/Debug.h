//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion and debugging helpers shared by every DynSum library.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_DEBUG_H
#define DYNSUM_SUPPORT_DEBUG_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace dynsum {

/// Marks a point in the program that is provably unreachable when the
/// library's invariants hold.  Aborts with \p Msg in all build modes; this
/// is a programmer-error trap, not a recoverable condition.
[[noreturn]] inline void unreachable(const char *Msg) {
  std::fprintf(stderr, "dynsum fatal: unreachable reached: %s\n", Msg);
  std::abort();
}

/// Reports an unrecoverable usage error (malformed input that the caller
/// should have validated) and aborts.
[[noreturn]] inline void fatalError(const char *Msg) {
  std::fprintf(stderr, "dynsum fatal: %s\n", Msg);
  std::abort();
}

} // namespace dynsum

#endif // DYNSUM_SUPPORT_DEBUG_H
