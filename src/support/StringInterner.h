//===----------------------------------------------------------------------===//
///
/// \file
/// Uniques strings to dense 32-bit symbol ids.
///
/// Names of classes, fields, methods and variables are interned once so
/// that the rest of the system compares and hashes 4-byte ids instead of
/// strings.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_STRINGINTERNER_H
#define DYNSUM_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dynsum {

/// A dense id naming an interned string.  Id 0 is the empty string in any
/// interner, so value-initialized symbols are valid and "empty".
struct Symbol {
  uint32_t Id = 0;

  bool empty() const { return Id == 0; }
  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }
};

/// Bidirectional string <-> Symbol table.
class StringInterner {
public:
  StringInterner();

  /// Returns the unique symbol for \p Text, creating it on first use.
  Symbol intern(std::string_view Text);

  /// Returns the symbol for \p Text, or the empty symbol when \p Text has
  /// never been interned.  Never allocates.
  Symbol lookup(std::string_view Text) const;

  /// Returns the text of \p Sym.  \p Sym must come from this interner.
  std::string_view text(Symbol Sym) const;

  /// Number of distinct strings interned (including the empty string).
  size_t size() const { return Texts.size(); }

private:
  std::unordered_map<std::string, uint32_t> Ids;
  std::vector<std::string_view> Texts; // views into Ids' stable keys
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_STRINGINTERNER_H
