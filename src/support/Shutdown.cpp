//===----------------------------------------------------------------------===//
///
/// \file
/// Shutdown-signal plumbing implementation (see Shutdown.h).
///
//===----------------------------------------------------------------------===//

#include "support/Shutdown.h"

#include <atomic>
#include <csignal>
#include <fcntl.h>
#include <unistd.h>

using namespace dynsum;

namespace {

/// The signal that requested shutdown; 0 = none.  Lock-free so the
/// handler may store it.
std::atomic<int> RequestedSignal{0};

/// Self-pipe: the handler writes one byte to [1] so a poll() on [0]
/// wakes even when the signal lands on a thread that is not the one
/// blocked in the front end's read.
int WakePipe[2] = {-1, -1};

void onShutdownSignal(int Sig) {
  RequestedSignal.store(Sig, std::memory_order_relaxed);
  if (WakePipe[1] >= 0) {
    char Byte = 1;
    // The pipe is non-blocking; a full pipe just means earlier wakeups
    // are still pending, which is as good as this one.
    ssize_t Ignored = ::write(WakePipe[1], &Byte, 1);
    (void)Ignored;
  }
}

} // namespace

bool support::installShutdownHandlers() {
  static bool Installed = false;
  if (Installed)
    return true;
  if (WakePipe[0] < 0) {
    if (::pipe(WakePipe) != 0)
      return false;
    for (int Fd : WakePipe) {
      ::fcntl(Fd, F_SETFL, O_NONBLOCK);
      ::fcntl(Fd, F_SETFD, FD_CLOEXEC);
    }
  }
  struct sigaction SA;
  SA.sa_handler = onShutdownSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART: blocking reads must return EINTR
  if (sigaction(SIGINT, &SA, nullptr) != 0 ||
      sigaction(SIGTERM, &SA, nullptr) != 0)
    return false;
  // A peer that disconnects mid-response must surface as EPIPE on the
  // write, never as a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  Installed = true;
  return true;
}

bool support::shutdownRequested() {
  return RequestedSignal.load(std::memory_order_relaxed) != 0;
}

int support::shutdownSignal() {
  return RequestedSignal.load(std::memory_order_relaxed);
}

int support::shutdownWakeFd() { return WakePipe[0]; }

void support::resetShutdownRequest() {
  RequestedSignal.store(0, std::memory_order_relaxed);
  if (WakePipe[0] >= 0) {
    char Drain[16];
    while (::read(WakePipe[0], Drain, sizeof(Drain)) > 0) {
    }
  }
}
