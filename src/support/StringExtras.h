//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny string helpers the repo needs pre-C++20 (no
/// string_view::starts_with/ends_with in C++17).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_STRINGEXTRAS_H
#define DYNSUM_SUPPORT_STRINGEXTRAS_H

#include <string_view>

namespace dynsum {

/// True when \p S begins with \p Prefix.
inline bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

/// True when \p S ends with \p Suffix.
inline bool endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

} // namespace dynsum

#endif // DYNSUM_SUPPORT_STRINGEXTRAS_H
