//===----------------------------------------------------------------------===//
///
/// \file
/// Flat open-addressing set of 64-bit keys with O(1) epoch clearing.
///
/// The PPTA hot loop marks every traversal state (node, field-stack,
/// state) exactly once per compute() call.  An std::unordered_set
/// allocates a node per insert and chases a bucket pointer per probe;
/// this table keeps all slots in one contiguous array (linear probing,
/// power-of-two capacity) and clears by bumping an epoch counter instead
/// of touching memory, so one table is reused across millions of
/// compute() calls without ever freeing its storage.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_FLATSET_H
#define DYNSUM_SUPPORT_FLATSET_H

#include "support/Hashing.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dynsum {

/// Open-addressing hash set of uint64_t keys.  Any key value is valid
/// (slot emptiness is tracked by a per-slot epoch, not a sentinel key).
class FlatU64Set {
public:
  FlatU64Set() { rehash(kMinCapacity); }

  /// Inserts \p Key; returns true when it was not present.  Duplicate
  /// inserts (the common case in the PPTA visited check) never grow
  /// the table.
  bool insert(uint64_t Key) {
    size_t I = probe(Key);
    if (Epochs[I] == CurrentEpoch)
      return false; // probe() stopped on a live slot holding Key
    if ((NumEntries + 1) * 4 >= Capacity * 3) { // load factor 3/4
      rehash(Capacity * 2);
      I = probe(Key);
    }
    Keys[I] = Key;
    Epochs[I] = CurrentEpoch;
    ++NumEntries;
    return true;
  }

  /// True when \p Key is in the set.
  bool contains(uint64_t Key) const {
    return Epochs[probe(Key)] == CurrentEpoch;
  }

  /// Empties the set in O(1) by invalidating every slot's epoch.  The
  /// capacity (and therefore the absence of rehashes on refill) is kept.
  void clear() {
    NumEntries = 0;
    if (++CurrentEpoch == 0) { // epoch wrapped: slots look live again
      std::fill(Epochs.begin(), Epochs.end(), uint32_t(0));
      CurrentEpoch = 1;
    }
  }

  /// Grows the table so \p N keys fit without rehashing.
  void reserve(size_t N) {
    size_t Needed = kMinCapacity;
    while (N * 4 >= Needed * 3)
      Needed *= 2;
    if (Needed > Capacity)
      rehash(Needed);
  }

  size_t size() const { return NumEntries; }
  bool empty() const { return NumEntries == 0; }
  size_t capacity() const { return Capacity; }

  /// Calls \p Fn(key) for every live key, in unspecified order.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t I = 0; I < Capacity; ++I)
      if (Epochs[I] == CurrentEpoch)
        F(Keys[I]);
  }

private:
  static constexpr size_t kMinCapacity = 64; // power of two

  /// Index of the slot holding \p Key, or of the first dead slot in its
  /// probe sequence.  The load factor cap guarantees a dead slot exists.
  size_t probe(uint64_t Key) const {
    size_t Mask = Capacity - 1;
    size_t I = size_t(hashMix(Key)) & Mask;
    while (Epochs[I] == CurrentEpoch && Keys[I] != Key)
      I = (I + 1) & Mask;
    return I;
  }

  void rehash(size_t NewCapacity) {
    std::vector<uint64_t> OldKeys = std::move(Keys);
    std::vector<uint32_t> OldEpochs = std::move(Epochs);
    size_t OldCapacity = Capacity;
    Capacity = NewCapacity;
    Keys.assign(Capacity, 0);
    Epochs.assign(Capacity, 0);
    uint32_t OldEpoch = CurrentEpoch;
    CurrentEpoch = 1;
    NumEntries = 0;
    for (size_t I = 0; I < OldCapacity; ++I)
      if (OldEpochs[I] == OldEpoch)
        insert(OldKeys[I]);
  }

  std::vector<uint64_t> Keys;
  std::vector<uint32_t> Epochs;
  size_t Capacity = 0;
  size_t NumEntries = 0;
  uint32_t CurrentEpoch = 1;
};

/// Open-addressing set of (uint64_t, uint32_t) pairs with the same
/// epoch-clearing discipline as FlatU64Set.  Used for the Algorithm 4
/// worklist de-dup, whose key is a 64-bit summary key plus a 32-bit
/// context id — one flat probe instead of a map-of-sets with a node
/// allocation per state.
class FlatPairSet {
public:
  FlatPairSet() { rehash(kMinCapacity); }

  /// Inserts (\p Key, \p Ctx); returns true when it was not present.
  /// Duplicate inserts never grow the table.
  bool insert(uint64_t Key, uint32_t Ctx) {
    size_t I = probe(Key, Ctx);
    if (Epochs[I] == CurrentEpoch)
      return false;
    if ((NumEntries + 1) * 4 >= Capacity * 3) {
      rehash(Capacity * 2);
      I = probe(Key, Ctx);
    }
    Keys[I] = Key;
    Ctxs[I] = Ctx;
    Epochs[I] = CurrentEpoch;
    ++NumEntries;
    return true;
  }

  bool contains(uint64_t Key, uint32_t Ctx) const {
    return Epochs[probe(Key, Ctx)] == CurrentEpoch;
  }

  /// Empties the set in O(1); keeps capacity.
  void clear() {
    NumEntries = 0;
    if (++CurrentEpoch == 0) {
      std::fill(Epochs.begin(), Epochs.end(), uint32_t(0));
      CurrentEpoch = 1;
    }
  }

  size_t size() const { return NumEntries; }
  bool empty() const { return NumEntries == 0; }
  size_t capacity() const { return Capacity; }

private:
  static constexpr size_t kMinCapacity = 64;

  size_t probe(uint64_t Key, uint32_t Ctx) const {
    size_t Mask = Capacity - 1;
    size_t I = size_t(hashMix(Key + 0x9e3779b97f4a7c15ull * Ctx)) & Mask;
    while (Epochs[I] == CurrentEpoch &&
           (Keys[I] != Key || Ctxs[I] != Ctx))
      I = (I + 1) & Mask;
    return I;
  }

  void rehash(size_t NewCapacity) {
    std::vector<uint64_t> OldKeys = std::move(Keys);
    std::vector<uint32_t> OldCtxs = std::move(Ctxs);
    std::vector<uint32_t> OldEpochs = std::move(Epochs);
    size_t OldCapacity = Capacity;
    Capacity = NewCapacity;
    Keys.assign(Capacity, 0);
    Ctxs.assign(Capacity, 0);
    Epochs.assign(Capacity, 0);
    uint32_t OldEpoch = CurrentEpoch;
    CurrentEpoch = 1;
    NumEntries = 0;
    for (size_t I = 0; I < OldCapacity; ++I)
      if (OldEpochs[I] == OldEpoch)
        insert(OldKeys[I], OldCtxs[I]);
  }

  std::vector<uint64_t> Keys;
  std::vector<uint32_t> Ctxs;
  std::vector<uint32_t> Epochs;
  size_t Capacity = 0;
  size_t NumEntries = 0;
  uint32_t CurrentEpoch = 1;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_FLATSET_H
