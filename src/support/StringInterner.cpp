//===----------------------------------------------------------------------===//
///
/// \file
/// StringInterner implementation.
///
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>

using namespace dynsum;

StringInterner::StringInterner() {
  Symbol Empty = intern("");
  (void)Empty;
  assert(Empty.Id == 0 && "empty string must be symbol 0");
}

Symbol StringInterner::intern(std::string_view Text) {
  auto It = Ids.find(std::string(Text));
  if (It != Ids.end())
    return Symbol{It->second};
  uint32_t Id = uint32_t(Texts.size());
  auto [Inserted, IsNew] = Ids.emplace(std::string(Text), Id);
  (void)IsNew;
  // std::unordered_map keys have stable addresses; keep a view to avoid a
  // second copy of every name.
  Texts.push_back(Inserted->first);
  return Symbol{Id};
}

Symbol StringInterner::lookup(std::string_view Text) const {
  auto It = Ids.find(std::string(Text));
  if (It == Ids.end())
    return Symbol{0};
  return Symbol{It->second};
}

std::string_view StringInterner::text(Symbol Sym) const {
  assert(Sym.Id < Texts.size() && "symbol from a different interner");
  return Texts[Sym.Id];
}
