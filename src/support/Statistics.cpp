//===----------------------------------------------------------------------===//
///
/// \file
/// Statistics printing.
///
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/OStream.h"

using namespace dynsum;

void Statistics::print(OStream &OS) const {
  for (const auto &[Name, Value] : Counters)
    OS << Name << " = " << Value << '\n';
}
