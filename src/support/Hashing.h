//===----------------------------------------------------------------------===//
///
/// \file
/// Small hashing helpers used by analysis hash tables.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_HASHING_H
#define DYNSUM_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace dynsum {

/// Mixes 64 bits thoroughly (the SplitMix64 finalizer).
inline uint64_t hashMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Combines an accumulated hash with one more value.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return hashMix(Seed ^ (Value + 0x9e3779b97f4a7c15ull + (Seed << 6) +
                         (Seed >> 2)));
}

/// Packs two 32-bit values into one 64-bit key (no mixing; for exact-key
/// maps).
inline uint64_t packPair(uint32_t Hi, uint32_t Lo) {
  return (uint64_t(Hi) << 32) | Lo;
}

} // namespace dynsum

#endif // DYNSUM_SUPPORT_HASHING_H
