//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing utilities for the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_TIMER_H
#define DYNSUM_SUPPORT_TIMER_H

#include <chrono>

namespace dynsum {

/// Measures elapsed wall-clock time from construction or the last reset.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the measurement.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed since construction/reset.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Adds the scope's elapsed seconds into an accumulator on destruction.
class ScopedTimer {
public:
  explicit ScopedTimer(double &Accumulator) : Accumulator(Accumulator) {}
  ~ScopedTimer() { Accumulator += Inner.seconds(); }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  double &Accumulator;
  Timer Inner;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_TIMER_H
