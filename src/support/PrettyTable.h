//===----------------------------------------------------------------------===//
///
/// \file
/// Aligned ASCII table rendering for benchmark reports.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_PRETTYTABLE_H
#define DYNSUM_SUPPORT_PRETTYTABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace dynsum {

class OStream;

/// Accumulates rows of cells and prints them with per-column alignment.
/// The first added row is the header.  Numeric convenience overloads
/// format with fixed precision so report columns line up.
class PrettyTable {
public:
  /// Starts a new row.
  PrettyTable &row();

  /// Appends a text cell to the current row.
  PrettyTable &cell(const std::string &Text);
  PrettyTable &cell(const char *Text) { return cell(std::string(Text)); }

  /// Appends an integer cell.
  PrettyTable &cell(uint64_t Value);

  /// Appends a fixed-precision floating-point cell.
  PrettyTable &cell(double Value, unsigned Decimals = 2);

  /// Renders the table; the first row is underlined as a header.
  void print(OStream &OS) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_PRETTYTABLE_H
