//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena allocator for long-lived analysis objects.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_ALLOCATOR_H
#define DYNSUM_SUPPORT_ALLOCATOR_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dynsum {

/// Allocates raw memory in large slabs and hands out aligned chunks by
/// bumping a pointer.  Individual chunks are never freed; everything is
/// released when the allocator is destroyed or reset.  Objects allocated
/// here must be trivially destructible (the arena runs no destructors).
class BumpPtrAllocator {
public:
  explicit BumpPtrAllocator(size_t SlabSize = 64 * 1024)
      : SlabSize(SlabSize) {}

  BumpPtrAllocator(const BumpPtrAllocator &) = delete;
  BumpPtrAllocator &operator=(const BumpPtrAllocator &) = delete;

  /// Returns \p Size bytes aligned to \p Align (a power of two).
  void *allocate(size_t Size, size_t Align);

  /// Allocates storage for one T; the caller placement-constructs it.
  template <typename T> T *allocate() {
    return static_cast<T *>(allocate(sizeof(T), alignof(T)));
  }

  /// Allocates storage for \p Count contiguous Ts.
  template <typename T> T *allocateArray(size_t Count) {
    return static_cast<T *>(allocate(sizeof(T) * Count, alignof(T)));
  }

  /// Drops all slabs, invalidating every outstanding allocation.
  void reset();

  /// Total bytes requested from the system so far.
  size_t bytesAllocated() const { return TotalBytes; }

  /// Number of slabs currently held.
  size_t numSlabs() const { return Slabs.size(); }

private:
  struct Slab {
    std::unique_ptr<char[]> Memory;
    size_t Size = 0;
  };

  void addSlab(size_t MinSize);

  size_t SlabSize;
  std::vector<Slab> Slabs;
  char *Cursor = nullptr;
  char *End = nullptr;
  size_t TotalBytes = 0;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_ALLOCATOR_H
