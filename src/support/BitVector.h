//===----------------------------------------------------------------------===//
///
/// \file
/// A growable bit vector used for dense visited sets.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_BITVECTOR_H
#define DYNSUM_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dynsum {

/// Fixed-width-word bit vector with set/test/reset and population count.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t Size) { resize(Size); }

  /// Grows or shrinks to exactly \p Size bits; new bits are zero.
  void resize(size_t Size) {
    NumBits = Size;
    Words.resize((Size + 63) / 64, 0);
    clearUnusedBits();
  }

  size_t size() const { return NumBits; }

  /// Sets bit \p Index; returns true when the bit was previously clear.
  bool set(size_t Index) {
    assert(Index < NumBits && "bit index out of range");
    uint64_t Mask = 1ull << (Index % 64);
    uint64_t &Word = Words[Index / 64];
    bool WasClear = (Word & Mask) == 0;
    Word |= Mask;
    return WasClear;
  }

  /// Clears bit \p Index.
  void reset(size_t Index) {
    assert(Index < NumBits && "bit index out of range");
    Words[Index / 64] &= ~(1ull << (Index % 64));
  }

  /// Tests bit \p Index.
  bool test(size_t Index) const {
    assert(Index < NumBits && "bit index out of range");
    return (Words[Index / 64] >> (Index % 64)) & 1;
  }

  /// Clears all bits, keeping the size.
  void clear() {
    for (uint64_t &Word : Words)
      Word = 0;
  }

  /// Number of set bits.
  size_t count() const {
    size_t Total = 0;
    for (uint64_t Word : Words)
      Total += size_t(__builtin_popcountll(Word));
    return Total;
  }

  /// Bitwise-or of \p Other into this; sizes must match.  Returns true
  /// when any bit changed.
  bool orInPlace(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch in or");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

private:
  void clearUnusedBits() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (1ull << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_BITVECTOR_H
