//===----------------------------------------------------------------------===//
///
/// \file
/// A growable bit vector used for dense visited sets, and HybridPtsSet,
/// the adaptive sparse/dense set that backs points-to sets.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_BITVECTOR_H
#define DYNSUM_SUPPORT_BITVECTOR_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dynsum {

/// Fixed-width-word bit vector with set/test/reset and population count.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t Size) { resize(Size); }

  /// Grows or shrinks to exactly \p Size bits; new bits are zero.
  void resize(size_t Size) {
    NumBits = Size;
    Words.resize((Size + 63) / 64, 0);
    clearUnusedBits();
  }

  size_t size() const { return NumBits; }

  /// Sets bit \p Index; returns true when the bit was previously clear.
  bool set(size_t Index) {
    assert(Index < NumBits && "bit index out of range");
    uint64_t Mask = 1ull << (Index % 64);
    uint64_t &Word = Words[Index / 64];
    bool WasClear = (Word & Mask) == 0;
    Word |= Mask;
    return WasClear;
  }

  /// Clears bit \p Index.
  void reset(size_t Index) {
    assert(Index < NumBits && "bit index out of range");
    Words[Index / 64] &= ~(1ull << (Index % 64));
  }

  /// Tests bit \p Index.
  bool test(size_t Index) const {
    assert(Index < NumBits && "bit index out of range");
    return (Words[Index / 64] >> (Index % 64)) & 1;
  }

  /// Clears all bits, keeping the size.
  void clear() {
    for (uint64_t &Word : Words)
      Word = 0;
  }

  /// Number of set bits.
  size_t count() const {
    size_t Total = 0;
    for (uint64_t Word : Words)
      Total += size_t(__builtin_popcountll(Word));
    return Total;
  }

  /// Bitwise-or of \p Other into this; sizes must match.  Returns true
  /// when any bit changed.
  bool orInPlace(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch in or");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

private:
  void clearUnusedBits() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (1ull << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

/// Adaptive membership set over a fixed universe [0, size()), tuned for
/// points-to sets: most sets hold a handful of allocation sites, a few
/// (library roots, merged fields) approach the whole universe.  The
/// representation escalates with population and never pays for the
/// universe until a set is genuinely dense:
///
///   * Inline: up to 8 elements in a sorted in-object array — no heap.
///   * Sparse: a sorted vector of element ids.
///   * Dense:  64-bit words (BitVector layout) with word-level union
///     loops, entered once the element count crosses 1/8th of the
///     universe.
///
/// Transitions are promote-only within a fill (clear() resets to
/// Inline, keeping heap capacity).  The API mirrors the BitVector
/// subset the analyses use — size() is the UNIVERSE, count() the
/// population — so the two are interchangeable behind a template.
class HybridPtsSet {
public:
  enum class Rep : uint8_t { Inline, Sparse, Dense };

  HybridPtsSet() = default;
  explicit HybridPtsSet(size_t Size) { resize(Size); }

  /// Grows (or shrinks) the universe to \p Size.  Elements are kept;
  /// shrinking below an existing element is the caller's bug, as with
  /// BitVector.
  void resize(size_t Size) {
    Universe = Size;
    if (Kind == Rep::Dense) {
      Words.resize((Size + 63) / 64, 0);
      if (Size % 64 != 0 && !Words.empty())
        Words.back() &= (1ull << (Size % 64)) - 1;
    }
  }

  /// The universe, NOT the population (matches BitVector::size()).
  size_t size() const { return Universe; }

  size_t count() const { return Count; }
  bool empty() const { return Count == 0; }
  Rep rep() const { return Kind; }

  /// Inserts \p Index; returns true when it was newly set.
  bool set(size_t Index) {
    assert(Index < Universe && "element out of range");
    uint32_t E = uint32_t(Index);
    switch (Kind) {
    case Rep::Inline: {
      size_t I = 0;
      while (I < Count && Small[I] < E)
        ++I;
      if (I < Count && Small[I] == E)
        return false;
      if (Count < kInlineCap) {
        for (size_t J = Count; J > I; --J)
          Small[J] = Small[J - 1];
        Small[I] = E;
        ++Count;
        return true;
      }
      promoteFromInline(E, I);
      return true;
    }
    case Rep::Sparse: {
      auto It = std::lower_bound(Elems.begin(), Elems.end(), E);
      if (It != Elems.end() && *It == E)
        return false;
      if (wantsDense(Count + 1)) {
        promoteToDense();
        Words[E / 64] |= 1ull << (E % 64);
      } else {
        Elems.insert(It, E);
      }
      ++Count;
      return true;
    }
    case Rep::Dense: {
      uint64_t Mask = 1ull << (E % 64);
      uint64_t &Word = Words[E / 64];
      if (Word & Mask)
        return false;
      Word |= Mask;
      ++Count;
      return true;
    }
    }
    return false;
  }

  bool test(size_t Index) const {
    assert(Index < Universe && "element out of range");
    uint32_t E = uint32_t(Index);
    switch (Kind) {
    case Rep::Inline:
      for (size_t I = 0; I < Count; ++I)
        if (Small[I] == E)
          return true;
      return false;
    case Rep::Sparse:
      return std::binary_search(Elems.begin(), Elems.end(), E);
    case Rep::Dense:
      return (Words[E / 64] >> (E % 64)) & 1;
    }
    return false;
  }

  /// Empties the set (population 0, Inline rep), keeping the universe
  /// and any heap capacity for reuse.
  void clear() {
    Count = 0;
    Kind = Rep::Inline;
    Elems.clear();
  }

  /// Unions \p Other into this; universes must match.  Returns true
  /// when any element was added.  Dense|dense runs the word loop — the
  /// auto-vectorized hot path of the whole-program solve.
  bool orInPlace(const HybridPtsSet &Other) {
    return orInPlace(Other, [](uint32_t) {});
  }

  /// As orInPlace, additionally invoking \p OnNew(E) for every element
  /// newly added (in no particular order).  Lets a caller maintain a
  /// delta set without per-element membership probes.
  template <typename F> bool orInPlace(const HybridPtsSet &Other, F OnNew) {
    assert(Universe == Other.Universe && "universe mismatch in or");
    if (Other.Count == 0 || &Other == this)
      return false;
    if (Kind == Rep::Dense && Other.Kind == Rep::Dense) {
      bool Changed = false;
      for (size_t I = 0, N = Words.size(); I != N; ++I) {
        uint64_t New = Other.Words[I] & ~Words[I];
        if (!New)
          continue;
        Words[I] |= New;
        Count += size_t(__builtin_popcountll(New));
        Changed = true;
        while (New) {
          OnNew(uint32_t(I * 64 + size_t(__builtin_ctzll(New))));
          New &= New - 1;
        }
      }
      return Changed;
    }
    // At least one side is element-based: element-wise insert.  Promote
    // this set to dense up front when the union is guaranteed dense, so
    // the inserts are O(1) instead of sorted-vector shifts.
    if (Kind != Rep::Dense &&
        (Other.Kind == Rep::Dense || wantsDense(Count + Other.Count)))
      promoteToDense();
    bool Changed = false;
    Other.forEach([&](uint32_t E) {
      if (set(E)) {
        OnNew(E);
        Changed = true;
      }
    });
    return Changed;
  }

  /// Visits elements in ascending order.
  template <typename F> void forEach(F Fn) const {
    switch (Kind) {
    case Rep::Inline:
      for (size_t I = 0; I < Count; ++I)
        Fn(Small[I]);
      return;
    case Rep::Sparse:
      for (uint32_t E : Elems)
        Fn(E);
      return;
    case Rep::Dense:
      for (size_t I = 0, N = Words.size(); I != N; ++I) {
        uint64_t Word = Words[I];
        while (Word) {
          Fn(uint32_t(I * 64 + size_t(__builtin_ctzll(Word))));
          Word &= Word - 1;
        }
      }
      return;
    }
  }

private:
  static constexpr size_t kInlineCap = 8;

  /// Dense pays Universe/8 bytes regardless of population; it wins once
  /// the population is a meaningful fraction of that.
  bool wantsDense(size_t Population) const {
    return Population * 8 >= Universe;
  }

  void promoteToDense() {
    Words.assign((Universe + 63) / 64, 0);
    if (Kind == Rep::Inline) {
      for (size_t I = 0; I < Count; ++I)
        Words[Small[I] / 64] |= 1ull << (Small[I] % 64);
    } else {
      for (uint32_t E : Elems)
        Words[E / 64] |= 1ull << (E % 64);
      Elems.clear();
    }
    Kind = Rep::Dense;
  }

  /// Called with the inline array full and \p E absent; \p At is E's
  /// sorted position.  Moves to the next tier and inserts E.
  void promoteFromInline(uint32_t E, size_t At) {
    if (wantsDense(Count + 1)) {
      promoteToDense();
      Words[E / 64] |= 1ull << (E % 64);
    } else {
      Elems.clear();
      Elems.reserve(kInlineCap * 2);
      Elems.insert(Elems.end(), Small, Small + At);
      Elems.push_back(E);
      Elems.insert(Elems.end(), Small + At, Small + Count);
      Kind = Rep::Sparse;
    }
    ++Count;
  }

  size_t Universe = 0;
  size_t Count = 0;
  Rep Kind = Rep::Inline;
  uint32_t Small[kInlineCap] = {};
  std::vector<uint32_t> Elems;
  std::vector<uint64_t> Words;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_BITVECTOR_H
