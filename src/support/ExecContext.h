//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline's execution context: one value that carries the thread
/// budget (and optionally a persistent worker pool) through every
/// parallel phase, replacing the `unsigned Threads` parameter that used
/// to be threaded through PAG cloning, delta finalization, the delta
/// builder, boundary snapshots and invalidation planning separately.
///
/// An ExecContext converts implicitly from a thread count, so
/// `buildPAGDelta(G, Calls, R, false, 8)` keeps reading naturally; a
/// long-lived caller (AnalysisService) attaches a WorkerPool once and
/// every phase of every commit reuses the same threads instead of
/// spawning fresh ones per phase.
///
/// Determinism contract: identical to support/Parallel.h — chunking
/// depends only on (N, threads()), never on pool scheduling, so results
/// are bit-identical with and without a pool.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_EXECCONTEXT_H
#define DYNSUM_SUPPORT_EXECCONTEXT_H

#include "support/Parallel.h"

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dynsum {
namespace support {

/// A persistent fork-join pool: N-1 parked worker threads plus the
/// caller.  run() is a barrier — it returns when every worker has
/// finished the job — and is internally serialized, so one pool can be
/// shared by callers that never overlap phases (the commit pipeline
/// runs one phase at a time).
class WorkerPool {
public:
  explicit WorkerPool(unsigned Threads) {
    unsigned T = clampThreads(Threads);
    NumWorkers = T > 0 ? T - 1 : 0;
    Workers.reserve(NumWorkers);
    for (unsigned W = 0; W < NumWorkers; ++W)
      Workers.emplace_back([this, W] { workerLoop(W + 1); });
  }

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> L(M);
      Stop = true;
    }
    WorkCv.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  /// Workers this pool can field per run, including the caller.
  unsigned maxWorkers() const { return NumWorkers + 1; }

  /// Runs Body(W) once for each W in [0, Used): the caller executes
  /// worker 0 inline, parked threads take 1..Used-1.  Used must not
  /// exceed maxWorkers().  A throw inside Body on any worker is
  /// captured, the barrier still completes (the pool stays usable),
  /// and the first exception is rethrown on the caller.
  void run(unsigned Used, const std::function<void(unsigned)> &Body) {
    if (Used <= 1 || NumWorkers == 0) {
      for (unsigned W = 0; W < Used; ++W)
        Body(W);
      return;
    }
    std::lock_guard<std::mutex> RL(RunM);
    support::detail::FirstException Err;
    const std::function<void(unsigned)> Guarded =
        [&Body, &Err](unsigned W) { Err.guard([&] { Body(W); }); };
    {
      std::lock_guard<std::mutex> L(M);
      Job = &Guarded;
      UsedCount = Used;
      DoneCount = 0;
      ++Epoch;
    }
    WorkCv.notify_all();
    Guarded(0);
    {
      std::unique_lock<std::mutex> L(M);
      DoneCv.wait(L, [this] { return DoneCount == NumWorkers; });
      Job = nullptr;
    }
    Err.rethrow();
  }

private:
  void workerLoop(unsigned Index) {
    uint64_t Seen = 0;
    std::unique_lock<std::mutex> L(M);
    for (;;) {
      WorkCv.wait(L, [this, Seen] { return Stop || Epoch != Seen; });
      if (Stop)
        return;
      Seen = Epoch;
      if (Index < UsedCount) {
        const std::function<void(unsigned)> *J = Job;
        L.unlock();
        (*J)(Index);
        L.lock();
      }
      if (++DoneCount == NumWorkers)
        DoneCv.notify_one();
    }
  }

  std::mutex RunM; ///< serializes run() callers
  std::mutex M;
  std::condition_variable WorkCv, DoneCv;
  const std::function<void(unsigned)> *Job = nullptr;
  uint64_t Epoch = 0;
  unsigned UsedCount = 0;
  unsigned DoneCount = 0;
  bool Stop = false;
  unsigned NumWorkers = 0;
  std::vector<std::thread> Workers;
};

/// Thread budget + optional pool handle, passed by const reference
/// through the commit pipeline.  Copyable (the pool is shared).
struct ExecContext {
  /// 0 = one thread per hardware core (clamped like clampThreads).
  unsigned Budget = 1;
  /// When set, parallel phases reuse these threads instead of spawning.
  std::shared_ptr<WorkerPool> Pool;

  ExecContext() = default;
  /// Implicit bridge from the old `unsigned Threads` call sites.
  ExecContext(unsigned Threads) : Budget(Threads) {}

  static ExecContext serial() { return ExecContext(1); }
  static ExecContext hardware() { return ExecContext(0); }

  /// A context whose phases run on a persistent pool of
  /// clampThreads(Threads) workers.
  static ExecContext pooled(unsigned Threads) {
    ExecContext Ctx(Threads);
    Ctx.Pool = std::make_shared<WorkerPool>(Threads);
    return Ctx;
  }

  /// Effective worker count for a phase.
  unsigned threads() const {
    unsigned T = clampThreads(Budget);
    if (Pool && T > Pool->maxWorkers())
      T = Pool->maxWorkers();
    return T;
  }
};

} // namespace support

/// ExecContext-aware overloads of the fork-join helpers: same chunk
/// math as the `unsigned Threads` versions in support/Parallel.h, but
/// the extra workers come from the context's pool when it has one.
template <typename Fn>
void parallelChunks(size_t N, const support::ExecContext &Ctx, Fn &&F) {
  unsigned Threads = Ctx.threads();
  if (!Ctx.Pool || Threads <= 1) {
    parallelChunks(N, Threads, std::forward<Fn>(F));
    return;
  }
  if (N == 0)
    return;
  if (Threads > N)
    Threads = unsigned(N);
  size_t Chunk = (N + Threads - 1) / Threads;
  if (Threads <= 1) {
    F(size_t(0), N, 0u);
    return;
  }
  Ctx.Pool->run(Threads, [&F, N, Chunk](unsigned W) {
    size_t Begin = size_t(W) * Chunk;
    if (Begin >= N)
      return;
    size_t End = Begin + Chunk < N ? Begin + Chunk : N;
    F(Begin, End, W);
  });
}

template <typename JobFn>
void parallelJobs(size_t NumJobs, const support::ExecContext &Ctx,
                  JobFn &&Job) {
  unsigned Threads = Ctx.threads();
  if (!Ctx.Pool || Threads <= 1) {
    parallelJobs(NumJobs, Threads, std::forward<JobFn>(Job));
    return;
  }
  if (Threads > NumJobs)
    Threads = unsigned(NumJobs);
  if (Threads <= 1) {
    for (size_t I = 0; I < NumJobs; ++I)
      Job(I);
    return;
  }
  std::atomic<size_t> Next{0};
  Ctx.Pool->run(Threads, [&Next, &Job, NumJobs](unsigned) {
    for (size_t I;
         (I = Next.fetch_add(1, std::memory_order_relaxed)) < NumJobs;)
      Job(I);
  });
}

} // namespace dynsum

#endif // DYNSUM_SUPPORT_EXECCONTEXT_H
