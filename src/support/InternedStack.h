//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed persistent stacks of 32-bit elements.
///
/// CFL-reachability tracks two stacks per traversal state: the calling
/// context (call-site ids, the RRP language) and the pending field labels
/// (the LFT language).  Both are immutable stacks that are pushed/popped
/// billions of times and used as hash-map keys, so each distinct stack is
/// interned once and represented by a 32-bit id: push/pop/peek/compare
/// and hashing are all O(1).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_INTERNEDSTACK_H
#define DYNSUM_SUPPORT_INTERNEDSTACK_H

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dynsum {

/// Identifier of an interned stack within one StackPool.  Id 0 is always
/// the empty stack.
struct StackId {
  uint32_t Id = 0;

  bool isEmpty() const { return Id == 0; }
  friend bool operator==(StackId A, StackId B) { return A.Id == B.Id; }
  friend bool operator!=(StackId A, StackId B) { return A.Id != B.Id; }
};

/// Interns persistent stacks; every distinct stack value has exactly one
/// id for the lifetime of the pool.
class StackPool {
public:
  StackPool() {
    // Node 0 is the empty stack; parent/value are never inspected.
    Nodes.push_back(Node{0, 0, 0});
  }

  /// Returns the empty stack.
  static StackId empty() { return StackId{0}; }

  /// Returns the stack \p Base with \p Value pushed on top.
  StackId push(StackId Base, uint32_t Value) {
    uint64_t Key = (uint64_t(Base.Id) << 32) | Value;
    auto It = PushCache.find(Key);
    if (It != PushCache.end())
      return StackId{It->second};
    uint32_t Id = uint32_t(Nodes.size());
    Nodes.push_back(Node{Base.Id, Value, Nodes[Base.Id].Depth + 1});
    PushCache.emplace(Key, Id);
    return StackId{Id};
  }

  /// Returns the stack below the top of \p Stack.  \p Stack must not be
  /// empty.
  StackId pop(StackId Stack) const {
    assert(!Stack.isEmpty() && "pop of empty stack");
    return StackId{Nodes[Stack.Id].Parent};
  }

  /// Returns the top element of \p Stack, which must not be empty.
  uint32_t peek(StackId Stack) const {
    assert(!Stack.isEmpty() && "peek of empty stack");
    return Nodes[Stack.Id].Value;
  }

  /// Number of elements in \p Stack.
  uint32_t depth(StackId Stack) const { return Nodes[Stack.Id].Depth; }

  /// Returns the elements of \p Stack from bottom to top.
  std::vector<uint32_t> elements(StackId Stack) const {
    std::vector<uint32_t> Out(depth(Stack));
    uint32_t Cur = Stack.Id;
    for (size_t I = Out.size(); I > 0; --I) {
      Out[I - 1] = Nodes[Cur].Value;
      Cur = Nodes[Cur].Parent;
    }
    return Out;
  }

  /// Builds a stack from \p Elems listed bottom-to-top.
  StackId make(const std::vector<uint32_t> &Elems) {
    StackId S = empty();
    for (uint32_t E : Elems)
      S = push(S, E);
    return S;
  }

  /// Number of distinct stacks interned so far (including empty).
  size_t size() const { return Nodes.size(); }

private:
  struct Node {
    uint32_t Parent;
    uint32_t Value;
    uint32_t Depth;
  };

  std::vector<Node> Nodes;
  std::unordered_map<uint64_t, uint32_t> PushCache;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_INTERNEDSTACK_H
