//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed persistent stacks of 32-bit elements.
///
/// CFL-reachability tracks two stacks per traversal state: the calling
/// context (call-site ids, the RRP language) and the pending field labels
/// (the LFT language).  Both are immutable stacks that are pushed/popped
/// billions of times and used as hash-map keys, so each distinct stack is
/// interned once and represented by a 32-bit id: push/pop/peek/compare
/// and hashing are all O(1).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_INTERNEDSTACK_H
#define DYNSUM_SUPPORT_INTERNEDSTACK_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace dynsum {

/// Identifier of an interned stack within one StackPool.  Id 0 is always
/// the empty stack.
struct StackId {
  uint32_t Id = 0;

  bool isEmpty() const { return Id == 0; }
  friend bool operator==(StackId A, StackId B) { return A.Id == B.Id; }
  friend bool operator!=(StackId A, StackId B) { return A.Id != B.Id; }
};

/// Interns persistent stacks; every distinct stack value has exactly one
/// id for the lifetime of the pool.
class StackPool {
public:
  StackPool() {
    // Node 0 is the empty stack; parent/value are never inspected.
    Nodes.push_back(Node{0, 0, 0});
  }

  /// Returns the empty stack.
  static StackId empty() { return StackId{0}; }

  /// Returns the stack \p Base with \p Value pushed on top.
  StackId push(StackId Base, uint32_t Value) {
    uint64_t Key = (uint64_t(Base.Id) << 32) | Value;
    size_t H = cacheSlotFor(Key);
    if (Cache[H].Id != kCacheEmpty)
      return StackId{Cache[H].Id};
    uint32_t Id = uint32_t(Nodes.size());
    assert(Id != kCacheEmpty && "stack pool exhausted");
    Nodes.push_back(Node{Base.Id, Value, Nodes[Base.Id].Depth + 1});
    Cache[H] = CacheSlot{Key, Id};
    if (++CacheUsed * 2 >= Cache.size())
      growCache();
    return StackId{Id};
  }

  /// Returns the stack below the top of \p Stack.  \p Stack must not be
  /// empty.
  StackId pop(StackId Stack) const {
    assert(!Stack.isEmpty() && "pop of empty stack");
    return StackId{Nodes[Stack.Id].Parent};
  }

  /// Returns the top element of \p Stack, which must not be empty.
  uint32_t peek(StackId Stack) const {
    assert(!Stack.isEmpty() && "peek of empty stack");
    return Nodes[Stack.Id].Value;
  }

  /// Number of elements in \p Stack.
  uint32_t depth(StackId Stack) const { return Nodes[Stack.Id].Depth; }

  /// Returns the elements of \p Stack from bottom to top.
  std::vector<uint32_t> elements(StackId Stack) const {
    std::vector<uint32_t> Out;
    elementsInto(Stack, Out);
    return Out;
  }

  /// Writes the elements of \p Stack (bottom to top) into \p Out,
  /// reusing its capacity — the allocation-free variant for hot paths
  /// that spell a stack out once per store round trip.
  void elementsInto(StackId Stack, std::vector<uint32_t> &Out) const {
    Out.resize(depth(Stack));
    uint32_t Cur = Stack.Id;
    for (size_t I = Out.size(); I > 0; --I) {
      Out[I - 1] = Nodes[Cur].Value;
      Cur = Nodes[Cur].Parent;
    }
  }

  /// Builds a stack from \p Elems listed bottom-to-top.
  StackId make(const std::vector<uint32_t> &Elems) {
    StackId S = empty();
    for (uint32_t E : Elems)
      S = push(S, E);
    return S;
  }

  /// Number of distinct stacks interned so far (including empty).
  size_t size() const { return Nodes.size(); }

private:
  struct Node {
    uint32_t Parent;
    uint32_t Value;
    uint32_t Depth;
  };

  /// (parent, value) -> node id memo behind push(), as a flat
  /// open-addressing table: push is the single hottest operation in the
  /// engine (every traversal step and every summary re-intern goes
  /// through it), and a probe that stays within one cache line beats a
  /// node-based unordered_map lookup by several times.
  struct CacheSlot {
    uint64_t Key;
    uint32_t Id;
  };
  static constexpr uint32_t kCacheEmpty = 0xffffffffu;

  /// Home-or-chain slot for \p Key: the slot holding it, or the empty
  /// slot where it belongs.  Load factor is kept under 1/2.
  size_t cacheSlotFor(uint64_t Key) const {
    size_t H = size_t((Key * 0x9e3779b97f4a7c15ull) >> 32) & CacheMask;
    while (Cache[H].Id != kCacheEmpty && Cache[H].Key != Key)
      H = (H + 1) & CacheMask;
    return H;
  }

  void growCache() {
    std::vector<CacheSlot> Old = std::move(Cache);
    Cache.assign(Old.size() * 2, CacheSlot{0, kCacheEmpty});
    CacheMask = Cache.size() - 1;
    for (const CacheSlot &S : Old)
      if (S.Id != kCacheEmpty)
        Cache[cacheSlotFor(S.Key)] = S;
  }

  std::vector<Node> Nodes;
  std::vector<CacheSlot> Cache = std::vector<CacheSlot>(1024, {0, kCacheEmpty});
  size_t CacheMask = 1023;
  size_t CacheUsed = 0;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_INTERNEDSTACK_H
