//===----------------------------------------------------------------------===//
///
/// \file
/// Copy-on-write chunked containers for generation snapshots.
///
/// The commit pipeline used to deep-copy the whole PAG per generation;
/// at 100k methods the clone dominated the commit (BENCH_pr5: ~880 ms
/// of a ~990 ms delta commit).  These containers replace the big member
/// arrays with CHUNK TABLES: fixed-size refcounted chunks plus a small
/// table of chunk pointers per owner.  Copying a container copies the
/// table and bumps refcounts — O(#chunks) pointer work, no element
/// copies — and the copy shares every chunk immutably with its parent
/// until one side writes, at which point exactly the written chunk is
/// duplicated (copy-on-write at chunk granularity).  A commit therefore
/// pays only for the chunks its delta touches.
///
/// Concurrency contract (the "single writer" rule):
///  - At most one thread mutates a given container at a time (the
///    commit pipeline serializes on the service's edit mutex).  Phases
///    that write from several workers must first make the destination
///    chunks unique on the coordinating thread (ensureWritable /
///    ensureUniqueRegion) and then write through raw accessors.
///  - Any number of threads may read any number of owners of shared
///    chunks concurrently with the writer, as long as readers only read
///    their own owner's logical contents (a reader never looks past its
///    own size/offsets, so writer appends into a shared tail chunk
///    touch memory no reader inspects).
///  - Owners may be destroyed on any thread at any time: refcounts are
///    atomic, the final decrement frees.  A writer's uniqueness check
///    (acquire) pairs with the destructor's decrement (release) so
///    in-place writes never race a dying reader.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_CHUNKEDSTORAGE_H
#define DYNSUM_SUPPORT_CHUNKEDSTORAGE_H

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace dynsum {
namespace support {

/// Footprint of one chunked container, split by ownership: SharedBytes
/// is the portion other owners (older/newer generations) also hold, so
/// TotalBytes - SharedBytes is what destroying this owner would free.
struct ChunkMemoryStats {
  size_t Chunks = 0;
  size_t SharedChunks = 0;
  size_t TotalBytes = 0;
  size_t SharedBytes = 0;
  size_t TableBytes = 0;

  ChunkMemoryStats &operator+=(const ChunkMemoryStats &O) {
    Chunks += O.Chunks;
    SharedChunks += O.SharedChunks;
    TotalBytes += O.TotalBytes;
    SharedBytes += O.SharedBytes;
    TableBytes += O.TableBytes;
    return *this;
  }
};

/// A vector-like container over refcounted fixed-size chunks
/// (2^LogElems elements each).  Element access costs one extra
/// indirection over std::vector; copies cost O(#chunks); writes go
/// through mutableAt(), which duplicates a shared chunk first.
///
/// Works for non-trivial T (e.g. std::vector payloads): chunk
/// duplication copy-constructs the chunk's elements, chunk destruction
/// runs their destructors.  Shrinking leaves the trailing elements of
/// the (possibly shared) tail chunk untouched; they are overwritten
/// when the container regrows.
template <typename T, unsigned LogElems = 12> class ChunkedVector {
public:
  static constexpr size_t kElemsPerChunk = size_t(1) << LogElems;

  ChunkedVector() = default;

  ChunkedVector(const ChunkedVector &O) : Table(O.Table), Sz(O.Sz) {
    for (Chunk *C : Table)
      C->Refs.fetch_add(1, std::memory_order_relaxed);
  }

  ChunkedVector(ChunkedVector &&O) noexcept
      : Table(std::move(O.Table)), Sz(O.Sz) {
    O.Table.clear();
    O.Sz = 0;
  }

  ChunkedVector &operator=(const ChunkedVector &O) {
    ChunkedVector Tmp(O);
    swap(Tmp);
    return *this;
  }

  ChunkedVector &operator=(ChunkedVector &&O) noexcept {
    if (this != &O) {
      release();
      Table = std::move(O.Table);
      Sz = O.Sz;
      O.Table.clear();
      O.Sz = 0;
    }
    return *this;
  }

  ~ChunkedVector() { release(); }

  void swap(ChunkedVector &O) {
    Table.swap(O.Table);
    std::swap(Sz, O.Sz);
  }

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }

  const T &operator[](size_t I) const {
    assert(I < Sz && "chunked index out of range");
    return Table[I >> LogElems]->Elems[I & kMask];
  }

  const T &back() const { return (*this)[Sz - 1]; }

  /// Writable access; duplicates the element's chunk first when it is
  /// shared with another owner.  Single-writer only.
  T &mutableAt(size_t I) {
    assert(I < Sz && "chunked index out of range");
    Chunk *&C = Table[I >> LogElems];
    if (!unique(C))
      C = duplicate(C);
    return C->Elems[I & kMask];
  }

  /// Writable access WITHOUT the copy-on-write check, for parallel
  /// phases whose destination chunks were made unique up front (see
  /// ensureWritable).  Racing this with a shared chunk corrupts
  /// sibling owners.
  T &rawAt(size_t I) {
    assert(I < Sz && "chunked index out of range");
    assert(unique(Table[I >> LogElems]) &&
           "rawAt on a shared chunk; call ensureWritable first");
    return Table[I >> LogElems]->Elems[I & kMask];
  }

  /// Makes the chunk holding element \p I unique (serial phase of a
  /// parallel write: uniquify destinations, then fan out over rawAt).
  void ensureWritable(size_t I) {
    assert(I < Sz && "chunked index out of range");
    Chunk *&C = Table[I >> LogElems];
    if (!unique(C))
      C = duplicate(C);
  }

  /// True when the chunk holding element \p I is shared with another
  /// owner (memory accounting).
  bool sharedAt(size_t I) const {
    assert(I < Sz && "chunked index out of range");
    return !unique(Table[I >> LogElems]);
  }

  void push_back(const T &V) {
    size_t ChunkIdx = Sz >> LogElems;
    if (ChunkIdx == Table.size())
      Table.push_back(new Chunk());
    Chunk *&C = Table[ChunkIdx];
    if (!unique(C))
      C = duplicate(C);
    C->Elems[Sz & kMask] = V;
    ++Sz;
  }

  void resize(size_t N, const T &V = T()) {
    if (N <= Sz) {
      size_t NeedChunks = (N + kElemsPerChunk - 1) >> LogElems;
      while (Table.size() > NeedChunks) {
        deref(Table.back());
        Table.pop_back();
      }
      Sz = N;
      return;
    }
    // Fill the partial tail chunk through the CoW path, then append
    // fresh (unique) chunks and fill them directly.
    while (Sz < N && (Sz & kMask) != 0)
      push_back(V);
    while (Sz < N) {
      if ((Sz >> LogElems) == Table.size())
        Table.push_back(new Chunk());
      Chunk *C = Table[Sz >> LogElems];
      assert(unique(C) && "fresh tail chunk must be unique");
      size_t Count = std::min(kElemsPerChunk, N - Sz);
      for (size_t I = 0; I < Count; ++I)
        C->Elems[I] = V;
      Sz += Count;
    }
  }

  /// Rebuilds the container as \p N copies of \p V on fresh chunks,
  /// dropping all sharing (a full rewrite shares nothing anyway).
  void assign(size_t N, const T &V = T()) {
    release();
    Table.clear();
    Sz = 0;
    resize(N, V);
  }

  void clear() {
    release();
    Table.clear();
    Sz = 0;
  }

  ChunkMemoryStats memory() const {
    ChunkMemoryStats S;
    S.TableBytes = Table.capacity() * sizeof(Chunk *);
    for (Chunk *C : Table) {
      ++S.Chunks;
      S.TotalBytes += sizeof(Chunk);
      if (!unique(C)) {
        ++S.SharedChunks;
        S.SharedBytes += sizeof(Chunk);
      }
    }
    return S;
  }

private:
  static constexpr size_t kMask = kElemsPerChunk - 1;

  struct Chunk {
    std::atomic<uint32_t> Refs;
    T Elems[kElemsPerChunk];

    Chunk() : Refs(1), Elems() {}
    explicit Chunk(const Chunk &O) : Refs(1) {
      std::copy(O.Elems, O.Elems + kElemsPerChunk, Elems);
    }
  };

  static bool unique(const Chunk *C) {
    return C->Refs.load(std::memory_order_acquire) == 1;
  }

  static void deref(Chunk *C) {
    if (C->Refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
      delete C;
  }

  static Chunk *duplicate(Chunk *C) {
    Chunk *N = new Chunk(*C);
    deref(C);
    return N;
  }

  void release() {
    for (Chunk *C : Table)
      deref(C);
  }

  std::vector<Chunk *> Table;
  size_t Sz = 0;
};

/// Flat element storage for the CSR payload arrays, chunked for CoW
/// sharing but with a REGION guarantee: placeRegion() never lets a
/// region straddle an independently-refcounted allocation, so a region
/// is always readable as one contiguous span (EdgeSpan stays two plain
/// pointers).  Regions larger than a chunk get a JUMBO GROUP — one
/// allocation spanning several table slots under a single refcount.
///
/// Placement policy (deterministic; depends only on the call sequence,
/// never on sharing state):
///  - a region that fits in the tail room of the last chunk is placed
///    there (the tail chunk is made unique first, so appends never
///    write into memory a sibling generation could also append into);
///  - otherwise the tail remainder is abandoned (counted in
///    padElements) and the region starts a fresh chunk/group;
///  - a jumbo group's own remainder is abandoned too, so the next
///    region starts a fresh chunk and CoW granularity stays bounded.
template <typename T, unsigned LogElems = 14> class ChunkedFlatArray {
  static_assert(std::is_trivially_copyable<T>::value &&
                    std::is_trivially_destructible<T>::value,
                "flat chunk payloads are duplicated with memcpy");

public:
  static constexpr size_t kElemsPerChunk = size_t(1) << LogElems;

  ChunkedFlatArray() = default;

  ChunkedFlatArray(const ChunkedFlatArray &O)
      : Table(O.Table), Sz(O.Sz), Pad(O.Pad) {
    forEachGroup([](GroupHeader *H) {
      H->Refs.fetch_add(1, std::memory_order_relaxed);
    });
  }

  ChunkedFlatArray(ChunkedFlatArray &&O) noexcept
      : Table(std::move(O.Table)), Sz(O.Sz), Pad(O.Pad) {
    O.Table.clear();
    O.Sz = 0;
    O.Pad = 0;
  }

  ChunkedFlatArray &operator=(const ChunkedFlatArray &O) {
    ChunkedFlatArray Tmp(O);
    swap(Tmp);
    return *this;
  }

  ChunkedFlatArray &operator=(ChunkedFlatArray &&O) noexcept {
    if (this != &O) {
      release();
      Table = std::move(O.Table);
      Sz = O.Sz;
      Pad = O.Pad;
      O.Table.clear();
      O.Sz = 0;
      O.Pad = 0;
    }
    return *this;
  }

  ~ChunkedFlatArray() { release(); }

  void swap(ChunkedFlatArray &O) {
    Table.swap(O.Table);
    std::swap(Sz, O.Sz);
    std::swap(Pad, O.Pad);
  }

  /// Logical tail: every placed region lies in [0, size()).  Includes
  /// alignment padding (see padElements), so this is an address-space
  /// bound, not a live-element count.
  size_t size() const { return Sz; }

  /// Elements abandoned to keep regions from straddling group
  /// boundaries.  Irreducible slack: a full repack re-pads, so callers
  /// must NOT count it toward compaction triggers.
  size_t padElements() const { return Pad; }

  /// Address of element \p I for reading.  Valid to advance within the
  /// region containing \p I (regions never straddle groups).
  const T *addr(size_t I) const {
    assert(I < Sz && "flat index out of range");
    const Slot &S = Table[I >> LogElems];
    return S.Data + (I & kMask);
  }

  /// Reserves a region of \p N elements at the tail and returns its
  /// begin index.  Makes the destination chunk unique, so the caller
  /// may write the region through regionPtr immediately.
  size_t placeRegion(size_t N) {
    if (N == 0)
      return Sz;
    size_t Cap = Table.size() << LogElems;
    size_t Room = Cap - Sz;
    if (N <= Room) {
      ensureUniqueGroup(Sz >> LogElems);
      size_t Begin = Sz;
      Sz += N;
      return Begin;
    }
    Pad += Room;
    size_t Begin = Cap;
    uint32_t Slots = uint32_t((N + kElemsPerChunk - 1) >> LogElems);
    appendGroup(Slots);
    if (Slots > 1) {
      // Jumbo: retire the group's own remainder so the next region
      // starts a fresh, independently-refcounted chunk.
      Sz = Begin + (size_t(Slots) << LogElems);
      Pad += Sz - (Begin + N);
    } else {
      Sz = Begin + N;
    }
    return Begin;
  }

  /// Writable pointer to the region starting at \p Begin.  The region's
  /// group must already be unique (placeRegion / ensureUniqueRegion).
  T *regionPtr(size_t Begin) {
    assert(Begin < Sz && "flat index out of range");
    Slot &S = Table[Begin >> LogElems];
    assert(S.Hdr->Refs.load(std::memory_order_acquire) == 1 &&
           "regionPtr on a shared group; call ensureUniqueRegion first");
    return S.Data + (Begin & kMask);
  }

  /// Writable single-element access for freshly built (all-unique)
  /// arrays — the full-pack scatter loops.
  T &rawAt(size_t I) {
    assert(I < Sz && "flat index out of range");
    Slot &S = Table[I >> LogElems];
    assert(S.Hdr->Refs.load(std::memory_order_acquire) == 1 &&
           "rawAt on a shared group");
    return S.Data[I & kMask];
  }

  /// Duplicates the group holding index \p Begin if it is shared —
  /// the serial step before parallel in-place region rewrites.
  void ensureUniqueRegion(size_t Begin) {
    assert(Begin < Sz && "flat index out of range");
    ensureUniqueGroup(Begin >> LogElems);
  }

  /// True when the group holding \p I is shared (memory accounting).
  bool sharedAt(size_t I) const {
    assert(I < Sz && "flat index out of range");
    return Table[I >> LogElems].Hdr->Refs.load(
               std::memory_order_acquire) != 1;
  }

  /// Drops everything (full repack rebuilds from scratch; shared
  /// groups survive in the owners still holding them).
  void reset() {
    release();
    Table.clear();
    Sz = 0;
    Pad = 0;
  }

  ChunkMemoryStats memory() const {
    ChunkMemoryStats S;
    S.TableBytes = Table.capacity() * sizeof(Slot);
    forEachGroup([&S](GroupHeader *H) {
      size_t Bytes = kPayloadOff + (size_t(H->NumSlots) << LogElems) *
                                       sizeof(T);
      ++S.Chunks;
      S.TotalBytes += Bytes;
      if (H->Refs.load(std::memory_order_acquire) != 1) {
        ++S.SharedChunks;
        S.SharedBytes += Bytes;
      }
    });
    return S;
  }

private:
  static constexpr size_t kMask = kElemsPerChunk - 1;

  struct GroupHeader {
    std::atomic<uint32_t> Refs;
    uint32_t NumSlots;
    GroupHeader(uint32_t Slots) : Refs(1), NumSlots(Slots) {}
  };

  static constexpr size_t kPayloadOff =
      (sizeof(GroupHeader) + alignof(T) - 1) / alignof(T) * alignof(T);

  struct Slot {
    GroupHeader *Hdr = nullptr;
    T *Data = nullptr; ///< this slot's kElemsPerChunk window
  };

  static T *payloadOf(GroupHeader *H) {
    return reinterpret_cast<T *>(reinterpret_cast<char *>(H) + kPayloadOff);
  }

  static GroupHeader *newGroup(uint32_t Slots) {
    size_t Bytes =
        kPayloadOff + (size_t(Slots) << LogElems) * sizeof(T);
    void *Mem = ::operator new(Bytes);
    GroupHeader *H = new (Mem) GroupHeader(Slots);
    // Zero the payload so group duplication may memcpy every byte
    // without reading indeterminate memory.
    std::memset(payloadOf(H), 0, (size_t(Slots) << LogElems) * sizeof(T));
    return H;
  }

  static void deref(GroupHeader *H) {
    if (H->Refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
      ::operator delete(static_cast<void *>(H));
  }

  void appendGroup(uint32_t Slots) {
    GroupHeader *H = newGroup(Slots);
    T *Payload = payloadOf(H);
    for (uint32_t I = 0; I < Slots; ++I)
      Table.push_back(
          Slot{H, Payload + (size_t(I) << LogElems)});
  }

  void ensureUniqueGroup(size_t SlotIdx) {
    GroupHeader *H = Table[SlotIdx].Hdr;
    if (H->Refs.load(std::memory_order_acquire) == 1)
      return;
    GroupHeader *N = newGroup(H->NumSlots);
    std::memcpy(payloadOf(N), payloadOf(H),
                (size_t(H->NumSlots) << LogElems) * sizeof(T));
    size_t First =
        SlotIdx - size_t(Table[SlotIdx].Data - payloadOf(H)) / kElemsPerChunk;
    for (uint32_t I = 0; I < H->NumSlots; ++I) {
      Table[First + I].Hdr = N;
      Table[First + I].Data = payloadOf(N) + (size_t(I) << LogElems);
    }
    deref(H);
  }

  /// Invokes \p F once per distinct group, in table order.
  template <typename Fn> void forEachGroup(Fn &&F) const {
    for (size_t I = 0; I < Table.size(); ++I)
      if (Table[I].Data == payloadOf(Table[I].Hdr))
        F(Table[I].Hdr);
  }

  void release() {
    forEachGroup([](GroupHeader *H) { deref(H); });
  }

  std::vector<Slot> Table;
  size_t Sz = 0;
  size_t Pad = 0;
};

} // namespace support
} // namespace dynsum

#endif // DYNSUM_SUPPORT_CHUNKEDSTORAGE_H
