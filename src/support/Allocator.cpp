//===----------------------------------------------------------------------===//
///
/// \file
/// BumpPtrAllocator implementation.
///
//===----------------------------------------------------------------------===//

#include "support/Allocator.h"

#include <cassert>

using namespace dynsum;

void *BumpPtrAllocator::allocate(size_t Size, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 &&
         "alignment must be a power of two");
  uintptr_t Current = reinterpret_cast<uintptr_t>(Cursor);
  uintptr_t Aligned = (Current + Align - 1) & ~uintptr_t(Align - 1);
  size_t Needed = (Aligned - Current) + Size;
  if (Cursor == nullptr || size_t(End - Cursor) < Needed) {
    addSlab(Size + Align);
    Current = reinterpret_cast<uintptr_t>(Cursor);
    Aligned = (Current + Align - 1) & ~uintptr_t(Align - 1);
  }
  Cursor = reinterpret_cast<char *>(Aligned + Size);
  assert(Cursor <= End && "bump allocation overran its slab");
  return reinterpret_cast<void *>(Aligned);
}

void BumpPtrAllocator::addSlab(size_t MinSize) {
  size_t Size = MinSize > SlabSize ? MinSize : SlabSize;
  Slab NewSlab;
  NewSlab.Memory = std::make_unique<char[]>(Size);
  NewSlab.Size = Size;
  Cursor = NewSlab.Memory.get();
  End = Cursor + Size;
  TotalBytes += Size;
  Slabs.push_back(std::move(NewSlab));
}

void BumpPtrAllocator::reset() {
  Slabs.clear();
  Cursor = nullptr;
  End = nullptr;
  TotalBytes = 0;
}
