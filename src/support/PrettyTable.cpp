//===----------------------------------------------------------------------===//
///
/// \file
/// PrettyTable implementation.
///
//===----------------------------------------------------------------------===//

#include "support/PrettyTable.h"

#include "support/Debug.h"
#include "support/OStream.h"

#include <cstdio>

using namespace dynsum;

PrettyTable &PrettyTable::row() {
  Rows.emplace_back();
  return *this;
}

PrettyTable &PrettyTable::cell(const std::string &Text) {
  if (Rows.empty())
    fatalError("PrettyTable::cell before row()");
  Rows.back().push_back(Text);
  return *this;
}

PrettyTable &PrettyTable::cell(uint64_t Value) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)Value);
  return cell(std::string(Buf));
}

PrettyTable &PrettyTable::cell(double Value, unsigned Decimals) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.*f", int(Decimals), Value);
  return cell(std::string(Buf));
}

void PrettyTable::print(OStream &OS) const {
  if (Rows.empty())
    return;
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Row.size() > Widths.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();
  }
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        OS << "  ";
      // Left-align the first (label) column, right-align the rest.
      OS.writePadded(Row[I], unsigned(Widths[I]), /*LeftAlign=*/I == 0);
    }
    OS << '\n';
  };
  PrintRow(Rows.front());
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W;
  OS.writeRepeated('-', unsigned(Total + 2 * (Widths.size() - 1)));
  OS << '\n';
  for (size_t I = 1; I < Rows.size(); ++I)
    PrintRow(Rows[I]);
}
