//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation for workload synthesis.
///
/// The workload generator must be reproducible across platforms and
/// standard-library versions, so it uses this xoshiro256** generator with
/// explicit distributions rather than <random>'s unspecified ones.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_RANDOM_H
#define DYNSUM_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dynsum {

/// xoshiro256** seeded via SplitMix64.
class Rng {
public:
  explicit Rng(uint64_t Seed) { reseed(Seed); }

  /// Re-seeds the generator deterministically from \p Seed.
  void reseed(uint64_t Seed);

  /// Returns the next 64 random bits.
  uint64_t next();

  /// Returns a uniform integer in [0, Bound); \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + int64_t(nextBelow(uint64_t(Hi - Lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0,1]).
  bool nextBool(double P);

  /// Picks a uniformly random element of \p Items (must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick from empty vector");
    return Items[nextBelow(Items.size())];
  }

private:
  uint64_t State[4];
};

/// Samples from a Zipf distribution over {0, ..., N-1} with exponent S.
/// Used to give workloads realistic skew (a few hot library methods and
/// fields, many cold ones).
class ZipfSampler {
public:
  ZipfSampler(size_t N, double S);

  /// Draws one index; smaller indices are more likely.
  size_t sample(Rng &R) const;

  size_t size() const { return Cdf.size(); }

private:
  std::vector<double> Cdf;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_RANDOM_H
