//===----------------------------------------------------------------------===//
///
/// \file
/// Fault-injection registry: a mutex-protected site map behind the
/// single-atomic-load armed flag.  The slow path only runs in chaos
/// tests, so a global mutex per armed hit is fine — what matters is
/// that the counters are exact so FireEvery/MaxFires schedules are
/// reproducible.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <chrono>
#include <map>
#include <mutex>
#include <new>
#include <thread>

namespace dynsum {
namespace support {

namespace detail {
std::atomic<bool> FaultsArmedFlag{false};
} // namespace detail

namespace {

struct SiteState {
  FaultSpec Spec;
  uint64_t Hits = 0;
  uint64_t Fires = 0;
};

std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

std::map<std::string, SiteState> &registry() {
  static std::map<std::string, SiteState> R;
  return R;
}

/// Counts the hit and decides whether this one fires; returns the spec
/// by value so the fault itself runs outside the lock.
bool countAndArm(const char *Site, FaultSpec &SpecOut) {
  std::lock_guard<std::mutex> L(registryMutex());
  auto It = registry().find(Site);
  if (It == registry().end())
    return false;
  SiteState &S = It->second;
  ++S.Hits;
  if (S.Fires >= S.Spec.MaxFires)
    return false;
  uint64_t Every = S.Spec.FireEvery ? S.Spec.FireEvery : 1;
  if (S.Hits % Every != 0)
    return false;
  ++S.Fires;
  SpecOut = S.Spec;
  return true;
}

} // namespace

void armFault(const std::string &Site, const FaultSpec &Spec) {
  std::lock_guard<std::mutex> L(registryMutex());
  registry()[Site] = SiteState{Spec, 0, 0};
  detail::FaultsArmedFlag.store(true, std::memory_order_relaxed);
}

void clearFaults() {
  std::lock_guard<std::mutex> L(registryMutex());
  registry().clear();
  detail::FaultsArmedFlag.store(false, std::memory_order_relaxed);
}

uint64_t faultHits(const std::string &Site) {
  std::lock_guard<std::mutex> L(registryMutex());
  auto It = registry().find(Site);
  return It == registry().end() ? 0 : It->second.Hits;
}

uint64_t faultFires(const std::string &Site) {
  std::lock_guard<std::mutex> L(registryMutex());
  auto It = registry().find(Site);
  return It == registry().end() ? 0 : It->second.Fires;
}

namespace detail {

void faultPointSlow(const char *Site) {
  FaultSpec Spec;
  if (!countAndArm(Site, Spec))
    return;
  switch (Spec.Kind) {
  case FaultKind::Throw:
    throw FaultInjectedError(Site);
  case FaultKind::Latency:
    std::this_thread::sleep_for(std::chrono::microseconds(Spec.Param));
    return;
  case FaultKind::BadAlloc:
    throw std::bad_alloc();
  case FaultKind::TornWrite:
    // Torn writes are polled via tornWriteLimit(), not thrown.
    return;
  }
}

size_t tornWriteLimitSlow(const char *Site) {
  FaultSpec Spec;
  if (!countAndArm(Site, Spec))
    return SIZE_MAX;
  if (Spec.Kind != FaultKind::TornWrite)
    return SIZE_MAX;
  return size_t(Spec.Param);
}

} // namespace detail

} // namespace support
} // namespace dynsum
