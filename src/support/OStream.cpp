//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the OStream formatting helpers and standard sinks.
///
//===----------------------------------------------------------------------===//

#include "support/OStream.h"

#include <cinttypes>
#include <cstring>

using namespace dynsum;

OStream::~OStream() = default;

void OStream::flush() {}

OStream &OStream::operator<<(uint64_t V) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  write(Buf, size_t(Len));
  return *this;
}

OStream &OStream::operator<<(int64_t V) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
  write(Buf, size_t(Len));
  return *this;
}

OStream &OStream::operator<<(double V) { return writeFixed(V, 6); }

OStream &OStream::writeFixed(double V, unsigned Decimals) {
  char Buf[64];
  int Len = std::snprintf(Buf, sizeof(Buf), "%.*f", int(Decimals), V);
  write(Buf, size_t(Len));
  return *this;
}

OStream &OStream::writePadded(std::string_view S, unsigned Width,
                              bool LeftAlign) {
  unsigned Pad = S.size() < Width ? Width - unsigned(S.size()) : 0;
  if (LeftAlign) {
    write(S.data(), S.size());
    writeRepeated(' ', Pad);
    return *this;
  }
  writeRepeated(' ', Pad);
  write(S.data(), S.size());
  return *this;
}

OStream &OStream::writeRepeated(char C, unsigned N) {
  char Buf[64];
  std::memset(Buf, C, sizeof(Buf));
  while (N > 0) {
    unsigned Chunk = N < sizeof(Buf) ? N : unsigned(sizeof(Buf));
    write(Buf, Chunk);
    N -= Chunk;
  }
  return *this;
}

void FileOStream::write(const char *Data, size_t Size) {
  std::fwrite(Data, 1, Size, Handle);
}

void FileOStream::flush() { std::fflush(Handle); }

OStream &dynsum::outs() {
  static FileOStream Stream(stdout);
  return Stream;
}

OStream &dynsum::errs() {
  static FileOStream Stream(stderr);
  return Stream;
}
