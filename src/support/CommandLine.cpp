//===----------------------------------------------------------------------===//
///
/// \file
/// CommandLine implementation.
///
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/StringExtras.h"

#include <cstdlib>
#include <string_view>

using namespace dynsum;

CommandLine::CommandLine(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg(Argv[I]);
    if (!startsWith(Arg, "--")) {
      Positional.emplace_back(Arg);
      continue;
    }
    Arg.remove_prefix(2);
    size_t Eq = Arg.find('=');
    std::string Name, Value;
    if (Eq == std::string_view::npos) {
      Name = std::string(Arg);
    } else {
      Name = std::string(Arg.substr(0, Eq));
      Value = std::string(Arg.substr(Eq + 1));
    }
    Flags.emplace(Name, Value);
    Ordered.emplace_back(std::move(Name), std::move(Value));
  }
}

std::vector<std::string> CommandLine::getAll(const std::string &Name) const {
  std::vector<std::string> Out;
  for (const auto &[Flag, Value] : Ordered)
    if (Flag == Name)
      Out.push_back(Value);
  return Out;
}

std::string CommandLine::getString(const std::string &Name,
                                   const std::string &Default) const {
  auto It = Flags.find(Name);
  return It == Flags.end() ? Default : It->second;
}

int64_t CommandLine::getInt(const std::string &Name, int64_t Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end() || It->second.empty())
    return Default;
  return std::strtoll(It->second.c_str(), nullptr, 10);
}

double CommandLine::getDouble(const std::string &Name, double Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end() || It->second.empty())
    return Default;
  return std::strtod(It->second.c_str(), nullptr);
}
