//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight output-stream abstraction used instead of <iostream>.
///
/// Library code never touches std::cout/std::cerr (which drag in static
/// constructors); it writes through OStream.  Concrete sinks are a stdio
/// FILE* (FileOStream) and an in-memory string (StringOStream).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_OSTREAM_H
#define DYNSUM_SUPPORT_OSTREAM_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace dynsum {

/// Abstract character sink with printf-free formatting helpers.
class OStream {
public:
  virtual ~OStream();

  /// Writes \p Size bytes starting at \p Data to the sink.
  virtual void write(const char *Data, size_t Size) = 0;

  /// Flushes any buffering the sink performs.  Default: no-op.
  virtual void flush();

  OStream &operator<<(char C) {
    write(&C, 1);
    return *this;
  }
  OStream &operator<<(std::string_view S) {
    write(S.data(), S.size());
    return *this;
  }
  OStream &operator<<(const char *S) { return *this << std::string_view(S); }
  OStream &operator<<(const std::string &S) {
    return *this << std::string_view(S);
  }
  OStream &operator<<(bool V) { return *this << (V ? "true" : "false"); }
  OStream &operator<<(uint64_t V);
  OStream &operator<<(int64_t V);
  OStream &operator<<(uint32_t V) { return *this << uint64_t(V); }
  OStream &operator<<(int32_t V) { return *this << int64_t(V); }
  OStream &operator<<(double V);

  /// Writes \p V with exactly \p Decimals digits after the decimal point.
  OStream &writeFixed(double V, unsigned Decimals);

  /// Writes \p S left- or right-padded with spaces to \p Width columns.
  OStream &writePadded(std::string_view S, unsigned Width, bool LeftAlign);

  /// Writes \p N repetitions of character \p C.
  OStream &writeRepeated(char C, unsigned N);
};

/// OStream that appends to a stdio FILE handle.  Does not own the handle.
class FileOStream : public OStream {
public:
  explicit FileOStream(std::FILE *Handle) : Handle(Handle) {}

  void write(const char *Data, size_t Size) override;
  void flush() override;

private:
  std::FILE *Handle;
};

/// OStream that accumulates into an owned std::string.
class StringOStream : public OStream {
public:
  void write(const char *Data, size_t Size) override {
    Buffer.append(Data, Size);
  }

  /// Returns the accumulated contents.
  const std::string &str() const { return Buffer; }

  /// Discards the accumulated contents.
  void clear() { Buffer.clear(); }

private:
  std::string Buffer;
};

/// Returns the process-wide stream bound to stdout.
OStream &outs();

/// Returns the process-wide stream bound to stderr.
OStream &errs();

} // namespace dynsum

#endif // DYNSUM_SUPPORT_OSTREAM_H
