//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide graceful-shutdown plumbing shared by the serve-path
/// front ends (the dynsum_tool --serve REPL and dynsum_serverd).
///
/// installShutdownHandlers() arms SIGINT/SIGTERM handlers that are
/// async-signal-safe by construction: they store the signal number in a
/// lock-free atomic and write one byte to a self-pipe.  The handlers
/// are installed WITHOUT SA_RESTART, so a blocking read the front end
/// is parked in (fgets on stdin, accept/recv on a socket) returns with
/// EINTR instead of swallowing the signal — the caller observes
/// shutdownRequested() and unwinds through its normal destructors.
/// That is the whole point: AnalysisService saves its shutdown snapshot
/// (ServiceOptions::SnapshotOnShutdownPath) from its destructor, so a
/// Ctrl-C that used to kill the process with the default disposition
/// now drains into the same warm-restart snapshot a clean "quit" does.
///
/// SIGPIPE is ignored as part of installation: a server writing to a
/// peer that already disconnected must see EPIPE, not die.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_SHUTDOWN_H
#define DYNSUM_SUPPORT_SHUTDOWN_H

namespace dynsum {
namespace support {

/// Arms the SIGINT/SIGTERM handlers (idempotent; call from the main
/// thread before spawning workers).  Returns false when the self-pipe
/// or sigaction setup fails — the caller keeps running with the default
/// dispositions.
bool installShutdownHandlers();

/// True once a handled signal has arrived.
bool shutdownRequested();

/// The signal that requested shutdown (SIGINT or SIGTERM), 0 if none.
int shutdownSignal();

/// Read end of the self-pipe: poll()able, becomes readable when a
/// signal arrives.  -1 before installShutdownHandlers().
int shutdownWakeFd();

/// Test hook: clears the request flag and drains the wake pipe so one
/// process can exercise several shutdown cycles.
void resetShutdownRequest();

} // namespace support
} // namespace dynsum

#endif // DYNSUM_SUPPORT_SHUTDOWN_H
