//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with inline storage for its first N elements.
///
/// PPTA summaries are overwhelmingly tiny (a handful of objects and
/// boundary tuples), yet the cache holds hundreds of thousands of them;
/// with std::vector each summary costs two heap blocks plus growth
/// slack.  SmallVector keeps up to N elements inside the object itself
/// and only touches the heap past that, and shrinkToFit() releases
/// growth slack when a summary is published into a long-lived cache.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_SMALLVECTOR_H
#define DYNSUM_SUPPORT_SMALLVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

namespace dynsum {

template <typename T, unsigned N> class SmallVector {
  // Heap growth allocates with plain ::operator new, which only
  // guarantees max_align_t alignment; reject over-aligned types.
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "SmallVector does not support over-aligned types");

public:
  SmallVector() = default;

  SmallVector(const SmallVector &Other) { appendAll(Other); }

  SmallVector(SmallVector &&Other) noexcept { takeFrom(Other); }

  SmallVector &operator=(const SmallVector &Other) {
    if (this == &Other)
      return *this;
    clear();
    appendAll(Other);
    return *this;
  }

  SmallVector &operator=(SmallVector &&Other) noexcept {
    if (this == &Other)
      return *this;
    destroy();
    takeFrom(Other);
    return *this;
  }

  ~SmallVector() { destroy(); }

  T *begin() { return Data; }
  T *end() { return Data + Size; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Size; }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  size_t capacity() const { return Cap; }

  T &operator[](size_t I) {
    assert(I < Size && "index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Size && "index out of range");
    return Data[I];
  }

  T &back() {
    assert(Size > 0 && "back of empty vector");
    return Data[Size - 1];
  }

  // Like std::vector, appending must stay safe when the argument
  // references an element of this vector: when growth is needed the
  // value is secured in a temporary before the old storage dies.
  void push_back(const T &V) {
    if (Size == Cap) {
      T Tmp(V);
      grow(Size + 1);
      new (Data + Size) T(std::move(Tmp));
    } else {
      new (Data + Size) T(V);
    }
    ++Size;
  }

  void push_back(T &&V) {
    if (Size == Cap) {
      T Tmp(std::move(V));
      grow(Size + 1);
      new (Data + Size) T(std::move(Tmp));
    } else {
      new (Data + Size) T(std::move(V));
    }
    ++Size;
  }

  template <typename... Args> T &emplace_back(Args &&...A) {
    if (Size == Cap) {
      T Tmp(std::forward<Args>(A)...);
      grow(Size + 1);
      new (Data + Size) T(std::move(Tmp));
    } else {
      new (Data + Size) T(std::forward<Args>(A)...);
    }
    return Data[Size++];
  }

  void pop_back() {
    assert(Size > 0 && "pop_back of empty vector");
    Data[--Size].~T();
  }

  void clear() {
    for (size_t I = 0; I < Size; ++I)
      Data[I].~T();
    Size = 0;
  }

  void reserve(size_t NewCap) {
    if (NewCap > Cap)
      reallocate(NewCap);
  }

  void resize(size_t NewSize) {
    if (NewSize < Size) {
      for (size_t I = NewSize; I < Size; ++I)
        Data[I].~T();
    } else {
      grow(NewSize);
      for (size_t I = Size; I < NewSize; ++I)
        new (Data + I) T();
    }
    Size = NewSize;
  }

  /// Releases growth slack: elements move back inline when they fit,
  /// otherwise into a heap block of exactly size() elements.
  void shrinkToFit() {
    if (Data == inlineData() || Size == Cap)
      return;
    reallocate(Size);
  }

  friend bool operator==(const SmallVector &A, const SmallVector &B) {
    if (A.Size != B.Size)
      return false;
    for (size_t I = 0; I < A.Size; ++I)
      if (!(A.Data[I] == B.Data[I]))
        return false;
    return true;
  }

private:
  T *inlineData() { return reinterpret_cast<T *>(InlineStorage); }

  void grow(size_t MinCap) {
    if (MinCap <= Cap)
      return;
    size_t NewCap = Cap * 2;
    if (NewCap < MinCap)
      NewCap = MinCap;
    reallocate(NewCap);
  }

  /// Moves the elements into storage of capacity max(NewCap, N).
  void reallocate(size_t NewCap) {
    T *NewData;
    size_t ActualCap;
    if (NewCap <= N) {
      NewData = inlineData();
      ActualCap = N;
    } else {
      NewData = static_cast<T *>(::operator new(NewCap * sizeof(T)));
      ActualCap = NewCap;
    }
    if (NewData == Data)
      return;
    for (size_t I = 0; I < Size; ++I) {
      new (NewData + I) T(std::move(Data[I]));
      Data[I].~T();
    }
    if (Data != inlineData())
      ::operator delete(Data);
    Data = NewData;
    Cap = ActualCap;
  }

  void destroy() {
    clear();
    if (Data != inlineData())
      ::operator delete(Data);
  }

  void appendAll(const SmallVector &Other) {
    reserve(Other.Size);
    for (size_t I = 0; I < Other.Size; ++I)
      new (Data + I) T(Other.Data[I]);
    Size = Other.Size;
  }

  /// Steals Other's heap block, or moves its inline elements; leaves
  /// Other empty (inline, size 0).
  void takeFrom(SmallVector &Other) {
    if (Other.Data != Other.inlineData()) {
      Data = Other.Data;
      Size = Other.Size;
      Cap = Other.Cap;
    } else {
      Data = inlineData();
      Cap = N;
      Size = Other.Size;
      for (size_t I = 0; I < Size; ++I) {
        new (Data + I) T(std::move(Other.Data[I]));
        Other.Data[I].~T();
      }
    }
    Other.Data = Other.inlineData();
    Other.Size = 0;
    Other.Cap = N;
  }

  alignas(T) unsigned char InlineStorage[N * sizeof(T)];
  T *Data = reinterpret_cast<T *>(InlineStorage);
  size_t Size = 0;
  size_t Cap = N;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_SMALLVECTOR_H
