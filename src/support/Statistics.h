//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters collected by the analyses and printed by harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_STATISTICS_H
#define DYNSUM_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <string>

namespace dynsum {

class OStream;

/// An instance-owned bag of named counters.  Analyses carry their own
/// Statistics object (no global registry; results stay comparable across
/// side-by-side analysis instances).
class Statistics {
public:
  /// Adds \p Delta to counter \p Name, creating it at zero on first use.
  void add(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Returns counter \p Name, or zero when it was never touched.
  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// Resets every counter to zero.
  void clear() { Counters.clear(); }

  /// Writes "name = value" lines sorted by name.
  void print(OStream &OS) const;

  const std::map<std::string, uint64_t> &all() const { return Counters; }

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace dynsum

#endif // DYNSUM_SUPPORT_STATISTICS_H
