//===----------------------------------------------------------------------===//
///
/// \file
/// Deadlines and cooperative cancellation for the query path.
///
/// A Deadline is a small value type carried by AnalysisOptions through
/// every engine/analysis layer: an optional steady-clock expiry plus an
/// optional shared cancel flag.  It is cheap to copy (a time point and
/// one shared_ptr) and cheap to ignore — code that never checks it
/// behaves exactly as before.  The hot-path contract is that callers
/// poll via Budget (analysis/Query.h), which strides the clock reads so
/// an unlimited deadline costs nothing and a live one costs one
/// steady_clock read every few hundred worklist steps.
///
/// CancelToken is the writer side: a server thread holds the token and
/// flips it to abort every in-flight query that carries a Deadline
/// derived from it.  The flag is a relaxed atomic — cancellation is a
/// hint that becomes visible "soon", not a synchronization point.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SUPPORT_DEADLINE_H
#define DYNSUM_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <memory>

namespace dynsum {
namespace support {

/// Shared cancellation flag.  Copies observe the same flag; a
/// default-constructed token is live (not cancelled) and independent.
class CancelToken {
public:
  CancelToken() : Flag(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation of every Deadline built from this token.
  void cancel() const { Flag->store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return Flag->load(std::memory_order_relaxed);
  }

private:
  friend class Deadline;
  std::shared_ptr<std::atomic<bool>> Flag;
};

/// An optional expiry time plus an optional cancel flag.  The default
/// instance is unlimited: hasLimit() is false and checks are free.
class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// No deadline, no cancellation — the default.
  static Deadline unlimited() { return Deadline(); }

  /// Expires \p Seconds from now (<= 0 expires immediately).
  static Deadline in(double Seconds) {
    Deadline D;
    D.HasExpiry = true;
    D.Expiry = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(Seconds));
    return D;
  }

  /// Expires at \p At.
  static Deadline at(Clock::time_point At) {
    Deadline D;
    D.HasExpiry = true;
    D.Expiry = At;
    return D;
  }

  /// Returns a copy that additionally aborts when \p T is cancelled.
  Deadline withCancel(const CancelToken &T) const {
    Deadline D = *this;
    D.CancelFlag = T.Flag;
    return D;
  }

  /// True when expired() or cancelled() can ever return true — lets
  /// hot loops skip the clock entirely on the common unlimited path.
  bool hasLimit() const { return HasExpiry || CancelFlag != nullptr; }

  bool cancelled() const {
    return CancelFlag && CancelFlag->load(std::memory_order_relaxed);
  }

  bool expired() const { return HasExpiry && Clock::now() >= Expiry; }

  /// Seconds until expiry (negative when past due); meaningless for an
  /// unlimited deadline.
  double remainingSeconds() const {
    if (!HasExpiry)
      return 0.0;
    return std::chrono::duration<double>(Expiry - Clock::now()).count();
  }

private:
  Clock::time_point Expiry{};
  bool HasExpiry = false;
  std::shared_ptr<std::atomic<bool>> CancelFlag;
};

} // namespace support
} // namespace dynsum

#endif // DYNSUM_SUPPORT_DEADLINE_H
