//===----------------------------------------------------------------------===//
///
/// \file
/// Rng and ZipfSampler implementation.
///
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <algorithm>
#include <cmath>

using namespace dynsum;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

void Rng::reseed(uint64_t Seed) {
  for (auto &Word : State)
    Word = splitMix64(Seed);
  // All-zero state would lock xoshiro at zero forever.
  if (State[0] == 0 && State[1] == 0 && State[2] == 0 && State[3] == 0)
    State[0] = 1;
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "bound must be nonzero");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = (0 - Bound) % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

double Rng::nextDouble() {
  return double(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

ZipfSampler::ZipfSampler(size_t N, double S) {
  assert(N > 0 && "Zipf over empty domain");
  Cdf.resize(N);
  double Sum = 0.0;
  for (size_t I = 0; I < N; ++I) {
    Sum += 1.0 / std::pow(double(I + 1), S);
    Cdf[I] = Sum;
  }
  for (double &V : Cdf)
    V /= Sum;
}

size_t ZipfSampler::sample(Rng &R) const {
  double U = R.nextDouble();
  auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
  if (It == Cdf.end())
    return Cdf.size() - 1;
  return size_t(It - Cdf.begin());
}
