//===----------------------------------------------------------------------===//
///
/// \file
/// QueryScheduler implementation.
///
//===----------------------------------------------------------------------===//

#include "engine/QueryScheduler.h"

#include "analysis/SummaryIO.h"
#include "support/Parallel.h"
#include "support/Timer.h"

#include <thread>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::engine;

unsigned QueryScheduler::effectiveThreads(size_t NumQueries) const {
  // Each worker is an OS thread; clampThreads caps requests (including
  // unsigned wraparounds of negative inputs) at something the OS can
  // deliver — the same clamp the commit pipeline uses.
  unsigned T = clampThreads(Opts.NumThreads);
  // Never spawn more workers than there are queries to shard.
  if (NumQueries < T)
    T = unsigned(NumQueries);
  return T == 0 ? 1 : T;
}

void QueryScheduler::runShard(const QueryBatch &B, size_t Shard,
                              unsigned Stride,
                              const analysis::AnalysisOptions &AnalysisOpts,
                              analysis::SummaryExchange *Exchange,
                              std::vector<QueryOutcome> &Outcomes,
                              BatchStats &Stats) {
  DynSumAnalysis A(Graph, AnalysisOpts);
  if (Exchange)
    A.setSummaryExchange(Exchange);

  const std::vector<pag::NodeId> &Nodes = B.nodes();
  for (size_t I = Shard; I < Nodes.size(); I += Stride) {
    // A tripped deadline fails the REST of the shard fast: queries that
    // have not started yet get an empty Timeout/Cancelled outcome
    // instead of each burning one more summary computation before their
    // first poll.  Overshoot past the deadline is thus bounded by the
    // one query in flight per worker.
    if (AnalysisOpts.Deadline.hasLimit() &&
        (AnalysisOpts.Deadline.expired() ||
         AnalysisOpts.Deadline.cancelled())) {
      QueryOutcome &Out = Outcomes[I];
      Out.BudgetExceeded = true;
      Out.Status = AnalysisOpts.Deadline.cancelled() ? QueryStatus::Cancelled
                                                     : QueryStatus::Timeout;
      if (Out.Status == QueryStatus::Timeout)
        ++Stats.TimedOut;
      else
        ++Stats.Cancelled;
      continue;
    }
    QueryResult R = A.query(Nodes[I]);
    QueryOutcome &Out = Outcomes[I];
    Out.AllocSites = R.allocSites();
    Out.BudgetExceeded = R.BudgetExceeded;
    Out.Status = R.Status;
    Out.Steps = R.Steps;
    Stats.TotalSteps += R.Steps;
    if (R.Status == QueryStatus::Timeout)
      ++Stats.TimedOut;
    else if (R.Status == QueryStatus::Cancelled)
      ++Stats.Cancelled;
  }
  Stats.SharedHits = A.stats().get("dynsum.sharedHits");
  Stats.LocalHits = A.stats().get("dynsum.cacheHits");
  Stats.SummariesComputed = A.stats().get("dynsum.pptaComputed");
}

BatchResult QueryScheduler::run(const QueryBatch &B) {
  return run(B, Opts.Analysis.Deadline);
}

BatchResult QueryScheduler::run(const QueryBatch &B,
                                const support::Deadline &DL) {
  Timer T;
  analysis::AnalysisOptions AnalysisOpts = Opts.Analysis;
  AnalysisOpts.Deadline = DL;
  BatchResult Result;
  Result.Outcomes.resize(B.size());

  // Pin the batch's epoch: an external-store scheduler is pinned for
  // life at the generation its PAG was built for; an own-store
  // scheduler pins whatever the store holds now (nothing commits
  // against an owned store mid-batch).
  SummaryStoreEpoch Epoch(*StorePtr,
                          HasPinnedGen ? PinnedGen : StorePtr->generation());
  analysis::SummaryExchange *Exchange =
      Opts.ShareSummaries ? &Epoch : nullptr;
  Result.Stats.Generation = Epoch.generation();

  unsigned Threads = effectiveThreads(B.size());
  Result.Stats.ThreadsUsed = Threads;
  if (B.empty()) {
    Result.Stats.StoreSize = StorePtr->size();
    Result.Stats.Seconds = T.seconds();
    return Result;
  }

  std::vector<BatchStats> ShardStats(Threads);
  if (Threads == 1) {
    runShard(B, 0, 1, AnalysisOpts, Exchange, Result.Outcomes,
             ShardStats[0]);
  } else {
    std::vector<std::thread> Workers;
    Workers.reserve(Threads);
    for (unsigned W = 0; W < Threads; ++W)
      Workers.emplace_back([this, &B, W, Threads, &AnalysisOpts, Exchange,
                            &Result, &ShardStats] {
        runShard(B, W, Threads, AnalysisOpts, Exchange, Result.Outcomes,
                 ShardStats[W]);
      });
    for (std::thread &W : Workers)
      W.join();
  }

  for (const BatchStats &S : ShardStats) {
    Result.Stats.TotalSteps += S.TotalSteps;
    Result.Stats.SharedHits += S.SharedHits;
    Result.Stats.LocalHits += S.LocalHits;
    Result.Stats.SummariesComputed += S.SummariesComputed;
    Result.Stats.TimedOut += S.TimedOut;
    Result.Stats.Cancelled += S.Cancelled;
  }
  Result.Stats.StoreSize = StorePtr->size();
  Result.Stats.Seconds = T.seconds();
  return Result;
}

BatchResult QueryScheduler::run(const std::vector<pag::NodeId> &Nodes) {
  QueryBatch B;
  for (pag::NodeId N : Nodes)
    B.add(N);
  return run(B);
}

//===----------------------------------------------------------------------===//
// Warm start through SummaryIO
//===----------------------------------------------------------------------===//
//
// SummaryIO speaks DynSumAnalysis, whose cache is the authoritative
// on-disk schema (fingerprint checks included).  The engine goes through
// a staging analysis in both directions rather than duplicating the
// format: load = deserialize into staging, publish all; save = drain the
// store into staging, serialize.

bool QueryScheduler::loadSummariesBuffer(std::string_view Data) {
  DynSumAnalysis Staging(Graph, Opts.Analysis);
  if (!deserializeSummaries(Staging, Data))
    return false;
  StorePtr->seedFrom(Staging);
  return true;
}

bool QueryScheduler::loadSummaries(const std::string &Path) {
  DynSumAnalysis Staging(Graph, Opts.Analysis);
  if (!loadSummariesFile(Staging, Path))
    return false;
  StorePtr->seedFrom(Staging);
  return true;
}

std::string QueryScheduler::serializeSummaries() const {
  DynSumAnalysis Staging(Graph, Opts.Analysis);
  StorePtr->drainInto(Staging);
  return analysis::serializeSummaries(Staging);
}

bool QueryScheduler::saveSummaries(const std::string &Path) const {
  DynSumAnalysis Staging(Graph, Opts.Analysis);
  StorePtr->drainInto(Staging);
  return saveSummariesFile(Staging, Path);
}
