//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel batched query engine.
///
/// A QueryScheduler owns a shared summary store for one PAG and answers
/// QueryBatches by sharding them round-robin over worker threads.  Each
/// worker owns a private DynSumAnalysis — its own StackPools, summary
/// cache and budget accounting — so the sequential algorithms run
/// unmodified; the only cross-thread structure is the read-mostly
/// SharedSummaryStore that lets workers reuse each other's
/// context-independent PPTA summaries.
///
/// Because summaries are deterministic in (node, fields, state) and
/// sharing only ever substitutes an identical summary for a
/// recomputation, batched answers project onto exactly the same
/// allocation sites as the sequential path for every query that
/// completes within budget.
///
/// The store persists across batches (later batches warm-start on
/// earlier ones) and round-trips through SummaryIO for cross-process
/// warm starts.
///
/// Epoch handoff: a scheduler normally owns its store, but an
/// AnalysisService hands every generation's scheduler one long-lived
/// external store plus the generation number its PAG was built for.
/// Each batch then runs behind a SummaryStoreEpoch pinned to that
/// generation, so a commit that bumps the store mid-batch makes the
/// draining batch's remaining probes miss (and its publishes drop)
/// instead of mixing summaries across program versions.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ENGINE_QUERYSCHEDULER_H
#define DYNSUM_ENGINE_QUERYSCHEDULER_H

#include "engine/QueryBatch.h"
#include "engine/SummaryStore.h"

#include <string>
#include <string_view>

namespace dynsum {
namespace engine {

class QueryScheduler {
public:
  explicit QueryScheduler(const pag::PAG &G, EngineOptions Opts = {})
      : Graph(G), Opts(Opts), StorePtr(&OwnStore) {}

  /// Epoch handoff (AnalysisService): answer batches out of the
  /// external \p Shared store, pinned to \p Generation — the store
  /// generation \p G corresponds to.  \p Shared must outlive the
  /// scheduler.  Once the store moves past \p Generation every batch
  /// through this scheduler still answers correctly (against \p G) but
  /// without shared reuse.
  QueryScheduler(const pag::PAG &G, EngineOptions Opts,
                 SharedSummaryStore &Shared, uint64_t Generation)
      : Graph(G), Opts(Opts), StorePtr(&Shared), PinnedGen(Generation),
        HasPinnedGen(true) {}

  /// Answers every query of \p B; outcome i answers query i.
  BatchResult run(const QueryBatch &B);

  /// Same, but every query of the batch shares \p DL: a query that
  /// trips the deadline (or its CancelToken) unwinds with a partial
  /// sound-fallback outcome whose Status is Timeout / Cancelled.  The
  /// deadline overrides any Deadline already in the engine's
  /// AnalysisOptions for this batch only.
  BatchResult run(const QueryBatch &B, const support::Deadline &DL);

  /// Convenience: batch up \p Nodes and run.
  BatchResult run(const std::vector<pag::NodeId> &Nodes);

  /// Warm start: merges a SummaryIO file/buffer (saved by either this
  /// engine or a sequential DynSumAnalysis on the same program) into the
  /// shared store.  Returns false and leaves the store untouched on a
  /// malformed buffer or a program-fingerprint mismatch.
  bool loadSummaries(const std::string &Path);
  bool loadSummariesBuffer(std::string_view Data);

  /// Persists the shared store through SummaryIO for a later process
  /// (loadable by this engine or by a sequential DynSumAnalysis).
  bool saveSummaries(const std::string &Path) const;
  std::string serializeSummaries() const;

  /// Threads a batch of \p NumQueries would use under the options.
  unsigned effectiveThreads(size_t NumQueries) const;

  const pag::PAG &graph() const { return Graph; }
  const EngineOptions &options() const { return Opts; }
  SharedSummaryStore &store() { return *StorePtr; }
  const SharedSummaryStore &store() const { return *StorePtr; }

private:
  /// Runs queries [\p Indices] of \p B on one private analysis instance,
  /// writing outcomes straight into their slots of \p Outcomes.
  /// \p Exchange is the batch's pinned-epoch store view (null when
  /// sharing is off).
  void runShard(const QueryBatch &B, size_t Shard, unsigned Stride,
                const analysis::AnalysisOptions &AnalysisOpts,
                analysis::SummaryExchange *Exchange,
                std::vector<QueryOutcome> &Outcomes, BatchStats &Stats);

  const pag::PAG &Graph;
  EngineOptions Opts;
  SharedSummaryStore OwnStore;
  SharedSummaryStore *StorePtr;
  /// Epoch pin for external-store schedulers; own-store schedulers pin
  /// each batch at the store's generation when the batch starts.
  uint64_t PinnedGen = 0;
  bool HasPinnedGen = false;
};

} // namespace engine
} // namespace dynsum

#endif // DYNSUM_ENGINE_QUERYSCHEDULER_H
