//===----------------------------------------------------------------------===//
///
/// \file
/// SharedSummaryStore implementation.
///
//===----------------------------------------------------------------------===//

#include "engine/SummaryStore.h"

#include <mutex>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::engine;

bool SharedSummaryStore::fetch(pag::NodeId Node,
                               const std::vector<uint32_t> &Fields,
                               RsmState S, PortableSummary &Out) {
  uint64_t D = digest(Node, Fields, S);
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  auto It = Map.find(D);
  if (It == Map.end())
    return false;
  if (matches(It->second, Node, Fields, S)) {
    Out = It->second.Summary;
    return true;
  }
  for (const Entry &E : Overflow) {
    if (matches(E, Node, Fields, S)) {
      Out = E.Summary;
      return true;
    }
  }
  return false;
}

void SharedSummaryStore::publish(pag::NodeId Node,
                                 std::vector<uint32_t> Fields, RsmState S,
                                 PortableSummary Summary) {
  uint64_t D = digest(Node, Fields, S);
  // Trim growth slack outside the lock: the store holds summaries for
  // the lifetime of the scheduler, and every worker publishes, so slack
  // would accumulate across threads and batches.
  Summary.Objects.shrink_to_fit();
  Summary.Tuples.shrink_to_fit();
  Summary.FieldData.shrink_to_fit();
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  if (Map.empty())
    Map.reserve(1024); // skip the early rehash cascade of a cold batch
  auto It = Map.find(D);
  if (It == Map.end()) {
    Map.emplace(D, Entry{Node, S, std::move(Fields), std::move(Summary)});
    ++Count;
    return;
  }
  // Digest taken.  First writer wins for the same key; a different key
  // with the same digest spills into the overflow list.
  if (matches(It->second, Node, Fields, S))
    return;
  for (const Entry &E : Overflow)
    if (matches(E, Node, Fields, S))
      return;
  Overflow.push_back(Entry{Node, S, std::move(Fields), std::move(Summary)});
  ++Count;
}

size_t SharedSummaryStore::size() const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  return Count;
}

void SharedSummaryStore::clear() {
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  Map.clear();
  Overflow.clear();
  Count = 0;
}

void SharedSummaryStore::seedFrom(const DynSumAnalysis &A) {
  const StackPool &Fields = A.fieldStacks();
  for (const auto &[PackedKey, Summary] : A.summaryCache()) {
    // packSummaryKey layout: bit 0 = state, bits 1..32 = node,
    // bits 33..63 = field-stack id.
    pag::NodeId Node = pag::NodeId((PackedKey >> 1) & 0xffffffffu);
    RsmState S = (PackedKey & 1) == 0 ? RsmState::S1 : RsmState::S2;
    StackId F{uint32_t(PackedKey >> 33)};
    publish(Node, Fields.elements(F), S, A.exportSummary(Summary));
  }
}

void SharedSummaryStore::drainInto(DynSumAnalysis &A) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  auto Install = [&](const Entry &E) {
    A.insertSummary(E.Node, A.fieldStacks().make(E.Fields), E.State,
                    A.internSummary(E.Summary));
  };
  for (const auto &[D, E] : Map) {
    (void)D;
    Install(E);
  }
  for (const Entry &E : Overflow)
    Install(E);
}
