//===----------------------------------------------------------------------===//
///
/// \file
/// SharedSummaryStore implementation.
///
//===----------------------------------------------------------------------===//

#include "engine/SummaryStore.h"

#include <mutex>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::engine;

// Contended acquires are counted with a try-lock probe first: the probe
// failing means a writer (or, for the writer path, anyone) held the
// lock at that instant, which is exactly the serialization the
// LockContended counter is meant to expose.

std::shared_lock<std::shared_mutex>
SharedSummaryStore::lockShared() const {
  std::shared_lock<std::shared_mutex> Lock(Mutex, std::try_to_lock);
  if (!Lock.owns_lock()) {
    NumLockContended.fetch_add(1, std::memory_order_relaxed);
    Lock.lock();
  }
  return Lock;
}

std::unique_lock<std::shared_mutex>
SharedSummaryStore::lockUnique() const {
  std::unique_lock<std::shared_mutex> Lock(Mutex, std::try_to_lock);
  if (!Lock.owns_lock()) {
    NumLockContended.fetch_add(1, std::memory_order_relaxed);
    Lock.lock();
  }
  return Lock;
}

bool SharedSummaryStore::fetch(pag::NodeId Node,
                               const std::vector<uint32_t> &Fields,
                               RsmState S, PortableSummary &Out) {
  NumFetches.fetch_add(1, std::memory_order_relaxed);
  uint64_t D = digest(Node, Fields, S);
  std::shared_lock<std::shared_mutex> Lock = lockShared();
  auto It = Map.find(D);
  if (It == Map.end())
    return false;
  if (matches(It->second, Node, Fields, S)) {
    Out = It->second.Summary;
    NumHits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  for (const Entry &E : Overflow) {
    if (matches(E, Node, Fields, S)) {
      Out = E.Summary;
      NumHits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool SharedSummaryStore::fetchAt(uint64_t AtGen, pag::NodeId Node,
                                 const std::vector<uint32_t> &Fields,
                                 RsmState S, PortableSummary &Out) {
  NumFetches.fetch_add(1, std::memory_order_relaxed);
  uint64_t D = digest(Node, Fields, S);
  std::shared_lock<std::shared_mutex> Lock = lockShared();
  // A stale epoch means the caller traverses a superseded PAG: current
  // entries may only hold for the new graph, so every probe must miss.
  if (AtGen != Gen) {
    NumStaleFetches.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  auto It = Map.find(D);
  if (It == Map.end())
    return false;
  if (matches(It->second, Node, Fields, S)) {
    Out = It->second.Summary;
    NumHits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  for (const Entry &E : Overflow) {
    if (matches(E, Node, Fields, S)) {
      Out = E.Summary;
      NumHits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void SharedSummaryStore::publish(pag::NodeId Node,
                                 std::vector<uint32_t> Fields, RsmState S,
                                 PortableSummary Summary) {
  uint64_t D = digest(Node, Fields, S);
  // Trim growth slack outside the lock: the store holds summaries for
  // the lifetime of the scheduler, and every worker publishes, so slack
  // would accumulate across threads and batches.
  Summary.Objects.shrink_to_fit();
  Summary.Tuples.shrink_to_fit();
  Summary.FieldData.shrink_to_fit();
  std::unique_lock<std::shared_mutex> Lock = lockUnique();
  if (Map.empty())
    Map.reserve(1024); // skip the early rehash cascade of a cold batch
  auto It = Map.find(D);
  if (It == Map.end()) {
    Map.emplace(D, Entry{Node, S, std::move(Fields), std::move(Summary)});
    ++Count;
    NumPublishes.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Digest taken.  First writer wins for the same key; a different key
  // with the same digest spills into the overflow list.
  if (matches(It->second, Node, Fields, S))
    return;
  for (const Entry &E : Overflow)
    if (matches(E, Node, Fields, S))
      return;
  Overflow.push_back(Entry{Node, S, std::move(Fields), std::move(Summary)});
  ++Count;
  NumPublishes.fetch_add(1, std::memory_order_relaxed);
}

void SharedSummaryStore::publishAt(uint64_t AtGen, pag::NodeId Node,
                                   std::vector<uint32_t> Fields, RsmState S,
                                   PortableSummary Summary) {
  {
    std::shared_lock<std::shared_mutex> Lock = lockShared();
    // A summary computed against a superseded PAG must never enter the
    // current generation.  The recheck under the publish lock below
    // closes the gap between this probe and the insert.
    if (AtGen != Gen) {
      NumStalePublishes.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  Summary.Objects.shrink_to_fit();
  Summary.Tuples.shrink_to_fit();
  Summary.FieldData.shrink_to_fit();
  uint64_t D = digest(Node, Fields, S);
  std::unique_lock<std::shared_mutex> Lock = lockUnique();
  if (AtGen != Gen) {
    NumStalePublishes.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (Map.empty())
    Map.reserve(1024);
  auto It = Map.find(D);
  if (It == Map.end()) {
    Map.emplace(D, Entry{Node, S, std::move(Fields), std::move(Summary)});
    ++Count;
    NumPublishes.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (matches(It->second, Node, Fields, S))
    return;
  for (const Entry &E : Overflow)
    if (matches(E, Node, Fields, S))
      return;
  Overflow.push_back(Entry{Node, S, std::move(Fields), std::move(Summary)});
  ++Count;
  NumPublishes.fetch_add(1, std::memory_order_relaxed);
}

uint64_t SharedSummaryStore::generation() const {
  std::shared_lock<std::shared_mutex> Lock = lockShared();
  return Gen;
}

size_t SharedSummaryStore::beginGeneration(
    const pag::PAG &NewGraph, const incremental::InvalidationPlan &Plan) {
  std::unique_lock<std::shared_mutex> Lock = lockUnique();

  // Node ids are stable across delta builds, so surviving entries carry
  // over verbatim: digests unchanged, erase in place — no rehash, no
  // entry moves, and the unique lock blocking reader batches is held
  // for a plain scan.  An entry drops when its node vanished
  // (defensive; ids are append-only in practice) or its method is
  // invalidated.
  auto Drops = [&](const Entry &E) {
    return E.Node >= NewGraph.numNodes() ||
           Plan.Methods.count(NewGraph.node(E.Node).Method) != 0;
  };

  size_t Kept = 0;
  for (auto It = Map.begin(); It != Map.end();) {
    if (Drops(It->second)) {
      It = Map.erase(It);
    } else {
      ++It;
      ++Kept;
    }
  }
  for (auto It = Overflow.begin(); It != Overflow.end();) {
    if (Drops(*It)) {
      It = Overflow.erase(It);
    } else {
      ++It;
      ++Kept;
    }
  }

  size_t Dropped = Count - Kept;
  Count = Kept;
  ++Gen;
  NumInvalidated.fetch_add(Dropped, std::memory_order_relaxed);
  return Dropped;
}

size_t SharedSummaryStore::size() const {
  std::shared_lock<std::shared_mutex> Lock = lockShared();
  return Count;
}

void SharedSummaryStore::clear() {
  std::unique_lock<std::shared_mutex> Lock = lockUnique();
  NumInvalidated.fetch_add(Count, std::memory_order_relaxed);
  Map.clear();
  Overflow.clear();
  Count = 0;
  ++Gen; // everything a stale epoch might still publish is invalid now
}

void SharedSummaryStore::seedFrom(const DynSumAnalysis &A) {
  const StackPool &Fields = A.fieldStacks();
  for (const auto &[PackedKey, Summary] : A.summaryCache()) {
    // packSummaryKey layout: bit 0 = state, bits 1..32 = node,
    // bits 33..63 = field-stack id.
    pag::NodeId Node = pag::NodeId((PackedKey >> 1) & 0xffffffffu);
    RsmState S = (PackedKey & 1) == 0 ? RsmState::S1 : RsmState::S2;
    StackId F{uint32_t(PackedKey >> 33)};
    publish(Node, Fields.elements(F), S, A.exportSummary(Summary));
  }
}

StoreCounters SharedSummaryStore::counters() const {
  StoreCounters C;
  C.Fetches = NumFetches.load(std::memory_order_relaxed);
  C.Hits = NumHits.load(std::memory_order_relaxed);
  C.StaleFetches = NumStaleFetches.load(std::memory_order_relaxed);
  C.Publishes = NumPublishes.load(std::memory_order_relaxed);
  C.StalePublishes = NumStalePublishes.load(std::memory_order_relaxed);
  C.Invalidated = NumInvalidated.load(std::memory_order_relaxed);
  C.LockContended = NumLockContended.load(std::memory_order_relaxed);
  return C;
}

void SharedSummaryStore::drainInto(DynSumAnalysis &A) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  auto Install = [&](const Entry &E) {
    A.insertSummary(E.Node, A.fieldStacks().make(E.Fields), E.State,
                    A.internSummary(E.Summary));
  };
  for (const auto &[D, E] : Map) {
    (void)D;
    Install(E);
  }
  for (const Entry &E : Overflow)
    Install(E);
}
