//===----------------------------------------------------------------------===//
///
/// \file
/// SharedSummaryStore implementation.
///
//===----------------------------------------------------------------------===//

#include "engine/SummaryStore.h"

#include <mutex>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::engine;

bool SharedSummaryStore::fetch(pag::NodeId Node,
                               const std::vector<uint32_t> &Fields,
                               RsmState S, PortableSummary &Out) {
  Key K{Node, Fields, S};
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  auto It = Map.find(K);
  if (It == Map.end())
    return false;
  Out = It->second;
  return true;
}

void SharedSummaryStore::publish(pag::NodeId Node,
                                 const std::vector<uint32_t> &Fields,
                                 RsmState S, PortableSummary Summary) {
  Key K{Node, Fields, S};
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  // First writer wins; every writer computes the same summary for a key.
  Map.emplace(std::move(K), std::move(Summary));
}

size_t SharedSummaryStore::size() const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  return Map.size();
}

void SharedSummaryStore::clear() {
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  Map.clear();
}

void SharedSummaryStore::seedFrom(const DynSumAnalysis &A) {
  const StackPool &Fields = A.fieldStacks();
  for (const auto &[PackedKey, Summary] : A.summaryCache()) {
    // packSummaryKey layout: bit 0 = state, bits 1..32 = node,
    // bits 33..63 = field-stack id.
    pag::NodeId Node = pag::NodeId((PackedKey >> 1) & 0xffffffffu);
    RsmState S = (PackedKey & 1) == 0 ? RsmState::S1 : RsmState::S2;
    StackId F{uint32_t(PackedKey >> 33)};
    publish(Node, Fields.elements(F), S, A.exportSummary(Summary));
  }
}

void SharedSummaryStore::drainInto(DynSumAnalysis &A) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  for (const auto &[K, Summary] : Map)
    A.insertSummary(K.Node, A.fieldStacks().make(K.Fields), K.State,
                    A.internSummary(Summary));
}
