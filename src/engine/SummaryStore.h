//===----------------------------------------------------------------------===//
///
/// \file
/// Read-mostly cross-thread store of complete PPTA summaries.
///
/// A PPTA summary depends only on the PAG and the (node, field-stack,
/// state) key — never on the querying context or the computing thread —
/// so every worker of a batch may reuse every other worker's summaries.
/// Summaries are held in the pool-independent PortableSummary form
/// (StackIds are private to each worker's StackPool) and re-interned by
/// the fetching DynSumAnalysis.
///
/// The store is append-only within a batch: publish never overwrites
/// (all writers compute identical summaries for a key), which keeps the
/// fetch fast path a shared-lock hash lookup.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ENGINE_SUMMARYSTORE_H
#define DYNSUM_ENGINE_SUMMARYSTORE_H

#include "analysis/DynSum.h"
#include "support/Hashing.h"

#include <shared_mutex>
#include <unordered_map>

namespace dynsum {
namespace engine {

/// Thread-safe SummaryExchange backed by a hash map under a
/// shared_mutex.
class SharedSummaryStore : public analysis::SummaryExchange {
public:
  bool fetch(pag::NodeId Node, const std::vector<uint32_t> &Fields,
             analysis::RsmState S,
             analysis::PortableSummary &Out) override;

  void publish(pag::NodeId Node, const std::vector<uint32_t> &Fields,
               analysis::RsmState S,
               analysis::PortableSummary Summary) override;

  /// Number of summaries stored.
  size_t size() const;

  /// Drops every summary.  (Hit accounting lives in the per-worker
  /// "dynsum.sharedHits" stat, aggregated into BatchStats.SharedHits.)
  void clear();

  /// Publishes every summary cached in \p A (bulk warm-up, e.g. after
  /// SummaryIO deserialization into a staging analysis).
  void seedFrom(const analysis::DynSumAnalysis &A);

  /// Installs every stored summary into \p A's cache (bulk export, e.g.
  /// before SummaryIO serialization from a staging analysis).
  void drainInto(analysis::DynSumAnalysis &A) const;

private:
  struct Key {
    pag::NodeId Node = 0;
    std::vector<uint32_t> Fields;
    analysis::RsmState State = analysis::RsmState::S1;

    friend bool operator==(const Key &A, const Key &B) {
      return A.Node == B.Node && A.State == B.State && A.Fields == B.Fields;
    }
  };

  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = hashMix(packPair(K.Node, uint32_t(K.State)));
      for (uint32_t F : K.Fields)
        H = hashCombine(H, F);
      return size_t(H);
    }
  };

  mutable std::shared_mutex Mutex;
  std::unordered_map<Key, analysis::PortableSummary, KeyHash> Map;
};

} // namespace engine
} // namespace dynsum

#endif // DYNSUM_ENGINE_SUMMARYSTORE_H
