//===----------------------------------------------------------------------===//
///
/// \file
/// Read-mostly cross-thread store of complete PPTA summaries.
///
/// A PPTA summary depends only on the PAG and the (node, field-stack,
/// state) key — never on the querying context or the computing thread —
/// so every worker of a batch may reuse every other worker's summaries.
/// Summaries are held in the pool-independent PortableSummary form
/// (StackIds are private to each worker's StackPool) and re-interned by
/// the fetching DynSumAnalysis.
///
/// Layout: buckets are keyed by a 64-bit digest of (node, state,
/// fields), computed by streaming over the key components without
/// materializing a key object — the fetch-miss path (every cold-batch
/// summary computation probes once before computing) is a hash, a
/// shared-lock acquire and one table probe, with zero allocation.
/// Digest collisions are resolved by exact comparison inside the
/// bucket.
///
/// The store is append-only within a batch: publish never overwrites
/// (all writers compute identical summaries for a key).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ENGINE_SUMMARYSTORE_H
#define DYNSUM_ENGINE_SUMMARYSTORE_H

#include "analysis/DynSum.h"
#include "support/Hashing.h"

#include <shared_mutex>
#include <unordered_map>

namespace dynsum {
namespace engine {

/// Thread-safe SummaryExchange backed by a digest-keyed hash map under
/// a shared_mutex.
class SharedSummaryStore : public analysis::SummaryExchange {
public:
  bool fetch(pag::NodeId Node, const std::vector<uint32_t> &Fields,
             analysis::RsmState S,
             analysis::PortableSummary &Out) override;

  void publish(pag::NodeId Node, std::vector<uint32_t> Fields,
               analysis::RsmState S,
               analysis::PortableSummary Summary) override;

  /// Number of summaries stored.
  size_t size() const;

  /// Drops every summary.  (Hit accounting lives in the per-worker
  /// "dynsum.sharedHits" stat, aggregated into BatchStats.SharedHits.)
  void clear();

  /// Publishes every summary cached in \p A (bulk warm-up, e.g. after
  /// SummaryIO deserialization into a staging analysis).
  void seedFrom(const analysis::DynSumAnalysis &A);

  /// Installs every stored summary into \p A's cache (bulk export, e.g.
  /// before SummaryIO serialization from a staging analysis).
  void drainInto(analysis::DynSumAnalysis &A) const;

private:
  /// One stored summary with the exact key for collision resolution.
  struct Entry {
    pag::NodeId Node = 0;
    analysis::RsmState State = analysis::RsmState::S1;
    std::vector<uint32_t> Fields;
    analysis::PortableSummary Summary;
  };

  static uint64_t digest(pag::NodeId Node,
                         const std::vector<uint32_t> &Fields,
                         analysis::RsmState S) {
    uint64_t H = hashMix(packPair(Node, uint32_t(S)));
    for (uint32_t F : Fields)
      H = hashCombine(H, F);
    return H;
  }

  static bool matches(const Entry &E, pag::NodeId Node,
                      const std::vector<uint32_t> &Fields,
                      analysis::RsmState S) {
    return E.Node == Node && E.State == S && E.Fields == Fields;
  }

  mutable std::shared_mutex Mutex;
  /// Digest -> its (almost always unique) entry.  The rare digest
  /// collision spills into Overflow, scanned only after a digest hit
  /// with a key mismatch.
  std::unordered_map<uint64_t, Entry> Map;
  std::vector<Entry> Overflow;
  size_t Count = 0;
};

} // namespace engine
} // namespace dynsum

#endif // DYNSUM_ENGINE_SUMMARYSTORE_H
