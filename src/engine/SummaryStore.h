//===----------------------------------------------------------------------===//
///
/// \file
/// Read-mostly cross-thread store of complete PPTA summaries, versioned
/// by generation for edit-while-querying services.
///
/// A PPTA summary depends only on the PAG and the (node, field-stack,
/// state) key — never on the querying context or the computing thread —
/// so every worker of a batch may reuse every other worker's summaries.
/// Summaries are held in the pool-independent PortableSummary form
/// (StackIds are private to each worker's StackPool) and re-interned by
/// the fetching DynSumAnalysis.
///
/// Layout: buckets are keyed by a 64-bit digest of (node, state,
/// fields), computed by streaming over the key components without
/// materializing a key object — the fetch-miss path (every cold-batch
/// summary computation probes once before computing) is a hash, a
/// shared-lock acquire and one table probe, with zero allocation.
/// Digest collisions are resolved by exact comparison inside the
/// bucket.
///
/// Generations: every entry belongs to the store's current generation.
/// A program commit calls beginGeneration() — dropping the summaries an
/// incremental::InvalidationPlan names and bumping the counter — or
/// clear(), which drops everything and also bumps.  Node ids are stable
/// across delta builds, so surviving entries carry over verbatim: no
/// key rewrite, no table rebuild, digests unchanged.  Readers pin a
/// generation through SummaryStoreEpoch: a fetch or publish from a
/// stale epoch (a batch that started before the commit and is draining
/// against the old PAG) misses / is dropped, so summaries computed
/// against different graph versions can never mix.  Within one
/// generation the store is append-only: publish never overwrites (all
/// writers compute identical summaries for a key).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ENGINE_SUMMARYSTORE_H
#define DYNSUM_ENGINE_SUMMARYSTORE_H

#include "analysis/DynSum.h"
#include "incremental/Invalidation.h"
#include "support/Hashing.h"

#include <atomic>
#include <shared_mutex>
#include <unordered_map>

namespace dynsum {
namespace engine {

/// Monotonic operation counters of one SharedSummaryStore (readable
/// from any thread; each counter is updated with relaxed atomics, so a
/// snapshot is approximate while writers race but exact once quiescent).
/// These are the store-side observability the invalidation-policy
/// benchmarks key off: a policy that over-invalidates shows up as
/// Invalidated spikes and a collapsing Hits/Fetches ratio, and
/// cross-thread serialization shows up in LockContended.
struct StoreCounters {
  uint64_t Fetches = 0;        ///< fetch/fetchAt probes issued
  uint64_t Hits = 0;           ///< probes that returned a summary
  uint64_t StaleFetches = 0;   ///< fetchAt probes refused (stale epoch)
  uint64_t Publishes = 0;      ///< summaries accepted into the table
  uint64_t StalePublishes = 0; ///< publishes dropped (stale epoch)
  uint64_t Invalidated = 0;    ///< entries dropped by commits/clears
  uint64_t LockContended = 0;  ///< lock acquisitions that had to wait
};

/// Thread-safe SummaryExchange backed by a digest-keyed hash map under
/// a shared_mutex.  The SummaryExchange overrides operate on the
/// current generation; epoch-pinned access goes through fetchAt /
/// publishAt (see SummaryStoreEpoch).
class SharedSummaryStore : public analysis::SummaryExchange {
public:
  bool fetch(pag::NodeId Node, const std::vector<uint32_t> &Fields,
             analysis::RsmState S, analysis::PortableSummary &Out) override;

  void publish(pag::NodeId Node, std::vector<uint32_t> Fields,
               analysis::RsmState S,
               analysis::PortableSummary Summary) override;

  /// Epoch-pinned variants: a \p Gen older than generation() always
  /// misses (fetch) or is silently dropped (publish) — the calling
  /// batch is draining against a PAG that a commit has superseded, and
  /// its summaries are only valid there.
  bool fetchAt(uint64_t Gen, pag::NodeId Node,
               const std::vector<uint32_t> &Fields, analysis::RsmState S,
               analysis::PortableSummary &Out);
  void publishAt(uint64_t Gen, pag::NodeId Node,
                 std::vector<uint32_t> Fields, analysis::RsmState S,
                 analysis::PortableSummary Summary);

  /// The current generation.  Starts at 0; bumped by beginGeneration()
  /// and clear().
  uint64_t generation() const;

  /// Commit handoff: drops the summaries keyed at nodes owned by any
  /// method the plan names (looked up in the post-rebuild \p NewGraph —
  /// node ids are stable, so every surviving key stays valid verbatim)
  /// and bumps the generation.  Returns how many summaries were
  /// dropped.
  size_t beginGeneration(const pag::PAG &NewGraph,
                         const incremental::InvalidationPlan &Plan);

  /// Number of summaries stored.
  size_t size() const;

  /// Drops every summary and bumps the generation (the clear-all
  /// invalidation policy).  (Hit accounting lives in the per-worker
  /// "dynsum.sharedHits" stat, aggregated into BatchStats.SharedHits.)
  void clear();

  /// Publishes every summary cached in \p A into the current generation
  /// (bulk warm-up, e.g. after SummaryIO deserialization into a staging
  /// analysis).
  void seedFrom(const analysis::DynSumAnalysis &A);

  /// Installs every stored summary into \p A's cache (bulk export, e.g.
  /// before SummaryIO serialization from a staging analysis).
  void drainInto(analysis::DynSumAnalysis &A) const;

  /// Snapshot of the lifetime operation counters.
  StoreCounters counters() const;

private:
  /// One stored summary with the exact key for collision resolution.
  struct Entry {
    pag::NodeId Node = 0;
    analysis::RsmState State = analysis::RsmState::S1;
    std::vector<uint32_t> Fields;
    analysis::PortableSummary Summary;
  };

  static uint64_t digest(pag::NodeId Node,
                         const std::vector<uint32_t> &Fields,
                         analysis::RsmState S) {
    uint64_t H = hashMix(packPair(Node, uint32_t(S)));
    for (uint32_t F : Fields)
      H = hashCombine(H, F);
    return H;
  }

  static bool matches(const Entry &E, pag::NodeId Node,
                      const std::vector<uint32_t> &Fields,
                      analysis::RsmState S) {
    return E.Node == Node && E.State == S && E.Fields == Fields;
  }

  /// Takes the shared (reader) lock, counting a contended acquire.
  std::shared_lock<std::shared_mutex> lockShared() const;
  /// Takes the exclusive (writer) lock, counting a contended acquire.
  std::unique_lock<std::shared_mutex> lockUnique() const;

  mutable std::shared_mutex Mutex;
  /// Digest -> its (almost always unique) entry.  The rare digest
  /// collision spills into Overflow, scanned only after a digest hit
  /// with a key mismatch.
  std::unordered_map<uint64_t, Entry> Map;
  std::vector<Entry> Overflow;
  size_t Count = 0;
  uint64_t Gen = 0;

  /// StoreCounters fields (relaxed; see StoreCounters for semantics).
  mutable std::atomic<uint64_t> NumFetches{0};
  mutable std::atomic<uint64_t> NumHits{0};
  mutable std::atomic<uint64_t> NumStaleFetches{0};
  mutable std::atomic<uint64_t> NumPublishes{0};
  mutable std::atomic<uint64_t> NumStalePublishes{0};
  mutable std::atomic<uint64_t> NumInvalidated{0};
  mutable std::atomic<uint64_t> NumLockContended{0};
};

/// A SummaryExchange view of a SharedSummaryStore pinned to one
/// generation.  Batches hold one of these for their whole run: if a
/// commit publishes a new generation mid-batch, the remaining fetches
/// miss and publishes are dropped, so the draining batch keeps
/// computing correct answers against its (still alive) old PAG without
/// ever reading summaries that only hold for the new one.  Stateless
/// beyond the pin — one instance may serve every worker of a batch.
class SummaryStoreEpoch : public analysis::SummaryExchange {
public:
  SummaryStoreEpoch(SharedSummaryStore &Store, uint64_t Gen)
      : Store(Store), Gen(Gen) {}

  uint64_t generation() const { return Gen; }

  bool fetch(pag::NodeId Node, const std::vector<uint32_t> &Fields,
             analysis::RsmState S, analysis::PortableSummary &Out) override {
    return Store.fetchAt(Gen, Node, Fields, S, Out);
  }

  void publish(pag::NodeId Node, std::vector<uint32_t> Fields,
               analysis::RsmState S,
               analysis::PortableSummary Summary) override {
    Store.publishAt(Gen, Node, std::move(Fields), S, std::move(Summary));
  }

private:
  SharedSummaryStore &Store;
  uint64_t Gen;
};

} // namespace engine
} // namespace dynsum

#endif // DYNSUM_ENGINE_SUMMARYSTORE_H
