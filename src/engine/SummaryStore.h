//===----------------------------------------------------------------------===//
///
/// \file
/// Compatibility header: the shared summary store grew a disk tier and
/// lock striping and now lives in engine/TieredStore.h (hot tier
/// mechanics in engine/StripedMap.h).  SharedSummaryStore is an alias
/// of TieredSummaryStore there; SummaryStoreEpoch is unchanged.
/// Include this header or TieredStore.h interchangeably.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ENGINE_SUMMARYSTORE_H
#define DYNSUM_ENGINE_SUMMARYSTORE_H

#include "engine/TieredStore.h"

#endif // DYNSUM_ENGINE_SUMMARYSTORE_H
