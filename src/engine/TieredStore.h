//===----------------------------------------------------------------------===//
///
/// \file
/// TieredSummaryStore: the cross-thread, cross-generation — and now
/// cross-process — store of complete PPTA summaries.
///
/// A PPTA summary depends only on the PAG and the (node, field-stack,
/// state) key — never on the querying context or the computing thread —
/// so every worker of a batch may reuse every other worker's summaries,
/// and a restarted server may reuse its predecessor's.  The store
/// layers two tiers around that fact:
///
///   * Tier 1 (hot): the striped concurrent map of StripedMap.h.  Keys
///     hash to one of N lock stripes; readers on different stripes
///     share nothing.  Entries hold pool-independent PortableSummary
///     values re-interned by the fetching DynSumAnalysis.  Within one
///     generation the tier is append-only: publish never overwrites
///     (all writers compute identical summaries for a key).
///
///   * Tier 2 (disk, optional): a read-only mmap of a DSUM v3 snapshot
///     (analysis::MappedSummaryFile), attached against a graph whose
///     program fingerprint matches the file.  A hot-tier miss probes
///     the file through its digest index; a hit is validated (lazy
///     per-record CRC — corruption is a miss, never a crash), resolved
///     from canonical to in-memory node ids, PROMOTED into the hot
///     tier, and returned.  The first query batch after a warm restart
///     drains from this tier instead of recomputing.
///
/// Generations: every hot entry belongs to the store's current
/// generation.  A program commit calls beginGeneration() — dropping
/// the summaries an incremental::InvalidationPlan names and bumping
/// the counter — or clear(), which drops everything and also bumps.
/// Node ids are stable across delta builds, so surviving entries carry
/// over verbatim; per-stripe counters also carry across generations
/// (they are lifetime counters, never reset by a bump).  Readers pin a
/// generation through SummaryStoreEpoch: a fetch or publish from a
/// stale epoch misses / is dropped, so summaries computed against
/// different graph versions can never mix.  Both cross-stripe
/// operations hold EVERY stripe lock while sweeping and bumping, so a
/// single-stripe publishAt can never land in an already-swept stripe
/// of the old generation — the classic striped-invalidation leak.
///
/// The disk tier under generations: the attach captures the node <->
/// canonical translation of the attach-time graph (sound: fingerprint
/// equality pins the program's variable/alloc counts) and every
/// beginGeneration accumulates the plan's methods into an invalidated
/// set.  A disk record whose key node's method was EVER invalidated
/// since attach is refused — exactly the summaries a resident hot
/// entry would have been swept for — and clear() (rollback, ClearAll
/// policy) detaches the tier entirely, since its lineage assumption is
/// gone.  Nodes created after attach skip the disk probe.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ENGINE_TIEREDSTORE_H
#define DYNSUM_ENGINE_TIEREDSTORE_H

#include "analysis/SummaryIO.h"
#include "engine/StripedMap.h"
#include "incremental/Invalidation.h"

#include <memory>
#include <unordered_set>

namespace dynsum {
namespace engine {

/// Thread-safe SummaryExchange over the two tiers.  The SummaryExchange
/// overrides operate on the current generation; epoch-pinned access
/// goes through fetchAt / publishAt (see SummaryStoreEpoch).
class TieredSummaryStore : public analysis::SummaryExchange {
public:
  /// \p Stripes is rounded up to a power of two; 0 picks the default
  /// (see StripedSummaryMap).
  explicit TieredSummaryStore(unsigned Stripes = 0) : Hot(Stripes) {}

  bool fetch(pag::NodeId Node, const std::vector<uint32_t> &Fields,
             analysis::RsmState S, analysis::PortableSummary &Out) override;

  void publish(pag::NodeId Node, std::vector<uint32_t> Fields,
               analysis::RsmState S,
               analysis::PortableSummary Summary) override;

  /// Epoch-pinned variants: a \p Gen older than generation() always
  /// misses (fetch) or is silently dropped (publish) — the calling
  /// batch is draining against a PAG that a commit has superseded, and
  /// its summaries are only valid there.
  bool fetchAt(uint64_t Gen, pag::NodeId Node,
               const std::vector<uint32_t> &Fields, analysis::RsmState S,
               analysis::PortableSummary &Out);
  void publishAt(uint64_t Gen, pag::NodeId Node,
                 std::vector<uint32_t> Fields, analysis::RsmState S,
                 analysis::PortableSummary Summary);

  /// The current generation.  Starts at 0; bumped by beginGeneration()
  /// and clear().
  uint64_t generation() const { return Gen.load(std::memory_order_acquire); }

  /// Commit handoff: drops the hot summaries keyed at nodes owned by
  /// any method the plan names (looked up in the post-rebuild
  /// \p NewGraph — node ids are stable, so every surviving key stays
  /// valid verbatim), extends the disk tier's invalidated-method set
  /// the same way, and bumps the generation — all under every stripe
  /// lock, so no concurrent publish can slip a stale entry past the
  /// sweep.  Returns how many hot summaries were dropped.
  size_t beginGeneration(const pag::PAG &NewGraph,
                         const incremental::InvalidationPlan &Plan);

  /// Number of summaries resident in the hot tier.
  size_t size() const;

  /// Drops every hot summary, detaches the disk tier (its lineage
  /// assumption no longer holds after a clear-all or rollback), and
  /// bumps the generation.
  void clear();

  /// Publishes every summary cached in \p A into the current generation
  /// (bulk warm-up, e.g. after SummaryIO deserialization into a staging
  /// analysis).
  void seedFrom(const analysis::DynSumAnalysis &A);

  /// Installs every hot summary into \p A's cache (bulk export, e.g.
  /// before SummaryIO serialization from a staging analysis).  Disk
  /// records that were never promoted are NOT drained: they are
  /// already on disk.
  void drainInto(analysis::DynSumAnalysis &A) const;

  /// Snapshot of the lifetime operation counters, summed over stripes.
  StoreCounters counters() const;

  //===------------------------------------------------------------------===//
  // Disk tier
  //===------------------------------------------------------------------===//

  /// Result of an attach attempt.  A refused attach (missing file,
  /// header damage, fingerprint mismatch) leaves the store running
  /// hot-only; Error says why.
  struct DiskTierStatus {
    bool Attached = false;
    uint64_t Records = 0;
    /// The on-disk digest index was present; false = frame-scan
    /// fallback.
    bool Indexed = false;
    std::string Error;
  };

  /// Attaches \p Path as the read-only disk tier, translating against
  /// \p G (the current generation's graph; its program fingerprint must
  /// match the file's).  Replaces any previously attached tier.
  DiskTierStatus attachDiskTier(const std::string &Path, const pag::PAG &G);

  bool hasDiskTier() const { return std::atomic_load(&Disk) != nullptr; }

  //===------------------------------------------------------------------===//
  // Per-stripe observability (tests, bench contention columns)
  //===------------------------------------------------------------------===//

  unsigned numStripes() const { return Hot.numStripes(); }

  /// Lifetime counters of one stripe.
  StoreCounters stripeCounters(unsigned I) const;

  /// Which stripe a key lives on (stable for the store's lifetime).
  unsigned stripeOf(pag::NodeId Node, const std::vector<uint32_t> &Fields,
                    analysis::RsmState S) const {
    return Hot.stripeFor(summaryKeyDigest(Node, Fields, S));
  }

private:
  /// Everything the disk tier needs, snapshot at attach time.  The
  /// node/canonical tables are immutable; Invalidated is written only
  /// under ALL stripe locks (beginGeneration) and read only under a
  /// stripe lock (the probe path), which orders every access.
  struct DiskTier {
    std::unique_ptr<analysis::MappedSummaryFile> File;
    /// NodeId -> canonical reference, for nodes existing at attach.
    /// Later-created nodes are absent and skip the disk probe.
    std::vector<uint32_t> CanonOf;
    /// Canonical reference -> NodeId (size numVars + numAllocs at
    /// attach).
    std::vector<pag::NodeId> NodeOfCanon;
    /// NodeId -> owning method, for the invalidation filter.
    std::vector<ir::MethodId> MethodOf;
    /// Union of every InvalidationPlan's methods since attach.
    std::unordered_set<ir::MethodId> Invalidated;
  };

  /// Computes the on-disk record digest for \p Node's key under tier
  /// \p T and starts prefetching its digest-table line; 0 when the node
  /// postdates the attach (it cannot be on disk).  Fetch paths call
  /// this before their hot-tier lookup so the probe's first dependent
  /// memory load overlaps with that lookup.
  static uint64_t prepareDiskProbe(const DiskTier &T, pag::NodeId Node,
                                   const std::vector<uint32_t> &Fields,
                                   analysis::RsmState S);

  /// Probes the disk tier for \p Node's key; \p RecDigest is
  /// prepareDiskProbe's result for the same key.  Caller holds the
  /// key's stripe lock (shared is enough — the tier is read-only and
  /// Invalidated is stable outside all-stripe sections).  On a hit the
  /// decoded record is resolved into \p Out's in-memory node ids.
  bool probeDisk(const DiskTier &T, uint64_t RecDigest, pag::NodeId Node,
                 const std::vector<uint32_t> &Fields, analysis::RsmState S,
                 analysis::PortableSummary &Out) const;

  /// Promotes a disk hit into the hot tier unless the generation moved
  /// past \p AtGen while the stripe lock was dropped (in which case the
  /// hit is discarded — conservative, counted as DiskStale).  Returns
  /// whether the summary is still valid to hand out.
  bool promote(unsigned Stripe, uint64_t Digest, uint64_t AtGen,
               pag::NodeId Node, const std::vector<uint32_t> &Fields,
               analysis::RsmState S, const analysis::PortableSummary &Summary);

  StripedSummaryMap Hot;
  std::atomic<uint64_t> Gen{0};
  /// Attached via std::atomic_load/atomic_store on shared_ptr: probes
  /// snapshot the pointer, attach/clear swap it.
  std::shared_ptr<DiskTier> Disk;
  /// Mirrors Disk != nullptr so fetch paths can skip the shared_ptr
  /// atomic load (a lock-pool round trip) when no tier is attached.
  /// Racing a concurrent attach/clear is benign: a stale false skips
  /// the tier for one fetch, a stale true re-checks the real pointer.
  std::atomic<bool> HasDisk{false};
};

/// Compatibility name: the rest of the codebase predates the tiering.
using SharedSummaryStore = TieredSummaryStore;

/// A SummaryExchange view of a TieredSummaryStore pinned to one
/// generation.  Batches hold one of these for their whole run: if a
/// commit publishes a new generation mid-batch, the remaining fetches
/// miss and publishes are dropped, so the draining batch keeps
/// computing correct answers against its (still alive) old PAG without
/// ever reading summaries that only hold for the new one.  Stateless
/// beyond the pin — one instance may serve every worker of a batch.
class SummaryStoreEpoch : public analysis::SummaryExchange {
public:
  SummaryStoreEpoch(SharedSummaryStore &Store, uint64_t Gen)
      : Store(Store), Gen(Gen) {}

  uint64_t generation() const { return Gen; }

  bool fetch(pag::NodeId Node, const std::vector<uint32_t> &Fields,
             analysis::RsmState S, analysis::PortableSummary &Out) override {
    return Store.fetchAt(Gen, Node, Fields, S, Out);
  }

  void publish(pag::NodeId Node, std::vector<uint32_t> Fields,
               analysis::RsmState S,
               analysis::PortableSummary Summary) override {
    Store.publishAt(Gen, Node, std::move(Fields), S, std::move(Summary));
  }

private:
  SharedSummaryStore &Store;
  uint64_t Gen;
};

} // namespace engine
} // namespace dynsum

#endif // DYNSUM_ENGINE_TIEREDSTORE_H
