//===----------------------------------------------------------------------===//
///
/// \file
/// The striped concurrent hot tier of the summary store: N independent
/// lock stripes over a digest-keyed summary table, with per-stripe
/// operation counters.
///
/// Striping replaces the store's historical single shared_mutex.  A key
/// hashes to exactly one stripe (top digest bits — std::unordered_map
/// buckets on the LOW bits, so the selectors must not overlap or every
/// stripe would see correlated bucket pressure), and every fetch or
/// publish takes only that stripe's lock: readers and writers on
/// different stripes never touch the same cache line, let alone the
/// same mutex.  Cross-stripe operations (generation bumps, clears)
/// take every stripe lock in index order — deadlock-free because
/// single-key operations hold exactly one stripe and the all-stripe
/// path is itself ordered.
///
/// Lock-contention accounting is EXACT: every acquisition in the store
/// goes through lockShared()/lockUnique(), which probe with
/// try_to_lock and count precisely the acquisitions that then had to
/// block.  (The pre-striping store had paths taking the mutex
/// directly, silently bypassing the counter.)  Counters are per
/// stripe, so a hammered stripe's contention is visible next to an
/// idle neighbor's zero — the signature striping exists to produce.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ENGINE_STRIPEDMAP_H
#define DYNSUM_ENGINE_STRIPEDMAP_H

#include "analysis/DynSum.h"
#include "support/Hashing.h"

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace dynsum {
namespace engine {

/// Monotonic operation counters of one summary store (readable from any
/// thread; each counter is updated with relaxed atomics, so a snapshot
/// is approximate while writers race but exact once quiescent).  These
/// are the store-side observability the invalidation-policy benchmarks
/// key off: a policy that over-invalidates shows up as Invalidated
/// spikes and a collapsing Hits/Fetches ratio, cross-thread
/// serialization shows up in LockContended, and the Disk* family
/// measures what the mmap'd tier contributed after a warm restart.
struct StoreCounters {
  uint64_t Fetches = 0;        ///< fetch/fetchAt probes issued
  uint64_t Hits = 0;           ///< probes served from the hot tier
  uint64_t StaleFetches = 0;   ///< fetchAt probes refused (stale epoch)
  uint64_t Publishes = 0;      ///< summaries accepted into the table
  uint64_t StalePublishes = 0; ///< publishes dropped (stale epoch)
  uint64_t Invalidated = 0;    ///< entries dropped by commits/clears
  uint64_t LockContended = 0;  ///< lock acquisitions that had to block
  uint64_t DiskProbes = 0;     ///< hot-tier misses probed against disk
  uint64_t DiskHits = 0;       ///< disk probes that produced a summary
  uint64_t DiskCorrupt = 0;    ///< disk records rejected (CRC / parse)
  uint64_t DiskStale = 0;      ///< disk hits dropped: commit raced promotion
  uint64_t Promoted = 0;       ///< disk hits installed into the hot tier
};

/// Digest of one (node, field-stack, state) summary key, streamed over
/// the components without materializing a key object.  The fetch-miss
/// path probes once per summary computation, so this stays
/// allocation-free.
inline uint64_t summaryKeyDigest(pag::NodeId Node,
                                 const std::vector<uint32_t> &Fields,
                                 analysis::RsmState S) {
  uint64_t H = hashMix(packPair(Node, uint32_t(S)));
  for (uint32_t F : Fields)
    H = hashCombine(H, F);
  return H;
}

/// One stored summary with the exact key for collision resolution.
struct SummaryEntry {
  pag::NodeId Node = 0;
  analysis::RsmState State = analysis::RsmState::S1;
  std::vector<uint32_t> Fields;
  analysis::PortableSummary Summary;

  bool matches(pag::NodeId N, const std::vector<uint32_t> &F,
               analysis::RsmState S) const {
    return Node == N && State == S && Fields == F;
  }
};

/// The atomic mirror of StoreCounters, one per stripe.
struct StripeCounters {
  std::atomic<uint64_t> Fetches{0};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> StaleFetches{0};
  std::atomic<uint64_t> Publishes{0};
  std::atomic<uint64_t> StalePublishes{0};
  std::atomic<uint64_t> Invalidated{0};
  std::atomic<uint64_t> LockContended{0};
  std::atomic<uint64_t> DiskProbes{0};
  std::atomic<uint64_t> DiskHits{0};
  std::atomic<uint64_t> DiskStale{0};
  std::atomic<uint64_t> Promoted{0};

  /// Adds this stripe's counts into \p Out (relaxed snapshot).
  void addTo(StoreCounters &Out) const {
    Out.Fetches += Fetches.load(std::memory_order_relaxed);
    Out.Hits += Hits.load(std::memory_order_relaxed);
    Out.StaleFetches += StaleFetches.load(std::memory_order_relaxed);
    Out.Publishes += Publishes.load(std::memory_order_relaxed);
    Out.StalePublishes += StalePublishes.load(std::memory_order_relaxed);
    Out.Invalidated += Invalidated.load(std::memory_order_relaxed);
    Out.LockContended += LockContended.load(std::memory_order_relaxed);
    Out.DiskProbes += DiskProbes.load(std::memory_order_relaxed);
    Out.DiskHits += DiskHits.load(std::memory_order_relaxed);
    Out.DiskStale += DiskStale.load(std::memory_order_relaxed);
    Out.Promoted += Promoted.load(std::memory_order_relaxed);
  }
};

/// One lock stripe: its mutex, its slice of the table, its counters.
/// Cache-line aligned so neighboring stripes never false-share.
struct alignas(64) SummaryStripe {
  mutable std::shared_mutex M;
  /// Digest -> its (almost always unique) entry.  The rare digest
  /// collision spills into Overflow, scanned only after a digest hit
  /// with a key mismatch.
  std::unordered_map<uint64_t, SummaryEntry> Map;
  std::vector<SummaryEntry> Overflow;
  size_t Count = 0;
  mutable StripeCounters C;

  /// Lookup under the caller's lock; null on miss.
  const SummaryEntry *find(uint64_t Digest, pag::NodeId Node,
                           const std::vector<uint32_t> &Fields,
                           analysis::RsmState S) const {
    auto It = Map.find(Digest);
    if (It == Map.end())
      return nullptr;
    if (It->second.matches(Node, Fields, S))
      return &It->second;
    for (const SummaryEntry &E : Overflow)
      if (E.matches(Node, Fields, S))
        return &E;
    return nullptr;
  }

  /// Insert-if-absent under the caller's unique lock; true when the
  /// entry went in (first writer wins; duplicates are dropped).
  bool insert(uint64_t Digest, pag::NodeId Node,
              std::vector<uint32_t> Fields, analysis::RsmState S,
              analysis::PortableSummary Summary) {
    // Skip the early rehash cascade of a cold batch — but never shrink:
    // reserve() may rehash DOWN an empty pre-reserved table (the disk
    // tier pre-sizes stripes at attach for the promotion flood).
    if (Map.empty() && Map.bucket_count() < 256)
      Map.reserve(256);
    auto It = Map.find(Digest);
    if (It == Map.end()) {
      Map.emplace(Digest,
                  SummaryEntry{Node, S, std::move(Fields), std::move(Summary)});
      ++Count;
      return true;
    }
    if (It->second.matches(Node, Fields, S))
      return false;
    for (const SummaryEntry &E : Overflow)
      if (E.matches(Node, Fields, S))
        return false;
    Overflow.push_back(
        SummaryEntry{Node, S, std::move(Fields), std::move(Summary)});
    ++Count;
    return true;
  }
};

/// The stripe array plus the selection and (exactly counted) locking
/// discipline.  Pure mechanism: generation semantics live in
/// TieredSummaryStore, which drives these locks.
class StripedSummaryMap {
public:
  /// Rounds \p StripeCount up to a power of two (0 picks the default,
  /// 16 — enough that a CI-sized thread count rarely collides, small
  /// enough that all-stripe sweeps stay cheap).
  explicit StripedSummaryMap(unsigned StripeCount = 0) {
    unsigned Want = StripeCount == 0 ? 16 : StripeCount;
    Count = 1;
    Bits = 0;
    while (Count < Want && Count < 256) {
      Count <<= 1;
      ++Bits;
    }
    Stripes = std::make_unique<SummaryStripe[]>(Count);
  }

  unsigned numStripes() const { return Count; }

  /// Stripe selector: the TOP digest bits (see the file comment).
  unsigned stripeFor(uint64_t Digest) const {
    return Bits == 0 ? 0 : unsigned(Digest >> (64 - Bits));
  }

  SummaryStripe &stripe(unsigned I) const { return Stripes[I]; }

  /// Takes stripe \p I's shared (reader) lock, counting the acquire on
  /// that stripe iff it had to block.  The try_to_lock probe failing
  /// means someone held the lock incompatibly at that instant — exactly
  /// the serialization LockContended exposes.
  std::shared_lock<std::shared_mutex> lockShared(unsigned I) const {
    SummaryStripe &S = Stripes[I];
    std::shared_lock<std::shared_mutex> Lock(S.M, std::try_to_lock);
    if (!Lock.owns_lock()) {
      S.C.LockContended.fetch_add(1, std::memory_order_relaxed);
      Lock.lock();
    }
    return Lock;
  }

  /// Exclusive (writer) counterpart of lockShared.
  std::unique_lock<std::shared_mutex> lockUnique(unsigned I) const {
    SummaryStripe &S = Stripes[I];
    std::unique_lock<std::shared_mutex> Lock(S.M, std::try_to_lock);
    if (!Lock.owns_lock()) {
      S.C.LockContended.fetch_add(1, std::memory_order_relaxed);
      Lock.lock();
    }
    return Lock;
  }

  /// Every stripe's exclusive lock, acquired in index order (the only
  /// multi-stripe discipline, so the order alone rules out deadlock).
  /// Used by generation bumps and clears, whose writes must be visible
  /// to every later single-stripe critical section.
  std::vector<std::unique_lock<std::shared_mutex>> lockAllUnique() const {
    std::vector<std::unique_lock<std::shared_mutex>> Locks;
    Locks.reserve(Count);
    for (unsigned I = 0; I < Count; ++I)
      Locks.push_back(lockUnique(I));
    return Locks;
  }

private:
  unsigned Count = 1;
  unsigned Bits = 0;
  std::unique_ptr<SummaryStripe[]> Stripes;
};

} // namespace engine
} // namespace dynsum

#endif // DYNSUM_ENGINE_STRIPEDMAP_H
