//===----------------------------------------------------------------------===//
///
/// \file
/// Batched-query types for the parallel demand engine.
///
/// A QueryBatch is an ordered set of demand points-to queries; the
/// QueryScheduler answers the whole set by sharding it over worker
/// threads.  Contexts are StackPool ids private to each worker, so a
/// batch outcome is the context-insensitive projection — the sorted
/// allocation-site set — which is exactly the unit on which the
/// parallel and sequential paths are comparable (and proven identical
/// by tests/engine_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_ENGINE_QUERYBATCH_H
#define DYNSUM_ENGINE_QUERYBATCH_H

#include "analysis/Query.h"

#include <cstdint>
#include <vector>

namespace dynsum {
namespace engine {

/// Tunables of the batch engine.
struct EngineOptions {
  /// Worker threads per batch; 0 picks std::thread::hardware_concurrency
  /// (at least 1).  A single thread runs inline without spawning.
  unsigned NumThreads = 0;
  /// Publish every complete PPTA summary to the scheduler's shared store
  /// so other workers (and later batches) skip recomputing it — the
  /// paper's local reachability reuse, extended across threads.
  bool ShareSummaries = true;
  /// Per-worker analysis tunables (budget, field depth, caching).
  analysis::AnalysisOptions Analysis;
};

/// The answer to one batched query.
struct QueryOutcome {
  /// Sorted, deduplicated allocation sites the queried variable may
  /// point to.
  std::vector<ir::AllocId> AllocSites;
  /// The traversal budget ran out (or the query was interrupted — see
  /// Status); AllocSites is partial.
  bool BudgetExceeded = false;
  /// How the query ended: Ok, Timeout, Cancelled, or Overloaded (shed
  /// by admission control — AllocSites is then empty, never partial
  /// garbage).  Anything but Ok implies BudgetExceeded.
  analysis::QueryStatus Status = analysis::QueryStatus::Ok;
  /// PAG edge traversals spent on this query.
  uint64_t Steps = 0;

  /// Re-wraps the outcome as a context-free QueryResult so existing
  /// consumers of the sequential API (client judges in particular, which
  /// only inspect allocation sites) accept batched answers unchanged.
  analysis::QueryResult toQueryResult() const {
    analysis::QueryResult R;
    R.Targets.reserve(AllocSites.size());
    for (ir::AllocId A : AllocSites)
      R.Targets.push_back(analysis::PtsTarget{A, StackPool::empty()});
    R.BudgetExceeded = BudgetExceeded;
    R.Status = Status;
    R.Steps = Steps;
    return R;
  }
};

/// An ordered collection of demand queries.  Order is preserved: outcome
/// i in the BatchResult answers query i regardless of which worker ran
/// it.
class QueryBatch {
public:
  /// Appends a points-to query on PAG variable node \p Node; returns its
  /// index in the batch.
  size_t add(pag::NodeId Node) {
    Nodes.push_back(Node);
    return Nodes.size() - 1;
  }

  size_t size() const { return Nodes.size(); }
  bool empty() const { return Nodes.empty(); }
  const std::vector<pag::NodeId> &nodes() const { return Nodes; }

private:
  std::vector<pag::NodeId> Nodes;
};

/// Aggregate counters for one QueryScheduler::run.
struct BatchStats {
  /// Worker threads the batch actually used.
  unsigned ThreadsUsed = 0;
  /// Summary-store generation the batch was pinned to.  For a scheduler
  /// that owns its store this is simply the store's generation; under
  /// an AnalysisService it identifies the program epoch the answers
  /// describe (a commit racing the batch bumps the store, and the batch
  /// drains against this older generation).
  uint64_t Generation = 0;
  /// Sum of per-query traversal steps.
  uint64_t TotalSteps = 0;
  /// Summaries reused from the shared store instead of recomputed.
  uint64_t SharedHits = 0;
  /// Per-worker local cache hits.
  uint64_t LocalHits = 0;
  /// PPTA computations actually run across all workers.
  uint64_t SummariesComputed = 0;
  /// Entries in the shared store after the batch.
  size_t StoreSize = 0;
  /// Queries that ended Timeout / Cancelled (deadline or CancelToken
  /// tripped mid-traversal).
  uint64_t TimedOut = 0;
  uint64_t Cancelled = 0;
  /// Wall-clock seconds for the whole batch.
  double Seconds = 0.0;
};

/// Outcomes (parallel to the batch) plus the batch counters.
struct BatchResult {
  std::vector<QueryOutcome> Outcomes;
  BatchStats Stats;
};

} // namespace engine
} // namespace dynsum

#endif // DYNSUM_ENGINE_QUERYBATCH_H
