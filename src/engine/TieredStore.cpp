//===----------------------------------------------------------------------===//
///
/// \file
/// TieredSummaryStore implementation.
///
/// Locking recap (see the header): single-key operations take exactly
/// one stripe lock; beginGeneration/clear take every stripe lock in
/// index order and bump the generation inside that critical section.
/// The disk tier's invalidated-method set is written only there and
/// read only under a stripe lock, so probes always see a settled set.
///
//===----------------------------------------------------------------------===//

#include "engine/TieredStore.h"

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::engine;

//===----------------------------------------------------------------------===//
// Fetch
//===----------------------------------------------------------------------===//

uint64_t TieredSummaryStore::prepareDiskProbe(
    const DiskTier &T, pag::NodeId Node, const std::vector<uint32_t> &Fields,
    RsmState S) {
  if (Node >= T.CanonOf.size())
    return 0;
  uint64_t D = summaryRecordDigest(T.CanonOf[Node], S, Fields);
  T.File->prefetch(D);
  return D;
}

bool TieredSummaryStore::probeDisk(const DiskTier &T, uint64_t RecDigest,
                                   pag::NodeId Node,
                                   const std::vector<uint32_t> &Fields,
                                   RsmState S, PortableSummary &Out) const {
  // Nodes created after the attach have no canonical translation and
  // cannot be on disk (the snapshot predates them).
  if (Node >= T.CanonOf.size())
    return false;
  // A record whose key method was invalidated by ANY commit since the
  // attach is exactly a hot entry beginGeneration would have swept.
  if (!T.Invalidated.empty() && T.Invalidated.count(T.MethodOf[Node]) != 0)
    return false;
  // findBody decodes the record straight into \p Out (capacity reused
  // across probes — the serving path never touches the allocator for
  // an already-warm record size), leaving tuple nodes canonical.
  if (!T.File->findBody(RecDigest, T.CanonOf[Node], S, Fields, Out))
    return false;
  // Resolve canonical tuple references into this process's node ids, in
  // place.  The reader bounds-checked every canonical against the
  // attach-time variable/alloc counts, so the lookups cannot go out of
  // range.  Objects and field runs are process-independent as decoded.
  for (PortableSummary::Tuple &Tp : Out.Tuples)
    Tp.Node = T.NodeOfCanon[Tp.Node];
  return true;
}

bool TieredSummaryStore::promote(unsigned Stripe, uint64_t Digest,
                                 uint64_t AtGen, pag::NodeId Node,
                                 const std::vector<uint32_t> &Fields,
                                 RsmState S, const PortableSummary &Summary) {
  SummaryStripe &St = Hot.stripe(Stripe);
  std::unique_lock<std::shared_mutex> Lock = Hot.lockUnique(Stripe);
  // The stripe lock was dropped between the probe and here; a commit
  // may have slipped in and invalidated what the disk just served.
  // Discard rather than leak a possibly-stale entry into the new
  // generation.
  if (AtGen != Gen.load(std::memory_order_relaxed)) {
    St.C.DiskStale.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (St.insert(Digest, Node, Fields, S, Summary))
    St.C.Promoted.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool TieredSummaryStore::fetch(pag::NodeId Node,
                               const std::vector<uint32_t> &Fields,
                               RsmState S, PortableSummary &Out) {
  uint64_t D = summaryKeyDigest(Node, Fields, S);
  unsigned Stripe = Hot.stripeFor(D);
  SummaryStripe &St = Hot.stripe(Stripe);
  St.C.Fetches.fetch_add(1, std::memory_order_relaxed);

  // With a disk tier attached, start the probe's first memory load now
  // so it overlaps with the hot-tier lookup below.  The HasDisk flag
  // keeps the no-tier configuration at a single relaxed byte load —
  // atomic_load on the shared_ptr itself goes through the library's
  // lock pool, too costly to put on every hot hit.
  std::shared_ptr<DiskTier> T;
  uint64_t RecD = 0;
  if (HasDisk.load(std::memory_order_relaxed)) {
    T = std::atomic_load(&Disk);
    if (T)
      RecD = prepareDiskProbe(*T, Node, Fields, S);
  }

  uint64_t CurGen = 0;
  {
    std::shared_lock<std::shared_mutex> Lock = Hot.lockShared(Stripe);
    if (const SummaryEntry *E = St.find(D, Node, Fields, S)) {
      Out = E->Summary;
      St.C.Hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (!T)
      return false;
    St.C.DiskProbes.fetch_add(1, std::memory_order_relaxed);
    if (!probeDisk(*T, RecD, Node, Fields, S, Out))
      return false;
    St.C.DiskHits.fetch_add(1, std::memory_order_relaxed);
    CurGen = Gen.load(std::memory_order_relaxed);
  }
  // Un-pinned fetch: the summary is handed out even when a commit races
  // the promotion (same benign race as fetching just before the bump);
  // only the hot-tier insert is skipped then.
  promote(Stripe, D, CurGen, Node, Fields, S, Out);
  return true;
}

bool TieredSummaryStore::fetchAt(uint64_t AtGen, pag::NodeId Node,
                                 const std::vector<uint32_t> &Fields,
                                 RsmState S, PortableSummary &Out) {
  uint64_t D = summaryKeyDigest(Node, Fields, S);
  unsigned Stripe = Hot.stripeFor(D);
  SummaryStripe &St = Hot.stripe(Stripe);
  St.C.Fetches.fetch_add(1, std::memory_order_relaxed);

  // With a disk tier attached, start the probe's first memory load now
  // so it overlaps with the hot-tier lookup below.  The HasDisk flag
  // keeps the no-tier configuration at a single relaxed byte load —
  // atomic_load on the shared_ptr itself goes through the library's
  // lock pool, too costly to put on every hot hit.
  std::shared_ptr<DiskTier> T;
  uint64_t RecD = 0;
  if (HasDisk.load(std::memory_order_relaxed)) {
    T = std::atomic_load(&Disk);
    if (T)
      RecD = prepareDiskProbe(*T, Node, Fields, S);
  }

  {
    std::shared_lock<std::shared_mutex> Lock = Hot.lockShared(Stripe);
    // A stale epoch means the caller traverses a superseded PAG:
    // current entries may only hold for the new graph, so every probe
    // must miss.  (Gen only moves under ALL stripe locks, so this read
    // is exact under ours.)
    if (AtGen != Gen.load(std::memory_order_relaxed)) {
      St.C.StaleFetches.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (const SummaryEntry *E = St.find(D, Node, Fields, S)) {
      Out = E->Summary;
      St.C.Hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (!T)
      return false;
    St.C.DiskProbes.fetch_add(1, std::memory_order_relaxed);
    if (!probeDisk(*T, RecD, Node, Fields, S, Out))
      return false;
    St.C.DiskHits.fetch_add(1, std::memory_order_relaxed);
  }
  // Epoch-pinned: the hit only stands if the generation is STILL AtGen
  // when the promotion lock is held; otherwise the batch is stale and
  // must miss, like every other stale probe.
  return promote(Stripe, D, AtGen, Node, Fields, S, Out);
}

//===----------------------------------------------------------------------===//
// Publish
//===----------------------------------------------------------------------===//

void TieredSummaryStore::publish(pag::NodeId Node,
                                 std::vector<uint32_t> Fields, RsmState S,
                                 PortableSummary Summary) {
  // Trim growth slack outside the lock: the store holds summaries for
  // the lifetime of the scheduler, and every worker publishes, so slack
  // would accumulate across threads and batches.
  Summary.Objects.shrink_to_fit();
  Summary.Tuples.shrink_to_fit();
  Summary.FieldData.shrink_to_fit();
  uint64_t D = summaryKeyDigest(Node, Fields, S);
  unsigned Stripe = Hot.stripeFor(D);
  SummaryStripe &St = Hot.stripe(Stripe);
  std::unique_lock<std::shared_mutex> Lock = Hot.lockUnique(Stripe);
  if (St.insert(D, Node, std::move(Fields), S, std::move(Summary)))
    St.C.Publishes.fetch_add(1, std::memory_order_relaxed);
}

void TieredSummaryStore::publishAt(uint64_t AtGen, pag::NodeId Node,
                                   std::vector<uint32_t> Fields, RsmState S,
                                   PortableSummary Summary) {
  Summary.Objects.shrink_to_fit();
  Summary.Tuples.shrink_to_fit();
  Summary.FieldData.shrink_to_fit();
  uint64_t D = summaryKeyDigest(Node, Fields, S);
  unsigned Stripe = Hot.stripeFor(D);
  SummaryStripe &St = Hot.stripe(Stripe);
  std::unique_lock<std::shared_mutex> Lock = Hot.lockUnique(Stripe);
  // A summary computed against a superseded PAG must never enter the
  // current generation.  Checked under the stripe lock, which the
  // generation bump cannot bypass (it holds all stripes).
  if (AtGen != Gen.load(std::memory_order_relaxed)) {
    St.C.StalePublishes.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (St.insert(D, Node, std::move(Fields), S, std::move(Summary)))
    St.C.Publishes.fetch_add(1, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Generations
//===----------------------------------------------------------------------===//

size_t TieredSummaryStore::beginGeneration(
    const pag::PAG &NewGraph, const incremental::InvalidationPlan &Plan) {
  std::vector<std::unique_lock<std::shared_mutex>> Locks =
      Hot.lockAllUnique();

  // Node ids are stable across delta builds, so surviving entries carry
  // over verbatim: digests unchanged, erase in place — no rehash, no
  // entry moves.  An entry drops when its node vanished (defensive; ids
  // are append-only in practice) or its method is invalidated.
  auto Drops = [&](const SummaryEntry &E) {
    return E.Node >= NewGraph.numNodes() ||
           Plan.Methods.count(NewGraph.node(E.Node).Method) != 0;
  };

  size_t Dropped = 0;
  for (unsigned I = 0; I < Hot.numStripes(); ++I) {
    SummaryStripe &St = Hot.stripe(I);
    size_t Before = St.Count;
    size_t Kept = 0;
    for (auto It = St.Map.begin(); It != St.Map.end();) {
      if (Drops(It->second)) {
        It = St.Map.erase(It);
      } else {
        ++It;
        ++Kept;
      }
    }
    for (auto It = St.Overflow.begin(); It != St.Overflow.end();) {
      if (Drops(*It)) {
        It = St.Overflow.erase(It);
      } else {
        ++It;
        ++Kept;
      }
    }
    St.Count = Kept;
    St.C.Invalidated.fetch_add(Before - Kept, std::memory_order_relaxed);
    Dropped += Before - Kept;
  }

  // The disk tier parallels the sweep: accumulate the plan into the
  // invalidated set so records of these methods are refused forever
  // after (exactly what would have happened had they been resident).
  if (std::shared_ptr<DiskTier> T = std::atomic_load(&Disk))
    T->Invalidated.insert(Plan.Methods.begin(), Plan.Methods.end());

  Gen.fetch_add(1, std::memory_order_release);
  return Dropped;
}

void TieredSummaryStore::clear() {
  std::vector<std::unique_lock<std::shared_mutex>> Locks =
      Hot.lockAllUnique();
  for (unsigned I = 0; I < Hot.numStripes(); ++I) {
    SummaryStripe &St = Hot.stripe(I);
    St.C.Invalidated.fetch_add(St.Count, std::memory_order_relaxed);
    St.Map.clear();
    St.Overflow.clear();
    St.Count = 0;
  }
  // A clear means the generation lineage branched (rollback) or the
  // policy wants a cold store (ClearAll): the attach-time snapshot's
  // "never invalidated since attach" bookkeeping cannot survive either,
  // so the disk tier goes too.
  std::shared_ptr<DiskTier> None;
  HasDisk.store(false, std::memory_order_relaxed);
  std::atomic_store(&Disk, None);
  Gen.fetch_add(1, std::memory_order_release);
}

size_t TieredSummaryStore::size() const {
  size_t Total = 0;
  for (unsigned I = 0; I < Hot.numStripes(); ++I) {
    std::shared_lock<std::shared_mutex> Lock = Hot.lockShared(I);
    Total += Hot.stripe(I).Count;
  }
  return Total;
}

//===----------------------------------------------------------------------===//
// Bulk transfer
//===----------------------------------------------------------------------===//

void TieredSummaryStore::seedFrom(const DynSumAnalysis &A) {
  const StackPool &Fields = A.fieldStacks();
  for (const auto &[PackedKey, Summary] : A.summaryCache()) {
    // packSummaryKey layout: bit 0 = state, bits 1..32 = node,
    // bits 33..63 = field-stack id.
    pag::NodeId Node = pag::NodeId((PackedKey >> 1) & 0xffffffffu);
    RsmState S = (PackedKey & 1) == 0 ? RsmState::S1 : RsmState::S2;
    StackId F{uint32_t(PackedKey >> 33)};
    publish(Node, Fields.elements(F), S, A.exportSummary(Summary));
  }
}

void TieredSummaryStore::drainInto(DynSumAnalysis &A) const {
  auto Install = [&](const SummaryEntry &E) {
    A.insertSummary(E.Node, A.fieldStacks().make(E.Fields), E.State,
                    A.internSummary(E.Summary));
  };
  for (unsigned I = 0; I < Hot.numStripes(); ++I) {
    std::shared_lock<std::shared_mutex> Lock = Hot.lockShared(I);
    const SummaryStripe &St = Hot.stripe(I);
    for (const auto &[D, E] : St.Map) {
      (void)D;
      Install(E);
    }
    for (const SummaryEntry &E : St.Overflow)
      Install(E);
  }
}

//===----------------------------------------------------------------------===//
// Disk tier attach
//===----------------------------------------------------------------------===//

TieredSummaryStore::DiskTierStatus
TieredSummaryStore::attachDiskTier(const std::string &Path,
                                   const pag::PAG &G) {
  DiskTierStatus Status;
  const ir::Program &P = G.program();
  size_t NumVars = P.variables().size();
  size_t NumAllocs = P.allocs().size();

  auto T = std::make_shared<DiskTier>();
  std::string Error;
  T->File = MappedSummaryFile::open(Path, programFingerprint(P), NumVars,
                                    NumAllocs, &Error);
  if (!T->File) {
    Status.Error = Error;
    return Status;
  }

  // Snapshot the canonical <-> node translation NOW: fingerprint
  // equality pins the program's variable/alloc counts to the file's, so
  // the attach-time canonical space is exactly the save-time one.
  // Later commits may add variables (shifting what canonicalNode would
  // compute live); nodes born after this point simply skip the tier.
  T->NodeOfCanon.resize(NumVars + NumAllocs);
  for (size_t V = 0; V < NumVars; ++V)
    T->NodeOfCanon[V] = G.nodeOfVar(ir::VarId(V));
  for (size_t A = 0; A < NumAllocs; ++A)
    T->NodeOfCanon[NumVars + A] = G.nodeOfAlloc(ir::AllocId(A));

  size_t NumNodes = G.numNodes();
  T->CanonOf.resize(NumNodes);
  T->MethodOf.resize(NumNodes);
  for (size_t N = 0; N < NumNodes; ++N) {
    const pag::Node &Nd = G.node(pag::NodeId(N));
    T->CanonOf[N] = Nd.Kind == pag::NodeKind::Object
                        ? uint32_t(NumVars) + Nd.IrId
                        : Nd.IrId;
    T->MethodOf[N] = Nd.Method;
  }

  // Settle every record's CRC verdict now, while attach is the only
  // thread touching the file.  A serving tier probes most of the file
  // over its lifetime anyway; paying the checksums here — once per
  // restart, off every query's critical path — means fetchAt never
  // streams a CRC.  Corruption semantics are unchanged: a dead record
  // is a permanent miss, it just gets discovered at attach.
  T->File->validateAll();

  Status.Attached = true;
  Status.Records = T->File->records();
  Status.Indexed = T->File->indexedOnOpen();

  // Promotion will push a large slice of these records into the hot
  // tier; size each stripe's table for its expected share up front so
  // a warm first batch is not a rehash cascade.
  size_t PerStripe = Status.Records / Hot.numStripes() + 16;
  for (unsigned I = 0; I < Hot.numStripes(); ++I) {
    std::unique_lock<std::shared_mutex> Lock = Hot.lockUnique(I);
    Hot.stripe(I).Map.reserve(Hot.stripe(I).Map.size() + PerStripe);
  }

  std::atomic_store(&Disk, std::shared_ptr<DiskTier>(std::move(T)));
  HasDisk.store(true, std::memory_order_relaxed);
  return Status;
}

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

StoreCounters TieredSummaryStore::counters() const {
  StoreCounters C;
  for (unsigned I = 0; I < Hot.numStripes(); ++I)
    Hot.stripe(I).C.addTo(C);
  if (std::shared_ptr<DiskTier> T = std::atomic_load(&Disk))
    C.DiskCorrupt = T->File->corruptRecords();
  return C;
}

StoreCounters TieredSummaryStore::stripeCounters(unsigned I) const {
  StoreCounters C;
  Hot.stripe(I).C.addTo(C);
  return C;
}
