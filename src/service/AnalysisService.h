//===----------------------------------------------------------------------===//
///
/// \file
/// AnalysisService: a long-lived analysis server that owns an editable
/// program and serves concurrent query batches through the parallel
/// engine while edits are committed.
///
/// This is the layer the paper's motivating environments (JIT
/// compilers, IDEs — Sections 1 and 7) sit on: clients on any thread
/// submit query batches; an editor thread buffers program edits and
/// publishes them with commit().  The two interleave through versioned
/// epochs ("generations"):
///
///   * Every generation is an immutable snapshot — a freshly built PAG
///     plus a QueryScheduler pinned to the SharedSummaryStore
///     generation the PAG corresponds to.  Queries grab the current
///     generation (one shared_ptr copy under a mutex) and run entirely
///     against it, without ever touching the editable program.  A
///     finalized PAG never reads its ir::Program on the query path, so
///     concurrent edits to the program are invisible to running
///     batches.
///
///   * commit() (serialized on the edit lock) builds the next PAG *as a
///     delta of the previous generation's graph*: the old PAG is cloned
///     (a flat memcpy of its arrays), the clone is patched by
///     pag::buildPAGDelta — only the edited methods' segments re-lower,
///     call graph and recursion info refresh incrementally, node ids
///     never move — and the shared incremental::planInvalidation drops
///     exactly the summaries the edit can invalidate from the
///     service-owned SharedSummaryStore (stable ids mean surviving
///     store keys carry over verbatim), bumps the store generation, and
///     swaps the current-generation pointer.  In-flight batches keep
///     their old generation alive through the shared_ptr and drain
///     against the old PAG; their store probes miss from then on
///     (stale epoch), so answers stay correct for the epoch they
///     report, and their publishes are dropped rather than poisoning
///     the new generation.  commit(CommitMode::Scratch) is the A/B
///     escape hatch: it force-re-lowers every method (same stable ids,
///     O(program) cost) so delta builds can be cross-checked live.
///
///   * The commit pipeline itself shards across
///     ServiceOptions::CommitThreads workers (generation clone, shape
///     fingerprints, staged re-lowering, partitioned CSR repack,
///     boundary diff — see pag::buildPAGDelta), and commitAsync() moves
///     the whole pipeline onto a background committer thread: the
///     serving threads keep draining batches against the live snapshot
///     (double-buffered generations) and the new generation is
///     published through the same atomic epoch handoff.  Requests that
///     arrive while a commit is in flight coalesce into one follow-up
///     commit — safe because any commit covers every edit buffered
///     before it grabbed the edit lock.
///
/// Warm summaries survive commits per the invalidation policy, and
/// survive restarts through saveSummaries()/loadSummaries() (SummaryIO;
/// fingerprint-checked against the current program), so a reopened
/// service starts warm.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SERVICE_ANALYSISSERVICE_H
#define DYNSUM_SERVICE_ANALYSISSERVICE_H

#include "engine/QueryScheduler.h"
#include "incremental/EditSession.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

namespace dynsum {
namespace service {

/// Service tunables: the engine configuration every generation's
/// scheduler runs with, the commit invalidation policy, and the commit
/// pipeline's worker count.
struct ServiceOptions {
  engine::EngineOptions Engine;
  incremental::InvalidationPolicy Policy =
      incremental::InvalidationPolicy::PerMethod;
  /// Workers the commit pipeline shards across (0 = one per hardware
  /// thread): the generation clone, the shape-fingerprint sweep, the
  /// staged re-lowering, the partitioned CSR repack and the boundary
  /// diff all partition over this pool.  1 = the classic serial commit.
  unsigned CommitThreads = 1;
};

/// Outcomes of one service batch plus the generation they were answered
/// against.  A batch racing a commit reports the generation it actually
/// drained on — its answers are exact for that program version.
struct ServiceBatchResult {
  std::vector<engine::QueryOutcome> Outcomes;
  engine::BatchStats Stats;
  uint64_t Generation = 0;
};

/// How commit() rebuilds the generation's graph.
enum class CommitMode : uint8_t {
  Delta,   ///< re-lower edited methods only (the hot path)
  Scratch, ///< force-re-lower every method (A/B cross-check)
};

/// Lifetime counters (monotonic; readable from any thread).
struct ServiceStats {
  uint64_t Generation = 0;
  uint64_t Commits = 0;
  uint64_t Batches = 0;
  uint64_t Queries = 0;
  uint64_t SharedSummariesDropped = 0;
  size_t StoreSize = 0;
  /// Wall-clock seconds of the most recent / all commits, and how many
  /// methods the most recent one re-lowered (the --serve "stats"
  /// commit-time readout).
  double LastCommitSeconds = 0.0;
  double TotalCommitSeconds = 0.0;
  uint64_t LastCommitRelowered = 0;
  /// Async pipeline counters: commitAsync() calls accepted, of which
  /// how many were coalesced into an already-queued commit, and whether
  /// a background commit is queued or running right now (racy;
  /// advisory).
  uint64_t AsyncCommitsRequested = 0;
  uint64_t AsyncCommitsCoalesced = 0;
  bool CommitInFlight = false;
};

/// The concurrent incremental analysis server.
///
/// Thread-safety contract: queryVars/queryVar/generation/stats may be
/// called from any number of threads concurrently with each other and
/// with edits.  Edit entry points (addStatement, removeStatements,
/// markDirty, editProgram, commit, saveSummaries, loadSummaries) are
/// serialized internally on the edit lock and may also be called from
/// any thread; commitAsync/waitForCommits may be called from any
/// thread and hand the same serialized pipeline to the background
/// committer.  program() returns the live editable program and is only
/// safe to read on a thread that is not racing edits (typically the
/// editor thread itself).
class AnalysisService {
public:
  /// Takes ownership of \p P and eagerly publishes generation 0.
  explicit AnalysisService(std::unique_ptr<ir::Program> P,
                           ServiceOptions Opts = ServiceOptions());

  /// Drains the async commit queue (queued commits still run — edits
  /// whose commit was requested are never silently dropped) and joins
  /// the background committer.
  ~AnalysisService();

  //===------------------------------------------------------------------===//
  // Edits (buffered; invisible to queries until commit())
  //===------------------------------------------------------------------===//

  /// Appends \p S to method \p M.
  void addStatement(ir::MethodId M, ir::Statement S);

  /// Removes every statement of \p M matching \p Pred; returns how many.
  size_t
  removeStatements(ir::MethodId M,
                   const std::function<bool(const ir::Statement &)> &Pred);

  /// Marks \p M edited (pair with editProgram for direct mutation).
  void markDirty(ir::MethodId M);

  /// Runs \p Edit on the program under the edit lock; it returns the
  /// methods it touched, which are marked dirty.  Use this for
  /// multi-step mutations (createLocal + addStatement + ...) that must
  /// appear atomic to other editors.
  ///
  /// Edit-clock contract: Program::addStatement and
  /// Program::removeStatements stamp the clock themselves, so a closure
  /// built from them may return {}.  Only direct mutations that bypass
  /// those APIs (e.g. rewriting a Statement in place) must name the
  /// method in the returned vector — otherwise the next commit will not
  /// see the edit.
  void editProgram(
      const std::function<std::vector<ir::MethodId>(ir::Program &)> &Edit);

  /// True when edits are pending (racy by nature; advisory only).
  bool dirty() const;

  /// Publishes pending edits as a new generation: clones the previous
  /// generation's PAG, patches it with a delta build (or a forced full
  /// re-lower under CommitMode::Scratch), invalidates the shared store
  /// per the policy (SummariesBefore / SummariesDropped count store
  /// entries), and swaps the current generation.  In-flight batches
  /// drain against the previous one.  No-op when clean.  The whole
  /// pipeline shards across options().CommitThreads workers.
  incremental::CommitStats commit(CommitMode Mode = CommitMode::Delta);

  /// Queues the commit instead of running it on the calling thread: a
  /// background committer performs the identical pipeline (same locks,
  /// same epoch handoff) while query batches keep draining against the
  /// live snapshot, and the new generation is published atomically
  /// exactly as a blocking commit would.  Requests arriving while a
  /// commit is in flight coalesce into ONE follow-up commit — the edit
  /// clock makes any later commit cover every edit buffered before it,
  /// so coalescing loses nothing (Scratch wins when modes mix).  The
  /// committed state therefore converges to what blocking commit()
  /// calls would produce, though coalescing may publish fewer
  /// generations.  Serialized with commit()/edits on the edit lock.
  void commitAsync(CommitMode Mode = CommitMode::Delta);

  /// Blocks until the async queue is empty and no background commit is
  /// running.  After it returns, every edit made before the last
  /// commitAsync() call is published.
  void waitForCommits();

  //===------------------------------------------------------------------===//
  // Queries (any thread, lock-free after the snapshot grab)
  //===------------------------------------------------------------------===//

  /// Answers a batch of points-to queries on program variables against
  /// the current generation.  Outcome i answers Vars[i]; a variable the
  /// pinned generation does not know yet (created after its commit)
  /// gets an empty outcome.
  ServiceBatchResult queryVars(const std::vector<ir::VarId> &Vars);

  /// Single-query convenience over queryVars.
  engine::QueryOutcome queryVar(ir::VarId V);

  //===------------------------------------------------------------------===//
  // Persistence (warm restarts)
  //===------------------------------------------------------------------===//

  /// Commits pending edits, then saves the shared store through
  /// SummaryIO (fingerprinted against the committed program).  A later
  /// service constructed over an identical program loads it to start
  /// warm.  Returns false on I/O failure.
  bool saveSummaries(const std::string &Path);

  /// Commits pending edits, then merges a SummaryIO file into the
  /// shared store at the current generation.  Returns false — leaving
  /// the store untouched — on a malformed file or a program-fingerprint
  /// mismatch.
  bool loadSummaries(const std::string &Path);

  //===------------------------------------------------------------------===//
  // Introspection
  //===------------------------------------------------------------------===//

  /// The generation queries are currently answered against.
  uint64_t generation() const;

  ServiceStats stats() const;

  const ServiceOptions &options() const { return Opts; }

  /// The live editable program (see the thread-safety contract).
  ir::Program &program() { return *Prog; }
  const ir::Program &program() const { return *Prog; }

private:
  /// One published epoch.  Engine is declared after Built so it is
  /// destroyed first (it references Built.Graph).
  struct Generation {
    uint64_t Number = 0;
    /// Variables the program had when this generation was built; vars
    /// with ids >= NumVars were created later and are unknown here.
    size_t NumVars = 0;
    pag::BuiltPAG Built;
    std::unique_ptr<engine::QueryScheduler> Engine;
  };

  /// Builds generation 0 from scratch.  Caller holds the edit lock.
  std::shared_ptr<const Generation> buildFirstGeneration();

  /// Swaps the published generation pointer.
  void publish(std::shared_ptr<const Generation> G);

  /// Current generation snapshot (any thread).
  std::shared_ptr<const Generation> current() const;

  /// commit() body; caller holds the edit lock.
  incremental::CommitStats commitLocked(CommitMode Mode);

  /// Body of the background committer thread (started lazily by the
  /// first commitAsync).
  void committerLoop();

  ServiceOptions Opts;
  std::unique_ptr<ir::Program> Prog;

  /// Serializes program mutation, commits and persistence.
  mutable std::mutex EditMutex;
  /// Program edit clock at the last published generation (guarded by
  /// EditMutex); dirtiness and the touched-method set come from the
  /// program itself.
  uint64_t CommittedClock = 0;

  /// The cross-generation summary store; generations are the store's.
  engine::SharedSummaryStore Store;

  /// Guards only the Current pointer swap/copy.
  mutable std::mutex GenMutex;
  std::shared_ptr<const Generation> Current;

  /// Async commit queue.  AsyncMutex guards the queue state below (one
  /// coalesced pending request plus the in-flight marker); the commits
  /// themselves run under EditMutex like blocking ones.  WorkCv wakes
  /// the committer, IdleCv wakes waitForCommits.
  mutable std::mutex AsyncMutex;
  std::condition_variable WorkCv;
  std::condition_variable IdleCv;
  std::thread Committer;
  bool AsyncPending = false;
  CommitMode AsyncMode = CommitMode::Delta;
  bool AsyncInFlight = false;
  bool AsyncStop = false;

  std::atomic<uint64_t> Commits{0};
  std::atomic<uint64_t> Batches{0};
  std::atomic<uint64_t> Queries{0};
  std::atomic<uint64_t> SharedDropped{0};
  /// Commit-time readouts (microseconds; atomics so stats() needs no
  /// lock).
  std::atomic<uint64_t> LastCommitMicros{0};
  std::atomic<uint64_t> TotalCommitMicros{0};
  std::atomic<uint64_t> LastCommitRelowered{0};
  std::atomic<uint64_t> AsyncRequested{0};
  std::atomic<uint64_t> AsyncCoalesced{0};
};

} // namespace service
} // namespace dynsum

#endif // DYNSUM_SERVICE_ANALYSISSERVICE_H
