//===----------------------------------------------------------------------===//
///
/// \file
/// AnalysisService: a long-lived analysis server that owns an editable
/// program and serves concurrent query batches through the parallel
/// engine while edits are committed.
///
/// This is the layer the paper's motivating environments (JIT
/// compilers, IDEs — Sections 1 and 7) sit on: clients on any thread
/// submit query batches; an editor thread buffers program edits and
/// publishes them through the commit API.  The two interleave through
/// versioned epochs ("generations"):
///
///   * Every generation is an immutable snapshot — a built PAG plus a
///     QueryScheduler pinned to the SharedSummaryStore generation the
///     PAG corresponds to.  Queries grab the current generation (one
///     shared_ptr copy under a mutex) and run entirely against it,
///     without ever touching the editable program.  A finalized PAG
///     never reads its ir::Program on the query path, so concurrent
///     edits to the program are invisible to running batches.
///
///   * A commit (serialized on the edit lock) builds the next PAG *as a
///     delta of the previous generation's graph*.  Generations share
///     storage structurally: the PAG's node/edge/CSR tables live on
///     copy-on-write chunked arenas (support/ChunkedStorage.h), so
///     "cloning" the previous graph is a chunk-table copy — O(tables),
///     not O(graph) — and the delta build then splits only the chunks
///     the edit actually touches.  Untouched chunks stay shared,
///     immutably, with every retained generation.  The patched graph is
///     produced by pag::buildPAGDelta (only the edited methods'
///     segments re-lower, node ids never move), the shared
///     incremental::planInvalidation drops exactly the summaries the
///     edit can invalidate from the service-owned SharedSummaryStore,
///     the store generation bumps and the current-generation pointer
///     swaps.  In-flight batches keep their old generation alive
///     through the shared_ptr and drain against the old PAG; their
///     store probes miss from then on (stale epoch), so answers stay
///     correct for the epoch they report.  CommitMode::Scratch is the
///     A/B escape hatch: it force-re-lowers every method (same stable
///     ids, O(program) cost) so delta builds can be cross-checked live.
///
///   * All commits go through ONE entry point: submitCommit() takes a
///     CommitRequest (mode + foreground/background) and returns a
///     waitable CommitTicket.  A foreground request runs the pipeline
///     on the calling thread and returns an already-completed ticket; a
///     background request queues it to the committer thread and the
///     ticket completes when the covering commit publishes.  Background
///     requests arriving while a commit is in flight coalesce into one
///     follow-up commit (safe because any commit covers every edit
///     buffered before it grabbed the edit lock — Scratch wins when
///     modes mix), and every coalesced ticket shares the covering
///     commit's ticket state: they all complete together, with the same
///     stats.  waitForCommits() is the fence for tickets that were
///     dropped.
///
///   * Optionally (ServiceOptions::Presummarize), every published
///     commit hands a background warmer the set of variables the commit
///     invalidated (plus the recently-queried hot set), and the warmer
///     bulk-computes their PPTA summaries in parallel — on the
///     committer's ExecContext, pinned to the published store
///     generation — and publishes them into the TieredSummaryStore.
///     The first query batch after a commit then hits warm summaries
///     instead of computing them one query-miss at a time.  A newer
///     commit supersedes a queued warm job (newest wins) and stale
///     publishes drop at the store's epoch gate, so warming can never
///     pollute a later generation.
///
///   * The commit pipeline shards across ServiceOptions::Commit — a
///     support::ExecContext carrying the thread budget and, for budgets
///     above one, a persistent WorkerPool every phase of every commit
///     reuses (shape fingerprints, staged re-lowering, partitioned CSR
///     repack, boundary snapshot/diff — see pag::buildPAGDelta).
///
/// Because snapshots share chunks, retaining generations is cheap — a
/// retained generation holds only the chunks its successors have since
/// rewritten (see pag::PAG::memoryStats).  ServiceOptions::
/// KeepGenerations keeps the N most recent superseded generations
/// queryable: generations() lists them (with per-generation retained
/// bytes), queryVarsAt() answers batches against any retained snapshot
/// exactly as of its capture, and rollback() republishes one in O(1) —
/// no graph is rebuilt, the retained snapshot simply becomes current
/// again.  Rollback clears the summary store: summaries are validated
/// by per-method diffs along the generation lineage, and rolling back
/// branches that lineage, so entries validated on the abandoned branch
/// can no longer be trusted (the graphs themselves share chunks safely
/// regardless — chunk refcounts do not care about lineage).
///
/// Warm summaries survive commits per the invalidation policy, and
/// survive restarts through saveSummaries()/loadSummaries() (SummaryIO;
/// fingerprint-checked against the current program), so a reopened
/// service starts warm.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_SERVICE_ANALYSISSERVICE_H
#define DYNSUM_SERVICE_ANALYSISSERVICE_H

#include "engine/QueryScheduler.h"
#include "incremental/EditSession.h"
#include "incremental/Invalidation.h"
#include "support/ExecContext.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

namespace dynsum {
namespace service {

/// Admission-control watermarks.  All zero (the default) disables
/// shedding entirely — the pre-hardening behavior.
struct OverloadPolicy {
  /// High watermark on concurrently running query batches: when this
  /// many batches are in flight, new batches are shed (every outcome
  /// returns Status == Overloaded with no targets — never partial
  /// garbage).  0 = never shed queries.
  unsigned MaxActiveBatches = 0;
  /// Low watermark: once shedding has started, batches are admitted
  /// again only when the in-flight count falls back to this level
  /// (hysteresis, so the service does not flap at the edge).
  /// 0 = MaxActiveBatches / 2.
  unsigned ResumeActiveBatches = 0;
  /// High watermark on the background commit backlog: when this many
  /// background requests have coalesced into the pending slot, further
  /// background submitCommit() calls are shed (the ticket completes
  /// immediately with CommitOutcome::Shed; the edits stay buffered and
  /// the next accepted commit covers them).  0 = never shed commits.
  unsigned MaxCommitBacklog = 0;
};

/// Which variables the post-commit warmer pre-summarizes (only read
/// when ServiceOptions::Presummarize is on).
enum class PresummarizeScope : uint8_t {
  /// Every variable a recent query batch asked about.  The default:
  /// re-querying the hot set recomputes exactly the dropped summaries
  /// on paths clients actually demand, and nothing else — no
  /// speculative closure of never-queried variables bloating the hot
  /// tier (measured at 10k methods, speculation grew the store ~1.8x
  /// and made every fetch of the next batch ~9% slower).
  Hot,
  /// The hot set plus every variable owned by an invalidated method —
  /// speculative: freshly-edited code is likely to be queried next,
  /// but most of those closures are keys no client ever demanded.
  HotAndInvalidated,
  /// Only variables owned by invalidated methods.
  Invalidated,
  /// Every variable (a full store fill; expensive, mostly for benches
  /// and cold-start experiments).
  All,
};

/// Service tunables: the engine configuration every generation's
/// scheduler runs with, the commit invalidation policy, the commit
/// pipeline's execution context, and the generation-history depth.
struct ServiceOptions {
  engine::EngineOptions Engine;
  incremental::InvalidationPolicy Policy =
      incremental::InvalidationPolicy::PerMethod;
  /// Execution context the commit pipeline runs on: the shape-
  /// fingerprint sweep, the staged re-lowering, the partitioned CSR
  /// repack and the boundary snapshot/diff all partition over its
  /// thread budget (0 = one per hardware thread; converts implicitly
  /// from a plain thread count).  Budgets above one get a persistent
  /// WorkerPool attached at construction so commits reuse threads
  /// instead of spawning per phase.  Default: the classic serial
  /// commit.
  support::ExecContext Commit;
  /// How many superseded generations stay retained (queryable through
  /// queryVarsAt, restorable through rollback) after a commit publishes
  /// a newer one.  Retention is cheap: snapshots share storage chunks,
  /// so a retained generation costs only the chunks later commits
  /// rewrote.  0 = history off (exactly the pre-history behavior).
  unsigned KeepGenerations = 0;
  /// Load-shedding watermarks (see OverloadPolicy; defaults disable).
  OverloadPolicy Overload;
  /// Run the ir::Validator over the dirty methods before every commit
  /// and reject the commit (CommitOutcome::ValidationRejected, edits
  /// kept buffered, generation chain untouched) when they are invalid.
  /// O(dirty methods), not O(program).
  bool ValidateCommits = true;
  /// How many times the background committer retries a commit whose
  /// build threw (transient faults) before quarantining the edit.
  /// Retries back off exponentially from 1 ms, capped at 50 ms.
  /// Validation rejections are deterministic and never retried.
  unsigned BackgroundCommitRetries = 2;
  /// When nonempty, the destructor saves the summary store here
  /// (graceful snapshot-to-disk on shutdown; failures are swallowed —
  /// shutdown must not throw).
  std::string SnapshotOnShutdownPath;
  /// When nonempty, the constructor attaches this DSUM file as the
  /// store's memory-mapped read-only disk tier: queries that miss the
  /// hot tier probe the file and promote hits, so a restarted server
  /// answers its first batches from its previous shutdown snapshot
  /// without recomputing anything.  A refused attach (missing file,
  /// damaged header, program-fingerprint mismatch) is not an error —
  /// the service just starts cold, exactly as if the path were empty.
  /// Point it at the previous run's SnapshotOnShutdownPath for the
  /// classic warm-restart loop.
  std::string WarmFromDiskPath;
  /// Lock-stripe count for the summary store's hot tier (rounded up to
  /// a power of two; 0 = the store default).  More stripes spread
  /// concurrent fetch/publish traffic across independent locks.
  unsigned StoreStripes = 0;
  /// Pre-summarize after commits: every published commit enqueues a
  /// background warm pass that bulk-computes PPTA summaries for the
  /// WarmScope variable set and publishes them into the store at the
  /// new generation, so the first post-commit batch hits warm.  The
  /// pass runs on the Commit ExecContext (WorkerPool::run is
  /// serialized, so warm phases and commit phases interleave safely on
  /// the same pool) and is superseded — not queued behind — by the next
  /// commit.  waitForWarm() is the completion fence.
  bool Presummarize = false;
  /// What the warm pass covers (see PresummarizeScope).
  PresummarizeScope WarmScope = PresummarizeScope::Hot;
};

/// Outcomes of one service batch plus the generation they were answered
/// against.  A batch racing a commit reports the generation it actually
/// drained on — its answers are exact for that program version.
struct ServiceBatchResult {
  std::vector<engine::QueryOutcome> Outcomes;
  engine::BatchStats Stats;
  uint64_t Generation = 0;
};

/// How a commit rebuilds the generation's graph.
enum class CommitMode : uint8_t {
  Delta,   ///< re-lower edited methods only (the hot path)
  Scratch, ///< force-re-lower every method (A/B cross-check)
};

/// One commit submission: what to build and where to run it.
struct CommitRequest {
  CommitMode Mode = CommitMode::Delta;
  /// false: run the pipeline on the calling thread (the ticket returns
  /// already completed).  true: queue it to the background committer;
  /// requests queued while a commit is in flight coalesce into one
  /// follow-up commit and their tickets all complete with it.
  bool Background = false;
};

/// A waitable handle on one submitted commit.  Copyable; all copies —
/// and every ticket coalesced into the same covering commit — share one
/// completion state.  A default-constructed ticket is invalid.
class CommitTicket {
public:
  CommitTicket() = default;

  bool valid() const { return S != nullptr; }

  /// True once the covering commit has published (never blocks).
  bool done() const;

  /// Blocks until the covering commit publishes; returns its stats.  A
  /// clean (no-op) commit completes immediately with empty stats.
  incremental::CommitStats wait() const;

  /// The generation the commit published (the current generation at
  /// completion for a no-op).  Blocks like wait().
  uint64_t generation() const;

private:
  friend class AnalysisService;

  struct State {
    std::mutex M;
    std::condition_variable Cv;
    bool Done = false;
    incremental::CommitStats Stats;
    uint64_t Generation = 0;
  };

  explicit CommitTicket(std::shared_ptr<State> S) : S(std::move(S)) {}

  std::shared_ptr<State> S;
};

/// One retained (or current) generation, as reported by generations().
struct GenerationInfo {
  uint64_t Number = 0;
  /// Variables the program had at capture.
  size_t NumVars = 0;
  bool IsCurrent = false;
  /// Chunked-storage footprint of the generation's PAG + call graph.
  uint64_t TotalBytes = 0;
  /// Bytes of that footprint this generation holds exclusively — what
  /// retaining it actually costs next to the generations it shares
  /// chunks with.  Proportional to the deltas committed since capture,
  /// not to program size.
  uint64_t RetainedBytes = 0;
};

/// Lifetime counters (monotonic; readable from any thread).
struct ServiceStats {
  uint64_t Generation = 0;
  uint64_t Commits = 0;
  uint64_t Rollbacks = 0;
  uint64_t Batches = 0;
  uint64_t Queries = 0;
  uint64_t SharedSummariesDropped = 0;
  size_t StoreSize = 0;
  /// Generations currently retained besides the current one.
  uint64_t RetainedGenerations = 0;
  /// Wall-clock seconds of the most recent / all commits, and how many
  /// methods the most recent one re-lowered (the --serve "stats"
  /// commit-time readout).
  double LastCommitSeconds = 0.0;
  double TotalCommitSeconds = 0.0;
  uint64_t LastCommitRelowered = 0;
  /// Background pipeline counters: background submitCommit() requests
  /// accepted, of which how many were coalesced into an already-queued
  /// commit, and whether a background commit is queued or running right
  /// now (racy; advisory).
  uint64_t AsyncCommitsRequested = 0;
  uint64_t AsyncCommitsCoalesced = 0;
  bool CommitInFlight = false;
  /// Failure/degradation counters (the robustness substrate).
  /// Commits whose build pipeline threw (each attempt counts).
  uint64_t CommitFailures = 0;
  /// Commits rejected by the pre-commit IR validation gate.
  uint64_t CommitValidationRejects = 0;
  /// Background retry attempts after a failed build.
  uint64_t CommitRetries = 0;
  /// Background requests failed fast by the poison-edit quarantine.
  uint64_t CommitsQuarantined = 0;
  /// Background commit requests shed by the backlog watermark.
  uint64_t CommitsShed = 0;
  /// Query batches / individual queries shed by admission control.
  uint64_t ShedBatches = 0;
  uint64_t ShedQueries = 0;
  /// Queries that ended Timeout / Cancelled.
  uint64_t TimedOutQueries = 0;
  uint64_t CancelledQueries = 0;
  /// Advisory live flags: quarantine armed / currently shedding.
  bool Quarantined = false;
  bool Shedding = false;
  /// Post-commit pre-summarization counters: warm passes that ran (a
  /// superseded job does not count), variables they queried, and
  /// summaries they actually computed (store hits cost nothing).
  uint64_t WarmRuns = 0;
  uint64_t WarmQueries = 0;
  uint64_t WarmSummariesComputed = 0;
  /// The shared summary store's operation counters (fetch/hit/stale/
  /// publish/invalidation/lock-contention, plus the disk-tier probe/
  /// hit/promotion counters) — the per-store view behind the
  /// invalidation-policy benchmarks.
  engine::StoreCounters Store;
  /// Whether the store currently has a disk tier attached (false after
  /// a rollback or ClearAll commit detached it).
  bool DiskTierAttached = false;
  /// Per-stripe counters of the hot tier, stripe 0 first — the bench's
  /// contention columns.  Aggregate file-level counters (DiskCorrupt)
  /// appear only in Store above.
  std::vector<engine::StoreCounters> StoreStripes;
};

/// The concurrent incremental analysis server.
///
/// Thread-safety contract: queryVars/queryVar/queryVarsAt/generation/
/// generations/stats may be called from any number of threads
/// concurrently with each other and with edits.  Edit entry points
/// (addStatement, removeStatements, markDirty, editProgram,
/// submitCommit, rollback, saveSummaries, loadSummaries) are serialized
/// internally on the edit lock and may also be called from any thread;
/// background submissions hand the same serialized pipeline to the
/// committer thread.  program() returns the live editable program and
/// is only safe to read on a thread that is not racing edits (typically
/// the editor thread itself).
class AnalysisService {
public:
  /// Takes ownership of \p P and eagerly publishes generation 0.
  explicit AnalysisService(std::unique_ptr<ir::Program> P,
                           ServiceOptions Opts = ServiceOptions());

  /// Drains the background commit queue (queued commits still run —
  /// edits whose commit was requested are never silently dropped) and
  /// joins the committer.
  ~AnalysisService();

  //===------------------------------------------------------------------===//
  // Edits (buffered; invisible to queries until a commit)
  //===------------------------------------------------------------------===//

  /// Appends \p S to method \p M.
  void addStatement(ir::MethodId M, ir::Statement S);

  /// Removes every statement of \p M matching \p Pred; returns how many.
  size_t
  removeStatements(ir::MethodId M,
                   const std::function<bool(const ir::Statement &)> &Pred);

  /// Marks \p M edited (pair with editProgram for direct mutation).
  void markDirty(ir::MethodId M);

  /// Runs \p Edit on the program under the edit lock; it returns the
  /// methods it touched, which are marked dirty.  Use this for
  /// multi-step mutations (createLocal + addStatement + ...) that must
  /// appear atomic to other editors.
  ///
  /// Edit-clock contract: Program::addStatement and
  /// Program::removeStatements stamp the clock themselves, so a closure
  /// built from them may return {}.  Only direct mutations that bypass
  /// those APIs (e.g. rewriting a Statement in place) must name the
  /// method in the returned vector — otherwise the next commit will not
  /// see the edit.
  void editProgram(
      const std::function<std::vector<ir::MethodId>(ir::Program &)> &Edit);

  /// True when edits are pending (racy by nature; advisory only).
  bool dirty() const;

  //===------------------------------------------------------------------===//
  // Commits (the one entry point; see the file comment)
  //===------------------------------------------------------------------===//

  /// Publishes pending edits as a new generation per \p Req: snapshots
  /// the previous generation's graph (a copy-on-write chunk-table copy,
  /// not a clone), patches it with a delta build (or a forced full
  /// re-lower under CommitMode::Scratch), invalidates the shared store
  /// per the policy, and swaps the current generation — on the calling
  /// thread, or on the background committer when Req.Background.
  /// In-flight batches drain against the previous generation.  A clean
  /// commit is a no-op whose ticket completes with empty stats.
  CommitTicket submitCommit(const CommitRequest &Req = CommitRequest());

  /// Blocks until the background queue is empty and no background
  /// commit is running.  After it returns, every edit made before the
  /// last background submission is published.  (The fence for tickets
  /// that were dropped; new code should prefer waiting on the ticket
  /// itself.)
  void waitForCommits();

  /// Blocks until no pre-summarization pass is queued or running.
  /// After it returns (and absent newer commits), every summary the
  /// latest warm pass covers is resident in the store.  Immediate when
  /// Presummarize is off.
  void waitForWarm();

  //===------------------------------------------------------------------===//
  // Generation history
  //===------------------------------------------------------------------===//

  /// The retained generations plus the current one, oldest first, with
  /// their structural-sharing memory footprint.
  std::vector<GenerationInfo> generations() const;

  /// Answers a batch against retained generation \p Generation exactly
  /// as queryVars would have at its capture time (its store epoch is
  /// stale by then, so summaries are computed privately — answers stay
  /// bit-identical to capture).  nullopt when that generation is
  /// neither current nor retained.
  std::optional<ServiceBatchResult>
  queryVarsAt(uint64_t Generation, const std::vector<ir::VarId> &Vars);

  /// Republishes retained generation \p Generation as the current one —
  /// O(1): the snapshot is shared, nothing is rebuilt.  Program edits
  /// made after its capture become pending again (the next commit
  /// re-applies them as a delta).  Clears the summary store (see the
  /// file comment: rollback branches the generation lineage, which the
  /// per-method diff-chain validation cannot cross).  False when the
  /// generation is not retained.
  bool rollback(uint64_t Generation);

  //===------------------------------------------------------------------===//
  // Queries (any thread, lock-free after the snapshot grab)
  //===------------------------------------------------------------------===//

  /// Answers a batch of points-to queries on program variables against
  /// the current generation.  Outcome i answers Vars[i]; a variable the
  /// pinned generation does not know yet (created after its commit)
  /// gets an empty outcome.  When admission control is on (see
  /// OverloadPolicy) an overloaded service sheds the whole batch:
  /// every outcome returns Status == Overloaded with no targets.
  ServiceBatchResult queryVars(const std::vector<ir::VarId> &Vars);

  /// Same, with a per-batch deadline/cancel token: queries that trip it
  /// unwind with partial sound-fallback outcomes marked Timeout /
  /// Cancelled.
  ServiceBatchResult queryVars(const std::vector<ir::VarId> &Vars,
                               const support::Deadline &DL);

  /// Single-query convenience over queryVars.
  engine::QueryOutcome queryVar(ir::VarId V);
  engine::QueryOutcome queryVar(ir::VarId V, const support::Deadline &DL);

  //===------------------------------------------------------------------===//
  // Persistence (warm restarts)
  //===------------------------------------------------------------------===//

  /// Commits pending edits, then saves the shared store through
  /// SummaryIO (fingerprinted against the committed program).  A later
  /// service constructed over an identical program loads it to start
  /// warm.  Returns false on I/O failure.
  bool saveSummaries(const std::string &Path);

  /// Commits pending edits, then merges a SummaryIO file into the
  /// shared store at the current generation.  Returns false — leaving
  /// the store untouched — on a malformed file or a program-fingerprint
  /// mismatch.
  bool loadSummaries(const std::string &Path);

  //===------------------------------------------------------------------===//
  // Introspection
  //===------------------------------------------------------------------===//

  /// The generation queries are currently answered against.
  uint64_t generation() const;

  ServiceStats stats() const;

  const ServiceOptions &options() const { return Opts; }

  /// The live editable program (see the thread-safety contract).
  ir::Program &program() { return *Prog; }
  const ir::Program &program() const { return *Prog; }

private:
  /// One published epoch.  Built is shared so rollback can republish a
  /// retained snapshot without copying anything; Engine is declared
  /// after Built so it is destroyed first (it references Built->Graph).
  struct Generation {
    uint64_t Number = 0;
    /// Variables the program had when this generation was built; vars
    /// with ids >= NumVars were created later and are unknown here.
    size_t NumVars = 0;
    std::shared_ptr<const pag::BuiltPAG> Built;
    std::unique_ptr<engine::QueryScheduler> Engine;
  };

  /// Builds generation 0 from scratch.  Caller holds the edit lock.
  std::shared_ptr<const Generation> buildFirstGeneration();

  /// Swaps the published generation pointer, retiring the previous one
  /// into the history ring (trimmed to Opts.KeepGenerations).
  void publish(std::shared_ptr<const Generation> G);

  /// Current generation snapshot (any thread).
  std::shared_ptr<const Generation> current() const;

  /// The generation numbered \p Number among current + retained, or
  /// null.
  std::shared_ptr<const Generation> findGeneration(uint64_t Number) const;

  /// Runs one batch against \p Gen (shared by queryVars/queryVarsAt);
  /// \p DL overrides the engine options' deadline when non-null.
  ServiceBatchResult runBatch(const std::shared_ptr<const Generation> &Gen,
                              const std::vector<ir::VarId> &Vars,
                              const support::Deadline *DL);

  /// Admission control: true when a new batch may run now.  Flips the
  /// shedding flag at the high watermark and back at the low one.
  bool admitBatch();

  /// The all-Overloaded answer for a shed batch: one empty outcome per
  /// query, Status == Overloaded — never partial garbage.
  ServiceBatchResult shedBatch(size_t NumQueries);

  /// submitCommit body; caller holds the edit lock.
  incremental::CommitStats commitLocked(CommitMode Mode);

  /// Completes a ticket state (stats + published generation).
  static void completeTicket(const std::shared_ptr<CommitTicket::State> &S,
                             const incremental::CommitStats &Stats,
                             uint64_t Generation);

  /// Body of the background committer thread (started lazily by the
  /// first background submission).
  void committerLoop();

  /// One queued pre-summarization pass: the generation it targets and
  /// the variables to warm.  Newest wins — a later commit replaces a
  /// queued job wholesale.
  struct WarmJob {
    std::shared_ptr<const Generation> Gen;
    std::vector<ir::VarId> Vars;
  };

  /// Builds the warm set for the just-published generation and queues
  /// it (caller holds the edit lock).  \p All warms every variable;
  /// otherwise only variables owned by \p Methods (plus the hot set,
  /// scope permitting).
  void scheduleWarm(bool All,
                    const std::unordered_set<ir::MethodId> &Methods);

  /// Body of the background warmer thread (started lazily by the first
  /// scheduled job).
  void warmerLoop();

  /// Runs one pre-summarization pass.  Skips silently if the store has
  /// moved past the job's generation; otherwise fans the variables out
  /// over the commit ExecContext and publishes summaries through an
  /// epoch-pinned exchange, so a racing newer generation drops them at
  /// the store's gate.
  void runWarmJob(const WarmJob &Job);

  ServiceOptions Opts;
  std::unique_ptr<ir::Program> Prog;

  /// Serializes program mutation, commits, rollback and persistence.
  mutable std::mutex EditMutex;
  /// Program edit clock at the last published generation (guarded by
  /// EditMutex); dirtiness and the touched-method set come from the
  /// program itself.  Rollback rewinds it to the retained generation's
  /// build clock so later edits re-commit.
  uint64_t CommittedClock = 0;

  /// Boundary snapshot of the current generation's graph, carried
  /// forward from the previous commit's invalidation diff (guarded by
  /// EditMutex).  Valid only while CachedBoundaryGen matches the
  /// current generation number; a commit consumes it instead of
  /// re-sweeping the whole graph, and rollback / ClearAll commits
  /// invalidate it so the next commit falls back to snapshotBoundary.
  incremental::BoundarySnapshot CachedBoundary;
  static constexpr uint64_t kNoBoundaryGen = ~uint64_t(0);
  uint64_t CachedBoundaryGen = kNoBoundaryGen;

  /// The cross-generation summary store; generations are the store's.
  /// Striped per Opts.StoreStripes; the constructor may attach a
  /// memory-mapped disk tier (Opts.WarmFromDiskPath).
  engine::SharedSummaryStore Store;

  /// Guards the Current pointer swap/copy and the history ring.
  mutable std::mutex GenMutex;
  std::shared_ptr<const Generation> Current;
  /// Superseded generations, oldest first, at most KeepGenerations.
  std::deque<std::shared_ptr<const Generation>> History;

  /// Background commit queue.  AsyncMutex guards the queue state below
  /// (one coalesced pending request — mode, ticket state — plus the
  /// in-flight marker); the commits themselves run under EditMutex like
  /// foreground ones.  WorkCv wakes the committer, IdleCv wakes
  /// waitForCommits.
  mutable std::mutex AsyncMutex;
  std::condition_variable WorkCv;
  std::condition_variable IdleCv;
  std::thread Committer;
  CommitMode PendingMode = CommitMode::Delta;
  std::shared_ptr<CommitTicket::State> PendingTicket;
  /// Background requests coalesced into the current pending slot (the
  /// commit backlog the MaxCommitBacklog watermark sheds against).
  unsigned PendingCoalesced = 0;
  bool AsyncInFlight = false;
  bool AsyncStop = false;

  /// Pre-summarization warmer (Opts.Presummarize).  WarmMutex guards
  /// the single pending-job slot and the in-flight marker; WarmCv wakes
  /// the warmer, WarmIdleCv wakes waitForWarm.  The warm passes
  /// themselves take no service lock — they query a retained generation
  /// snapshot and publish through the store's epoch gate.
  mutable std::mutex WarmMutex;
  std::condition_variable WarmCv;
  std::condition_variable WarmIdleCv;
  std::thread Warmer;
  std::optional<WarmJob> PendingWarm;
  bool WarmInFlight = false;
  bool WarmStop = false;

  /// Recently queried variables (guarded by HotMutex) — the hot set
  /// behind PresummarizeScope::Hot/HotAndInvalidated.  Capped; recording
  /// stops at the cap rather than evicting (plenty for a warm pass).
  mutable std::mutex HotMutex;
  std::unordered_set<ir::VarId> HotSet;
  static constexpr size_t kHotSetCap = 65536;

  /// Poison-edit quarantine (guarded by EditMutex): armed when a commit
  /// fails after its retries, it fails further *background* requests
  /// fast while the program's edit clock still reads QuarantineClock —
  /// a new edit (or a successful foreground commit, which always runs)
  /// lifts it.
  bool QuarantineActive = false;
  uint64_t QuarantineClock = 0;

  std::atomic<uint64_t> Commits{0};
  std::atomic<uint64_t> Rollbacks{0};
  std::atomic<uint64_t> Batches{0};
  std::atomic<uint64_t> Queries{0};
  std::atomic<uint64_t> SharedDropped{0};
  /// Commit-time readouts (microseconds; atomics so stats() needs no
  /// lock).
  std::atomic<uint64_t> LastCommitMicros{0};
  std::atomic<uint64_t> TotalCommitMicros{0};
  std::atomic<uint64_t> LastCommitRelowered{0};
  std::atomic<uint64_t> AsyncRequested{0};
  std::atomic<uint64_t> AsyncCoalesced{0};

  /// Failure/degradation counters (see ServiceStats).
  std::atomic<uint64_t> CommitFailures{0};
  std::atomic<uint64_t> CommitValidationRejects{0};
  std::atomic<uint64_t> CommitRetries{0};
  std::atomic<uint64_t> CommitsQuarantined{0};
  std::atomic<uint64_t> CommitsShed{0};
  std::atomic<uint64_t> ShedBatches{0};
  std::atomic<uint64_t> ShedQueries{0};
  std::atomic<uint64_t> TimedOutQueries{0};
  std::atomic<uint64_t> CancelledQueries{0};
  /// Warmer counters (see ServiceStats).
  std::atomic<uint64_t> WarmRunsCount{0};
  std::atomic<uint64_t> WarmQueriesRun{0};
  std::atomic<uint64_t> WarmComputed{0};
  /// Admission control: batches currently inside runBatch, plus the
  /// hysteresis state (true between the high and low watermarks).
  std::atomic<unsigned> ActiveBatches{0};
  std::atomic<bool> SheddingState{false};
};

} // namespace service
} // namespace dynsum

#endif // DYNSUM_SERVICE_ANALYSISSERVICE_H
